// Fixture: include-iostream honors inline suppression markers.
#ifndef SPNET_TESTS_LINT_FIXTURES_INCLUDE_IOSTREAM_SUPPRESSED_H_
#define SPNET_TESTS_LINT_FIXTURES_INCLUDE_IOSTREAM_SUPPRESSED_H_

#include <iostream>  // spnet-lint: allow(include-iostream)

#endif  // SPNET_TESTS_LINT_FIXTURES_INCLUDE_IOSTREAM_SUPPRESSED_H_
