#ifndef SPNET_SPARSE_SERIALIZATION_H_
#define SPNET_SPARSE_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "sparse/csr_matrix.h"

namespace spnet {
namespace sparse {

/// Binary CSR container ("SPNB"): a fixed little-endian header followed by
/// the raw ptr/indices/values arrays. Loads are O(nnz) with no parsing —
/// the format for caching generated datasets between benchmark runs.
///
/// Layout:
///   magic   u32  'SPNB'
///   version u32  1
///   rows    i64
///   cols    i64
///   nnz     i64
///   ptr     (rows + 1) x i64
///   indices nnz x i32
///   values  nnz x f64
[[nodiscard]] Status WriteBinary(const CsrMatrix& m, const std::string& path);

/// Reads a matrix written by WriteBinary. Rejects bad magic/version,
/// truncated files, and structurally invalid contents.
[[nodiscard]] Result<CsrMatrix> ReadBinary(const std::string& path);

}  // namespace sparse
}  // namespace spnet

#endif  // SPNET_SPARSE_SERIALIZATION_H_
