#include <gtest/gtest.h>

#include <numeric>

#include "spgemm/row_product.h"
#include "spgemm/workload_model.h"
#include "sparse/reference_spgemm.h"
#include "sparse/stats.h"
#include "tests/test_util.h"

namespace spnet {
namespace spgemm {
namespace {

using sparse::CsrMatrix;

TEST(WorkloadTest, MatchesSparseStats) {
  const CsrMatrix a = testing_util::SkewedMatrix(128, 64, 3);
  const CsrMatrix b = testing_util::SkewedMatrix(128, 64, 4);
  const Workload w = BuildWorkload(a, b);
  EXPECT_EQ(w.flops, sparse::SpGemmFlops(a, b));
  const auto pair_work = sparse::OuterProductPairWork(a, b);
  ASSERT_EQ(w.pair_work.size(), pair_work.size());
  for (size_t i = 0; i < pair_work.size(); ++i) {
    EXPECT_EQ(w.pair_work[i], pair_work[i]) << "pair " << i;
  }
  const auto row_flops = sparse::SpGemmRowFlops(a, b);
  for (size_t r = 0; r < row_flops.size(); ++r) {
    EXPECT_EQ(w.row_chat[r], row_flops[r]) << "row " << r;
  }
}

TEST(WorkloadTest, RowChatSumsToFlops) {
  const CsrMatrix a = testing_util::RandomMatrix(90, 110, 0.05, 5);
  const CsrMatrix b = testing_util::RandomMatrix(110, 70, 0.05, 6);
  const Workload w = BuildWorkload(a, b);
  const int64_t sum =
      std::accumulate(w.row_chat.begin(), w.row_chat.end(), int64_t{0});
  EXPECT_EQ(sum, w.flops);
}

TEST(WorkloadTest, OutputEstimateBracketsExact) {
  const CsrMatrix a = testing_util::SkewedMatrix(200, 100, 9);
  const Workload w = BuildWorkload(a, a);
  auto exact = sparse::SpGemmExactOutputNnz(a, a);
  ASSERT_TRUE(exact.ok());
  // The hashing estimator should be within a factor of ~2 of truth and
  // never exceed flops.
  EXPECT_LE(w.output_nnz, w.flops);
  EXPECT_GT(w.output_nnz, exact.value() / 2);
  EXPECT_LT(w.output_nnz, exact.value() * 2);
}

TEST(WorkloadTest, ZeroColumnBProducesZeroEstimatesNotNaN) {
  // Regression: the merge estimator cols * (1 - exp(-flops_r / cols))
  // divided by cols; with a 0-column B it must short-circuit to zero
  // instead of computing exp(-inf) garbage or NaN.
  const CsrMatrix a = testing_util::SkewedMatrix(40, 20, 3);
  sparse::CooMatrix coo_b(40, 0);
  auto b = CsrMatrix::FromCoo(coo_b);
  ASSERT_TRUE(b.ok());
  const Workload w = BuildWorkload(a, *b);
  EXPECT_EQ(w.flops, 0);
  EXPECT_EQ(w.output_nnz, 0);
  for (size_t r = 0; r < w.row_c_est.size(); ++r) {
    EXPECT_EQ(w.row_c_est[r], 0) << "row " << r;
  }
}

TEST(WorkloadTest, OneColumnBClampsRowEstimateToOne) {
  // With one output column, every nonempty C row has exactly one
  // reachable slot: the estimate must clamp to min(row_chat, cols) = 1,
  // never round above it.
  sparse::CooMatrix coo_a(30, 30);
  sparse::CooMatrix coo_b(30, 1);
  for (sparse::Index r = 0; r < 30; ++r) {
    for (sparse::Index c = 0; c < 30; c += 3) coo_a.Add(r, c, 1.0);
    coo_b.Add(r, 0, 1.0);
  }
  auto a = CsrMatrix::FromCoo(coo_a);
  auto b = CsrMatrix::FromCoo(coo_b);
  ASSERT_TRUE(a.ok() && b.ok());
  const Workload w = BuildWorkload(*a, *b);
  int64_t total = 0;
  for (size_t r = 0; r < w.row_c_est.size(); ++r) {
    EXPECT_GE(w.row_c_est[r], 0) << "row " << r;
    EXPECT_LE(w.row_c_est[r], 1) << "row " << r;
    EXPECT_LE(w.row_c_est[r], w.row_chat[r]) << "row " << r;
    total += w.row_c_est[r];
  }
  EXPECT_EQ(w.output_nnz, total);
}

TEST(MakePairBlockTest, SmallPairGetsWarp) {
  PairBlockParams p;
  p.col_nnz = 10;
  p.row_nnz = 5;
  const auto tb = MakePairBlock(p);
  EXPECT_EQ(tb.threads, 32);
  EXPECT_EQ(tb.effective_threads, 5);
  EXPECT_EQ(tb.crit_ops, 10);
  EXPECT_EQ(tb.useful_lane_ops, 50);
  EXPECT_EQ(tb.warp_issue_ops, 10);
}

TEST(MakePairBlockTest, WideRowStripMines) {
  PairBlockParams p;
  p.col_nnz = 4;
  p.row_nnz = 1000;  // > block size 256 -> 4 strips
  const auto tb = MakePairBlock(p);
  EXPECT_EQ(tb.threads, 256);
  EXPECT_EQ(tb.effective_threads, 256);
  EXPECT_EQ(tb.crit_ops, 16);  // 4 col elements * 4 strips
  EXPECT_EQ(tb.useful_lane_ops, 4000);
  EXPECT_EQ(tb.warp_issue_ops, 8 * 16);
}

TEST(MakePairBlockTest, SharedReadClampedToReads) {
  PairBlockParams p;
  p.col_nnz = 10;
  p.row_nnz = 10;
  p.shared_read_bytes = 1 << 20;
  const auto tb = MakePairBlock(p);
  EXPECT_EQ(tb.shared_read_bytes, tb.bytes_read);
}

TEST(MergeKernelsTest, BlocksCoverAllWork) {
  const CsrMatrix a = testing_util::SkewedMatrix(300, 150, 11);
  const Workload w = BuildWorkload(a, a);
  const auto kernels = BuildMergeKernels(w, MergeOptions{});
  ASSERT_EQ(kernels.size(), 1u);
  int64_t covered = 0;
  for (const auto& tb : kernels[0].blocks) covered += tb.useful_lane_ops;
  EXPECT_EQ(covered, w.flops);
}

TEST(MergeKernelsTest, LimitingSplitsLongRows) {
  const CsrMatrix a = testing_util::SkewedMatrix(300, 200, 13);
  const Workload w = BuildWorkload(a, a);
  // Threshold low enough to catch the hub rows.
  MergeOptions options;
  options.limit_row_threshold = 400;
  options.extra_shared_mem_bytes = 4 * 6144;
  const auto kernels = BuildMergeKernels(w, options);
  ASSERT_EQ(kernels.size(), 2u);
  EXPECT_EQ(kernels[1].label, "merge-limited");
  EXPECT_FALSE(kernels[1].blocks.empty());
  for (const auto& tb : kernels[1].blocks) {
    EXPECT_GT(tb.useful_lane_ops, 400);
    EXPECT_GE(tb.shared_mem_bytes, 4 * 6144);
  }
  // Work is conserved across the two kernels.
  int64_t covered = 0;
  for (const auto& k : kernels) {
    for (const auto& tb : k.blocks) covered += tb.useful_lane_ops;
  }
  EXPECT_EQ(covered, w.flops);
}

TEST(MergeKernelsTest, SmallRowsBatchIntoFewBlocks) {
  // 10000 rows of ~4 intermediate elements: block count must track work,
  // not dimension.
  sparse::CooMatrix coo(10000, 10000);
  Rng rng(3);
  for (int r = 0; r < 10000; ++r) {
    for (int k = 0; k < 2; ++k) {
      coo.Add(r, static_cast<sparse::Index>(rng.NextBounded(10000)), 1.0);
    }
  }
  auto a = CsrMatrix::FromCoo(coo);
  ASSERT_TRUE(a.ok());
  const Workload w = BuildWorkload(*a, *a);
  const auto kernels = BuildMergeKernels(w, MergeOptions{});
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_LT(kernels[0].blocks.size(), 500u);
}

TEST(MergeKernelsTest, WideOutputRowsUseGlobalAtomics) {
  // A dense-ish row produces a wide output accumulator.
  sparse::CooMatrix coo(3000, 3000);
  // Row 0 is dense (wide output accumulator); the rest touch only column
  // 1, whose row has a single entry (tiny accumulators).
  for (int c = 0; c < 3000; ++c) coo.Add(0, c, 1.0);
  for (int r = 1; r < 3000; ++r) coo.Add(r, 1, 1.0);
  auto a = CsrMatrix::FromCoo(coo);
  ASSERT_TRUE(a.ok());
  const Workload w = BuildWorkload(*a, *a);
  const auto kernels = BuildMergeKernels(w, MergeOptions{});
  bool found_global = false;
  bool found_shared = false;
  for (const auto& k : kernels) {
    for (const auto& tb : k.blocks) {
      if (tb.atomics_in_shared) {
        found_shared = true;
      } else {
        found_global = true;
      }
    }
  }
  EXPECT_TRUE(found_global);
  EXPECT_TRUE(found_shared);
}

TEST(RowExpansionTest, CoversAllWorkOnceEach) {
  const CsrMatrix a = testing_util::SkewedMatrix(400, 300, 17);
  const Workload w = BuildWorkload(a, a);
  const auto kernel = BuildRowProductExpansion(w, RowExpansionOptions{});
  int64_t covered = 0;
  for (const auto& tb : kernel.blocks) covered += tb.useful_lane_ops;
  EXPECT_EQ(covered, w.flops);
}

TEST(RowExpansionTest, OpsMultiplierScalesIssue) {
  const CsrMatrix a = testing_util::RandomMatrix(100, 100, 0.05, 21);
  const Workload w = BuildWorkload(a, a);
  RowExpansionOptions base;
  RowExpansionOptions doubled;
  doubled.ops_multiplier = 2.0;
  const auto k1 = BuildRowProductExpansion(w, base);
  const auto k2 = BuildRowProductExpansion(w, doubled);
  ASSERT_EQ(k1.blocks.size(), k2.blocks.size());
  for (size_t i = 0; i < k1.blocks.size(); ++i) {
    EXPECT_EQ(2 * k1.blocks[i].warp_issue_ops, k2.blocks[i].warp_issue_ops);
  }
}

TEST(RowExpansionTest, RowOrderPermutesAssignment) {
  const CsrMatrix a = testing_util::SkewedMatrix(256, 128, 23);
  const Workload w = BuildWorkload(a, a);
  std::vector<int64_t> order(w.row_chat.size());
  std::iota(order.begin(), order.end(), int64_t{0});
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return w.row_chat[static_cast<size_t>(x)] <
           w.row_chat[static_cast<size_t>(y)];
  });
  RowExpansionOptions opts;
  opts.row_order = &order;
  const auto sorted_kernel = BuildRowProductExpansion(w, opts);
  const auto plain_kernel = BuildRowProductExpansion(w, RowExpansionOptions{});
  int64_t sorted_work = 0, plain_work = 0;
  int64_t sorted_issue = 0, plain_issue = 0;
  for (const auto& tb : sorted_kernel.blocks) {
    sorted_work += tb.useful_lane_ops;
    sorted_issue += tb.warp_issue_ops;
  }
  for (const auto& tb : plain_kernel.blocks) {
    plain_work += tb.useful_lane_ops;
    plain_issue += tb.warp_issue_ops;
  }
  EXPECT_EQ(sorted_work, plain_work);
  // Sorting similar rows into the same warp reduces lock-step waste.
  EXPECT_LE(sorted_issue, plain_issue);
}

TEST(StreamingBlocksTest, BalancedAndSized) {
  gpusim::KernelDesc kernel;
  AppendBalancedStreamingBlocks(&kernel, 100000, 12, 2.0);
  ASSERT_FALSE(kernel.blocks.empty());
  int64_t bytes = 0;
  for (const auto& tb : kernel.blocks) {
    EXPECT_EQ(tb.threads, 256);
    EXPECT_EQ(tb.effective_threads, 256);
    bytes += tb.bytes_read;
  }
  EXPECT_EQ(bytes, 100000 * 12);
}

TEST(HostPreprocessTest, MonotoneInInputs) {
  EXPECT_GT(HostPreprocessSeconds(1000, 0), HostPreprocessSeconds(0, 0));
  EXPECT_GT(HostPreprocessSeconds(0, 1000), HostPreprocessSeconds(0, 0));
  EXPECT_GT(HostPreprocessSeconds(0, 0), 0.0);
}

}  // namespace
}  // namespace spgemm
}  // namespace spnet
