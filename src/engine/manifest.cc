#include "engine/manifest.h"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "datasets/cache.h"
#include "datasets/registry.h"
#include "sparse/matrix_market.h"
#include "sparse/serialization.h"

namespace spnet {
namespace engine {

namespace {

constexpr int64_t kMaxRepeat = 100000;

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool LooksLikeFile(const std::string& source) {
  return source.find('/') != std::string::npos ||
         EndsWith(source, ".mtx") || EndsWith(source, ".spnb");
}

}  // namespace

Result<sparse::CsrMatrix> LoadManifestSource(
    const std::string& source, const ManifestLoadOptions& options) {
  if (LooksLikeFile(source)) {
    return EndsWith(source, ".spnb") ? sparse::ReadBinary(source)
                                     : sparse::ReadMatrixMarket(source);
  }
  SPNET_ASSIGN_OR_RETURN(const datasets::RealWorldSpec spec,
                         datasets::FindDataset(source));
  return datasets::MaterializeCached(spec, options.scale,
                                     options.dataset_cache_dir, options.seed);
}

Result<std::vector<ManifestEntry>> ParseManifest(const std::string& content) {
  std::vector<ManifestEntry> entries;
  std::istringstream in(content);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const size_t comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);

    std::istringstream fields(line);
    ManifestEntry entry;
    if (!(fields >> entry.source)) continue;  // blank or comment-only line
    std::string algorithm, repeat, extra;
    if (fields >> algorithm) entry.algorithm = algorithm;
    if (fields >> repeat) {
      char* end = nullptr;
      entry.repeat = std::strtoll(repeat.c_str(), &end, 10);
      if (end != repeat.c_str() + repeat.size() || entry.repeat < 1 ||
          entry.repeat > kMaxRepeat) {
        return Status::InvalidArgument(
            "manifest line " + std::to_string(line_number) +
            ": repeat must be an integer in [1, " +
            std::to_string(kMaxRepeat) + "], got '" + repeat + "'");
      }
    }
    if (fields >> extra) {
      return Status::InvalidArgument("manifest line " +
                                     std::to_string(line_number) +
                                     ": unexpected token '" + extra + "'");
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

Result<std::vector<Request>> BuildRequests(
    const std::vector<ManifestEntry>& entries,
    const ManifestLoadOptions& options, const std::string& tenant,
    int priority) {
  std::map<std::string, std::shared_ptr<const sparse::CsrMatrix>> loaded;
  std::vector<Request> requests;
  for (const ManifestEntry& entry : entries) {
    auto it = loaded.find(entry.source);
    if (it == loaded.end()) {
      auto m = LoadManifestSource(entry.source, options);
      if (!m.ok()) {
        return Status(m.status().code(), "manifest source '" + entry.source +
                                             "': " + m.status().message());
      }
      it = loaded
               .emplace(entry.source, std::make_shared<const sparse::CsrMatrix>(
                                          std::move(m).value()))
               .first;
    }
    for (int64_t k = 0; k < entry.repeat; ++k) {
      // The CLI option keeps its historical "<= 0 disables deadlines"
      // contract; only a positive value becomes a per-request budget (0 on
      // a Request now means "born expired").
      SPNET_ASSIGN_OR_RETURN(
          Request request,
          RequestBuilder()
              .Id(entry.source + ":" + entry.algorithm + "#" +
                  std::to_string(k))
              .Tenant(tenant)
              .Priority(priority)
              .Algorithm(entry.algorithm)
              .DeadlineMs(options.deadline_ms > 0.0
                              ? options.deadline_ms
                              : Request::kInheritDeadline)
              .OperandA(it->second)
              .Build());
      requests.push_back(std::move(request));
    }
  }
  return requests;
}

Result<std::vector<Request>> LoadManifestRequests(
    const std::string& path, const ManifestLoadOptions& options,
    const std::string& tenant, int priority) {
  std::ifstream file(path);
  if (!file) {
    return Status::IoError("cannot open manifest " + path);
  }
  std::ostringstream content;
  content << file.rdbuf();
  SPNET_ASSIGN_OR_RETURN(const std::vector<ManifestEntry> entries,
                         ParseManifest(content.str()));
  return BuildRequests(entries, options, tenant, priority);
}

Result<std::vector<BatchQuery>> BuildQueries(
    const std::vector<ManifestEntry>& entries,
    const ManifestLoadOptions& options) {
  SPNET_ASSIGN_OR_RETURN(const std::vector<Request> requests,
                         BuildRequests(entries, options));
  std::vector<BatchQuery> queries;
  queries.reserve(requests.size());
  for (const Request& request : requests) {
    BatchQuery q;
    q.id = request.id;
    q.a = request.a;
    q.b = request.b;
    q.algorithm = request.algorithm;
    q.deadline_ms = request.deadline_ms;
    queries.push_back(std::move(q));
  }
  return queries;
}

Result<std::vector<BatchQuery>> LoadManifest(
    const std::string& path, const ManifestLoadOptions& options) {
  SPNET_ASSIGN_OR_RETURN(const std::vector<Request> requests,
                         LoadManifestRequests(path, options));
  std::vector<BatchQuery> queries;
  queries.reserve(requests.size());
  for (const Request& request : requests) {
    BatchQuery q;
    q.id = request.id;
    q.a = request.a;
    q.b = request.b;
    q.algorithm = request.algorithm;
    q.deadline_ms = request.deadline_ms;
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace engine
}  // namespace spnet
