#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/logging.h"
#include "datasets/cache.h"
#include "sparse/csr_matrix.h"
#include "sparse/serialization.h"

namespace spnet {
namespace datasets {
namespace {

RealWorldSpec TinySpec() {
  auto spec = FindDataset("as-caida");
  SPNET_CHECK(spec.ok());
  return *spec;
}

TEST(CacheTest, BypassedWhenDirEmpty) {
  auto direct = Materialize(TinySpec(), 0.05, 7);
  auto cached = MaterializeCached(TinySpec(), 0.05, "", 7);
  ASSERT_TRUE(direct.ok() && cached.ok());
  EXPECT_TRUE(sparse::CsrApproxEqual(*direct, *cached, 0.0));
}

TEST(CacheTest, SecondLoadComesFromDisk) {
  const std::string dir = ::testing::TempDir();
  const RealWorldSpec spec = TinySpec();
  const std::string path = CachePath(spec, 0.05, dir, 9);
  std::remove(path.c_str());

  auto first = MaterializeCached(spec, 0.05, dir, 9);
  ASSERT_TRUE(first.ok());
  // The entry now exists on disk.
  std::ifstream probe(path, std::ios::binary);
  EXPECT_TRUE(probe.good());
  probe.close();

  auto second = MaterializeCached(spec, 0.05, dir, 9);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(sparse::CsrApproxEqual(*first, *second, 0.0));
  std::remove(path.c_str());
}

TEST(CacheTest, DistinctParametersDistinctEntries) {
  const std::string dir = "/tmp";
  const RealWorldSpec spec = TinySpec();
  EXPECT_NE(CachePath(spec, 0.05, dir, 1), CachePath(spec, 0.05, dir, 2));
  EXPECT_NE(CachePath(spec, 0.05, dir, 1), CachePath(spec, 0.10, dir, 1));
}

TEST(CacheTest, CorruptedEntryIsRegenerated) {
  const std::string dir = ::testing::TempDir();
  const RealWorldSpec spec = TinySpec();
  const std::string path = CachePath(spec, 0.05, dir, 11);
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage";
  }
  auto m = MaterializeCached(spec, 0.05, dir, 11);
  ASSERT_TRUE(m.ok());
  auto direct = Materialize(spec, 0.05, 11);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(sparse::CsrApproxEqual(*m, *direct, 0.0));
  std::remove(path.c_str());
}

TEST(CacheTest, StaleEntryIsRegeneratedAndRefreshed) {
  // A structurally valid .spnb that does not match the spec (e.g. left
  // over from an older generator or a different dataset) must be treated
  // as a miss, regenerated, and rewritten in place.
  const std::string dir = ::testing::TempDir();
  const RealWorldSpec spec = TinySpec();
  const std::string path = CachePath(spec, 0.05, dir, 17);
  {
    // 2x2 identity: valid serialization, wrong dimensions for the spec.
    auto tiny = sparse::CsrMatrix::FromParts(2, 2, {0, 1, 2}, {0, 1},
                                             {1.0, 1.0});
    ASSERT_TRUE(tiny.ok());
    ASSERT_TRUE(sparse::WriteBinary(*tiny, path).ok());
  }

  auto m = MaterializeCached(spec, 0.05, dir, 17);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  auto direct = Materialize(spec, 0.05, 17);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(sparse::CsrApproxEqual(*m, *direct, 0.0));

  // The stale entry was refreshed: a reload now serves the fresh matrix.
  auto reloaded = sparse::ReadBinary(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(sparse::CsrApproxEqual(*reloaded, *direct, 0.0));
  std::remove(path.c_str());
}

TEST(CacheTest, UnwritableDirStillReturnsMatrix) {
  auto m = MaterializeCached(TinySpec(), 0.05, "/nonexistent-dir-xyz", 13);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->nnz(), 0);
}

}  // namespace
}  // namespace datasets
}  // namespace spnet
