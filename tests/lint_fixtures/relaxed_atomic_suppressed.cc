// Fixture: relaxed-atomic honors inline suppression markers.
#include <atomic>
#include <cstdint>

namespace spnet {
namespace {

std::atomic<int64_t> g_hits{0};

}  // namespace

void Touch() {
  // Monotonic counter, no ordering needed.
  // spnet-lint: allow(relaxed-atomic)
  g_hits.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace spnet
