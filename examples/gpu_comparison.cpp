// Device exploration: run the same multiplication across the three
// simulated GPUs of the paper's Table I — and a hypothetical scaled-up
// device — to see how the Block Reorganizer's gains track SM count,
// cache size, and bandwidth (the paper's Figure 15 scalability question).
//
// Build & run:
//   ./build/examples/gpu_comparison [--dataset youtube] [--scale 0.15]

#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "core/block_reorganizer.h"
#include "datasets/registry.h"
#include "gpusim/device_spec.h"
#include "spgemm/algorithm.h"

int main(int argc, char** argv) {
  using namespace spnet;
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  const std::string name = flags.GetString("dataset", "youtube");
  const double scale = flags.GetDouble("scale", 0.15);

  auto spec = datasets::FindDataset(name);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown dataset %s\n", name.c_str());
    return 1;
  }
  auto a = datasets::Materialize(*spec, scale, 42);
  SPNET_CHECK(a.ok()) << a.status().ToString();
  std::printf("dataset %s at scale %.2f: %d nodes, %lld edges\n\n",
              name.c_str(), scale, a->rows(),
              static_cast<long long>(a->nnz()));

  std::vector<gpusim::DeviceSpec> devices = {gpusim::DeviceSpec::TitanXp(),
                                             gpusim::DeviceSpec::TeslaV100(),
                                             gpusim::DeviceSpec::Rtx2080Ti()};
  // A what-if device: double the SMs and L2 of the V100. The DeviceSpec
  // is plain data — any architecture hypothesis is one struct away.
  gpusim::DeviceSpec future = gpusim::DeviceSpec::TeslaV100();
  future.name = "2x-V100 (hypothetical)";
  future.num_sms *= 2;
  future.l2_size *= 2;
  future.dram_bw_bytes_per_cycle *= 1.5;
  devices.push_back(future);

  const auto row = spgemm::MakeRowProduct();
  core::BlockReorganizerSpGemm reorganizer;

  std::printf("%-24s %12s %12s %10s %8s\n", "device", "row-product",
              "reorganizer", "speedup", "LBI");
  for (const auto& device : devices) {
    auto base = spgemm::Measure(*row, *a, *a, device);
    auto opt = spgemm::Measure(reorganizer, *a, *a, device);
    SPNET_CHECK(base.ok() && opt.ok());
    std::printf("%-24s %9.3f ms %9.3f ms %9.2fx %8.2f\n",
                device.name.c_str(), base->total_seconds * 1e3,
                opt->total_seconds * 1e3,
                base->total_seconds / opt->total_seconds,
                opt->expansion.Lbi());
  }
  std::printf("\nThe reorganizer's edge persists across architectures "
              "because sparsity and skew stress every SIMT design the same "
              "way (paper Section VI-B).\n");
  return 0;
}
