// Ablation of the Block Reorganizer's design parameters, the choices
// DESIGN.md calls out: the dominator threshold alpha, the limiting
// threshold beta (paper default 10), the expansion block size, and the
// heuristic splitting factor vs fixed overrides — plus the AutoTune
// extension against the fixed defaults. All numbers are speedups over the
// outer-product baseline on three representative skewed datasets.
//
// Flags: --scale (default 0.25), --device, --seed, --csv.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "core/auto_tune.h"
#include "core/block_reorganizer.h"
#include "metrics/report.h"
#include "spgemm/algorithm.h"

namespace spnet {
namespace {

const char* kDatasets[] = {"youtube", "loc-gowalla", "slashDot"};

int Run(int argc, char** argv) {
  const bench::BenchOptions options =
      bench::BenchOptions::FromArgs(argc, argv);
  const gpusim::DeviceSpec device = options.Device();

  struct Variant {
    std::string label;
    std::function<core::ReorganizerConfig(const sparse::CsrMatrix&)> make;
  };
  auto fixed = [](core::ReorganizerConfig config) {
    return [config](const sparse::CsrMatrix&) { return config; };
  };
  std::vector<Variant> variants;
  variants.push_back({"defaults", fixed(core::ReorganizerConfig{})});
  for (double alpha : {4.0, 16.0, 32.0, 128.0}) {
    core::ReorganizerConfig c;
    c.alpha = alpha;
    variants.push_back({"alpha=" + metrics::FormatDouble(alpha, 0), fixed(c)});
  }
  for (double beta : {2.0, 10.0, 40.0}) {
    core::ReorganizerConfig c;
    c.beta = beta;
    variants.push_back({"beta=" + metrics::FormatDouble(beta, 0), fixed(c)});
  }
  for (int block : {128, 256, 512}) {
    core::ReorganizerConfig c;
    c.block_size = block;
    variants.push_back({"block=" + std::to_string(block), fixed(c)});
  }
  {
    core::ReorganizerConfig c;
    c.splitting_factor_override = 8;
    variants.push_back({"split=8 (fixed)", fixed(c)});
    c.splitting_factor_override = 64;
    variants.push_back({"split=64 (fixed)", fixed(c)});
  }
  variants.push_back(
      {"auto-tune", [&](const sparse::CsrMatrix& a) {
         auto config = core::AutoTune(a, a, device);
         SPNET_CHECK(config.ok()) << config.status().ToString();
         return *config;
       }});

  std::vector<std::string> header = {"variant"};
  for (const char* name : kDatasets) header.push_back(name);
  header.push_back("geomean");
  metrics::Table table(header);

  const auto outer = spgemm::MakeOuterProduct();
  std::vector<sparse::CsrMatrix> mats;
  std::vector<double> base_seconds;
  for (const char* name : kDatasets) {
    mats.push_back(bench::LoadDataset(name, options));
    auto m = spgemm::Measure(*outer, mats.back(), mats.back(), device);
    SPNET_CHECK(m.ok());
    base_seconds.push_back(m->total_seconds);
  }

  for (const Variant& variant : variants) {
    std::vector<std::string> row = {variant.label};
    std::vector<double> gains;
    for (size_t i = 0; i < mats.size(); ++i) {
      core::BlockReorganizerSpGemm alg(variant.make(mats[i]));
      auto m = spgemm::Measure(alg, mats[i], mats[i], device);
      SPNET_CHECK(m.ok());
      gains.push_back(base_seconds[i] / m->total_seconds);
      row.push_back(metrics::FormatDouble(gains.back()));
    }
    row.push_back(metrics::FormatDouble(metrics::GeometricMean(gains)));
    table.AddRow(std::move(row));
  }

  std::printf("== Design-parameter ablation: Block Reorganizer speedup over "
              "outer-product (%s, scale %.2f) ==\n",
              device.name.c_str(), options.scale);
  std::fputs(options.csv ? table.ToCsv().c_str() : table.ToString().c_str(),
             stdout);
  std::printf("\nThe defaults (alpha=32, beta=10, block=256, heuristic "
              "splitting) should sit at or near the per-column optima; "
              "auto-tune adapts alpha/beta per input.\n");

  bench::BenchJson json("ablation_parameters", "parameter ablation", options);
  json.AddTable("speedup_vs_parameters", table);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
