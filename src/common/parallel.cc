#include "common/parallel.h"

#include <limits>

namespace spnet {

namespace {

/// Worker identity of the current thread within its pool; 0 on the main
/// thread and on any thread that never joined a pool. Used to route nested
/// ParallelFor calls inline while keeping a stable scratch index.
thread_local int tls_thread_index = 0;
/// True while the current thread is executing a chunk; nested ParallelFor
/// calls detect this and run inline to avoid self-deadlock.
thread_local bool tls_in_chunk = false;

int ResolveThreadCount(int threads) {
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return threads;
}

}  // namespace

struct ThreadPool::Job {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t grain = 1;
  int64_t num_chunks = 0;
  const ChunkFn* fn = nullptr;
  ThreadPool* pool = nullptr;

  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> chunks_done{0};
  std::atomic<bool> failed{false};

  Mutex error_mu;
  int64_t error_chunk GUARDED_BY(error_mu) = std::numeric_limits<int64_t>::max();
  Status error_status GUARDED_BY(error_mu);
};

ThreadPool::ThreadPool(int threads) {
  const int n = ResolveThreadCount(threads);
  workers_.reserve(static_cast<size_t>(n - 1));
  for (int i = 1; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunChunks(Job* job, int thread_index) {
  const int saved_index = tls_thread_index;
  const bool saved_in_chunk = tls_in_chunk;
  tls_thread_index = thread_index;
  tls_in_chunk = true;
  int64_t chunks_here = 0;
  while (true) {
    const int64_t c = job->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->num_chunks) break;
    ++chunks_here;
    // Once any chunk failed, later chunks are claimed but not executed;
    // they still count as done so the submitter's wait terminates.
    if (!job->failed.load(std::memory_order_acquire)) {
      const int64_t b = job->begin + c * job->grain;
      const int64_t e = std::min(job->end, b + job->grain);
      Status s = (*job->fn)(b, e, thread_index);
      if (!s.ok()) {
        MutexLock lock(&job->error_mu);
        if (c < job->error_chunk) {
          job->error_chunk = c;
          job->error_status = std::move(s);
        }
        job->failed.store(true, std::memory_order_release);
      }
    }
    if (job->chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job->num_chunks) {
      job->pool->NotifyJobDone();
    }
  }
  tls_thread_index = saved_index;
  tls_in_chunk = saved_in_chunk;
  if (chunks_here > 0) {
    ThreadPool* pool = job->pool;
    pool->stat_chunks_run_.fetch_add(chunks_here, std::memory_order_relaxed);
    if (thread_index != 0) {
      pool->stat_chunks_stolen_.fetch_add(chunks_here,
                                          std::memory_order_relaxed);
    }
  }
}

void ThreadPool::NotifyJobDone() {
  // Lock/unlock pairs the notification with the submitter's predicate
  // check so the wakeup cannot be lost.
  { MutexLock lock(&mu_); }
  done_cv_.NotifyAll();
}

void ThreadPool::WorkerLoop(int worker_index) {
  uint64_t seen_generation = 0;
  mu_.Lock();
  while (true) {
    while (!stop_ && job_generation_ == seen_generation) work_cv_.Wait(&mu_);
    if (stop_) {
      mu_.Unlock();
      return;
    }
    seen_generation = job_generation_;
    std::shared_ptr<Job> job = job_;
    mu_.Unlock();
    // The lock is dropped while chunks execute; the job itself is kept
    // alive by the shared_ptr copied out under the lock.
    if (job != nullptr) RunChunks(job.get(), worker_index);
    mu_.Lock();
  }
}

Status ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                               const ChunkFn& fn) {
  if (end <= begin) return Status::Ok();
  if (grain < 1) grain = 1;
  const int64_t num_chunks = CeilDiv(end - begin, grain);

  // Inline path: 1-thread pools, single-chunk ranges, and nested calls
  // (a chunk function invoking ParallelFor again). Stops at the first
  // error, matching the historical serial behavior exactly.
  if (workers_.empty() || num_chunks == 1 || tls_in_chunk) {
    const bool saved_in_chunk = tls_in_chunk;
    tls_in_chunk = true;
    Status status;
    int64_t chunks_here = 0;
    for (int64_t b = begin; b < end && status.ok(); b += grain) {
      status = fn(b, std::min(end, b + grain), tls_thread_index);
      ++chunks_here;
    }
    tls_in_chunk = saved_in_chunk;
    stat_inline_jobs_.fetch_add(1, std::memory_order_relaxed);
    stat_chunks_run_.fetch_add(chunks_here, std::memory_order_relaxed);
    return status;
  }

  // One top-level job at a time; concurrent submitters queue here.
  MutexLock submit_lock(&submit_mu_);
  stat_parallel_jobs_.fetch_add(1, std::memory_order_relaxed);

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = num_chunks;
  job->fn = &fn;
  job->pool = this;

  {
    MutexLock lock(&mu_);
    job_ = job;
    ++job_generation_;
  }
  work_cv_.NotifyAll();

  // The submitting thread participates as index 0.
  RunChunks(job.get(), 0);

  {
    MutexLock lock(&mu_);
    while (job->chunks_done.load(std::memory_order_acquire) !=
           job->num_chunks) {
      done_cv_.Wait(&mu_);
    }
    job_.reset();
  }

  if (job->failed.load(std::memory_order_acquire)) {
    MutexLock lock(&job->error_mu);
    return job->error_status;
  }
  return Status::Ok();
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.parallel_jobs = stat_parallel_jobs_.load(std::memory_order_relaxed);
  s.inline_jobs = stat_inline_jobs_.load(std::memory_order_relaxed);
  s.chunks_run = stat_chunks_run_.load(std::memory_order_relaxed);
  s.chunks_stolen = stat_chunks_stolen_.load(std::memory_order_relaxed);
  return s;
}

namespace {

Mutex g_global_pool_mu;
std::unique_ptr<ThreadPool> g_global_pool GUARDED_BY(g_global_pool_mu);
int g_requested_threads GUARDED_BY(g_global_pool_mu) = 0;

}  // namespace

ThreadPool& GlobalThreadPool() {
  MutexLock lock(&g_global_pool_mu);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(g_requested_threads);
  }
  return *g_global_pool;
}

void SetGlobalThreadCount(int threads) {
  MutexLock lock(&g_global_pool_mu);
  g_requested_threads = threads;
  g_global_pool.reset();
}

int GlobalThreadCount() {
  MutexLock lock(&g_global_pool_mu);
  if (g_global_pool) return g_global_pool->threads();
  return ResolveThreadCount(g_requested_threads);
}

}  // namespace spnet
