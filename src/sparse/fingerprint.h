#ifndef SPNET_SPARSE_FINGERPRINT_H_
#define SPNET_SPARSE_FINGERPRINT_H_

#include <cstdint>

#include "sparse/csr_matrix.h"

namespace spnet {
namespace sparse {

/// 64-bit structural fingerprint of a CSR matrix: a hash over the
/// dimensions, the row-pointer array and the column-index array. Values are
/// deliberately excluded — spGEMM planning (workload classification,
/// splitting/gathering/limiting decisions, kernel shapes) depends only on
/// the sparsity structure, so two matrices with the same structure but
/// different numerics share a plan.
///
/// Deterministic across runs and processes for a given matrix content
/// (FNV-1a over the little-endian byte representation with length
/// separators), which makes it usable as a persistent cache key. Two
/// different structures colliding is possible but needs ~2^32 distinct
/// structures in one cache to become likely.
uint64_t StructuralFingerprint(const CsrMatrix& m);

/// Mixes two fingerprints (or a fingerprint and a tag) into one, order
/// sensitive: Combine(a, b) != Combine(b, a). Used to key (A, B) pairs.
uint64_t CombineFingerprints(uint64_t a, uint64_t b);

}  // namespace sparse
}  // namespace spnet

#endif  // SPNET_SPARSE_FINGERPRINT_H_
