// Reproduces Figure 3, the paper's motivation analysis for plain
// outer-product spGEMM on a simulated Titan Xp:
//   (a) per-SM execution-time variance of the expansion phase (descending,
//       normalized to the busiest SM) on 5 regular + 5 skewed datasets;
//   (b) thread-block distribution by number of effective threads;
//   (c) expansion vs merge share of total kernel time.
//
// Flags: --scale (default 0.25), --device, --seed, --csv.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "metrics/report.h"
#include "spgemm/algorithm.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace {

const char* kDatasets[] = {"harbor",   "protein",     "QCD",
                           "filter3D", "ship",        "youtube",
                           "loc-gowalla", "as-caida", "sx-mathoverflow",
                           "slashDot"};

int Run(int argc, char** argv) {
  const bench::BenchOptions options =
      bench::BenchOptions::FromArgs(argc, argv);
  const gpusim::DeviceSpec device = options.Device();
  const auto outer = spgemm::MakeOuterProduct();

  // (a) SM execution-time variance of the expansion phase.
  std::printf("== Figure 3(a): expansion-phase SM load (descending, "
              "normalized to max; %d SMs) ==\n",
              device.num_sms);
  metrics::Table sm_table({"dataset", "SM util (LBI)", "top", "p25", "p50",
                           "p75", "min"});
  // (b) thread-block distribution by effective threads.
  metrics::Table tb_table({"dataset", "1-2", "3-4", "5-8", "9-16", "17-32",
                           "33-128", ">128"});
  // (c) expansion vs merge split.
  metrics::Table phase_table(
      {"dataset", "expansion %", "merge %", "exp ms", "merge ms"});

  for (const char* name : kDatasets) {
    const sparse::CsrMatrix a = bench::LoadDataset(name, options);
    auto m = spgemm::Measure(*outer, a, a, device);
    SPNET_CHECK(m.ok()) << m.status().ToString();

    std::vector<double> busy = m->expansion.sm_busy_cycles;
    std::sort(busy.begin(), busy.end(), std::greater<double>());
    const double top = busy.empty() ? 0.0 : busy.front();
    auto pct = [&](double p) {
      if (busy.empty() || top <= 0.0) return 0.0;
      const size_t i =
          static_cast<size_t>(p * static_cast<double>(busy.size() - 1));
      return busy[i] / top;
    };
    sm_table.AddRow({name, metrics::FormatDouble(m->expansion.Lbi()),
                     "1.00", metrics::FormatDouble(pct(0.25)),
                     metrics::FormatDouble(pct(0.50)),
                     metrics::FormatDouble(pct(0.75)),
                     metrics::FormatDouble(pct(1.0))});

    // Effective-thread histogram over the outer-product pair blocks.
    const spgemm::Workload w = spgemm::BuildWorkload(a, a);
    int64_t bins[7] = {0, 0, 0, 0, 0, 0, 0};
    int64_t total = 0;
    for (size_t i = 0; i < w.pair_work.size(); ++i) {
      if (w.pair_work[i] == 0) continue;
      const int64_t eff = w.b_row_nnz[i];
      ++total;
      if (eff <= 2) {
        ++bins[0];
      } else if (eff <= 4) {
        ++bins[1];
      } else if (eff <= 8) {
        ++bins[2];
      } else if (eff <= 16) {
        ++bins[3];
      } else if (eff <= 32) {
        ++bins[4];
      } else if (eff <= 128) {
        ++bins[5];
      } else {
        ++bins[6];
      }
    }
    std::vector<std::string> row = {name};
    for (int64_t b : bins) {
      row.push_back(metrics::FormatDouble(
          total > 0 ? 100.0 * static_cast<double>(b) /
                          static_cast<double>(total)
                    : 0.0,
          1));
    }
    tb_table.AddRow(std::move(row));

    const double exp_s = m->expansion.seconds;
    const double merge_s = m->merge.seconds;
    const double sum = exp_s + merge_s;
    phase_table.AddRow(
        {name,
         metrics::FormatDouble(sum > 0 ? 100.0 * exp_s / sum : 0.0, 1),
         metrics::FormatDouble(sum > 0 ? 100.0 * merge_s / sum : 0.0, 1),
         metrics::FormatDouble(exp_s * 1e3, 3),
         metrics::FormatDouble(merge_s * 1e3, 3)});
  }

  std::fputs(options.csv ? sm_table.ToCsv().c_str()
                         : sm_table.ToString().c_str(),
             stdout);
  std::printf("\n== Figure 3(b): %% of thread blocks by effective threads ==\n");
  std::fputs(options.csv ? tb_table.ToCsv().c_str()
                         : tb_table.ToString().c_str(),
             stdout);
  std::printf("\n== Figure 3(c): expansion vs merge time ==\n");
  std::fputs(options.csv ? phase_table.ToCsv().c_str()
                         : phase_table.ToString().c_str(),
             stdout);
  std::printf(
      "\nPaper reference: regular sets balance SMs; skewed sets drop below "
      "20%% SM utilization; most blocks have <32 effective threads; merge "
      "dominates on skewed data.\n");

  bench::BenchJson json("fig03_motivation", "Figure 3", options);
  json.AddTable("sm_utilization", sm_table);
  json.AddTable("thread_block_effective_threads", tb_table);
  json.AddTable("expansion_vs_merge", phase_table);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
