#include "sparse/reference_spgemm.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "sparse/row_scratch.h"

namespace spnet {
namespace sparse {

namespace {

/// Accumulates row r of A*B into `s` (dense accumulator + touched list).
/// The per-row visit order is fixed by the input structure, so every
/// thread count produces the same accumulation sequence per row.
void AccumulateRow(const CsrMatrix& a, const CsrMatrix& b, Index r,
                   RowScratch* s) {
  const SpanView arow = a.Row(r);
  for (Offset k = 0; k < arow.size; ++k) {
    const Index j = arow.indices[k];
    const Value av = arow.values[k];
    const SpanView brow = b.Row(j);
    for (Offset l = 0; l < brow.size; ++l) {
      const Index c = brow.indices[l];
      if (!s->touched[static_cast<size_t>(c)]) {
        s->touched[static_cast<size_t>(c)] = 1;
        s->touched_cols.push_back(c);
      }
      s->acc[static_cast<size_t>(c)] += av * brow.values[l];
    }
  }
}

}  // namespace

Result<CsrMatrix> ReferenceSpGemm(const CsrMatrix& a, const CsrMatrix& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument(
        "dimension mismatch: a is " + std::to_string(a.rows()) + "x" +
        std::to_string(a.cols()) + ", b is " + std::to_string(b.rows()) + "x" +
        std::to_string(b.cols()));
  }
  const Index rows = a.rows();
  const Index cols = b.cols();
  ThreadPool& pool = GlobalThreadPool();

  std::vector<Offset> ptr(static_cast<size_t>(rows) + 1, 0);

  if (pool.threads() == 1) {
    // Serial path: the historical single-pass Gustavson loop (grow the
    // output as rows complete). Avoids the symbolic pass entirely.
    RowScratch s;
    s.EnsureCols(cols);
    std::vector<Index> out_idx;
    std::vector<Value> out_val;
    for (Index r = 0; r < rows; ++r) {
      AccumulateRow(a, b, r, &s);
      std::sort(s.touched_cols.begin(), s.touched_cols.end());
      for (Index c : s.touched_cols) {
        out_idx.push_back(c);
        out_val.push_back(s.acc[static_cast<size_t>(c)]);
      }
      s.ResetTouched();
      ptr[static_cast<size_t>(r) + 1] = static_cast<Offset>(out_idx.size());
    }
    return CsrMatrix::FromParts(rows, cols, std::move(ptr),
                                std::move(out_idx), std::move(out_val));
  }

  // Parallel path: deterministic two-pass (size, scan, fill). Each row is
  // produced entirely by one thread with the same per-row computation as
  // the serial path, and lands at an offset fixed by the scan, so the
  // output is bit-identical for every thread count.
  const int64_t grain = GrainForItems(rows, pool.threads());
  RowScratchArena arena(pool.threads(), cols);

  // Pass 1: per-row output nnz (symbolic).
  SPNET_CHECK_OK(pool.ParallelFor(0, rows, grain,
                   [&](int64_t row_begin, int64_t row_end, int thread_index) {
                     RowScratch& s = arena.at(thread_index);
                     for (int64_t r = row_begin; r < row_end; ++r) {
                       const SpanView arow = a.Row(static_cast<Index>(r));
                       for (Offset k = 0; k < arow.size; ++k) {
                         const SpanView brow = b.Row(arow.indices[k]);
                         for (Offset l = 0; l < brow.size; ++l) {
                           const Index c = brow.indices[l];
                           if (!s.touched[static_cast<size_t>(c)]) {
                             s.touched[static_cast<size_t>(c)] = 1;
                             s.touched_cols.push_back(c);
                           }
                         }
                       }
                       ptr[static_cast<size_t>(r) + 1] =
                           static_cast<Offset>(s.touched_cols.size());
                       s.ResetTouched();
                     }
                     return Status::Ok();
                   }));

  // Exclusive scan of the row sizes into row pointers.
  for (size_t r = 0; r < static_cast<size_t>(rows); ++r) {
    ptr[r + 1] += ptr[r];
  }
  const Offset total = ptr[static_cast<size_t>(rows)];

  // Pass 2: numeric fill into the pre-sized output slices.
  std::vector<Index> out_idx(static_cast<size_t>(total));
  std::vector<Value> out_val(static_cast<size_t>(total));
  SPNET_CHECK_OK(pool.ParallelFor(
      0, rows, grain,
      [&](int64_t row_begin, int64_t row_end, int thread_index) {
        RowScratch& s = arena.at(thread_index);
        for (int64_t r = row_begin; r < row_end; ++r) {
          AccumulateRow(a, b, static_cast<Index>(r), &s);
          std::sort(s.touched_cols.begin(), s.touched_cols.end());
          Offset cursor = ptr[static_cast<size_t>(r)];
          for (Index c : s.touched_cols) {
            out_idx[static_cast<size_t>(cursor)] = c;
            out_val[static_cast<size_t>(cursor)] =
                s.acc[static_cast<size_t>(c)];
            ++cursor;
          }
          s.ResetTouched();
        }
        return Status::Ok();
      }));

  return CsrMatrix::FromParts(rows, cols, std::move(ptr), std::move(out_idx),
                              std::move(out_val));
}

Result<int64_t> SpGemmExactOutputNnz(const CsrMatrix& a, const CsrMatrix& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("dimension mismatch in symbolic spGEMM");
  }
  const Index cols = b.cols();
  ThreadPool& pool = GlobalThreadPool();
  // Per-thread last-touching-row marks: a column counts once per row, and
  // no reset is needed between rows because row ids never repeat.
  std::vector<std::vector<Index>> marks(static_cast<size_t>(pool.threads()));
  return pool.ParallelReduce(
      0, a.rows(), GrainForItems(a.rows(), pool.threads()), int64_t{0},
      [&](int64_t row_begin, int64_t row_end, int thread_index) {
        std::vector<Index>& mark = marks[static_cast<size_t>(thread_index)];
        if (mark.empty()) mark.assign(static_cast<size_t>(cols), -1);
        int64_t nnz = 0;
        for (int64_t r = row_begin; r < row_end; ++r) {
          const SpanView arow = a.Row(static_cast<Index>(r));
          for (Offset k = 0; k < arow.size; ++k) {
            const SpanView brow = b.Row(arow.indices[k]);
            for (Offset l = 0; l < brow.size; ++l) {
              const Index c = brow.indices[l];
              if (mark[static_cast<size_t>(c)] != static_cast<Index>(r)) {
                mark[static_cast<size_t>(c)] = static_cast<Index>(r);
                ++nnz;
              }
            }
          }
        }
        return nnz;
      },
      [](int64_t acc, int64_t partial) { return acc + partial; });
}

}  // namespace sparse
}  // namespace spnet
