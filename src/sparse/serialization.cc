#include "sparse/serialization.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <vector>

#include "verify/fault_injection.h"

namespace spnet {
namespace sparse {

namespace {

constexpr uint32_t kMagic = 0x424E5053;  // 'SPNB' little-endian
constexpr uint32_t kVersion = 1;

struct Header {
  uint32_t magic;
  uint32_t version;
  int64_t rows;
  int64_t cols;
  int64_t nnz;
};

}  // namespace

Status WriteBinary(const CsrMatrix& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  Header header{kMagic, kVersion, m.rows(), m.cols(), m.nnz()};
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(m.ptr().data()),
            static_cast<std::streamsize>(m.ptr().size() * sizeof(Offset)));
  out.write(reinterpret_cast<const char*>(m.indices().data()),
            static_cast<std::streamsize>(m.indices().size() * sizeof(Index)));
  out.write(reinterpret_cast<const char*>(m.values().data()),
            static_cast<std::streamsize>(m.values().size() * sizeof(Value)));
  if (!out) {
    return Status::IoError("write failed for " + path);
  }
  return Status::Ok();
}

Result<CsrMatrix> ReadBinary(const std::string& path) {
  SPNET_RETURN_IF_ERROR(verify::MaybeInjectFault(verify::kSiteLoaderRead));
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  Header header{};
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in) {
    return Status::IoError("truncated header in " + path);
  }
  if (header.magic != kMagic) {
    return Status::InvalidArgument(path + " is not an SPNB file");
  }
  if (header.version != kVersion) {
    return Status::InvalidArgument("unsupported SPNB version " +
                                   std::to_string(header.version));
  }
  if (header.rows < 0 || header.cols < 0 || header.nnz < 0) {
    return Status::InvalidArgument("negative sizes in SPNB header");
  }
  // The casts below truncate to 32-bit Index; reject headers the type
  // cannot represent instead of wrapping silently.
  constexpr int64_t kMaxIndex = std::numeric_limits<Index>::max();
  if (header.rows > kMaxIndex || header.cols > kMaxIndex) {
    return Status::OutOfRange(
        "SPNB header dimensions " + std::to_string(header.rows) + " x " +
        std::to_string(header.cols) + " exceed 32-bit index range");
  }

  std::vector<Offset> ptr(static_cast<size_t>(header.rows) + 1);
  std::vector<Index> idx(static_cast<size_t>(header.nnz));
  std::vector<Value> val(static_cast<size_t>(header.nnz));
  in.read(reinterpret_cast<char*>(ptr.data()),
          static_cast<std::streamsize>(ptr.size() * sizeof(Offset)));
  in.read(reinterpret_cast<char*>(idx.data()),
          static_cast<std::streamsize>(idx.size() * sizeof(Index)));
  in.read(reinterpret_cast<char*>(val.data()),
          static_cast<std::streamsize>(val.size() * sizeof(Value)));
  if (!in) {
    return Status::IoError("truncated body in " + path);
  }
  // FromParts re-validates all structural invariants, so corrupted files
  // surface as InvalidArgument instead of undefined behavior.
  return CsrMatrix::FromParts(static_cast<Index>(header.rows),
                              static_cast<Index>(header.cols), std::move(ptr),
                              std::move(idx), std::move(val));
}

}  // namespace sparse
}  // namespace spnet
