// Fixture: global-mutable-state honors inline suppression markers.
namespace spnet {
namespace {

int g_counter = 0;  // spnet-lint: allow(global-mutable-state)

}  // namespace
}  // namespace spnet
