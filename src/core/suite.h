#ifndef SPNET_CORE_SUITE_H_
#define SPNET_CORE_SUITE_H_

#include <memory>
#include <vector>

#include "spgemm/algorithm.h"

namespace spnet {
namespace core {

/// The full Figure 8/9 comparison set in plot order: row-product,
/// outer-product, cuSPARSE, CUSP, bhSPARSE, MKL, Block-Reorganizer.
std::vector<std::unique_ptr<spgemm::SpGemmAlgorithm>> MakeAllAlgorithms();

/// The Figure 8 set plus the related-work extensions (AC-spGEMM and
/// hash-based nsparse) — used by the extension benchmark.
std::vector<std::unique_ptr<spgemm::SpGemmAlgorithm>> MakeExtendedSuite();

/// The Figure 10 ablation set: B-Limiting only, B-Splitting only,
/// B-Gathering only, and the full Block Reorganizer.
std::vector<std::unique_ptr<spgemm::SpGemmAlgorithm>> MakeAblationSuite();

}  // namespace core
}  // namespace spnet

#endif  // SPNET_CORE_SUITE_H_
