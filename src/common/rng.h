#ifndef SPNET_COMMON_RNG_H_
#define SPNET_COMMON_RNG_H_

#include <cstdint>

namespace spnet {

/// Deterministic, fast pseudo-random number generator (xoshiro256**),
/// seeded via SplitMix64. All dataset generation and any randomized
/// simulation choices flow through this type so that every experiment in
/// the repository is bit-reproducible from a seed.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed using
  /// SplitMix64, as recommended by the xoshiro authors.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) state_[i] = SplitMix64(&x);
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound) {
    if (bound == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>(NextU64()) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(NextU64()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  static uint64_t Rotl(uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace spnet

#endif  // SPNET_COMMON_RNG_H_
