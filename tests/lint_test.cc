// Tests for the spnet_lint analyzer: the lexer's literal/comment
// handling, each rule firing on a violating fixture, staying quiet on a
// clean one and honoring inline suppressions — plus the self-check that
// keeps the repo's own sources lint-clean.

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/lint.h"
#include "lint/runner.h"

#include "gtest/gtest.h"

namespace spnet {
namespace lint {
namespace {

std::vector<Diagnostic> LintFixture(const std::string& name) {
  const std::string path = std::string(SPNET_LINT_FIXTURE_DIR) + "/" + name;
  auto summary = LintPaths({path}, LintOptions());
  EXPECT_TRUE(summary.ok()) << summary.status().ToString();
  if (!summary.ok()) return {};
  EXPECT_EQ(summary->files_linted, 1) << path;
  return summary->diagnostics;
}

int CountRule(const std::vector<Diagnostic>& diagnostics,
              const std::string& rule) {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&rule](const Diagnostic& d) { return d.rule == rule; }));
}

std::string Render(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += FormatDiagnostic(d) + "\n";
  }
  return out;
}

// --- lexer -----------------------------------------------------------------

std::vector<Token> CodeTokens(const std::string& source) {
  std::vector<Token> tokens = Tokenize(source);
  tokens.erase(std::remove_if(tokens.begin(), tokens.end(),
                              [](const Token& t) {
                                return t.kind == TokenKind::kComment;
                              }),
               tokens.end());
  return tokens;
}

TEST(LintLexerTest, TracksLinesAcrossTokenKinds) {
  const std::vector<Token> tokens =
      Tokenize("int a = 1;\n// note\nfloat b;\n");
  ASSERT_EQ(tokens.size(), 9u);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[5].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[5].line, 2);
  EXPECT_EQ(tokens[6].text, "float");
  EXPECT_EQ(tokens[6].line, 3);
}

TEST(LintLexerTest, StringsAndCharsSwallowTriggers) {
  const std::vector<Token> tokens =
      CodeTokens("const char* s = \"new delete\"; char q = '\\'';");
  for (const Token& t : tokens) {
    EXPECT_NE(t.text, "new");
    EXPECT_NE(t.text, "delete");
  }
  ASSERT_GE(tokens.size(), 6u);
  EXPECT_EQ(tokens[5].kind, TokenKind::kString);
  EXPECT_EQ(tokens[5].text, "\"new delete\"");
}

TEST(LintLexerTest, RawStringsSpanLinesWithEndLine) {
  const std::vector<Token> tokens =
      CodeTokens("auto s = R\"tag(\nnew int;\n)tag\";\nint after = 2;");
  const auto raw =
      std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
        return t.kind == TokenKind::kString;
      });
  ASSERT_NE(raw, tokens.end());
  EXPECT_EQ(raw->line, 1);
  EXPECT_EQ(raw->end_line, 3);
  const auto after =
      std::find_if(tokens.begin(), tokens.end(),
                   [](const Token& t) { return t.text == "after"; });
  ASSERT_NE(after, tokens.end());
  EXPECT_EQ(after->line, 4);
}

TEST(LintLexerTest, BlockCommentsAndPreprocAreSingleTokens) {
  const std::vector<Token> tokens = Tokenize(
      "#include <map> // why\n/* a\nb */ int x;\n#define F(a) \\\n  (a)\n");
  ASSERT_GE(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kPreproc);
  EXPECT_EQ(tokens[0].text, "#include <map> ");
  EXPECT_EQ(tokens[1].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[2].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[2].line, 2);
  EXPECT_EQ(tokens[2].end_line, 3);
  const auto define =
      std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
        return t.kind == TokenKind::kPreproc && t.text.rfind("#define", 0) == 0;
      });
  ASSERT_NE(define, tokens.end());
  EXPECT_EQ(define->text, "#define F(a)    (a)");
  EXPECT_EQ(define->end_line, 5);
}

TEST(LintLexerTest, MultiCharPunctuatorsStayWhole) {
  const std::vector<Token> tokens = CodeTokens("a::b->c <<= 1;");
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[1].text, "::");
  EXPECT_EQ(tokens[3].text, "->");
  EXPECT_EQ(tokens[5].text, "<<=");
}

// --- per-rule fixtures -----------------------------------------------------

TEST(LintRuleTest, DiscardedStatusFiresOnBadFixture) {
  const auto diagnostics = LintFixture("discarded_status_bad.cc");
  EXPECT_EQ(CountRule(diagnostics, "discarded-status"), 2)
      << Render(diagnostics);
}

TEST(LintRuleTest, DiscardedStatusQuietOnCleanFixture) {
  const auto diagnostics = LintFixture("discarded_status_clean.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, DiscardedStatusHonorsSuppression) {
  const auto diagnostics = LintFixture("discarded_status_suppressed.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, RawNewDeleteFiresOnBadFixture) {
  const auto diagnostics = LintFixture("raw_new_delete_bad.cc");
  EXPECT_EQ(CountRule(diagnostics, "raw-new-delete"), 2)
      << Render(diagnostics);
}

TEST(LintRuleTest, RawNewDeleteQuietOnCleanFixture) {
  const auto diagnostics = LintFixture("raw_new_delete_clean.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, RawNewDeleteHonorsSuppression) {
  const auto diagnostics = LintFixture("raw_new_delete_suppressed.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, RawNewDeleteHonorsFileAllowlist) {
  LintOptions options;
  options.raw_new_delete_allowlist.push_back("lint_fixtures/raw_new_delete");
  const std::string path =
      std::string(SPNET_LINT_FIXTURE_DIR) + "/raw_new_delete_bad.cc";
  auto summary = LintPaths({path}, options);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_TRUE(summary->diagnostics.empty()) << Render(summary->diagnostics);
}

TEST(LintRuleTest, CharCtypeFiresOnBadFixture) {
  const auto diagnostics = LintFixture("char_ctype_bad.cc");
  EXPECT_EQ(CountRule(diagnostics, "char-ctype"), 2) << Render(diagnostics);
}

TEST(LintRuleTest, CharCtypeQuietOnCleanFixture) {
  const auto diagnostics = LintFixture("char_ctype_clean.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, CharCtypeHonorsSuppression) {
  const auto diagnostics = LintFixture("char_ctype_suppressed.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, GlobalMutableStateFiresOnBadFixture) {
  const auto diagnostics = LintFixture("global_state_bad.cc");
  EXPECT_EQ(CountRule(diagnostics, "global-mutable-state"), 3)
      << Render(diagnostics);
}

TEST(LintRuleTest, GlobalMutableStateQuietOnCleanFixture) {
  const auto diagnostics = LintFixture("global_state_clean.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, GlobalMutableStateHonorsSuppression) {
  const auto diagnostics = LintFixture("global_state_suppressed.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, RelaxedAtomicWarnsOnBadFixture) {
  const auto diagnostics = LintFixture("relaxed_atomic_bad.cc");
  ASSERT_EQ(CountRule(diagnostics, "relaxed-atomic"), 1)
      << Render(diagnostics);
  EXPECT_EQ(diagnostics.front().severity, Severity::kWarning);
}

TEST(LintRuleTest, RelaxedAtomicQuietOnCleanFixture) {
  const auto diagnostics = LintFixture("relaxed_atomic_clean.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, RelaxedAtomicHonorsSuppression) {
  const auto diagnostics = LintFixture("relaxed_atomic_suppressed.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, RelaxedAtomicHonorsDefaultAllowlist) {
  // The same source that warns as a fixture is fine under an allow-listed
  // path: the default allowlist names the audited fast-path files.
  const std::vector<Diagnostic> diagnostics = LintSource(
      "src/metrics/registry.cc",
      "void Touch() { g.fetch_add(1, std::memory_order_relaxed); }\n",
      LintOptions());
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, ExecContextFiresOnBadFixture) {
  const auto diagnostics = LintFixture("exec_context_bad.cc");
  EXPECT_EQ(CountRule(diagnostics, "exec-context-threading"), 2)
      << Render(diagnostics);
}

TEST(LintRuleTest, ExecContextQuietOnCleanFixture) {
  const auto diagnostics = LintFixture("exec_context_clean.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, ExecContextHonorsSuppression) {
  const auto diagnostics = LintFixture("exec_context_suppressed.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, IncludeIostreamFiresOnBadHeader) {
  const auto diagnostics = LintFixture("include_iostream_bad.h");
  EXPECT_EQ(CountRule(diagnostics, "include-iostream"), 1)
      << Render(diagnostics);
}

TEST(LintRuleTest, IncludeIostreamQuietOnCleanHeader) {
  const auto diagnostics = LintFixture("include_iostream_clean.h");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, IncludeIostreamHonorsSuppression) {
  const auto diagnostics = LintFixture("include_iostream_suppressed.h");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, IncludeIostreamIgnoresSourceFiles) {
  const std::vector<Diagnostic> diagnostics =
      LintSource("tool.cc", "#include <iostream>\n", LintOptions());
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, LegacyBatchQueryFiresOnBadFixture) {
  const auto diagnostics = LintFixture("legacy_batch_query_bad.cc");
  EXPECT_EQ(CountRule(diagnostics, "legacy-batch-query"), 2)
      << Render(diagnostics);
}

TEST(LintRuleTest, LegacyBatchQueryQuietOnCleanFixture) {
  const auto diagnostics = LintFixture("legacy_batch_query_clean.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, LegacyBatchQueryHonorsSuppression) {
  const auto diagnostics = LintFixture("legacy_batch_query_suppressed.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, LegacyBatchQueryAllowedInsideEngine) {
  // The engine still defines and adapts the legacy type; the rule only
  // polices the rest of the tree.
  const std::vector<Diagnostic> diagnostics = LintSource(
      "src/engine/batch_runner.cc", "void F() { BatchQuery query; }\n",
      LintOptions());
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, LexerTrickyFixtureIsInert) {
  const auto diagnostics = LintFixture("lexer_tricky.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

// --- diagnostics & catalog -------------------------------------------------

TEST(LintRunnerTest, FormatIsGccStyle) {
  const Diagnostic diagnostic{"src/a.cc", 12, "raw-new-delete",
                              Severity::kError, "boom"};
  EXPECT_EQ(FormatDiagnostic(diagnostic),
            "src/a.cc:12: error: boom [raw-new-delete]");
}

TEST(LintRunnerTest, CatalogCoversEveryEmittedRule) {
  const std::vector<const char*> expected = {
      "discarded-status",     "raw-new-delete", "char-ctype",
      "global-mutable-state", "relaxed-atomic", "exec-context-threading",
      "include-iostream",     "legacy-batch-query"};
  ASSERT_EQ(Rules().size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_STREQ(Rules()[i].name, expected[i]);
  }
}

TEST(LintRunnerTest, LintableExtensions) {
  EXPECT_TRUE(IsLintableFile("a.h"));
  EXPECT_TRUE(IsLintableFile("a.cc"));
  EXPECT_TRUE(IsLintableFile("kernels/a.cuh"));
  EXPECT_FALSE(IsLintableFile("a.md"));
  EXPECT_FALSE(IsLintableFile("CMakeLists.txt"));
}

TEST(LintRunnerTest, MissingPathIsNotFound) {
  auto summary = LintPaths({"definitely/not/a/path"}, LintOptions());
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kNotFound);
}

// --- self-check ------------------------------------------------------------

// The acceptance gate: the repo's own sources are lint-clean. The walk
// skips lint_fixtures/ (this corpus violates rules on purpose).
TEST(LintSelfCheckTest, RepositoryIsLintClean) {
  const std::string root = SPNET_SOURCE_DIR;
  auto summary = LintPaths(
      {root + "/src", root + "/tools", root + "/tests", root + "/bench"},
      LintOptions());
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_GT(summary->files_linted, 100);
  EXPECT_EQ(summary->errors, 0) << Render(summary->diagnostics);
  EXPECT_EQ(summary->warnings, 0) << Render(summary->diagnostics);
}

}  // namespace
}  // namespace lint
}  // namespace spnet
