// Fixture: relaxed-atomic warns outside the audited fast-path files.
#include <atomic>
#include <cstdint>

namespace spnet {
namespace {

std::atomic<int64_t> g_hits{0};

}  // namespace

void Touch() { g_hits.fetch_add(1, std::memory_order_relaxed); }

}  // namespace spnet
