#ifndef SPNET_SPARSE_TYPES_H_
#define SPNET_SPARSE_TYPES_H_

#include <cstdint>

namespace spnet {
namespace sparse {

/// Row/column index. 32 bits covers every dataset in the paper
/// (largest dimension: 1.1M for youtube).
using Index = int32_t;

/// Offset into the nonzero arrays. 64 bits: intermediate products of the
/// skewed networks exceed 2^31 (e.g. loc-gowalla nnz(C-hat) = 456M at full
/// scale).
using Offset = int64_t;

/// Numeric value of a nonzero. Edge weights in the paper's workloads.
using Value = double;

}  // namespace sparse
}  // namespace spnet

#endif  // SPNET_SPARSE_TYPES_H_
