// Fixture: consumed Status/Result values never fire discarded-status.
#include "common/status.h"

namespace spnet {

Status Run();

Status Demo(ThreadPool& pool) {
  const Status status = Run();
  if (!status.ok()) return status;
  SPNET_CHECK_OK(pool.ParallelFor(0, 8, 1, Chunk));
  if (!Run().ok()) {
    return Status::Internal("retry failed");
  }
  return Run();
}

}  // namespace spnet
