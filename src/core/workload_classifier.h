#ifndef SPNET_CORE_WORKLOAD_CLASSIFIER_H_
#define SPNET_CORE_WORKLOAD_CLASSIFIER_H_

#include <cstdint>
#include <vector>

#include "core/reorganizer_config.h"
#include "sparse/csr_matrix.h"
#include "sparse/types.h"
#include "spgemm/nnz_estimator.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace spgemm {
struct ExecContext;
}  // namespace spgemm

namespace core {

/// The Block Reorganizer's pre-process output (paper Fig. 4): every
/// nonzero column/row pair lands in exactly one of three bins, and merge
/// rows are split into limited / non-limited.
struct Classification {
  /// Pairs whose intermediate output exceeds the dominator threshold
  /// ("Dominator bin") — targets of B-Splitting.
  std::vector<sparse::Index> dominators;
  /// Pairs with fewer than warp-size effective threads ("Low performer
  /// bin") — targets of B-Gathering.
  std::vector<sparse::Index> low_performers;
  /// Everything else ("Normal bin").
  std::vector<sparse::Index> normals;

  /// Output rows whose C-hat population exceeds the limiting threshold
  /// ("Limiting bin") — merged by the residency-limited kernel.
  std::vector<sparse::Index> limited_rows;

  int64_t dominator_threshold = 0;
  int64_t limit_row_threshold = 0;
};

/// Classifies every nonzero pair of `workload` per the config thresholds.
/// A pair is a dominator when pair_work > dominator threshold; otherwise a
/// low performer when its effective thread count (nnz of the B row) is
/// below the warp size; otherwise normal. Zero-work pairs are dropped.
///
/// With a context, records a "classify" span plus classifier.* gauges
/// (bin populations and both thresholds). Gauges, not counters: Plan and
/// Compute both classify, and re-derivation must not double-count.
Classification Classify(const spgemm::Workload& workload,
                        const ReorganizerConfig& config,
                        spgemm::ExecContext* ctx = nullptr);

/// Classifies from a sampled estimate (spgemm::BuildWorkloadEstimated)
/// instead of the exact precalculation. Thresholds come from the estimated
/// totals; an entry whose guaranteed band clears a threshold is classified
/// without ever computing its exact value, and exact precalculation runs
/// only for the entries whose band straddles the threshold (a flagged
/// column recount over A's indices for pairs, a per-row rescan for rows).
///
/// `est` is patched in place: fallback entries get their exact values with
/// collapsed bands, and est->confidence is refreshed to the post-fallback
/// exact-mass fraction. The result relates to the exact classification by
/// verify::CheckEstimatedClassification — wherever a band did not straddle
/// the chosen threshold, the class equals the exact tier's class under the
/// same thresholds. Pairs whose band upper bound is positive but whose
/// exact work is zero may appear as phantom low performers / normals;
/// those expand zero products downstream, never wrong ones.
Classification ClassifyEstimated(spgemm::EstimatedWorkload* est,
                                 const sparse::CsrMatrix& a,
                                 const sparse::CsrMatrix& b,
                                 const ReorganizerConfig& config,
                                 spgemm::ExecContext* ctx = nullptr);

}  // namespace core
}  // namespace spnet

#endif  // SPNET_CORE_WORKLOAD_CLASSIFIER_H_
