#ifndef SPNET_ENGINE_BATCH_RUNNER_H_
#define SPNET_ENGINE_BATCH_RUNNER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/reorganizer_config.h"
#include "engine/plan_cache.h"
#include "gpusim/device_spec.h"
#include "sparse/csr_matrix.h"
#include "spgemm/algorithm.h"
#include "spgemm/exec_context.h"

namespace spnet {
namespace engine {

/// One query of a batch: measure C = A*B (B null means C = A^2) with the
/// named algorithm. Matrices are shared immutably so a manifest that
/// queries the same graph many times loads it once.
struct BatchQuery {
  std::string id;
  std::shared_ptr<const sparse::CsrMatrix> a;
  /// Null selects A as the second operand (C = A^2, the paper's workload).
  std::shared_ptr<const sparse::CsrMatrix> b;
  std::string algorithm = "reorganizer";
  /// Sentinel for deadline_ms: inherit BatchOptions::default_deadline_ms.
  static constexpr double kInheritDeadline = -1.0;
  /// Wall-clock budget for this query in ms. Negative (the default)
  /// inherits the batch-level default; 0 is an already-expired deadline
  /// (the query reports DeadlineExceeded without doing work); positive is
  /// the budget. A zero budget used to mean "inherit", which made an
  /// expired deadline impossible to express per query.
  double deadline_ms = kInheritDeadline;
};

/// Outcome of one query. `status` is per-query: a failed or expired query
/// never fails the batch.
struct QueryResult {
  std::string id;
  Status status;
  /// Algorithm that actually produced the measurement (the fallback's name
  /// when degradation kicked in).
  std::string algorithm_used;
  bool plan_cache_hit = false;
  bool fallback_used = false;
  /// Host wall-clock spent on this query (fingerprint + plan + simulate).
  double wall_ms = 0.0;
  /// Simulated end-to-end seconds on the device, as milliseconds.
  double sim_ms = 0.0;
  double gflops = 0.0;
  int64_t flops = 0;
  int64_t output_nnz = 0;
};

/// Everything the batch produced, plus the run-level aggregates the CLI
/// summary line and the bench tables print.
struct BatchReport {
  std::vector<QueryResult> results;
  double wall_ms = 0.0;
  int64_t succeeded = 0;
  int64_t failed = 0;
  int64_t fallbacks = 0;
  int64_t deadline_expired = 0;
  /// Plan-cache activity attributable to this Run call (deltas, so
  /// repeated Run calls on one runner report per-run numbers).
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t plan_cache_evictions = 0;
};

struct BatchOptions {
  /// Max plans kept by the runner's LRU cache; 0 disables plan caching.
  size_t plan_cache_capacity = 64;
  /// Algorithm used when a query's own algorithm cannot be built or its
  /// Plan fails (graceful degradation). Must name a registry baseline.
  std::string fallback_algorithm = "outer-product";
  /// Knobs for queries naming "reorganizer". Invalid knobs degrade those
  /// queries to the fallback instead of failing the batch.
  core::ReorganizerConfig reorganizer_config;
  gpusim::DeviceSpec device = gpusim::DeviceSpec::TitanXp();
  /// Deadline applied to queries that do not set their own; <= 0 = none.
  double default_deadline_ms = 0.0;
};

/// Executes batches of spGEMM queries concurrently over the global
/// ThreadPool, reusing plans across queries with the same matrix structure
/// through a PlanCache.
///
/// Per query: fingerprint both operands (memoized per distinct matrix),
/// look the plan up in the cache, build it on a miss, then simulate on the
/// configured device. A query whose algorithm cannot be built or whose
/// Plan fails is retried with the fallback baseline; a query that exceeds
/// its deadline reports DeadlineExceeded. Both outcomes land in that
/// query's QueryResult::status — Run itself fails only for malformed input
/// or an unbuildable fallback.
///
/// Observability: Run records engine.batch.* counters and the plan cache
/// records engine.plan_cache.* counters on the ExecContext's registry
/// (thread-safe). Trace spans cover the batch stages, not individual
/// queries — the TraceRecorder is single-threaded by design, so worker
/// threads do not touch it.
///
/// The runner is reusable: consecutive Run calls share the plan cache,
/// which is what makes a warm batch fast. Concurrent Run calls on one
/// runner are not supported (the global pool serializes them anyway).
class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options);

  [[nodiscard]] Result<BatchReport> Run(const std::vector<BatchQuery>& queries,
                                        spgemm::ExecContext* ctx = nullptr);

  PlanCache& plan_cache() { return cache_; }
  const BatchOptions& options() const { return options_; }

 private:
  /// Resolved (and memoized) algorithm instance, or the creation error.
  struct AlgorithmEntry {
    const spgemm::SpGemmAlgorithm* algorithm = nullptr;
    Status status;
  };

  /// Looks up / creates the named algorithm. Serial-phase only.
  const AlgorithmEntry& ResolveAlgorithm(const std::string& name);

  void RunOne(const BatchQuery& query, uint64_t fp_a, uint64_t fp_b,
              const AlgorithmEntry& primary, const AlgorithmEntry& fallback,
              spgemm::ExecContext* ctx, QueryResult* result);

  BatchOptions options_;
  uint64_t reorganizer_config_fp_ = 0;
  PlanCache cache_;
  /// Memoized algorithm instances, keyed by name. Mutated only between
  /// batches (ResolveAlgorithm runs before the parallel phase), read-only
  /// while workers are in flight.
  std::map<std::string, std::unique_ptr<spgemm::SpGemmAlgorithm>> instances_;
  std::map<std::string, AlgorithmEntry> resolved_;
};

}  // namespace engine
}  // namespace spnet

#endif  // SPNET_ENGINE_BATCH_RUNNER_H_
