#include <gtest/gtest.h>

#include "common/math_util.h"
#include "core/b_splitting.h"
#include "core/workload_classifier.h"
#include "spgemm/workload_model.h"
#include "tests/test_util.h"

namespace spnet {
namespace core {
namespace {

using sparse::CsrMatrix;
using sparse::Index;

struct Fixture {
  CsrMatrix a;
  spgemm::Workload w;
  Classification c;
  gpusim::DeviceSpec device = gpusim::DeviceSpec::TitanXp();

  explicit Fixture(uint64_t seed)
      : a(testing_util::SkewedMatrix(600, 500, seed)),
        w(spgemm::BuildWorkload(a, a)),
        c(Classify(w, ReorganizerConfig{})) {}
};

TEST(SplittingTest, FragmentsPartitionEachColumn) {
  Fixture f(51);
  ASSERT_FALSE(f.c.dominators.empty());
  const SplitPlan plan =
      BuildSplitPlan(f.w, f.c.dominators, ReorganizerConfig{}, f.device);
  ASSERT_EQ(plan.vectors.size(), f.c.dominators.size());
  for (const SplitVector& v : plan.vectors) {
    const int64_t col_nnz = f.w.a_col_nnz[static_cast<size_t>(v.pair)];
    ASSERT_EQ(v.offsets.size(), static_cast<size_t>(v.factor) + 1);
    EXPECT_EQ(v.offsets.front(), 0);
    EXPECT_EQ(v.offsets.back(), col_nnz);
    for (size_t i = 0; i + 1 < v.offsets.size(); ++i) {
      EXPECT_LE(v.offsets[i], v.offsets[i + 1]);
    }
    EXPECT_TRUE(IsPow2(v.factor));
  }
}

TEST(SplittingTest, FragmentsAreEvenWithinOne) {
  Fixture f(53);
  const SplitPlan plan =
      BuildSplitPlan(f.w, f.c.dominators, ReorganizerConfig{}, f.device);
  for (const SplitVector& v : plan.vectors) {
    int64_t min_size = INT64_MAX;
    int64_t max_size = 0;
    for (int i = 0; i < v.factor; ++i) {
      const int64_t size = v.offsets[static_cast<size_t>(i) + 1] -
                           v.offsets[static_cast<size_t>(i)];
      min_size = std::min(min_size, size);
      max_size = std::max(max_size, size);
    }
    EXPECT_LE(max_size - min_size, 1);
  }
}

TEST(SplittingTest, HeuristicSpreadsPastSmCount) {
  Fixture f(55);
  const SplitPlan plan =
      BuildSplitPlan(f.w, f.c.dominators, ReorganizerConfig{}, f.device);
  for (const SplitVector& v : plan.vectors) {
    const int64_t col_nnz = f.w.a_col_nnz[static_cast<size_t>(v.pair)];
    if (col_nnz >= 2 * f.device.num_sms) {
      EXPECT_GE(v.factor, 2 * f.device.num_sms);
    } else {
      // Never split below one element per fragment.
      EXPECT_LE(v.factor, col_nnz);
    }
  }
}

TEST(SplittingTest, OverrideForcesUniformFactor) {
  Fixture f(57);
  ReorganizerConfig config;
  config.splitting_factor_override = 8;
  const SplitPlan plan =
      BuildSplitPlan(f.w, f.c.dominators, config, f.device);
  for (const SplitVector& v : plan.vectors) {
    const int64_t col_nnz = f.w.a_col_nnz[static_cast<size_t>(v.pair)];
    EXPECT_EQ(v.factor, std::min<int64_t>(8, PrevPow2(col_nnz)));
  }
}

TEST(SplittingTest, MapperCoversEveryFragmentInOrder) {
  Fixture f(59);
  const SplitPlan plan =
      BuildSplitPlan(f.w, f.c.dominators, ReorganizerConfig{}, f.device);
  const std::vector<Index> mapper = plan.BuildMapper();
  EXPECT_EQ(static_cast<int64_t>(mapper.size()), plan.total_fragments);
  size_t cursor = 0;
  for (const SplitVector& v : plan.vectors) {
    for (int i = 0; i < v.factor; ++i) {
      ASSERT_LT(cursor, mapper.size());
      EXPECT_EQ(mapper[cursor], v.pair);
      ++cursor;
    }
  }
}

TEST(SplittingTest, CopiedElementsAccountsBothVectors) {
  Fixture f(61);
  const SplitPlan plan =
      BuildSplitPlan(f.w, f.c.dominators, ReorganizerConfig{}, f.device);
  int64_t expected = 0;
  for (Index pair : f.c.dominators) {
    expected += f.w.a_col_nnz[static_cast<size_t>(pair)] +
                f.w.b_row_nnz[static_cast<size_t>(pair)];
  }
  EXPECT_EQ(plan.copied_elements, expected);
}

TEST(SplittingTest, EmptyDominatorsYieldEmptyPlan) {
  Fixture f(63);
  const SplitPlan plan =
      BuildSplitPlan(f.w, {}, ReorganizerConfig{}, f.device);
  EXPECT_TRUE(plan.vectors.empty());
  EXPECT_EQ(plan.total_fragments, 0);
  EXPECT_EQ(plan.copied_elements, 0);
}

TEST(SplittingTest, BiggerDeviceSplitsFiner) {
  Fixture f(65);
  const SplitPlan titan =
      BuildSplitPlan(f.w, f.c.dominators, ReorganizerConfig{}, f.device);
  const SplitPlan v100 = BuildSplitPlan(f.w, f.c.dominators,
                                        ReorganizerConfig{},
                                        gpusim::DeviceSpec::TeslaV100());
  // 80 SMs need at least as many fragments as 30 SMs.
  EXPECT_GE(v100.total_fragments, titan.total_fragments);
}

}  // namespace
}  // namespace core
}  // namespace spnet
