#ifndef SPNET_ENGINE_BATCH_RUNNER_H_
#define SPNET_ENGINE_BATCH_RUNNER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/deprecation.h"
#include "common/status.h"
#include "core/reorganizer_config.h"
#include "engine/plan_cache.h"
#include "engine/request.h"
#include "gpusim/device_spec.h"
#include "sparse/csr_matrix.h"
#include "spgemm/algorithm.h"
#include "spgemm/exec_context.h"

namespace spnet {
namespace engine {

/// Legacy form of one query of a batch (see engine::Request for the
/// current request currency, which adds tenant/priority/schema fields).
/// Kept as a thin adapter so pre-Request callers keep compiling; new code
/// should build engine::Request via RequestBuilder instead. The
/// legacy-batch-query lint rule flags direct construction outside
/// src/engine.
struct BatchQuery {
  std::string id;
  std::shared_ptr<const sparse::CsrMatrix> a;
  /// Null selects A as the second operand (C = A^2, the paper's workload).
  std::shared_ptr<const sparse::CsrMatrix> b;
  std::string algorithm = "reorganizer";
  /// Sentinel for deadline_ms: inherit BatchOptions::default_deadline_ms.
  static constexpr double kInheritDeadline = -1.0;
  /// Wall-clock budget for this query in ms. Negative (the default)
  /// inherits the batch-level default; 0 is an already-expired deadline
  /// (the query reports DeadlineExceeded without doing work); positive is
  /// the budget. A zero budget used to mean "inherit", which made an
  /// expired deadline impossible to express per query.
  double deadline_ms = kInheritDeadline;
};

/// Legacy outcome of one query; engine::Response is the current form
/// (same measurement fields plus tenant identity).
struct QueryResult {
  std::string id;
  Status status;
  /// Algorithm that actually produced the measurement (the fallback's name
  /// when degradation kicked in).
  std::string algorithm_used;
  bool plan_cache_hit = false;
  bool fallback_used = false;
  /// Host wall-clock spent on this query (fingerprint + plan + simulate).
  double wall_ms = 0.0;
  /// Simulated end-to-end seconds on the device, as milliseconds.
  double sim_ms = 0.0;
  double gflops = 0.0;
  int64_t flops = 0;
  int64_t output_nnz = 0;
};

/// Everything one Execute call produced, plus the run-level aggregates the
/// CLI summary line, the serve metrics, and the bench tables print.
struct ExecutionReport {
  std::vector<Response> responses;
  double wall_ms = 0.0;
  int64_t succeeded = 0;
  int64_t failed = 0;
  int64_t fallbacks = 0;
  int64_t deadline_expired = 0;
  /// Plan-cache activity attributable to this Execute call (deltas, so
  /// repeated calls on one runner report per-run numbers). When the cache
  /// is shared across runners (serve workers), concurrent activity from
  /// other runners lands in these deltas too — the counters are global to
  /// the cache, not to the caller.
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t plan_cache_evictions = 0;
  /// Plans refused by the cache's confidence-admission floor this run.
  int64_t plan_cache_rejected_low_confidence = 0;
};

/// Legacy report shape returned by Run; ExecutionReport is the current
/// form.
struct BatchReport {
  std::vector<QueryResult> results;
  double wall_ms = 0.0;
  int64_t succeeded = 0;
  int64_t failed = 0;
  int64_t fallbacks = 0;
  int64_t deadline_expired = 0;
  /// Plan-cache activity attributable to this Run call (deltas, so
  /// repeated Run calls on one runner report per-run numbers).
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t plan_cache_evictions = 0;
};

struct BatchOptions {
  /// Max plans kept by the runner's LRU cache; 0 disables plan caching.
  /// Ignored when shared_plan_cache is set.
  size_t plan_cache_capacity = 64;
  /// Lock shards for the runner-owned plan cache (see PlanCache). The
  /// default of 1 preserves exact global LRU order; the serving layer
  /// raises it. Ignored when shared_plan_cache is set.
  size_t plan_cache_shards = 1;
  /// When set, the runner uses this cache instead of creating its own.
  /// This is how serve workers — one BatchRunner per worker thread, since
  /// a runner's algorithm memo is not thread-safe — share one plan cache
  /// so any worker's planning warms every other worker.
  std::shared_ptr<PlanCache> shared_plan_cache;
  /// Algorithm used when a query's own algorithm cannot be built or its
  /// Plan fails (graceful degradation). Must name a registry baseline.
  std::string fallback_algorithm = "outer-product";
  /// Admission floor for the runner-owned plan cache: plans whose
  /// confidence (SpGemmPlan::confidence, < 1.0 only for the estimated
  /// planning tier) falls below this are served but never cached. Ignored
  /// when shared_plan_cache is set (the shared cache carries its own
  /// floor).
  double plan_min_confidence = 0.25;
  /// Knobs for queries naming "reorganizer". Invalid knobs degrade those
  /// queries to the fallback instead of failing the batch.
  core::ReorganizerConfig reorganizer_config;
  gpusim::DeviceSpec device = gpusim::DeviceSpec::TitanXp();
  /// Deadline applied to queries that do not set their own; <= 0 = none.
  double default_deadline_ms = 0.0;
};

/// Executes batches of spGEMM requests concurrently over the global
/// ThreadPool, reusing plans across requests with the same matrix
/// structure through a PlanCache.
///
/// Per request: fingerprint both operands (memoized per distinct matrix),
/// look the plan up in the cache, build it on a miss, then simulate on the
/// configured device. A request whose algorithm cannot be built or whose
/// Plan fails is retried with the fallback baseline; a request that
/// exceeds its deadline reports DeadlineExceeded. Both outcomes land in
/// that request's Response::status — Execute itself fails only for
/// malformed input or an unbuildable fallback.
///
/// Observability: Execute records engine.batch.* counters and the plan
/// cache records engine.plan_cache.* counters on the ExecContext's
/// registry (thread-safe). Trace spans cover the batch stages, not
/// individual requests — the TraceRecorder is single-threaded by design,
/// so worker threads do not touch it.
///
/// The runner is reusable: consecutive Execute calls share the plan cache,
/// which is what makes a warm batch fast. Concurrent Execute calls on one
/// runner are not supported (the algorithm memo mutates between batches);
/// concurrent runners may share a cache via BatchOptions::shared_plan_cache.
class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options);

  /// Executes every request and reports per-request Responses plus
  /// run-level aggregates. The requests' schema_version must be the one
  /// this binary speaks (InvalidArgument otherwise).
  [[nodiscard]] Result<ExecutionReport> Execute(
      const std::vector<Request>& requests,
      spgemm::ExecContext* ctx = nullptr);

  /// Legacy entry point: adapts BatchQuery to Request, Executes, and
  /// converts back.
  SPNET_DEPRECATED("use BatchRunner::Execute with engine::Request")
  [[nodiscard]] Result<BatchReport> Run(const std::vector<BatchQuery>& queries,
                                        spgemm::ExecContext* ctx = nullptr);

  PlanCache& plan_cache() { return *cache_; }
  /// The runner's cache in shareable form, for wiring additional runners
  /// onto the same cache.
  const std::shared_ptr<PlanCache>& shared_plan_cache() const {
    return cache_;
  }
  const BatchOptions& options() const { return options_; }

 private:
  /// Resolved (and memoized) algorithm instance, or the creation error.
  struct AlgorithmEntry {
    const spgemm::SpGemmAlgorithm* algorithm = nullptr;
    Status status;
  };

  /// Looks up / creates the named algorithm. Serial-phase only.
  const AlgorithmEntry& ResolveAlgorithm(const std::string& name);

  void RunOne(const Request& request, uint64_t fp_a, uint64_t fp_b,
              const AlgorithmEntry& primary, const AlgorithmEntry& fallback,
              spgemm::ExecContext* ctx, Response* response);

  BatchOptions options_;
  uint64_t reorganizer_config_fp_ = 0;
  std::shared_ptr<PlanCache> cache_;
  /// Memoized algorithm instances, keyed by name. Mutated only between
  /// batches (ResolveAlgorithm runs before the parallel phase), read-only
  /// while workers are in flight.
  std::map<std::string, std::unique_ptr<spgemm::SpGemmAlgorithm>> instances_;
  std::map<std::string, AlgorithmEntry> resolved_;
};

/// Adapters bridging the legacy BatchQuery surface onto the Request API.
/// They live here (not request.h) so only legacy-aware code pulls in the
/// legacy types.
Request RequestFromQuery(const BatchQuery& query);
QueryResult QueryResultFromResponse(const Response& response);
BatchReport BatchReportFromExecution(const ExecutionReport& report);

}  // namespace engine
}  // namespace spnet

#endif  // SPNET_ENGINE_BATCH_RUNNER_H_
