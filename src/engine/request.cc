#include "engine/request.h"

namespace spnet {
namespace engine {

Status ValidateSchemaVersion(int schema_version) {
  if (schema_version == kRequestSchemaVersion) return Status::Ok();
  return Status::InvalidArgument(
      "unsupported request schema_version " + std::to_string(schema_version) +
      " (this binary speaks version " +
      std::to_string(kRequestSchemaVersion) + ")");
}

Result<Request> RequestBuilder::Build() const {
  SPNET_RETURN_IF_ERROR(ValidateSchemaVersion(request_.schema_version));
  if (request_.id.empty()) {
    return Status::InvalidArgument("request has no id");
  }
  if (request_.a == nullptr) {
    return Status::InvalidArgument("request '" + request_.id +
                                   "' has no A operand");
  }
  if (request_.algorithm.empty()) {
    return Status::InvalidArgument("request '" + request_.id +
                                   "' has an empty algorithm name");
  }
  Request request = request_;
  if (request.deadline_ms < 0.0) {
    request.deadline_ms = Request::kInheritDeadline;
  }
  return request;
}

}  // namespace engine
}  // namespace spnet
