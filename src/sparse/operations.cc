#include "sparse/operations.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>

namespace spnet {
namespace sparse {

namespace {

Status CheckSameShape(const CsrMatrix& a, const CsrMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::InvalidArgument(
        "shape mismatch: " + std::to_string(a.rows()) + "x" +
        std::to_string(a.cols()) + " vs " + std::to_string(b.rows()) + "x" +
        std::to_string(b.cols()));
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<Value>> SpMv(const CsrMatrix& a,
                                const std::vector<Value>& x) {
  if (static_cast<Index>(x.size()) != a.cols()) {
    return Status::InvalidArgument("SpMv: x has " + std::to_string(x.size()) +
                                   " entries, A has " +
                                   std::to_string(a.cols()) + " columns");
  }
  std::vector<Value> y(static_cast<size_t>(a.rows()), 0.0);
  for (Index r = 0; r < a.rows(); ++r) {
    const SpanView row = a.Row(r);
    Value acc = 0.0;
    for (Offset k = 0; k < row.size; ++k) {
      acc += row.values[k] * x[static_cast<size_t>(row.indices[k])];
    }
    y[static_cast<size_t>(r)] = acc;
  }
  return y;
}

Result<std::vector<Value>> SpMvTranspose(const CsrMatrix& a,
                                         const std::vector<Value>& x) {
  if (static_cast<Index>(x.size()) != a.rows()) {
    return Status::InvalidArgument(
        "SpMvTranspose: x has " + std::to_string(x.size()) +
        " entries, A has " + std::to_string(a.rows()) + " rows");
  }
  std::vector<Value> y(static_cast<size_t>(a.cols()), 0.0);
  for (Index r = 0; r < a.rows(); ++r) {
    const SpanView row = a.Row(r);
    const Value xr = x[static_cast<size_t>(r)];
    if (xr == 0.0) continue;
    for (Offset k = 0; k < row.size; ++k) {
      y[static_cast<size_t>(row.indices[k])] += row.values[k] * xr;
    }
  }
  return y;
}

Result<CsrMatrix> Add(const CsrMatrix& a, const CsrMatrix& b, Value alpha,
                      Value beta) {
  SPNET_RETURN_IF_ERROR(CheckSameShape(a, b));
  std::vector<Offset> ptr(static_cast<size_t>(a.rows()) + 1, 0);
  std::vector<Index> idx;
  std::vector<Value> val;
  idx.reserve(static_cast<size_t>(a.nnz() + b.nnz()));
  val.reserve(static_cast<size_t>(a.nnz() + b.nnz()));

  for (Index r = 0; r < a.rows(); ++r) {
    const SpanView ra = a.Row(r);
    const SpanView rb = b.Row(r);
    // Two-pointer merge; inputs in this library keep rows sorted.
    Offset i = 0, j = 0;
    while (i < ra.size || j < rb.size) {
      Index ca = i < ra.size ? ra.indices[i] : a.cols();
      Index cb = j < rb.size ? rb.indices[j] : a.cols();
      if (ca < cb) {
        idx.push_back(ca);
        val.push_back(alpha * ra.values[i]);
        ++i;
      } else if (cb < ca) {
        idx.push_back(cb);
        val.push_back(beta * rb.values[j]);
        ++j;
      } else {
        idx.push_back(ca);
        val.push_back(alpha * ra.values[i] + beta * rb.values[j]);
        ++i;
        ++j;
      }
    }
    ptr[static_cast<size_t>(r) + 1] = static_cast<Offset>(idx.size());
  }
  return CsrMatrix::FromParts(a.rows(), a.cols(), std::move(ptr),
                              std::move(idx), std::move(val));
}

Result<CsrMatrix> Hadamard(const CsrMatrix& a, const CsrMatrix& b) {
  SPNET_RETURN_IF_ERROR(CheckSameShape(a, b));
  std::vector<Offset> ptr(static_cast<size_t>(a.rows()) + 1, 0);
  std::vector<Index> idx;
  std::vector<Value> val;
  for (Index r = 0; r < a.rows(); ++r) {
    const SpanView ra = a.Row(r);
    const SpanView rb = b.Row(r);
    Offset i = 0, j = 0;
    while (i < ra.size && j < rb.size) {
      if (ra.indices[i] < rb.indices[j]) {
        ++i;
      } else if (rb.indices[j] < ra.indices[i]) {
        ++j;
      } else {
        idx.push_back(ra.indices[i]);
        val.push_back(ra.values[i] * rb.values[j]);
        ++i;
        ++j;
      }
    }
    ptr[static_cast<size_t>(r) + 1] = static_cast<Offset>(idx.size());
  }
  return CsrMatrix::FromParts(a.rows(), a.cols(), std::move(ptr),
                              std::move(idx), std::move(val));
}

CsrMatrix Scale(const CsrMatrix& a, Value alpha) {
  std::vector<Value> val(a.values());
  for (Value& v : val) v *= alpha;
  auto result = CsrMatrix::FromParts(a.rows(), a.cols(), a.ptr(), a.indices(),
                                     std::move(val));
  return std::move(result).value();  // same structure: cannot fail
}

Result<CsrMatrix> Submatrix(const CsrMatrix& a, Index row_begin,
                            Index row_end, Index col_begin, Index col_end) {
  if (row_begin < 0 || row_end > a.rows() || row_begin > row_end ||
      col_begin < 0 || col_end > a.cols() || col_begin > col_end) {
    return Status::OutOfRange("submatrix range out of bounds");
  }
  std::vector<Offset> ptr(static_cast<size_t>(row_end - row_begin) + 1, 0);
  std::vector<Index> idx;
  std::vector<Value> val;
  for (Index r = row_begin; r < row_end; ++r) {
    const SpanView row = a.Row(r);
    for (Offset k = 0; k < row.size; ++k) {
      const Index c = row.indices[k];
      if (c >= col_begin && c < col_end) {
        idx.push_back(c - col_begin);
        val.push_back(row.values[k]);
      }
    }
    ptr[static_cast<size_t>(r - row_begin) + 1] =
        static_cast<Offset>(idx.size());
  }
  return CsrMatrix::FromParts(row_end - row_begin, col_end - col_begin,
                              std::move(ptr), std::move(idx), std::move(val));
}

CsrMatrix DropEntries(const CsrMatrix& a, Value threshold) {
  std::vector<Offset> ptr(static_cast<size_t>(a.rows()) + 1, 0);
  std::vector<Index> idx;
  std::vector<Value> val;
  for (Index r = 0; r < a.rows(); ++r) {
    const SpanView row = a.Row(r);
    for (Offset k = 0; k < row.size; ++k) {
      if (std::fabs(row.values[k]) > threshold) {
        idx.push_back(row.indices[k]);
        val.push_back(row.values[k]);
      }
    }
    ptr[static_cast<size_t>(r) + 1] = static_cast<Offset>(idx.size());
  }
  auto result = CsrMatrix::FromParts(a.rows(), a.cols(), std::move(ptr),
                                     std::move(idx), std::move(val));
  return std::move(result).value();  // subset of a valid matrix
}

CsrMatrix TopKPerRow(const CsrMatrix& a, Index k) {
  std::vector<Offset> ptr(static_cast<size_t>(a.rows()) + 1, 0);
  std::vector<Index> idx;
  std::vector<Value> val;
  std::vector<std::pair<Value, Index>> buf;
  for (Index r = 0; r < a.rows(); ++r) {
    const SpanView row = a.Row(r);
    buf.clear();
    for (Offset i = 0; i < row.size; ++i) {
      buf.emplace_back(row.values[i], row.indices[i]);
    }
    const size_t keep = std::min<size_t>(static_cast<size_t>(std::max<Index>(k, 0)),
                                         buf.size());
    // Ties at the k boundary are broken by ascending column index; a
    // magnitude-only comparator would keep an arbitrary survivor among
    // equal-magnitude entries, making top-k depend on input entry order
    // (which a reordering pre-pass changes).
    std::partial_sort(buf.begin(), buf.begin() + static_cast<ptrdiff_t>(keep),
                      buf.end(), [](const auto& x, const auto& y) {
                        const double ax = std::fabs(x.first);
                        const double ay = std::fabs(y.first);
                        if (ax != ay) return ax > ay;
                        return x.second < y.second;
                      });
    buf.resize(keep);
    std::sort(buf.begin(), buf.end(), [](const auto& x, const auto& y) {
      return x.second < y.second;
    });
    for (const auto& [v, c] : buf) {
      idx.push_back(c);
      val.push_back(v);
    }
    ptr[static_cast<size_t>(r) + 1] = static_cast<Offset>(idx.size());
  }
  auto result = CsrMatrix::FromParts(a.rows(), a.cols(), std::move(ptr),
                                     std::move(idx), std::move(val));
  return std::move(result).value();
}

double FrobeniusNorm(const CsrMatrix& a) {
  double sum = 0.0;
  for (Value v : a.values()) sum += static_cast<double>(v) * v;
  return std::sqrt(sum);
}

Value EntrySum(const CsrMatrix& a) {
  Value sum = 0.0;
  for (Value v : a.values()) sum += v;
  return sum;
}

CsrMatrix Identity(Index n) {
  std::vector<Offset> ptr(static_cast<size_t>(n) + 1);
  std::vector<Index> idx(static_cast<size_t>(n));
  std::vector<Value> val(static_cast<size_t>(n), 1.0);
  for (Index i = 0; i <= n; ++i) ptr[static_cast<size_t>(i)] = i;
  for (Index i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
  auto result = CsrMatrix::FromParts(n, n, std::move(ptr), std::move(idx),
                                     std::move(val));
  return std::move(result).value();
}

CsrMatrix RowNormalize(const CsrMatrix& a) {
  std::vector<Value> val(a.values());
  size_t cursor = 0;
  for (Index r = 0; r < a.rows(); ++r) {
    const SpanView row = a.Row(r);
    Value sum = 0.0;
    for (Offset k = 0; k < row.size; ++k) sum += row.values[k];
    for (Offset k = 0; k < row.size; ++k, ++cursor) {
      if (sum != 0.0) val[cursor] /= sum;
    }
  }
  auto result = CsrMatrix::FromParts(a.rows(), a.cols(), a.ptr(), a.indices(),
                                     std::move(val));
  return std::move(result).value();
}

CsrMatrix Diagonal(const std::vector<Value>& d) {
  const Index n = static_cast<Index>(d.size());
  std::vector<Offset> ptr(static_cast<size_t>(n) + 1);
  std::vector<Index> idx(static_cast<size_t>(n));
  for (Index i = 0; i <= n; ++i) ptr[static_cast<size_t>(i)] = i;
  for (Index i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
  auto result = CsrMatrix::FromParts(n, n, std::move(ptr), std::move(idx), d);
  return std::move(result).value();
}

std::vector<Value> ExtractDiagonal(const CsrMatrix& a) {
  const Index n = std::min(a.rows(), a.cols());
  std::vector<Value> d(static_cast<size_t>(n), 0.0);
  for (Index r = 0; r < n; ++r) {
    const SpanView row = a.Row(r);
    for (Offset k = 0; k < row.size; ++k) {
      if (row.indices[k] == r) {
        d[static_cast<size_t>(r)] = row.values[k];
        break;
      }
    }
  }
  return d;
}

}  // namespace sparse
}  // namespace spnet
