#ifndef SPNET_CORE_AUTO_TUNE_H_
#define SPNET_CORE_AUTO_TUNE_H_

#include "core/reorganizer_config.h"
#include "gpusim/device_spec.h"
#include "sparse/csr_matrix.h"

namespace spnet {
namespace core {

/// Picks alpha and beta for a specific multiplication — the per-network
/// threshold selection the paper leaves manual ("the criteria for
/// classification can be changed by adjusting the value of alpha based on
/// the target sparse network characteristics", Section IV-B).
///
/// Strategy: instead of fixed multipliers over the mean, target bin
/// *populations* that the techniques digest well —
///   * dominators: about 4 blocks per SM after splitting amortizes, i.e.
///     the `dominator_target_per_sm * num_sms` heaviest pairs;
///   * limited rows: the heaviest `limited_row_fraction` of nonzero
///     output rows.
/// The matching alpha/beta are derived from the observed workload
/// distribution and clamped to sane ranges, so a uniform matrix yields no
/// dominators at all.
struct AutoTuneOptions {
  double dominator_target_per_sm = 4.0;
  double limited_row_fraction = 0.02;
  double min_alpha = 4.0;
  double max_alpha = 256.0;
  double min_beta = 2.0;
  double max_beta = 64.0;
  /// Cheap tier first: derive the thresholds from the sampled workload
  /// estimator (spgemm::BuildWorkloadEstimated) when its confidence
  /// reaches min_estimate_confidence, and only fall back to the exact
  /// precalculation below that. A config tuned from estimates also ships
  /// with planning_tier = kEstimated so planning itself stays on the
  /// cheap tier.
  bool try_estimated_first = true;
  double estimator_sample_fraction = 0.05;
  double min_estimate_confidence = 0.5;
};

/// Returns a ReorganizerConfig whose alpha/beta are tuned for C = A*B on
/// `device`. All other fields keep their defaults (except planning_tier,
/// which is kEstimated when the tuning itself ran on the estimator — see
/// AutoTuneOptions::try_estimated_first).
Result<ReorganizerConfig> AutoTune(const sparse::CsrMatrix& a,
                                   const sparse::CsrMatrix& b,
                                   const gpusim::DeviceSpec& device,
                                   const AutoTuneOptions& options = {});

}  // namespace core
}  // namespace spnet

#endif  // SPNET_CORE_AUTO_TUNE_H_
