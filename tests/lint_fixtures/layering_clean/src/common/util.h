// Fixture: bottom-layer header with no first-party includes.
#ifndef FIXTURE_COMMON_UTIL_H_
#define FIXTURE_COMMON_UTIL_H_

#include <cstdint>

inline int64_t FixtureUtil() { return 1; }

#endif  // FIXTURE_COMMON_UTIL_H_
