// Fixture: inline markers silence discarded-status, trailing or above.
#include "common/status.h"

namespace spnet {

Status Run();

void Demo(verify::FaultInjector& injector) {
  Run();  // spnet-lint: allow(discarded-status)
  // spnet-lint: allow(discarded-status)
  injector.Check("sparse.loader.read");
}

}  // namespace spnet
