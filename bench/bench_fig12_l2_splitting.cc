// Reproduces Figure 12: L2 read/write throughput of the dominator
// expansion kernel with increasing B-Splitting factors, over the 10
// Stanford datasets. Splitting spreads the memory transactions of the
// overloaded blocks across SMs and keeps the shared vectors hot in L2.
//
// Flags: --scale (default 0.25), --device, --seed, --csv.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/block_reorganizer.h"
#include "gpusim/simulator.h"
#include "metrics/report.h"

namespace spnet {
namespace {

constexpr int kFactors[] = {1, 2, 4, 8, 16, 32, 64};

int Run(int argc, char** argv) {
  const bench::BenchOptions options =
      bench::BenchOptions::FromArgs(argc, argv);
  const gpusim::DeviceSpec device = options.Device();
  gpusim::Simulator sim(device);

  std::vector<std::string> header = {"dataset", "GB/s"};
  for (int f : kFactors) header.push_back(std::to_string(f));
  metrics::Table table(header);
  std::vector<double> improvements;

  for (const std::string& name : datasets::StanfordDatasetNames()) {
    const sparse::CsrMatrix a = bench::LoadDataset(name, options);
    std::vector<std::string> read_row = {name, "L2 read"};
    std::vector<std::string> write_row = {name, "L2 write"};
    double first = 0.0;
    double last = 0.0;
    for (int factor : kFactors) {
      core::ReorganizerConfig config;
      config.enable_gathering = false;
      config.enable_limiting = false;
      config.splitting_factor_override = factor;
      core::BlockReorganizerSpGemm alg(config);
      auto plan = alg.Plan(a, a, device);
      SPNET_CHECK(plan.ok());
      gpusim::KernelStats dom;
      for (const auto& k : plan->kernels) {
        if (k.label != "expansion-dominators") continue;
        auto s = sim.RunKernel(k);
        SPNET_CHECK(s.ok());
        dom = *s;
      }
      read_row.push_back(metrics::FormatDouble(dom.L2ReadThroughputGBs(), 1));
      write_row.push_back(
          metrics::FormatDouble(dom.L2WriteThroughputGBs(), 1));
      const double total =
          dom.L2ReadThroughputGBs() + dom.L2WriteThroughputGBs();
      if (factor == 1) first = total;
      last = total;
    }
    if (first > 0.0) improvements.push_back(last / first);
    table.AddRow(std::move(read_row));
    table.AddRow(std::move(write_row));
  }

  std::printf("== Figure 12: dominator-kernel L2 throughput vs splitting "
              "factor (%s, scale %.2f) ==\n",
              device.name.c_str(), options.scale);
  std::fputs(options.csv ? table.ToCsv().c_str() : table.ToString().c_str(),
             stdout);
  std::printf("\nMean L2 throughput improvement (factor 64 vs 1): %.1fx "
              "(paper: 8.9x).\n",
              metrics::ArithmeticMean(improvements));

  bench::BenchJson json("fig12_l2_splitting", "Figure 12", options);
  json.AddTable("l2_throughput_vs_factor", table);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
