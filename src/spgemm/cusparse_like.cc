#include <cmath>
#include <memory>

#include "common/math_util.h"
#include "spgemm/algorithm.h"
#include "spgemm/functional.h"
#include "spgemm/plan.h"
#include "spgemm/row_product.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace spgemm {

namespace {

using gpusim::KernelDesc;
using sparse::CsrMatrix;

/// Surrogate for NVIDIA cuSPARSE csrgemm: a two-phase row-product — a
/// symbolic pass computes the output structure, then a numeric pass
/// recomputes every product and accumulates it into sorted rows. The
/// double traversal and the per-product sorted-insertion cost are why the
/// real library falls behind on large irregular inputs (paper Figs. 8/16a)
/// while its low fixed overhead wins on small matrices.
class CusparseLikeSpGemm : public SpGemmAlgorithm {
 public:
  std::string name() const override { return "cuSPARSE"; }

  Result<SpGemmPlan> PlanImpl(const CsrMatrix& a, const CsrMatrix& b,
                              const gpusim::DeviceSpec&,
                              ExecContext*) const override {
    if (a.cols() != b.rows()) {
      return Status::InvalidArgument("dimension mismatch in cuSPARSE plan");
    }
    const Workload workload = BuildWorkload(a, b);
    SpGemmPlan plan;
    plan.flops = workload.flops;
    plan.output_nnz = workload.output_nnz;

    // Symbolic pass: indices only (roughly 1/3 of the element payload),
    // tiny writes (per-row counters).
    RowExpansionOptions symbolic;
    symbolic.label = "cusparse-symbolic";
    symbolic.traffic_multiplier = 0.4;
    symbolic.write_scatter_factor = 0.1;
    plan.kernels.push_back(BuildRowProductExpansion(workload, symbolic));

    // Numeric pass: full traffic plus a log-factor on every accumulation
    // (sorted insertion into the output row).
    const double mean_chat =
        workload.row_chat.empty()
            ? 0.0
            : static_cast<double>(workload.flops) /
                  static_cast<double>(workload.row_chat.size());
    RowExpansionOptions numeric;
    numeric.label = "cusparse-numeric";
    numeric.traffic_multiplier = 2.0;
    numeric.write_scatter_factor = 3.0;
    numeric.ops_multiplier = 1.0 + 2.5 * std::log2(2.0 + mean_chat);
    plan.kernels.push_back(BuildRowProductExpansion(workload, numeric));

    // The sorted accumulation replaces a separate merge kernel; only the
    // final output write-out remains.
    KernelDesc writeout;
    writeout.label = "cusparse-writeout";
    writeout.phase = gpusim::Phase::kMerge;
    gpusim::ThreadBlockDesc tb;
    tb.threads = 256;
    tb.effective_threads = 256;
    const int64_t out_bytes = SatMulI64(kElementBytes, workload.output_nnz);
    tb.crit_ops = std::max<int64_t>(1, workload.output_nnz / 8192);
    tb.warp_issue_ops = 8 * tb.crit_ops;
    tb.useful_lane_ops = tb.crit_ops * 256;
    tb.bytes_read = out_bytes;
    tb.bytes_written = out_bytes;
    tb.shared_mem_bytes = 2048;
    // One balanced block per output tile.
    const int64_t tiles =
        std::max<int64_t>(1, workload.output_nnz / 8192);
    tb.bytes_read /= tiles;
    tb.bytes_written /= tiles;
    tb.useful_lane_ops /= tiles;
    tb.warp_issue_ops /= tiles;
    tb.crit_ops = std::max<int64_t>(1, tb.crit_ops / tiles);
    for (int64_t t = 0; t < tiles; ++t) writeout.blocks.push_back(tb);
    plan.kernels.push_back(std::move(writeout));

    // The library has no user-visible preprocessing; just buffer setup.
    plan.host_seconds = HostPreprocessSeconds(0, 0);
    return plan;
  }

  Result<CsrMatrix> ComputeImpl(const CsrMatrix& a, const CsrMatrix& b,
                                ExecContext*) const override {
    // Functionally the two-phase scheme produces the plain product; the
    // row-product host path shares the expansion structure.
    return RowProductExpandMerge(a, b);
  }
};

}  // namespace

std::unique_ptr<SpGemmAlgorithm> MakeCusparseLike() {
  return std::make_unique<CusparseLikeSpGemm>();
}

}  // namespace spgemm
}  // namespace spnet
