#ifndef SPNET_METRICS_REGISTRY_H_
#define SPNET_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace spnet {
namespace metrics {

class JsonWriter;

/// Monotonic event count. Add() is a single relaxed atomic RMW, cheap
/// enough for per-row hot paths.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins scalar. Set() is idempotent, which makes gauges the
/// right instrument for facts re-derived on every pass (classifier
/// populations, chosen thresholds): running Plan and Compute against the
/// same context records them once each but reads back a single value
/// instead of a double-counted sum.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed histogram of non-negative integer observations. Bucket i
/// holds values whose bit width is i, i.e. [2^(i-1), 2^i - 1] for i >= 1
/// and {0} for bucket 0 — coarse, but constant-size and lock-free, which
/// is what a per-row hot path can afford. Also tracks count/sum/min/max
/// exactly.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Minimum observed value; 0 when empty.
  int64_t min() const;
  /// Maximum observed value; 0 when empty (the raw slot holds INT64_MIN
  /// before the first observation, which must never leak to callers).
  int64_t max() const;
  int64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i (2^i - 1; bucket 0 holds only 0).
  static int64_t BucketUpperBound(int i);

  /// Estimates the q-quantile (q in [0, 1], e.g. 0.5 / 0.99 / 0.999) from
  /// the log2 buckets: the target rank's bucket is located exactly, then
  /// the value is interpolated linearly inside the bucket's [lower, upper]
  /// range (and clamped to the exact observed min/max, which tightens the
  /// first and last buckets). Worst-case error is therefore under one
  /// bucket width — a factor of 2 — which is the resolution the serving
  /// layer's latency percentiles are specified at. Returns 0 when empty.
  double Percentile(double q) const;

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
};

/// Named instrument store. Lookup takes a mutex (do it once, outside the
/// loop); the returned instrument pointers are stable for the registry's
/// lifetime and update lock-free. A name maps to exactly one instrument
/// kind: asking for an existing name with a different kind returns
/// nullptr, which callers must treat as "metric disabled".
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Non-creating lookup for read-only paths (stats dumps): returns the
  /// histogram, or nullptr when the name is absent or registered as a
  /// different kind. Unlike GetHistogram, never materializes an empty
  /// instrument as a side effect of reading.
  const Histogram* FindHistogram(const std::string& name) const;

  /// Convenience wrappers tolerating kind collisions (no-op then).
  void AddCounter(const std::string& name, int64_t delta);
  void SetGauge(const std::string& name, double value);
  void ObserveHistogram(const std::string& name, int64_t value);

  /// Snapshot of scalar values for tests and text reporting; histograms
  /// are reported via their count and sum.
  std::map<std::string, double> Snapshot() const;

  /// Appends {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// as a single JSON object value. Keys are sorted (std::map order), so
  /// the output is stable across runs.
  void AppendJson(JsonWriter* w) const;

  /// The registry serialized as a standalone JSON document.
  std::string ToJson() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, Kind kind) REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ GUARDED_BY(mu_);
};

}  // namespace metrics
}  // namespace spnet

#endif  // SPNET_METRICS_REGISTRY_H_
