#include "sparse/reference_spgemm.h"

#include <algorithm>
#include <string>
#include <vector>

namespace spnet {
namespace sparse {

Result<CsrMatrix> ReferenceSpGemm(const CsrMatrix& a, const CsrMatrix& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument(
        "dimension mismatch: a is " + std::to_string(a.rows()) + "x" +
        std::to_string(a.cols()) + ", b is " + std::to_string(b.rows()) + "x" +
        std::to_string(b.cols()));
  }
  const Index rows = a.rows();
  const Index cols = b.cols();

  std::vector<Value> acc(static_cast<size_t>(cols), 0.0);
  std::vector<bool> touched(static_cast<size_t>(cols), false);
  std::vector<Index> touched_cols;

  std::vector<Offset> ptr(static_cast<size_t>(rows) + 1, 0);
  std::vector<Index> out_idx;
  std::vector<Value> out_val;

  for (Index r = 0; r < rows; ++r) {
    const SpanView arow = a.Row(r);
    touched_cols.clear();
    for (Offset k = 0; k < arow.size; ++k) {
      const Index j = arow.indices[k];
      const Value av = arow.values[k];
      const SpanView brow = b.Row(j);
      for (Offset l = 0; l < brow.size; ++l) {
        const Index c = brow.indices[l];
        if (!touched[static_cast<size_t>(c)]) {
          touched[static_cast<size_t>(c)] = true;
          touched_cols.push_back(c);
        }
        acc[static_cast<size_t>(c)] += av * brow.values[l];
      }
    }
    std::sort(touched_cols.begin(), touched_cols.end());
    for (Index c : touched_cols) {
      out_idx.push_back(c);
      out_val.push_back(acc[static_cast<size_t>(c)]);
      acc[static_cast<size_t>(c)] = 0.0;
      touched[static_cast<size_t>(c)] = false;
    }
    ptr[static_cast<size_t>(r) + 1] =
        static_cast<Offset>(out_idx.size());
  }
  return CsrMatrix::FromParts(rows, cols, std::move(ptr), std::move(out_idx),
                              std::move(out_val));
}

Result<int64_t> SpGemmExactOutputNnz(const CsrMatrix& a, const CsrMatrix& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("dimension mismatch in symbolic spGEMM");
  }
  const Index cols = b.cols();
  std::vector<Index> mark(static_cast<size_t>(cols), -1);
  int64_t nnz = 0;
  for (Index r = 0; r < a.rows(); ++r) {
    const SpanView arow = a.Row(r);
    for (Offset k = 0; k < arow.size; ++k) {
      const SpanView brow = b.Row(arow.indices[k]);
      for (Offset l = 0; l < brow.size; ++l) {
        const Index c = brow.indices[l];
        if (mark[static_cast<size_t>(c)] != r) {
          mark[static_cast<size_t>(c)] = r;
          ++nnz;
        }
      }
    }
  }
  return nnz;
}

}  // namespace sparse
}  // namespace spnet
