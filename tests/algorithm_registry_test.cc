// Tests for the central algorithm registry: baseline seeding, aliasing,
// duplicate and unknown names, the core registrations layered on top, and
// the ReorganizerConfig validation that gates algorithm construction.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/block_reorganizer.h"
#include "core/reorganizer_config.h"
#include "core/suite.h"
#include "spgemm/algorithm.h"
#include "spgemm/algorithm_registry.h"

#include "gtest/gtest.h"

namespace spnet {
namespace {

TEST(AlgorithmRegistryTest, GlobalSeedsBaselines) {
  auto& registry = spgemm::AlgorithmRegistry::Global();
  for (const char* name : {"row-product", "outer-product", "cusparse",
                           "cusp", "bhsparse", "mkl", "acspgemm",
                           "nsparse"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
    auto algorithm = registry.Create(name);
    ASSERT_TRUE(algorithm.ok()) << name;
    ASSERT_NE(*algorithm, nullptr) << name;
  }
}

TEST(AlgorithmRegistryTest, AliasesResolveToSameAlgorithm) {
  auto& registry = spgemm::AlgorithmRegistry::Global();
  auto by_alias = registry.Create("row");
  auto by_name = registry.Create("row-product");
  ASSERT_TRUE(by_alias.ok());
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ((*by_alias)->name(), (*by_name)->name());
}

TEST(AlgorithmRegistryTest, UnknownNameIsNotFoundAndListsChoices) {
  auto& registry = spgemm::AlgorithmRegistry::Global();
  auto algorithm = registry.Create("no-such-algorithm");
  ASSERT_FALSE(algorithm.ok());
  EXPECT_EQ(algorithm.status().code(), StatusCode::kNotFound);
  // The error is self-serve: it names the valid choices.
  EXPECT_NE(algorithm.status().message().find("row-product"),
            std::string::npos);
}

TEST(AlgorithmRegistryTest, DuplicateRegistrationIsRejected) {
  auto& registry = spgemm::AlgorithmRegistry::Global();
  const Status s = registry.Register("row-product", [] {
    return Result<std::unique_ptr<spgemm::SpGemmAlgorithm>>(
        spgemm::MakeRowProduct());
  });
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  // The original entry survives.
  auto algorithm = registry.Create("row-product");
  ASSERT_TRUE(algorithm.ok());
}

TEST(AlgorithmRegistryTest, NamesAreSortedAndComplete) {
  core::RegisterCoreAlgorithms();
  auto& registry = spgemm::AlgorithmRegistry::Global();
  const std::vector<std::string> names = registry.Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* expected :
       {"reorganizer", "reorganizer-limiting", "reorganizer-splitting",
        "reorganizer-gathering"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  // RegisterCoreAlgorithms is idempotent: calling it again must not die
  // on duplicate names.
  core::RegisterCoreAlgorithms();
}

// Regression test for a data race the thread-safety annotation pass
// surfaced: registration is not confined to startup (every BatchRunner
// constructor calls core::RegisterCoreAlgorithms()), yet the registry maps
// used to be unsynchronized, so a first-time registration racing a
// concurrent Create()/Names() was a read/write race. The registry now
// locks internally; this hammers registration and queries from many
// threads at once (run under TSan in CI).
TEST(AlgorithmRegistryTest, ConcurrentRegistrationAndQueriesAreSafe) {
  auto& registry = spgemm::AlgorithmRegistry::Global();
  constexpr int kThreads = 8;
  constexpr int kIterations = 50;
  std::atomic<int> created{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &created, t] {
      for (int i = 0; i < kIterations; ++i) {
        if (t % 2 == 0) {
          // Writer threads: register fresh names (the "zz-" prefix keeps
          // them after the real algorithms in sorted Names() output) and
          // re-run the idempotent core registration.
          const Status s = registry.Register(
              "zz-race-" + std::to_string(t) + "-" + std::to_string(i), [] {
                return Result<std::unique_ptr<spgemm::SpGemmAlgorithm>>(
                    spgemm::MakeRowProduct());
              });
          EXPECT_TRUE(s.ok()) << s.ToString();
          core::RegisterCoreAlgorithms();
        } else {
          // Reader threads: the full query surface.
          auto algorithm = registry.Create("row-product");
          if (algorithm.ok()) created.fetch_add(1);
          EXPECT_TRUE(registry.Contains("outer-product"));
          EXPECT_FALSE(registry.Names().empty());
          auto missing = registry.Create("zz-definitely-missing");
          EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(created.load(), (kThreads / 2) * kIterations);
}

TEST(AlgorithmRegistryTest, SuitesPreservePlotOrder) {
  const auto suite = core::MakeAblationSuite();
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0]->name(), "B-Limiting");
  EXPECT_EQ(suite[1]->name(), "B-Splitting");
  EXPECT_EQ(suite[2]->name(), "B-Gathering");
  EXPECT_EQ(suite[3]->name(), "Block-Reorganizer");

  const auto all = core::MakeAllAlgorithms();
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.front()->name(), "row-product");
  EXPECT_EQ(all.back()->name(), "Block-Reorganizer");
}

TEST(ReorganizerConfigTest, DefaultConfigValidates) {
  EXPECT_TRUE(core::ReorganizerConfig().Validate().ok());
}

TEST(ReorganizerConfigTest, RejectsBadKnobs) {
  {
    core::ReorganizerConfig config;
    config.alpha = 0.0;
    EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    core::ReorganizerConfig config;
    config.beta = -1.0;
    EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    core::ReorganizerConfig config;
    config.splitting_factor_override = 3;  // not a power of two
    EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    core::ReorganizerConfig config;
    config.splitting_factor_override = 64;  // power of two: fine
    EXPECT_TRUE(config.Validate().ok());
  }
  {
    core::ReorganizerConfig config;
    config.limiting_extra_shmem = -1;
    EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    core::ReorganizerConfig config;
    config.block_size = 48;  // not a multiple of the warp size
    EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ReorganizerConfigTest, MakeBlockReorganizerReportsInvalidConfig) {
  core::ReorganizerConfig config;
  config.alpha = -2.0;
  auto algorithm = core::MakeBlockReorganizer(config);
  ASSERT_FALSE(algorithm.ok());
  EXPECT_EQ(algorithm.status().code(), StatusCode::kInvalidArgument);

  auto valid = core::MakeBlockReorganizer(core::ReorganizerConfig());
  ASSERT_TRUE(valid.ok());
  EXPECT_EQ((*valid)->name(), "Block-Reorganizer");
}

}  // namespace
}  // namespace spnet
