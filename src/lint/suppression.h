#ifndef SPNET_LINT_SUPPRESSION_H_
#define SPNET_LINT_SUPPRESSION_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace spnet {
namespace lint {

/// Inline suppressions: `// spnet-lint: allow(rule-a, rule-b)` (line or
/// block comment). The marker covers every line the comment spans plus the
/// next line, so it works trailing a finding or on its own line above it.
/// Shared between the per-file rules (lint.cc) and the project-graph rules
/// (graph.cc), which attribute findings to `#include` lines.
class SuppressionIndex {
 public:
  SuppressionIndex() = default;

  explicit SuppressionIndex(const std::vector<Token>& tokens) {
    for (const Token& token : tokens) {
      if (token.kind != TokenKind::kComment) continue;
      const size_t tag = token.text.find("spnet-lint:");
      if (tag == std::string::npos) continue;
      const size_t open = token.text.find("allow(", tag);
      if (open == std::string::npos) continue;
      const size_t close = token.text.find(')', open);
      if (close == std::string::npos) continue;
      std::string list = token.text.substr(open + 6, close - open - 6);
      std::string rule;
      list.push_back(',');
      for (const char c : list) {
        if (c == ',' || c == ' ' || c == '\t') {
          if (!rule.empty()) {
            for (int line = token.line; line <= token.end_line + 1; ++line) {
              allowed_[rule].insert(line);
            }
            rule.clear();
          }
        } else {
          rule.push_back(c);
        }
      }
    }
  }

  bool Allows(const std::string& rule, int line) const {
    const auto it = allowed_.find(rule);
    return it != allowed_.end() && it->second.count(line) > 0;
  }

 private:
  std::map<std::string, std::set<int>> allowed_;
};

}  // namespace lint
}  // namespace spnet

#endif  // SPNET_LINT_SUPPRESSION_H_
