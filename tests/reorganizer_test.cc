#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/block_reorganizer.h"
#include "gpusim/kernel_desc.h"
#include "sparse/reference_spgemm.h"
#include "tests/test_util.h"

namespace spnet {
namespace core {
namespace {

using sparse::CsrMatrix;

ReorganizerConfig ConfigFromMask(int mask) {
  ReorganizerConfig config;
  config.enable_splitting = (mask & 1) != 0;
  config.enable_gathering = (mask & 2) != 0;
  config.enable_limiting = (mask & 4) != 0;
  return config;
}

/// Property sweep: every combination of technique toggles must produce the
/// exact reference product on both skewed and regular inputs.
using MaskSkewParam = std::tuple<int, bool>;

class ReorganizerToggleTest
    : public ::testing::TestWithParam<MaskSkewParam> {};

TEST_P(ReorganizerToggleTest, ComputeMatchesReference) {
  const auto [mask, skewed] = GetParam();
  const CsrMatrix a = skewed
                          ? testing_util::SkewedMatrix(220, 130, 7)
                          : testing_util::RandomMatrix(180, 180, 0.03, 7);
  BlockReorganizerSpGemm alg(ConfigFromMask(mask));
  auto expected = sparse::ReferenceSpGemm(a, a);
  auto got = alg.Compute(a, a);
  ASSERT_TRUE(expected.ok() && got.ok());
  EXPECT_TRUE(CsrApproxEqual(*expected, *got, 1e-9)) << "mask " << mask;
}

INSTANTIATE_TEST_SUITE_P(
    AllToggles, ReorganizerToggleTest,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Bool()),
    [](const ::testing::TestParamInfo<MaskSkewParam>& param_info) {
      return "mask" + std::to_string(std::get<0>(param_info.param)) +
             (std::get<1>(param_info.param) ? "_skewed" : "_uniform");
    });

/// Splitting-factor sweep: the mapper/pointer transformation must be
/// results-neutral for every factor (the Figure 11 sweep relies on this).
class SplittingFactorTest : public ::testing::TestWithParam<int> {};

TEST_P(SplittingFactorTest, ComputeMatchesReference) {
  ReorganizerConfig config;
  config.splitting_factor_override = GetParam();
  const CsrMatrix a = testing_util::SkewedMatrix(250, 160, 13);
  BlockReorganizerSpGemm alg(config);
  auto expected = sparse::ReferenceSpGemm(a, a);
  auto got = alg.Compute(a, a);
  ASSERT_TRUE(expected.ok() && got.ok());
  EXPECT_TRUE(CsrApproxEqual(*expected, *got, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Factors, SplittingFactorTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

TEST(ReorganizerTest, RectangularProduct) {
  const CsrMatrix a = testing_util::RandomMatrix(90, 140, 0.05, 17);
  const CsrMatrix b = testing_util::RandomMatrix(140, 60, 0.05, 18);
  BlockReorganizerSpGemm alg;
  auto expected = sparse::ReferenceSpGemm(a, b);
  auto got = alg.Compute(a, b);
  ASSERT_TRUE(expected.ok() && got.ok());
  EXPECT_TRUE(CsrApproxEqual(*expected, *got, 1e-9));
}

TEST(ReorganizerTest, AnalyzeCountsAreConsistent) {
  const CsrMatrix a = testing_util::SkewedMatrix(500, 400, 19);
  BlockReorganizerSpGemm alg;
  auto report = alg.Analyze(a, a, gpusim::DeviceSpec::TitanXp());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->nonzero_pairs, report->dominators +
                                       report->low_performers +
                                       report->normals);
  EXPECT_GT(report->dominators, 0);
  EXPECT_GT(report->low_performers, 0);
  EXPECT_GE(report->fragments, report->dominators);
  EXPECT_LE(report->combined_blocks, report->gathered_pairs);
  EXPECT_GT(report->limited_rows, 0);
}

TEST(ReorganizerTest, DisabledTechniquesReportZero) {
  const CsrMatrix a = testing_util::SkewedMatrix(400, 300, 21);
  ReorganizerConfig off;
  off.enable_splitting = false;
  off.enable_gathering = false;
  BlockReorganizerSpGemm alg(off);
  auto report = alg.Analyze(a, a, gpusim::DeviceSpec::TitanXp());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->fragments, 0);
  EXPECT_EQ(report->combined_blocks, 0);
  EXPECT_EQ(report->gathered_pairs, 0);
}

TEST(ReorganizerTest, PlanHasPreprocessExpansionAndMerge) {
  const CsrMatrix a = testing_util::SkewedMatrix(400, 300, 23);
  BlockReorganizerSpGemm alg;
  auto plan = alg.Plan(a, a, gpusim::DeviceSpec::TitanXp());
  ASSERT_TRUE(plan.ok());
  bool has_preprocess = false, has_expansion = false, has_merge = false,
       has_limited = false;
  for (const auto& k : plan->kernels) {
    if (k.phase == gpusim::Phase::kPreprocess) has_preprocess = true;
    if (k.phase == gpusim::Phase::kExpansion) has_expansion = true;
    if (k.phase == gpusim::Phase::kMerge) has_merge = true;
    if (k.label == "merge-limited") has_limited = true;
  }
  EXPECT_TRUE(has_preprocess);
  EXPECT_TRUE(has_expansion);
  EXPECT_TRUE(has_merge);
  EXPECT_TRUE(has_limited);
  EXPECT_GT(plan->host_seconds, 0.0);
}

TEST(ReorganizerTest, ExpansionBlocksCoverAllWork) {
  const CsrMatrix a = testing_util::SkewedMatrix(400, 300, 25);
  for (int mask = 0; mask < 8; ++mask) {
    BlockReorganizerSpGemm alg(ConfigFromMask(mask));
    auto plan = alg.Plan(a, a, gpusim::DeviceSpec::TitanXp());
    ASSERT_TRUE(plan.ok());
    int64_t expansion_work = 0;
    for (const auto& k : plan->kernels) {
      if (k.phase != gpusim::Phase::kExpansion) continue;
      for (const auto& tb : k.blocks) expansion_work += tb.useful_lane_ops;
    }
    EXPECT_EQ(expansion_work, plan->flops) << "mask " << mask;
  }
}

TEST(ReorganizerTest, SplittingShrinksLargestExpansionBlock) {
  const CsrMatrix a = testing_util::SkewedMatrix(400, 300, 27);
  ReorganizerConfig split_off;
  split_off.enable_splitting = false;
  auto max_block_work = [&](const ReorganizerConfig& config) {
    BlockReorganizerSpGemm alg(config);
    auto plan = alg.Plan(a, a, gpusim::DeviceSpec::TitanXp());
    SPNET_CHECK(plan.ok());
    int64_t max_work = 0;
    for (const auto& k : plan->kernels) {
      if (k.phase != gpusim::Phase::kExpansion) continue;
      for (const auto& tb : k.blocks) {
        max_work = std::max(max_work, tb.useful_lane_ops);
      }
    }
    return max_work;
  };
  EXPECT_LT(max_block_work(ReorganizerConfig{}), max_block_work(split_off));
}

TEST(ReorganizerTest, GatheringShrinksExpansionBlockCount) {
  const CsrMatrix a = testing_util::SkewedMatrix(600, 200, 29);
  ReorganizerConfig gather_off;
  gather_off.enable_gathering = false;
  auto block_count = [&](const ReorganizerConfig& config) {
    BlockReorganizerSpGemm alg(config);
    auto plan = alg.Plan(a, a, gpusim::DeviceSpec::TitanXp());
    SPNET_CHECK(plan.ok());
    size_t blocks = 0;
    for (const auto& k : plan->kernels) {
      if (k.phase == gpusim::Phase::kExpansion) blocks += k.blocks.size();
    }
    return blocks;
  };
  EXPECT_LT(block_count(ReorganizerConfig{}), block_count(gather_off));
}

TEST(ReorganizerTest, LimitingRaisesMergeSharedMemory) {
  const CsrMatrix a = testing_util::SkewedMatrix(400, 300, 31);
  ReorganizerConfig config;
  BlockReorganizerSpGemm alg(config);
  auto plan = alg.Plan(a, a, gpusim::DeviceSpec::TitanXp());
  ASSERT_TRUE(plan.ok());
  for (const auto& k : plan->kernels) {
    if (k.label != "merge-limited") continue;
    for (const auto& tb : k.blocks) {
      EXPECT_GE(tb.shared_mem_bytes, config.limiting_extra_shmem);
    }
  }
}

TEST(ReorganizerTest, NamedConfigurations) {
  BlockReorganizerSpGemm defaulted;
  EXPECT_EQ(defaulted.name(), "Block-Reorganizer");
  BlockReorganizerSpGemm named({}, "B-Splitting");
  EXPECT_EQ(named.name(), "B-Splitting");
}

}  // namespace
}  // namespace core
}  // namespace spnet
