// Integration tests asserting the paper's qualitative results end to end:
// generated dataset -> algorithm plan -> simulator -> profile. Each test
// checks a *shape* (who wins, what improves), never an absolute number, so
// they are robust to re-calibration of the cost model.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/block_reorganizer.h"
#include "core/suite.h"
#include "datasets/registry.h"
#include "gpusim/simulator.h"
#include "spgemm/algorithm.h"

namespace spnet {
namespace {

using sparse::CsrMatrix;

CsrMatrix Skewed(double scale = 0.05) {
  auto spec = datasets::FindDataset("youtube");
  SPNET_CHECK(spec.ok());
  auto m = datasets::Materialize(*spec, scale, 42);
  SPNET_CHECK(m.ok());
  return std::move(m).value();
}

CsrMatrix Regular(double scale = 0.05) {
  auto spec = datasets::FindDataset("filter3D");
  SPNET_CHECK(spec.ok());
  auto m = datasets::Materialize(*spec, scale, 42);
  SPNET_CHECK(m.ok());
  return std::move(m).value();
}

double Seconds(const spgemm::SpGemmAlgorithm& alg, const CsrMatrix& a,
               const gpusim::DeviceSpec& device) {
  auto m = spgemm::Measure(alg, a, a, device);
  SPNET_CHECK(m.ok()) << m.status().ToString();
  return m->total_seconds;
}

TEST(BehaviorTest, ReorganizerBeatsOuterProductOnSkewedData) {
  const CsrMatrix a = Skewed();
  const auto device = gpusim::DeviceSpec::TitanXp();
  const auto outer = spgemm::MakeOuterProduct();
  core::BlockReorganizerSpGemm reorganizer;
  EXPECT_LT(Seconds(reorganizer, a, device), Seconds(*outer, a, device));
}

TEST(BehaviorTest, ReorganizerBeatsRowProductOnSkewedData) {
  const CsrMatrix a = Skewed(0.1);
  const auto device = gpusim::DeviceSpec::TitanXp();
  const auto row = spgemm::MakeRowProduct();
  core::BlockReorganizerSpGemm reorganizer;
  EXPECT_LT(Seconds(reorganizer, a, device), Seconds(*row, a, device));
}

TEST(BehaviorTest, SplittingImprovesDominatorLoadBalance) {
  // The Figure 11 effect: LBI of the dominator kernel rises monotonically
  // (within tolerance) with the splitting factor and approaches 1.
  const CsrMatrix a = Skewed();
  const auto device = gpusim::DeviceSpec::TitanXp();
  gpusim::Simulator sim(device);
  double prev_lbi = 0.0;
  for (int factor : {1, 8, 64}) {
    core::ReorganizerConfig config;
    config.enable_gathering = false;
    config.enable_limiting = false;
    config.splitting_factor_override = factor;
    core::BlockReorganizerSpGemm alg(config);
    auto plan = alg.Plan(a, a, device);
    ASSERT_TRUE(plan.ok());
    for (const auto& k : plan->kernels) {
      if (k.label != "expansion-dominators") continue;
      auto s = sim.RunKernel(k);
      ASSERT_TRUE(s.ok());
      EXPECT_GT(s->Lbi(), prev_lbi - 0.05) << "factor " << factor;
      prev_lbi = s->Lbi();
    }
  }
  EXPECT_GT(prev_lbi, 0.8);
}

TEST(BehaviorTest, GatheringReducesSyncStalls) {
  // The Figure 13 effect.
  const CsrMatrix a = Skewed();
  const auto device = gpusim::DeviceSpec::TitanXp();
  gpusim::Simulator sim(device);
  auto stalls = [&](bool gathering) {
    core::ReorganizerConfig config;
    config.enable_splitting = false;
    config.enable_limiting = false;
    config.enable_gathering = gathering;
    core::BlockReorganizerSpGemm alg(config);
    auto plan = alg.Plan(a, a, device);
    SPNET_CHECK(plan.ok());
    gpusim::KernelStats total;
    for (const auto& k : plan->kernels) {
      if (k.phase != gpusim::Phase::kExpansion) continue;
      auto s = sim.RunKernel(k);
      SPNET_CHECK(s.ok());
      total.Accumulate(*s);
    }
    return total.SyncStallFraction();
  };
  EXPECT_LT(stalls(true), stalls(false) * 0.7);
}

TEST(BehaviorTest, GatheringHelpsOnUnderloadedHeavyData) {
  // mario002-style inputs (tiny rows, many blocks) are where B-Gathering
  // shines in Figure 10.
  auto spec = datasets::FindDataset("mario002");
  ASSERT_TRUE(spec.ok());
  auto a = datasets::Materialize(*spec, 0.1, 42);
  ASSERT_TRUE(a.ok());
  const auto device = gpusim::DeviceSpec::TitanXp();
  const auto outer = spgemm::MakeOuterProduct();
  core::ReorganizerConfig gather_only;
  gather_only.enable_splitting = false;
  gather_only.enable_limiting = false;
  core::BlockReorganizerSpGemm alg(gather_only);
  EXPECT_LT(Seconds(alg, *a, device), Seconds(*outer, *a, device));
}

TEST(BehaviorTest, SkewHurtsRowProductFamilyMore) {
  // The Figure 16(a) P-suite effect: relative to the reorganizer, the
  // row-product family loses ground as skew rises.
  const auto device = gpusim::DeviceSpec::TitanXp();
  const auto row = spgemm::MakeRowProduct();
  core::BlockReorganizerSpGemm reorganizer;
  const CsrMatrix regular = Regular();
  const CsrMatrix skewed = Skewed();
  const double regular_ratio =
      Seconds(*row, regular, device) / Seconds(reorganizer, regular, device);
  const double skewed_ratio =
      Seconds(*row, skewed, device) / Seconds(reorganizer, skewed, device);
  EXPECT_GT(skewed_ratio, regular_ratio);
}

TEST(BehaviorTest, MoreSmsHelpTheReorganizerMore) {
  // Figure 15: everything speeds up on the V100, and splitting has more
  // SMs to feed.
  const CsrMatrix a = Skewed();
  core::BlockReorganizerSpGemm reorganizer;
  const double titan =
      Seconds(reorganizer, a, gpusim::DeviceSpec::TitanXp());
  const double v100 =
      Seconds(reorganizer, a, gpusim::DeviceSpec::TeslaV100());
  EXPECT_LT(v100, titan);
}

TEST(BehaviorTest, MergeShareGrowsWithSkew) {
  // Figure 3(c): merge takes a larger share on power-law data than the
  // expansion-balanced regular sets... measured on the outer baseline.
  const auto device = gpusim::DeviceSpec::TitanXp();
  const auto outer = spgemm::MakeOuterProduct();
  auto merge_share = [&](const CsrMatrix& a) {
    auto m = spgemm::Measure(*outer, a, a, device);
    SPNET_CHECK(m.ok());
    return m->merge.seconds / (m->merge.seconds + m->expansion.seconds);
  };
  EXPECT_GT(merge_share(Skewed()), 0.1);
  EXPECT_GT(merge_share(Regular()), 0.1);
}

TEST(BehaviorTest, CuspIsBandwidthBoundEverywhere) {
  // CUSP's sort passes make its cost track flops, flattening its GFLOPS
  // across datasets (the paper's flat CUSP bars in Figure 9).
  const auto device = gpusim::DeviceSpec::TitanXp();
  const auto cusp = spgemm::MakeCuspLike();
  auto gflops = [&](const CsrMatrix& a) {
    auto m = spgemm::Measure(*cusp, a, a, device);
    SPNET_CHECK(m.ok());
    return m->Gflops();
  };
  const double g1 = gflops(Regular());
  const double g2 = gflops(Skewed());
  EXPECT_LT(std::max(g1, g2) / std::min(g1, g2), 3.0);
}

TEST(BehaviorTest, PreprocessingOverheadVisibleOnTinyInputs) {
  // Figure 16(a) s1: on very small inputs the reorganizer's preprocessing
  // keeps it from winning.
  auto spec = datasets::FindDataset("poisson3Da");
  ASSERT_TRUE(spec.ok());
  auto a = datasets::Materialize(*spec, 0.02, 42);
  ASSERT_TRUE(a.ok());
  const auto device = gpusim::DeviceSpec::TitanXp();
  core::BlockReorganizerSpGemm reorganizer;
  auto m = spgemm::Measure(reorganizer, *a, *a, device);
  ASSERT_TRUE(m.ok());
  // Host preprocessing is a visible fraction of the total.
  EXPECT_GT(m->host_seconds / m->total_seconds, 0.05);
}

}  // namespace
}  // namespace spnet
