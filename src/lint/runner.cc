#include "lint/runner.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "lint/graph.h"
#include "metrics/json_writer.h"

namespace spnet {
namespace lint {
namespace {

namespace fs = std::filesystem;

bool HasSuffix(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

/// Directories the recursive walk never descends into.
bool IsSkippedDirectory(const std::string& name) {
  if (!name.empty() && name[0] == '.') return true;  // .git, .cache, ...
  if (name.rfind("build", 0) == 0) return true;      // build, build-asan, ...
  return name == "third_party" || name == "lint_fixtures";
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(StatusCode::kIoError, "cannot open " + path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

Status CollectFiles(const std::string& root, std::vector<std::string>* out) {
  std::error_code ec;
  const fs::file_status status = fs::status(root, ec);
  if (ec || status.type() == fs::file_type::not_found) {
    return Status(StatusCode::kNotFound, "no such file or directory: " + root);
  }
  if (!fs::is_directory(status)) {
    out->push_back(root);
    return Status::Ok();
  }
  fs::recursive_directory_iterator it(
      root, fs::directory_options::skip_permission_denied, ec);
  if (ec) {
    return Status(StatusCode::kIoError,
                  "cannot walk " + root + ": " + ec.message());
  }
  for (const fs::recursive_directory_iterator end; it != end;
       it.increment(ec)) {
    if (ec) {
      return Status(StatusCode::kIoError,
                    "cannot walk " + root + ": " + ec.message());
    }
    const fs::directory_entry& entry = *it;
    const std::string name = entry.path().filename().string();
    if (entry.is_directory() && IsSkippedDirectory(name)) {
      it.disable_recursion_pending();
      continue;
    }
    if (entry.is_regular_file() && IsLintableFile(name)) {
      out->push_back(entry.path().generic_string());
    }
  }
  return Status::Ok();
}

}  // namespace

bool IsLintableFile(const std::string& path) {
  return HasSuffix(path, ".h") || HasSuffix(path, ".hpp") ||
         HasSuffix(path, ".cc") || HasSuffix(path, ".cpp") ||
         HasSuffix(path, ".cxx") || HasSuffix(path, ".cu") ||
         HasSuffix(path, ".cuh");
}

namespace {

Result<std::vector<SourceFile>> LoadSources(
    const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    const Status collected = CollectFiles(path, &files);
    if (!collected.ok()) return collected;
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (std::string& file : files) {
    Result<std::string> content = ReadFileToString(file);
    if (!content.ok()) return content.status();
    sources.push_back({std::move(file), *std::move(content)});
  }
  return sources;
}

}  // namespace

Result<RunSummary> LintPaths(const std::vector<std::string>& paths,
                             const LintOptions& options) {
  Result<std::vector<SourceFile>> sources = LoadSources(paths);
  if (!sources.ok()) return sources.status();

  RunSummary summary;
  for (const SourceFile& source : *sources) {
    std::vector<Diagnostic> diagnostics =
        LintSource(source.path, source.content, options);
    ++summary.files_linted;
    for (Diagnostic& diagnostic : diagnostics) {
      summary.diagnostics.push_back(std::move(diagnostic));
    }
  }

  // Project-graph tier: needs the whole file set at once.
  Result<LayeringManifest> parsed_manifest =
      options.layering_manifest.empty()
          ? Result<LayeringManifest>(DefaultLayeringManifest())
          : ParseLayeringManifest(options.layering_manifest);
  if (!parsed_manifest.ok()) return parsed_manifest.status();
  const LayeringManifest& manifest = *parsed_manifest;
  const ProjectGraph graph = ProjectGraph::Build(*sources);
  for (Diagnostic& diagnostic : CheckProjectGraph(graph, manifest)) {
    summary.diagnostics.push_back(std::move(diagnostic));
  }
  summary.graph_json = graph.ToJson(manifest);

  std::sort(summary.diagnostics.begin(), summary.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (const Diagnostic& diagnostic : summary.diagnostics) {
    if (diagnostic.severity == Severity::kError) {
      ++summary.errors;
    } else {
      ++summary.warnings;
    }
  }
  return summary;
}

Result<ProjectGraph> BuildProjectGraph(const std::vector<std::string>& paths) {
  Result<std::vector<SourceFile>> sources = LoadSources(paths);
  if (!sources.ok()) return sources.status();
  return ProjectGraph::Build(*sources);
}

std::string FormatDiagnostic(const Diagnostic& diagnostic) {
  std::ostringstream out;
  out << diagnostic.file << ':' << diagnostic.line << ": "
      << (diagnostic.severity == Severity::kError ? "error" : "warning")
      << ": " << diagnostic.message << " [" << diagnostic.rule << ']';
  return out.str();
}

std::string FindingsJson(const RunSummary& summary) {
  metrics::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(1);
  w.Key("tool").String("spnet_lint");
  w.Key("files_linted").Int(summary.files_linted);
  w.Key("errors").Int(summary.errors);
  w.Key("warnings").Int(summary.warnings);
  w.Key("findings").BeginArray();
  for (const Diagnostic& diagnostic : summary.diagnostics) {
    w.BeginObject();
    w.Key("file").String(diagnostic.file);
    w.Key("line").Int(diagnostic.line);
    w.Key("rule").String(diagnostic.rule);
    w.Key("severity")
        .String(diagnostic.severity == Severity::kError ? "error" : "warning");
    w.Key("message").String(diagnostic.message);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace lint
}  // namespace spnet
