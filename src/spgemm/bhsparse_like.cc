#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "spgemm/algorithm.h"
#include "spgemm/functional.h"
#include "spgemm/plan.h"
#include "spgemm/row_product.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace spgemm {

namespace {

using gpusim::KernelDesc;
using sparse::CsrMatrix;

/// Surrogate for bhSPARSE (Liu & Vinter, IPDPS'14): a row-product scheme
/// that bins output rows by their upper-bound work so each bin runs a
/// size-specialized kernel — rows in a warp have similar lengths, removing
/// most intra-warp divergence. Very long rows overflow to a global-memory
/// merge path that re-streams their data. Binning itself is a host pass.
/// The scheme narrows but does not close the row-product gap on heavily
/// skewed inputs (paper Figs. 8/16a): hub rows still serialize in the
/// overflow path and the merge stays contended.
class BhsparseLikeSpGemm : public SpGemmAlgorithm {
 public:
  std::string name() const override { return "bhSPARSE"; }

  Result<SpGemmPlan> PlanImpl(const CsrMatrix& a, const CsrMatrix& b,
                              const gpusim::DeviceSpec&,
                              ExecContext*) const override {
    if (a.cols() != b.rows()) {
      return Status::InvalidArgument("dimension mismatch in bhSPARSE plan");
    }
    Workload workload = BuildWorkload(a, b);
    SpGemmPlan plan;
    plan.flops = workload.flops;
    plan.output_nnz = workload.output_nnz;

    // Bin rows by work: sorting by C-hat population puts similar rows in
    // the same warp, which is exactly what per-bin kernels achieve.
    std::vector<int64_t> order(workload.row_chat.size());
    std::iota(order.begin(), order.end(), int64_t{0});
    std::stable_sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
      return workload.row_chat[static_cast<size_t>(x)] <
             workload.row_chat[static_cast<size_t>(y)];
    });

    // Overflow rows (beyond the largest bin) pay the global-memory merge
    // path: their traffic is re-streamed once more. Model by inflating
    // their C-hat contribution in a copied workload used for the overflow
    // kernel, and excluding them from the binned kernel.
    constexpr int64_t kOverflowThreshold = 4096;
    Workload binned = workload;
    Workload overflow = workload;
    for (size_t r = 0; r < workload.row_chat.size(); ++r) {
      if (workload.row_chat[r] > kOverflowThreshold) {
        binned.row_chat[r] = 0;
      } else {
        overflow.row_chat[r] = 0;
      }
    }

    RowExpansionOptions binned_opts;
    binned_opts.label = "bhsparse-binned";
    binned_opts.row_order = &order;
    binned_opts.traffic_multiplier = 1.8;    // progress/bin bookkeeping
    binned_opts.write_scatter_factor = 1.5;  // bin-local staging helps
    plan.kernels.push_back(BuildRowProductExpansion(binned, binned_opts));

    RowExpansionOptions overflow_opts;
    overflow_opts.label = "bhsparse-overflow";
    overflow_opts.row_order = &order;        // overflow bin is also sorted
    overflow_opts.traffic_multiplier = 2.2;  // global-memory re-stream
    overflow_opts.write_scatter_factor = 1.5;
    plan.kernels.push_back(BuildRowProductExpansion(overflow, overflow_opts));

    MergeOptions merge;
    for (KernelDesc& k : BuildMergeKernels(workload, merge)) {
      plan.kernels.push_back(std::move(k));
    }

    // Host-side binning scan over the rows.
    plan.host_seconds = HostPreprocessSeconds(
        static_cast<int64_t>(workload.row_chat.size()), 0);
    return plan;
  }

  Result<CsrMatrix> ComputeImpl(const CsrMatrix& a, const CsrMatrix& b,
                                ExecContext*) const override {
    return RowProductExpandMerge(a, b);
  }
};

}  // namespace

std::unique_ptr<SpGemmAlgorithm> MakeBhsparseLike() {
  return std::make_unique<BhsparseLikeSpGemm>();
}

}  // namespace spgemm
}  // namespace spnet
