#include <gtest/gtest.h>

#include <cmath>

#include "sparse/operations.h"
#include "sparse/reference_spgemm.h"
#include "tests/test_util.h"

namespace spnet {
namespace sparse {
namespace {

CsrMatrix Small() {
  // [ 1 0 2 ]
  // [ 0 3 0 ]
  // [ 4 0 5 ]
  CooMatrix coo(3, 3);
  coo.Add(0, 0, 1);
  coo.Add(0, 2, 2);
  coo.Add(1, 1, 3);
  coo.Add(2, 0, 4);
  coo.Add(2, 2, 5);
  return std::move(CsrMatrix::FromCoo(coo)).value();
}

TEST(SpMvTest, KnownProduct) {
  const CsrMatrix a = Small();
  auto y = SpMv(a, {1.0, 2.0, 3.0});
  ASSERT_TRUE(y.ok());
  EXPECT_DOUBLE_EQ((*y)[0], 7.0);   // 1*1 + 2*3
  EXPECT_DOUBLE_EQ((*y)[1], 6.0);   // 3*2
  EXPECT_DOUBLE_EQ((*y)[2], 19.0);  // 4*1 + 5*3
}

TEST(SpMvTest, SizeMismatchRejected) {
  EXPECT_FALSE(SpMv(Small(), {1.0, 2.0}).ok());
  EXPECT_FALSE(SpMvTranspose(Small(), {1.0}).ok());
}

TEST(SpMvTest, TransposeAgreesWithExplicitTranspose) {
  const CsrMatrix a = testing_util::RandomMatrix(40, 60, 0.1, 3);
  std::vector<Value> x(40);
  Rng rng(5);
  for (auto& v : x) v = rng.NextDouble();
  auto indirect = SpMvTranspose(a, x);
  auto direct = SpMv(a.Transpose(), x);
  ASSERT_TRUE(indirect.ok() && direct.ok());
  ASSERT_EQ(indirect->size(), direct->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_NEAR((*indirect)[i], (*direct)[i], 1e-12);
  }
}

TEST(AddTest, LinearCombination) {
  const CsrMatrix a = Small();
  auto sum = Add(a, a, 2.0, -1.0);  // = a
  ASSERT_TRUE(sum.ok());
  EXPECT_TRUE(CsrApproxEqual(*sum, a));
}

TEST(AddTest, DisjointPatternsUnion) {
  CooMatrix ca(2, 2), cb(2, 2);
  ca.Add(0, 0, 1.0);
  cb.Add(1, 1, 2.0);
  auto a = CsrMatrix::FromCoo(ca);
  auto b = CsrMatrix::FromCoo(cb);
  auto sum = Add(*a, *b);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->nnz(), 2);
  EXPECT_DOUBLE_EQ(sum->Row(0).values[0], 1.0);
  EXPECT_DOUBLE_EQ(sum->Row(1).values[0], 2.0);
}

TEST(AddTest, ShapeMismatchRejected) {
  const CsrMatrix a = testing_util::RandomMatrix(3, 4, 0.5, 1);
  const CsrMatrix b = testing_util::RandomMatrix(4, 3, 0.5, 2);
  EXPECT_FALSE(Add(a, b).ok());
  EXPECT_FALSE(Hadamard(a, b).ok());
}

TEST(HadamardTest, PatternIntersection) {
  const CsrMatrix a = Small();
  auto h = Hadamard(a, a);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->nnz(), a.nnz());
  EXPECT_DOUBLE_EQ(h->Row(2).values[1], 25.0);
}

TEST(ScaleTest, ScalesValues) {
  const CsrMatrix s = Scale(Small(), -2.0);
  EXPECT_DOUBLE_EQ(s.Row(0).values[1], -4.0);
  EXPECT_EQ(s.nnz(), Small().nnz());
}

TEST(SubmatrixTest, ExtractsAndReindexes) {
  const CsrMatrix a = Small();
  auto sub = Submatrix(a, 1, 3, 0, 2);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->rows(), 2);
  EXPECT_EQ(sub->cols(), 2);
  // Rows 1..2, cols 0..1 of a: [0 3; 4 0].
  EXPECT_EQ(sub->nnz(), 2);
  EXPECT_DOUBLE_EQ(sub->Row(0).values[0], 3.0);
  EXPECT_EQ(sub->Row(0).indices[0], 1);
  EXPECT_DOUBLE_EQ(sub->Row(1).values[0], 4.0);
}

TEST(SubmatrixTest, BadRangesRejected) {
  const CsrMatrix a = Small();
  EXPECT_FALSE(Submatrix(a, 2, 1, 0, 3).ok());
  EXPECT_FALSE(Submatrix(a, 0, 4, 0, 3).ok());
  EXPECT_FALSE(Submatrix(a, 0, 3, -1, 2).ok());
}

TEST(DropEntriesTest, RemovesSmallValues) {
  CooMatrix coo(2, 2);
  coo.Add(0, 0, 0.5);
  coo.Add(0, 1, -2.0);
  coo.Add(1, 1, 0.0);
  auto a = CsrMatrix::FromCoo(coo);
  const CsrMatrix d = DropEntries(*a, 0.6);
  EXPECT_EQ(d.nnz(), 1);
  EXPECT_DOUBLE_EQ(d.Row(0).values[0], -2.0);
  // Threshold 0 keeps 0.5 but drops the explicit zero.
  EXPECT_EQ(DropEntries(*a).nnz(), 2);
}

TEST(TopKTest, KeepsLargestMagnitudesSorted) {
  CooMatrix coo(1, 5);
  coo.Add(0, 0, 1.0);
  coo.Add(0, 1, -5.0);
  coo.Add(0, 2, 3.0);
  coo.Add(0, 3, -2.0);
  coo.Add(0, 4, 4.0);
  auto a = CsrMatrix::FromCoo(coo);
  const CsrMatrix top = TopKPerRow(*a, 2);
  ASSERT_EQ(top.nnz(), 2);
  EXPECT_EQ(top.Row(0).indices[0], 1);
  EXPECT_EQ(top.Row(0).indices[1], 4);
  EXPECT_TRUE(top.RowsSorted());
  // k larger than the row keeps everything.
  EXPECT_EQ(TopKPerRow(*a, 10).nnz(), 5);
  EXPECT_EQ(TopKPerRow(*a, 0).nnz(), 0);
}

TEST(TopKTest, EqualMagnitudeTiesBreakByColumnIndex) {
  // Five entries of identical magnitude (mixed signs): the k survivors at
  // the boundary must be the lowest column ids, independent of entry order.
  CooMatrix coo(1, 5);
  coo.Add(0, 4, 2.0);
  coo.Add(0, 2, -2.0);
  coo.Add(0, 0, 2.0);
  coo.Add(0, 3, 2.0);
  coo.Add(0, 1, -2.0);
  auto a = CsrMatrix::FromCoo(coo);
  const CsrMatrix top = TopKPerRow(*a, 3);
  ASSERT_EQ(top.nnz(), 3);
  EXPECT_EQ(top.Row(0).indices[0], 0);
  EXPECT_EQ(top.Row(0).indices[1], 1);
  EXPECT_EQ(top.Row(0).indices[2], 2);
  EXPECT_DOUBLE_EQ(top.Row(0).values[1], -2.0);  // signs travel with entries

  // The same row stored with unsorted entries (FromCoo would sort them, so
  // build from parts directly) must select the same survivors: the result
  // may not depend on the order entries happen to sit in the CSR arrays.
  auto b = CsrMatrix::FromParts(1, 5, {0, 5}, {4, 1, 3, 0, 2},
                                {2.0, -2.0, 2.0, 2.0, -2.0});
  ASSERT_TRUE(b.ok());
  const CsrMatrix top2 = TopKPerRow(*b, 3);
  ASSERT_EQ(top2.nnz(), 3);
  for (Offset i = 0; i < 3; ++i) {
    EXPECT_EQ(top2.Row(0).indices[i], top.Row(0).indices[i]);
    EXPECT_DOUBLE_EQ(top2.Row(0).values[i], top.Row(0).values[i]);
  }

  // A mixed row where the boundary tie sits below a strictly larger entry:
  // |−9| wins outright, then the tie at |3| resolves to the lower column.
  CooMatrix coo3(1, 4);
  coo3.Add(0, 0, 3.0);
  coo3.Add(0, 1, -9.0);
  coo3.Add(0, 2, -3.0);
  coo3.Add(0, 3, 1.0);
  auto c = CsrMatrix::FromCoo(coo3);
  const CsrMatrix top3 = TopKPerRow(*c, 2);
  ASSERT_EQ(top3.nnz(), 2);
  EXPECT_EQ(top3.Row(0).indices[0], 0);
  EXPECT_EQ(top3.Row(0).indices[1], 1);
}

TEST(NormTest, FrobeniusAndSum) {
  const CsrMatrix a = Small();
  EXPECT_NEAR(FrobeniusNorm(a), std::sqrt(1.0 + 4 + 9 + 16 + 25), 1e-12);
  EXPECT_DOUBLE_EQ(EntrySum(a), 15.0);
}

TEST(IdentityTest, NeutralUnderSpGemm) {
  const CsrMatrix a = testing_util::RandomMatrix(25, 25, 0.2, 9);
  auto c = ReferenceSpGemm(a, Identity(25));
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(CsrApproxEqual(*c, a));
}

TEST(RowNormalizeTest, RowsSumToOne) {
  const CsrMatrix a = testing_util::SkewedMatrix(50, 30, 4);
  const CsrMatrix p = RowNormalize(a);
  for (Index r = 0; r < p.rows(); ++r) {
    const SpanView row = p.Row(r);
    if (row.size == 0) continue;
    Value sum = 0.0;
    for (Offset k = 0; k < row.size; ++k) sum += row.values[k];
    EXPECT_NEAR(sum, 1.0, 1e-9) << "row " << r;
  }
}

TEST(DiagonalTest, RoundTrip) {
  const std::vector<Value> d = {1.0, 0.0, -3.0};
  const CsrMatrix m = Diagonal(d);
  EXPECT_EQ(m.rows(), 3);
  const auto back = ExtractDiagonal(m);
  ASSERT_EQ(back.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(back[i], d[i]);
  // Extracting from a non-diagonal matrix picks diagonal entries only.
  const auto diag = ExtractDiagonal(Small());
  EXPECT_DOUBLE_EQ(diag[0], 1.0);
  EXPECT_DOUBLE_EQ(diag[1], 3.0);
  EXPECT_DOUBLE_EQ(diag[2], 5.0);
}

TEST(OperationsPropertyTest, AddIsDistributiveOverSpGemm) {
  // (A + B) * C == A*C + B*C on random inputs.
  const CsrMatrix a = testing_util::RandomMatrix(20, 25, 0.15, 11);
  const CsrMatrix b = testing_util::RandomMatrix(20, 25, 0.15, 12);
  const CsrMatrix c = testing_util::RandomMatrix(25, 15, 0.2, 13);
  auto ab = Add(a, b);
  ASSERT_TRUE(ab.ok());
  auto left = ReferenceSpGemm(*ab, c);
  auto ac = ReferenceSpGemm(a, c);
  auto bc = ReferenceSpGemm(b, c);
  ASSERT_TRUE(left.ok() && ac.ok() && bc.ok());
  auto right = Add(*ac, *bc);
  ASSERT_TRUE(right.ok());
  EXPECT_TRUE(CsrApproxEqual(*left, *right, 1e-9));
}

}  // namespace
}  // namespace sparse
}  // namespace spnet
