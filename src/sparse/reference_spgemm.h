#ifndef SPNET_SPARSE_REFERENCE_SPGEMM_H_
#define SPNET_SPARSE_REFERENCE_SPGEMM_H_

#include "common/status.h"
#include "sparse/csr_matrix.h"

namespace spnet {
namespace sparse {

/// Reference single-threaded Gustavson spGEMM (dense accumulator with a
/// sparse touched-set reset). Output rows come out sorted. This is the
/// correctness oracle every GPU-model algorithm in this repository is
/// validated against; it is not performance-tuned.
Result<CsrMatrix> ReferenceSpGemm(const CsrMatrix& a, const CsrMatrix& b);

/// Exact nnz(C) of A*B, computed with a symbolic Gustavson pass (no
/// numeric work). Used by tests and by the precalculation benchmarks.
Result<int64_t> SpGemmExactOutputNnz(const CsrMatrix& a, const CsrMatrix& b);

}  // namespace sparse
}  // namespace spnet

#endif  // SPNET_SPARSE_REFERENCE_SPGEMM_H_
