#include <algorithm>
#include <memory>

#include "spgemm/algorithm.h"
#include "spgemm/functional.h"
#include "spgemm/plan.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace spgemm {

namespace {

using sparse::CsrMatrix;

// System 1 host of Table I: Xeon E5-2640v4, 10 cores / 20 threads.
constexpr double kCores = 10.0;
constexpr double kCoreGhz = 2.8;          // sustained all-core clock
constexpr double kOpsPerCycle = 2.0;      // scalar-ish sparse inner loop
constexpr double kMemBandwidthGBs = 110.0; // cache-assisted effective
constexpr double kParallelEfficiency = 0.75;

/// Surrogate for Intel MKL's CPU spGEMM (mkl_sparse_sp2m): multithreaded
/// Gustavson. The CPU's caches make it immune to the GPU's divergence and
/// occupancy pathologies, but it is capped by core count and DRAM
/// bandwidth — landing at roughly half the GPU row-product baseline on
/// the paper's dataset mix (Fig. 8). Modeled as a host-side roofline; no
/// device kernels are launched.
class MklLikeSpGemm : public SpGemmAlgorithm {
 public:
  std::string name() const override { return "MKL"; }

  Result<SpGemmPlan> PlanImpl(const CsrMatrix& a, const CsrMatrix& b,
                              const gpusim::DeviceSpec&,
                              ExecContext*) const override {
    if (a.cols() != b.rows()) {
      return Status::InvalidArgument("dimension mismatch in MKL plan");
    }
    const Workload workload = BuildWorkload(a, b);
    SpGemmPlan plan;
    plan.flops = workload.flops;
    plan.output_nnz = workload.output_nnz;

    // Compute roofline: one multiply-accumulate per intermediate product
    // across the cores (the symbolic pass rides the caches warmed here).
    const double compute_seconds =
        static_cast<double>(workload.flops) /
        (kCores * kParallelEfficiency * kCoreGhz * 1e9 * kOpsPerCycle);
    // Memory roofline: the LLC keeps most B rows resident (Gustavson's
    // accumulator is cache-friendly), so only ~30% of the per-product
    // reads reach DRAM, plus the output write-out.
    const double bytes =
        static_cast<double>(kElementBytes) *
        (0.3 * static_cast<double>(workload.flops) +
         static_cast<double>(workload.output_nnz) * 2.0);
    const double memory_seconds = bytes / (kMemBandwidthGBs * 1e9);

    plan.host_seconds = std::max(compute_seconds, memory_seconds) + 30e-6;
    return plan;  // no device kernels
  }

  Result<CsrMatrix> ComputeImpl(const CsrMatrix& a, const CsrMatrix& b,
                                ExecContext*) const override {
    return RowProductExpandMerge(a, b);
  }
};

}  // namespace

std::unique_ptr<SpGemmAlgorithm> MakeMklLike() {
  return std::make_unique<MklLikeSpGemm>();
}

}  // namespace spgemm
}  // namespace spnet
