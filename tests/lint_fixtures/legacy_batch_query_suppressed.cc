// Fixture: legacy-batch-query honors inline suppression markers (the
// legacy-adapter regression tests use them).

namespace spnet {
namespace engine {
struct BatchQuery {
  const char* id = nullptr;
};
}  // namespace engine

void Demo() {
  // spnet-lint: allow(legacy-batch-query)
  engine::BatchQuery query;
  (void)query;
}

}  // namespace spnet
