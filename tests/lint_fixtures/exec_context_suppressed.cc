// Fixture: exec-context-threading honors inline suppression markers.
#include "spgemm/algorithm.h"

namespace spnet {

class LegacyAlgorithm : public spgemm::SpGemmAlgorithm {
 private:
  // spnet-lint: allow(exec-context-threading)
  Result<spgemm::SpGemmPlan> PlanImpl(
      const sparse::CsrMatrix& a, const sparse::CsrMatrix& b,
      const gpusim::DeviceSpec& device) const override;
};

}  // namespace spnet
