#ifndef SPNET_LINT_GRAPH_H_
#define SPNET_LINT_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "lint/lint.h"
#include "lint/suppression.h"

namespace spnet {
namespace lint {

/// One source file handed to the project-graph analyzer: the path as the
/// caller spelled it (used verbatim in diagnostics) and the file's text.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One `#include "..."` directive found in a file. `target` is the path as
/// written; `resolved` is the repo-relative id of the included file when it
/// names another file in the graph, empty for external/system includes.
struct IncludeRef {
  std::string target;
  std::string resolved;
  int line = 0;
};

/// One file in the include graph. `id` is the repo-relative identity
/// (`src/core/suite.h`, `tests/test_util.h`), `display_path` the spelling
/// diagnostics use, `module` the layering unit the file belongs to (empty
/// when the path maps to no known module root).
struct FileNode {
  std::string id;
  std::string display_path;
  std::string module;
  std::vector<IncludeRef> includes;
  SuppressionIndex suppressions;
};

/// The checked-in layering policy: for each module, the set of modules its
/// files may `#include` from. A module mapped to the wildcard "*" (the
/// leaf binaries: tools, tests, bench, examples) may depend on anything.
/// Self-dependencies are always allowed and never listed.
class LayeringManifest {
 public:
  bool Allows(const std::string& from, const std::string& to) const;
  bool Knows(const std::string& module) const;
  bool IsUnrestricted(const std::string& module) const;
  const std::map<std::string, std::set<std::string>>& allowed() const {
    return allowed_;
  }

 private:
  friend Result<LayeringManifest> ParseLayeringManifest(
      const std::string& text);
  std::map<std::string, std::set<std::string>> allowed_;
  std::set<std::string> unrestricted_;
};

/// Parses a manifest: one `module: dep dep ...` line per module, `#`
/// comments and blank lines ignored, `*` as the sole dependency for
/// unrestricted modules. Errors: malformed lines, duplicate modules,
/// dependencies on undeclared modules, and any cycle among the declared
/// edges (the manifest itself must describe a DAG).
[[nodiscard]] Result<LayeringManifest> ParseLayeringManifest(
    const std::string& text);

/// The built-in manifest source. LAYERING.md carries the same text
/// verbatim (lint_test pins them to each other), so the policy is
/// reviewable in one place and enforced from another.
const char* DefaultLayeringManifestText();

/// DefaultLayeringManifestText() parsed once; crashes at startup if the
/// built-in text ever goes stale, which a unit test catches first.
const LayeringManifest& DefaultLayeringManifest();

/// Repo-relative identity for a lint path: everything from the last
/// occurrence of a known tree root (src, tools, tests, bench, examples)
/// onward, slashes normalized. Empty when no root segment is present.
std::string RepoRelativeId(const std::string& path);

/// Layering unit for a repo-relative id: `src/<m>/...` maps to `<m>`
/// except the fault-injection leaf (`src/verify/fault_injection.*` is its
/// own module, `faultinject`, mirroring the spnet_faultinject library
/// split); `tools/ tests/ bench/ examples/` map to themselves. Empty for
/// unknown ids.
std::string ModuleForId(const std::string& id);

/// The project include graph: every first-party file, its module, and its
/// resolved `#include "..."` edges.
class ProjectGraph {
 public:
  /// Tokenizes each source, extracts quoted includes and resolves them
  /// against the set of files present (an include `a/b.h` matches the file
  /// whose id is `src/a/b.h` or `a/b.h`). Deterministic: files are sorted
  /// by id, duplicate ids keep the first spelling.
  static ProjectGraph Build(const std::vector<SourceFile>& sources);

  const std::vector<FileNode>& files() const { return files_; }
  const FileNode* FindFile(const std::string& id) const;

  /// Cross-module edge census: (from, to) -> number of include sites.
  /// Self-edges and unresolved includes are excluded.
  std::map<std::pair<std::string, std::string>, int> ModuleEdges() const;

  /// Strongly connected components of the file-level include graph with
  /// more than one member (plus self-including files), via Tarjan's
  /// algorithm. Each cycle and the list itself are sorted by id, so output
  /// is stable for tests and CI artifacts.
  std::vector<std::vector<std::string>> IncludeCycles() const;

  /// Machine-readable graph (`--graph_out`): schema_version'd JSON with
  /// per-module file counts and observed deps, the manifest, the
  /// cross-module edge census, include cycles, the layering-violation
  /// count, and the per-file adjacency.
  std::string ToJson(const LayeringManifest& manifest) const;

 private:
  std::vector<FileNode> files_;
};

/// The project-graph rule tier: emits `layering-violation` for any
/// cross-module include the manifest does not allow (or whose source
/// module the manifest does not know) and `include-cycle` once per cycle.
/// Inline `spnet-lint: allow(...)` markers on the offending include lines
/// are honored.
std::vector<Diagnostic> CheckProjectGraph(const ProjectGraph& graph,
                                          const LayeringManifest& manifest);

}  // namespace lint
}  // namespace spnet

#endif  // SPNET_LINT_GRAPH_H_
