#include "core/reorganizer_config.h"

#include <cstring>
#include <string>

#include "common/math_util.h"

namespace spnet {
namespace core {

namespace {

uint64_t FnvMix(uint64_t h, uint64_t bits) {
  constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (bits >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvMixDouble(uint64_t h, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return FnvMix(h, bits);
}

}  // namespace

const char* PlanningTierName(PlanningTier tier) {
  switch (tier) {
    case PlanningTier::kExact:
      return "exact";
    case PlanningTier::kEstimated:
      return "estimated";
    case PlanningTier::kAuto:
      return "auto";
  }
  return "exact";
}

Result<PlanningTier> ParsePlanningTier(const std::string& name) {
  if (name == "exact") return PlanningTier::kExact;
  if (name == "estimated") return PlanningTier::kEstimated;
  if (name == "auto") return PlanningTier::kAuto;
  return Status::InvalidArgument(
      "unknown planning tier '" + name + "' (want exact|estimated|auto)");
}

Status ReorganizerConfig::Validate() const {
  if (!(alpha > 0.0)) {
    return Status::InvalidArgument(
        "reorganizer alpha must be > 0, got " + std::to_string(alpha));
  }
  if (!(beta > 0.0)) {
    return Status::InvalidArgument("reorganizer beta must be > 0, got " +
                                   std::to_string(beta));
  }
  if (splitting_factor_override < 0 ||
      (splitting_factor_override > 0 &&
       !IsPow2(static_cast<int64_t>(splitting_factor_override)))) {
    return Status::InvalidArgument(
        "splitting_factor_override must be 0 (heuristic) or a power of two, "
        "got " +
        std::to_string(splitting_factor_override));
  }
  if (limiting_extra_shmem < 0) {
    return Status::InvalidArgument(
        "limiting_extra_shmem must be >= 0, got " +
        std::to_string(limiting_extra_shmem));
  }
  if (block_size <= 0 || block_size % 32 != 0) {
    return Status::InvalidArgument(
        "block_size must be a positive multiple of 32, got " +
        std::to_string(block_size));
  }
  if (planning_tier != PlanningTier::kExact &&
      planning_tier != PlanningTier::kEstimated &&
      planning_tier != PlanningTier::kAuto) {
    return Status::InvalidArgument("planning_tier is not a known tier");
  }
  if (!(estimator_sample_fraction > 0.0) || estimator_sample_fraction > 1.0) {
    return Status::InvalidArgument(
        "estimator_sample_fraction must be in (0, 1], got " +
        std::to_string(estimator_sample_fraction));
  }
  if (!(min_plan_confidence >= 0.0) || min_plan_confidence > 1.0) {
    return Status::InvalidArgument(
        "min_plan_confidence must be in [0, 1], got " +
        std::to_string(min_plan_confidence));
  }
  if (reorder != sparse::ReorderStrategy::kNone &&
      reorder != sparse::ReorderStrategy::kDegree &&
      reorder != sparse::ReorderStrategy::kRcm &&
      reorder != sparse::ReorderStrategy::kCluster) {
    return Status::InvalidArgument("reorder is not a known strategy");
  }
  return Status::Ok();
}

uint64_t ReorganizerConfig::Fingerprint() const {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  h = FnvMix(h, (enable_splitting ? 1ULL : 0ULL) |
                    (enable_gathering ? 2ULL : 0ULL) |
                    (enable_limiting ? 4ULL : 0ULL));
  h = FnvMixDouble(h, alpha);
  h = FnvMixDouble(h, beta);
  h = FnvMix(h, static_cast<uint64_t>(splitting_factor_override));
  h = FnvMix(h, static_cast<uint64_t>(limiting_extra_shmem));
  h = FnvMix(h, static_cast<uint64_t>(block_size));
  h = FnvMix(h, static_cast<uint64_t>(planning_tier));
  h = FnvMixDouble(h, estimator_sample_fraction);
  h = FnvMixDouble(h, min_plan_confidence);
  h = FnvMix(h, static_cast<uint64_t>(reorder));
  return h;
}

}  // namespace core
}  // namespace spnet
