#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/block_reorganizer.h"
#include "graph/analytics.h"
#include "sparse/operations.h"
#include "tests/test_util.h"

namespace spnet {
namespace graph {
namespace {

using sparse::CooMatrix;
using sparse::CsrMatrix;
using sparse::Index;

/// Undirected cycle 0-1-2-...-(n-1)-0.
CsrMatrix Cycle(Index n) {
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) {
    coo.Add(i, (i + 1) % n, 1.0);
    coo.Add((i + 1) % n, i, 1.0);
  }
  coo.SortAndCombine();
  return std::move(CsrMatrix::FromCoo(coo)).value();
}

/// Complete graph on n nodes (no self loops).
CsrMatrix Complete(Index n) {
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if (i != j) coo.Add(i, j, 1.0);
    }
  }
  return std::move(CsrMatrix::FromCoo(coo)).value();
}

core::BlockReorganizerSpGemm& Reorganizer() {
  // Leaked on purpose: shared across tests, destruction order irrelevant.
  static core::BlockReorganizerSpGemm* alg =
      new core::BlockReorganizerSpGemm();  // spnet-lint: allow(raw-new-delete)
  return *alg;
}

TEST(PageRankTest, UniformOnSymmetricCycle) {
  const CsrMatrix a = Cycle(10);
  auto pr = PageRank(a);
  ASSERT_TRUE(pr.ok());
  double sum = 0.0;
  for (double s : pr->scores) {
    EXPECT_NEAR(s, 0.1, 1e-6);
    sum += s;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_LT(pr->residual, 1e-9);
}

TEST(PageRankTest, HubOutranksLeaves) {
  // Star: all leaves point to node 0 and back.
  CooMatrix coo(9, 9);
  for (Index i = 1; i < 9; ++i) {
    coo.Add(i, 0, 1.0);
    coo.Add(0, i, 1.0);
  }
  auto a = CsrMatrix::FromCoo(coo);
  auto pr = PageRank(*a);
  ASSERT_TRUE(pr.ok());
  for (Index i = 1; i < 9; ++i) {
    EXPECT_GT(pr->scores[0], pr->scores[static_cast<size_t>(i)]);
  }
}

TEST(PageRankTest, DanglingNodesConserveMass) {
  // Node 2 has no out-edges.
  CooMatrix coo(3, 3);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 2, 1.0);
  auto a = CsrMatrix::FromCoo(coo);
  auto pr = PageRank(*a);
  ASSERT_TRUE(pr.ok());
  const double sum =
      std::accumulate(pr->scores.begin(), pr->scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRankTest, RejectsBadInput) {
  const CsrMatrix rect = testing_util::RandomMatrix(4, 5, 0.5, 1);
  EXPECT_FALSE(PageRank(rect).ok());
  PageRankOptions bad;
  bad.damping = 1.5;
  EXPECT_FALSE(PageRank(Cycle(4), bad).ok());
}

TEST(CosineSimilarityTest, IdenticalRowsScoreOne) {
  // Rows 0 and 1 identical; row 2 orthogonal.
  CooMatrix coo(3, 4);
  coo.Add(0, 0, 2.0);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 0, 4.0);  // same direction, different magnitude
  coo.Add(1, 1, 2.0);
  coo.Add(2, 3, 5.0);
  auto a = CsrMatrix::FromCoo(coo);
  auto s = CosineSimilarity(*a, Reorganizer(), 3);
  ASSERT_TRUE(s.ok());
  // similarity(0, 1) == 1; no entry between 0/1 and 2; no diagonal.
  const sparse::SpanView row0 = s->Row(0);
  ASSERT_EQ(row0.size, 1);
  EXPECT_EQ(row0.indices[0], 1);
  EXPECT_NEAR(row0.values[0], 1.0, 1e-9);
  EXPECT_EQ(s->RowNnz(2), 0);
}

TEST(CosineSimilarityTest, TopKBounds) {
  const CsrMatrix a = testing_util::SkewedMatrix(60, 40, 31);
  auto s = CosineSimilarity(a, Reorganizer(), 5);
  ASSERT_TRUE(s.ok());
  for (Index r = 0; r < s->rows(); ++r) {
    EXPECT_LE(s->RowNnz(r), 5);
  }
  EXPECT_FALSE(CosineSimilarity(a, Reorganizer(), 0).ok());
}

TEST(KHopTest, CycleReach) {
  const CsrMatrix a = Cycle(12);
  auto one = KHopReachability(a, Reorganizer(), 1);
  auto three = KHopReachability(a, Reorganizer(), 3);
  ASSERT_TRUE(one.ok() && three.ok());
  // 1 hop: self + 2 neighbors; 3 hops: self + 3 on each side.
  EXPECT_EQ(one->RowNnz(0), 3);
  EXPECT_EQ(three->RowNnz(0), 7);
  EXPECT_FALSE(KHopReachability(a, Reorganizer(), 0).ok());
}

TEST(KHopTest, ReachabilityIsMonotone) {
  const CsrMatrix a = testing_util::SkewedMatrix(80, 40, 33);
  auto two = KHopReachability(a, Reorganizer(), 2);
  auto four = KHopReachability(a, Reorganizer(), 4);
  ASSERT_TRUE(two.ok() && four.ok());
  EXPECT_GE(four->nnz(), two->nnz());
}

TEST(TriangleTest, KnownCounts) {
  auto cycle = CountTriangles(Cycle(8), Reorganizer());
  ASSERT_TRUE(cycle.ok());
  EXPECT_EQ(cycle.value(), 0);
  // K4 has C(4,3) = 4 triangles; K5 has 10.
  auto k4 = CountTriangles(Complete(4), Reorganizer());
  auto k5 = CountTriangles(Complete(5), Reorganizer());
  ASSERT_TRUE(k4.ok() && k5.ok());
  EXPECT_EQ(k4.value(), 4);
  EXPECT_EQ(k5.value(), 10);
}

TEST(TriangleTest, DirectedInputIsSymmetrized) {
  // Directed 3-cycle 0->1->2->0: each pair is connected in one direction,
  // so the underlying undirected graph is K3 — one triangle. The old
  // asymmetric math found zero overlap here.
  CooMatrix cyc(3, 3);
  cyc.Add(0, 1, 1.0);
  cyc.Add(1, 2, 1.0);
  cyc.Add(2, 0, 1.0);
  auto a = CsrMatrix::FromCoo(cyc);
  auto n = CountTriangles(*a, Reorganizer());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1);

  // Transitive DAG triangle 0->1, 1->2, 0->2: same underlying K3.
  CooMatrix dag(3, 3);
  dag.Add(0, 1, 1.0);
  dag.Add(1, 2, 1.0);
  dag.Add(0, 2, 1.0);
  auto d = CsrMatrix::FromCoo(dag);
  auto m = CountTriangles(*d, Reorganizer());
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value(), 1);
}

TEST(TriangleTest, ReorderStrategiesPreserveCounts) {
  const CsrMatrix a = testing_util::SkewedMatrix(60, 40, 37);
  auto baseline = CountTriangles(a, Reorganizer());
  ASSERT_TRUE(baseline.ok());
  for (sparse::ReorderStrategy strategy : sparse::AllReorderStrategies()) {
    auto reordered = CountTriangles(a, Reorganizer(), strategy);
    ASSERT_TRUE(reordered.ok())
        << sparse::ReorderStrategyName(strategy);
    EXPECT_EQ(reordered.value(), baseline.value())
        << sparse::ReorderStrategyName(strategy);
  }
}

TEST(JaccardTest, DirectedInputIsSymmetrized) {
  // Directed 3-cycle: underlying undirected K3, so every adjacent pair
  // scores 1/3 — and the output covers both directions of each edge.
  CooMatrix cyc(3, 3);
  cyc.Add(0, 1, 1.0);
  cyc.Add(1, 2, 1.0);
  cyc.Add(2, 0, 1.0);
  auto a = CsrMatrix::FromCoo(cyc);
  auto j = JaccardSimilarity(*a, Reorganizer());
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->nnz(), 6);
  for (sparse::Value v : j->values()) {
    EXPECT_NEAR(v, 1.0 / 3.0, 1e-9);
  }
}

TEST(CommonNeighborTest, DirectedInputIsSymmetrized) {
  // One-directional path 0->1->2: undirected view is the path 0-1-2, so
  // node 0 should be predicted to link with node 2 (shared neighbor 1).
  CooMatrix coo(3, 3);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 2, 1.0);
  auto a = CsrMatrix::FromCoo(coo);
  auto scores = CommonNeighborScores(*a, Reorganizer(), 2);
  ASSERT_TRUE(scores.ok());
  const sparse::SpanView row0 = scores->Row(0);
  ASSERT_EQ(row0.size, 1);
  EXPECT_EQ(row0.indices[0], 2);
  EXPECT_DOUBLE_EQ(row0.values[0], 1.0);
}

TEST(CommonNeighborTest, PredictsCycleClosure) {
  // Path 0-1-2: nodes 0 and 2 share neighbor 1 and are not adjacent.
  CooMatrix coo(3, 3);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 0, 1.0);
  coo.Add(1, 2, 1.0);
  coo.Add(2, 1, 1.0);
  auto a = CsrMatrix::FromCoo(coo);
  auto scores = CommonNeighborScores(*a, Reorganizer(), 2);
  ASSERT_TRUE(scores.ok());
  const sparse::SpanView row0 = scores->Row(0);
  ASSERT_EQ(row0.size, 1);
  EXPECT_EQ(row0.indices[0], 2);
  EXPECT_DOUBLE_EQ(row0.values[0], 1.0);
}

TEST(CommonNeighborTest, ExcludesExistingEdges) {
  const CsrMatrix a = Complete(6);
  auto scores = CommonNeighborScores(a, Reorganizer(), 5);
  ASSERT_TRUE(scores.ok());
  // Complete graph: every pair already adjacent, nothing to predict.
  EXPECT_EQ(scores->nnz(), 0);
}


TEST(BfsTest, CycleLevels) {
  const CsrMatrix a = Cycle(8);
  auto levels = BfsLevels(a, 0);
  ASSERT_TRUE(levels.ok());
  EXPECT_EQ((*levels)[0], 0);
  EXPECT_EQ((*levels)[1], 1);
  EXPECT_EQ((*levels)[7], 1);
  EXPECT_EQ((*levels)[4], 4);  // farthest point of an 8-cycle
}

TEST(BfsTest, UnreachableIsMinusOne) {
  CooMatrix coo(4, 4);
  coo.Add(0, 1, 1.0);
  auto a = CsrMatrix::FromCoo(coo);
  auto levels = BfsLevels(*a, 0);
  ASSERT_TRUE(levels.ok());
  EXPECT_EQ((*levels)[1], 1);
  EXPECT_EQ((*levels)[2], -1);
  EXPECT_EQ((*levels)[3], -1);
  EXPECT_FALSE(BfsLevels(*a, 9).ok());
}

TEST(ConnectedComponentsTest, TwoIslands) {
  CooMatrix coo(6, 6);
  coo.Add(0, 1, 1.0);  // directed edge still links the component
  coo.Add(2, 1, 1.0);
  coo.Add(3, 4, 1.0);
  coo.Add(4, 5, 1.0);
  auto a = CsrMatrix::FromCoo(coo);
  auto labels = ConnectedComponents(*a);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ((*labels)[0], 0);
  EXPECT_EQ((*labels)[1], 0);
  EXPECT_EQ((*labels)[2], 0);
  EXPECT_EQ((*labels)[3], 3);
  EXPECT_EQ((*labels)[4], 3);
  EXPECT_EQ((*labels)[5], 3);
}

TEST(ConnectedComponentsTest, AgreesWithBfsOnUndirectedGraph) {
  const CsrMatrix a = Cycle(20);
  auto labels = ConnectedComponents(a);
  auto levels = BfsLevels(a, 0);
  ASSERT_TRUE(labels.ok() && levels.ok());
  for (size_t i = 0; i < labels->size(); ++i) {
    EXPECT_EQ((*labels)[i], 0);
    EXPECT_GE((*levels)[i], 0);
  }
}

TEST(BfsTest, DirectionOption) {
  // Asymmetric chain 0->1->2.
  CooMatrix coo(3, 3);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 2, 1.0);
  auto a = CsrMatrix::FromCoo(coo);

  auto out = BfsLevels(*a, 2, EdgeDirection::kOut);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0], -1);
  EXPECT_EQ((*out)[1], -1);
  EXPECT_EQ((*out)[2], 0);

  auto in = BfsLevels(*a, 2, EdgeDirection::kIn);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ((*in)[0], 2);
  EXPECT_EQ((*in)[1], 1);
  EXPECT_EQ((*in)[2], 0);

  auto both = BfsLevels(*a, 2, EdgeDirection::kBoth);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ((*both)[0], 2);
  EXPECT_EQ((*both)[1], 1);

  // Default stays the historical out-edges behavior.
  auto def = BfsLevels(*a, 0);
  ASSERT_TRUE(def.ok());
  EXPECT_EQ((*def)[2], 2);
}

TEST(ConnectedComponentsTest, DirectionOption) {
  // 0->1 and 2->1: weakly one component, but out-edge floods from 0 and 2
  // never meet node ids already claimed by a lower root.
  CooMatrix coo(3, 3);
  coo.Add(0, 1, 1.0);
  coo.Add(2, 1, 1.0);
  auto a = CsrMatrix::FromCoo(coo);

  auto both = ConnectedComponents(*a);  // default kBoth
  ASSERT_TRUE(both.ok());
  EXPECT_EQ((*both)[0], 0);
  EXPECT_EQ((*both)[1], 0);
  EXPECT_EQ((*both)[2], 0);

  auto out = ConnectedComponents(*a, EdgeDirection::kOut);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0], 0);
  EXPECT_EQ((*out)[1], 0);  // claimed by root 0's flood
  EXPECT_EQ((*out)[2], 2);  // 1 already labeled, so 2 is alone

  auto in = ConnectedComponents(*a, EdgeDirection::kIn);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ((*in)[0], 0);
  EXPECT_EQ((*in)[1], 1);  // root 1 floods its in-neighbors ...
  EXPECT_EQ((*in)[2], 1);  // ... reaching the unclaimed node 2
}

TEST(PageRankTest, ReorderStrategiesPreserveScores) {
  const CsrMatrix a = testing_util::SkewedMatrix(80, 50, 39);
  auto baseline = PageRank(a);
  ASSERT_TRUE(baseline.ok());
  for (sparse::ReorderStrategy strategy : sparse::AllReorderStrategies()) {
    PageRankOptions options;
    options.reorder = strategy;
    auto reordered = PageRank(a, options);
    ASSERT_TRUE(reordered.ok()) << sparse::ReorderStrategyName(strategy);
    ASSERT_EQ(reordered->scores.size(), baseline->scores.size());
    for (size_t i = 0; i < baseline->scores.size(); ++i) {
      // Scores agree up to floating-point summation order.
      EXPECT_NEAR(reordered->scores[i], baseline->scores[i], 1e-9)
          << sparse::ReorderStrategyName(strategy) << " node " << i;
    }
  }
}

TEST(KHopTest, ReorderStrategiesPreservePattern) {
  const CsrMatrix a = testing_util::SkewedMatrix(60, 30, 41);
  auto baseline = KHopReachability(a, Reorganizer(), 3);
  ASSERT_TRUE(baseline.ok());
  baseline->SortRows();
  for (sparse::ReorderStrategy strategy : sparse::AllReorderStrategies()) {
    auto reordered = KHopReachability(a, Reorganizer(), 3, strategy);
    ASSERT_TRUE(reordered.ok()) << sparse::ReorderStrategyName(strategy);
    reordered->SortRows();
    // Patterns are exact (all values 1.0): demand exact equality.
    EXPECT_TRUE(sparse::CsrApproxEqual(*baseline, *reordered, 0.0))
        << sparse::ReorderStrategyName(strategy);
  }
}

TEST(JaccardTest, TriangleNeighborhoods) {
  // Triangle 0-1-2: J(u, v) for an edge = |common|/|union| = 1/3
  // (N(0)={1,2}, N(1)={0,2}: common {2}, union {0,1,2}).
  const CsrMatrix k3 = Complete(3);
  auto j = JaccardSimilarity(k3, Reorganizer());
  ASSERT_TRUE(j.ok());
  for (Index u = 0; u < 3; ++u) {
    const sparse::SpanView row = j->Row(u);
    for (sparse::Offset k = 0; k < row.size; ++k) {
      EXPECT_NEAR(row.values[k], 1.0 / 3.0, 1e-9);
    }
  }
}

TEST(JaccardTest, ValuesBounded) {
  const CsrMatrix a = testing_util::SkewedMatrix(60, 40, 35);
  auto j = JaccardSimilarity(a, Reorganizer());
  ASSERT_TRUE(j.ok());
  for (sparse::Value v : j->values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace graph
}  // namespace spnet
