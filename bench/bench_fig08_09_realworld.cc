// Reproduces Figures 8 and 9: normalized speedup (vs. the row-product
// baseline) and absolute GFLOPS of seven spGEMM implementations across the
// 28 real-world datasets of Table II, on the simulated Titan Xp.
//
// Flags: --scale (default 0.25), --device, --seed, --csv.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "core/suite.h"
#include "metrics/report.h"
#include "spgemm/algorithm.h"

namespace spnet {
namespace {

int Run(int argc, char** argv) {
  const bench::BenchOptions options =
      bench::BenchOptions::FromArgs(argc, argv);
  const gpusim::DeviceSpec device = options.Device();
  const auto algorithms = core::MakeAllAlgorithms();

  std::vector<std::string> header = {"dataset"};
  for (const auto& alg : algorithms) header.push_back(alg->name());
  metrics::Table speedup_table(header);
  metrics::Table gflops_table(header);

  std::map<std::string, std::vector<double>> speedups;
  for (const std::string& name : bench::AllDatasetNames()) {
    const sparse::CsrMatrix a = bench::LoadDataset(name, options);

    double row_product_seconds = 0.0;
    std::vector<std::string> srow = {name};
    std::vector<std::string> grow = {name};
    for (const auto& alg : algorithms) {
      auto m = spgemm::Measure(*alg, a, a, device);
      SPNET_CHECK(m.ok()) << alg->name() << " on " << name << ": "
                          << m.status().ToString();
      if (alg->name() == "row-product") {
        row_product_seconds = m->total_seconds;
      }
      const double speedup = row_product_seconds / m->total_seconds;
      speedups[alg->name()].push_back(speedup);
      srow.push_back(metrics::FormatDouble(speedup));
      grow.push_back(metrics::FormatDouble(m->Gflops()));
    }
    speedup_table.AddRow(std::move(srow));
    gflops_table.AddRow(std::move(grow));
  }

  std::vector<std::string> mean_row = {"GEOMEAN"};
  for (const auto& alg : algorithms) {
    mean_row.push_back(
        metrics::FormatDouble(metrics::GeometricMean(speedups[alg->name()])));
  }
  speedup_table.AddRow(std::move(mean_row));

  std::printf("== Figure 8: speedup over row-product baseline (%s, scale %.2f) ==\n",
              device.name.c_str(), options.scale);
  std::fputs(options.csv ? speedup_table.ToCsv().c_str()
                         : speedup_table.ToString().c_str(),
             stdout);
  std::printf("\n== Figure 9: absolute GFLOPS ==\n");
  std::fputs(options.csv ? gflops_table.ToCsv().c_str()
                         : gflops_table.ToString().c_str(),
             stdout);
  std::printf("\nPaper reference (Titan Xp): Block Reorganizer 1.43x, "
              "outer-product 0.95x, cuSPARSE 0.29x, CUSP 0.22x, bhSPARSE "
              "0.55x, MKL 0.48x.\n");

  bench::BenchJson json("fig08_09_realworld", "Figures 8-9", options);
  json.AddTable("speedup_over_row_product", speedup_table);
  json.AddTable("gflops", gflops_table);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
