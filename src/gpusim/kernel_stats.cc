#include "gpusim/kernel_stats.h"

#include <algorithm>

namespace spnet {
namespace gpusim {

double KernelStats::Lbi() const {
  if (sm_busy_cycles.empty()) return 1.0;
  double max_busy = 0.0;
  double sum = 0.0;
  for (double c : sm_busy_cycles) {
    max_busy = std::max(max_busy, c);
    sum += c;
  }
  if (max_busy <= 0.0) return 1.0;
  const double mean = sum / static_cast<double>(sm_busy_cycles.size());
  return mean / max_busy;
}

double KernelStats::SmUtilization() const {
  if (sm_busy_cycles.empty() || cycles <= 0.0) return 0.0;
  double sum = 0.0;
  for (double c : sm_busy_cycles) sum += c;
  return sum / (cycles * static_cast<double>(sm_busy_cycles.size()));
}

void KernelStats::Accumulate(const KernelStats& other) {
  cycles += other.cycles;
  seconds += other.seconds;
  if (sm_busy_cycles.size() < other.sm_busy_cycles.size()) {
    sm_busy_cycles.resize(other.sm_busy_cycles.size(), 0.0);
  }
  for (size_t i = 0; i < other.sm_busy_cycles.size(); ++i) {
    sm_busy_cycles[i] += other.sm_busy_cycles[i];
  }
  num_blocks += other.num_blocks;
  num_warps += other.num_warps;
  useful_lane_ops += other.useful_lane_ops;
  issued_lane_slots += other.issued_lane_slots;
  l2_read_bytes += other.l2_read_bytes;
  l2_write_bytes += other.l2_write_bytes;
  dram_bytes += other.dram_bytes;
  // Time-weight the resident-block average by each phase's duration.
  if (cycles > 0.0) {
    const double prev_cycles = cycles - other.cycles;
    avg_resident_blocks = (avg_resident_blocks * prev_cycles +
                           other.avg_resident_blocks * other.cycles) /
                          cycles;
  }
}

}  // namespace gpusim
}  // namespace spnet
