#ifndef SPNET_SPGEMM_ALGORITHM_H_
#define SPNET_SPGEMM_ALGORITHM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "gpusim/device_spec.h"
#include "gpusim/simulator.h"
#include "sparse/csr_matrix.h"
#include "spgemm/plan.h"

namespace spnet {
namespace spgemm {

struct ExecContext;

/// One spGEMM implementation under evaluation: it can (1) really compute
/// C = A*B on the host, structured the way the algorithm structures the
/// work (expansion + merge), and (2) emit the workload plan its GPU
/// execution would dispatch, for the SIMT timing model.
///
/// The entry points follow the non-virtual-interface pattern: callers use
/// the public Plan/Compute, which accept an optional ExecContext for
/// observability (trace spans around each call, thread-pool counters) and
/// delegate to the protected virtuals. Implementations override
/// PlanImpl/ComputeImpl and may record their own pass-level metrics
/// against the context; a null context must be (and is, via the
/// null-tolerant helpers in exec_context.h) a cheap no-op.
class SpGemmAlgorithm {
 public:
  virtual ~SpGemmAlgorithm() = default;

  /// Short identifier used in benchmark tables ("row-product", ...).
  virtual std::string name() const = 0;

  /// Builds the simulation plan for C = A*B on `device`.
  Result<SpGemmPlan> Plan(const sparse::CsrMatrix& a,
                          const sparse::CsrMatrix& b,
                          const gpusim::DeviceSpec& device,
                          ExecContext* ctx = nullptr) const;

  /// Functionally computes C = A*B (host execution of the same algorithm
  /// structure); validated against ReferenceSpGemm in the test suite.
  Result<sparse::CsrMatrix> Compute(const sparse::CsrMatrix& a,
                                    const sparse::CsrMatrix& b,
                                    ExecContext* ctx = nullptr) const;

 protected:
  virtual Result<SpGemmPlan> PlanImpl(const sparse::CsrMatrix& a,
                                      const sparse::CsrMatrix& b,
                                      const gpusim::DeviceSpec& device,
                                      ExecContext* ctx) const = 0;

  virtual Result<sparse::CsrMatrix> ComputeImpl(const sparse::CsrMatrix& a,
                                                const sparse::CsrMatrix& b,
                                                ExecContext* ctx) const = 0;
};

/// Simulates `algorithm` on `device` and returns the timing profile. With
/// a context, records a "measure:<name>" span (planning nested inside, the
/// kernel-simulation loop under "simulate") plus sim.* counters and
/// measure.* gauges.
Result<SpGemmMeasurement> Measure(const SpGemmAlgorithm& algorithm,
                                  const sparse::CsrMatrix& a,
                                  const sparse::CsrMatrix& b,
                                  const gpusim::DeviceSpec& device,
                                  ExecContext* ctx = nullptr);

/// The simulation tail of Measure() for an already-built plan: runs every
/// kernel on `device` and aggregates the measurement. This is the
/// plan-cache path of the batch engine — a cached SpGemmPlan skips
/// Plan() entirely and goes straight here. Records the same "simulate"
/// span, sim.* counters and measure.* gauges as Measure().
Result<SpGemmMeasurement> SimulatePlan(const SpGemmPlan& plan,
                                       const gpusim::DeviceSpec& device,
                                       ExecContext* ctx = nullptr);

/// The named baselines individually. (core/suite.h assembles the full
/// Figure 8/9 comparison including the Block Reorganizer.)
std::unique_ptr<SpGemmAlgorithm> MakeRowProduct();
std::unique_ptr<SpGemmAlgorithm> MakeOuterProduct();
std::unique_ptr<SpGemmAlgorithm> MakeCusparseLike();
std::unique_ptr<SpGemmAlgorithm> MakeCuspLike();
std::unique_ptr<SpGemmAlgorithm> MakeBhsparseLike();
std::unique_ptr<SpGemmAlgorithm> MakeMklLike();

/// Extension comparisons from the paper's related-work discussion (not
/// part of the Figure 8 suite): AC-spGEMM's chunk-balanced row product
/// (Winter et al., PPoPP'19) and hash-based fused Gustavson (nsparse).
std::unique_ptr<SpGemmAlgorithm> MakeAcSpGemmLike();
std::unique_ptr<SpGemmAlgorithm> MakeNsparseLike();

}  // namespace spgemm
}  // namespace spnet

#endif  // SPNET_SPGEMM_ALGORITHM_H_
