#include "datasets/registry.h"

#include <algorithm>
#include <cmath>

namespace spnet {
namespace datasets {

using sparse::CsrMatrix;
using sparse::Index;

namespace {

std::vector<RealWorldSpec> BuildTableTwo() {
  const auto florida = [](std::string name, int64_t dim, int64_t nnz,
                          int64_t nnz_c, double jitter, double band) {
    RealWorldSpec s;
    s.name = std::move(name);
    s.family = Family::kFloridaRegular;
    s.dim = static_cast<Index>(dim);
    s.nnz = nnz;
    s.paper_nnz_c = nnz_c;
    s.skew = jitter;
    s.band_frac = band;
    return s;
  };
  const auto stanford = [](std::string name, int64_t dim, int64_t nnz,
                           int64_t nnz_c, double zipf) {
    RealWorldSpec s;
    s.name = std::move(name);
    s.family = Family::kStanfordPowerLaw;
    s.dim = static_cast<Index>(dim);
    s.nnz = nnz;
    s.paper_nnz_c = nnz_c;
    s.skew = zipf;
    return s;
  };

  // Florida Suite Sparse half of Table II: FEM/mesh/circuit matrices with
  // quasi-regular degree distributions. Jitter/band chosen to land near
  // the published nnz(C); see EXPERIMENTS.md for measured values.
  std::vector<RealWorldSpec> specs = {
      florida("filter3D", 106000, 2700000, 20100000, 0.25, 0.005),
      florida("ship", 140000, 3700000, 23000000, 0.25, 0.0035),
      florida("harbor", 46000, 2300000, 7500000, 0.25, 0.009),
      florida("protein", 36000, 2100000, 18700000, 0.30, 0.037),
      florida("sphere", 81000, 2900000, 25300000, 0.25, 0.01),
      florida("2cube_sphere", 99000, 854000, 8600000, 0.25, 0.01),
      florida("accelerator", 118000, 1300000, 17800000, 0.35, 0.013),
      florida("cage12", 127000, 1900000, 14500000, 0.20, 0.004),
      florida("hood", 215000, 5200000, 32700000, 0.25, 0.002),
      florida("m133-b3", 196000, 782000, 3000000, 0.10, 0.0048),
      florida("majorbasis", 156000, 1700000, 7900000, 0.15, 0.0016),
      florida("mario002", 381000, 1100000, 6200000, 0.15, 0.0049),
      florida("mono_500Hz", 165000, 4800000, 39500000, 0.25, 0.0041),
      florida("offshore", 254000, 2100000, 22200000, 0.25, 0.0055),
      florida("patents_main", 235000, 548000, 2200000, 0.40, 0.022),
      florida("poisson3Da", 13000, 344000, 2800000, 0.25, 0.047),
      florida("QCD", 48000, 1800000, 10400000, 0.10, 0.012),
      florida("scircuit", 167000, 900000, 5000000, 0.45, 0.0052),
      florida("power197k", 193000, 3300000, 38000000, 0.25, 0.0041),
      // Stanford SNAP half: power-law networks. The Zipf exponent is the
      // calibrated skew; higher = heavier hubs = larger nnz(C)/nnz(A).
      stanford("youtube", 1100000, 2800000, 148000000, 0.68),
      stanford("as-caida", 26000, 104000, 25600000, 1.35),
      stanford("sx-mathoverflow", 87000, 495000, 17700000, 0.64),
      stanford("loc-gowalla", 192000, 1800000, 456000000, 0.86),
      stanford("emailEnron", 36000, 359000, 29100000, 0.83),
      stanford("slashDot", 76000, 884000, 75200000, 0.74),
      stanford("epinions", 74000, 497000, 19600000, 0.66),
      stanford("web-Notredame", 318000, 1400000, 16000000, 0.5),
      stanford("stanford", 275000, 2200000, 19800000, 0.4),
  };
  return specs;
}

}  // namespace

const std::vector<RealWorldSpec>& TableTwoDatasets() {
  // Leaked on purpose: static-destruction-safe registry.
  static const std::vector<RealWorldSpec>& specs =
      *new std::vector<RealWorldSpec>(  // spnet-lint: allow(raw-new-delete)
          BuildTableTwo());
  return specs;
}

Result<RealWorldSpec> FindDataset(const std::string& name) {
  for (const RealWorldSpec& s : TableTwoDatasets()) {
    if (s.name == name) return s;
  }
  return Status::NotFound("no Table II dataset named " + name);
}

std::vector<std::string> StanfordDatasetNames() {
  // The paper's "10 Stanford datasets" of Figures 11/12/14: the nine SNAP
  // networks of Table II plus patents_main (also a SNAP collection graph).
  return {"youtube",    "as-caida", "sx-mathoverflow", "loc-gowalla",
          "emailEnron", "slashDot", "epinions",        "web-Notredame",
          "stanford",   "patents_main"};
}

Result<MaterializeTarget> MaterializeTargetFor(const RealWorldSpec& spec,
                                               double scale) {
  if (scale <= 0.0 || scale > 4.0) {
    return Status::InvalidArgument("scale must be in (0, 4]");
  }
  MaterializeTarget target;
  target.dim = std::max<Index>(
      64, static_cast<Index>(std::llround(spec.dim * scale)));
  target.nnz = std::max<int64_t>(
      64, static_cast<int64_t>(std::llround(
              static_cast<double>(spec.nnz) * scale)));
  return target;
}

Result<CsrMatrix> Materialize(const RealWorldSpec& spec, double scale,
                              uint64_t seed) {
  SPNET_ASSIGN_OR_RETURN(const MaterializeTarget target,
                         MaterializeTargetFor(spec, scale));
  const Index dim = target.dim;
  const int64_t nnz = target.nnz;
  if (spec.family == Family::kFloridaRegular) {
    QuasiRegularParams p;
    p.n = dim;
    p.nnz = nnz;
    p.band_frac = spec.band_frac;
    p.degree_jitter = spec.skew;
    p.seed = seed;
    return GenerateQuasiRegular(p);
  }
  PowerLawParams p;
  p.rows = dim;
  p.cols = dim;
  p.nnz = nnz;
  p.row_skew = spec.skew;
  p.col_skew = spec.skew;
  p.align_hubs = true;
  p.seed = seed;
  return GeneratePowerLaw(p);
}

const std::vector<SyntheticSpec>& TableThreeDatasets() {
  // Leaked on purpose: static-destruction-safe registry.
  static const std::vector<SyntheticSpec>& specs =
      *new std::vector<SyntheticSpec>(  // spnet-lint: allow(raw-new-delete)
          std::vector<SyntheticSpec>{
          // S: scalability — size grows, R-MAT (0.45,0.15,0.15,0.25).
          {"s1", 250000, 62500, 0.45, 0.15, 0.15, 0.25},
          {"s2", 500000, 250000, 0.45, 0.15, 0.15, 0.25},
          {"s3", 750000, 562500, 0.45, 0.15, 0.15, 0.25},
          {"s4", 1000000, 1000000, 0.45, 0.15, 0.15, 0.25},
          // P: skewness — 1M x 1M, 1M nnz, increasingly skewed quadrants.
          {"p1", 1000000, 1000000, 0.25, 0.25, 0.25, 0.25},
          {"p2", 1000000, 1000000, 0.45, 0.15, 0.15, 0.25},
          {"p3", 1000000, 1000000, 0.55, 0.15, 0.15, 0.15},
          {"p4", 1000000, 1000000, 0.57, 0.19, 0.19, 0.05},
          // SP: sparsity — 1M x 1M, density falls 4M -> 1M, uniform.
          {"sp1", 1000000, 4000000, 0.25, 0.25, 0.25, 0.25},
          {"sp2", 1000000, 3000000, 0.25, 0.25, 0.25, 0.25},
          {"sp3", 1000000, 2000000, 0.25, 0.25, 0.25, 0.25},
          {"sp4", 1000000, 1000000, 0.25, 0.25, 0.25, 0.25},
      });
  return specs;
}

Result<CsrMatrix> MaterializeSynthetic(const SyntheticSpec& spec, double scale,
                                       uint64_t seed) {
  if (scale <= 0.0 || scale > 4.0) {
    return Status::InvalidArgument("scale must be in (0, 4]");
  }
  const int64_t dim = std::max<int64_t>(
      64, static_cast<int64_t>(std::llround(
              static_cast<double>(spec.dimension) * scale)));
  RmatParams p;
  // R-MAT needs a power-of-two dimension; round up and keep the requested
  // edge count so density is preserved.
  p.scale = 1;
  while ((int64_t{1} << p.scale) < dim) ++p.scale;
  p.edge_count = std::max<int64_t>(
      64, static_cast<int64_t>(std::llround(
              static_cast<double>(spec.elements) * scale)));
  p.a = spec.a;
  p.b = spec.b;
  p.c = spec.c;
  p.d = spec.d;
  p.seed = seed;
  return GenerateRmat(p);
}

Result<AbPair> MaterializeAbPair(int rmat_scale, uint64_t seed) {
  RmatParams p;
  p.scale = rmat_scale;
  p.edge_count = int64_t{16} << rmat_scale;  // edge-factor 16
  p.a = 0.45;
  p.b = 0.15;
  p.c = 0.15;
  p.d = 0.25;
  p.seed = seed;
  SPNET_ASSIGN_OR_RETURN(CsrMatrix a, GenerateRmat(p));
  p.seed = seed + 0x9E3779B9ULL;
  SPNET_ASSIGN_OR_RETURN(CsrMatrix b, GenerateRmat(p));
  AbPair pair;
  pair.a = std::move(a);
  pair.b = std::move(b);
  return pair;
}

}  // namespace datasets
}  // namespace spnet
