// Fixture: char-ctype must fire when a plain char reaches a classifier.
#include <cctype>

namespace spnet {

bool Demo(char c) {
  return std::isspace(c) || std::tolower(c) == 'a';
}

}  // namespace spnet
