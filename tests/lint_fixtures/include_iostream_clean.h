// Fixture: stream-free output headers never fire include-iostream.
#ifndef SPNET_TESTS_LINT_FIXTURES_INCLUDE_IOSTREAM_CLEAN_H_
#define SPNET_TESTS_LINT_FIXTURES_INCLUDE_IOSTREAM_CLEAN_H_

#include <cstdio>
#include <ostream>
#include <string>

#endif  // SPNET_TESTS_LINT_FIXTURES_INCLUDE_IOSTREAM_CLEAN_H_
