#ifndef SPNET_COMMON_MUTEX_H_
#define SPNET_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace spnet {

/// std::mutex wrapped as a Clang thread-safety *capability*, so members
/// declared GUARDED_BY(mu_) are compiler-checked on Clang builds. The
/// standard library's mutex carries no capability attributes, which is the
/// only reason this wrapper exists; it adds no state and no behavior.
///
/// Locking idioms, in preference order:
///   1. `MutexLock lock(&mu_);` — RAII, covers a whole scope.
///   2. Explicit Lock()/Unlock() — only where a scope cannot express the
///      region (ThreadPool::WorkerLoop drops the lock around chunk
///      execution).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII holder for a Mutex (SCOPED_CAPABILITY teaches the analysis that
/// construction acquires and destruction releases).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to spnet::Mutex. Wait() requires the mutex
/// held (compiler-enforced on Clang) and, like std::condition_variable,
/// atomically releases it while blocked and reacquires it before
/// returning. Implemented by adopting the already-held std::mutex into a
/// unique_lock for the duration of the wait and releasing ownership
/// afterwards, so the caller's lock discipline is undisturbed.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace spnet

#endif  // SPNET_COMMON_MUTEX_H_
