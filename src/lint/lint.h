#ifndef SPNET_LINT_LINT_H_
#define SPNET_LINT_LINT_H_

#include <string>
#include <vector>

namespace spnet {
namespace lint {

/// Diagnostic severity. Errors fail the run (exit 1); warnings are
/// advisory unless the CLI is invoked with --werror.
enum class Severity {
  kWarning,
  kError,
};

/// One finding: file, 1-based line, the rule that fired and a
/// human-readable message. Formatting (gcc-style `file:line: error: ...`)
/// lives in runner.h so tools and tests share it.
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  Severity severity = Severity::kError;
  std::string message;
};

/// Catalog entry for one rule; `Rules()` drives `--list-rules` and keeps
/// DESIGN.md honest.
struct RuleInfo {
  const char* name;
  Severity severity;
  const char* summary;
};

/// The full rule catalog, in diagnostic-stability order.
const std::vector<RuleInfo>& Rules();

/// Knobs for project-level policy. Allowlists are matched as substrings of
/// the (slash-normalized) file path, so they work for absolute and
/// relative invocations alike.
struct LintOptions {
  /// Files whose hot paths may use std::memory_order_relaxed. Defaults to
  /// the audited fast paths: pool statistics, metrics instruments, plan
  /// cache counters and the fault-injector armed flag.
  std::vector<std::string> relaxed_atomic_allowlist;
  /// Files allowed to use raw new/delete (beyond inline suppressions).
  /// Empty by default: the repo's intentional leaky singletons carry
  /// inline `spnet-lint: allow(raw-new-delete)` markers instead, so every
  /// raw allocation is annotated where it happens.
  std::vector<std::string> raw_new_delete_allowlist;
  /// Layering manifest text for the project-graph rules (`module: dep ...`
  /// lines, see LAYERING.md). Empty selects the built-in table
  /// (graph.h's DefaultLayeringManifestText), which mirrors LAYERING.md.
  std::string layering_manifest;

  LintOptions();
};

/// Lints one translation unit. `path` is used for diagnostics, for the
/// header-only rules (by extension) and for allowlist matching; `content`
/// is the source text. Inline suppressions: a comment
/// `// spnet-lint: allow(rule-a, rule-b)` silences those rules on the
/// comment's line(s) and the line immediately after (so a marker can sit
/// on its own line above the finding).
std::vector<Diagnostic> LintSource(const std::string& path,
                                   const std::string& content,
                                   const LintOptions& options);

}  // namespace lint
}  // namespace spnet

#endif  // SPNET_LINT_LINT_H_
