#ifndef SPNET_LINT_RUNNER_H_
#define SPNET_LINT_RUNNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "lint/graph.h"
#include "lint/lint.h"

namespace spnet {
namespace lint {

/// Aggregate result of linting a set of paths.
struct RunSummary {
  int files_linted = 0;
  int errors = 0;
  int warnings = 0;
  /// Every finding (per-file rules plus the project-graph tier), ordered
  /// by file path, then line, then rule.
  std::vector<Diagnostic> diagnostics;
  /// The include-graph JSON (`ProjectGraph::ToJson` against the active
  /// manifest), ready for `--graph_out` / CI artifacts.
  std::string graph_json;
};

/// True for files the walker lints: C++ sources and headers by extension
/// (.h/.hpp/.cc/.cpp/.cxx and the CUDA spellings .cu/.cuh).
bool IsLintableFile(const std::string& path);

/// Lints each path: files directly, directories recursively, then runs the
/// project-graph rules (layering-violation, include-cycle) across the
/// whole file set. Skipped during the walk: hidden directories, anything
/// named `build*` or `third_party`, and `lint_fixtures` (the test corpus
/// violates rules on purpose). NotFound if a path does not exist;
/// InvalidArgument if `options.layering_manifest` does not parse.
[[nodiscard]] Result<RunSummary> LintPaths(
    const std::vector<std::string>& paths, const LintOptions& options);

/// Builds the include graph for the same file set LintPaths would lint,
/// without running any rules. Used by the repo self-check tests.
[[nodiscard]] Result<ProjectGraph> BuildProjectGraph(
    const std::vector<std::string>& paths);

/// gcc-style one-liner: `path:line: error: message [rule]`.
std::string FormatDiagnostic(const Diagnostic& diagnostic);

/// Machine-readable findings (`--json_out`): schema_version'd JSON with
/// the run counters and one entry per diagnostic.
std::string FindingsJson(const RunSummary& summary);

}  // namespace lint
}  // namespace spnet

#endif  // SPNET_LINT_RUNNER_H_
