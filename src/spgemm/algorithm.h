#ifndef SPNET_SPGEMM_ALGORITHM_H_
#define SPNET_SPGEMM_ALGORITHM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "gpusim/device_spec.h"
#include "gpusim/simulator.h"
#include "sparse/csr_matrix.h"
#include "spgemm/plan.h"

namespace spnet {
namespace spgemm {

/// One spGEMM implementation under evaluation: it can (1) really compute
/// C = A*B on the host, structured the way the algorithm structures the
/// work (expansion + merge), and (2) emit the workload plan its GPU
/// execution would dispatch, for the SIMT timing model.
class SpGemmAlgorithm {
 public:
  virtual ~SpGemmAlgorithm() = default;

  /// Short identifier used in benchmark tables ("row-product", ...).
  virtual std::string name() const = 0;

  /// Builds the simulation plan for C = A*B on `device`.
  virtual Result<SpGemmPlan> Plan(const sparse::CsrMatrix& a,
                                  const sparse::CsrMatrix& b,
                                  const gpusim::DeviceSpec& device) const = 0;

  /// Functionally computes C = A*B (host execution of the same algorithm
  /// structure); validated against ReferenceSpGemm in the test suite.
  virtual Result<sparse::CsrMatrix> Compute(const sparse::CsrMatrix& a,
                                            const sparse::CsrMatrix& b) const = 0;
};

/// Simulates `algorithm` on `device` and returns the timing profile.
Result<SpGemmMeasurement> Measure(const SpGemmAlgorithm& algorithm,
                                  const sparse::CsrMatrix& a,
                                  const sparse::CsrMatrix& b,
                                  const gpusim::DeviceSpec& device);

/// The named baselines individually. (core/suite.h assembles the full
/// Figure 8/9 comparison including the Block Reorganizer.)
std::unique_ptr<SpGemmAlgorithm> MakeRowProduct();
std::unique_ptr<SpGemmAlgorithm> MakeOuterProduct();
std::unique_ptr<SpGemmAlgorithm> MakeCusparseLike();
std::unique_ptr<SpGemmAlgorithm> MakeCuspLike();
std::unique_ptr<SpGemmAlgorithm> MakeBhsparseLike();
std::unique_ptr<SpGemmAlgorithm> MakeMklLike();

/// Extension comparisons from the paper's related-work discussion (not
/// part of the Figure 8 suite): AC-spGEMM's chunk-balanced row product
/// (Winter et al., PPoPP'19) and hash-based fused Gustavson (nsparse).
std::unique_ptr<SpGemmAlgorithm> MakeAcSpGemmLike();
std::unique_ptr<SpGemmAlgorithm> MakeNsparseLike();

}  // namespace spgemm
}  // namespace spnet

#endif  // SPNET_SPGEMM_ALGORITHM_H_
