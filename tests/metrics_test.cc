#include <gtest/gtest.h>

#include <algorithm>

#include "metrics/report.h"

namespace spnet {
namespace metrics {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer-name", "22"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Every row ends at the same column for the second field start.
  const size_t header_value = t.ToString().find("value");
  EXPECT_NE(header_value, std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"x", "y"});
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  EXPECT_EQ(t.ToCsv(), "x,y\n1,2\n3,4\n");
}

TEST(FormatCountTest, HumanUnits) {
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(62500), "62.5k");
  EXPECT_EQ(FormatCount(2700000), "2.7M");
  EXPECT_EQ(FormatCount(148000000), "148.0M");
  EXPECT_EQ(FormatCount(2500000000), "2.5G");
  EXPECT_EQ(FormatCount(0), "0");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(1.434, 2), "1.43");
  EXPECT_EQ(FormatDouble(1.435, 1), "1.4");
  EXPECT_EQ(FormatDouble(-0.5, 2), "-0.50");
}

TEST(MeansTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(GeometricMean({}), 0.0);
  EXPECT_DOUBLE_EQ(GeometricMean({2.0}), 2.0);
  EXPECT_NEAR(GeometricMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(GeometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  // Non-positive values make the geometric mean undefined; we return 0.
  EXPECT_DOUBLE_EQ(GeometricMean({1.0, 0.0}), 0.0);
}

TEST(MeansTest, ArithmeticMean) {
  EXPECT_DOUBLE_EQ(ArithmeticMean({}), 0.0);
  EXPECT_DOUBLE_EQ(ArithmeticMean({1.0, 2.0, 3.0}), 2.0);
}

}  // namespace
}  // namespace metrics
}  // namespace spnet
