// Network ranking and similarity — the paper's introductory motivations
// ([1] ranking, [2][3] similarity) on top of the graph-analytics layer:
// PageRank over a citation-style network, then cosine similarity between
// nodes' neighborhoods computed as an spGEMM through the Block
// Reorganizer.
//
// Build & run:
//   ./build/examples/network_ranking [--nodes N]

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "core/block_reorganizer.h"
#include "datasets/generators.h"
#include "graph/analytics.h"
#include "sparse/stats.h"

int main(int argc, char** argv) {
  using namespace spnet;
  using sparse::Index;

  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  const Index nodes = static_cast<Index>(flags.GetInt("nodes", 20000));

  // A directed power-law network (citations, follows, links...).
  datasets::PowerLawParams p;
  p.rows = p.cols = nodes;
  p.nnz = 10 * static_cast<int64_t>(nodes);
  p.row_skew = 0.6;  // out-degree mildly skewed
  p.col_skew = 1.0;  // a few heavily cited targets
  p.align_hubs = false;
  p.seed = 3;
  auto a = datasets::GeneratePowerLaw(p);
  SPNET_CHECK(a.ok());
  std::printf("network: %d nodes, %lld edges\n", a->rows(),
              static_cast<long long>(a->nnz()));

  // --- Ranking. --------------------------------------------------------------
  graph::PageRankOptions pr_options;
  pr_options.tolerance = 1e-10;
  auto pr = graph::PageRank(*a, pr_options);
  SPNET_CHECK(pr.ok());
  std::printf("PageRank converged in %d iterations (residual %.2e)\n",
              pr->iterations, pr->residual);

  std::vector<Index> order(static_cast<size_t>(nodes));
  std::iota(order.begin(), order.end(), Index{0});
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](Index x, Index y) {
                      return pr->scores[static_cast<size_t>(x)] >
                             pr->scores[static_cast<size_t>(y)];
                    });
  const sparse::CsrMatrix incoming = a->Transpose();
  std::printf("top-5 nodes by PageRank:\n");
  for (int i = 0; i < 5; ++i) {
    const Index n = order[static_cast<size_t>(i)];
    std::printf("  node %-7d score %.5f  in-degree %lld\n", n,
                pr->scores[static_cast<size_t>(n)],
                static_cast<long long>(incoming.RowNnz(n)));
  }

  // --- Similarity (an spGEMM through the Block Reorganizer). -----------------
  core::BlockReorganizerSpGemm reorganizer;
  auto similar = graph::CosineSimilarity(*a, reorganizer, 3);
  SPNET_CHECK(similar.ok());
  const Index top = order[0];
  const sparse::SpanView sims = similar->Row(top);
  std::printf("nodes with the most similar out-neighborhoods to node %d:\n",
              top);
  for (sparse::Offset k = 0; k < sims.size; ++k) {
    std::printf("  node %-7d cosine %.3f\n", sims.indices[k],
                sims.values[k]);
  }

  // --- Link prediction. -------------------------------------------------------
  auto predictions = graph::CommonNeighborScores(*a, reorganizer, 1);
  SPNET_CHECK(predictions.ok());
  int64_t candidates = 0;
  for (Index r = 0; r < predictions->rows(); ++r) {
    if (predictions->RowNnz(r) > 0) ++candidates;
  }
  std::printf("link prediction: best candidate found for %lld of %d nodes\n",
              static_cast<long long>(candidates), nodes);
  return 0;
}
