#ifndef SPNET_CORE_B_GATHERING_H_
#define SPNET_CORE_B_GATHERING_H_

#include <cstdint>
#include <vector>

#include "core/reorganizer_config.h"
#include "sparse/types.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace spgemm {
struct ExecContext;
}  // namespace spgemm

namespace core {

/// One combined thread block produced by B-Gathering: `pairs.size()`
/// micro-blocks, each granted `micro_threads` lanes (the power-of-two bin
/// quota), packed until the block is full. With bin quota 2^n the
/// gathering factor is block_size / 2^n, the paper's 32/2^n scaled to the
/// launch block size.
struct CombinedBlock {
  int micro_threads = 1;  ///< lane quota per micro-block (2^n)
  std::vector<sparse::Index> pairs;
};

/// The complete B-Gathering transformation.
struct GatherPlan {
  std::vector<CombinedBlock> blocks;
  int64_t gathered_pairs = 0;
  /// Pairs that stayed solo (their bin would gain nothing or serialize).
  std::vector<sparse::Index> ungathered;
};

/// Bins low-performer pairs by the power of two covering their effective
/// thread count (nnz of the B row), sorts each bin by per-thread work so
/// lock-step warps carry similar lanes, and packs micro-blocks into
/// combined blocks of `config.block_size` threads.
/// With a context, records a "b-gathering" span and gathering.* gauges
/// (combined blocks, gathered pairs, ungathered pairs).
GatherPlan BuildGatherPlan(const spgemm::Workload& workload,
                           const std::vector<sparse::Index>& low_performers,
                           const ReorganizerConfig& config,
                           spgemm::ExecContext* ctx = nullptr);

}  // namespace core
}  // namespace spnet

#endif  // SPNET_CORE_B_GATHERING_H_
