#ifndef SPNET_DATASETS_REGISTRY_H_
#define SPNET_DATASETS_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "datasets/generators.h"
#include "sparse/csr_matrix.h"

namespace spnet {
namespace datasets {

/// Distribution family of a real-world stand-in. Mirrors the paper's split:
/// Florida Suite Sparse matrices are quasi-regular (FEM/mesh/circuit);
/// Stanford SNAP networks are power-law skewed.
enum class Family {
  kFloridaRegular,
  kStanfordPowerLaw,
};

/// Calibration record for one of the paper's 28 real-world datasets
/// (Table II). `dim`/`nnz` are the published values; `skew` is the Zipf
/// exponent (power-law family) or degree jitter (regular family) chosen so
/// the generated stand-in lands near the published nnz(C) of C = A^2; the
/// measured comparison is printed by bench_table2_datasets and recorded in
/// EXPERIMENTS.md.
struct RealWorldSpec {
  std::string name;
  Family family = Family::kFloridaRegular;
  sparse::Index dim = 0;
  int64_t nnz = 0;
  int64_t paper_nnz_c = 0;  ///< nnz(C) the paper reports for C = A^2
  double skew = 0.0;
  double band_frac = 0.02;  ///< regular family only
};

/// All 28 Table II datasets, Florida first then Stanford, in paper order.
const std::vector<RealWorldSpec>& TableTwoDatasets();

/// Looks up a dataset by name.
Result<RealWorldSpec> FindDataset(const std::string& name);

/// The 10 Stanford (skewed) dataset names used by Figures 11, 12 and 14.
std::vector<std::string> StanfordDatasetNames();

/// The exact dimension and requested nnz Materialize derives from
/// (spec, scale). The generated matrix is always `dim` x `dim`; its actual
/// nnz lands near (not exactly at) `nnz` because the generators dedupe.
/// datasets::MaterializeCached validates disk entries against this target
/// so stale files from an older generator or edited spec are not served.
struct MaterializeTarget {
  sparse::Index dim = 0;
  int64_t nnz = 0;
};
Result<MaterializeTarget> MaterializeTargetFor(const RealWorldSpec& spec,
                                               double scale);

/// Generates the stand-in matrix for `spec`, linearly scaled: dimensions
/// and nnz are multiplied by `scale` (1.0 = paper size). Deterministic for
/// a given (spec, scale, seed).
Result<sparse::CsrMatrix> Materialize(const RealWorldSpec& spec, double scale,
                                      uint64_t seed = 42);

/// One synthetic dataset of Table III (C = A^2 suites S, P, SP).
struct SyntheticSpec {
  std::string name;
  int64_t dimension = 0;  ///< N
  int64_t elements = 0;   ///< requested nnz
  double a = 0.25, b = 0.25, c = 0.25, d = 0.25;
};

/// Table III suites: s1..s4 (scalability), p1..p4 (skewness),
/// sp1..sp4 (sparsity), in paper order.
const std::vector<SyntheticSpec>& TableThreeDatasets();

/// Generates a Table III matrix at `scale` (1.0 = paper size).
Result<sparse::CsrMatrix> MaterializeSynthetic(const SyntheticSpec& spec,
                                               double scale,
                                               uint64_t seed = 42);

/// One C = AB pair of Table III: R-MAT with edge-factor 16 at the given
/// scale parameter (15..18 in the paper).
struct AbPair {
  sparse::CsrMatrix a;
  sparse::CsrMatrix b;
};
Result<AbPair> MaterializeAbPair(int rmat_scale, uint64_t seed = 42);

}  // namespace datasets
}  // namespace spnet

#endif  // SPNET_DATASETS_REGISTRY_H_
