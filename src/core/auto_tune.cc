#include "core/auto_tune.h"

#include <algorithm>
#include <cstddef>
#include <cmath>
#include <utility>
#include <vector>

#include "spgemm/nnz_estimator.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace core {

Result<ReorganizerConfig> AutoTune(const sparse::CsrMatrix& a,
                                   const sparse::CsrMatrix& b,
                                   const gpusim::DeviceSpec& device,
                                   const AutoTuneOptions& options) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("dimension mismatch in AutoTune");
  }
  ReorganizerConfig config;
  // Cheap tier first: thresholds are population quantiles, which the
  // sampled estimator's point workload approximates well when enough of
  // the mass was observed exactly. Only a low-confidence sample pays for
  // the exact precalculation.
  spgemm::Workload tiered;
  bool estimated = false;
  if (options.try_estimated_first) {
    spgemm::EstimatorOptions estimator;
    estimator.sample_fraction = options.estimator_sample_fraction;
    spgemm::EstimatedWorkload est =
        spgemm::BuildWorkloadEstimated(a, b, estimator);
    if (est.confidence >= options.min_estimate_confidence) {
      tiered = std::move(est.workload);
      estimated = true;
    }
  }
  if (!estimated) {
    tiered = spgemm::BuildWorkload(a, b);
  }
  const spgemm::Workload& workload = tiered;
  if (estimated) {
    config.planning_tier = PlanningTier::kEstimated;
    config.estimator_sample_fraction = options.estimator_sample_fraction;
  }
  if (workload.flops == 0) {
    return config;
  }

  // --- alpha: make the top `target` pairs the dominators. -------------------
  std::vector<int64_t> work;
  work.reserve(workload.pair_work.size());
  for (int64_t w : workload.pair_work) {
    if (w > 0) work.push_back(w);
  }
  const size_t target = std::min(
      work.size(),
      static_cast<size_t>(std::max(1.0, options.dominator_target_per_sm *
                                            device.num_sms)));
  if (!work.empty()) {
    std::nth_element(work.begin(),
                     work.begin() + static_cast<ptrdiff_t>(target - 1),
                     work.end(), std::greater<int64_t>());
    const double threshold =
        static_cast<double>(work[target - 1]);
    const double mean = static_cast<double>(workload.flops) /
                        static_cast<double>(work.size());
    config.alpha =
        std::clamp(threshold / mean, options.min_alpha, options.max_alpha);
  }

  // --- beta: limit the heaviest fraction of output rows. --------------------
  std::vector<int64_t> chat;
  chat.reserve(workload.row_chat.size());
  for (int64_t c : workload.row_chat) {
    if (c > 0) chat.push_back(c);
  }
  if (!chat.empty()) {
    const size_t limited = std::min(
        chat.size() - 1,
        static_cast<size_t>(std::max(
            1.0, options.limited_row_fraction *
                     static_cast<double>(chat.size()))));
    std::nth_element(chat.begin(),
                     chat.begin() + static_cast<ptrdiff_t>(limited),
                     chat.end(), std::greater<int64_t>());
    const double threshold = static_cast<double>(chat[limited]);
    const double mean = static_cast<double>(workload.flops) /
                        static_cast<double>(chat.size());
    config.beta =
        std::clamp(threshold / mean, options.min_beta, options.max_beta);
  }
  // The clamps above should keep the tuned knobs legal; validating here
  // turns any future clamp regression into an error instead of a silently
  // nonsensical configuration.
  SPNET_RETURN_IF_ERROR(config.Validate());
  return config;
}

}  // namespace core
}  // namespace spnet
