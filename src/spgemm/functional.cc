#include "spgemm/functional.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "common/parallel.h"
#include "sparse/row_scratch.h"
#include "sparse/stats.h"

namespace spnet {
namespace spgemm {

using sparse::CscMatrix;
using sparse::CsrMatrix;
using sparse::Index;
using sparse::Offset;
using sparse::RowScratch;
using sparse::RowScratchArena;
using sparse::SpanView;
using sparse::Value;

namespace {

Status CheckDims(const CsrMatrix& a, const CsrMatrix& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument(
        "dimension mismatch: " + std::to_string(a.cols()) + " vs " +
        std::to_string(b.rows()));
  }
  return Status::Ok();
}

/// Merges an intermediate element range [0, count) of (col, val) pairs
/// into `out_idx`/`out_val` using the dense accumulator in `s`; emits in
/// first-touch order (unordered CSR). Returns the number of merged
/// entries. The caller guarantees the output slice can hold them.
Offset MergeRangeInto(const Index* cols, const Value* vals, Offset count,
                      RowScratch* s, Index* out_idx, Value* out_val) {
  for (Offset k = 0; k < count; ++k) {
    const Index c = cols[k];
    if (!s->touched[static_cast<size_t>(c)]) {
      s->touched[static_cast<size_t>(c)] = 1;
      s->touched_cols.push_back(c);
    }
    s->acc[static_cast<size_t>(c)] += vals[k];
  }
  const Offset merged = static_cast<Offset>(s->touched_cols.size());
  Offset slot = 0;
  for (Index c : s->touched_cols) {
    out_idx[static_cast<size_t>(slot)] = c;
    out_val[static_cast<size_t>(slot)] = s->acc[static_cast<size_t>(c)];
    ++slot;
  }
  s->ResetTouched();
  return merged;
}

/// Number of distinct columns in an intermediate element range (the
/// symbolic half of MergeRangeInto).
Offset CountDistinct(const Index* cols, Offset count, RowScratch* s) {
  for (Offset k = 0; k < count; ++k) {
    const Index c = cols[k];
    if (!s->touched[static_cast<size_t>(c)]) {
      s->touched[static_cast<size_t>(c)] = 1;
      s->touched_cols.push_back(c);
    }
  }
  const Offset distinct = static_cast<Offset>(s->touched_cols.size());
  s->ResetTouched();
  return distinct;
}

/// Expands row r of A*B into `exp_cols`/`exp_vals` (cleared first). The
/// append order — A's row entries in column order, each times B's row in
/// column order — is also the order the outer product's column-major
/// scatter fills this row's C-hat region, because A's sorted rows make
/// both traversals visit the inner dimension in increasing order.
void ExpandRow(const CsrMatrix& a, const CsrMatrix& b, Index r,
               int64_t row_flops, std::vector<Index>* exp_cols,
               std::vector<Value>* exp_vals) {
  exp_cols->clear();
  exp_vals->clear();
  // Reserving the exact intermediate size (from SpGemmRowFlops) replaces
  // the repeated push_back reallocation the serial code used to pay.
  exp_cols->reserve(static_cast<size_t>(row_flops));
  exp_vals->reserve(static_cast<size_t>(row_flops));
  const SpanView arow = a.Row(r);
  for (Offset k = 0; k < arow.size; ++k) {
    const SpanView brow = b.Row(arow.indices[k]);
    const Value av = arow.values[k];
    for (Offset l = 0; l < brow.size; ++l) {
      exp_cols->push_back(brow.indices[l]);
      exp_vals->push_back(av * brow.values[l]);
    }
  }
}

/// Counts the distinct output columns of row r without materializing the
/// expansion (pass 1 of the two-pass scheme).
Offset SymbolicRowNnz(const CsrMatrix& a, const CsrMatrix& b, Index r,
                      RowScratch* s) {
  const SpanView arow = a.Row(r);
  for (Offset k = 0; k < arow.size; ++k) {
    const SpanView brow = b.Row(arow.indices[k]);
    for (Offset l = 0; l < brow.size; ++l) {
      const Index c = brow.indices[l];
      if (!s->touched[static_cast<size_t>(c)]) {
        s->touched[static_cast<size_t>(c)] = 1;
        s->touched_cols.push_back(c);
      }
    }
  }
  const Offset distinct = static_cast<Offset>(s->touched_cols.size());
  s->ResetTouched();
  return distinct;
}

}  // namespace

Result<CsrMatrix> RowProductExpandMerge(const CsrMatrix& a,
                                        const CsrMatrix& b) {
  SPNET_RETURN_IF_ERROR(CheckDims(a, b));
  const Index rows = a.rows();
  const Index cols = b.cols();
  ThreadPool& pool = GlobalThreadPool();

  const std::vector<int64_t> row_flops = sparse::SpGemmRowFlops(a, b);
  std::vector<Offset> ptr(static_cast<size_t>(rows) + 1, 0);

  if (pool.threads() == 1) {
    // Serial path: single pass, rows appended as they complete.
    RowScratch s;
    s.EnsureCols(cols);
    std::vector<Index> out_idx;
    std::vector<Value> out_val;
    std::vector<Index> exp_cols;
    std::vector<Value> exp_vals;
    for (Index r = 0; r < rows; ++r) {
      ExpandRow(a, b, r, row_flops[static_cast<size_t>(r)], &exp_cols,
                &exp_vals);
      const size_t base = out_idx.size();
      out_idx.resize(base + exp_cols.size());
      out_val.resize(base + exp_cols.size());
      const Offset merged = MergeRangeInto(
          exp_cols.data(), exp_vals.data(),
          static_cast<Offset>(exp_cols.size()), &s, out_idx.data() + base,
          out_val.data() + base);
      out_idx.resize(base + static_cast<size_t>(merged));
      out_val.resize(base + static_cast<size_t>(merged));
      ptr[static_cast<size_t>(r) + 1] = static_cast<Offset>(out_idx.size());
    }
    return CsrMatrix::FromParts(rows, cols, std::move(ptr),
                                std::move(out_idx), std::move(out_val));
  }

  // Parallel path: two-pass (size, scan, fill) with per-thread scratch.
  // Every row is expanded and merged in the same element order as the
  // serial path and written at a scan-fixed offset, so the result is
  // bit-identical for any thread count.
  const int64_t grain = GrainForItems(rows, pool.threads());
  RowScratchArena arena(pool.threads(), cols);

  SPNET_CHECK_OK(pool.ParallelFor(0, rows, grain,
                   [&](int64_t row_begin, int64_t row_end, int thread_index) {
                     RowScratch& s = arena.at(thread_index);
                     for (int64_t r = row_begin; r < row_end; ++r) {
                       ptr[static_cast<size_t>(r) + 1] =
                           SymbolicRowNnz(a, b, static_cast<Index>(r), &s);
                     }
                     return Status::Ok();
                   }));
  for (size_t r = 0; r < static_cast<size_t>(rows); ++r) {
    ptr[r + 1] += ptr[r];
  }
  const Offset total = ptr[static_cast<size_t>(rows)];

  std::vector<Index> out_idx(static_cast<size_t>(total));
  std::vector<Value> out_val(static_cast<size_t>(total));
  std::vector<std::vector<Index>> exp_cols(
      static_cast<size_t>(pool.threads()));
  std::vector<std::vector<Value>> exp_vals(
      static_cast<size_t>(pool.threads()));
  SPNET_CHECK_OK(pool.ParallelFor(
      0, rows, grain,
      [&](int64_t row_begin, int64_t row_end, int thread_index) {
        RowScratch& s = arena.at(thread_index);
        std::vector<Index>& ec = exp_cols[static_cast<size_t>(thread_index)];
        std::vector<Value>& ev = exp_vals[static_cast<size_t>(thread_index)];
        for (int64_t r = row_begin; r < row_end; ++r) {
          ExpandRow(a, b, static_cast<Index>(r),
                    row_flops[static_cast<size_t>(r)], &ec, &ev);
          const Offset base = ptr[static_cast<size_t>(r)];
          MergeRangeInto(ec.data(), ev.data(),
                         static_cast<Offset>(ec.size()), &s,
                         out_idx.data() + base, out_val.data() + base);
        }
        return Status::Ok();
      }));

  return CsrMatrix::FromParts(rows, cols, std::move(ptr), std::move(out_idx),
                              std::move(out_val));
}

Result<CsrMatrix> OuterProductExpandMerge(const CsrMatrix& a,
                                          const CsrMatrix& b) {
  SPNET_RETURN_IF_ERROR(CheckDims(a, b));
  const Index rows = a.rows();
  const Index cols = b.cols();
  ThreadPool& pool = GlobalThreadPool();

  // Row-wise C-hat sizes drive the relocation cursors (the paper
  // precalculates exactly this).
  const std::vector<int64_t> row_chat = sparse::SpGemmRowFlops(a, b);
  std::vector<Offset> chat_ptr(static_cast<size_t>(rows) + 1, 0);
  for (Index r = 0; r < rows; ++r) {
    chat_ptr[static_cast<size_t>(r) + 1] = SatAddI64(
        chat_ptr[static_cast<size_t>(r)], row_chat[static_cast<size_t>(r)]);
  }
  const Offset total = chat_ptr[static_cast<size_t>(rows)];

  std::vector<Index> chat_cols(static_cast<size_t>(total));
  std::vector<Value> chat_vals(static_cast<size_t>(total));

  if (pool.threads() == 1) {
    // Serial expansion, pair by pair: pair i = (column i of A) x (row i of
    // B); every product of the pair lands in the C-hat region of its
    // output row.
    std::vector<Offset> cursor(chat_ptr.begin(), chat_ptr.end() - 1);
    const CscMatrix a_csc = CscMatrix::FromCsr(a);
    for (Index i = 0; i < a.cols(); ++i) {
      const SpanView acol = a_csc.Col(i);
      if (acol.size == 0 || i >= b.rows()) continue;
      const SpanView brow = b.Row(i);
      if (brow.size == 0) continue;
      for (Offset k = 0; k < acol.size; ++k) {
        const Index r = acol.indices[k];
        const Value av = acol.values[k];
        Offset& cur = cursor[static_cast<size_t>(r)];
        for (Offset l = 0; l < brow.size; ++l) {
          chat_cols[static_cast<size_t>(cur)] = brow.indices[l];
          chat_vals[static_cast<size_t>(cur)] = av * brow.values[l];
          ++cur;
        }
      }
    }

    // Serial merge: row-wise dense accumulation over the relocated
    // intermediate, growing the output as rows complete.
    RowScratch s;
    s.EnsureCols(cols);
    std::vector<Offset> ptr(static_cast<size_t>(rows) + 1, 0);
    std::vector<Index> out_idx;
    std::vector<Value> out_val;
    for (Index r = 0; r < rows; ++r) {
      const Offset begin = chat_ptr[static_cast<size_t>(r)];
      const Offset count = chat_ptr[static_cast<size_t>(r) + 1] - begin;
      const size_t base = out_idx.size();
      out_idx.resize(base + static_cast<size_t>(count));
      out_val.resize(base + static_cast<size_t>(count));
      const Offset merged = MergeRangeInto(
          chat_cols.data() + begin, chat_vals.data() + begin, count, &s,
          out_idx.data() + base, out_val.data() + base);
      out_idx.resize(base + static_cast<size_t>(merged));
      out_val.resize(base + static_cast<size_t>(merged));
      ptr[static_cast<size_t>(r) + 1] = static_cast<Offset>(out_idx.size());
    }
    return CsrMatrix::FromParts(rows, cols, std::move(ptr),
                                std::move(out_idx), std::move(out_val));
  }

  // Parallel expansion: each output row's C-hat region is filled by one
  // thread. Within a row the serial column-major scatter appends products
  // in increasing inner-dimension order, which is exactly the order
  // ExpandRow produces (A's rows are column-sorted), so the relocated
  // intermediate is bit-identical to the serial scatter.
  const int64_t grain = GrainForItems(rows, pool.threads());
  SPNET_CHECK_OK(pool.ParallelFor(
      0, rows, grain, [&](int64_t row_begin, int64_t row_end, int) {
        for (int64_t r = row_begin; r < row_end; ++r) {
          Offset cur = chat_ptr[static_cast<size_t>(r)];
          const SpanView arow = a.Row(static_cast<Index>(r));
          for (Offset k = 0; k < arow.size; ++k) {
            const SpanView brow = b.Row(arow.indices[k]);
            const Value av = arow.values[k];
            for (Offset l = 0; l < brow.size; ++l) {
              chat_cols[static_cast<size_t>(cur)] = brow.indices[l];
              chat_vals[static_cast<size_t>(cur)] = av * brow.values[l];
              ++cur;
            }
          }
        }
        return Status::Ok();
      }));

  // Parallel merge: two-pass (size, scan, fill) over the C-hat regions.
  RowScratchArena arena(pool.threads(), cols);
  std::vector<Offset> ptr(static_cast<size_t>(rows) + 1, 0);
  SPNET_CHECK_OK(pool.ParallelFor(0, rows, grain,
                   [&](int64_t row_begin, int64_t row_end, int thread_index) {
                     RowScratch& s = arena.at(thread_index);
                     for (int64_t r = row_begin; r < row_end; ++r) {
                       const Offset begin = chat_ptr[static_cast<size_t>(r)];
                       const Offset count =
                           chat_ptr[static_cast<size_t>(r) + 1] - begin;
                       ptr[static_cast<size_t>(r) + 1] =
                           CountDistinct(chat_cols.data() + begin, count, &s);
                     }
                     return Status::Ok();
                   }));
  for (size_t r = 0; r < static_cast<size_t>(rows); ++r) {
    ptr[r + 1] += ptr[r];
  }
  const Offset out_total = ptr[static_cast<size_t>(rows)];

  std::vector<Index> out_idx(static_cast<size_t>(out_total));
  std::vector<Value> out_val(static_cast<size_t>(out_total));
  SPNET_CHECK_OK(pool.ParallelFor(
      0, rows, grain,
      [&](int64_t row_begin, int64_t row_end, int thread_index) {
        RowScratch& s = arena.at(thread_index);
        for (int64_t r = row_begin; r < row_end; ++r) {
          const Offset begin = chat_ptr[static_cast<size_t>(r)];
          const Offset count = chat_ptr[static_cast<size_t>(r) + 1] - begin;
          const Offset base = ptr[static_cast<size_t>(r)];
          MergeRangeInto(chat_cols.data() + begin, chat_vals.data() + begin,
                         count, &s, out_idx.data() + base,
                         out_val.data() + base);
        }
        return Status::Ok();
      }));

  return CsrMatrix::FromParts(rows, cols, std::move(ptr), std::move(out_idx),
                              std::move(out_val));
}

}  // namespace spgemm
}  // namespace spnet
