#ifndef SPNET_METRICS_TRACE_H_
#define SPNET_METRICS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace spnet {
namespace metrics {

class JsonWriter;

/// One closed (or still-open) wall-clock span. Spans are stored in
/// begin order; `parent` indexes into the same vector (-1 for roots) and
/// `depth` is the nesting level, so consumers can re-indent without
/// rebuilding the tree.
struct TraceSpan {
  std::string name;
  int depth = 0;
  int parent = -1;
  double start_ms = 0.0;
  /// -1 while the span is still open.
  double duration_ms = -1.0;
};

/// Records nested wall-clock spans (load -> classify -> split -> gather ->
/// expand -> merge -> simulate). Not thread-safe: spans describe the
/// orchestrating thread's stages; per-task work inside the pool is
/// aggregated through Registry counters instead.
///
/// The recorder caps itself at kMaxSpans to keep multi-dataset bench
/// sweeps bounded; further Begin() calls are counted in dropped_spans()
/// and return -1.
class TraceRecorder {
 public:
  static constexpr size_t kMaxSpans = 4096;

  TraceRecorder();

  /// Opens a span nested under the innermost open span. Returns the span
  /// id to pass to End(), or -1 if the recorder is full.
  int Begin(const std::string& name);

  /// Closes the given span (no-op for id < 0). Closing a span implicitly
  /// closes any deeper spans still open inside it.
  void End(int id);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  int64_t dropped_spans() const { return dropped_; }

  /// Appends [{"name":..., "depth":..., "start_ms":..., "dur_ms":...}, ...]
  /// as a single JSON array value. Open spans serialize with dur_ms null.
  void AppendJson(JsonWriter* w) const;
  std::string ToJson() const;

  /// Indented human-readable rendering for --trace.
  std::string ToPrettyString() const;

 private:
  double NowMs() const;

  std::chrono::steady_clock::time_point origin_;
  std::vector<TraceSpan> spans_;
  /// Ids of currently-open spans, outermost first.
  std::vector<int> open_;
  int64_t dropped_ = 0;
};

/// RAII span guard. Tolerates a null recorder (records nothing), which is
/// what lets instrumented code run unchanged when no ExecContext is
/// attached.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, const std::string& name)
      : recorder_(recorder),
        id_(recorder == nullptr ? -1 : recorder->Begin(name)) {}
  ~ScopedSpan() {
    if (recorder_ != nullptr) recorder_->End(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  int id_;
};

}  // namespace metrics
}  // namespace spnet

#endif  // SPNET_METRICS_TRACE_H_
