// Fixture: discarded-status must fire on bare and member calls.
#include "common/status.h"

namespace spnet {

Status Run();

void Demo(verify::FaultInjector& injector) {
  Run();
  injector.Check("sparse.loader.read");
}

}  // namespace spnet
