#ifndef SPNET_COMMON_MATH_UTIL_H_
#define SPNET_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <limits>

namespace spnet {

/// a + b saturated to INT64_MAX / INT64_MIN instead of wrapping. When the
/// result saturates, `*saturated` (if non-null) is set to true; it is never
/// cleared, so one flag can audit a whole accumulation chain.
inline int64_t SatAddI64(int64_t a, int64_t b, bool* saturated = nullptr) {
  int64_t out;
  if (__builtin_add_overflow(a, b, &out)) {
    if (saturated != nullptr) *saturated = true;
    return b > 0 ? std::numeric_limits<int64_t>::max()
                 : std::numeric_limits<int64_t>::min();
  }
  return out;
}

/// a * b saturated instead of wrapping, same flag contract as SatAddI64.
inline int64_t SatMulI64(int64_t a, int64_t b, bool* saturated = nullptr) {
  int64_t out;
  if (__builtin_mul_overflow(a, b, &out)) {
    if (saturated != nullptr) *saturated = true;
    return (a > 0) == (b > 0) ? std::numeric_limits<int64_t>::max()
                              : std::numeric_limits<int64_t>::min();
  }
  return out;
}

/// ceil(a / b) for positive integers.
constexpr int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

/// Smallest power of two >= v (v >= 1).
constexpr int64_t NextPow2(int64_t v) {
  int64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Largest power of two <= v (v >= 1).
constexpr int64_t PrevPow2(int64_t v) {
  int64_t p = 1;
  while ((p << 1) <= v) p <<= 1;
  return p;
}

/// floor(log2(v)) for v >= 1.
constexpr int Log2Floor(int64_t v) {
  int r = 0;
  while (v > 1) {
    v >>= 1;
    ++r;
  }
  return r;
}

/// True if v is a power of two (v >= 1).
constexpr bool IsPow2(int64_t v) { return v >= 1 && (v & (v - 1)) == 0; }

}  // namespace spnet

#endif  // SPNET_COMMON_MATH_UTIL_H_
