#include <algorithm>
#include <memory>

#include "common/math_util.h"
#include "spgemm/algorithm.h"
#include "spgemm/functional.h"
#include "spgemm/plan.h"
#include "spgemm/row_product.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace spgemm {

namespace {

using gpusim::KernelDesc;
using gpusim::Phase;
using gpusim::ThreadBlockDesc;
using sparse::CsrMatrix;

// Radix-sort passes over the intermediate element list (8-bit digits over
// a (row, col) key wider than 32 bits).
constexpr int kSortPasses = 5;
// Elements processed by one balanced streaming block.
constexpr int64_t kTileElements = 8192;

/// Appends balanced streaming blocks that read and write `total_bytes`
/// across ceil(total_elements / kTileElements) blocks.
void AppendStreamingPass(KernelDesc* kernel, int64_t total_elements,
                         int64_t bytes_per_element, double ops_per_element) {
  if (total_elements <= 0) return;
  const int64_t tiles = CeilDiv(total_elements, kTileElements);
  for (int64_t t = 0; t < tiles; ++t) {
    const int64_t elems =
        std::min(kTileElements, total_elements - t * kTileElements);
    ThreadBlockDesc tb;
    tb.threads = 256;
    tb.effective_threads = 256;
    tb.crit_ops = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(CeilDiv(elems, 256)) *
                                ops_per_element));
    tb.warp_issue_ops = tb.crit_ops * 8;  // 8 warps, balanced
    tb.useful_lane_ops = tb.crit_ops * 256;
    tb.bytes_read = elems * bytes_per_element;
    tb.bytes_written = elems * bytes_per_element;
    tb.shared_mem_bytes = 8192;  // digit histograms / scan tiles
    kernel->blocks.push_back(tb);
  }
}

/// Surrogate for CUSP's ESC (expand–sort–compress) spGEMM: expansion
/// materializes all partial products into a global list, a multi-pass
/// radix sort orders them by (row, col), and a compaction pass folds
/// duplicates. Every pass streams the full intermediate list, so the
/// scheme drowns in memory traffic exactly where C-hat explodes — the
/// skewed half of the paper's datasets.
class CuspLikeSpGemm : public SpGemmAlgorithm {
 public:
  std::string name() const override { return "CUSP"; }

  Result<SpGemmPlan> PlanImpl(const CsrMatrix& a, const CsrMatrix& b,
                              const gpusim::DeviceSpec&,
                              ExecContext*) const override {
    if (a.cols() != b.rows()) {
      return Status::InvalidArgument("dimension mismatch in CUSP plan");
    }
    const Workload workload = BuildWorkload(a, b);
    SpGemmPlan plan;
    plan.flops = workload.flops;
    plan.output_nnz = workload.output_nnz;

    // Expansion into the global list (coalesced appends).
    RowExpansionOptions expand;
    expand.label = "cusp-expand";
    expand.write_scatter_factor = 1.0;
    plan.kernels.push_back(BuildRowProductExpansion(workload, expand));

    // Sort: kSortPasses streaming passes over (key, value) pairs.
    KernelDesc sort;
    sort.label = "cusp-radix-sort";
    sort.phase = Phase::kMerge;
    for (int pass = 0; pass < kSortPasses; ++pass) {
      // Each pass reads the list and scatter-writes it to the new digit
      // positions (the scatter roughly doubles the write transactions).
      AppendStreamingPass(&sort, workload.flops, kElementBytes + 8,
                          /*ops_per_element=*/3.0);
    }
    plan.kernels.push_back(std::move(sort));

    // Compress: one pass reading the sorted list, writing the output.
    KernelDesc compress;
    compress.label = "cusp-compress";
    compress.phase = Phase::kMerge;
    AppendStreamingPass(&compress, workload.flops, kElementBytes,
                        /*ops_per_element=*/1.0);
    plan.kernels.push_back(std::move(compress));

    plan.host_seconds = HostPreprocessSeconds(0, 0);
    return plan;
  }

  Result<CsrMatrix> ComputeImpl(const CsrMatrix& a, const CsrMatrix& b,
                                ExecContext*) const override {
    // The ESC result equals the plain product; the host path shares the
    // expansion structure.
    return RowProductExpandMerge(a, b);
  }
};

}  // namespace

std::unique_ptr<SpGemmAlgorithm> MakeCuspLike() {
  return std::make_unique<CuspLikeSpGemm>();
}

}  // namespace spgemm
}  // namespace spnet
