#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/suite.h"
#include "datasets/generators.h"
#include "spgemm/algorithm.h"
#include "spgemm/functional.h"
#include "sparse/reference_spgemm.h"
#include "sparse/stats.h"
#include "tests/test_util.h"

namespace spnet {
namespace spgemm {
namespace {

using sparse::CsrMatrix;

// One generated input per row: the functional correctness sweep runs
// every algorithm against the reference on each of these.
struct MatrixCase {
  const char* name;
  CsrMatrix (*make)(uint64_t seed);
};

CsrMatrix MakeUniform(uint64_t seed) {
  return testing_util::RandomMatrix(120, 120, 0.04, seed);
}
CsrMatrix MakeSkewed(uint64_t seed) {
  return testing_util::SkewedMatrix(150, 90, seed);
}
CsrMatrix MakeRmat(uint64_t seed) {
  datasets::RmatParams p;
  p.scale = 8;
  p.edge_count = 1200;
  p.seed = seed;
  auto m = datasets::GenerateRmat(p);
  SPNET_CHECK(m.ok());
  return std::move(m).value();
}
CsrMatrix MakeBanded(uint64_t seed) {
  datasets::QuasiRegularParams p;
  p.n = 200;
  p.nnz = 2400;
  p.seed = seed;
  auto m = datasets::GenerateQuasiRegular(p);
  SPNET_CHECK(m.ok());
  return std::move(m).value();
}
CsrMatrix MakeEmptyRows(uint64_t seed) {
  // Half the rows empty; exercises zero-work pairs.
  Rng rng(seed);
  sparse::CooMatrix coo(100, 100);
  for (int r = 0; r < 100; r += 2) {
    for (int k = 0; k < 4; ++k) {
      coo.Add(r, static_cast<sparse::Index>(rng.NextBounded(100)), 1.0);
    }
  }
  auto m = CsrMatrix::FromCoo(coo);
  SPNET_CHECK(m.ok());
  return std::move(m).value();
}

const MatrixCase kCases[] = {
    {"uniform", MakeUniform},  {"skewed", MakeSkewed},
    {"rmat", MakeRmat},        {"banded", MakeBanded},
    {"empty_rows", MakeEmptyRows},
};

using CaseAlgParam = std::tuple<int, int>;

const char* const kAlgNames[] = {"row_product", "outer_product", "cusparse",
                                 "cusp",        "bhsparse",      "mkl",
                                 "block_reorganizer"};

class AlgorithmCorrectnessTest
    : public ::testing::TestWithParam<CaseAlgParam> {};

TEST_P(AlgorithmCorrectnessTest, SquareMatchesReference) {
  const auto [case_idx, alg_idx] = GetParam();
  const CsrMatrix a = kCases[case_idx].make(1000 + case_idx);
  const auto algorithms = core::MakeAllAlgorithms();
  ASSERT_LT(static_cast<size_t>(alg_idx), algorithms.size());
  const auto& alg = algorithms[static_cast<size_t>(alg_idx)];

  auto expected = sparse::ReferenceSpGemm(a, a);
  ASSERT_TRUE(expected.ok());
  auto got = alg->Compute(a, a);
  ASSERT_TRUE(got.ok()) << alg->name() << ": " << got.status().ToString();
  EXPECT_TRUE(CsrApproxEqual(*expected, *got, 1e-9))
      << alg->name() << " on " << kCases[case_idx].name;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllCases, AlgorithmCorrectnessTest,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 7)),
    [](const ::testing::TestParamInfo<CaseAlgParam>& param_info) {
      return std::string(kCases[std::get<0>(param_info.param)].name) + "_" +
             kAlgNames[std::get<1>(param_info.param)];
    });

class RectangularProductTest : public ::testing::TestWithParam<int> {};

TEST_P(RectangularProductTest, AbMatchesReference) {
  const CsrMatrix a = testing_util::RandomMatrix(70, 110, 0.05, 7);
  const CsrMatrix b = testing_util::RandomMatrix(110, 50, 0.06, 8);
  const auto algorithms = core::MakeAllAlgorithms();
  const auto& alg = algorithms[static_cast<size_t>(GetParam())];
  auto expected = sparse::ReferenceSpGemm(a, b);
  auto got = alg->Compute(a, b);
  ASSERT_TRUE(expected.ok() && got.ok()) << alg->name();
  EXPECT_TRUE(CsrApproxEqual(*expected, *got, 1e-9)) << alg->name();
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, RectangularProductTest,
                         ::testing::Range(0, 7));

TEST(FunctionalTest, RowAndOuterAgreeOnEmptyMatrix) {
  sparse::CooMatrix coo(16, 16);
  auto a = CsrMatrix::FromCoo(coo);
  ASSERT_TRUE(a.ok());
  auto row = RowProductExpandMerge(*a, *a);
  auto outer = OuterProductExpandMerge(*a, *a);
  ASSERT_TRUE(row.ok() && outer.ok());
  EXPECT_EQ(row->nnz(), 0);
  EXPECT_EQ(outer->nnz(), 0);
}

TEST(FunctionalTest, DimensionMismatchRejectedEverywhere) {
  const CsrMatrix a = testing_util::RandomMatrix(10, 12, 0.3, 1);
  const CsrMatrix b = testing_util::RandomMatrix(10, 12, 0.3, 2);
  for (const auto& alg : core::MakeAllAlgorithms()) {
    EXPECT_FALSE(alg->Compute(a, b).ok()) << alg->name();
    EXPECT_FALSE(alg->Plan(a, b, gpusim::DeviceSpec::TitanXp()).ok())
        << alg->name();
  }
}

TEST(PlanTest, AllAlgorithmsProduceConsistentFlops) {
  const CsrMatrix a = testing_util::SkewedMatrix(200, 120, 90);
  const int64_t flops = sparse::SpGemmFlops(a, a);
  const gpusim::DeviceSpec device = gpusim::DeviceSpec::TitanXp();
  for (const auto& alg : core::MakeAllAlgorithms()) {
    auto plan = alg->Plan(a, a, device);
    ASSERT_TRUE(plan.ok()) << alg->name();
    EXPECT_EQ(plan->flops, flops) << alg->name();
    EXPECT_GT(plan->output_nnz, 0) << alg->name();
  }
}

TEST(MeasureTest, ProducesPositiveTimings) {
  const CsrMatrix a = testing_util::SkewedMatrix(200, 120, 91);
  const gpusim::DeviceSpec device = gpusim::DeviceSpec::TitanXp();
  for (const auto& alg : core::MakeAllAlgorithms()) {
    auto m = Measure(*alg, a, a, device);
    ASSERT_TRUE(m.ok()) << alg->name();
    EXPECT_GT(m->total_seconds, 0.0) << alg->name();
    EXPECT_GT(m->Gflops(), 0.0) << alg->name();
    EXPECT_GE(m->total_seconds, m->stats.seconds) << alg->name();
  }
}

TEST(MeasureTest, PhaseSplitCoversDeviceTime) {
  const CsrMatrix a = testing_util::SkewedMatrix(300, 200, 92);
  const gpusim::DeviceSpec device = gpusim::DeviceSpec::TitanXp();
  const auto outer = MakeOuterProduct();
  auto m = Measure(*outer, a, a, device);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->expansion.cycles, 0.0);
  EXPECT_GT(m->merge.cycles, 0.0);
  EXPECT_NEAR(m->expansion.cycles + m->merge.cycles, m->stats.cycles,
              1e-6 + 0.01 * m->stats.cycles);
}

}  // namespace
}  // namespace spgemm
}  // namespace spnet
