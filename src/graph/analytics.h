#ifndef SPNET_GRAPH_ANALYTICS_H_
#define SPNET_GRAPH_ANALYTICS_H_

#include <vector>

#include "common/status.h"
#include "sparse/csr_matrix.h"
#include "spgemm/algorithm.h"

namespace spnet {
namespace graph {

/// The network-analysis kernels the paper's introduction motivates
/// (ranking, similarity computation, recommendation), built on the
/// library's sparse primitives and — where they are spGEMM-shaped — on a
/// pluggable SpGemmAlgorithm so the Block Reorganizer accelerates them.

/// PageRank options.
struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 100;
  /// L1 change below which iteration stops.
  double tolerance = 1e-9;
};

struct PageRankResult {
  std::vector<sparse::Value> scores;  ///< length = nodes, sums to ~1
  int iterations = 0;
  double residual = 0.0;  ///< final L1 change
};

/// Power-iteration PageRank on the (possibly weighted) adjacency matrix.
/// Dangling nodes redistribute uniformly.
Result<PageRankResult> PageRank(const sparse::CsrMatrix& adjacency,
                                const PageRankOptions& options = {});

/// Cosine similarity between the rows of `a` (users, documents, nodes):
/// S = N * N^T with N the L2-row-normalized matrix — an spGEMM, executed
/// through `algorithm`. Keeps only the `top_k` most similar peers per row
/// and drops self-similarity.
Result<sparse::CsrMatrix> CosineSimilarity(
    const sparse::CsrMatrix& a, const spgemm::SpGemmAlgorithm& algorithm,
    sparse::Index top_k = 10);

/// Nodes reachable within `hops` steps of each node: the boolean pattern
/// of (A + I)^hops, computed by repeated squaring through `algorithm`.
/// Values in the result are 1.0. `hops` must be >= 1.
Result<sparse::CsrMatrix> KHopReachability(
    const sparse::CsrMatrix& adjacency,
    const spgemm::SpGemmAlgorithm& algorithm, int hops);

/// Counts triangles in an undirected simple graph (symmetric 0/1
/// adjacency, empty diagonal): sum(A .* A^2) / 6, with A^2 computed
/// through `algorithm`.
Result<int64_t> CountTriangles(const sparse::CsrMatrix& adjacency,
                               const spgemm::SpGemmAlgorithm& algorithm);

/// Common-neighbor link prediction scores: for each node, the `top_k`
/// non-adjacent nodes sharing the most neighbors (A^2 masked by the
/// complement of A, diagonal removed).
Result<sparse::CsrMatrix> CommonNeighborScores(
    const sparse::CsrMatrix& adjacency,
    const spgemm::SpGemmAlgorithm& algorithm, sparse::Index top_k = 10);

/// BFS levels from `source` over the out-edges; unreachable nodes get -1.
Result<std::vector<int>> BfsLevels(const sparse::CsrMatrix& adjacency,
                                   sparse::Index source);

/// Connected-component labels of an *undirected* graph (the adjacency is
/// symmetrized internally): label[i] is the smallest node id in i's
/// component.
Result<std::vector<sparse::Index>> ConnectedComponents(
    const sparse::CsrMatrix& adjacency);

/// Jaccard similarity of node neighborhoods for every adjacent pair:
/// J(u, v) = |N(u) ∩ N(v)| / |N(u) ∪ N(v)|, with the intersection counts
/// computed as the spGEMM A^2 masked by A through `algorithm`.
Result<sparse::CsrMatrix> JaccardSimilarity(
    const sparse::CsrMatrix& adjacency,
    const spgemm::SpGemmAlgorithm& algorithm);

}  // namespace graph
}  // namespace spnet

#endif  // SPNET_GRAPH_ANALYTICS_H_
