#include "core/block_reorganizer.h"

#include <algorithm>
#include <vector>

#include "common/math_util.h"
#include "core/b_limiting.h"
#include "spgemm/algorithm_registry.h"
#include "spgemm/exec_context.h"
#include "spgemm/nnz_estimator.h"
#include "spgemm/plan.h"
#include "verify/fault_injection.h"

namespace spnet {
namespace core {

using gpusim::KernelDesc;
using gpusim::Phase;
using gpusim::ThreadBlockDesc;
using sparse::CscMatrix;
using sparse::CsrMatrix;
using sparse::Index;
using sparse::Offset;
using sparse::SpanView;
using sparse::Value;
using spgemm::kElementBytes;
using spgemm::MakePairBlock;
using spgemm::PairBlockParams;
using spgemm::SpGemmPlan;
using spgemm::Workload;

namespace {

/// One combined (gathered) block's descriptor: micro-blocks share the
/// block's warps; lanes of a warp belong to 32/micro_threads different
/// pairs, so the warp's lock-step iteration count is the longest member's
/// column length.
ThreadBlockDesc MakeGatheredBlock(const Workload& workload,
                                  const CombinedBlock& block,
                                  int block_size) {
  ThreadBlockDesc tb;
  const int64_t lanes =
      static_cast<int64_t>(block.pairs.size()) * block.micro_threads;
  tb.threads = static_cast<int>(
      std::min<int64_t>(block_size, std::max<int64_t>(32, NextPow2(lanes))));
  tb.gathered_partitions = static_cast<int>(block.pairs.size());

  const int micro_per_warp = std::max(1, 32 / block.micro_threads);
  int64_t effective = 0;
  int64_t useful = 0;
  int64_t warp_issue = 0;
  int64_t crit = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  for (size_t w = 0; w < block.pairs.size();
       w += static_cast<size_t>(micro_per_warp)) {
    const size_t w_end =
        std::min(block.pairs.size(), w + static_cast<size_t>(micro_per_warp));
    int64_t warp_max = 0;
    for (size_t k = w; k < w_end; ++k) {
      const size_t pair = static_cast<size_t>(block.pairs[k]);
      const int64_t col = workload.a_col_nnz[pair];
      const int64_t row = workload.b_row_nnz[pair];
      warp_max = std::max(warp_max, col);
      effective += row;
      useful += col * row;
      bytes_read += kElementBytes * (col + row);
      bytes_written += kElementBytes * col * row;
    }
    warp_issue += warp_max;
    crit = std::max(crit, warp_max);
  }
  tb.effective_threads =
      static_cast<int>(std::min<int64_t>(effective, tb.threads));
  tb.crit_ops = crit;
  tb.warp_issue_ops = warp_issue;
  tb.useful_lane_ops = useful;
  tb.bytes_read = bytes_read;
  tb.bytes_written = bytes_written;
  tb.shared_mem_bytes = 1024;
  return tb;
}

/// The device-side pre-process: one pass computing block-wise nnz (pair
/// work) and row-wise nnz of C-hat, one pass binning the pairs.
KernelDesc BuildPreprocessKernel(const Workload& workload, int64_t nnz_a) {
  KernelDesc k;
  k.label = "reorganizer-preprocess";
  k.phase = Phase::kPreprocess;
  const int64_t pairs = static_cast<int64_t>(workload.pair_work.size());
  // One fused pass: count block-wise and row-wise nnz while binning the
  // pairs (a histogram over the CSR pointer arrays).
  spgemm::AppendBalancedStreamingBlocks(&k, nnz_a + pairs,
                                        /*bytes_per_element=*/6,
                                        /*ops_per_element=*/1.5);
  return k;
}

/// The reorder pre-pass: A's rows and B's columns are permuted by the
/// configured strategy. The inner (contraction) dimension is left alone,
/// so the pair set, the per-pair processing order, and every per-entry
/// accumulation order are unchanged — output values stay bit-identical to
/// the unpermuted baseline once the inverse permutations are applied.
struct ReorderedInputs {
  sparse::Permutation rows;  ///< applied to a's rows
  sparse::Permutation cols;  ///< applied to b's columns
  CsrMatrix a;
  CsrMatrix b;
};

Result<ReorderedInputs> BuildReorderedInputs(const CsrMatrix& a,
                                             const CsrMatrix& b,
                                             sparse::ReorderStrategy strategy,
                                             spgemm::ExecContext* ctx) {
  metrics::ScopedSpan span(spgemm::TraceOf(ctx), "reorder");
  ReorderedInputs out;
  SPNET_ASSIGN_OR_RETURN(out.rows, sparse::BuildRowPermutation(a, strategy));
  SPNET_ASSIGN_OR_RETURN(out.cols, sparse::BuildColPermutation(b, strategy));
  SPNET_ASSIGN_OR_RETURN(out.a, out.rows.ApplyToRows(a));
  SPNET_ASSIGN_OR_RETURN(out.b, out.cols.ApplyToCols(b));
  spgemm::AddCounter(ctx, "reorder.applied", 1);
  return out;
}

}  // namespace

spgemm::EstimatorOptions EstimatorFromConfig(const ReorganizerConfig& config) {
  spgemm::EstimatorOptions options;
  options.sample_fraction = config.estimator_sample_fraction;
  return options;
}

BlockReorganizerSpGemm::Prepared BlockReorganizerSpGemm::PrepareWorkload(
    const CsrMatrix& a, const CsrMatrix& b, spgemm::ExecContext* ctx) const {
  Prepared prep;
  if (config_.planning_tier != PlanningTier::kExact) {
    spgemm::EstimatedWorkload est =
        spgemm::BuildWorkloadEstimated(a, b, EstimatorFromConfig(config_), ctx);
    prep.classes = ClassifyEstimated(&est, a, b, config_, ctx);
    prep.confidence = est.confidence;
    if (config_.planning_tier == PlanningTier::kEstimated ||
        prep.confidence >= config_.min_plan_confidence) {
      prep.workload = std::move(est.workload);
      return prep;
    }
    // kAuto below the confidence floor: rebuild exactly.
    spgemm::AddCounter(ctx, "reorganizer.tier_fallback_exact", 1);
  }
  prep.workload = [&] {
    metrics::ScopedSpan span(spgemm::TraceOf(ctx), "build-workload");
    return spgemm::BuildWorkload(a, b, ctx);
  }();
  prep.classes = Classify(prep.workload, config_, ctx);
  prep.confidence = 1.0;
  return prep;
}

Classification BlockReorganizerSpGemm::ClassifyTiered(
    const CsrMatrix& a, const CsrMatrix& b, const Workload& exact,
    spgemm::ExecContext* ctx) const {
  if (config_.planning_tier != PlanningTier::kExact) {
    spgemm::EstimatedWorkload est =
        spgemm::BuildWorkloadEstimated(a, b, EstimatorFromConfig(config_), ctx);
    Classification classes = ClassifyEstimated(&est, a, b, config_, ctx);
    if (config_.planning_tier == PlanningTier::kEstimated ||
        est.confidence >= config_.min_plan_confidence) {
      return classes;
    }
  }
  return Classify(exact, config_, ctx);
}

SpGemmPlan BlockReorganizerSpGemm::BuildPlanKernels(
    const Workload& workload, const Classification& classes,
    const gpusim::DeviceSpec& device, int64_t nnz_a,
    spgemm::ExecContext* ctx) const {
  SpGemmPlan plan;
  plan.flops = workload.flops;
  plan.output_nnz = workload.output_nnz;

  plan.kernels.push_back(BuildPreprocessKernel(workload, nnz_a));

  // --- Expansion: dominator kernel (split or not). --------------------------
  KernelDesc dominators;
  dominators.label = "expansion-dominators";
  dominators.phase = Phase::kExpansion;
  int64_t copied_elements = 0;
  if (config_.enable_splitting && !classes.dominators.empty()) {
    const SplitPlan split =
        BuildSplitPlan(workload, classes.dominators, config_, device, ctx);
    copied_elements = split.copied_elements;
    for (const SplitVector& v : split.vectors) {
      const size_t pair = static_cast<size_t>(v.pair);
      const int64_t row_nnz = workload.b_row_nnz[pair];
      const int64_t row_bytes = kElementBytes * row_nnz;
      for (int f = 0; f < v.factor; ++f) {
        const int64_t frag_cols = v.offsets[static_cast<size_t>(f) + 1] -
                                  v.offsets[static_cast<size_t>(f)];
        if (frag_cols <= 0) continue;
        PairBlockParams p;
        p.col_nnz = frag_cols;
        p.row_nnz = row_nnz;
        p.block_size = config_.block_size;
        // All fragments after the first re-read a row vector that a
        // sibling already pulled through the L2.
        p.shared_read_bytes = f == 0 ? 0 : row_bytes;
        dominators.blocks.push_back(MakePairBlock(p));
      }
    }
  } else {
    for (Index pair : classes.dominators) {
      PairBlockParams p;
      p.col_nnz = workload.a_col_nnz[static_cast<size_t>(pair)];
      p.row_nnz = workload.b_row_nnz[static_cast<size_t>(pair)];
      p.block_size = config_.block_size;
      dominators.blocks.push_back(MakePairBlock(p));
    }
  }
  if (!dominators.blocks.empty()) {
    plan.kernels.push_back(std::move(dominators));
  }

  // --- Expansion: normal + gathered kernel. ---------------------------------
  KernelDesc expansion;
  expansion.label = "expansion-main";
  expansion.phase = Phase::kExpansion;
  expansion.flops = workload.flops;
  for (Index pair : classes.normals) {
    PairBlockParams p;
    p.col_nnz = workload.a_col_nnz[static_cast<size_t>(pair)];
    p.row_nnz = workload.b_row_nnz[static_cast<size_t>(pair)];
    p.block_size = config_.block_size;
    expansion.blocks.push_back(MakePairBlock(p));
  }
  if (config_.enable_gathering && !classes.low_performers.empty()) {
    const GatherPlan gather =
        BuildGatherPlan(workload, classes.low_performers, config_, ctx);
    for (const CombinedBlock& block : gather.blocks) {
      expansion.blocks.push_back(
          MakeGatheredBlock(workload, block, config_.block_size));
    }
    for (Index pair : gather.ungathered) {
      PairBlockParams p;
      p.col_nnz = workload.a_col_nnz[static_cast<size_t>(pair)];
      p.row_nnz = workload.b_row_nnz[static_cast<size_t>(pair)];
      p.block_size = config_.block_size;
      expansion.blocks.push_back(MakePairBlock(p));
    }
  } else {
    for (Index pair : classes.low_performers) {
      PairBlockParams p;
      p.col_nnz = workload.a_col_nnz[static_cast<size_t>(pair)];
      p.row_nnz = workload.b_row_nnz[static_cast<size_t>(pair)];
      p.block_size = config_.block_size;
      expansion.blocks.push_back(MakePairBlock(p));
    }
  }
  if (!expansion.blocks.empty()) {
    plan.kernels.push_back(std::move(expansion));
  }

  // --- Merge with B-Limiting. ------------------------------------------------
  const spgemm::MergeOptions merge =
      MakeLimitedMergeOptions(classes, config_, ctx);
  for (KernelDesc& k : spgemm::BuildMergeKernels(workload, merge)) {
    plan.kernels.push_back(std::move(k));
  }

  plan.host_seconds = spgemm::HostPreprocessSeconds(
      static_cast<int64_t>(workload.pair_work.size()), copied_elements);
  return plan;
}

Result<SpGemmPlan> BlockReorganizerSpGemm::PlanImpl(
    const CsrMatrix& a, const CsrMatrix& b, const gpusim::DeviceSpec& device,
    spgemm::ExecContext* ctx) const {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument(
        "dimension mismatch in Block Reorganizer plan");
  }
  if (config_.reorder != sparse::ReorderStrategy::kNone) {
    SPNET_ASSIGN_OR_RETURN(const ReorderedInputs reordered,
                           BuildReorderedInputs(a, b, config_.reorder, ctx));
    const Prepared prep = PrepareWorkload(reordered.a, reordered.b, ctx);
    SpGemmPlan plan = BuildPlanKernels(prep.workload, prep.classes, device,
                                       reordered.a.nnz(), ctx);
    plan.confidence = prep.confidence;
    return plan;
  }
  const Prepared prep = PrepareWorkload(a, b, ctx);
  SpGemmPlan plan =
      BuildPlanKernels(prep.workload, prep.classes, device, a.nnz(), ctx);
  plan.confidence = prep.confidence;
  return plan;
}

Result<CsrMatrix> BlockReorganizerSpGemm::ComputeImpl(
    const CsrMatrix& a, const CsrMatrix& b, spgemm::ExecContext* ctx) const {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument(
        "dimension mismatch in Block Reorganizer compute");
  }
  if (config_.reorder == sparse::ReorderStrategy::kNone) {
    return ComputeCore(a, b, ctx);
  }
  SPNET_ASSIGN_OR_RETURN(const ReorderedInputs reordered,
                         BuildReorderedInputs(a, b, config_.reorder, ctx));
  SPNET_ASSIGN_OR_RETURN(const CsrMatrix permuted,
                         ComputeCore(reordered.a, reordered.b, ctx));
  // Invert the pre-pass: permuted row i holds original row rows.OldOf(i)
  // and permuted column j is original column cols.OldOf(j). Values are
  // moved, never recombined, so the restored matrix matches the
  // unpermuted baseline bit for bit (within-row order aside).
  SPNET_ASSIGN_OR_RETURN(const CsrMatrix rows_restored,
                         reordered.rows.Inverse().ApplyToRows(permuted));
  return reordered.cols.Inverse().ApplyToCols(rows_restored);
}

Result<CsrMatrix> BlockReorganizerSpGemm::ComputeCore(
    const CsrMatrix& a, const CsrMatrix& b, spgemm::ExecContext* ctx) const {
  // The exact workload always backs execution: relocation cursors and
  // expansion ranges index real buffers, so an estimate must never size
  // them. The planning tier only chooses where the *classes* come from —
  // scheduling fidelity with the estimated plan, at zero correctness risk
  // (an estimated class can reorder expansion, never drop a product:
  // every pair with work is provably inside some bin, see
  // ClassifyEstimated).
  const Workload workload = [&] {
    metrics::ScopedSpan span(spgemm::TraceOf(ctx), "build-workload");
    return spgemm::BuildWorkload(a, b, ctx);
  }();
  const Classification classes = ClassifyTiered(a, b, workload, ctx);
  const gpusim::DeviceSpec device = gpusim::DeviceSpec::TitanXp();
  const SplitPlan split =
      config_.enable_splitting
          ? BuildSplitPlan(workload, classes.dominators, config_, device, ctx)
          : SplitPlan{};

  metrics::TraceRecorder* trace = spgemm::TraceOf(ctx);
  const int expand_span = trace == nullptr ? -1 : trace->Begin("expand");

  // Relocation cursors from the precalculated row-wise C-hat sizes.
  const Index rows = a.rows();
  const Index cols = b.cols();
  std::vector<Offset> chat_ptr(static_cast<size_t>(rows) + 1, 0);
  for (Index r = 0; r < rows; ++r) {
    chat_ptr[static_cast<size_t>(r) + 1] =
        SatAddI64(chat_ptr[static_cast<size_t>(r)],
                  workload.row_chat[static_cast<size_t>(r)]);
  }
  const Offset total = chat_ptr[static_cast<size_t>(rows)];
  // The Ĉ buffers are the largest transient allocation in the pipeline;
  // a fault here models expansion-phase OOM on the device.
  SPNET_RETURN_IF_ERROR(verify::MaybeInjectFault(verify::kSiteChatAlloc));
  std::vector<Index> chat_cols(static_cast<size_t>(total));
  std::vector<Value> chat_vals(static_cast<size_t>(total));
  std::vector<Offset> cursor(chat_ptr.begin(), chat_ptr.end() - 1);

  const CscMatrix a_csc = CscMatrix::FromCsr(a);
  auto expand_pair_range = [&](Index pair, int64_t col_begin,
                               int64_t col_end) {
    const SpanView acol = a_csc.Col(pair);
    const SpanView brow = b.Row(pair);
    for (int64_t k = col_begin; k < col_end; ++k) {
      const Index r = acol.indices[k];
      const Value av = acol.values[k];
      Offset& cur = cursor[static_cast<size_t>(r)];
      for (Offset l = 0; l < brow.size; ++l) {
        chat_cols[static_cast<size_t>(cur)] = brow.indices[l];
        chat_vals[static_cast<size_t>(cur)] = av * brow.values[l];
        ++cur;
      }
    }
  };

  // Dominators run through the split fragments via the mapper array —
  // exactly what the GPU kernels dispatch — so the pointer-expansion
  // transformation is exercised end to end.
  if (config_.enable_splitting) {
    const std::vector<Index> mapper = split.BuildMapper();
    size_t fragment = 0;
    for (const SplitVector& v : split.vectors) {
      for (int f = 0; f < v.factor; ++f, ++fragment) {
        const Index pair = mapper[fragment];
        expand_pair_range(pair, v.offsets[static_cast<size_t>(f)],
                          v.offsets[static_cast<size_t>(f) + 1]);
      }
    }
  } else {
    for (Index pair : classes.dominators) {
      expand_pair_range(pair, 0,
                        workload.a_col_nnz[static_cast<size_t>(pair)]);
    }
  }
  for (Index pair : classes.normals) {
    expand_pair_range(pair, 0, workload.a_col_nnz[static_cast<size_t>(pair)]);
  }
  // Gathered blocks change scheduling, not results; iterate in gather
  // order when enabled to mirror dispatch order.
  if (config_.enable_gathering) {
    const GatherPlan gather =
        BuildGatherPlan(workload, classes.low_performers, config_, ctx);
    for (const CombinedBlock& block : gather.blocks) {
      for (Index pair : block.pairs) {
        expand_pair_range(pair, 0,
                          workload.a_col_nnz[static_cast<size_t>(pair)]);
      }
    }
    for (Index pair : gather.ungathered) {
      expand_pair_range(pair, 0,
                        workload.a_col_nnz[static_cast<size_t>(pair)]);
    }
  } else {
    for (Index pair : classes.low_performers) {
      expand_pair_range(pair, 0,
                        workload.a_col_nnz[static_cast<size_t>(pair)]);
    }
  }
  if (trace != nullptr) trace->End(expand_span);
  spgemm::AddCounter(ctx, "expand.products", static_cast<int64_t>(total));
  const int merge_span = trace == nullptr ? -1 : trace->Begin("merge");

  // Merge: row-wise dense accumulation, first-touch order.
  std::vector<Value> acc(static_cast<size_t>(cols), 0.0);
  std::vector<bool> touched(static_cast<size_t>(cols), false);
  std::vector<Index> scratch;
  std::vector<Offset> ptr(static_cast<size_t>(rows) + 1, 0);
  std::vector<Index> out_idx;
  std::vector<Value> out_val;
  for (Index r = 0; r < rows; ++r) {
    const Offset begin = chat_ptr[static_cast<size_t>(r)];
    const Offset end = cursor[static_cast<size_t>(r)];
    scratch.clear();
    for (Offset k = begin; k < end; ++k) {
      const Index c = chat_cols[static_cast<size_t>(k)];
      if (!touched[static_cast<size_t>(c)]) {
        touched[static_cast<size_t>(c)] = true;
        scratch.push_back(c);
      }
      acc[static_cast<size_t>(c)] += chat_vals[static_cast<size_t>(k)];
    }
    for (Index c : scratch) {
      out_idx.push_back(c);
      out_val.push_back(acc[static_cast<size_t>(c)]);
      acc[static_cast<size_t>(c)] = 0.0;
      touched[static_cast<size_t>(c)] = false;
    }
    ptr[static_cast<size_t>(r) + 1] = static_cast<Offset>(out_idx.size());
  }
  if (trace != nullptr) trace->End(merge_span);
  spgemm::AddCounter(ctx, "merge.output_nnz",
                     static_cast<int64_t>(out_idx.size()));
  return CsrMatrix::FromParts(rows, cols, std::move(ptr), std::move(out_idx),
                              std::move(out_val));
}

Result<ReorganizerReport> BlockReorganizerSpGemm::Analyze(
    const CsrMatrix& a, const CsrMatrix& b, const gpusim::DeviceSpec& device,
    spgemm::ExecContext* ctx) const {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("dimension mismatch in Analyze");
  }
  metrics::ScopedSpan span(spgemm::TraceOf(ctx), "analyze:" + name());
  Prepared prep;
  if (config_.reorder != sparse::ReorderStrategy::kNone) {
    SPNET_ASSIGN_OR_RETURN(const ReorderedInputs reordered,
                           BuildReorderedInputs(a, b, config_.reorder, ctx));
    prep = PrepareWorkload(reordered.a, reordered.b, ctx);
  } else {
    prep = PrepareWorkload(a, b, ctx);
  }
  const Workload& workload = prep.workload;
  const Classification& classes = prep.classes;

  ReorganizerReport report;
  report.dominators = static_cast<int64_t>(classes.dominators.size());
  report.low_performers = static_cast<int64_t>(classes.low_performers.size());
  report.normals = static_cast<int64_t>(classes.normals.size());
  report.nonzero_pairs =
      report.dominators + report.low_performers + report.normals;
  report.limited_rows = static_cast<int64_t>(classes.limited_rows.size());
  report.dominator_threshold = classes.dominator_threshold;
  report.limit_row_threshold = classes.limit_row_threshold;

  if (config_.enable_splitting) {
    const SplitPlan split =
        BuildSplitPlan(workload, classes.dominators, config_, device, ctx);
    report.fragments = split.total_fragments;
  }
  if (config_.enable_gathering) {
    const GatherPlan gather =
        BuildGatherPlan(workload, classes.low_performers, config_, ctx);
    report.combined_blocks = static_cast<int64_t>(gather.blocks.size());
    report.gathered_pairs = gather.gathered_pairs;
  }
  return report;
}

Result<std::unique_ptr<spgemm::SpGemmAlgorithm>> MakeBlockReorganizer(
    ReorganizerConfig config, std::string display_name) {
  SPNET_RETURN_IF_ERROR(config.Validate());
  return {std::make_unique<BlockReorganizerSpGemm>(config,
                                                   std::move(display_name))};
}

void RegisterCoreAlgorithms() {
  static const bool registered = [] {
    auto& registry = spgemm::AlgorithmRegistry::Global();
    auto add = [&registry](const std::string& name, ReorganizerConfig config,
                           const std::string& display_name) {
      const Status s = registry.Register(name, [config, display_name] {
        return MakeBlockReorganizer(config, display_name);
      });
      (void)s;  // only AlreadyExists, and this block runs once
    };
    add("reorganizer", {}, "");

    ReorganizerConfig limiting_only;
    limiting_only.enable_splitting = false;
    limiting_only.enable_gathering = false;
    add("reorganizer-limiting", limiting_only, "B-Limiting");

    ReorganizerConfig splitting_only;
    splitting_only.enable_gathering = false;
    splitting_only.enable_limiting = false;
    add("reorganizer-splitting", splitting_only, "B-Splitting");

    ReorganizerConfig gathering_only;
    gathering_only.enable_splitting = false;
    gathering_only.enable_limiting = false;
    add("reorganizer-gathering", gathering_only, "B-Gathering");

    // Full reorganizer planned from the sampled estimation tier; the
    // differential sweep covers it like any other registered algorithm,
    // proving the estimated classes never change results.
    ReorganizerConfig estimated;
    estimated.planning_tier = PlanningTier::kEstimated;
    add("reorganizer-estimated", estimated, "Estimated-Planning");

    // Full reorganizer behind each reordering pre-pass; the differential
    // sweep covers every strategy against the reference, proving the
    // permute/invert round trip never changes results.
    ReorganizerConfig reorder_degree;
    reorder_degree.reorder = sparse::ReorderStrategy::kDegree;
    add("reorganizer-reorder-degree", reorder_degree, "Reorder-Degree");

    ReorganizerConfig reorder_rcm;
    reorder_rcm.reorder = sparse::ReorderStrategy::kRcm;
    add("reorganizer-reorder-rcm", reorder_rcm, "Reorder-RCM");

    ReorganizerConfig reorder_cluster;
    reorder_cluster.reorder = sparse::ReorderStrategy::kCluster;
    add("reorganizer-reorder-cluster", reorder_cluster, "Reorder-Cluster");
    return true;
  }();
  (void)registered;
}

}  // namespace core
}  // namespace spnet
