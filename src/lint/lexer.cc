#include "lint/lexer.h"

#include <cctype>
#include <cstddef>

namespace spnet {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return c == '_' || std::isalpha(static_cast<unsigned char>(c)) != 0;
}

bool IsIdentChar(char c) {
  return c == '_' || std::isalnum(static_cast<unsigned char>(c)) != 0;
}

bool IsDigit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/// Cursor over the source with line accounting. All Advance paths go
/// through Bump so multi-line tokens get correct end lines.
class Cursor {
 public:
  explicit Cursor(const std::string& source) : src_(source) {}

  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  int line() const { return line_; }

  char Bump() {
    const char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  bool Match(const char* text) const {
    size_t i = 0;
    while (text[i] != '\0') {
      if (Peek(i) != text[i]) return false;
      ++i;
    }
    return true;
  }

 private:
  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
};

/// Multi-character punctuators, longest first so greedy matching works.
/// Only operators that exist in C++ — rules rely on `::`, `->` and friends
/// arriving as single tokens.
// clang-format off
constexpr const char* kPunctuators[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", ".*",
};
// clang-format on

void LexLineComment(Cursor* cur, std::string* text) {
  // Past the "//"; a trailing backslash continues the comment (rare, but
  // the compiler honors it and so must the suppression scanner).
  while (!cur->AtEnd()) {
    if (cur->Peek() == '\\' &&
        (cur->Peek(1) == '\n' ||
         (cur->Peek(1) == '\r' && cur->Peek(2) == '\n'))) {
      cur->Bump();
      if (cur->Peek() == '\r') cur->Bump();
      cur->Bump();
      text->push_back('\n');
      continue;
    }
    if (cur->Peek() == '\n') break;
    text->push_back(cur->Bump());
  }
}

void LexBlockComment(Cursor* cur, std::string* text) {
  while (!cur->AtEnd()) {
    if (cur->Peek() == '*' && cur->Peek(1) == '/') {
      cur->Bump();
      cur->Bump();
      return;
    }
    text->push_back(cur->Bump());
  }
}

/// Quoted literal with escapes: `quote` is '"' or '\''. The opening quote
/// has been consumed; text accumulates the raw characters incl. quotes.
void LexQuoted(Cursor* cur, char quote, std::string* text) {
  while (!cur->AtEnd()) {
    const char c = cur->Bump();
    text->push_back(c);
    if (c == '\\' && !cur->AtEnd()) {
      text->push_back(cur->Bump());
      continue;
    }
    if (c == quote || c == '\n') return;  // newline: unterminated, recover
  }
}

/// R"tag( ... )tag" — the `R"` has been consumed. Everything consumed —
/// delimiter, `(`, body, `)tag"` — is appended to `text`, so the token
/// text round-trips the source exactly (a non-empty delimiter used to be
/// swallowed here, mangling the token).
void LexRawString(Cursor* cur, std::string* text) {
  std::string tag;
  while (!cur->AtEnd() && cur->Peek() != '(' && cur->Peek() != '\n' &&
         tag.size() < 16) {
    tag.push_back(cur->Bump());
  }
  text->append(tag);
  if (cur->Peek() != '(') return;  // malformed; recover at whatever follows
  text->push_back(cur->Bump());
  const std::string closer = ")" + tag + "\"";
  while (!cur->AtEnd()) {
    if (cur->Match(closer.c_str())) {
      for (size_t i = 0; i < closer.size(); ++i) text->push_back(cur->Bump());
      return;
    }
    text->push_back(cur->Bump());
  }
}

/// A whole preprocessor directive, backslash-continuations folded in.
/// Comments inside the directive are skipped (they end the text for `//`).
void LexPreproc(Cursor* cur, std::string* text) {
  while (!cur->AtEnd()) {
    if (cur->Peek() == '\\' &&
        (cur->Peek(1) == '\n' ||
         (cur->Peek(1) == '\r' && cur->Peek(2) == '\n'))) {
      cur->Bump();
      if (cur->Peek() == '\r') cur->Bump();
      cur->Bump();
      text->push_back(' ');
      continue;
    }
    if (cur->Peek() == '/' && cur->Peek(1) == '/') break;
    if (cur->Peek() == '/' && cur->Peek(1) == '*') {
      cur->Bump();
      cur->Bump();
      std::string ignored;
      LexBlockComment(cur, &ignored);
      text->push_back(' ');
      continue;
    }
    if (cur->Peek() == '\n') break;
    text->push_back(cur->Bump());
  }
}

bool IsRawStringPrefix(const std::string& ident) {
  return ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
         ident == "u8R";
}

bool IsNarrowQuotePrefix(const std::string& ident) {
  return ident == "L" || ident == "u" || ident == "U" || ident == "u8";
}

}  // namespace

std::vector<Token> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  Cursor cur(source);
  bool line_has_token = false;  // directives only start a line
  int current_line = 1;

  while (!cur.AtEnd()) {
    if (cur.line() != current_line) {
      current_line = cur.line();
      line_has_token = false;
    }
    const char c = cur.Peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
        c == '\f') {
      cur.Bump();
      continue;
    }

    Token token;
    token.line = cur.line();

    if (c == '/' && cur.Peek(1) == '/') {
      cur.Bump();
      cur.Bump();
      token.kind = TokenKind::kComment;
      LexLineComment(&cur, &token.text);
    } else if (c == '/' && cur.Peek(1) == '*') {
      cur.Bump();
      cur.Bump();
      token.kind = TokenKind::kComment;
      LexBlockComment(&cur, &token.text);
    } else if (c == '#' && !line_has_token) {
      token.kind = TokenKind::kPreproc;
      LexPreproc(&cur, &token.text);
    } else if (c == '"') {
      token.kind = TokenKind::kString;
      token.text.push_back(cur.Bump());
      LexQuoted(&cur, '"', &token.text);
    } else if (c == '\'') {
      token.kind = TokenKind::kCharacter;
      token.text.push_back(cur.Bump());
      LexQuoted(&cur, '\'', &token.text);
    } else if (IsIdentStart(c)) {
      token.kind = TokenKind::kIdentifier;
      while (IsIdentChar(cur.Peek())) token.text.push_back(cur.Bump());
      // Encoding prefixes glue onto the literal that follows:
      // R"(..)", u8"...", L'x'.
      if (cur.Peek() == '"' && IsRawStringPrefix(token.text)) {
        token.kind = TokenKind::kString;
        token.text.push_back(cur.Bump());
        LexRawString(&cur, &token.text);
      } else if (cur.Peek() == '"' && IsNarrowQuotePrefix(token.text)) {
        token.kind = TokenKind::kString;
        token.text.push_back(cur.Bump());
        LexQuoted(&cur, '"', &token.text);
      } else if (cur.Peek() == '\'' && IsNarrowQuotePrefix(token.text)) {
        token.kind = TokenKind::kCharacter;
        token.text.push_back(cur.Bump());
        LexQuoted(&cur, '\'', &token.text);
      }
    } else if (IsDigit(c) || (c == '.' && IsDigit(cur.Peek(1)))) {
      // pp-number: digits, idents, dots, digit separators, exponent signs.
      token.kind = TokenKind::kNumber;
      token.text.push_back(cur.Bump());
      while (!cur.AtEnd()) {
        const char n = cur.Peek();
        // A digit separator is only part of the literal when an identifier
        // character follows (`1'000'000`, `0xFF'FF`); a bare trailing `'`
        // opens a character literal and must not be swallowed.
        if (IsIdentChar(n) || n == '.' ||
            (n == '\'' && IsIdentChar(cur.Peek(1)))) {
          token.text.push_back(cur.Bump());
        } else if ((n == '+' || n == '-') && !token.text.empty() &&
                   (token.text.back() == 'e' || token.text.back() == 'E' ||
                    token.text.back() == 'p' || token.text.back() == 'P')) {
          token.text.push_back(cur.Bump());
        } else {
          break;
        }
      }
    } else {
      token.kind = TokenKind::kPunct;
      bool matched = false;
      for (const char* punct : kPunctuators) {
        if (cur.Match(punct)) {
          for (size_t i = 0; punct[i] != '\0'; ++i) {
            token.text.push_back(cur.Bump());
          }
          matched = true;
          break;
        }
      }
      if (!matched) token.text.push_back(cur.Bump());
    }

    token.end_line = cur.line();
    line_has_token = true;
    tokens.push_back(std::move(token));
  }
  return tokens;
}

}  // namespace lint
}  // namespace spnet
