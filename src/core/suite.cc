#include "core/suite.h"

#include "common/logging.h"
#include "core/block_reorganizer.h"
#include "spgemm/algorithm_registry.h"

namespace spnet {
namespace core {

namespace {

/// Builds a suite from registry names, preserving list order (the plot
/// order of the paper figures). Every name here is registered above with
/// a statically valid config, so creation failures are programming
/// errors.
std::vector<std::unique_ptr<spgemm::SpGemmAlgorithm>> FromRegistry(
    std::initializer_list<const char*> names) {
  RegisterCoreAlgorithms();
  auto& registry = spgemm::AlgorithmRegistry::Global();
  std::vector<std::unique_ptr<spgemm::SpGemmAlgorithm>> algorithms;
  for (const char* name : names) {
    auto algorithm = registry.Create(name);
    SPNET_CHECK(algorithm.ok()) << algorithm.status().ToString();
    algorithms.push_back(std::move(algorithm).value());
  }
  return algorithms;
}

}  // namespace

std::vector<std::unique_ptr<spgemm::SpGemmAlgorithm>> MakeAllAlgorithms() {
  return FromRegistry({"row-product", "outer-product", "cusparse", "cusp",
                       "bhsparse", "mkl", "reorganizer"});
}

std::vector<std::unique_ptr<spgemm::SpGemmAlgorithm>> MakeExtendedSuite() {
  return FromRegistry({"row-product", "outer-product", "cusparse", "cusp",
                       "bhsparse", "mkl", "reorganizer", "acspgemm",
                       "nsparse"});
}

std::vector<std::unique_ptr<spgemm::SpGemmAlgorithm>> MakeAblationSuite() {
  return FromRegistry({"reorganizer-limiting", "reorganizer-splitting",
                       "reorganizer-gathering", "reorganizer"});
}

}  // namespace core
}  // namespace spnet
