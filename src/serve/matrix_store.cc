#include "serve/matrix_store.h"

#include <utility>

namespace spnet {
namespace serve {

Result<std::map<std::string, MatrixStore::Entry>::iterator>
MatrixStore::LoadLocked(const std::string& source) {
  auto loaded = engine::LoadManifestSource(source, options_.load);
  if (!loaded.ok()) {
    return Status(loaded.status().code(),
                  "source '" + source + "': " + loaded.status().message());
  }
  Entry entry;
  entry.matrix = std::make_shared<const sparse::CsrMatrix>(
      std::move(loaded).value());
  return entries_.emplace(source, std::move(entry)).first;
}

Status MatrixStore::Pin(const std::string& source) {
  MutexLock lock(&mu_);
  auto it = entries_.find(source);
  if (it == entries_.end()) {
    SPNET_ASSIGN_OR_RETURN(it, LoadLocked(source));
  } else if (!it->second.is_pinned) {
    lru_.erase(it->second.lru_pos);
  } else {
    return Status::Ok();  // already pinned
  }
  it->second.is_pinned = true;
  ++pinned_count_;
  return Status::Ok();
}

Status MatrixStore::Unpin(const std::string& source) {
  MutexLock lock(&mu_);
  auto it = entries_.find(source);
  if (it == entries_.end()) {
    return Status::NotFound("source '" + source + "' is not resident");
  }
  if (!it->second.is_pinned) {
    return Status::FailedPrecondition("source '" + source +
                                      "' is not pinned");
  }
  it->second.is_pinned = false;
  --pinned_count_;
  lru_.push_front(source);
  it->second.lru_pos = lru_.begin();
  // The demoted entry now counts against the LRU bound; if the unpinned
  // tier was already full, something (possibly this entry, when capacity
  // is 0) ages out right away.
  EvictToCapacityLocked();
  return Status::Ok();
}

void MatrixStore::EvictToCapacityLocked() {
  while (lru_.size() > options_.capacity) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++evictions_;
  }
}

Result<std::shared_ptr<const sparse::CsrMatrix>> MatrixStore::Get(
    const std::string& source) {
  MutexLock lock(&mu_);
  auto it = entries_.find(source);
  if (it != entries_.end()) {
    if (!it->second.is_pinned && it->second.lru_pos != lru_.begin()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    }
    return it->second.matrix;
  }
  SPNET_ASSIGN_OR_RETURN(it, LoadLocked(source));
  lru_.push_front(source);
  it->second.lru_pos = lru_.begin();
  std::shared_ptr<const sparse::CsrMatrix> matrix = it->second.matrix;
  EvictToCapacityLocked();
  return matrix;
}

size_t MatrixStore::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

size_t MatrixStore::pinned() const {
  MutexLock lock(&mu_);
  return pinned_count_;
}

int64_t MatrixStore::evictions() const {
  MutexLock lock(&mu_);
  return evictions_;
}

}  // namespace serve
}  // namespace spnet
