#ifndef SPNET_SPGEMM_EXEC_CONTEXT_H_
#define SPNET_SPGEMM_EXEC_CONTEXT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "metrics/registry.h"
#include "metrics/trace.h"

namespace spnet {
namespace spgemm {

/// Per-execution observability bundle threaded through Plan/Compute/
/// Measure and the Block Reorganizer passes. Every instrumented API takes
/// an `ExecContext*` defaulted to nullptr: a null context records nothing
/// and costs one pointer test per instrumentation site, so existing call
/// sites keep working and hot paths stay hot.
///
/// The context is designed for one logical execution (one CLI command, one
/// bench measurement). Counters accumulate across everything run against
/// the context; pass-level facts that are re-derived by both Plan and
/// Compute (classifier populations, chosen thresholds and factors) are
/// recorded as gauges so re-running a pass overwrites instead of
/// double-counting.
struct ExecContext {
  metrics::Registry registry;
  metrics::TraceRecorder trace;

  /// Nesting depth of active ScopedPoolStats scopes; only the outermost
  /// scope publishes pool deltas (Measure wraps Plan, which opens its own
  /// scope — without this the same chunks would be counted twice).
  int pool_scope_depth = 0;

  /// Serializes {"metrics": {...}, "trace": [...]} as a standalone JSON
  /// document (the payload of --metrics_out).
  std::string ToJson() const;

  /// ToJson() written to `path`.
  Status WriteJsonFile(const std::string& path) const;
};

/// Null-tolerant instrumentation helpers: each is a no-op when `ctx` is
/// null, so instrumented code never branches on nullability itself.
void AddCounter(ExecContext* ctx, const std::string& name, int64_t delta);
void SetGauge(ExecContext* ctx, const std::string& name, double value);
void ObserveHistogram(ExecContext* ctx, const std::string& name,
                      int64_t value);
metrics::TraceRecorder* TraceOf(ExecContext* ctx);

/// RAII guard that diffs GlobalThreadPool().stats() across its lifetime
/// into `pool.*` counters (jobs, chunks, steals). Nestable: only the
/// outermost guard on a context publishes, inner guards are no-ops.
/// Tolerates a null context.
class ScopedPoolStats {
 public:
  explicit ScopedPoolStats(ExecContext* ctx);
  ~ScopedPoolStats();
  ScopedPoolStats(const ScopedPoolStats&) = delete;
  ScopedPoolStats& operator=(const ScopedPoolStats&) = delete;

 private:
  ExecContext* ctx_;
  int64_t start_parallel_jobs_ = 0;
  int64_t start_inline_jobs_ = 0;
  int64_t start_chunks_run_ = 0;
  int64_t start_chunks_stolen_ = 0;
};

}  // namespace spgemm
}  // namespace spnet

#endif  // SPNET_SPGEMM_EXEC_CONTEXT_H_
