#ifndef SPNET_SPGEMM_ALGORITHM_REGISTRY_H_
#define SPNET_SPGEMM_ALGORITHM_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "spgemm/algorithm.h"

namespace spnet {
namespace spgemm {

/// Central name -> factory map for spGEMM algorithms, replacing the
/// duplicated if-chains in the CLI and the suite builders. Factories
/// return Result so config-validating constructors (the Block
/// Reorganizer) can refuse to build.
///
/// Canonical names are the CLI spellings ("row-product", "cusparse",
/// "reorganizer", ...); aliases ("row", "outer") resolve to a canonical
/// entry but do not appear in Names().
///
/// Fully thread-safe: registration and queries share one mutex. This
/// matters because registration is NOT confined to startup — every
/// BatchRunner constructor and the verify sweep call
/// core::RegisterCoreAlgorithms(), so a runner constructed on one thread
/// can race a query on another. (The maps used to be unsynchronized,
/// which was a data race exactly on that window; the thread-safety
/// annotation pass surfaced it.)
class AlgorithmRegistry {
 public:
  using Factory = std::function<Result<std::unique_ptr<SpGemmAlgorithm>>()>;

  /// Registers a factory; AlreadyExists if the name (canonical or alias)
  /// is taken.
  Status Register(const std::string& name, Factory factory);

  /// Registers an alternate spelling for an existing canonical name.
  Status RegisterAlias(const std::string& alias, const std::string& target);

  bool Contains(const std::string& name) const;

  /// Instantiates the named algorithm; NotFound lists the valid names.
  Result<std::unique_ptr<SpGemmAlgorithm>> Create(
      const std::string& name) const;

  /// Canonical names in sorted order (aliases excluded) — help text.
  std::vector<std::string> Names() const;

  /// One sorted "a, b, c" string for error messages and --help.
  std::string NamesLine() const;

  /// The process-wide registry, pre-seeded with the eight spgemm-layer
  /// baselines. The Block Reorganizer lives in core (a higher layer), so
  /// core::RegisterCoreAlgorithms() adds it on top; the CLI and suite
  /// builders call that before querying.
  static AlgorithmRegistry& Global();

 private:
  /// Names() without the lock, for composition inside locked regions.
  std::vector<std::string> NamesLocked() const REQUIRES(mu_);
  std::string NamesLineLocked() const REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Factory> factories_ GUARDED_BY(mu_);
  std::map<std::string, std::string> aliases_ GUARDED_BY(mu_);
};

}  // namespace spgemm
}  // namespace spnet

#endif  // SPNET_SPGEMM_ALGORITHM_REGISTRY_H_
