// Fixture: legacy-batch-query must fire on direct construction of the
// deprecated batch-API type outside src/engine.

namespace spnet {
namespace engine {
struct BatchQuery {
  const char* id = nullptr;
};
}  // namespace engine

void Demo() {
  engine::BatchQuery query;
  (void)query;
  auto braced = engine::BatchQuery{};
  (void)braced;
}

}  // namespace spnet
