#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "spgemm/algorithm.h"
#include "spgemm/functional.h"
#include "spgemm/plan.h"
#include "spgemm/row_product.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace spgemm {

namespace {

using gpusim::KernelDesc;
using sparse::CsrMatrix;

/// Surrogate for AC-spGEMM (Winter et al., PPoPP'19), discussed in the
/// paper's related work: a row-product scheme with *thread-level* load
/// balancing — work is cut into fixed-size chunks pulled from a global
/// queue, so warps stay busy regardless of row lengths. The chunk
/// machinery costs bookkeeping instructions and extra traffic for the
/// per-row linked-list structures the paper calls out ("additional
/// control overhead to secure per-row linked list structures"), and the
/// merge remains unfused.
class AcSpGemmLike : public SpGemmAlgorithm {
 public:
  std::string name() const override { return "AC-spGEMM"; }

  Result<SpGemmPlan> PlanImpl(const CsrMatrix& a, const CsrMatrix& b,
                              const gpusim::DeviceSpec&,
                              ExecContext*) const override {
    if (a.cols() != b.rows()) {
      return Status::InvalidArgument("dimension mismatch in AC-spGEMM plan");
    }
    Workload workload = BuildWorkload(a, b);
    SpGemmPlan plan;
    plan.flops = workload.flops;
    plan.output_nnz = workload.output_nnz;

    // Chunked execution behaves like processing rows in sorted order with
    // perfectly filled warps: model via the sorted row_order (no
    // intra-warp divergence) at a bookkeeping cost per product.
    std::vector<int64_t> order(workload.row_chat.size());
    std::iota(order.begin(), order.end(), int64_t{0});
    std::stable_sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
      return workload.row_chat[static_cast<size_t>(x)] <
             workload.row_chat[static_cast<size_t>(y)];
    });

    RowExpansionOptions expansion;
    expansion.label = "acspgemm-chunked";
    expansion.row_order = &order;
    expansion.write_scatter_factor = 1.2;  // chunk-local staging
    expansion.traffic_multiplier = 1.25;   // chunk headers + linked lists
    expansion.ops_multiplier = 1.6;        // queue pops, chunk bookkeeping
    plan.kernels.push_back(BuildRowProductExpansion(workload, expansion));

    MergeOptions merge;
    for (KernelDesc& k : BuildMergeKernels(workload, merge)) {
      plan.kernels.push_back(std::move(k));
    }
    plan.host_seconds = HostPreprocessSeconds(
        static_cast<int64_t>(workload.row_chat.size()), 0);
    return plan;
  }

  Result<CsrMatrix> ComputeImpl(const CsrMatrix& a, const CsrMatrix& b,
                                ExecContext*) const override {
    return RowProductExpandMerge(a, b);
  }
};

}  // namespace

std::unique_ptr<SpGemmAlgorithm> MakeAcSpGemmLike() {
  return std::make_unique<AcSpGemmLike>();
}

}  // namespace spgemm
}  // namespace spnet
