#ifndef SPNET_DATASETS_CACHE_H_
#define SPNET_DATASETS_CACHE_H_

#include <string>

#include "common/status.h"
#include "datasets/registry.h"

namespace spnet {
namespace datasets {

/// Materializes a Table II stand-in through a binary on-disk cache:
/// the first call generates and stores the matrix under
/// `<cache_dir>/<name>_s<scale>_seed<seed>.spnb`; later calls load it in
/// O(nnz) with no generation work. An unreadable or corrupted cache entry
/// is regenerated, never trusted — and so is a parseable entry whose
/// dimensions or nnz no longer match what Materialize(spec, scale) would
/// produce (a stale file from an older generator is a miss, not a hit).
///
/// Pass an empty `cache_dir` to bypass the cache entirely (pure
/// generation). The directory must already exist.
[[nodiscard]] Result<sparse::CsrMatrix> MaterializeCached(const RealWorldSpec& spec,
                                            double scale,
                                            const std::string& cache_dir,
                                            uint64_t seed = 42);

/// The cache file path MaterializeCached uses for these parameters.
std::string CachePath(const RealWorldSpec& spec, double scale,
                      const std::string& cache_dir, uint64_t seed);

}  // namespace datasets
}  // namespace spnet

#endif  // SPNET_DATASETS_CACHE_H_
