// Fixture: immutable, per-thread, atomic and mutex-guarded globals (plus
// functions and type definitions) never fire global-mutable-state.
#include <atomic>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace spnet {
namespace {

constexpr int kLimit = 8;
const char* const kName = "spnet";
inline constexpr char kTable[] = "abc";
std::atomic<int64_t> g_hits{0};
Mutex g_mu;
int g_guarded GUARDED_BY(g_mu) = 0;
thread_local int t_scratch = 0;

struct Options {
  int level = 0;
};

int Add(int a, int b);

inline int Twice(int x) { return x * 2; }

}  // namespace

extern "C" {
const int kAbiVersion = 3;
}

}  // namespace spnet
