#include "spgemm/outer_product.h"

#include "spgemm/functional.h"
#include "spgemm/plan.h"

namespace spnet {
namespace spgemm {

using gpusim::KernelDesc;
using gpusim::Phase;
using sparse::CsrMatrix;

KernelDesc BuildOuterProductExpansion(const Workload& workload,
                                      int block_size) {
  KernelDesc kernel;
  kernel.label = "outer-product-expansion";
  kernel.phase = Phase::kExpansion;
  kernel.flops = workload.flops;
  const size_t pairs = workload.pair_work.size();
  for (size_t i = 0; i < pairs; ++i) {
    if (workload.pair_work[i] == 0) continue;
    PairBlockParams p;
    p.col_nnz = workload.a_col_nnz[i];
    p.row_nnz = workload.b_row_nnz[i];
    p.block_size = block_size;
    kernel.blocks.push_back(MakePairBlock(p));
  }
  return kernel;
}

Result<SpGemmPlan> OuterProductSpGemm::PlanImpl(const CsrMatrix& a,
                                                const CsrMatrix& b,
                                                const gpusim::DeviceSpec&,
                                                ExecContext*) const {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("dimension mismatch in outer-product plan");
  }
  const Workload workload = BuildWorkload(a, b);

  SpGemmPlan plan;
  plan.flops = workload.flops;
  plan.output_nnz = workload.output_nnz;
  plan.kernels.push_back(BuildOuterProductExpansion(workload, 256));
  MergeOptions merge;
  for (KernelDesc& k : BuildMergeKernels(workload, merge)) {
    plan.kernels.push_back(std::move(k));
  }
  // Outer product needs the row-wise C-hat prefix sums (relocation
  // cursors) before expansion; the scan is device-side, the setup is host.
  plan.host_seconds =
      HostPreprocessSeconds(static_cast<int64_t>(workload.pair_work.size()), 0);
  return plan;
}

Result<CsrMatrix> OuterProductSpGemm::ComputeImpl(const CsrMatrix& a,
                                                  const CsrMatrix& b,
                                                  ExecContext*) const {
  return OuterProductExpandMerge(a, b);
}

std::unique_ptr<SpGemmAlgorithm> MakeOuterProduct() {
  return std::make_unique<OuterProductSpGemm>();
}

}  // namespace spgemm
}  // namespace spnet
