// Fixture: the other half of the include cycle.
#ifndef FIXTURE_SPARSE_CYC_B_H_
#define FIXTURE_SPARSE_CYC_B_H_

#include "sparse/cyc_a.h"

#endif  // FIXTURE_SPARSE_CYC_B_H_
