#ifndef SPNET_GPUSIM_SIMULATOR_H_
#define SPNET_GPUSIM_SIMULATOR_H_

#include <vector>

#include "common/status.h"
#include "gpusim/device_spec.h"
#include "gpusim/kernel_desc.h"
#include "gpusim/kernel_stats.h"

namespace spnet {
namespace gpusim {

/// Resident-block capacity of one SM for blocks with the given resource
/// footprint — the CUDA occupancy rule that B-Limiting manipulates via
/// extra shared memory.
int OccupancyBlocksPerSm(const DeviceSpec& device, int threads_per_block,
                         int64_t shared_mem_per_block);

/// Deterministic SIMT execution-model simulator.
///
/// The model is event-driven at thread-block granularity: blocks are
/// dispatched in order to the SM with free capacity, each block's duration
/// is computed analytically from its workload descriptor and the SM's
/// residency at dispatch time, and the kernel retires when the last block
/// does. The analytic per-block model charges:
///
///   issue    = warp_issue_ops * cpi / min(eligible_warps, scheduler share)
///   bandwidth= bytes / (per-SM LSU share), inflated by global L2/DRAM
///              saturation (two-pass fixed point)
///   latency  = dependent-transaction chains * avg service latency
///              / hiding(eligible resident warps)
///   duration = max(issue, bandwidth) + latency + atomic serialization
///
/// The L2 model serves `shared_read_bytes` (cross-block hot data) plus a
/// capacity-dependent fraction of the remaining traffic; the fraction
/// falls as the aggregate resident working set outgrows the L2 — the
/// mechanism behind B-Limiting's merge-phase gains.
class Simulator {
 public:
  explicit Simulator(DeviceSpec device) : device_(std::move(device)) {}

  const DeviceSpec& device() const { return device_; }

  /// Simulates one kernel launch and returns its profile.
  Result<KernelStats> RunKernel(const KernelDesc& kernel) const;

  /// Simulates a sequence of dependent kernel launches (a pipeline);
  /// the returned stats accumulate all phases.
  Result<KernelStats> RunPipeline(const std::vector<KernelDesc>& kernels) const;

 private:
  struct BlockCost {
    double cycles = 0.0;
    double memory_cycles = 0.0;
    double lsu_service = 0.0;    // this block's demand on the SM's LSU pipe
    double issue_service = 0.0;  // this block's demand on the warp schedulers
    double dram_service = 0.0;   // this block's demand on device DRAM
    int64_t l2_read_bytes = 0;
    int64_t l2_write_bytes = 0;
    int64_t dram_bytes = 0;
  };

  /// Per-block analytic cost given the dispatch-time residency snapshot
  /// and the outstanding backlogs of the three shared servers (SM warp
  /// schedulers, SM LSU pipe, device-wide DRAM).
  BlockCost CostBlock(const ThreadBlockDesc& tb, int resident_tbs,
                      int resident_eligible_warps, double lsu_backlog,
                      double issue_backlog, double dram_backlog) const;

  /// The scheduling pass.
  KernelStats Schedule(const KernelDesc& kernel) const;

  DeviceSpec device_;
};

}  // namespace gpusim
}  // namespace spnet

#endif  // SPNET_GPUSIM_SIMULATOR_H_
