// Reproduces Figure 10: relative performance of B-Splitting, B-Gathering,
// B-Limiting (each alone) and the full Block Reorganizer, normalized to
// the outer-product baseline, across the 28 real-world datasets.
//
// Flags: --scale (default 0.25), --device, --seed, --csv,
// --json_out=<path> (machine-readable BENCH_fig10_techniques.json).

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "core/suite.h"
#include "metrics/report.h"
#include "spgemm/algorithm.h"

namespace spnet {
namespace {

int Run(int argc, char** argv) {
  const bench::BenchOptions options =
      bench::BenchOptions::FromArgs(argc, argv);
  const gpusim::DeviceSpec device = options.Device();
  const auto outer = spgemm::MakeOuterProduct();
  const auto suite = core::MakeAblationSuite();

  std::vector<std::string> header = {"dataset"};
  for (const auto& alg : suite) header.push_back(alg->name());
  metrics::Table table(header);
  std::map<std::string, std::vector<double>> gains;
  // One context across the whole sweep: counters (kernels, pool chunks)
  // accumulate over every measurement, gauges hold the last run's values.
  spgemm::ExecContext ctx;

  for (const std::string& name : bench::AllDatasetNames()) {
    const sparse::CsrMatrix a = bench::LoadDataset(name, options);
    auto base = spgemm::Measure(*outer, a, a, device, &ctx);
    SPNET_CHECK(base.ok()) << base.status().ToString();

    std::vector<std::string> row = {name};
    for (const auto& alg : suite) {
      auto m = spgemm::Measure(*alg, a, a, device, &ctx);
      SPNET_CHECK(m.ok()) << m.status().ToString();
      const double gain = base->total_seconds / m->total_seconds;
      gains[alg->name()].push_back(gain);
      row.push_back(metrics::FormatDouble(gain));
    }
    table.AddRow(std::move(row));
  }

  std::vector<std::string> mean_row = {"GEOMEAN"};
  for (const auto& alg : suite) {
    mean_row.push_back(
        metrics::FormatDouble(metrics::GeometricMean(gains[alg->name()])));
  }
  table.AddRow(std::move(mean_row));

  std::printf("== Figure 10: per-technique gain over outer-product baseline "
              "(%s, scale %.2f) ==\n",
              device.name.c_str(), options.scale);
  std::fputs(options.csv ? table.ToCsv().c_str() : table.ToString().c_str(),
             stdout);
  std::printf("\nPaper reference: B-Limiting 1.05x, B-Splitting 1.05x, "
              "B-Gathering 1.28x, Block Reorganizer 1.51x (means).\n");

  bench::BenchJson json("fig10_techniques", "Figure 10", options);
  json.AddTable("gain_over_outer_product", table);
  json.AttachContext(&ctx);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
