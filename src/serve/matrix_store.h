#ifndef SPNET_SERVE_MATRIX_STORE_H_
#define SPNET_SERVE_MATRIX_STORE_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/manifest.h"
#include "sparse/csr_matrix.h"

namespace spnet {
namespace serve {

/// Thread-safe store of loaded matrices keyed by manifest source name
/// (Table II dataset or .mtx/.spnb path), shared immutably with every
/// request that names the same source.
///
/// Two tiers:
///  - Pinned (hot) sources are preloaded via Pin() at daemon startup and
///    never evicted — the serving equivalent of keeping the working set
///    resident, so steady-state traffic on known-hot graphs never pays a
///    load.
///  - Everything else loads on first use and ages out of a small LRU once
///    more than `capacity` unpinned sources are resident.
///
/// Loads happen under the store lock: concurrent first-touch loads of
/// distinct cold sources serialize. That is deliberate simplicity — the
/// daemon pins its hot set up front, so cold loads are the rare path, and
/// serializing them also deduplicates concurrent loads of the same source
/// for free.
class MatrixStore {
 public:
  struct Options {
    /// How sources are materialized (scale/seed/dataset cache).
    engine::ManifestLoadOptions load;
    /// Max unpinned resident sources; 0 means unpinned sources are
    /// dropped after every Get (degenerate but valid). Pinned sources do
    /// not count against this.
    size_t capacity = 8;
  };

  explicit MatrixStore(Options options) : options_(std::move(options)) {}

  MatrixStore(const MatrixStore&) = delete;
  MatrixStore& operator=(const MatrixStore&) = delete;

  /// Loads `source` now and pins it for the store's lifetime. Pinning an
  /// already-resident source promotes it out of the LRU. Errors are the
  /// loader's (a bad pin list should fail daemon startup, not the first
  /// request).
  [[nodiscard]] Status Pin(const std::string& source);

  /// Demotes a pinned source back into the unpinned LRU tier, as the most
  /// recently used entry. The matrix stays resident until it ages out
  /// normally (an unpin can trigger immediate evictions when the LRU was
  /// already at capacity — the demoted entry now counts against it).
  /// NotFound when the source is not resident; FailedPrecondition when
  /// resident but not pinned.
  [[nodiscard]] Status Unpin(const std::string& source);

  /// Returns the matrix for `source`, loading it on first use.
  [[nodiscard]] Result<std::shared_ptr<const sparse::CsrMatrix>> Get(
      const std::string& source);

  /// Resident sources (pinned + unpinned).
  size_t size() const;
  size_t pinned() const;
  /// Unpinned loads evicted so far.
  int64_t evictions() const;

 private:
  struct Entry {
    std::shared_ptr<const sparse::CsrMatrix> matrix;
    bool is_pinned = false;
    /// Position in lru_; meaningful only when !is_pinned.
    std::list<std::string>::iterator lru_pos;
  };

  /// Loads and inserts `source` (which must not be resident). Caller
  /// holds the lock for the whole load — see class comment.
  Result<std::map<std::string, Entry>::iterator> LoadLocked(
      const std::string& source) REQUIRES(mu_);

  /// Evicts from the LRU tail until it fits `capacity`.
  void EvictToCapacityLocked() REQUIRES(mu_);

  const Options options_;
  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ GUARDED_BY(mu_);
  /// Unpinned sources, most recently used first.
  std::list<std::string> lru_ GUARDED_BY(mu_);
  size_t pinned_count_ GUARDED_BY(mu_) = 0;
  int64_t evictions_ GUARDED_BY(mu_) = 0;
};

}  // namespace serve
}  // namespace spnet

#endif  // SPNET_SERVE_MATRIX_STORE_H_
