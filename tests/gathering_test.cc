#include <gtest/gtest.h>

#include <set>

#include "common/math_util.h"
#include "core/b_gathering.h"
#include "core/workload_classifier.h"
#include "spgemm/workload_model.h"
#include "tests/test_util.h"

namespace spnet {
namespace core {
namespace {

using sparse::CsrMatrix;
using sparse::Index;

struct Fixture {
  CsrMatrix a;
  spgemm::Workload w;
  Classification c;

  explicit Fixture(uint64_t seed)
      : a(testing_util::SkewedMatrix(800, 300, seed)),
        w(spgemm::BuildWorkload(a, a)),
        c(Classify(w, ReorganizerConfig{})) {}
};

TEST(GatheringTest, EveryLowPerformerAccountedOnce) {
  Fixture f(71);
  ASSERT_FALSE(f.c.low_performers.empty());
  const GatherPlan plan =
      BuildGatherPlan(f.w, f.c.low_performers, ReorganizerConfig{});
  std::set<Index> seen;
  for (const CombinedBlock& b : plan.blocks) {
    for (Index p : b.pairs) {
      EXPECT_TRUE(seen.insert(p).second) << "pair " << p << " twice";
    }
  }
  for (Index p : plan.ungathered) {
    EXPECT_TRUE(seen.insert(p).second) << "pair " << p << " twice";
  }
  EXPECT_EQ(seen.size(), f.c.low_performers.size());
  EXPECT_EQ(plan.gathered_pairs,
            static_cast<int64_t>(f.c.low_performers.size()) -
                static_cast<int64_t>(plan.ungathered.size()));
}

TEST(GatheringTest, QuotaCoversEffectiveThreads) {
  Fixture f(73);
  const GatherPlan plan =
      BuildGatherPlan(f.w, f.c.low_performers, ReorganizerConfig{});
  for (const CombinedBlock& b : plan.blocks) {
    EXPECT_TRUE(IsPow2(b.micro_threads));
    for (Index p : b.pairs) {
      const int64_t eff = f.w.b_row_nnz[static_cast<size_t>(p)];
      EXPECT_LE(eff, b.micro_threads);
      EXPECT_GT(2 * eff, b.micro_threads)
          << "pair " << p << " belongs in a smaller bin";
    }
  }
}

TEST(GatheringTest, BlocksRespectCapacity) {
  Fixture f(75);
  ReorganizerConfig config;
  const GatherPlan plan = BuildGatherPlan(f.w, f.c.low_performers, config);
  for (const CombinedBlock& b : plan.blocks) {
    EXPECT_LE(static_cast<int>(b.pairs.size()) * b.micro_threads,
              config.block_size);
    EXPECT_GE(b.pairs.size(), 1u);
  }
}

TEST(GatheringTest, MembersSortedByWorkWithinBlock) {
  Fixture f(77);
  const GatherPlan plan =
      BuildGatherPlan(f.w, f.c.low_performers, ReorganizerConfig{});
  for (const CombinedBlock& b : plan.blocks) {
    for (size_t i = 1; i < b.pairs.size(); ++i) {
      EXPECT_GE(f.w.a_col_nnz[static_cast<size_t>(b.pairs[i - 1])],
                f.w.a_col_nnz[static_cast<size_t>(b.pairs[i])]);
    }
  }
}

TEST(GatheringTest, SingletonBinsStayUngathered) {
  // One pair with 2 effective threads: nothing to combine with.
  sparse::CooMatrix coo(64, 64);
  coo.Add(0, 1, 1.0);  // column 1 of A gets one entry
  coo.Add(1, 2, 1.0);
  coo.Add(1, 3, 1.0);  // row 1 of B has 2 entries -> pair 1 eff=2
  auto a = CsrMatrix::FromCoo(coo);
  ASSERT_TRUE(a.ok());
  const spgemm::Workload w = spgemm::BuildWorkload(*a, *a);
  const Classification c = Classify(w, ReorganizerConfig{});
  const GatherPlan plan =
      BuildGatherPlan(w, c.low_performers, ReorganizerConfig{});
  EXPECT_TRUE(plan.blocks.empty());
  EXPECT_EQ(plan.ungathered.size(), c.low_performers.size());
}

TEST(GatheringTest, EmptyInputYieldsEmptyPlan) {
  Fixture f(79);
  const GatherPlan plan = BuildGatherPlan(f.w, {}, ReorganizerConfig{});
  EXPECT_TRUE(plan.blocks.empty());
  EXPECT_TRUE(plan.ungathered.empty());
  EXPECT_EQ(plan.gathered_pairs, 0);
}

TEST(GatheringTest, SmallerBlockSizePacksLess) {
  Fixture f(81);
  ReorganizerConfig big;
  big.block_size = 256;
  ReorganizerConfig small;
  small.block_size = 64;
  const GatherPlan pb = BuildGatherPlan(f.w, f.c.low_performers, big);
  const GatherPlan ps = BuildGatherPlan(f.w, f.c.low_performers, small);
  if (pb.gathered_pairs > 0 && ps.gathered_pairs > 0) {
    EXPECT_GE(ps.blocks.size(), pb.blocks.size());
  }
  for (const CombinedBlock& b : ps.blocks) {
    EXPECT_LE(static_cast<int>(b.pairs.size()) * b.micro_threads, 64);
  }
}

}  // namespace
}  // namespace core
}  // namespace spnet
