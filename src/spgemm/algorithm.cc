#include "spgemm/algorithm.h"

#include "gpusim/kernel_desc.h"
#include "spgemm/exec_context.h"
#include "verify/fault_injection.h"

namespace spnet {
namespace spgemm {

Result<SpGemmPlan> SpGemmAlgorithm::Plan(const sparse::CsrMatrix& a,
                                         const sparse::CsrMatrix& b,
                                         const gpusim::DeviceSpec& device,
                                         ExecContext* ctx) const {
  metrics::ScopedSpan span(TraceOf(ctx), "plan:" + name());
  ScopedPoolStats pool_stats(ctx);
  // Fault-injection boundary: every algorithm's plan construction funnels
  // through this NVI, so one site covers the whole registry.
  SPNET_RETURN_IF_ERROR(verify::MaybeInjectFault(verify::kSitePlan));
  return PlanImpl(a, b, device, ctx);
}

Result<sparse::CsrMatrix> SpGemmAlgorithm::Compute(const sparse::CsrMatrix& a,
                                                   const sparse::CsrMatrix& b,
                                                   ExecContext* ctx) const {
  metrics::ScopedSpan span(TraceOf(ctx), "compute:" + name());
  ScopedPoolStats pool_stats(ctx);
  SPNET_RETURN_IF_ERROR(verify::MaybeInjectFault(verify::kSiteCompute));
  return ComputeImpl(a, b, ctx);
}

Result<SpGemmMeasurement> Measure(const SpGemmAlgorithm& algorithm,
                                  const sparse::CsrMatrix& a,
                                  const sparse::CsrMatrix& b,
                                  const gpusim::DeviceSpec& device,
                                  ExecContext* ctx) {
  metrics::ScopedSpan span(TraceOf(ctx), "measure:" + algorithm.name());
  ScopedPoolStats pool_stats(ctx);
  SPNET_ASSIGN_OR_RETURN(SpGemmPlan plan, algorithm.Plan(a, b, device, ctx));
  return SimulatePlan(plan, device, ctx);
}

Result<SpGemmMeasurement> SimulatePlan(const SpGemmPlan& plan,
                                       const gpusim::DeviceSpec& device,
                                       ExecContext* ctx) {
  gpusim::Simulator sim(device);

  SpGemmMeasurement m;
  m.stats.sm_busy_cycles.assign(static_cast<size_t>(device.num_sms), 0.0);
  m.expansion.sm_busy_cycles.assign(static_cast<size_t>(device.num_sms), 0.0);
  m.merge.sm_busy_cycles.assign(static_cast<size_t>(device.num_sms), 0.0);
  {
    metrics::ScopedSpan sim_span(TraceOf(ctx), "simulate");
    for (const gpusim::KernelDesc& k : plan.kernels) {
      SPNET_ASSIGN_OR_RETURN(gpusim::KernelStats s, sim.RunKernel(k));
      m.stats.Accumulate(s);
      if (k.phase == gpusim::Phase::kExpansion) {
        m.expansion.Accumulate(s);
      } else if (k.phase == gpusim::Phase::kMerge) {
        m.merge.Accumulate(s);
      }
      AddCounter(ctx, "sim.kernels_run", 1);
      AddCounter(ctx, "sim.blocks", s.num_blocks);
      AddCounter(ctx, "sim.warps", s.num_warps);
    }
  }
  m.stats.seconds = device.CyclesToSeconds(m.stats.cycles);
  m.expansion.seconds = device.CyclesToSeconds(m.expansion.cycles);
  m.merge.seconds = device.CyclesToSeconds(m.merge.cycles);
  m.host_seconds = plan.host_seconds;
  m.total_seconds = m.stats.seconds + plan.host_seconds;
  m.flops = plan.flops;
  m.output_nnz = plan.output_nnz;

  // Re-running Measure against the same context overwrites these: they
  // describe the latest measurement, not an accumulation.
  SetGauge(ctx, "measure.sim_seconds", m.stats.seconds);
  SetGauge(ctx, "measure.expansion_seconds", m.expansion.seconds);
  SetGauge(ctx, "measure.merge_seconds", m.merge.seconds);
  SetGauge(ctx, "measure.host_seconds", m.host_seconds);
  SetGauge(ctx, "measure.total_seconds", m.total_seconds);
  SetGauge(ctx, "measure.flops", static_cast<double>(m.flops));
  SetGauge(ctx, "measure.output_nnz", static_cast<double>(m.output_nnz));
  SetGauge(ctx, "measure.gflops", m.Gflops());
  SetGauge(ctx, "measure.sync_stall_fraction", m.stats.SyncStallFraction());
  SetGauge(ctx, "measure.lbi", m.stats.Lbi());
  return m;
}

}  // namespace spgemm
}  // namespace spnet
