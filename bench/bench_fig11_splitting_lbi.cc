// Reproduces Figure 11: load balancing index (LBI, paper Eq. 3) and the
// relative execution time of the dominator expansion kernel as the
// B-Splitting factor sweeps 1..64, over the 10 Stanford datasets.
//
// Flags: --scale (default 0.25), --device, --seed, --csv.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/block_reorganizer.h"
#include "gpusim/simulator.h"
#include "metrics/report.h"

namespace spnet {
namespace {

constexpr int kFactors[] = {1, 2, 4, 8, 16, 32, 64};

int Run(int argc, char** argv) {
  const bench::BenchOptions options =
      bench::BenchOptions::FromArgs(argc, argv);
  const gpusim::DeviceSpec device = options.Device();
  gpusim::Simulator sim(device);

  std::vector<std::string> header = {"dataset", "metric"};
  for (int f : kFactors) header.push_back(std::to_string(f));
  metrics::Table table(header);

  for (const std::string& name : datasets::StanfordDatasetNames()) {
    const sparse::CsrMatrix a = bench::LoadDataset(name, options);

    std::vector<std::string> lbi_row = {name, "LBI"};
    std::vector<std::string> speed_row = {name, "speedup"};
    double base_cycles = 0.0;
    for (int factor : kFactors) {
      core::ReorganizerConfig config;
      config.enable_gathering = false;
      config.enable_limiting = false;
      config.splitting_factor_override = factor;
      core::BlockReorganizerSpGemm alg(config);
      auto plan = alg.Plan(a, a, device);
      SPNET_CHECK(plan.ok()) << plan.status().ToString();

      // Figure 11 measures the dominator kernel only: "the execution time
      // of dominator blocks is only measured to show the effect of
      // block-splitting".
      gpusim::KernelStats dom;
      for (const auto& k : plan->kernels) {
        if (k.label != "expansion-dominators") continue;
        auto s = sim.RunKernel(k);
        SPNET_CHECK(s.ok());
        dom = *s;
      }
      if (factor == 1) base_cycles = dom.cycles;
      lbi_row.push_back(metrics::FormatDouble(dom.Lbi()));
      speed_row.push_back(metrics::FormatDouble(
          dom.cycles > 0 ? base_cycles / dom.cycles : 0.0, 1));
    }
    table.AddRow(std::move(lbi_row));
    table.AddRow(std::move(speed_row));
  }

  std::printf("== Figure 11: dominator-kernel LBI and speedup vs splitting "
              "factor (%s, %d SMs, scale %.2f) ==\n",
              device.name.c_str(), device.num_sms, options.scale);
  std::fputs(options.csv ? table.ToCsv().c_str() : table.ToString().c_str(),
             stdout);
  std::printf("\nPaper reference: LBI rises from ~0.17 toward ~0.96 as the "
              "factor approaches the SM count; dominator speedup averages "
              "8.68x; gains past the SM count come from L2 reuse.\n");

  bench::BenchJson json("fig11_splitting_lbi", "Figure 11", options);
  json.AddTable("lbi_and_speedup_vs_factor", table);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
