// Fixture: one half of an include cycle inside the sparse module.
#ifndef FIXTURE_SPARSE_CYC_A_H_
#define FIXTURE_SPARSE_CYC_A_H_

#include "sparse/cyc_b.h"

#endif  // FIXTURE_SPARSE_CYC_A_H_
