#include "verify/invariants.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/math_util.h"
#include "core/b_limiting.h"
#include "core/block_reorganizer.h"
#include "gpusim/device_spec.h"
#include "sparse/reference_spgemm.h"
#include "sparse/reorder.h"

namespace spnet {
namespace verify {

using core::Classification;
using core::CombinedBlock;
using core::GatherPlan;
using core::SplitPlan;
using core::SplitVector;
using sparse::Index;
using spgemm::Workload;

namespace {

std::string PairLabel(Index pair) { return "pair " + std::to_string(pair); }

Status Violation(const std::string& what) {
  return Status::FailedPrecondition("invariant violated: " + what);
}

}  // namespace

Status CheckClassification(const Workload& workload,
                           const Classification& classes) {
  if (classes.dominator_threshold < 1) {
    return Violation("dominator threshold " +
                     std::to_string(classes.dominator_threshold) +
                     " below 1");
  }
  if (classes.limit_row_threshold < 1) {
    return Violation("limiting threshold " +
                     std::to_string(classes.limit_row_threshold) +
                     " below 1");
  }

  // 0 = unseen, 1..3 = bin tag; catches duplicates across and within bins.
  const size_t pairs = workload.pair_work.size();
  std::vector<uint8_t> seen(pairs, 0);
  auto mark = [&](const std::vector<Index>& bin, uint8_t tag,
                  const char* bin_name) -> Status {
    for (Index pair : bin) {
      if (pair < 0 || static_cast<size_t>(pair) >= pairs) {
        return Violation(PairLabel(pair) + " out of range in " + bin_name);
      }
      if (seen[static_cast<size_t>(pair)] != 0) {
        return Violation(PairLabel(pair) + " classified twice (" + bin_name +
                         ")");
      }
      seen[static_cast<size_t>(pair)] = tag;
    }
    return Status::Ok();
  };
  SPNET_RETURN_IF_ERROR(mark(classes.dominators, 1, "dominators"));
  SPNET_RETURN_IF_ERROR(mark(classes.low_performers, 2, "low performers"));
  SPNET_RETURN_IF_ERROR(mark(classes.normals, 3, "normals"));

  for (size_t i = 0; i < pairs; ++i) {
    const int64_t work = workload.pair_work[i];
    const Index pair = static_cast<Index>(i);
    if (work == 0) {
      if (seen[i] != 0) {
        return Violation(PairLabel(pair) + " has zero work but was binned");
      }
      continue;
    }
    uint8_t expected;
    if (work > classes.dominator_threshold) {
      expected = 1;
    } else if (workload.b_row_nnz[i] < 32) {
      expected = 2;
    } else {
      expected = 3;
    }
    if (seen[i] == 0) {
      return Violation(PairLabel(pair) + " with work " + std::to_string(work) +
                       " was not classified");
    }
    if (seen[i] != expected) {
      return Violation(PairLabel(pair) + " landed in bin " +
                       std::to_string(seen[i]) + ", rule says " +
                       std::to_string(expected));
    }
  }

  // Limiting bin: exactly the rows whose C-hat population exceeds the
  // threshold, emitted in increasing row order (the merge kernels rely on
  // a deterministic dispatch order).
  size_t k = 0;
  for (size_t r = 0; r < workload.row_chat.size(); ++r) {
    if (workload.row_chat[r] <= classes.limit_row_threshold) continue;
    if (k >= classes.limited_rows.size() ||
        classes.limited_rows[k] != static_cast<Index>(r)) {
      return Violation("row " + std::to_string(r) + " exceeds the limiting " +
                       "threshold but is missing from limited_rows");
    }
    ++k;
  }
  if (k != classes.limited_rows.size()) {
    return Violation("limited_rows holds " +
                     std::to_string(classes.limited_rows.size()) +
                     " rows, rule selects " + std::to_string(k));
  }
  return Status::Ok();
}

Status CheckEstimatedClassification(const Workload& exact,
                                    const spgemm::EstimatedWorkload& estimated,
                                    const Classification& classes) {
  const size_t pairs = exact.pair_work.size();
  if (estimated.pair_work_lo.size() != pairs ||
      estimated.pair_work_hi.size() != pairs) {
    return Violation("estimated pair bands cover " +
                     std::to_string(estimated.pair_work_lo.size()) +
                     " pairs, exact workload has " + std::to_string(pairs));
  }
  const size_t rows = exact.row_chat.size();
  if (estimated.row_chat_lo.size() != rows ||
      estimated.row_chat_hi.size() != rows) {
    return Violation("estimated row bands cover " +
                     std::to_string(estimated.row_chat_lo.size()) +
                     " rows, exact workload has " + std::to_string(rows));
  }
  if (!(estimated.confidence >= 0.0) || estimated.confidence > 1.0) {
    return Violation("estimator confidence " +
                     std::to_string(estimated.confidence) +
                     " outside [0, 1]");
  }
  if (classes.dominator_threshold < 1 || classes.limit_row_threshold < 1) {
    return Violation("estimated classification thresholds below 1");
  }

  // Soundness: the bands are guarantees, so ground truth must lie inside
  // every one of them.
  for (size_t i = 0; i < pairs; ++i) {
    if (exact.pair_work[i] < estimated.pair_work_lo[i] ||
        exact.pair_work[i] > estimated.pair_work_hi[i]) {
      return Violation(PairLabel(static_cast<Index>(i)) + " band [" +
                       std::to_string(estimated.pair_work_lo[i]) + ", " +
                       std::to_string(estimated.pair_work_hi[i]) +
                       "] misses exact work " +
                       std::to_string(exact.pair_work[i]));
    }
  }
  for (size_t r = 0; r < rows; ++r) {
    if (exact.row_chat[r] < estimated.row_chat_lo[r] ||
        exact.row_chat[r] > estimated.row_chat_hi[r]) {
      return Violation("row " + std::to_string(r) + " band [" +
                       std::to_string(estimated.row_chat_lo[r]) + ", " +
                       std::to_string(estimated.row_chat_hi[r]) +
                       "] misses exact C-hat " +
                       std::to_string(exact.row_chat[r]));
    }
  }

  // Coverage + class match. 0 = unseen, 1..3 = bin tag.
  std::vector<uint8_t> seen(pairs, 0);
  auto mark = [&](const std::vector<Index>& bin, uint8_t tag,
                  const char* bin_name) -> Status {
    for (Index pair : bin) {
      if (pair < 0 || static_cast<size_t>(pair) >= pairs) {
        return Violation(PairLabel(pair) + " out of range in " + bin_name);
      }
      if (seen[static_cast<size_t>(pair)] != 0) {
        return Violation(PairLabel(pair) + " classified twice (" + bin_name +
                         ")");
      }
      seen[static_cast<size_t>(pair)] = tag;
    }
    return Status::Ok();
  };
  SPNET_RETURN_IF_ERROR(mark(classes.dominators, 1, "dominators"));
  SPNET_RETURN_IF_ERROR(mark(classes.low_performers, 2, "low performers"));
  SPNET_RETURN_IF_ERROR(mark(classes.normals, 3, "normals"));

  const int64_t dom = classes.dominator_threshold;
  for (size_t i = 0; i < pairs; ++i) {
    const int64_t work = exact.pair_work[i];
    const Index pair = static_cast<Index>(i);
    if (work == 0) {
      // A phantom pair — the estimator could not rule its work out — may
      // sit in a non-dominator bin as a harmless no-op expansion, but must
      // never be promoted to a dominator (soundness above already forces
      // its lower bound to 0, below any legal threshold).
      if (seen[i] == 1) {
        return Violation(PairLabel(pair) +
                         " has zero exact work but was made a dominator");
      }
      continue;
    }
    if (seen[i] == 0) {
      return Violation(PairLabel(pair) + " with exact work " +
                       std::to_string(work) + " was not classified");
    }
    const int64_t lo = estimated.pair_work_lo[i];
    const int64_t hi = estimated.pair_work_hi[i];
    if (lo <= dom && dom < hi) continue;  // declared undecidable
    uint8_t expected;
    if (work > dom) {
      expected = 1;
    } else if (exact.b_row_nnz[i] < 32) {
      expected = 2;
    } else {
      expected = 3;
    }
    if (seen[i] != expected) {
      return Violation(PairLabel(pair) + " landed in bin " +
                       std::to_string(seen[i]) + " with band [" +
                       std::to_string(lo) + ", " + std::to_string(hi) +
                       "] clear of threshold " + std::to_string(dom) +
                       ", exact rule says " + std::to_string(expected));
    }
  }

  // Limited rows: increasing order, and membership must match the exact
  // rule wherever the row band cleared the threshold.
  std::vector<uint8_t> limited(rows, 0);
  Index prev = -1;
  for (Index r : classes.limited_rows) {
    if (r < 0 || static_cast<size_t>(r) >= rows) {
      return Violation("limited row " + std::to_string(r) + " out of range");
    }
    if (r <= prev) {
      return Violation("limited_rows not strictly increasing at row " +
                       std::to_string(r));
    }
    prev = r;
    limited[static_cast<size_t>(r)] = 1;
  }
  const int64_t lim = classes.limit_row_threshold;
  for (size_t r = 0; r < rows; ++r) {
    const int64_t lo = estimated.row_chat_lo[r];
    const int64_t hi = estimated.row_chat_hi[r];
    if (lo <= lim && lim < hi) continue;  // declared undecidable
    const bool expected = exact.row_chat[r] > lim;
    if ((limited[r] != 0) != expected) {
      return Violation("row " + std::to_string(r) + " limited=" +
                       std::to_string(limited[r]) + " with band [" +
                       std::to_string(lo) + ", " + std::to_string(hi) +
                       "] clear of threshold " + std::to_string(lim) +
                       ", exact C-hat is " +
                       std::to_string(exact.row_chat[r]));
    }
  }
  return Status::Ok();
}

Status CheckSplitPlan(const Workload& workload,
                      const std::vector<Index>& dominators,
                      const SplitPlan& split) {
  std::vector<Index> expected(dominators);
  std::sort(expected.begin(), expected.end());
  std::vector<Index> got;
  got.reserve(split.vectors.size());
  for (const SplitVector& v : split.vectors) got.push_back(v.pair);
  std::sort(got.begin(), got.end());
  if (got != expected) {
    return Violation("split vectors cover " + std::to_string(got.size()) +
                     " pairs, dominators number " +
                     std::to_string(expected.size()) +
                     " (or the sets differ)");
  }

  int64_t fragments = 0;
  for (const SplitVector& v : split.vectors) {
    const size_t i = static_cast<size_t>(v.pair);
    const int64_t col_nnz = workload.a_col_nnz[i];
    const int64_t row_nnz = workload.b_row_nnz[i];
    if (!IsPow2(v.factor)) {
      return Violation(PairLabel(v.pair) + " split factor " +
                       std::to_string(v.factor) + " is not a power of two");
    }
    if (v.offsets.size() != static_cast<size_t>(v.factor) + 1) {
      return Violation(PairLabel(v.pair) + " has " +
                       std::to_string(v.offsets.size()) + " offsets for " +
                       std::to_string(v.factor) + " fragments");
    }
    if (v.offsets.front() != 0 || v.offsets.back() != col_nnz) {
      return Violation(PairLabel(v.pair) + " offsets span [" +
                       std::to_string(v.offsets.front()) + ", " +
                       std::to_string(v.offsets.back()) +
                       "), column holds " + std::to_string(col_nnz));
    }
    int64_t products = 0;
    for (int f = 0; f < v.factor; ++f) {
      const int64_t len = v.offsets[static_cast<size_t>(f) + 1] -
                          v.offsets[static_cast<size_t>(f)];
      if (len <= 0) {
        return Violation(PairLabel(v.pair) + " fragment " + std::to_string(f) +
                         " is empty or reversed");
      }
      products += len * row_nnz;
    }
    if (products != workload.pair_work[i]) {
      return Violation(PairLabel(v.pair) + " fragments produce " +
                       std::to_string(products) + " products, pair work is " +
                       std::to_string(workload.pair_work[i]));
    }
    fragments += v.factor;
  }
  if (fragments != split.total_fragments) {
    return Violation("total_fragments " +
                     std::to_string(split.total_fragments) +
                     " disagrees with the vectors (" +
                     std::to_string(fragments) + ")");
  }

  const std::vector<Index> mapper = split.BuildMapper();
  if (static_cast<int64_t>(mapper.size()) != split.total_fragments) {
    return Violation("mapper holds " + std::to_string(mapper.size()) +
                     " entries for " + std::to_string(split.total_fragments) +
                     " fragments");
  }
  size_t cursor = 0;
  for (const SplitVector& v : split.vectors) {
    for (int f = 0; f < v.factor; ++f, ++cursor) {
      if (mapper[cursor] != v.pair) {
        return Violation("mapper fragment " + std::to_string(cursor) +
                         " points at " + PairLabel(mapper[cursor]) +
                         ", expected " + PairLabel(v.pair));
      }
    }
  }
  return Status::Ok();
}

Status CheckGatherPlan(const Workload& workload,
                       const std::vector<Index>& low_performers,
                       const GatherPlan& gather, int block_size) {
  std::vector<Index> expected(low_performers);
  // Zero-effective pairs never reach the bins; the builder silently drops
  // them, but a classification that produced one is itself invalid (zero
  // b_row_nnz means zero pair work), so require full coverage.
  std::sort(expected.begin(), expected.end());

  std::vector<Index> got(gather.ungathered);
  int64_t gathered = 0;
  for (const CombinedBlock& block : gather.blocks) {
    if (!IsPow2(block.micro_threads) || block.micro_threads > 32) {
      return Violation("combined block lane quota " +
                       std::to_string(block.micro_threads) +
                       " is not a power of two within a warp");
    }
    const int capacity = std::max(1, block_size / block.micro_threads);
    if (block.pairs.empty() ||
        block.pairs.size() > static_cast<size_t>(capacity)) {
      return Violation("combined block holds " +
                       std::to_string(block.pairs.size()) +
                       " micro-blocks, capacity is " +
                       std::to_string(capacity));
    }
    for (Index pair : block.pairs) {
      const int64_t eff = workload.b_row_nnz[static_cast<size_t>(pair)];
      if (eff <= 0 || NextPow2(eff) != block.micro_threads) {
        return Violation(PairLabel(pair) + " with " + std::to_string(eff) +
                         " effective threads packed under quota " +
                         std::to_string(block.micro_threads));
      }
    }
    // Launch width: lanes round up to whole warps, never past the block.
    const int64_t lanes =
        static_cast<int64_t>(block.pairs.size()) * block.micro_threads;
    const int64_t launch =
        std::min<int64_t>(block_size, std::max<int64_t>(32, NextPow2(lanes)));
    if (launch % 32 != 0) {
      return Violation("combined block launch width " +
                       std::to_string(launch) + " is not whole warps");
    }
    gathered += static_cast<int64_t>(block.pairs.size());
    got.insert(got.end(), block.pairs.begin(), block.pairs.end());
  }
  if (gathered != gather.gathered_pairs) {
    return Violation("gathered_pairs " + std::to_string(gather.gathered_pairs) +
                     " disagrees with the blocks (" + std::to_string(gathered) +
                     ")");
  }
  std::sort(got.begin(), got.end());
  if (got != expected) {
    return Violation("gathered + ungathered pairs do not partition the " +
                     std::to_string(expected.size()) + " low performers (" +
                     std::to_string(got.size()) + " covered)");
  }
  return Status::Ok();
}

Status CheckLimitedMergeOptions(const Classification& classes,
                                const core::ReorganizerConfig& config,
                                const spgemm::MergeOptions& options) {
  const bool active = config.enable_limiting && !classes.limited_rows.empty();
  if (active) {
    if (options.limit_row_threshold != classes.limit_row_threshold) {
      return Violation("merge options carry limiting threshold " +
                       std::to_string(options.limit_row_threshold) +
                       ", classifier computed " +
                       std::to_string(classes.limit_row_threshold));
    }
    if (options.extra_shared_mem_bytes != config.limiting_extra_shmem) {
      return Violation("limited kernel granted " +
                       std::to_string(options.extra_shared_mem_bytes) +
                       " extra shmem bytes, configured " +
                       std::to_string(config.limiting_extra_shmem));
    }
  } else if (options.limit_row_threshold > 0) {
    return Violation("limiting threshold set with limiting inactive");
  }
  return Status::Ok();
}

Status CheckPlanStructure(const spgemm::SpGemmPlan& plan,
                          int64_t expected_flops) {
  if (plan.flops != expected_flops) {
    return Violation("plan flops " + std::to_string(plan.flops) +
                     " disagree with workload flops " +
                     std::to_string(expected_flops));
  }
  if (plan.output_nnz < 0) {
    return Violation("negative plan output nnz");
  }
  for (const gpusim::KernelDesc& kernel : plan.kernels) {
    for (size_t i = 0; i < kernel.blocks.size(); ++i) {
      const gpusim::ThreadBlockDesc& tb = kernel.blocks[i];
      const std::string where =
          "kernel '" + kernel.label + "' block " + std::to_string(i);
      if (tb.threads < 32 || tb.threads % 32 != 0) {
        return Violation(where + " launches " + std::to_string(tb.threads) +
                         " threads (not whole warps)");
      }
      if (tb.effective_threads < 0 || tb.effective_threads > tb.threads) {
        return Violation(where + " claims " +
                         std::to_string(tb.effective_threads) +
                         " effective threads of " +
                         std::to_string(tb.threads));
      }
      if (tb.crit_ops < 0 || tb.warp_issue_ops < tb.crit_ops) {
        return Violation(where + " critical path " +
                         std::to_string(tb.crit_ops) +
                         " exceeds warp issue ops " +
                         std::to_string(tb.warp_issue_ops));
      }
      if (tb.useful_lane_ops < 0 || tb.useful_lane_ops > 32 * tb.warp_issue_ops) {
        return Violation(where + " useful lane ops " +
                         std::to_string(tb.useful_lane_ops) +
                         " exceed the issued lane slots");
      }
      if (tb.bytes_read < 0 || tb.bytes_written < 0 ||
          tb.shared_read_bytes < 0 || tb.shared_read_bytes > tb.bytes_read) {
        return Violation(where + " has inconsistent memory traffic");
      }
      if (tb.shared_mem_bytes < 0) {
        return Violation(where + " requests negative shared memory");
      }
    }
  }
  return Status::Ok();
}

Status VerifyReorganizerInvariants(const sparse::CsrMatrix& a,
                                   const sparse::CsrMatrix& b,
                                   const core::ReorganizerConfig& config) {
  SPNET_RETURN_IF_ERROR(config.Validate());
  SPNET_RETURN_IF_ERROR(a.Validate());
  SPNET_RETURN_IF_ERROR(b.Validate());
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("dimension mismatch in invariant check");
  }

  const Workload exact = spgemm::BuildWorkload(a, b);
  const bool tier_exact = config.planning_tier == core::PlanningTier::kExact;

  // The workload/classification the plan checks run against: the exact
  // tier's own, or the estimator's patched output (checked against ground
  // truth first — the estimation tier's core contract).
  Workload tiered;
  Classification classes;
  if (tier_exact) {
    tiered = exact;
    classes = core::Classify(tiered, config);
    SPNET_RETURN_IF_ERROR(CheckClassification(tiered, classes));
  } else {
    spgemm::EstimatorOptions estimator;
    estimator.sample_fraction = config.estimator_sample_fraction;
    spgemm::EstimatedWorkload est =
        spgemm::BuildWorkloadEstimated(a, b, estimator);
    classes = core::ClassifyEstimated(&est, a, b, config);
    SPNET_RETURN_IF_ERROR(CheckEstimatedClassification(exact, est, classes));
    tiered = std::move(est.workload);
  }
  const Workload& workload = tiered;

  const gpusim::DeviceSpec device = gpusim::DeviceSpec::TitanXp();
  if (config.enable_splitting) {
    const SplitPlan split =
        core::BuildSplitPlan(workload, classes.dominators, config, device);
    SPNET_RETURN_IF_ERROR(CheckSplitPlan(workload, classes.dominators, split));
  }
  if (config.enable_gathering) {
    const GatherPlan gather =
        core::BuildGatherPlan(workload, classes.low_performers, config);
    SPNET_RETURN_IF_ERROR(CheckGatherPlan(workload, classes.low_performers,
                                          gather, config.block_size));
  }
  const spgemm::MergeOptions merge =
      core::MakeLimitedMergeOptions(classes, config);
  SPNET_RETURN_IF_ERROR(CheckLimitedMergeOptions(classes, config, merge));

  SPNET_ASSIGN_OR_RETURN(std::unique_ptr<spgemm::SpGemmAlgorithm> algorithm,
                         core::MakeBlockReorganizer(config));
  SPNET_ASSIGN_OR_RETURN(spgemm::SpGemmPlan plan,
                         algorithm->Plan(a, b, device));
  if (!(plan.confidence >= 0.0) || plan.confidence > 1.0) {
    return Violation("plan confidence " + std::to_string(plan.confidence) +
                     " outside [0, 1]");
  }
  if (tier_exact && plan.confidence != 1.0) {
    return Violation("exact-tier plan reports confidence " +
                     std::to_string(plan.confidence));
  }
  // The kAuto tier may have rebuilt exactly inside Plan, so the estimated
  // tiers only pin the structural checks against the plan's own flops.
  SPNET_RETURN_IF_ERROR(
      CheckPlanStructure(plan, tier_exact ? workload.flops : plan.flops));

  SPNET_ASSIGN_OR_RETURN(sparse::CsrMatrix got, algorithm->Compute(a, b));
  SPNET_RETURN_IF_ERROR(got.Validate());
  SPNET_ASSIGN_OR_RETURN(sparse::CsrMatrix expected,
                         sparse::ReferenceSpGemm(a, b));
  if (!sparse::CsrApproxEqual(expected, got)) {
    return Violation("reorganizer output diverges from the reference");
  }

  // The reorder pre-pass promises more than tolerance agreement: because
  // the inner dimension is never permuted, every per-entry accumulation
  // runs in the original order and the restored output must match the
  // unpermuted configuration bit for bit (row order normalized).
  if (config.reorder != sparse::ReorderStrategy::kNone) {
    core::ReorganizerConfig unpermuted = config;
    unpermuted.reorder = sparse::ReorderStrategy::kNone;
    SPNET_ASSIGN_OR_RETURN(
        std::unique_ptr<spgemm::SpGemmAlgorithm> baseline_algorithm,
        core::MakeBlockReorganizer(unpermuted));
    SPNET_ASSIGN_OR_RETURN(sparse::CsrMatrix baseline,
                           baseline_algorithm->Compute(a, b));
    baseline.SortRows();
    got.SortRows();
    if (baseline.ptr() != got.ptr() || baseline.indices() != got.indices() ||
        baseline.values() != got.values()) {
      return Violation(
          std::string("reordered output (strategy ") +
          sparse::ReorderStrategyName(config.reorder) +
          ") is not bit-identical to the unpermuted baseline");
    }
  }
  return Status::Ok();
}

}  // namespace verify
}  // namespace spnet
