#include <gtest/gtest.h>

#include "gpusim/device_spec.h"
#include "gpusim/kernel_desc.h"
#include "gpusim/kernel_stats.h"
#include "gpusim/simulator.h"

namespace spnet {
namespace gpusim {
namespace {

ThreadBlockDesc UniformBlock(int threads, int64_t ops_per_thread,
                             int64_t bytes) {
  ThreadBlockDesc tb;
  tb.threads = threads;
  tb.effective_threads = threads;
  tb.crit_ops = ops_per_thread;
  tb.warp_issue_ops = (threads / 32) * ops_per_thread;
  tb.useful_lane_ops = threads * ops_per_thread;
  tb.bytes_read = bytes / 2;
  tb.bytes_written = bytes - bytes / 2;
  tb.shared_mem_bytes = 1024;
  return tb;
}

KernelDesc UniformKernel(int blocks, int threads, int64_t ops,
                         int64_t bytes) {
  KernelDesc k;
  k.label = "uniform";
  for (int i = 0; i < blocks; ++i) {
    k.blocks.push_back(UniformBlock(threads, ops, bytes));
  }
  return k;
}

TEST(DeviceSpecTest, PresetsMatchTableOne) {
  EXPECT_EQ(DeviceSpec::TitanXp().num_sms, 30);
  EXPECT_EQ(DeviceSpec::TeslaV100().num_sms, 80);
  EXPECT_EQ(DeviceSpec::Rtx2080Ti().num_sms, 68);
  EXPECT_NEAR(DeviceSpec::TitanXp().clock_ghz, 1.582, 1e-9);
  EXPECT_NEAR(DeviceSpec::TeslaV100().clock_ghz, 1.380, 1e-9);
  EXPECT_NEAR(DeviceSpec::Rtx2080Ti().clock_ghz, 1.545, 1e-9);
}

TEST(DeviceSpecTest, CyclesToSeconds) {
  const DeviceSpec d = DeviceSpec::TitanXp();
  EXPECT_NEAR(d.CyclesToSeconds(1.582e9), 1.0, 1e-9);
}

TEST(OccupancyTest, LimitedByEachResource) {
  DeviceSpec d = DeviceSpec::TitanXp();
  // Thread-limited: 2048 / 256 = 8.
  EXPECT_EQ(OccupancyBlocksPerSm(d, 256, 1024), 8);
  // Block-limited: tiny blocks hit max_blocks_per_sm.
  EXPECT_EQ(OccupancyBlocksPerSm(d, 32, 0), d.max_blocks_per_sm);
  // Shared-memory-limited: 96KB / 28KB = 3 (the B-Limiting mechanism).
  EXPECT_EQ(OccupancyBlocksPerSm(d, 256, 28 * 1024), 3);
  // Degenerate.
  EXPECT_EQ(OccupancyBlocksPerSm(d, 0, 0), 0);
}

TEST(SimulatorTest, EmptyKernelIsFree) {
  Simulator sim(DeviceSpec::TitanXp());
  KernelDesc k;
  auto s = sim.RunKernel(k);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->cycles, 0.0);
}

TEST(SimulatorTest, RejectsInvalidBlocks) {
  Simulator sim(DeviceSpec::TitanXp());
  KernelDesc k;
  ThreadBlockDesc tb = UniformBlock(256, 10, 1024);
  tb.threads = 0;
  k.blocks.push_back(tb);
  EXPECT_FALSE(sim.RunKernel(k).ok());

  KernelDesc k2;
  ThreadBlockDesc big = UniformBlock(256, 10, 1024);
  big.shared_mem_bytes = 1 << 30;
  k2.blocks.push_back(big);
  EXPECT_FALSE(sim.RunKernel(k2).ok());
}

TEST(SimulatorTest, MoreWorkTakesLonger) {
  Simulator sim(DeviceSpec::TitanXp());
  auto small = sim.RunKernel(UniformKernel(100, 256, 100, 1 << 12));
  auto large = sim.RunKernel(UniformKernel(100, 256, 10000, 1 << 16));
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(large->cycles, small->cycles);
}

TEST(SimulatorTest, DeterministicRuns) {
  Simulator sim(DeviceSpec::TitanXp());
  const KernelDesc k = UniformKernel(500, 256, 300, 1 << 14);
  auto a = sim.RunKernel(k);
  auto b = sim.RunKernel(k);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->cycles, b->cycles);
  EXPECT_EQ(a->l2_read_bytes, b->l2_read_bytes);
}

TEST(SimulatorTest, UniformKernelBalancesSms) {
  Simulator sim(DeviceSpec::TitanXp());
  auto s = sim.RunKernel(UniformKernel(3000, 256, 500, 1 << 14));
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s->Lbi(), 0.9);
}

TEST(SimulatorTest, OneGiantBlockRuinsLoadBalance) {
  Simulator sim(DeviceSpec::TitanXp());
  KernelDesc k = UniformKernel(300, 256, 100, 1 << 12);
  // One dominator with 1000x the work, scheduled mid-kernel.
  ThreadBlockDesc dominator = UniformBlock(256, 100000, 64 << 20);
  k.blocks.insert(k.blocks.begin() + 150, dominator);
  auto s = sim.RunKernel(k);
  ASSERT_TRUE(s.ok());
  EXPECT_LT(s->Lbi(), 0.5);
}

TEST(SimulatorTest, SplittingADominatorRestoresBalanceAndSpeed) {
  Simulator sim(DeviceSpec::TitanXp());
  // Unsplit: one block carrying all the work plus light filler.
  KernelDesc unsplit = UniformKernel(64, 256, 50, 1 << 10);
  unsplit.blocks.push_back(UniformBlock(256, 64000, 256 << 20));
  // Split: the same heavy work divided over 64 blocks.
  KernelDesc split = UniformKernel(64, 256, 50, 1 << 10);
  for (int i = 0; i < 64; ++i) {
    split.blocks.push_back(UniformBlock(256, 1000, 4 << 20));
  }
  auto su = sim.RunKernel(unsplit);
  auto ss = sim.RunKernel(split);
  ASSERT_TRUE(su.ok() && ss.ok());
  EXPECT_LT(ss->cycles, su->cycles);
  EXPECT_GT(ss->Lbi(), su->Lbi());
}

TEST(SimulatorTest, SyncStallsReflectIdleLanes) {
  Simulator sim(DeviceSpec::TitanXp());
  // Underloaded: 2 effective lanes of 32.
  KernelDesc under;
  for (int i = 0; i < 64; ++i) {
    ThreadBlockDesc tb;
    tb.threads = 32;
    tb.effective_threads = 2;
    tb.crit_ops = 100;
    tb.warp_issue_ops = 100;
    tb.useful_lane_ops = 200;
    tb.bytes_read = 1024;
    tb.bytes_written = 2048;
    tb.shared_mem_bytes = 512;
    under.blocks.push_back(tb);
  }
  auto s_under = sim.RunKernel(under);
  auto s_full = sim.RunKernel(UniformKernel(64, 32, 100, 3072));
  ASSERT_TRUE(s_under.ok() && s_full.ok());
  EXPECT_GT(s_under->SyncStallFraction(), 0.9);
  EXPECT_LT(s_full->SyncStallFraction(), 0.05);
}

TEST(SimulatorTest, GatheredBlocksBeatUnderloadedBlocks) {
  Simulator sim(DeviceSpec::TitanXp());
  // 16384 underloaded, iteration-heavy blocks (2 effective lanes each):
  // each issues its whole loop from a single warp.
  KernelDesc solo;
  for (int i = 0; i < 16384; ++i) {
    ThreadBlockDesc tb;
    tb.threads = 32;
    tb.effective_threads = 2;
    tb.crit_ops = 512;
    tb.warp_issue_ops = 512;
    tb.useful_lane_ops = 1024;
    tb.bytes_read = 512;
    tb.bytes_written = 256;
    tb.shared_mem_bytes = 512;
    solo.blocks.push_back(tb);
  }
  // ...vs the same work packed 128 micro-blocks per 256-thread block:
  // 16 micro-blocks share each warp, so the lock-step iterations are
  // issued once for all of them.
  KernelDesc gathered;
  for (int i = 0; i < 128; ++i) {
    ThreadBlockDesc tb;
    tb.threads = 256;
    tb.effective_threads = 256;
    tb.crit_ops = 512;
    tb.warp_issue_ops = 8 * 512;
    tb.useful_lane_ops = 128 * 1024;
    tb.bytes_read = 128 * 512;
    tb.bytes_written = 128 * 256;
    tb.shared_mem_bytes = 1024;
    tb.gathered_partitions = 128;
    gathered.blocks.push_back(tb);
  }
  auto s_solo = sim.RunKernel(solo);
  auto s_gathered = sim.RunKernel(gathered);
  ASSERT_TRUE(s_solo.ok() && s_gathered.ok());
  EXPECT_LT(s_gathered->cycles, s_solo->cycles);
}

TEST(SimulatorTest, SharedMemoryLimitsResidency) {
  Simulator sim(DeviceSpec::TitanXp());
  KernelDesc lean = UniformKernel(600, 256, 200, 1 << 14);
  KernelDesc fat = lean;
  for (auto& tb : fat.blocks) tb.shared_mem_bytes = 28 * 1024;
  auto s_lean = sim.RunKernel(lean);
  auto s_fat = sim.RunKernel(fat);
  ASSERT_TRUE(s_lean.ok() && s_fat.ok());
  // Fewer resident blocks per SM -> lower average residency.
  EXPECT_LT(s_fat->avg_resident_blocks, s_lean->avg_resident_blocks);
}

TEST(SimulatorTest, LimitingReducesGlobalAtomicCost) {
  Simulator sim(DeviceSpec::TitanXp());
  // Long-row merge blocks with global atomics.
  auto make_kernel = [&](int64_t extra_shmem) {
    KernelDesc k;
    for (int i = 0; i < 300; ++i) {
      ThreadBlockDesc tb = UniformBlock(256, 2000, 1 << 20);
      tb.atomic_ops = 500000;
      tb.atomics_in_shared = false;
      tb.shared_mem_bytes = 4096 + extra_shmem;
      k.blocks.push_back(tb);
    }
    return k;
  };
  auto dense = sim.RunKernel(make_kernel(0));
  auto limited = sim.RunKernel(make_kernel(4 * 6144));
  ASSERT_TRUE(dense.ok() && limited.ok());
  EXPECT_LT(limited->cycles, dense->cycles);
}

TEST(SimulatorTest, SharedAtomicsCheaperThanGlobal) {
  Simulator sim(DeviceSpec::TitanXp());
  KernelDesc global_k;
  KernelDesc shared_k;
  for (int i = 0; i < 300; ++i) {
    ThreadBlockDesc tb = UniformBlock(256, 2000, 1 << 18);
    tb.atomic_ops = 400000;
    tb.atomics_in_shared = false;
    global_k.blocks.push_back(tb);
    tb.atomics_in_shared = true;
    shared_k.blocks.push_back(tb);
  }
  auto g = sim.RunKernel(global_k);
  auto s = sim.RunKernel(shared_k);
  ASSERT_TRUE(g.ok() && s.ok());
  EXPECT_LT(s->cycles, g->cycles);
}

TEST(SimulatorTest, HotReadsCheaperThanCold) {
  Simulator sim(DeviceSpec::TitanXp());
  KernelDesc cold = UniformKernel(300, 256, 1000, 0);
  KernelDesc hot = cold;
  for (auto& tb : cold.blocks) {
    tb.bytes_read = 1 << 18;
    tb.shared_read_bytes = 0;
  }
  for (auto& tb : hot.blocks) {
    tb.bytes_read = 1 << 18;
    tb.shared_read_bytes = 1 << 18;
  }
  auto sc = sim.RunKernel(cold);
  auto sh = sim.RunKernel(hot);
  ASSERT_TRUE(sc.ok() && sh.ok());
  EXPECT_LT(sh->cycles, sc->cycles);
  EXPECT_GT(sh->l2_read_bytes, sc->l2_read_bytes);
  EXPECT_LT(sh->dram_bytes, sc->dram_bytes);
}

TEST(SimulatorTest, MoreSmsFinishFaster) {
  const KernelDesc k = UniformKernel(2000, 256, 500, 1 << 14);
  Simulator titan(DeviceSpec::TitanXp());
  Simulator v100(DeviceSpec::TeslaV100());
  auto st = titan.RunKernel(k);
  auto sv = v100.RunKernel(k);
  ASSERT_TRUE(st.ok() && sv.ok());
  EXPECT_LT(sv->cycles, st->cycles);
}

TEST(SimulatorTest, PipelineAccumulatesPhases) {
  Simulator sim(DeviceSpec::TitanXp());
  const KernelDesc k = UniformKernel(100, 256, 100, 1 << 12);
  auto one = sim.RunKernel(k);
  auto two = sim.RunPipeline({k, k});
  ASSERT_TRUE(one.ok() && two.ok());
  EXPECT_NEAR(two->cycles, 2.0 * one->cycles, 1e-6);
  EXPECT_EQ(two->num_blocks, 2 * one->num_blocks);
}

TEST(KernelStatsTest, LbiEdgeCases) {
  KernelStats s;
  EXPECT_DOUBLE_EQ(s.Lbi(), 1.0);  // no SMs recorded
  s.sm_busy_cycles = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(s.Lbi(), 1.0);  // idle device
  s.sm_busy_cycles = {100.0, 100.0, 100.0, 100.0};
  EXPECT_DOUBLE_EQ(s.Lbi(), 1.0);
  s.sm_busy_cycles = {100.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(s.Lbi(), 0.25);
}

TEST(KernelStatsTest, SyncStallFraction) {
  KernelStats s;
  EXPECT_DOUBLE_EQ(s.SyncStallFraction(), 0.0);
  s.issued_lane_slots = 1000;
  s.useful_lane_ops = 250;
  EXPECT_DOUBLE_EQ(s.SyncStallFraction(), 0.75);
}

TEST(KernelStatsTest, ThroughputConversions) {
  KernelStats s;
  s.seconds = 1e-3;
  s.l2_read_bytes = 2'000'000'000;
  s.l2_write_bytes = 1'000'000'000;
  EXPECT_NEAR(s.L2ReadThroughputGBs(), 2000.0, 1e-6);
  EXPECT_NEAR(s.L2WriteThroughputGBs(), 1000.0, 1e-6);
}

}  // namespace
}  // namespace gpusim
}  // namespace spnet
