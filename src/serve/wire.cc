#include "serve/wire.h"

#include <cmath>
#include <cstdlib>

#include "metrics/json_writer.h"

namespace spnet {
namespace serve {

namespace {

/// Cursor over one request line. All helpers report errors with the byte
/// offset so a client can see exactly where its line went wrong.
struct Scanner {
  const std::string& line;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < line.size() &&
           (line[pos] == ' ' || line[pos] == '\t' || line[pos] == '\r')) {
      ++pos;
    }
  }

  Status ErrorAt(const std::string& what) const {
    return Status::InvalidArgument("request line byte " + std::to_string(pos) +
                                   ": " + what);
  }

  Status Expect(char c) {
    SkipSpace();
    if (pos >= line.size() || line[pos] != c) {
      return ErrorAt(std::string("expected '") + c + "'");
    }
    ++pos;
    return Status::Ok();
  }

  Result<std::string> ParseString() {
    SPNET_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos < line.size()) {
      const char c = line[pos];
      if (c == '"') {
        ++pos;
        return out;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= line.size()) break;
        switch (line[pos]) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          default:
            // \uXXXX is valid JSON but nothing in the protocol emits it
            // (ids, tenants and sources are ASCII); rejecting beats
            // silently mangling a surrogate pair.
            return ErrorAt("unsupported escape '\\" +
                           std::string(1, line[pos]) + "'");
        }
        ++pos;
        continue;
      }
      out.push_back(c);
      ++pos;
    }
    return ErrorAt("unterminated string");
  }

  Result<double> ParseNumber() {
    SkipSpace();
    const char* start = line.c_str() + pos;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start || !std::isfinite(value)) {
      return ErrorAt("expected a number");
    }
    pos += static_cast<size_t>(end - start);
    return value;
  }
};

}  // namespace

Result<WireRequest> ParseRequestLine(const std::string& line) {
  Scanner s{line};
  WireRequest request;
  SPNET_RETURN_IF_ERROR(s.Expect('{'));
  s.SkipSpace();
  if (s.pos < line.size() && line[s.pos] == '}') {
    ++s.pos;
  } else {
    while (true) {
      SPNET_ASSIGN_OR_RETURN(const std::string key, s.ParseString());
      SPNET_RETURN_IF_ERROR(s.Expect(':'));
      s.SkipSpace();
      if (s.pos >= line.size()) return s.ErrorAt("missing value");
      const char c = line[s.pos];
      if (c == '{' || c == '[') {
        return s.ErrorAt("nested containers are not part of the protocol");
      }
      if (c == '"') {
        SPNET_ASSIGN_OR_RETURN(const std::string value, s.ParseString());
        if (key == "id") {
          request.id = value;
        } else if (key == "tenant") {
          request.tenant = value;
        } else if (key == "source") {
          request.source = value;
        } else if (key == "algorithm") {
          request.algorithm = value;
        }
        // Unknown string keys are ignored (additive evolution).
      } else if (line.compare(s.pos, 4, "true") == 0) {
        s.pos += 4;
      } else if (line.compare(s.pos, 5, "false") == 0) {
        s.pos += 5;
      } else if (line.compare(s.pos, 4, "null") == 0) {
        s.pos += 4;
      } else {
        SPNET_ASSIGN_OR_RETURN(const double value, s.ParseNumber());
        if (key == "schema_version") {
          request.schema_version = static_cast<int>(value);
        } else if (key == "priority") {
          request.priority = static_cast<int>(value);
        } else if (key == "deadline_ms") {
          request.deadline_ms = value;
        }
        // Unknown numeric keys are ignored.
      }
      s.SkipSpace();
      if (s.pos < line.size() && line[s.pos] == ',') {
        ++s.pos;
        continue;
      }
      SPNET_RETURN_IF_ERROR(s.Expect('}'));
      break;
    }
  }
  s.SkipSpace();
  if (s.pos != line.size()) {
    return s.ErrorAt("trailing content after request object");
  }

  SPNET_RETURN_IF_ERROR(engine::ValidateSchemaVersion(request.schema_version));
  if (request.id.empty()) {
    return Status::InvalidArgument("request line has no \"id\"");
  }
  if (request.source.empty()) {
    return Status::InvalidArgument("request '" + request.id +
                                   "' has no \"source\"");
  }
  if (request.tenant.empty()) {
    return Status::InvalidArgument("request '" + request.id +
                                   "' has an empty \"tenant\"");
  }
  return request;
}

std::string SerializeResponse(const engine::Response& response) {
  metrics::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(response.schema_version);
  w.Key("id").String(response.id);
  w.Key("tenant").String(response.tenant);
  w.Key("ok").Bool(response.status.ok());
  w.Key("code").String(StatusCodeName(response.status.code()));
  w.Key("message").String(response.status.message());
  w.Key("algorithm_used").String(response.algorithm_used);
  w.Key("plan_cache_hit").Bool(response.plan_cache_hit);
  w.Key("fallback_used").Bool(response.fallback_used);
  w.Key("wall_ms").Double(response.wall_ms);
  w.Key("sim_ms").Double(response.sim_ms);
  w.Key("gflops").Double(response.gflops);
  w.Key("flops").Int(response.flops);
  w.Key("output_nnz").Int(response.output_nnz);
  w.EndObject();
  return w.str();
}

}  // namespace serve
}  // namespace spnet
