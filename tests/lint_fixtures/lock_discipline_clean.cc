// Fixture: the sanctioned lock vocabulary — spnet::Mutex with a
// GUARDED_BY naming the data it protects.

#include "common/mutex.h"

namespace spnet {

class CleanCounter {
 public:
  void Add(long v) {
    MutexLock lock(&mu_);
    total_ += v;
  }

  long Total() {
    MutexLock lock(&mu_);
    return total_;
  }

 private:
  Mutex mu_;
  long total_ GUARDED_BY(mu_) = 0;
};

void TakesMutexPointer(Mutex* mu) { mu->Lock(); }

}  // namespace spnet
