#include "core/b_splitting.h"

#include <algorithm>

#include "common/math_util.h"
#include "spgemm/exec_context.h"

namespace spnet {
namespace core {

using sparse::Index;

std::vector<Index> SplitPlan::BuildMapper() const {
  std::vector<Index> mapper;
  mapper.reserve(static_cast<size_t>(total_fragments));
  for (const SplitVector& v : vectors) {
    for (int f = 0; f < v.factor; ++f) mapper.push_back(v.pair);
  }
  return mapper;
}

SplitPlan BuildSplitPlan(const spgemm::Workload& workload,
                         const std::vector<Index>& dominators,
                         const ReorganizerConfig& config,
                         const gpusim::DeviceSpec& device,
                         spgemm::ExecContext* ctx) {
  metrics::ScopedSpan span(spgemm::TraceOf(ctx), "b-splitting");
  SplitPlan plan;
  plan.vectors.reserve(dominators.size());

  for (Index pair : dominators) {
    const int64_t col_nnz = workload.a_col_nnz[static_cast<size_t>(pair)];
    const int64_t row_nnz = workload.b_row_nnz[static_cast<size_t>(pair)];
    if (col_nnz <= 0 || row_nnz <= 0) continue;

    int64_t factor;
    if (config.splitting_factor_override > 0) {
      factor = NextPow2(config.splitting_factor_override);
    } else {
      // Spread each dominator past the SM count so the fragments can
      // occupy the whole device...
      factor = NextPow2(2 * device.num_sms);
    }
    // ...but never below one column element per fragment (the column is
    // the per-thread loop; an empty fragment would be a no-op block).
    factor = std::min(factor, PrevPow2(std::max<int64_t>(col_nnz, 1)));
    factor = std::max<int64_t>(factor, 1);

    SplitVector v;
    v.pair = pair;
    v.factor = static_cast<int>(factor);
    v.offsets.resize(static_cast<size_t>(factor) + 1);
    // Even carve with remainder spread over the leading fragments: the
    // pointer-expansion trick shifts elements to the next vector
    // sequentially, which produces exactly this shape.
    const int64_t base = col_nnz / factor;
    const int64_t rem = col_nnz % factor;
    int64_t cursor = 0;
    for (int64_t f = 0; f <= factor; ++f) {
      v.offsets[static_cast<size_t>(f)] = cursor;
      if (f < factor) cursor += base + (f < rem ? 1 : 0);
    }
    v.offsets.back() = col_nnz;

    plan.total_fragments += factor;
    // The dominator column and row vectors are copied into A'/B' on the
    // host before pointer expansion.
    plan.copied_elements += col_nnz + row_nnz;
    spgemm::ObserveHistogram(ctx, "splitting.factor", factor);
    plan.vectors.push_back(std::move(v));
  }
  spgemm::SetGauge(ctx, "splitting.split_vectors",
                   static_cast<double>(plan.vectors.size()));
  spgemm::SetGauge(ctx, "splitting.fragments",
                   static_cast<double>(plan.total_fragments));
  spgemm::SetGauge(ctx, "splitting.copied_elements",
                   static_cast<double>(plan.copied_elements));
  return plan;
}

}  // namespace core
}  // namespace spnet
