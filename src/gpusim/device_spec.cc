#include "gpusim/device_spec.h"

namespace spnet {
namespace gpusim {

DeviceSpec DeviceSpec::TitanXp() {
  DeviceSpec d;
  d.name = "TITAN Xp";
  d.num_sms = 30;
  d.schedulers_per_sm = 4;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.shared_mem_per_sm = 96 * 1024;
  d.clock_ghz = 1.582;
  d.l2_size = 3 * 1024 * 1024;
  // 547 GB/s GDDR5X at 1.582 GHz core clock ~= 346 B/cycle; L2 roughly 3x.
  d.dram_bw_bytes_per_cycle = 346.0;
  d.l2_bw_bytes_per_cycle = 1024.0;
  d.lsu_bw_bytes_per_sm = 256.0;
  d.l2_latency_cycles = 220;
  d.dram_latency_cycles = 480;
  d.flops_per_cycle = 2 * 3840;  // 3840 cores, FMA
  return d;
}

DeviceSpec DeviceSpec::TeslaV100() {
  DeviceSpec d;
  d.name = "Tesla V100";
  d.num_sms = 80;
  d.schedulers_per_sm = 4;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.shared_mem_per_sm = 96 * 1024;
  d.clock_ghz = 1.380;
  d.l2_size = 6 * 1024 * 1024;
  // 900 GB/s HBM2 at 1.38 GHz ~= 652 B/cycle.
  d.dram_bw_bytes_per_cycle = 652.0;
  d.l2_bw_bytes_per_cycle = 2048.0;
  d.lsu_bw_bytes_per_sm = 256.0;
  d.l2_latency_cycles = 200;
  d.dram_latency_cycles = 440;
  d.flops_per_cycle = 2 * 5120;
  return d;
}

DeviceSpec DeviceSpec::Rtx2080Ti() {
  DeviceSpec d;
  d.name = "RTX 2080 Ti";
  d.num_sms = 68;
  d.schedulers_per_sm = 4;
  d.max_threads_per_sm = 1024;  // Turing halves the per-SM thread limit.
  d.max_blocks_per_sm = 16;
  d.shared_mem_per_sm = 64 * 1024;
  d.clock_ghz = 1.545;
  d.l2_size = 5632 * 1024;
  // 616 GB/s GDDR6 at 1.545 GHz ~= 399 B/cycle.
  d.dram_bw_bytes_per_cycle = 399.0;
  d.l2_bw_bytes_per_cycle = 1536.0;
  d.lsu_bw_bytes_per_sm = 256.0;
  d.l2_latency_cycles = 210;
  d.dram_latency_cycles = 460;
  d.flops_per_cycle = 2 * 4352;
  return d;
}

}  // namespace gpusim
}  // namespace spnet
