// Fixture: the lexer must keep rule triggers inert inside comments,
// string/char literals and raw strings. Expected finding count: zero.
//
// new delete std::tolower(c) Run();
/* Register("x"); memory_order_relaxed
   int* p = new int; */

namespace spnet {

const char* const kPlain = "new delete tolower(c) memory_order_relaxed";
const char* const kEscaped = "quoted \" new \\ delete";
const char kQuote = '\'';
const char kBackslash = '\\';

const char* const kRaw = R"lint(
  int* leak = new int;
  std::isspace(c);
  Run();
)lint";

const char* const kRawEmptyTag = R"(delete this)";

}  // namespace spnet
