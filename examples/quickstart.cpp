// Quickstart: multiply two sparse matrices with the Block Reorganizer and
// compare its simulated GPU profile against the row- and outer-product
// baselines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/block_reorganizer.h"
#include "datasets/generators.h"
#include "gpusim/device_spec.h"
#include "sparse/reference_spgemm.h"
#include "spgemm/algorithm.h"

int main() {
  using namespace spnet;

  // 1. Build a sparse network. Any CsrMatrix works (see
  //    sparse/matrix_market.h to load a .mtx file); here we generate a
  //    power-law graph like the paper's SNS workloads.
  datasets::PowerLawParams params;
  params.rows = params.cols = 20000;
  params.nnz = 120000;
  params.row_skew = params.col_skew = 0.9;
  auto a = datasets::GeneratePowerLaw(params);
  if (!a.ok()) {
    std::fprintf(stderr, "generator: %s\n", a.status().ToString().c_str());
    return 1;
  }
  std::printf("input: %d x %d, %lld nonzeros\n", a->rows(), a->cols(),
              static_cast<long long>(a->nnz()));

  // 2. Compute C = A^2 with the Block Reorganizer (host execution of the
  //    exact algorithm the GPU kernels would run).
  core::BlockReorganizerSpGemm reorganizer;
  auto c = reorganizer.Compute(*a, *a);
  if (!c.ok()) {
    std::fprintf(stderr, "compute: %s\n", c.status().ToString().c_str());
    return 1;
  }
  std::printf("C = A^2: %lld nonzeros\n", static_cast<long long>(c->nnz()));

  // 3. Sanity-check against the reference Gustavson implementation.
  auto reference = sparse::ReferenceSpGemm(*a, *a);
  std::printf("matches reference: %s\n",
              reference.ok() && sparse::CsrApproxEqual(*c, *reference, 1e-9)
                  ? "yes"
                  : "NO");

  // 4. Profile on the simulated Titan Xp and compare to the baselines.
  const gpusim::DeviceSpec device = gpusim::DeviceSpec::TitanXp();
  const auto row = spgemm::MakeRowProduct();
  const auto outer = spgemm::MakeOuterProduct();
  double row_seconds = 0.0;
  for (const spgemm::SpGemmAlgorithm* alg :
       {static_cast<const spgemm::SpGemmAlgorithm*>(row.get()),
        static_cast<const spgemm::SpGemmAlgorithm*>(outer.get()),
        static_cast<const spgemm::SpGemmAlgorithm*>(&reorganizer)}) {
    auto m = spgemm::Measure(*alg, *a, *a, device);
    if (!m.ok()) {
      std::fprintf(stderr, "measure: %s\n", m.status().ToString().c_str());
      return 1;
    }
    if (alg == row.get()) row_seconds = m->total_seconds;
    std::printf("%-18s %8.3f ms  (%.2fx vs row-product, %.1f GFLOPS, "
                "sync stalls %.0f%%)\n",
                alg->name().c_str(), m->total_seconds * 1e3,
                row_seconds / m->total_seconds, m->Gflops(),
                100.0 * m->stats.SyncStallFraction());
  }

  // 5. Peek at what the pre-process classified.
  auto report = reorganizer.Analyze(*a, *a, device);
  if (report.ok()) {
    std::printf("classification: %lld dominators, %lld low performers, "
                "%lld normal pairs, %lld limited rows\n",
                static_cast<long long>(report->dominators),
                static_cast<long long>(report->low_performers),
                static_cast<long long>(report->normals),
                static_cast<long long>(report->limited_rows));
  }
  return 0;
}
