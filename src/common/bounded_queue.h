#ifndef SPNET_COMMON_BOUNDED_QUEUE_H_
#define SPNET_COMMON_BOUNDED_QUEUE_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace spnet {

/// Bounded multi-producer/multi-consumer queue with strict priority
/// ordering: Pop always returns the oldest item of the highest priority
/// class present (FIFO within a class, so equal-priority work is served
/// in arrival order and cannot starve itself).
///
/// The bound is the admission-control contract of the serving layer:
/// TryPush never blocks and never queues past `capacity` — a full queue
/// is the caller's signal to reject with kResourceExhausted instead of
/// building unbounded memory and latency debt. There is deliberately no
/// blocking push.
///
/// Close() ends the producer side: further pushes fail, consumers drain
/// the remaining items and then Pop returns false — the standard
/// worker-loop termination handshake. All operations are thread-safe
/// under one internal annotated Mutex; hand-off latency is one
/// lock + CondVar signal, which is noise next to a single spGEMM plan.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `item` with `priority` (higher runs sooner). Returns false —
  /// without blocking — when the queue is full or closed; the item is
  /// untouched in that case so the caller can report or retry.
  bool TryPush(T item, int priority = 0) {
    {
      MutexLock lock(&mu_);
      if (closed_ || size_ >= capacity_) return false;
      buckets_[priority].push_back(std::move(item));
      ++size_;
    }
    ready_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  /// Returns true with the item moved into `*out`, or false when drained
  /// after Close() (the consumer's signal to exit its loop).
  bool Pop(T* out) {
    MutexLock lock(&mu_);
    while (size_ == 0 && !closed_) ready_.Wait(&mu_);
    if (size_ == 0) return false;  // closed and drained
    auto it = buckets_.begin();    // highest priority class
    *out = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) buckets_.erase(it);
    --size_;
    return true;
  }

  /// Rejects all future pushes and wakes every blocked consumer. Items
  /// already queued are still delivered. Idempotent.
  void Close() {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    ready_.NotifyAll();
  }

  size_t size() const {
    MutexLock lock(&mu_);
    return size_;
  }

  bool closed() const {
    MutexLock lock(&mu_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar ready_;
  /// Priority classes, highest first; FIFO deque per class.
  std::map<int, std::deque<T>, std::greater<int>> buckets_ GUARDED_BY(mu_);
  size_t size_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace spnet

#endif  // SPNET_COMMON_BOUNDED_QUEUE_H_
