#include "engine/plan_cache.h"

#include "sparse/fingerprint.h"

namespace spnet {
namespace engine {

size_t PlanKeyHash::operator()(const PlanKey& k) const {
  uint64_t h = sparse::CombineFingerprints(k.fp_a, k.fp_b);
  h = sparse::CombineFingerprints(h, k.config_fp);
  for (unsigned char c : k.algorithm) {
    h = sparse::CombineFingerprints(h, c);
  }
  return static_cast<size_t>(h);
}

std::shared_ptr<const spgemm::SpGemmPlan> PlanCache::Lookup(
    const PlanKey& key, spgemm::ExecContext* ctx) {
  {
    MutexLock lock(&mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      // Refresh recency: splice the entry to the front of the LRU list.
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      spgemm::AddCounter(ctx, "engine.plan_cache.hit", 1);
      return it->second->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  spgemm::AddCounter(ctx, "engine.plan_cache.miss", 1);
  return nullptr;
}

std::shared_ptr<const spgemm::SpGemmPlan> PlanCache::Insert(
    const PlanKey& key, spgemm::SpGemmPlan plan, spgemm::ExecContext* ctx) {
  auto shared =
      std::make_shared<const spgemm::SpGemmPlan>(std::move(plan));
  if (capacity_ == 0) return shared;
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent planners can race to insert the same key; keep the newer
    // plan (they are equivalent) and refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = shared;
    return shared;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    spgemm::AddCounter(ctx, "engine.plan_cache.evict", 1);
  }
  lru_.emplace_front(key, shared);
  index_.emplace(key, lru_.begin());
  return shared;
}

void PlanCache::Clear() {
  MutexLock lock(&mu_);
  lru_.clear();
  index_.clear();
}

size_t PlanCache::size() const {
  MutexLock lock(&mu_);
  return lru_.size();
}

}  // namespace engine
}  // namespace spnet
