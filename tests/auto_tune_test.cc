#include <gtest/gtest.h>

#include "core/auto_tune.h"
#include "core/workload_classifier.h"
#include "spgemm/workload_model.h"
#include "tests/test_util.h"

namespace spnet {
namespace core {
namespace {

using sparse::CsrMatrix;

TEST(AutoTuneTest, SkewedInputGetsBoundedDominatorCount) {
  const CsrMatrix a = testing_util::SkewedMatrix(800, 600, 51);
  const auto device = gpusim::DeviceSpec::TitanXp();
  auto config = AutoTune(a, a, device);
  ASSERT_TRUE(config.ok());

  const spgemm::Workload w = spgemm::BuildWorkload(a, a);
  const Classification c = Classify(w, *config);
  // The target is ~4 blocks per SM; allow generous slack for ties.
  EXPECT_GT(c.dominators.size(), 0u);
  EXPECT_LE(c.dominators.size(),
            static_cast<size_t>(12 * device.num_sms));
}

TEST(AutoTuneTest, UniformInputGetsNoDominators) {
  const CsrMatrix a = testing_util::RandomMatrix(500, 500, 0.02, 53);
  auto config = AutoTune(a, a, gpusim::DeviceSpec::TitanXp());
  ASSERT_TRUE(config.ok());
  const spgemm::Workload w = spgemm::BuildWorkload(a, a);
  const Classification c = Classify(w, *config);
  // Uniform work: the threshold lands at/above the common value, so the
  // dominator bin stays small.
  EXPECT_LT(static_cast<double>(c.dominators.size()),
            0.05 * static_cast<double>(w.pair_work.size()));
}

TEST(AutoTuneTest, LimitedRowsNearRequestedFraction) {
  const CsrMatrix a = testing_util::SkewedMatrix(1000, 500, 55);
  AutoTuneOptions options;
  options.limited_row_fraction = 0.05;
  auto config = AutoTune(a, a, gpusim::DeviceSpec::TitanXp(), options);
  ASSERT_TRUE(config.ok());
  const spgemm::Workload w = spgemm::BuildWorkload(a, a);
  const Classification c = Classify(w, *config);
  int64_t nonzero_rows = 0;
  for (int64_t v : w.row_chat) {
    if (v > 0) ++nonzero_rows;
  }
  const double fraction = static_cast<double>(c.limited_rows.size()) /
                          static_cast<double>(nonzero_rows);
  EXPECT_GT(fraction, 0.0);
  EXPECT_LT(fraction, 0.25);
}

TEST(AutoTuneTest, RespectsClamps) {
  const CsrMatrix a = testing_util::SkewedMatrix(300, 200, 57);
  AutoTuneOptions options;
  options.min_alpha = 10.0;
  options.max_alpha = 12.0;
  options.min_beta = 3.0;
  options.max_beta = 4.0;
  auto config = AutoTune(a, a, gpusim::DeviceSpec::TitanXp(), options);
  ASSERT_TRUE(config.ok());
  EXPECT_GE(config->alpha, 10.0);
  EXPECT_LE(config->alpha, 12.0);
  EXPECT_GE(config->beta, 3.0);
  EXPECT_LE(config->beta, 4.0);
}

TEST(AutoTuneTest, EmptyMatrixYieldsDefaults) {
  sparse::CooMatrix coo(16, 16);
  auto a = CsrMatrix::FromCoo(coo);
  auto config = AutoTune(*a, *a, gpusim::DeviceSpec::TitanXp());
  ASSERT_TRUE(config.ok());
  EXPECT_DOUBLE_EQ(config->alpha, ReorganizerConfig{}.alpha);
}

TEST(AutoTuneTest, DimensionMismatchRejected) {
  const CsrMatrix a = testing_util::RandomMatrix(5, 6, 0.5, 1);
  const CsrMatrix b = testing_util::RandomMatrix(5, 6, 0.5, 2);
  EXPECT_FALSE(AutoTune(a, b, gpusim::DeviceSpec::TitanXp()).ok());
}

}  // namespace
}  // namespace core
}  // namespace spnet
