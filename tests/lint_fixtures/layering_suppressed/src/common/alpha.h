// Fixture: the layering_bad violation with an inline allow marker on the
// offending include line.
#ifndef FIXTURE_COMMON_ALPHA_H_
#define FIXTURE_COMMON_ALPHA_H_

#include "engine/beta.h"  // spnet-lint: allow(layering-violation)

inline int Alpha() { return FixtureBeta() + 1; }

#endif  // FIXTURE_COMMON_ALPHA_H_
