#ifndef SPNET_VERIFY_DIFFERENTIAL_H_
#define SPNET_VERIFY_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sparse/csr_matrix.h"

namespace spnet {
namespace verify {

/// First point where an algorithm's output departs from the reference
/// oracle, in row-major order over the sorted rows.
struct Divergence {
  sparse::Index row = -1;
  sparse::Index col = -1;
  double expected = 0.0;
  double got = 0.0;
  /// "shape" (dimension mismatch), "structure" (entry present on one side
  /// only), or "value" (same position, different number).
  std::string kind;
};

std::string DivergenceToString(const Divergence& d);

/// Compares `got` against `expected` entry by entry, tolerating unordered
/// rows and |delta| <= tol. Returns true and fills *out on the first
/// mismatch; false when the matrices agree.
bool FindFirstDivergence(const sparse::CsrMatrix& expected,
                         const sparse::CsrMatrix& got, double tol,
                         Divergence* out);

/// One generated A*B input of the differential sweep.
struct SweepCase {
  sparse::CsrMatrix a;
  sparse::CsrMatrix b;
};

/// The seeded input families the sweep draws from: "powerlaw"
/// (rectangular, hub-skewed), "banded" (quasi-regular FEM stand-in),
/// "block-diagonal" (community blocks), "empty-rows-cols" (structurally
/// degenerate rows/columns, including a fully empty matrix), and
/// "duplicate-coo" (inputs assembled from duplicate-heavy triplet lists).
const std::vector<std::string>& SweepFamilyNames();

/// Builds one deterministic case of `family`; the same (family, seed)
/// always reproduces the same matrices.
[[nodiscard]] Result<SweepCase> MakeSweepCase(const std::string& family, uint64_t seed);

struct DifferentialOptions {
  /// Algorithms to test; empty = every canonical name in the registry
  /// (core algorithms are registered by the sweep itself).
  std::vector<std::string> algorithms;
  /// Families to draw from; empty = all of SweepFamilyNames().
  std::vector<std::string> families;
  /// Seeded cases per family.
  int cases_per_family = 2;
  uint64_t base_seed = 42;
  double tol = 1e-9;
};

/// One failing (algorithm, case) pair of a sweep.
struct DifferentialFailure {
  std::string algorithm;
  std::string family;
  uint64_t seed = 0;
  /// Non-OK when the algorithm (or its output validation) failed outright;
  /// OK when it ran but diverged.
  Status status;
  bool diverged = false;
  Divergence divergence;

  std::string ToString() const;
};

struct DifferentialReport {
  int64_t cases_run = 0;
  int64_t algorithms_tested = 0;
  std::vector<DifferentialFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

/// Runs every requested algorithm against sparse::ReferenceSpGemm over
/// the seeded sweep. Infrastructure errors (unknown family or algorithm
/// name, generator failure, reference failure) surface as the outer
/// Status; algorithm misbehavior lands in the report.
[[nodiscard]] Result<DifferentialReport> RunDifferentialSweep(
    const DifferentialOptions& options);

}  // namespace verify
}  // namespace spnet

#endif  // SPNET_VERIFY_DIFFERENTIAL_H_
