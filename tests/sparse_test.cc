#include <gtest/gtest.h>

#include <vector>

#include "sparse/coo_matrix.h"
#include "sparse/csr_matrix.h"
#include "tests/test_util.h"

namespace spnet {
namespace sparse {
namespace {

CsrMatrix Make3x4() {
  // [ 1 0 2 0 ]
  // [ 0 0 0 3 ]
  // [ 4 5 0 0 ]
  CooMatrix coo(3, 4);
  coo.Add(0, 0, 1.0);
  coo.Add(0, 2, 2.0);
  coo.Add(1, 3, 3.0);
  coo.Add(2, 0, 4.0);
  coo.Add(2, 1, 5.0);
  auto r = CsrMatrix::FromCoo(coo);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(CooMatrixTest, SortAndCombineSumsDuplicates) {
  CooMatrix coo(2, 2);
  coo.Add(1, 1, 2.0);
  coo.Add(0, 0, 1.0);
  coo.Add(1, 1, 3.0);
  coo.SortAndCombine();
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_EQ(coo.row_indices()[0], 0);
  EXPECT_EQ(coo.col_indices()[0], 0);
  EXPECT_DOUBLE_EQ(coo.values()[1], 5.0);
}

TEST(CooMatrixTest, ValidateCatchesOutOfBounds) {
  CooMatrix coo(2, 2);
  coo.Add(2, 0, 1.0);
  EXPECT_FALSE(coo.Validate().ok());
  CooMatrix neg(2, 2);
  neg.Add(0, -1, 1.0);
  EXPECT_FALSE(neg.Validate().ok());
}

TEST(CsrMatrixTest, FromCooBasicShape) {
  CsrMatrix m = Make3x4();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 5);
  EXPECT_EQ(m.RowNnz(0), 2);
  EXPECT_EQ(m.RowNnz(1), 1);
  EXPECT_EQ(m.RowNnz(2), 2);
  EXPECT_TRUE(m.RowsSorted());
  EXPECT_TRUE(m.Validate().ok());
}

TEST(CsrMatrixTest, RowViewContents) {
  CsrMatrix m = Make3x4();
  SpanView row = m.Row(2);
  ASSERT_EQ(row.size, 2);
  EXPECT_EQ(row.indices[0], 0);
  EXPECT_EQ(row.indices[1], 1);
  EXPECT_DOUBLE_EQ(row.values[0], 4.0);
  EXPECT_DOUBLE_EQ(row.values[1], 5.0);
}

TEST(CsrMatrixTest, FromCooSumsDuplicates) {
  CooMatrix coo(2, 2);
  coo.Add(0, 1, 1.5);
  coo.Add(0, 1, 2.5);
  auto m = CsrMatrix::FromCoo(coo);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 1);
  EXPECT_DOUBLE_EQ(m->Row(0).values[0], 4.0);
}

TEST(CsrMatrixTest, FromCooRejectsBadTriplets) {
  CooMatrix coo(2, 2);
  coo.Add(0, 5, 1.0);
  EXPECT_FALSE(CsrMatrix::FromCoo(coo).ok());
}

TEST(CsrMatrixTest, FromPartsValidates) {
  // ptr not monotone.
  auto bad = CsrMatrix::FromParts(2, 2, {0, 2, 1}, {0, 1}, {1.0, 2.0});
  EXPECT_FALSE(bad.ok());
  // index out of range.
  auto oob = CsrMatrix::FromParts(2, 2, {0, 1, 2}, {0, 7}, {1.0, 2.0});
  EXPECT_FALSE(oob.ok());
  // size mismatch.
  auto mism = CsrMatrix::FromParts(2, 2, {0, 1, 2}, {0, 1}, {1.0});
  EXPECT_FALSE(mism.ok());
  // good.
  auto good = CsrMatrix::FromParts(2, 2, {0, 1, 2}, {0, 1}, {1.0, 2.0});
  EXPECT_TRUE(good.ok());
}

TEST(CsrMatrixTest, TransposeRoundTrip) {
  CsrMatrix m = Make3x4();
  CsrMatrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 4);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.nnz(), m.nnz());
  EXPECT_TRUE(t.RowsSorted());
  CsrMatrix back = t.Transpose();
  EXPECT_TRUE(CsrApproxEqual(m, back));
}

TEST(CsrMatrixTest, TransposeValues) {
  CsrMatrix m = Make3x4();
  CsrMatrix t = m.Transpose();
  // Column 0 of m had (0,1.0) and (2,4.0).
  SpanView r0 = t.Row(0);
  ASSERT_EQ(r0.size, 2);
  EXPECT_EQ(r0.indices[0], 0);
  EXPECT_DOUBLE_EQ(r0.values[0], 1.0);
  EXPECT_EQ(r0.indices[1], 2);
  EXPECT_DOUBLE_EQ(r0.values[1], 4.0);
}

TEST(CsrMatrixTest, SortRowsRestoresOrder) {
  auto m = CsrMatrix::FromParts(1, 4, {0, 3}, {2, 0, 3}, {2.0, 1.0, 3.0});
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->RowsSorted());
  m->SortRows();
  EXPECT_TRUE(m->RowsSorted());
  EXPECT_EQ(m->Row(0).indices[0], 0);
  EXPECT_DOUBLE_EQ(m->Row(0).values[0], 1.0);
  EXPECT_EQ(m->Row(0).indices[2], 3);
}

TEST(CsrMatrixTest, ToCooRoundTrip) {
  CsrMatrix m = Make3x4();
  auto back = CsrMatrix::FromCoo(m.ToCoo());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(CsrApproxEqual(m, *back));
}

TEST(CsrMatrixTest, EmptyMatrix) {
  CooMatrix coo(0, 0);
  auto m = CsrMatrix::FromCoo(coo);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->rows(), 0);
  EXPECT_EQ(m->nnz(), 0);
  CsrMatrix t = m->Transpose();
  EXPECT_EQ(t.rows(), 0);
}

TEST(CsrMatrixTest, EmptyRowsAllowed) {
  CooMatrix coo(5, 5);
  coo.Add(2, 2, 1.0);
  auto m = CsrMatrix::FromCoo(coo);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->RowNnz(0), 0);
  EXPECT_EQ(m->RowNnz(2), 1);
  EXPECT_EQ(m->RowNnz(4), 0);
}

TEST(CscMatrixTest, ColumnsMatchTransposedRows) {
  CsrMatrix m = Make3x4();
  CscMatrix csc = CscMatrix::FromCsr(m);
  EXPECT_EQ(csc.rows(), 3);
  EXPECT_EQ(csc.cols(), 4);
  EXPECT_EQ(csc.nnz(), m.nnz());
  EXPECT_EQ(csc.ColNnz(0), 2);
  EXPECT_EQ(csc.ColNnz(2), 1);
  SpanView c0 = csc.Col(0);
  EXPECT_EQ(c0.indices[0], 0);  // row positions
  EXPECT_EQ(c0.indices[1], 2);
  EXPECT_DOUBLE_EQ(c0.values[1], 4.0);
}

TEST(CsrApproxEqualTest, ToleratesUnorderedRows) {
  auto a = CsrMatrix::FromParts(1, 4, {0, 2}, {0, 3}, {1.0, 2.0});
  auto b = CsrMatrix::FromParts(1, 4, {0, 2}, {3, 0}, {2.0, 1.0});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(CsrApproxEqual(*a, *b));
}

TEST(CsrApproxEqualTest, ToleratesDuplicateRepresentation) {
  // a stores 5 at (0,1); b stores it as 2 + 3.
  auto a = CsrMatrix::FromParts(1, 2, {0, 1}, {1}, {5.0});
  auto b = CsrMatrix::FromParts(1, 2, {0, 2}, {1, 1}, {2.0, 3.0});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(CsrApproxEqual(*a, *b));
}

TEST(CsrApproxEqualTest, DetectsValueMismatch) {
  auto a = CsrMatrix::FromParts(1, 2, {0, 1}, {1}, {5.0});
  auto b = CsrMatrix::FromParts(1, 2, {0, 1}, {1}, {5.1});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(CsrApproxEqual(*a, *b));
  EXPECT_TRUE(CsrApproxEqual(*a, *b, 0.2));
}

TEST(CsrApproxEqualTest, DetectsStructureMismatch) {
  auto a = CsrMatrix::FromParts(1, 3, {0, 1}, {1}, {5.0});
  auto b = CsrMatrix::FromParts(1, 3, {0, 1}, {2}, {5.0});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(CsrApproxEqual(*a, *b));
}

TEST(CsrApproxEqualTest, ShapeMismatch) {
  auto a = CsrMatrix::FromParts(1, 3, {0, 0}, {}, {});
  auto b = CsrMatrix::FromParts(1, 2, {0, 0}, {}, {});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(CsrApproxEqual(*a, *b));
}

TEST(CsrMatrixTest, RandomTransposeInvolution) {
  const CsrMatrix m = testing_util::RandomMatrix(37, 53, 0.08, 99);
  EXPECT_TRUE(CsrApproxEqual(m, m.Transpose().Transpose()));
}

}  // namespace
}  // namespace sparse
}  // namespace spnet
