#ifndef SPNET_ENGINE_PLAN_CACHE_H_
#define SPNET_ENGINE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "spgemm/exec_context.h"
#include "spgemm/plan.h"

namespace spnet {
namespace engine {

/// Identity of one planning problem: the structural fingerprints of both
/// operands (sparse::StructuralFingerprint — values excluded, structure
/// only), the algorithm name, and the fingerprint of the algorithm's
/// configuration (ReorganizerConfig::Fingerprint for the reorganizer, 0 for
/// the config-free baselines). Plans also depend on the DeviceSpec, which
/// is deliberately not part of the key: one PlanCache serves one device
/// (the BatchRunner owns a cache per device); never share an instance
/// across devices.
struct PlanKey {
  uint64_t fp_a = 0;
  uint64_t fp_b = 0;
  std::string algorithm;
  uint64_t config_fp = 0;

  friend bool operator==(const PlanKey& x, const PlanKey& y) {
    return x.fp_a == y.fp_a && x.fp_b == y.fp_b &&
           x.config_fp == y.config_fp && x.algorithm == y.algorithm;
  }
};

struct PlanKeyHash {
  size_t operator()(const PlanKey& k) const;
};

/// Thread-safe LRU cache of SpGemmPlan results. Repeated queries over the
/// same matrix structure skip the whole Block Reorganizer planning pipeline
/// (classification, B-Splitting, B-Gathering, B-Limiting) and go straight
/// to simulation — the amortizable cost that dominates spGEMM latency on
/// power-law graphs.
///
/// Sharding: the capacity can be split across `shards` independent LRU
/// shards, each with its own mutex, selected by the key's hash. Under
/// concurrent tenants every shard serializes only 1/N of the traffic, so
/// lock contention shrinks with the shard count while the external
/// interface — and the hit/miss/eviction accounting — stays exactly that
/// of one logical cache. The counters are process-global atomics
/// aggregated across shards, and the engine.plan_cache.{hit,miss,evict}
/// counters recorded on an ExecContext likewise sum over all shards, so
/// existing consumers (BatchReport deltas, BENCH_engine_batch.json,
/// engine_test) read identical semantics whatever the shard count.
/// Recency is per shard: eviction removes the least-recently-used entry of
/// the full shard, which approximates global LRU the way any sharded cache
/// does. The default of one shard preserves exact global LRU order.
///
/// Plans are shared immutably (shared_ptr<const SpGemmPlan>), so a hit is
/// one map lookup plus a refcount bump and entries stay valid even if
/// evicted while a query is still simulating them.
///
/// Observability: every Lookup/Insert optionally records
/// engine.plan_cache.{hit,miss,evict} counters on an ExecContext; the same
/// totals are always available from hits()/misses()/evictions() (used by
/// tests and the CLI summary line).
class PlanCache {
 public:
  /// `capacity` is the max number of cached plans across all shards; 0
  /// disables caching (every Lookup misses, Insert is a no-op). `shards`
  /// is clamped to [1, capacity] so every shard owns at least one entry;
  /// the per-shard capacity is capacity/shards with the remainder spread
  /// over the first shards. `min_confidence` is the admission floor for
  /// plan confidence: plans built from low-confidence estimates (see
  /// SpGemmPlan::confidence) are returned to the caller but never cached,
  /// so a lucky sample cannot become every future query's plan. 0.0
  /// admits everything.
  explicit PlanCache(size_t capacity, size_t shards = 1,
                     double min_confidence = 0.0);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan and refreshes its recency, or nullptr on a
  /// miss.
  std::shared_ptr<const spgemm::SpGemmPlan> Lookup(
      const PlanKey& key, spgemm::ExecContext* ctx = nullptr);

  /// Inserts (or replaces) the plan for `key`, evicting the shard's
  /// least-recently-used entry when the shard is full. Returns the shared
  /// form of the inserted plan.
  std::shared_ptr<const spgemm::SpGemmPlan> Insert(
      const PlanKey& key, spgemm::SpGemmPlan plan,
      spgemm::ExecContext* ctx = nullptr);

  void Clear();

  size_t capacity() const { return capacity_; }
  size_t shards() const { return shards_.size(); }
  /// Entries currently cached, summed over all shards.
  size_t size() const;

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Inserts refused because the plan's confidence was below the floor.
  int64_t rejected_low_confidence() const {
    return rejected_low_confidence_.load(std::memory_order_relaxed);
  }
  double min_confidence() const { return min_confidence_; }

 private:
  using Entry = std::pair<PlanKey, std::shared_ptr<const spgemm::SpGemmPlan>>;

  /// One independent LRU cache; selected by key hash.
  struct Shard {
    explicit Shard(size_t cap) : capacity(cap) {}
    const size_t capacity;
    Mutex mu;
    /// Most recently used at the front; eviction pops the back.
    std::list<Entry> lru GUARDED_BY(mu);
    std::unordered_map<PlanKey, std::list<Entry>::iterator, PlanKeyHash>
        index GUARDED_BY(mu);
  };

  Shard& ShardFor(const PlanKey& key);

  const size_t capacity_;
  const double min_confidence_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> rejected_low_confidence_{0};
};

}  // namespace engine
}  // namespace spnet

#endif  // SPNET_ENGINE_PLAN_CACHE_H_
