#include "core/auto_tune.h"

#include <algorithm>
#include <cstddef>
#include <cmath>
#include <vector>

#include "spgemm/workload_model.h"

namespace spnet {
namespace core {

Result<ReorganizerConfig> AutoTune(const sparse::CsrMatrix& a,
                                   const sparse::CsrMatrix& b,
                                   const gpusim::DeviceSpec& device,
                                   const AutoTuneOptions& options) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("dimension mismatch in AutoTune");
  }
  const spgemm::Workload workload = spgemm::BuildWorkload(a, b);
  ReorganizerConfig config;
  if (workload.flops == 0) {
    return config;
  }

  // --- alpha: make the top `target` pairs the dominators. -------------------
  std::vector<int64_t> work;
  work.reserve(workload.pair_work.size());
  for (int64_t w : workload.pair_work) {
    if (w > 0) work.push_back(w);
  }
  const size_t target = std::min(
      work.size(),
      static_cast<size_t>(std::max(1.0, options.dominator_target_per_sm *
                                            device.num_sms)));
  if (!work.empty()) {
    std::nth_element(work.begin(),
                     work.begin() + static_cast<ptrdiff_t>(target - 1),
                     work.end(), std::greater<int64_t>());
    const double threshold =
        static_cast<double>(work[target - 1]);
    const double mean = static_cast<double>(workload.flops) /
                        static_cast<double>(work.size());
    config.alpha =
        std::clamp(threshold / mean, options.min_alpha, options.max_alpha);
  }

  // --- beta: limit the heaviest fraction of output rows. --------------------
  std::vector<int64_t> chat;
  chat.reserve(workload.row_chat.size());
  for (int64_t c : workload.row_chat) {
    if (c > 0) chat.push_back(c);
  }
  if (!chat.empty()) {
    const size_t limited = std::min(
        chat.size() - 1,
        static_cast<size_t>(std::max(
            1.0, options.limited_row_fraction *
                     static_cast<double>(chat.size()))));
    std::nth_element(chat.begin(),
                     chat.begin() + static_cast<ptrdiff_t>(limited),
                     chat.end(), std::greater<int64_t>());
    const double threshold = static_cast<double>(chat[limited]);
    const double mean = static_cast<double>(workload.flops) /
                        static_cast<double>(chat.size());
    config.beta =
        std::clamp(threshold / mean, options.min_beta, options.max_beta);
  }
  // The clamps above should keep the tuned knobs legal; validating here
  // turns any future clamp regression into an error instead of a silently
  // nonsensical configuration.
  SPNET_RETURN_IF_ERROR(config.Validate());
  return config;
}

}  // namespace core
}  // namespace spnet
