// Serving-layer traffic bench: open-loop latency percentiles for the
// spnet_serve stack (admission control -> priority queue -> worker pool ->
// shared sharded plan cache) under three tenant mixes, all in-process
// against serve::Server.
//
//   steady       one server, two phases. The cold phase issues exactly one
//                request per pinned hot graph, so every cold sample pays
//                the full planning pipeline (a plan-cache miss). The warm
//                phase then replays Poisson arrivals from two well-behaved
//                tenants over the same graphs; every sample hits the
//                shared plan cache. Warm p50 must beat cold p50 — the
//                serving restatement of the plan-cache amortization
//                result.
//   bursty       the same requests arriving in back-to-back bursts larger
//                than the bounded queue; the overflow is rejected with
//                ResourceExhausted (queue) instead of building latency
//                debt, and the admitted remainder keeps bounded
//                percentiles.
//   adversarial  one tenant floods at 4x the steady rate against a small
//                token-bucket quota while a polite tenant shares the
//                server; the flood is clipped by quota rejections and the
//                polite tenant's requests all complete.
//
// Arrivals are open-loop (precomputed exponential inter-arrival schedule,
// submission does not wait for completions), so queueing delay shows up in
// the end-to-end latency histograms instead of throttling the generator.
// Latency is measured from submission to response callback and reported as
// p50/p99/p999 from log2-bucket histograms (resolution: one power of two).
//
// Flags: the common bench set (--scale --seed --device --csv --threads
// --cache --json_out) plus --requests (per wave, default 60), --rate
// (steady arrivals/sec, default 300), --burst (requests per burst, default
// 40), --queue (queue capacity, default 16), --workers (default 2).
//
// CI writes --json_out=BENCH_serve_baseline.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "metrics/registry.h"
#include "metrics/report.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace spnet {
namespace {

const char* const kHotSources[] = {"as-caida", "emailEnron", "epinions"};

/// Accumulates one scenario's outcome. Callbacks run on worker threads, so
/// the completion-side fields are atomics / a lock-free histogram;
/// submission-side tallies are written by the (single) generator thread.
struct Scenario {
  explicit Scenario(std::string scenario_name)
      : name(std::move(scenario_name)) {}

  std::string name;
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t rejected_quota = 0;
  int64_t rejected_queue = 0;
  int64_t rejected_other = 0;
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> failed{0};
  metrics::Histogram latency_us;
};

/// One open-loop arrival.
struct Arrival {
  double at_seconds = 0.0;
  std::string tenant;
  std::string source;
  int priority = 0;
};

/// Exponential inter-arrival offsets for `count` events at `rate`/sec.
std::vector<double> PoissonOffsets(int64_t count, double rate, Rng* rng) {
  std::vector<double> offsets;
  offsets.reserve(static_cast<size_t>(count));
  double t = 0.0;
  for (int64_t i = 0; i < count; ++i) {
    // Inversion sampling; NextDouble is in [0, 1) so the log argument is
    // in (0, 1].
    t += -std::log(1.0 - rng->NextDouble()) / rate;
    offsets.push_back(t);
  }
  return offsets;
}

void SubmitOne(serve::Server* server, Scenario* scenario, Timer* clock,
               const Arrival& arrival) {
  ++scenario->submitted;
  serve::WireRequest wire;
  wire.id = scenario->name + "#" + std::to_string(scenario->submitted);
  wire.tenant = arrival.tenant;
  wire.source = arrival.source;
  wire.priority = arrival.priority;
  const double start_s = clock->Seconds();
  const Status submitted = server->SubmitWire(
      wire, [scenario, clock, start_s](const engine::Response& response) {
        scenario->latency_us.Observe(
            static_cast<int64_t>((clock->Seconds() - start_s) * 1e6));
        if (response.status.ok()) {
          scenario->completed.fetch_add(1);
        } else {
          scenario->failed.fetch_add(1);
        }
      });
  if (submitted.ok()) {
    ++scenario->admitted;
  } else if (submitted.code() == StatusCode::kResourceExhausted) {
    if (submitted.message().find("quota") != std::string::npos) {
      ++scenario->rejected_quota;
    } else {
      ++scenario->rejected_queue;
    }
  } else {
    ++scenario->rejected_other;
  }
}

/// Replays `arrivals` open-loop against their precomputed schedule, then
/// waits for every admitted request to complete.
void RunWave(serve::Server* server, Scenario* scenario, Timer* clock,
             const std::vector<Arrival>& arrivals) {
  const double start_s = clock->Seconds();
  for (const Arrival& arrival : arrivals) {
    const double due_s = start_s + arrival.at_seconds;
    const double now_s = clock->Seconds();
    if (now_s < due_s) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(due_s - now_s));
    }
    SubmitOne(server, scenario, clock, arrival);
  }
  while (server->in_flight() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

serve::ServeOptions BaseOptions(const bench::BenchOptions& options,
                                int workers, size_t queue_capacity) {
  serve::ServeOptions serve_options;
  serve_options.workers = workers;
  serve_options.queue_capacity = queue_capacity;
  serve_options.engine.device = options.Device();
  serve_options.store.load.scale = options.scale;
  serve_options.store.load.seed = options.seed;
  serve_options.store.load.dataset_cache_dir = options.cache_dir;
  for (const char* source : kHotSources) {
    serve_options.pinned_sources.push_back(source);
  }
  return serve_options;
}

void AddRow(metrics::Table* table, const Scenario& scenario) {
  table->AddRow(
      {scenario.name, std::to_string(scenario.submitted),
       std::to_string(scenario.admitted),
       std::to_string(scenario.rejected_quota),
       std::to_string(scenario.rejected_queue),
       std::to_string(scenario.completed.load()),
       std::to_string(scenario.failed.load()),
       metrics::FormatDouble(scenario.latency_us.Percentile(0.50), 1),
       metrics::FormatDouble(scenario.latency_us.Percentile(0.99), 1),
       metrics::FormatDouble(scenario.latency_us.Percentile(0.999), 1)});
}

int Run(int argc, char** argv) {
  bench::BenchOptions options = bench::BenchOptions::FromArgs(argc, argv);
  FlagParser flags;
  SPNET_CHECK(flags.Parse(argc, argv).ok());
  const int64_t requests = std::max<int64_t>(1, flags.GetInt("requests", 60));
  const double rate = flags.GetDouble("rate", 300.0);
  const int64_t burst = std::max<int64_t>(1, flags.GetInt("burst", 40));
  const size_t queue_capacity =
      static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("queue", 16)));
  const int workers = static_cast<int>(flags.GetInt("workers", 2));

  Timer clock;
  Rng rng(options.seed);
  std::deque<Scenario> scenarios;

  // -- steady: one server, a cold phase then a warm Poisson wave. The
  // cold phase is exactly one request per hot structure so every cold
  // sample pays the full planning pipeline (a plan-cache miss); the warm
  // wave re-queries the same structures and every sample is a hit. This
  // mirrors bench_engine_batch's cold/warm passes at the serving layer.
  Scenario& steady_cold = scenarios.emplace_back("steady-cold");
  Scenario& steady_warm = scenarios.emplace_back("steady-warm");
  std::string steady_counters_json;
  {
    serve::Server server(BaseOptions(options, workers, queue_capacity));
    SPNET_CHECK(server.Start().ok());
    std::vector<Arrival> cold_wave;
    for (const char* source : kHotSources) {
      Arrival arrival;
      arrival.tenant = "t0";
      arrival.source = source;
      cold_wave.push_back(std::move(arrival));
    }
    RunWave(&server, &steady_cold, &clock, cold_wave);

    const std::vector<double> offsets = PoissonOffsets(requests, rate, &rng);
    std::vector<Arrival> warm_wave;
    for (size_t i = 0; i < offsets.size(); ++i) {
      Arrival arrival;
      arrival.at_seconds = offsets[i];
      arrival.tenant = i % 2 == 0 ? "t0" : "t1";
      arrival.source = kHotSources[i % 3];
      warm_wave.push_back(std::move(arrival));
    }
    RunWave(&server, &steady_warm, &clock, warm_wave);
    steady_counters_json = server.StatsJson();
    server.Drain();
  }

  // -- bursty: the queue bound sheds the excess of each burst.
  Scenario& bursty = scenarios.emplace_back("bursty");
  {
    serve::Server server(BaseOptions(options, workers, queue_capacity));
    SPNET_CHECK(server.Start().ok());
    std::vector<Arrival> wave;
    for (int64_t b = 0; b < 3; ++b) {
      for (int64_t i = 0; i < burst; ++i) {
        Arrival arrival;
        // All of a burst is due at its start; 50 ms between bursts.
        arrival.at_seconds = static_cast<double>(b) * 0.05;
        arrival.tenant = "burster";
        arrival.source = kHotSources[static_cast<size_t>(i) % 3];
        wave.push_back(std::move(arrival));
      }
    }
    RunWave(&server, &bursty, &clock, wave);
    server.Drain();
  }

  // -- adversarial: a quota-capped flood next to a polite tenant.
  Scenario& adversarial = scenarios.emplace_back("adversarial");
  Scenario& polite = scenarios.emplace_back("adversarial-polite");
  {
    serve::ServeOptions serve_options =
        BaseOptions(options, workers, queue_capacity);
    serve::TenantQuota flood_quota;
    flood_quota.capacity = 8.0;
    flood_quota.refill_per_sec = 20.0;
    serve_options.tenant_quotas["flood"] = flood_quota;
    serve::Server server(serve_options);
    SPNET_CHECK(server.Start().ok());

    const std::vector<double> flood_offsets =
        PoissonOffsets(requests, 4.0 * rate, &rng);
    const std::vector<double> polite_offsets =
        PoissonOffsets(std::max<int64_t>(1, requests / 2), rate, &rng);
    // Merge the two tenants' schedules by arrival time.
    std::vector<Arrival> wave;
    size_t f = 0;
    size_t p = 0;
    while (f < flood_offsets.size() || p < polite_offsets.size()) {
      const bool take_flood =
          p >= polite_offsets.size() ||
          (f < flood_offsets.size() && flood_offsets[f] <= polite_offsets[p]);
      Arrival arrival;
      arrival.at_seconds =
          take_flood ? flood_offsets[f] : polite_offsets[p];
      arrival.tenant = take_flood ? "flood" : "polite";
      arrival.source = kHotSources[(f + p) % 3];
      wave.push_back(std::move(arrival));
      (take_flood ? f : p) += 1;
    }
    // One generator drives both tenants; route each arrival to its
    // scenario accumulator.
    const double start_s = clock.Seconds();
    for (const Arrival& arrival : wave) {
      const double due_s = start_s + arrival.at_seconds;
      const double now_s = clock.Seconds();
      if (now_s < due_s) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(due_s - now_s));
      }
      SubmitOne(&server,
                arrival.tenant == "flood" ? &adversarial : &polite, &clock,
                arrival);
    }
    while (server.in_flight() > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    server.Drain();
  }

  metrics::Table table({"scenario", "submitted", "admitted", "rej quota",
                        "rej queue", "completed", "failed", "p50 us",
                        "p99 us", "p999 us"});
  for (const Scenario& scenario : scenarios) AddRow(&table, scenario);

  std::printf("== serve traffic: open-loop latency percentiles "
              "(%lld req/wave, %g/s, queue %zu, %d workers) ==\n",
              static_cast<long long>(requests), rate, queue_capacity,
              workers);
  std::fputs(options.csv ? table.ToCsv().c_str() : table.ToString().c_str(),
             stdout);
  const double cold_p50 = steady_cold.latency_us.Percentile(0.50);
  const double warm_p50 = steady_warm.latency_us.Percentile(0.50);
  std::printf("steady p50: cold %.1f us -> warm %.1f us (%.2fx)\n", cold_p50,
              warm_p50, warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0);

  bench::BenchJson json("serve_traffic", "serving layer", options);
  json.AddTable("serve_latency_percentiles", table);
  json.WriteIfRequested();
  // The steady server's full metrics document goes to stderr for
  // debugging; the machine-readable percentiles live in the table above.
  std::fprintf(stderr, "steady server stats: %s\n",
               steady_counters_json.c_str());
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
