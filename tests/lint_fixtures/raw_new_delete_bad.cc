// Fixture: raw-new-delete must fire on both halves of a manual pair.
namespace spnet {

void Demo() {
  int* scratch = new int[16];
  delete[] scratch;
}

}  // namespace spnet
