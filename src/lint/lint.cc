#include "lint/lint.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/suppression.h"

namespace spnet {
namespace lint {
namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

/// Status/Result-returning entry points whose return value must not be
/// discarded. The compiler enforces this authoritatively via [[nodiscard]]
/// (-Wunused-result); this rule is the portable backstop that fires in any
/// build mode and inside templates the compiler never instantiates.
const std::set<std::string>& StatusReturningNames() {
  // clang-format off
  static const std::set<std::string> kNames = {
      "ArmFromSpec",    "BuildQueries",
      "BuildRequests",  "Check",
      "CheckClassification", "CheckGatherPlan",
      "CheckLimitedMergeOptions", "CheckPlanStructure",
      "CheckSplitPlan", "Compute",
      "Create",         "Execute",
      "LoadManifest",   "LoadManifestRequests",
      "LoadManifestSource", "MakeSweepCase",
      "MaterializeCached", "MaybeInjectFault",
      "ParallelFor",    "ParseManifest",
      "ParseMatrixMarket", "ParseRequestLine",
      "Pin",            "Plan",
      "ReadBinary",     "ReadMatrixMarket",
      "Register",       "RegisterAlias",
      "Run",            "RunDifferentialSweep",
      "Start",          "Submit",
      "SubmitWire",     "Validate",
      "VerifyReorganizerInvariants", "WriteBinary",
      "WriteMatrixMarket",
  };
  // clang-format on
  return kNames;
}

const std::set<std::string>& CtypeNames() {
  // clang-format off
  static const std::set<std::string> kNames = {
      "isalnum", "isalpha", "isblank", "iscntrl", "isdigit", "isgraph",
      "islower", "isprint", "ispunct", "isspace", "isupper", "isxdigit",
      "tolower", "toupper",
  };
  // clang-format on
  return kNames;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool PathEndsWith(const std::string& path, const char* suffix) {
  const size_t n = std::string(suffix).size();
  return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
}

bool PathMatchesAllowlist(const std::string& path,
                          const std::vector<std::string>& allowlist) {
  std::string normalized = path;
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  for (const std::string& entry : allowlist) {
    if (normalized.find(entry) != std::string::npos) return true;
  }
  return false;
}

/// Index of the `)` matching the `(` at `open`, or kNpos. Only rounds are
/// tracked: rules use this on argument/parameter lists.
size_t MatchingParen(const std::vector<Token>& code, size_t open) {
  int depth = 0;
  for (size_t i = open; i < code.size(); ++i) {
    if (IsPunct(code[i], "(")) ++depth;
    if (IsPunct(code[i], ")") && --depth == 0) return i;
  }
  return kNpos;
}

/// Shared state for one file's rule run: the comment-free token stream
/// (preprocessor directives retained — they are statement boundaries),
/// plus emission with suppression filtering.
class RuleContext {
 public:
  RuleContext(const std::string& path, const std::vector<Token>& tokens,
              const LintOptions& options)
      : path_(path), options_(options), suppressions_(tokens) {
    for (const Token& token : tokens) {
      if (token.kind != TokenKind::kComment) code_.push_back(token);
    }
  }

  const std::string& path() const { return path_; }
  const LintOptions& options() const { return options_; }
  const std::vector<Token>& code() const { return code_; }

  void Emit(const char* rule, Severity severity, int line,
            std::string message) {
    if (suppressions_.Allows(rule, line)) return;
    diagnostics_.push_back({path_, line, rule, severity, std::move(message)});
  }

  std::vector<Diagnostic> TakeDiagnostics() {
    std::sort(diagnostics_.begin(), diagnostics_.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                return a.line != b.line ? a.line < b.line : a.rule < b.rule;
              });
    return std::move(diagnostics_);
  }

 private:
  const std::string& path_;
  const LintOptions& options_;
  SuppressionIndex suppressions_;
  std::vector<Token> code_;
  std::vector<Diagnostic> diagnostics_;
};

// --- rule: discarded-status ------------------------------------------------

bool IsStatementStart(const std::vector<Token>& code, size_t i) {
  if (i == 0) return true;
  const Token& prev = code[i - 1];
  if (prev.kind == TokenKind::kPreproc) return true;
  // `:` is deliberately not a statement start: it would match the arms of
  // a ternary (`return ok ? Load(a) : Load(b);`), and calls directly after
  // labels/access specifiers are declaration context anyway.
  if (prev.kind == TokenKind::kPunct &&
      (prev.text == ";" || prev.text == "{" || prev.text == "}")) {
    return true;
  }
  return IsIdent(prev, "else") || IsIdent(prev, "do");
}

void CheckDiscardedStatus(RuleContext* ctx) {
  const std::vector<Token>& code = ctx->code();
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    if (!IsStatementStart(code, i)) continue;
    // Walk the call chain: ident ((:: | . | ->) ident)* `(`. A second bare
    // identifier (as in `Status Run(...)` declarations or `return Run()`)
    // breaks the pattern, so declarations never match.
    size_t last = i;
    size_t j = i + 1;
    while (j + 1 < code.size() && code[j].kind == TokenKind::kPunct &&
           (code[j].text == "::" || code[j].text == "." ||
            code[j].text == "->") &&
           code[j + 1].kind == TokenKind::kIdentifier) {
      last = j + 1;
      j += 2;
    }
    if (j >= code.size() || !IsPunct(code[j], "(")) continue;
    if (StatusReturningNames().count(code[last].text) == 0) continue;
    const size_t close = MatchingParen(code, j);
    if (close == kNpos || close + 1 >= code.size()) continue;
    if (!IsPunct(code[close + 1], ";")) continue;
    ctx->Emit("discarded-status", Severity::kError, code[i].line,
              "result of Status/Result-returning call '" + code[last].text +
                  "' is discarded; assign it, return it, or wrap the call "
                  "in SPNET_CHECK_OK if failure is impossible here");
  }
}

// --- rule: raw-new-delete --------------------------------------------------

void CheckRawNewDelete(RuleContext* ctx) {
  if (PathMatchesAllowlist(ctx->path(),
                           ctx->options().raw_new_delete_allowlist)) {
    return;
  }
  const std::vector<Token>& code = ctx->code();
  for (size_t i = 0; i < code.size(); ++i) {
    const bool is_new = IsIdent(code[i], "new");
    const bool is_delete = IsIdent(code[i], "delete");
    if (!is_new && !is_delete) continue;
    if (i > 0) {
      const Token& prev = code[i - 1];
      // `= delete` declares a deleted function; `operator new/delete`
      // declarations customize allocation rather than performing it.
      if (is_delete && IsPunct(prev, "=")) continue;
      if (IsIdent(prev, "operator")) continue;
    }
    ctx->Emit("raw-new-delete", Severity::kError, code[i].line,
              std::string("raw '") + (is_new ? "new" : "delete") +
                  "' outside an allow-listed file; use std::make_unique / "
                  "containers, or annotate an intentional leak with "
                  "spnet-lint: allow(raw-new-delete)");
  }
}

// --- rule: char-ctype ------------------------------------------------------

void CheckCharCtype(RuleContext* ctx) {
  const std::vector<Token>& code = ctx->code();
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    if (CtypeNames().count(code[i].text) == 0) continue;
    if (!IsPunct(code[i + 1], "(")) continue;
    const size_t close = MatchingParen(code, i + 1);
    if (close == kNpos || close == i + 2) continue;  // declaration-ish: skip
    bool has_unsigned_cast = false;
    for (size_t j = i + 2; j < close; ++j) {
      if (IsIdent(code[j], "unsigned")) {
        has_unsigned_cast = true;
        break;
      }
    }
    if (has_unsigned_cast) continue;
    ctx->Emit("char-ctype", Severity::kError, code[i].line,
              "'" + code[i].text +
                  "' on a plain char is UB for negative values; cast the "
                  "argument to unsigned char first");
  }
}

// --- rule: global-mutable-state --------------------------------------------

/// Token-level scope classification. Only namespace-level accuracy
/// matters: scopes nested inside a function are never analyzed, so their
/// classification is irrelevant as long as braces stay balanced.
enum class ScopeKind { kNamespace, kType, kBlock, kInit };

bool RunContainsIdent(const std::vector<Token>& run, const char* text) {
  for (const Token& t : run) {
    if (IsIdent(t, text)) return true;
  }
  return false;
}

bool RunDeclaresGuardedOrImmutableState(const std::vector<Token>& run) {
  static const std::set<std::string> kExemptingIdents = {
      // Immutable / write-once.
      "const", "constexpr", "constinit",
      // Per-thread state is not shared.
      "thread_local",
      // Synchronized holders: the guard is the declaration itself.
      "atomic", "atomic_flag", "Mutex", "mutex", "shared_mutex",
      "once_flag", "CondVar", "condition_variable",
      // Clang thread-safety annotation: the variable names its lock.
      "GUARDED_BY", "PT_GUARDED_BY",
  };
  for (const Token& t : run) {
    if (t.kind == TokenKind::kIdentifier && kExemptingIdents.count(t.text)) {
      return true;
    }
  }
  return false;
}

void AnalyzeNamespaceScopeRun(RuleContext* ctx,
                              const std::vector<Token>& run) {
  if (run.empty()) return;
  // Not variable declarations: type/alias/template machinery.
  static const std::set<std::string> kNonVariableIdents = {
      "using", "typedef", "template", "static_assert", "friend",
      "namespace", "operator", "extern",
  };
  for (const Token& t : run) {
    if (t.kind == TokenKind::kIdentifier && kNonVariableIdents.count(t.text)) {
      return;
    }
  }
  const Token& first = run.front();
  if (IsIdent(first, "class") || IsIdent(first, "struct") ||
      IsIdent(first, "enum") || IsIdent(first, "union")) {
    return;  // forward declaration
  }
  if (RunDeclaresGuardedOrImmutableState(run)) return;
  // A `(` before any `=` means a function declaration (parameter list) or
  // a direct-init call — treat both as non-findings; direct-init of a
  // mutable global still trips on the missing const/guard exemptions
  // above only via `=`/brace forms, which covers this codebase's idiom.
  for (const Token& t : run) {
    if (IsPunct(t, "=")) break;
    if (IsPunct(t, "(")) return;
  }
  if (run.size() < 2) return;  // `;` noise, not a declaration
  ctx->Emit("global-mutable-state", Severity::kError, first.line,
            "mutable namespace-scope state; make it const/constexpr, guard "
            "it with a Mutex (and GUARDED_BY), use std::atomic, or move it "
            "into a function-local static");
}

void CheckGlobalMutableState(RuleContext* ctx) {
  const std::vector<Token>& code = ctx->code();
  std::vector<ScopeKind> scopes;
  std::vector<Token> run;
  const auto at_namespace_scope = [&scopes] {
    for (const ScopeKind kind : scopes) {
      if (kind != ScopeKind::kNamespace) return false;
    }
    return true;
  };
  for (size_t i = 0; i < code.size(); ++i) {
    const Token& token = code[i];
    if (token.kind == TokenKind::kPreproc) {
      if (at_namespace_scope()) run.clear();
      continue;
    }
    if (IsPunct(token, "{")) {
      ScopeKind kind = ScopeKind::kBlock;
      const bool ns = at_namespace_scope();
      if (ns) {
        const Token* prev = run.empty() ? nullptr : &run.back();
        if (RunContainsIdent(run, "namespace") ||
            (prev != nullptr && prev->kind == TokenKind::kString &&
             RunContainsIdent(run, "extern"))) {
          kind = ScopeKind::kNamespace;  // incl. extern "C" linkage blocks
        } else if (RunContainsIdent(run, "class") ||
                   RunContainsIdent(run, "struct") ||
                   RunContainsIdent(run, "union") ||
                   RunContainsIdent(run, "enum")) {
          kind = ScopeKind::kType;
        } else if (prev != nullptr && IsPunct(*prev, ")")) {
          kind = ScopeKind::kBlock;  // function body
        } else if (prev != nullptr &&
                   (IsPunct(*prev, "=") || IsPunct(*prev, ",") ||
                    prev->kind == TokenKind::kIdentifier)) {
          kind = ScopeKind::kInit;  // `= {...}` or `name{...}` initializer
        }
        if (kind != ScopeKind::kInit) run.clear();
      }
      scopes.push_back(kind);
      continue;
    }
    if (IsPunct(token, "}")) {
      const ScopeKind kind =
          scopes.empty() ? ScopeKind::kBlock : scopes.back();
      if (!scopes.empty()) scopes.pop_back();
      if (at_namespace_scope() && kind != ScopeKind::kInit) run.clear();
      continue;
    }
    if (!at_namespace_scope()) continue;
    if (IsPunct(token, ";")) {
      AnalyzeNamespaceScopeRun(ctx, run);
      run.clear();
      continue;
    }
    run.push_back(token);
  }
}

// --- rule: relaxed-atomic --------------------------------------------------

void CheckRelaxedAtomic(RuleContext* ctx) {
  if (PathMatchesAllowlist(ctx->path(),
                           ctx->options().relaxed_atomic_allowlist)) {
    return;
  }
  for (const Token& token : ctx->code()) {
    if (IsIdent(token, "memory_order_relaxed")) {
      ctx->Emit("relaxed-atomic", Severity::kWarning, token.line,
                "std::memory_order_relaxed outside the audited fast paths; "
                "default to sequential consistency or add this file to the "
                "allowlist after review");
    }
  }
}

// --- rule: exec-context-threading ------------------------------------------

void CheckExecContextThreading(RuleContext* ctx) {
  const std::vector<Token>& code = ctx->code();
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    if (!IsIdent(code[i], "PlanImpl") && !IsIdent(code[i], "ComputeImpl")) {
      continue;
    }
    if (!IsPunct(code[i + 1], "(")) continue;
    const size_t close = MatchingParen(code, i + 1);
    if (close == kNpos || close + 1 >= code.size()) continue;
    // Declarations and definitions carry a trailing const/override/final
    // or open a body; call sites (the NVI wrappers) are followed by `;`,
    // `)` or an operator and are not this rule's business.
    const Token& after = code[close + 1];
    const bool is_declaration = IsIdent(after, "const") ||
                                IsIdent(after, "override") ||
                                IsIdent(after, "final") ||
                                IsPunct(after, "{");
    if (!is_declaration) continue;
    bool has_ctx = false;
    for (size_t j = i + 2; j < close; ++j) {
      if (IsIdent(code[j], "ExecContext")) {
        has_ctx = true;
        break;
      }
    }
    if (has_ctx) continue;
    ctx->Emit("exec-context-threading", Severity::kError, code[i].line,
              "'" + code[i].text +
                  "' override does not thread ExecContext*; every "
                  "plan/compute hook must accept the context so tracing and "
                  "metrics flow through the whole pipeline");
  }
}

// --- rule: legacy-batch-query ----------------------------------------------

/// engine::BatchQuery is the legacy batch-API type: src/engine still
/// defines it and converts it for old callers, but everything else must
/// build engine::Request via RequestBuilder so tenant/priority/deadline
/// metadata and schema versioning flow through. Flags constructions —
/// `BatchQuery q`, `BatchQuery{...}`, `BatchQuery(...)` — not mentions:
/// passing `const BatchQuery&` through the legacy adapters stays legal.
void CheckLegacyBatchQuery(RuleContext* ctx) {
  std::string normalized = ctx->path();
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  if (normalized.find("src/engine") != std::string::npos) return;
  const std::vector<Token>& code = ctx->code();
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    if (!IsIdent(code[i], "BatchQuery")) continue;
    // `struct BatchQuery {...}` / `class BatchQuery;` are (forward)
    // declarations of the type itself, not constructions.
    if (i > 0 && (IsIdent(code[i - 1], "struct") ||
                  IsIdent(code[i - 1], "class"))) {
      continue;
    }
    const Token& next = code[i + 1];
    if (next.kind != TokenKind::kIdentifier && !IsPunct(next, "{") &&
        !IsPunct(next, "(")) {
      continue;
    }
    ctx->Emit("legacy-batch-query", Severity::kError, code[i].line,
              "direct engine::BatchQuery construction outside src/engine; "
              "build an engine::Request with engine::RequestBuilder "
              "(src/engine/request.h) and run it through "
              "BatchRunner::Execute");
  }
}

// --- rule: include-iostream ------------------------------------------------

void CheckIncludeIostream(RuleContext* ctx, const std::vector<Token>& tokens) {
  if (!PathEndsWith(ctx->path(), ".h") && !PathEndsWith(ctx->path(), ".hpp")) {
    return;
  }
  for (const Token& token : tokens) {
    if (token.kind != TokenKind::kPreproc) continue;
    std::string squeezed;
    for (const char c : token.text) {
      if (c != ' ' && c != '\t') squeezed.push_back(c);
    }
    if (squeezed.rfind("#include<iostream>", 0) == 0 ||
        squeezed.rfind("#include\"iostream\"", 0) == 0) {
      ctx->Emit("include-iostream", Severity::kError, token.line,
                "<iostream> in a header drags static iostream initializers "
                "into every TU; include it in the .cc or use <ostream> / "
                "<cstdio>");
    }
  }
}

// --- rule: unsafe-planner-arithmetic ---------------------------------------

/// The int64 workload quantities whose sums/products feed buffer sizing and
/// tier classification. PR 7's sweep showed these wrap in practice on
/// hub-heavy inputs, so raw arithmetic on them is a latent correctness bug:
/// every combination must go through SatAddI64/SatMulI64.
const std::set<std::string>& AuditedPlannerQuantities() {
  static const std::set<std::string> kNames = {"pair_work", "flops",
                                               "output_nnz", "row_chat"};
  return kNames;
}

/// True when `code[i]` sits in binary-operator position: the previous
/// token can terminate an expression. Rules out unary `*`/`+` (derefs,
/// pointer declarators after keywords, leading signs).
bool InBinaryContext(const std::vector<Token>& code, size_t i) {
  if (i == 0) return false;
  const Token& prev = code[i - 1];
  if (prev.kind == TokenKind::kIdentifier) return true;
  if (prev.kind == TokenKind::kNumber) return true;
  return IsPunct(prev, "]") || IsPunct(prev, ")");
}

/// Audited name of the operand ending at `code[i]` (the token just before
/// the operator), or empty: walks back over one balanced `[...]`
/// subscript, then expects an audited identifier. A `)` bails — the
/// interesting expression is inside a call/cast whose result type is the
/// callee's business (`static_cast<double>(flops) * x` is fine).
std::string LeftAuditedOperand(const std::vector<Token>& code, size_t i) {
  size_t j = i;
  if (IsPunct(code[j], "]")) {
    int depth = 0;
    while (true) {
      if (IsPunct(code[j], "]")) ++depth;
      if (IsPunct(code[j], "[") && --depth == 0) break;
      if (j == 0) return "";
      --j;
    }
    if (j == 0) return "";
    --j;
  }
  if (code[j].kind == TokenKind::kIdentifier &&
      AuditedPlannerQuantities().count(code[j].text) > 0) {
    return code[j].text;
  }
  return "";
}

/// Audited name of the operand starting at `code[i]` (just after the
/// operator), or empty: follows the member chain `a.b->c::d` and tests the
/// LAST identifier, so `workload.row_chat` is audited but `row_chat.size()`
/// chains ending elsewhere are not.
std::string RightAuditedOperand(const std::vector<Token>& code, size_t i) {
  if (i >= code.size() || code[i].kind != TokenKind::kIdentifier) return "";
  size_t last = i;
  size_t j = i + 1;
  while (j + 1 < code.size() && code[j].kind == TokenKind::kPunct &&
         (code[j].text == "." || code[j].text == "->" ||
          code[j].text == "::") &&
         code[j + 1].kind == TokenKind::kIdentifier) {
    last = j + 1;
    j += 2;
  }
  // A call chain (`.size()`, `.begin()`) is not the quantity itself.
  if (j < code.size() && IsPunct(code[j], "(")) return "";
  if (AuditedPlannerQuantities().count(code[last].text) > 0) {
    return code[last].text;
  }
  return "";
}

void CheckUnsafePlannerArithmetic(RuleContext* ctx) {
  std::string normalized = ctx->path();
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  const bool in_scope = normalized.find("src/spgemm") != std::string::npos ||
                        normalized.find("src/core") != std::string::npos;
  if (!in_scope) return;
  const std::vector<Token>& code = ctx->code();
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kPunct) continue;
    const std::string& op = code[i].text;
    const bool compound = op == "+=" || op == "*=";
    if (op != "+" && op != "*" && !compound) continue;
    if (!InBinaryContext(code, i)) continue;
    std::string name = LeftAuditedOperand(code, i - 1);
    if (name.empty()) name = RightAuditedOperand(code, i + 1);
    if (name.empty()) continue;
    const bool add = op == "+" || op == "+=";
    ctx->Emit("unsafe-planner-arithmetic", Severity::kError, code[i].line,
              "raw '" + op + "' on audited planner quantity '" + name +
                  "'; use " + (add ? "SatAddI64" : "SatMulI64") +
                  " from common/math_util.h so overflow saturates instead of "
                  "wrapping");
  }
}

// --- rule: lock-discipline --------------------------------------------------

/// std components that bypass the annotated lock vocabulary. spnet::Mutex /
/// MutexLock / CondVar (common/mutex.h) are the only sanctioned spellings:
/// they carry CAPABILITY/SCOPED_CAPABILITY so Clang's thread-safety
/// analysis sees every acquisition.
const std::set<std::string>& ForbiddenStdLockNames() {
  static const std::set<std::string> kNames = {
      "mutex",        "recursive_mutex",
      "timed_mutex",  "recursive_timed_mutex",
      "shared_mutex", "shared_timed_mutex",
      "lock_guard",   "unique_lock",
      "scoped_lock",  "shared_lock",
      "condition_variable", "condition_variable_any",
  };
  return kNames;
}

void CheckLockDiscipline(RuleContext* ctx) {
  const std::vector<Token>& code = ctx->code();
  // Part (a): direct std lock primitives outside the wrapper itself.
  if (!PathEndsWith(ctx->path(), "common/mutex.h")) {
    for (size_t i = 0; i + 2 < code.size(); ++i) {
      if (!IsIdent(code[i], "std") || !IsPunct(code[i + 1], "::")) continue;
      if (code[i + 2].kind != TokenKind::kIdentifier) continue;
      if (ForbiddenStdLockNames().count(code[i + 2].text) == 0) continue;
      ctx->Emit("lock-discipline", Severity::kError, code[i].line,
                "direct std::" + code[i + 2].text +
                    " bypasses thread-safety annotations; use spnet::Mutex / "
                    "MutexLock / CondVar from common/mutex.h");
    }
  }
  // Part (b): every class with Mutex members must GUARDED_BY something —
  // a lock protecting no declared data is either dead or undocumented.
  struct ClassScope {
    bool is_class = false;
    std::vector<std::pair<int, std::string>> mutex_members;  // line, name
    int guarded = 0;
  };
  std::vector<ClassScope> scopes;
  bool pending_class = false;
  const auto innermost_class = [&scopes]() -> ClassScope* {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->is_class) return &*it;
    }
    return nullptr;
  };
  for (size_t i = 0; i < code.size(); ++i) {
    const Token& token = code[i];
    if (token.kind == TokenKind::kIdentifier) {
      if ((token.text == "class" || token.text == "struct") &&
          (i == 0 || !IsIdent(code[i - 1], "enum"))) {
        pending_class = true;
      } else if (token.text == "GUARDED_BY" || token.text == "PT_GUARDED_BY") {
        ClassScope* cls = innermost_class();
        if (cls != nullptr) ++cls->guarded;
      } else if (token.text == "Mutex" && !scopes.empty() &&
                 scopes.back().is_class && i + 2 < code.size() &&
                 code[i + 1].kind == TokenKind::kIdentifier &&
                 (IsPunct(code[i + 2], ";") || IsPunct(code[i + 2], "{"))) {
        // Member pattern `Mutex name;` (`{...}` init included); `Mutex*` /
        // `Mutex&` parameters and locals inside method bodies don't match
        // because their enclosing scope is a block, not the class.
        scopes.back().mutex_members.emplace_back(code[i].line,
                                                 code[i + 1].text);
      }
      continue;
    }
    if (token.kind != TokenKind::kPunct) continue;
    if (token.text == ";" || token.text == "(" || token.text == ")" ||
        token.text == "=") {
      pending_class = false;  // forward decl / template param / expression
      continue;
    }
    if (token.text == "{") {
      ClassScope scope;
      scope.is_class = pending_class;
      pending_class = false;
      scopes.push_back(scope);
      continue;
    }
    if (token.text == "}") {
      if (scopes.empty()) continue;
      const ClassScope done = scopes.back();
      scopes.pop_back();
      if (!done.is_class || done.mutex_members.empty() || done.guarded > 0) {
        continue;
      }
      for (const auto& [line, name] : done.mutex_members) {
        ctx->Emit("lock-discipline", Severity::kError, line,
                  "Mutex member '" + name +
                      "' protects nothing: no GUARDED_BY/PT_GUARDED_BY in "
                      "the class body names it (see "
                      "common/thread_annotations.h)");
      }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"discarded-status", Severity::kError,
       "Status/Result return values must be consumed"},
      {"raw-new-delete", Severity::kError,
       "no raw new/delete outside allow-listed files"},
      {"char-ctype", Severity::kError,
       "<cctype> classifiers require an unsigned char cast"},
      {"global-mutable-state", Severity::kError,
       "namespace-scope state must be immutable, atomic or mutex-guarded"},
      {"relaxed-atomic", Severity::kWarning,
       "memory_order_relaxed only in audited fast-path files"},
      {"exec-context-threading", Severity::kError,
       "PlanImpl/ComputeImpl overrides must accept ExecContext*"},
      {"include-iostream", Severity::kError,
       "headers must not include <iostream>"},
      {"legacy-batch-query", Severity::kError,
       "construct engine::Request via RequestBuilder, not the legacy "
       "BatchQuery, outside src/engine"},
      {"unsafe-planner-arithmetic", Severity::kError,
       "planner int64 quantities (pair_work/flops/output_nnz/row_chat) must "
       "combine via SatAddI64/SatMulI64 in src/spgemm and src/core"},
      {"lock-discipline", Severity::kError,
       "std lock primitives only inside common/mutex.h; Mutex members need "
       "a GUARDED_BY in the class body"},
      {"layering-violation", Severity::kError,
       "cross-module includes must follow the LAYERING.md allowed-edges "
       "manifest"},
      {"include-cycle", Severity::kError,
       "the first-party include graph must stay acyclic"},
  };
  return kRules;
}

LintOptions::LintOptions()
    : relaxed_atomic_allowlist({
          "src/common/parallel",
          "src/engine/plan_cache",
          "src/metrics/registry",
          "src/verify/fault_injection",
      }) {}

std::vector<Diagnostic> LintSource(const std::string& path,
                                   const std::string& content,
                                   const LintOptions& options) {
  const std::vector<Token> tokens = Tokenize(content);
  RuleContext ctx(path, tokens, options);
  CheckDiscardedStatus(&ctx);
  CheckRawNewDelete(&ctx);
  CheckCharCtype(&ctx);
  CheckGlobalMutableState(&ctx);
  CheckRelaxedAtomic(&ctx);
  CheckExecContextThreading(&ctx);
  CheckIncludeIostream(&ctx, tokens);
  CheckLegacyBatchQuery(&ctx);
  CheckUnsafePlannerArithmetic(&ctx);
  CheckLockDiscipline(&ctx);
  return ctx.TakeDiagnostics();
}

}  // namespace lint
}  // namespace spnet
