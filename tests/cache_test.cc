#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/logging.h"
#include "datasets/cache.h"
#include "sparse/csr_matrix.h"

namespace spnet {
namespace datasets {
namespace {

RealWorldSpec TinySpec() {
  auto spec = FindDataset("as-caida");
  SPNET_CHECK(spec.ok());
  return *spec;
}

TEST(CacheTest, BypassedWhenDirEmpty) {
  auto direct = Materialize(TinySpec(), 0.05, 7);
  auto cached = MaterializeCached(TinySpec(), 0.05, "", 7);
  ASSERT_TRUE(direct.ok() && cached.ok());
  EXPECT_TRUE(sparse::CsrApproxEqual(*direct, *cached, 0.0));
}

TEST(CacheTest, SecondLoadComesFromDisk) {
  const std::string dir = ::testing::TempDir();
  const RealWorldSpec spec = TinySpec();
  const std::string path = CachePath(spec, 0.05, dir, 9);
  std::remove(path.c_str());

  auto first = MaterializeCached(spec, 0.05, dir, 9);
  ASSERT_TRUE(first.ok());
  // The entry now exists on disk.
  std::ifstream probe(path, std::ios::binary);
  EXPECT_TRUE(probe.good());
  probe.close();

  auto second = MaterializeCached(spec, 0.05, dir, 9);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(sparse::CsrApproxEqual(*first, *second, 0.0));
  std::remove(path.c_str());
}

TEST(CacheTest, DistinctParametersDistinctEntries) {
  const std::string dir = "/tmp";
  const RealWorldSpec spec = TinySpec();
  EXPECT_NE(CachePath(spec, 0.05, dir, 1), CachePath(spec, 0.05, dir, 2));
  EXPECT_NE(CachePath(spec, 0.05, dir, 1), CachePath(spec, 0.10, dir, 1));
}

TEST(CacheTest, CorruptedEntryIsRegenerated) {
  const std::string dir = ::testing::TempDir();
  const RealWorldSpec spec = TinySpec();
  const std::string path = CachePath(spec, 0.05, dir, 11);
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage";
  }
  auto m = MaterializeCached(spec, 0.05, dir, 11);
  ASSERT_TRUE(m.ok());
  auto direct = Materialize(spec, 0.05, 11);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(sparse::CsrApproxEqual(*m, *direct, 0.0));
  std::remove(path.c_str());
}

TEST(CacheTest, UnwritableDirStillReturnsMatrix) {
  auto m = MaterializeCached(TinySpec(), 0.05, "/nonexistent-dir-xyz", 13);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->nnz(), 0);
}

}  // namespace
}  // namespace datasets
}  // namespace spnet
