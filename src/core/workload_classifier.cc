#include "core/workload_classifier.h"

#include <algorithm>

namespace spnet {
namespace core {

using sparse::Index;

Classification Classify(const spgemm::Workload& workload,
                        const ReorganizerConfig& config) {
  Classification c;

  int64_t nonzero_pairs = 0;
  for (int64_t w : workload.pair_work) {
    if (w > 0) ++nonzero_pairs;
  }
  const double mean_pair_work =
      nonzero_pairs > 0
          ? static_cast<double>(workload.flops) /
                static_cast<double>(nonzero_pairs)
          : 0.0;
  c.dominator_threshold = std::max<int64_t>(
      1, static_cast<int64_t>(config.alpha * mean_pair_work));

  for (size_t i = 0; i < workload.pair_work.size(); ++i) {
    const int64_t work = workload.pair_work[i];
    if (work == 0) continue;
    const Index pair = static_cast<Index>(i);
    if (work > c.dominator_threshold) {
      c.dominators.push_back(pair);
    } else if (workload.b_row_nnz[i] < 32) {
      c.low_performers.push_back(pair);
    } else {
      c.normals.push_back(pair);
    }
  }

  int64_t nonzero_rows = 0;
  for (int64_t v : workload.row_chat) {
    if (v > 0) ++nonzero_rows;
  }
  const double mean_row_chat =
      nonzero_rows > 0 ? static_cast<double>(workload.flops) /
                             static_cast<double>(nonzero_rows)
                       : 0.0;
  c.limit_row_threshold = std::max<int64_t>(
      1, static_cast<int64_t>(config.beta * mean_row_chat));
  for (size_t r = 0; r < workload.row_chat.size(); ++r) {
    if (workload.row_chat[r] > c.limit_row_threshold) {
      c.limited_rows.push_back(static_cast<Index>(r));
    }
  }
  return c;
}

}  // namespace core
}  // namespace spnet
