// Fixture: the same violations as lock_discipline_bad.cc, each carrying
// an inline allow marker.

#include <mutex>

#include "common/mutex.h"

namespace spnet {

class BadStdLock {
 public:
  void Add(long v) {
    // spnet-lint: allow(lock-discipline)
    std::lock_guard<std::mutex> lock(mu_);
    total_ += v;
  }

 private:
  std::mutex mu_;  // spnet-lint: allow(lock-discipline)
  long total_ = 0;
};

class BadUnguarded {
 public:
  void Bump() {
    MutexLock lock(&mu_);
    ++count_;
  }

 private:
  Mutex mu_;  // spnet-lint: allow(lock-discipline)
  long count_ = 0;
};

}  // namespace spnet
