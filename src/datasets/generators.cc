#include "datasets/generators.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"

namespace spnet {
namespace datasets {

using sparse::CooMatrix;
using sparse::CsrMatrix;
using sparse::Index;

namespace {

// Packs an edge into one 64-bit key for dedup.
uint64_t EdgeKey(Index r, Index c) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(r)) << 32) |
         static_cast<uint32_t>(c);
}

// Draws one R-MAT edge by quadrant descent.
void RmatEdge(const RmatParams& p, Rng* rng, Index* row, Index* col) {
  Index r = 0;
  Index c = 0;
  for (int level = p.scale - 1; level >= 0; --level) {
    const double u = rng->NextDouble();
    if (u < p.a) {
      // top-left: nothing to add
    } else if (u < p.a + p.b) {
      c |= (Index{1} << level);
    } else if (u < p.a + p.b + p.c) {
      r |= (Index{1} << level);
    } else {
      r |= (Index{1} << level);
      c |= (Index{1} << level);
    }
  }
  *row = r;
  *col = c;
}

}  // namespace

Result<CsrMatrix> GenerateRmat(const RmatParams& p) {
  if (p.scale < 1 || p.scale > 30) {
    return Status::InvalidArgument("rmat scale out of range: " +
                                   std::to_string(p.scale));
  }
  if (p.edge_count < 0) {
    return Status::InvalidArgument("negative edge count");
  }
  const double prob_sum = p.a + p.b + p.c + p.d;
  if (std::fabs(prob_sum - 1.0) > 1e-6) {
    return Status::InvalidArgument("rmat probabilities must sum to 1, got " +
                                   std::to_string(prob_sum));
  }
  const Index n = Index{1} << p.scale;
  Rng rng(p.seed);

  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(p.edge_count) * 2);
  CooMatrix coo(n, n);
  coo.Reserve(p.edge_count);

  // With redraw_duplicates, cap total attempts so pathological parameter
  // choices (tiny matrix, huge edge count) terminate.
  const int64_t max_attempts = p.edge_count * 8 + 64;
  int64_t attempts = 0;
  int64_t accepted = 0;
  while (accepted < p.edge_count && attempts < max_attempts) {
    ++attempts;
    Index r = 0, c = 0;
    RmatEdge(p, &rng, &r, &c);
    const uint64_t key = EdgeKey(r, c);
    if (seen.count(key) > 0) {
      if (p.redraw_duplicates) continue;
      ++accepted;  // duplicate silently dropped but counted as a draw
      continue;
    }
    seen.insert(key);
    const double v = p.weighted ? (rng.NextDouble() + 1e-6) : 1.0;
    coo.Add(r, c, v);
    ++accepted;
  }
  return CsrMatrix::FromCoo(coo);
}

Result<CsrMatrix> GeneratePowerLaw(const PowerLawParams& p) {
  if (p.rows <= 0 || p.cols <= 0) {
    return Status::InvalidArgument("power-law generator needs positive dims");
  }
  if (p.nnz < 0 ||
      p.nnz > static_cast<int64_t>(p.rows) * static_cast<int64_t>(p.cols)) {
    return Status::InvalidArgument("nnz out of range");
  }
  Rng rng(p.seed);

  // --- Row degrees: Zipf over ranks, scaled to sum ~ nnz. -------------------
  // weight(rank k) = (k+1)^-row_skew; degrees rounded with a running
  // remainder so the total lands exactly on nnz.
  std::vector<double> row_weight(static_cast<size_t>(p.rows));
  double wsum = 0.0;
  for (Index i = 0; i < p.rows; ++i) {
    const double w = std::pow(static_cast<double>(i) + 1.0, -p.row_skew);
    row_weight[static_cast<size_t>(i)] = w;
    wsum += w;
  }
  std::vector<int64_t> degree(static_cast<size_t>(p.rows), 0);
  double carry = 0.0;
  int64_t assigned = 0;
  for (Index i = 0; i < p.rows; ++i) {
    const double exact =
        static_cast<double>(p.nnz) * row_weight[static_cast<size_t>(i)] / wsum +
        carry;
    int64_t d = static_cast<int64_t>(exact);
    carry = exact - static_cast<double>(d);
    d = std::min<int64_t>(d, p.cols);  // a row cannot exceed cols entries
    degree[static_cast<size_t>(i)] = d;
    assigned += d;
  }
  // Distribute any shortfall (from the per-row cap) round-robin.
  for (Index i = 0; assigned < p.nnz && p.rows > 0;
       i = (i + 1) % p.rows) {
    if (degree[static_cast<size_t>(i)] < p.cols) {
      degree[static_cast<size_t>(i)]++;
      ++assigned;
    }
  }

  // Shuffle which physical row gets which rank so hubs are not clustered
  // at index 0 (matters for banded access patterns downstream).
  std::vector<Index> row_of_rank(static_cast<size_t>(p.rows));
  for (Index i = 0; i < p.rows; ++i) row_of_rank[static_cast<size_t>(i)] = i;
  for (Index i = p.rows - 1; i > 0; --i) {
    const Index j = static_cast<Index>(rng.NextBounded(
        static_cast<uint64_t>(i) + 1));
    std::swap(row_of_rank[static_cast<size_t>(i)],
              row_of_rank[static_cast<size_t>(j)]);
  }

  // --- Column popularity: cumulative Zipf CDF, inverse-sampled. -------------
  std::vector<double> col_cdf(static_cast<size_t>(p.cols));
  double csum = 0.0;
  for (Index j = 0; j < p.cols; ++j) {
    csum += std::pow(static_cast<double>(j) + 1.0, -p.col_skew);
    col_cdf[static_cast<size_t>(j)] = csum;
  }
  // Mapping from popularity rank to physical column. With align_hubs the
  // row-rank permutation is reused so node i's row degree and column
  // popularity share the same rank — hub nodes are hubs on both sides.
  std::vector<Index> col_of_rank(static_cast<size_t>(p.cols));
  if (p.align_hubs && p.rows == p.cols) {
    col_of_rank = row_of_rank;
  } else {
    for (Index j = 0; j < p.cols; ++j) col_of_rank[static_cast<size_t>(j)] = j;
    for (Index j = p.cols - 1; j > 0; --j) {
      const Index k = static_cast<Index>(rng.NextBounded(
          static_cast<uint64_t>(j) + 1));
      std::swap(col_of_rank[static_cast<size_t>(j)],
                col_of_rank[static_cast<size_t>(k)]);
    }
  }

  CooMatrix coo(p.rows, p.cols);
  coo.Reserve(p.nnz);
  std::unordered_set<uint64_t> row_seen;
  for (Index rank = 0; rank < p.rows; ++rank) {
    const Index r = row_of_rank[static_cast<size_t>(rank)];
    const int64_t d = degree[static_cast<size_t>(rank)];
    row_seen.clear();
    int64_t emitted = 0;
    int64_t attempts = 0;
    const int64_t max_attempts = d * 16 + 16;
    while (emitted < d && attempts < max_attempts) {
      ++attempts;
      const double u = rng.NextDouble() * csum;
      const auto it =
          std::lower_bound(col_cdf.begin(), col_cdf.end(), u);
      Index col_rank =
          static_cast<Index>(std::distance(col_cdf.begin(), it));
      if (col_rank >= p.cols) col_rank = p.cols - 1;
      const Index c = col_of_rank[static_cast<size_t>(col_rank)];
      if (!row_seen.insert(EdgeKey(0, c)).second) continue;
      const double v = p.weighted ? (rng.NextDouble() + 1e-6) : 1.0;
      coo.Add(r, c, v);
      ++emitted;
    }
    // Dense-row fallback: hubs that exhausted sampling get sequential fill.
    for (Index c = 0; emitted < d && c < p.cols; ++c) {
      if (row_seen.insert(EdgeKey(0, c)).second) {
        coo.Add(r, c, p.weighted ? (rng.NextDouble() + 1e-6) : 1.0);
        ++emitted;
      }
    }
  }
  return CsrMatrix::FromCoo(coo);
}

Result<CsrMatrix> GenerateQuasiRegular(const QuasiRegularParams& p) {
  if (p.n <= 0) {
    return Status::InvalidArgument("quasi-regular generator needs n > 0");
  }
  if (p.nnz < 0 ||
      p.nnz > static_cast<int64_t>(p.n) * static_cast<int64_t>(p.n)) {
    return Status::InvalidArgument("nnz out of range");
  }
  Rng rng(p.seed);
  const double mean_deg = static_cast<double>(p.nnz) / p.n;
  const int64_t band = std::max<int64_t>(
      8, static_cast<int64_t>(p.band_frac * static_cast<double>(p.n)));

  CooMatrix coo(p.n, p.n);
  coo.Reserve(p.nnz);
  std::unordered_set<uint64_t> row_seen;
  for (Index r = 0; r < p.n; ++r) {
    const double jitter =
        1.0 + p.degree_jitter * (2.0 * rng.NextDouble() - 1.0);
    int64_t d = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(mean_deg * jitter)));
    d = std::min<int64_t>(d, 2 * band + 1);
    row_seen.clear();
    // Diagonal first (FEM matrices have full diagonals), then band fill.
    coo.Add(r, r, p.weighted ? (rng.NextDouble() + 1e-6) : 1.0);
    row_seen.insert(EdgeKey(0, r));
    int64_t emitted = 1;
    int64_t attempts = 0;
    const int64_t max_attempts = d * 16 + 16;
    while (emitted < d && attempts < max_attempts) {
      ++attempts;
      const int64_t offset =
          static_cast<int64_t>(rng.NextBounded(2 * band + 1)) - band;
      const int64_t c = static_cast<int64_t>(r) + offset;
      if (c < 0 || c >= p.n) continue;
      if (!row_seen.insert(EdgeKey(0, static_cast<Index>(c))).second) continue;
      coo.Add(r, static_cast<Index>(c),
              p.weighted ? (rng.NextDouble() + 1e-6) : 1.0);
      ++emitted;
    }
  }
  return CsrMatrix::FromCoo(coo);
}

Result<CsrMatrix> GenerateBlockDiagonal(const BlockDiagonalParams& p) {
  if (p.n <= 0) {
    return Status::InvalidArgument("block-diagonal generator needs n > 0");
  }
  if (p.block_size <= 0) {
    return Status::InvalidArgument("block size must be positive");
  }
  if (p.fill < 0.0 || p.fill > 1.0) {
    return Status::InvalidArgument("fill must be in [0, 1], got " +
                                   std::to_string(p.fill));
  }
  Rng rng(p.seed);
  CooMatrix coo(p.n, p.n);
  for (Index begin = 0; begin < p.n; begin += p.block_size) {
    const Index end = std::min<Index>(p.n, begin + p.block_size);
    const Index width = end - begin;
    const int64_t cells =
        static_cast<int64_t>(width) * static_cast<int64_t>(width);
    int64_t target = static_cast<int64_t>(p.fill * static_cast<double>(cells));
    // A community keeps its members reachable: at least the diagonal.
    target = std::max<int64_t>(target, width);
    std::unordered_set<uint64_t> seen;
    int64_t emitted = 0;
    for (Index i = 0; i < width; ++i) {
      coo.Add(begin + i, begin + i,
              p.weighted ? (rng.NextDouble() + 1e-6) : 1.0);
      seen.insert(EdgeKey(i, i));
      ++emitted;
    }
    int64_t attempts = 0;
    const int64_t max_attempts = target * 16 + 16;
    while (emitted < target && attempts < max_attempts) {
      ++attempts;
      const Index i = static_cast<Index>(
          rng.NextBounded(static_cast<uint64_t>(width)));
      const Index j = static_cast<Index>(
          rng.NextBounded(static_cast<uint64_t>(width)));
      if (!seen.insert(EdgeKey(i, j)).second) continue;
      coo.Add(begin + i, begin + j,
              p.weighted ? (rng.NextDouble() + 1e-6) : 1.0);
      ++emitted;
    }
  }
  return CsrMatrix::FromCoo(coo);
}

}  // namespace datasets
}  // namespace spnet
