// Google-benchmark micro-benchmarks of the host-side (functional) pipeline
// stages: workload precalculation, classification, the B-Splitting /
// B-Gathering transformations, expansion+merge execution, and the
// simulator itself. These measure the real CPU cost of this library's
// code, complementing the simulated device timings of the figure benches.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "sparse/stats.h"

#include "core/b_gathering.h"
#include "core/b_splitting.h"
#include "core/block_reorganizer.h"
#include "core/workload_classifier.h"
#include "datasets/generators.h"
#include "gpusim/simulator.h"
#include "spgemm/algorithm.h"
#include "spgemm/functional.h"
#include "spgemm/outer_product.h"
#include "spgemm/row_product.h"
#include "sparse/reference_spgemm.h"

namespace spnet {
namespace {

sparse::CsrMatrix MakeInput(int64_t n) {
  datasets::PowerLawParams p;
  p.rows = static_cast<sparse::Index>(n);
  p.cols = static_cast<sparse::Index>(n);
  p.nnz = 8 * n;
  p.row_skew = p.col_skew = 0.85;
  p.seed = 42;
  auto m = datasets::GeneratePowerLaw(p);
  SPNET_CHECK(m.ok());
  return std::move(m).value();
}

void BM_BuildWorkload(benchmark::State& state) {
  const sparse::CsrMatrix a = MakeInput(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spgemm::BuildWorkload(a, a));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_BuildWorkload)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void BM_Classify(benchmark::State& state) {
  const sparse::CsrMatrix a = MakeInput(state.range(0));
  const spgemm::Workload w = spgemm::BuildWorkload(a, a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Classify(w, core::ReorganizerConfig{}));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.pair_work.size()));
}
BENCHMARK(BM_Classify)->Arg(1 << 12)->Arg(1 << 16);

void BM_BuildSplitPlan(benchmark::State& state) {
  const sparse::CsrMatrix a = MakeInput(state.range(0));
  const spgemm::Workload w = spgemm::BuildWorkload(a, a);
  const core::Classification c =
      core::Classify(w, core::ReorganizerConfig{});
  const gpusim::DeviceSpec device = gpusim::DeviceSpec::TitanXp();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildSplitPlan(
        w, c.dominators, core::ReorganizerConfig{}, device));
  }
}
BENCHMARK(BM_BuildSplitPlan)->Arg(1 << 12)->Arg(1 << 16);

void BM_BuildGatherPlan(benchmark::State& state) {
  const sparse::CsrMatrix a = MakeInput(state.range(0));
  const spgemm::Workload w = spgemm::BuildWorkload(a, a);
  const core::Classification c =
      core::Classify(w, core::ReorganizerConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildGatherPlan(
        w, c.low_performers, core::ReorganizerConfig{}));
  }
}
BENCHMARK(BM_BuildGatherPlan)->Arg(1 << 12)->Arg(1 << 16);

void BM_ReferenceSpGemm(benchmark::State& state) {
  const sparse::CsrMatrix a = MakeInput(state.range(0));
  for (auto _ : state) {
    auto c = sparse::ReferenceSpGemm(a, a);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * sparse::SpGemmFlops(a, a));
}
BENCHMARK(BM_ReferenceSpGemm)->Arg(1 << 12)->Arg(1 << 14);

void BM_RowProductExpandMerge(benchmark::State& state) {
  const sparse::CsrMatrix a = MakeInput(state.range(0));
  for (auto _ : state) {
    auto c = spgemm::RowProductExpandMerge(a, a);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * sparse::SpGemmFlops(a, a));
}
BENCHMARK(BM_RowProductExpandMerge)->Arg(1 << 12)->Arg(1 << 14);

void BM_OuterProductExpandMerge(benchmark::State& state) {
  const sparse::CsrMatrix a = MakeInput(state.range(0));
  for (auto _ : state) {
    auto c = spgemm::OuterProductExpandMerge(a, a);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * sparse::SpGemmFlops(a, a));
}
BENCHMARK(BM_OuterProductExpandMerge)->Arg(1 << 12)->Arg(1 << 14);

void BM_ReorganizerCompute(benchmark::State& state) {
  const sparse::CsrMatrix a = MakeInput(state.range(0));
  core::BlockReorganizerSpGemm alg;
  for (auto _ : state) {
    auto c = alg.Compute(a, a);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * sparse::SpGemmFlops(a, a));
}
BENCHMARK(BM_ReorganizerCompute)->Arg(1 << 12)->Arg(1 << 14);

void BM_SimulateOuterProduct(benchmark::State& state) {
  const sparse::CsrMatrix a = MakeInput(state.range(0));
  const gpusim::DeviceSpec device = gpusim::DeviceSpec::TitanXp();
  const auto outer = spgemm::MakeOuterProduct();
  auto plan = outer->Plan(a, a, device);
  SPNET_CHECK(plan.ok());
  gpusim::Simulator sim(device);
  for (auto _ : state) {
    for (const auto& k : plan->kernels) {
      auto s = sim.RunKernel(k);
      benchmark::DoNotOptimize(s);
    }
  }
}
BENCHMARK(BM_SimulateOuterProduct)->Arg(1 << 12)->Arg(1 << 16);

void BM_RmatGeneration(benchmark::State& state) {
  for (auto _ : state) {
    datasets::RmatParams p;
    p.scale = static_cast<int>(state.range(0));
    p.edge_count = int64_t{16} << p.scale;
    auto m = datasets::GenerateRmat(p);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() * (int64_t{16} << state.range(0)));
}
BENCHMARK(BM_RmatGeneration)->Arg(12)->Arg(15);

}  // namespace
}  // namespace spnet

BENCHMARK_MAIN();
