#ifndef SPNET_CORE_AUTO_TUNE_H_
#define SPNET_CORE_AUTO_TUNE_H_

#include "core/reorganizer_config.h"
#include "gpusim/device_spec.h"
#include "sparse/csr_matrix.h"

namespace spnet {
namespace core {

/// Picks alpha and beta for a specific multiplication — the per-network
/// threshold selection the paper leaves manual ("the criteria for
/// classification can be changed by adjusting the value of alpha based on
/// the target sparse network characteristics", Section IV-B).
///
/// Strategy: instead of fixed multipliers over the mean, target bin
/// *populations* that the techniques digest well —
///   * dominators: about 4 blocks per SM after splitting amortizes, i.e.
///     the `dominator_target_per_sm * num_sms` heaviest pairs;
///   * limited rows: the heaviest `limited_row_fraction` of nonzero
///     output rows.
/// The matching alpha/beta are derived from the observed workload
/// distribution and clamped to sane ranges, so a uniform matrix yields no
/// dominators at all.
struct AutoTuneOptions {
  double dominator_target_per_sm = 4.0;
  double limited_row_fraction = 0.02;
  double min_alpha = 4.0;
  double max_alpha = 256.0;
  double min_beta = 2.0;
  double max_beta = 64.0;
};

/// Returns a ReorganizerConfig whose alpha/beta are tuned for C = A*B on
/// `device`. All other fields keep their defaults.
Result<ReorganizerConfig> AutoTune(const sparse::CsrMatrix& a,
                                   const sparse::CsrMatrix& b,
                                   const gpusim::DeviceSpec& device,
                                   const AutoTuneOptions& options = {});

}  // namespace core
}  // namespace spnet

#endif  // SPNET_CORE_AUTO_TUNE_H_
