#include "core/suite.h"

#include "core/block_reorganizer.h"

namespace spnet {
namespace core {

std::vector<std::unique_ptr<spgemm::SpGemmAlgorithm>> MakeAllAlgorithms() {
  std::vector<std::unique_ptr<spgemm::SpGemmAlgorithm>> algorithms;
  algorithms.push_back(spgemm::MakeRowProduct());
  algorithms.push_back(spgemm::MakeOuterProduct());
  algorithms.push_back(spgemm::MakeCusparseLike());
  algorithms.push_back(spgemm::MakeCuspLike());
  algorithms.push_back(spgemm::MakeBhsparseLike());
  algorithms.push_back(spgemm::MakeMklLike());
  algorithms.push_back(MakeBlockReorganizer());
  return algorithms;
}

std::vector<std::unique_ptr<spgemm::SpGemmAlgorithm>> MakeExtendedSuite() {
  auto algorithms = MakeAllAlgorithms();
  algorithms.push_back(spgemm::MakeAcSpGemmLike());
  algorithms.push_back(spgemm::MakeNsparseLike());
  return algorithms;
}

std::vector<std::unique_ptr<spgemm::SpGemmAlgorithm>> MakeAblationSuite() {
  std::vector<std::unique_ptr<spgemm::SpGemmAlgorithm>> algorithms;
  ReorganizerConfig limiting_only;
  limiting_only.enable_splitting = false;
  limiting_only.enable_gathering = false;
  algorithms.push_back(MakeBlockReorganizer(limiting_only, "B-Limiting"));

  ReorganizerConfig splitting_only;
  splitting_only.enable_gathering = false;
  splitting_only.enable_limiting = false;
  algorithms.push_back(MakeBlockReorganizer(splitting_only, "B-Splitting"));

  ReorganizerConfig gathering_only;
  gathering_only.enable_splitting = false;
  gathering_only.enable_limiting = false;
  algorithms.push_back(MakeBlockReorganizer(gathering_only, "B-Gathering"));

  algorithms.push_back(MakeBlockReorganizer({}, "Block-Reorganizer"));
  return algorithms;
}

}  // namespace core
}  // namespace spnet
