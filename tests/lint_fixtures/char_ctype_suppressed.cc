// Fixture: char-ctype honors inline suppression markers.
#include <cctype>

namespace spnet {

bool Demo(char c) {
  return std::isdigit(c) != 0;  // spnet-lint: allow(char-ctype)
}

}  // namespace spnet
