#ifndef SPNET_SPGEMM_OUTER_PRODUCT_H_
#define SPNET_SPGEMM_OUTER_PRODUCT_H_

#include "spgemm/algorithm.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace spgemm {

/// The outer-product (column-row product) baseline the Block Reorganizer
/// builds on: pair i = (column i of A) x (row i of B) forms one thread
/// block, so every thread in a block does identical work (perfect
/// thread-level balance) — but block-level workloads vary wildly on
/// power-law data, creating the overloaded/underloaded block problem the
/// paper analyzes in Section III.
class OuterProductSpGemm : public SpGemmAlgorithm {
 public:
  std::string name() const override { return "outer-product"; }

 protected:
  Result<SpGemmPlan> PlanImpl(const sparse::CsrMatrix& a,
                              const sparse::CsrMatrix& b,
                              const gpusim::DeviceSpec& device,
                              ExecContext* ctx) const override;

  Result<sparse::CsrMatrix> ComputeImpl(const sparse::CsrMatrix& a,
                                        const sparse::CsrMatrix& b,
                                        ExecContext* ctx) const override;
};

/// Builds the plain outer-product expansion kernel: one block per nonzero
/// pair, no reorganization.
gpusim::KernelDesc BuildOuterProductExpansion(const Workload& workload,
                                              int block_size);

}  // namespace spgemm
}  // namespace spnet

#endif  // SPNET_SPGEMM_OUTER_PRODUCT_H_
