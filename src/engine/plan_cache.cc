#include "engine/plan_cache.h"

#include "sparse/fingerprint.h"

namespace spnet {
namespace engine {

size_t PlanKeyHash::operator()(const PlanKey& k) const {
  uint64_t h = sparse::CombineFingerprints(k.fp_a, k.fp_b);
  h = sparse::CombineFingerprints(h, k.config_fp);
  for (unsigned char c : k.algorithm) {
    h = sparse::CombineFingerprints(h, c);
  }
  return static_cast<size_t>(h);
}

PlanCache::PlanCache(size_t capacity, size_t shards, double min_confidence)
    : capacity_(capacity), min_confidence_(min_confidence) {
  if (shards < 1) shards = 1;
  if (capacity > 0 && shards > capacity) shards = capacity;
  if (capacity == 0) shards = 1;  // a single empty shard keeps paths uniform
  shards_.reserve(shards);
  const size_t base = capacity / shards;
  const size_t remainder = capacity % shards;
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(base + (i < remainder ? 1 : 0)));
  }
}

PlanCache::Shard& PlanCache::ShardFor(const PlanKey& key) {
  // Reuse the index hash; the shard pick must be stable per key so a key
  // always lands in the same shard.
  return *shards_[PlanKeyHash{}(key) % shards_.size()];
}

std::shared_ptr<const spgemm::SpGemmPlan> PlanCache::Lookup(
    const PlanKey& key, spgemm::ExecContext* ctx) {
  Shard& shard = ShardFor(key);
  {
    MutexLock lock(&shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Refresh recency: splice the entry to the front of the LRU list.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      spgemm::AddCounter(ctx, "engine.plan_cache.hit", 1);
      return it->second->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  spgemm::AddCounter(ctx, "engine.plan_cache.miss", 1);
  return nullptr;
}

std::shared_ptr<const spgemm::SpGemmPlan> PlanCache::Insert(
    const PlanKey& key, spgemm::SpGemmPlan plan, spgemm::ExecContext* ctx) {
  auto shared =
      std::make_shared<const spgemm::SpGemmPlan>(std::move(plan));
  if (shared->confidence < min_confidence_) {
    // Estimated-tier plans below the admission floor are served but never
    // cached: one lucky sample must not become every future query's plan.
    rejected_low_confidence_.fetch_add(1, std::memory_order_relaxed);
    spgemm::AddCounter(ctx, "engine.plan_cache.reject_low_confidence", 1);
    return shared;
  }
  if (capacity_ == 0) return shared;
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Concurrent planners can race to insert the same key; keep the newer
    // plan (they are equivalent) and refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    it->second->second = shared;
    return shared;
  }
  if (shard.lru.size() >= shard.capacity) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    spgemm::AddCounter(ctx, "engine.plan_cache.evict", 1);
  }
  shard.lru.emplace_front(key, shared);
  shard.index.emplace(key, shard.lru.begin());
  return shared;
}

void PlanCache::Clear() {
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

size_t PlanCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace engine
}  // namespace spnet
