#include "lint/graph.h"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/lexer.h"
#include "metrics/json_writer.h"

namespace spnet {
namespace lint {
namespace {

const std::set<std::string>& TreeRoots() {
  static const std::set<std::string> kRoots = {"src", "tools", "tests",
                                              "bench", "examples"};
  return kRoots;
}

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string part;
  for (const char c : path) {
    if (c == '/' || c == '\\') {
      if (!part.empty()) parts.push_back(part);
      part.clear();
    } else {
      part.push_back(c);
    }
  }
  if (!part.empty()) parts.push_back(part);
  return parts;
}

/// Extracts the quoted path from an `#include "..."` directive token, or
/// empty for any other directive (including angle-bracket includes, which
/// are system headers and never graph edges).
std::string QuotedIncludeTarget(const std::string& directive) {
  size_t i = 0;
  const auto skip_ws = [&] {
    while (i < directive.size() &&
           (directive[i] == ' ' || directive[i] == '\t')) {
      ++i;
    }
  };
  skip_ws();
  if (i >= directive.size() || directive[i] != '#') return "";
  ++i;
  skip_ws();
  if (directive.compare(i, 7, "include") != 0) return "";
  i += 7;
  skip_ws();
  if (i >= directive.size() || directive[i] != '"') return "";
  const size_t close = directive.find('"', i + 1);
  if (close == std::string::npos) return "";
  return directive.substr(i + 1, close - i - 1);
}

}  // namespace

bool LayeringManifest::Allows(const std::string& from,
                              const std::string& to) const {
  if (from == to) return true;
  if (unrestricted_.count(from) > 0) return true;
  const auto it = allowed_.find(from);
  return it != allowed_.end() && it->second.count(to) > 0;
}

bool LayeringManifest::Knows(const std::string& module) const {
  return allowed_.count(module) > 0 || unrestricted_.count(module) > 0;
}

bool LayeringManifest::IsUnrestricted(const std::string& module) const {
  return unrestricted_.count(module) > 0;
}

Result<LayeringManifest> ParseLayeringManifest(const std::string& text) {
  LayeringManifest manifest;
  std::vector<std::pair<std::string, std::vector<std::string>>> entries;
  std::string line;
  int line_no = 0;
  std::string remaining = text;
  remaining.push_back('\n');
  for (size_t pos = 0; pos < remaining.size();) {
    const size_t eol = remaining.find('\n', pos);
    line = remaining.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    // Tokenize on whitespace; the first token must end with ':'.
    std::vector<std::string> words;
    std::string word;
    line.push_back(' ');
    for (const char c : line) {
      if (c == ' ' || c == '\t' || c == '\r') {
        if (!word.empty()) words.push_back(word);
        word.clear();
      } else {
        word.push_back(c);
      }
    }
    if (words.empty()) continue;
    if (words[0].size() < 2 || words[0].back() != ':') {
      return Status::InvalidArgument(
          "layering manifest line " + std::to_string(line_no) +
          ": expected 'module: dep dep ...', got '" + words[0] + "'");
    }
    const std::string module = words[0].substr(0, words[0].size() - 1);
    entries.emplace_back(module,
                         std::vector<std::string>(words.begin() + 1,
                                                  words.end()));
  }
  // Register modules first so dependency references can be validated.
  for (const auto& [module, deps] : entries) {
    (void)deps;
    if (manifest.allowed_.count(module) > 0) {
      return Status::InvalidArgument("layering manifest: duplicate module '" +
                                     module + "'");
    }
    manifest.allowed_[module] = {};
  }
  for (const auto& [module, deps] : entries) {
    for (const std::string& dep : deps) {
      if (dep == "*") {
        if (deps.size() != 1) {
          return Status::InvalidArgument(
              "layering manifest: module '" + module +
              "' mixes '*' with named dependencies");
        }
        manifest.unrestricted_.insert(module);
        continue;
      }
      if (dep == module) {
        return Status::InvalidArgument(
            "layering manifest: module '" + module +
            "' lists itself (self-dependency is implicit)");
      }
      if (manifest.allowed_.count(dep) == 0) {
        return Status::InvalidArgument("layering manifest: module '" + module +
                                       "' depends on undeclared module '" +
                                       dep + "'");
      }
      manifest.allowed_[module].insert(dep);
    }
  }
  // The declared edges must form a DAG (unrestricted modules are leaves of
  // the policy and excluded): a cyclic policy could never be satisfied and
  // is always a manifest bug.
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  std::function<Status(const std::string&)> visit =
      [&](const std::string& module) -> Status {
    state[module] = 1;
    for (const std::string& dep : manifest.allowed_[module]) {
      if (state[dep] == 1) {
        return Status::InvalidArgument(
            "layering manifest: dependency cycle through '" + module +
            "' and '" + dep + "'");
      }
      if (state[dep] == 0) {
        const Status s = visit(dep);
        if (!s.ok()) return s;
      }
    }
    state[module] = 2;
    return Status::Ok();
  };
  for (const auto& [module, deps] : manifest.allowed_) {
    (void)deps;
    if (state[module] == 0) {
      const Status s = visit(module);
      if (!s.ok()) return s;
    }
  }
  return manifest;
}

const char* DefaultLayeringManifestText() {
  // Keep in lockstep with LAYERING.md (lint_test pins the two together).
  // Low layers first; a module may include itself plus exactly the listed
  // modules. `*` marks the leaf binary trees that may use everything.
  return "common:\n"
         "metrics: common\n"
         "faultinject: common\n"
         "sparse: common faultinject\n"
         "gpusim: common metrics\n"
         "datasets: common sparse\n"
         "spgemm: common metrics sparse gpusim faultinject\n"
         "graph: common sparse spgemm\n"
         "core: common sparse gpusim spgemm faultinject\n"
         "engine: common metrics sparse datasets gpusim spgemm core\n"
         "verify: common sparse datasets gpusim spgemm core engine "
         "faultinject\n"
         "serve: common metrics sparse engine faultinject\n"
         "lint: common metrics\n"
         "tools: *\n"
         "tests: *\n"
         "bench: *\n"
         "examples: *\n";
}

const LayeringManifest& DefaultLayeringManifest() {
  static const LayeringManifest* kManifest = [] {
    auto parsed = ParseLayeringManifest(DefaultLayeringManifestText());
    if (!parsed.ok()) {
      std::fprintf(stderr, "built-in layering manifest is invalid: %s\n",
                   parsed.status().ToString().c_str());
      std::abort();
    }
    // spnet-lint: allow(raw-new-delete) — intentionally leaked singleton.
    return new LayeringManifest(std::move(parsed).value());
  }();
  return *kManifest;
}

std::string RepoRelativeId(const std::string& path) {
  const std::vector<std::string> parts = SplitPath(path);
  size_t root = parts.size();
  for (size_t i = 0; i < parts.size(); ++i) {
    // The final component is a filename, never a tree root.
    if (i + 1 < parts.size() && TreeRoots().count(parts[i]) > 0) root = i;
  }
  if (root == parts.size()) return "";
  std::string id;
  for (size_t i = root; i < parts.size(); ++i) {
    if (!id.empty()) id.push_back('/');
    id += parts[i];
  }
  return id;
}

std::string ModuleForId(const std::string& id) {
  const std::vector<std::string> parts = SplitPath(id);
  if (parts.size() < 2) return "";
  if (parts[0] == "src") {
    if (parts.size() < 3) return "";
    if (parts[1] == "verify" && parts[2].rfind("fault_injection.", 0) == 0) {
      return "faultinject";
    }
    return parts[1];
  }
  if (TreeRoots().count(parts[0]) > 0) return parts[0];
  return "";
}

ProjectGraph ProjectGraph::Build(const std::vector<SourceFile>& sources) {
  ProjectGraph graph;
  std::set<std::string> seen_ids;
  for (const SourceFile& source : sources) {
    FileNode node;
    node.display_path = source.path;
    node.id = RepoRelativeId(source.path);
    if (node.id.empty() || !seen_ids.insert(node.id).second) continue;
    node.module = ModuleForId(node.id);
    const std::vector<Token> tokens = Tokenize(source.content);
    node.suppressions = SuppressionIndex(tokens);
    for (const Token& token : tokens) {
      if (token.kind != TokenKind::kPreproc) continue;
      const std::string target = QuotedIncludeTarget(token.text);
      if (target.empty()) continue;
      IncludeRef ref;
      ref.target = target;
      ref.line = token.line;
      node.includes.push_back(std::move(ref));
    }
    graph.files_.push_back(std::move(node));
  }
  std::sort(graph.files_.begin(), graph.files_.end(),
            [](const FileNode& a, const FileNode& b) { return a.id < b.id; });
  // Resolve include targets now that the file set is final: `a/b.h`
  // matches `src/a/b.h` (the library include convention) or `a/b.h`
  // directly (tests/test_util.h, bench/bench_util.h).
  for (FileNode& node : graph.files_) {
    for (IncludeRef& ref : node.includes) {
      const std::string src_candidate = "src/" + ref.target;
      if (seen_ids.count(src_candidate) > 0) {
        ref.resolved = src_candidate;
      } else if (seen_ids.count(ref.target) > 0) {
        ref.resolved = ref.target;
      }
    }
  }
  return graph;
}

const FileNode* ProjectGraph::FindFile(const std::string& id) const {
  const auto it = std::lower_bound(
      files_.begin(), files_.end(), id,
      [](const FileNode& node, const std::string& key) {
        return node.id < key;
      });
  return it != files_.end() && it->id == id ? &*it : nullptr;
}

std::map<std::pair<std::string, std::string>, int> ProjectGraph::ModuleEdges()
    const {
  std::map<std::pair<std::string, std::string>, int> edges;
  for (const FileNode& node : files_) {
    if (node.module.empty()) continue;
    for (const IncludeRef& ref : node.includes) {
      if (ref.resolved.empty()) continue;
      const std::string to = ModuleForId(ref.resolved);
      if (to.empty() || to == node.module) continue;
      ++edges[{node.module, to}];
    }
  }
  return edges;
}

std::vector<std::vector<std::string>> ProjectGraph::IncludeCycles() const {
  // Tarjan's SCC over the resolved include graph. Indices follow files_,
  // which is sorted by id, so discovery order (and output) is stable.
  std::map<std::string, size_t> index_of;
  for (size_t i = 0; i < files_.size(); ++i) index_of[files_[i].id] = i;
  std::vector<std::vector<size_t>> adjacency(files_.size());
  for (size_t i = 0; i < files_.size(); ++i) {
    for (const IncludeRef& ref : files_[i].includes) {
      if (ref.resolved.empty()) continue;
      adjacency[i].push_back(index_of.at(ref.resolved));
    }
  }

  std::vector<int> index(files_.size(), -1);
  std::vector<int> lowlink(files_.size(), 0);
  std::vector<bool> on_stack(files_.size(), false);
  std::vector<size_t> stack;
  int next_index = 0;
  std::vector<std::vector<std::string>> cycles;

  std::function<void(size_t)> strongconnect = [&](size_t v) {
    index[v] = lowlink[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = true;
    for (const size_t w : adjacency[v]) {
      if (index[w] < 0) {
        strongconnect(w);
        lowlink[v] = std::min(lowlink[v], lowlink[w]);
      } else if (on_stack[w]) {
        lowlink[v] = std::min(lowlink[v], index[w]);
      }
    }
    if (lowlink[v] != index[v]) return;
    std::vector<size_t> component;
    while (true) {
      const size_t w = stack.back();
      stack.pop_back();
      on_stack[w] = false;
      component.push_back(w);
      if (w == v) break;
    }
    bool is_cycle = component.size() > 1;
    if (!is_cycle) {
      for (const size_t w : adjacency[component[0]]) {
        if (w == component[0]) is_cycle = true;  // self-include
      }
    }
    if (!is_cycle) return;
    std::vector<std::string> ids;
    ids.reserve(component.size());
    for (const size_t w : component) ids.push_back(files_[w].id);
    std::sort(ids.begin(), ids.end());
    cycles.push_back(std::move(ids));
  };
  for (size_t v = 0; v < files_.size(); ++v) {
    if (index[v] < 0) strongconnect(v);
  }
  std::sort(cycles.begin(), cycles.end());
  return cycles;
}

std::string ProjectGraph::ToJson(const LayeringManifest& manifest) const {
  struct ModuleInfo {
    int files = 0;
    std::set<std::string> deps;
  };
  std::map<std::string, ModuleInfo> modules;
  for (const FileNode& node : files_) {
    if (node.module.empty()) continue;
    ++modules[node.module].files;
  }
  const auto edges = ModuleEdges();
  int violations = 0;
  for (const auto& [edge, count] : edges) {
    (void)count;
    modules[edge.first].deps.insert(edge.second);
    if (!manifest.Knows(edge.first) ||
        !manifest.Allows(edge.first, edge.second)) {
      ++violations;
    }
  }

  metrics::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(1);
  w.Key("tool").String("spnet_lint");
  w.Key("modules").BeginArray();
  for (const auto& [name, info] : modules) {
    w.BeginObject();
    w.Key("name").String(name);
    w.Key("files").Int(info.files);
    w.Key("deps").BeginArray();
    for (const std::string& dep : info.deps) w.String(dep);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("manifest").BeginObject();
  for (const auto& [module, deps] : manifest.allowed()) {
    w.Key(module).BeginArray();
    if (manifest.IsUnrestricted(module)) {
      w.String("*");
    } else {
      for (const std::string& dep : deps) w.String(dep);
    }
    w.EndArray();
  }
  w.EndObject();
  w.Key("module_edges").BeginArray();
  for (const auto& [edge, count] : edges) {
    w.BeginObject();
    w.Key("from").String(edge.first);
    w.Key("to").String(edge.second);
    w.Key("includes").Int(count);
    w.Key("allowed").Bool(manifest.Knows(edge.first) &&
                          manifest.Allows(edge.first, edge.second));
    w.EndObject();
  }
  w.EndArray();
  w.Key("include_cycles").BeginArray();
  for (const std::vector<std::string>& cycle : IncludeCycles()) {
    w.BeginArray();
    for (const std::string& id : cycle) w.String(id);
    w.EndArray();
  }
  w.EndArray();
  w.Key("layering_violations").Int(violations);
  w.Key("files").BeginArray();
  for (const FileNode& node : files_) {
    w.BeginObject();
    w.Key("path").String(node.id);
    w.Key("module").String(node.module);
    w.Key("includes").BeginArray();
    for (const IncludeRef& ref : node.includes) {
      if (!ref.resolved.empty()) w.String(ref.resolved);
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::vector<Diagnostic> CheckProjectGraph(const ProjectGraph& graph,
                                          const LayeringManifest& manifest) {
  std::vector<Diagnostic> diagnostics;
  for (const FileNode& node : graph.files()) {
    if (node.module.empty()) continue;
    for (const IncludeRef& ref : node.includes) {
      if (ref.resolved.empty()) continue;
      const std::string to = ModuleForId(ref.resolved);
      if (to.empty() || to == node.module) continue;
      if (node.suppressions.Allows("layering-violation", ref.line)) continue;
      if (!manifest.Knows(node.module)) {
        diagnostics.push_back(
            {node.display_path, ref.line, "layering-violation",
             Severity::kError,
             "module '" + node.module +
                 "' is not in the layering manifest; add it to LAYERING.md "
                 "and the built-in table in src/lint/graph.cc"});
        continue;
      }
      if (!manifest.Allows(node.module, to)) {
        diagnostics.push_back(
            {node.display_path, ref.line, "layering-violation",
             Severity::kError,
             "include of '" + ref.target + "' creates module edge '" +
                 node.module + " -> " + to +
                 "' which the layering manifest does not allow (see "
                 "LAYERING.md)"});
      }
    }
  }
  for (const std::vector<std::string>& cycle : graph.IncludeCycles()) {
    // Anchor the diagnostic on the first member's include into the cycle.
    const FileNode* anchor = graph.FindFile(cycle.front());
    if (anchor == nullptr) continue;
    const std::set<std::string> members(cycle.begin(), cycle.end());
    int line = 1;
    for (const IncludeRef& ref : anchor->includes) {
      if (!ref.resolved.empty() && members.count(ref.resolved) > 0) {
        line = ref.line;
        break;
      }
    }
    if (anchor->suppressions.Allows("include-cycle", line)) continue;
    std::string path;
    for (const std::string& id : cycle) {
      if (!path.empty()) path += " -> ";
      path += id;
    }
    path += " -> " + cycle.front();
    diagnostics.push_back({anchor->display_path, line, "include-cycle",
                           Severity::kError,
                           "include cycle: " + path +
                               "; break it with a forward declaration or by "
                               "moving shared types down a layer"});
  }
  return diagnostics;
}

}  // namespace lint
}  // namespace spnet
