#include "spgemm/functional.h"

#include <string>
#include <vector>

#include "sparse/stats.h"

namespace spnet {
namespace spgemm {

using sparse::CscMatrix;
using sparse::CsrMatrix;
using sparse::Index;
using sparse::Offset;
using sparse::SpanView;
using sparse::Value;

namespace {

Status CheckDims(const CsrMatrix& a, const CsrMatrix& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument(
        "dimension mismatch: " + std::to_string(a.cols()) + " vs " +
        std::to_string(b.rows()));
  }
  return Status::Ok();
}

/// Merges an intermediate element range [begin, end) of (col, val) pairs
/// into the output arrays using a dense accumulator; emits in first-touch
/// order (unordered CSR).
void MergeRange(const Index* cols, const Value* vals, Offset count,
                std::vector<Value>* acc, std::vector<bool>* touched,
                std::vector<Index>* scratch, std::vector<Index>* out_idx,
                std::vector<Value>* out_val) {
  scratch->clear();
  for (Offset k = 0; k < count; ++k) {
    const Index c = cols[k];
    if (!(*touched)[static_cast<size_t>(c)]) {
      (*touched)[static_cast<size_t>(c)] = true;
      scratch->push_back(c);
    }
    (*acc)[static_cast<size_t>(c)] += vals[k];
  }
  for (Index c : *scratch) {
    out_idx->push_back(c);
    out_val->push_back((*acc)[static_cast<size_t>(c)]);
    (*acc)[static_cast<size_t>(c)] = 0.0;
    (*touched)[static_cast<size_t>(c)] = false;
  }
}

}  // namespace

Result<CsrMatrix> RowProductExpandMerge(const CsrMatrix& a,
                                        const CsrMatrix& b) {
  SPNET_RETURN_IF_ERROR(CheckDims(a, b));
  const Index rows = a.rows();
  const Index cols = b.cols();

  std::vector<Value> acc(static_cast<size_t>(cols), 0.0);
  std::vector<bool> touched(static_cast<size_t>(cols), false);
  std::vector<Index> scratch;

  std::vector<Offset> ptr(static_cast<size_t>(rows) + 1, 0);
  std::vector<Index> out_idx;
  std::vector<Value> out_val;
  std::vector<Index> exp_cols;
  std::vector<Value> exp_vals;

  for (Index r = 0; r < rows; ++r) {
    // Expansion: materialize this row's partial products.
    exp_cols.clear();
    exp_vals.clear();
    const SpanView arow = a.Row(r);
    for (Offset k = 0; k < arow.size; ++k) {
      const SpanView brow = b.Row(arow.indices[k]);
      const Value av = arow.values[k];
      for (Offset l = 0; l < brow.size; ++l) {
        exp_cols.push_back(brow.indices[l]);
        exp_vals.push_back(av * brow.values[l]);
      }
    }
    // Merge: row-wise dense accumulation.
    MergeRange(exp_cols.data(), exp_vals.data(),
               static_cast<Offset>(exp_cols.size()), &acc, &touched, &scratch,
               &out_idx, &out_val);
    ptr[static_cast<size_t>(r) + 1] = static_cast<Offset>(out_idx.size());
  }
  return CsrMatrix::FromParts(rows, cols, std::move(ptr), std::move(out_idx),
                              std::move(out_val));
}

Result<CsrMatrix> OuterProductExpandMerge(const CsrMatrix& a,
                                          const CsrMatrix& b) {
  SPNET_RETURN_IF_ERROR(CheckDims(a, b));
  const Index rows = a.rows();
  const Index cols = b.cols();

  // Row-wise C-hat sizes drive the relocation cursors (the paper
  // precalculates exactly this).
  const std::vector<int64_t> row_chat = sparse::SpGemmRowFlops(a, b);
  std::vector<Offset> chat_ptr(static_cast<size_t>(rows) + 1, 0);
  for (Index r = 0; r < rows; ++r) {
    chat_ptr[static_cast<size_t>(r) + 1] =
        chat_ptr[static_cast<size_t>(r)] + row_chat[static_cast<size_t>(r)];
  }
  const Offset total = chat_ptr[static_cast<size_t>(rows)];

  std::vector<Index> chat_cols(static_cast<size_t>(total));
  std::vector<Value> chat_vals(static_cast<size_t>(total));
  std::vector<Offset> cursor(chat_ptr.begin(), chat_ptr.end() - 1);

  // Expansion: pair i = (column i of A) x (row i of B); every product of
  // the pair lands in the C-hat region of its output row.
  const CscMatrix a_csc = CscMatrix::FromCsr(a);
  for (Index i = 0; i < a.cols(); ++i) {
    const SpanView acol = a_csc.Col(i);
    if (acol.size == 0 || i >= b.rows()) continue;
    const SpanView brow = b.Row(i);
    if (brow.size == 0) continue;
    for (Offset k = 0; k < acol.size; ++k) {
      const Index r = acol.indices[k];
      const Value av = acol.values[k];
      Offset& cur = cursor[static_cast<size_t>(r)];
      for (Offset l = 0; l < brow.size; ++l) {
        chat_cols[static_cast<size_t>(cur)] = brow.indices[l];
        chat_vals[static_cast<size_t>(cur)] = av * brow.values[l];
        ++cur;
      }
    }
  }

  // Merge: row-wise dense accumulation over the relocated intermediate.
  std::vector<Value> acc(static_cast<size_t>(cols), 0.0);
  std::vector<bool> touched(static_cast<size_t>(cols), false);
  std::vector<Index> scratch;
  std::vector<Offset> ptr(static_cast<size_t>(rows) + 1, 0);
  std::vector<Index> out_idx;
  std::vector<Value> out_val;
  for (Index r = 0; r < rows; ++r) {
    const Offset begin = chat_ptr[static_cast<size_t>(r)];
    const Offset count = chat_ptr[static_cast<size_t>(r) + 1] - begin;
    MergeRange(chat_cols.data() + begin, chat_vals.data() + begin, count, &acc,
               &touched, &scratch, &out_idx, &out_val);
    ptr[static_cast<size_t>(r) + 1] = static_cast<Offset>(out_idx.size());
  }
  return CsrMatrix::FromParts(rows, cols, std::move(ptr), std::move(out_idx),
                              std::move(out_val));
}

}  // namespace spgemm
}  // namespace spnet
