// Fixture: suppressed include cycle, marker on the participating include.
#ifndef FIXTURE_SPARSE_CYC_A_H_
#define FIXTURE_SPARSE_CYC_A_H_

#include "sparse/cyc_b.h"  // spnet-lint: allow(include-cycle)

#endif  // FIXTURE_SPARSE_CYC_A_H_
