#ifndef SPNET_SPARSE_OPERATIONS_H_
#define SPNET_SPARSE_OPERATIONS_H_

#include <vector>

#include "common/status.h"
#include "sparse/csr_matrix.h"

namespace spnet {
namespace sparse {

/// y = A * x (sparse matrix, dense vector). x.size() must equal A.cols().
Result<std::vector<Value>> SpMv(const CsrMatrix& a,
                                const std::vector<Value>& x);

/// y = A^T * x without materializing the transpose.
Result<std::vector<Value>> SpMvTranspose(const CsrMatrix& a,
                                         const std::vector<Value>& x);

/// C = alpha * A + beta * B (same shape). Rows come out sorted.
Result<CsrMatrix> Add(const CsrMatrix& a, const CsrMatrix& b,
                      Value alpha = 1.0, Value beta = 1.0);

/// C = A .* B (Hadamard / element-wise product on the pattern
/// intersection). Rows come out sorted.
Result<CsrMatrix> Hadamard(const CsrMatrix& a, const CsrMatrix& b);

/// B = alpha * A.
CsrMatrix Scale(const CsrMatrix& a, Value alpha);

/// Returns the submatrix A[row_begin:row_end, col_begin:col_end)
/// (half-open ranges), reindexed to start at (0, 0).
Result<CsrMatrix> Submatrix(const CsrMatrix& a, Index row_begin,
                            Index row_end, Index col_begin, Index col_end);

/// Drops entries with |value| <= threshold (exact zeros by default).
CsrMatrix DropEntries(const CsrMatrix& a, Value threshold = 0.0);

/// Keeps only the largest-|value| `k` entries of each row. Deterministic:
/// equal magnitudes at the k boundary are broken by ascending column
/// index, so the result is independent of input entry order.
CsrMatrix TopKPerRow(const CsrMatrix& a, Index k);

/// sum_ij |a_ij|^2, square-rooted.
double FrobeniusNorm(const CsrMatrix& a);

/// Sum of all entries.
Value EntrySum(const CsrMatrix& a);

/// The n x n identity.
CsrMatrix Identity(Index n);

/// Row-normalizes a to a stochastic matrix (rows summing to 1; empty rows
/// stay empty). The PageRank/random-walk building block.
CsrMatrix RowNormalize(const CsrMatrix& a);

/// Diagonal matrix from a vector.
CsrMatrix Diagonal(const std::vector<Value>& d);

/// Extracts the diagonal of a (length min(rows, cols), zeros included).
std::vector<Value> ExtractDiagonal(const CsrMatrix& a);

}  // namespace sparse
}  // namespace spnet

#endif  // SPNET_SPARSE_OPERATIONS_H_
