#ifndef SPNET_DATASETS_GENERATORS_H_
#define SPNET_DATASETS_GENERATORS_H_

#include <cstdint>

#include "common/status.h"
#include "sparse/csr_matrix.h"

namespace spnet {
namespace datasets {

/// R-MAT recursive graph generator (Chakrabarti et al., SDM'04), the model
/// the paper uses for all synthetic datasets (Table III). Produces a square
/// 2^scale matrix with ~edge_count distinct nonzeros distributed by the
/// (a, b, c, d) quadrant probabilities; a >> d yields power-law skew.
struct RmatParams {
  int scale = 15;
  int64_t edge_count = 0;  ///< requested edges before dedup
  double a = 0.45;
  double b = 0.15;
  double c = 0.15;
  double d = 0.25;
  uint64_t seed = 42;
  /// When true, values are uniform in (0, 1]; otherwise all 1.0.
  bool weighted = true;
  /// When true, re-draws duplicate edges (up to a bounded number of
  /// attempts) so the final nnz is close to edge_count.
  bool redraw_duplicates = true;
};

Result<sparse::CsrMatrix> GenerateRmat(const RmatParams& params);

/// Power-law bipartite generator used for the real-world network
/// stand-ins: row degrees and column picks both follow a Zipf(skew)
/// distribution, reproducing the hub structure (a few extremely dense
/// rows/columns) that creates the paper's dominator blocks.
struct PowerLawParams {
  sparse::Index rows = 0;
  sparse::Index cols = 0;
  int64_t nnz = 0;
  /// Zipf exponent for row degrees; 0 = uniform, ~0.6-1.2 = sparse-network
  /// territory. Row i (after shuffling) gets degree proportional to
  /// rank^-row_skew.
  double row_skew = 0.8;
  /// Zipf exponent for column popularity.
  double col_skew = 0.8;
  /// When true (and the matrix is square), the same node is a hub on both
  /// its row and its column — the realistic case for social/AS networks,
  /// and what makes a few column/row pairs dominate the outer-product
  /// workload (C = A^2 flops grow superlinearly with skew).
  bool align_hubs = true;
  uint64_t seed = 42;
  bool weighted = true;
};

Result<sparse::CsrMatrix> GeneratePowerLaw(const PowerLawParams& params);

/// Quasi-regular banded generator standing in for the Florida suite's
/// FEM/mesh matrices: every row has close to the same number of nonzeros,
/// placed inside a band around the diagonal with small jitter.
struct QuasiRegularParams {
  sparse::Index n = 0;
  int64_t nnz = 0;
  /// Half-width of the band as a fraction of n.
  double band_frac = 0.02;
  /// Max relative deviation of a row's degree from the mean (0 = exactly
  /// regular).
  double degree_jitter = 0.25;
  uint64_t seed = 42;
  bool weighted = true;
};

Result<sparse::CsrMatrix> GenerateQuasiRegular(const QuasiRegularParams& params);

/// Block-diagonal generator modeling community-structured networks: n is
/// carved into contiguous blocks of ~block_size nodes, and edges land only
/// inside a node's own block (uniformly, at the given fill density). The
/// resulting A*A concentrates all outer-product work inside the blocks —
/// the worst case for workload imbalance between pairs.
struct BlockDiagonalParams {
  sparse::Index n = 0;
  /// Nodes per diagonal block; the final block absorbs the remainder.
  sparse::Index block_size = 32;
  /// Fraction of each block's cells that are nonzero, in [0, 1].
  double fill = 0.25;
  uint64_t seed = 42;
  bool weighted = true;
};

Result<sparse::CsrMatrix> GenerateBlockDiagonal(
    const BlockDiagonalParams& params);

}  // namespace datasets
}  // namespace spnet

#endif  // SPNET_DATASETS_GENERATORS_H_
