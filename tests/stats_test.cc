#include <gtest/gtest.h>

#include "sparse/reference_spgemm.h"
#include "sparse/stats.h"
#include "tests/test_util.h"

namespace spnet {
namespace sparse {
namespace {

CsrMatrix Diagonal(Index n) {
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) coo.Add(i, i, 1.0);
  auto r = CsrMatrix::FromCoo(coo);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(StatsTest, UniformRowsHaveZeroSkew) {
  const CsrMatrix m = Diagonal(100);
  const DegreeStats s = ComputeRowStats(m);
  EXPECT_EQ(s.min_nnz, 1);
  EXPECT_EQ(s.max_nnz, 1);
  EXPECT_DOUBLE_EQ(s.mean_nnz, 1.0);
  EXPECT_DOUBLE_EQ(s.cv, 0.0);
  EXPECT_NEAR(s.gini, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.frac_rows_below_warp, 1.0);
}

TEST(StatsTest, SkewedMatrixHasHighGini) {
  const CsrMatrix m = testing_util::SkewedMatrix(256, 200, 3);
  const DegreeStats s = ComputeRowStats(m);
  EXPECT_GT(s.max_nnz, 16);
  EXPECT_GT(s.gini, 0.3);
  EXPECT_GT(s.cv, 1.0);
}

TEST(StatsTest, FlopsMatchesManualCount) {
  // a = [1 1; 0 1], b = [1 0; 1 1]
  CooMatrix ca(2, 2), cb(2, 2);
  ca.Add(0, 0, 1);
  ca.Add(0, 1, 1);
  ca.Add(1, 1, 1);
  cb.Add(0, 0, 1);
  cb.Add(1, 0, 1);
  cb.Add(1, 1, 1);
  auto a = CsrMatrix::FromCoo(ca);
  auto b = CsrMatrix::FromCoo(cb);
  ASSERT_TRUE(a.ok() && b.ok());
  // row 0 of a: cols {0,1} -> nnz(b row 0)=1 + nnz(b row 1)=2 = 3
  // row 1 of a: col {1} -> 2. total 5.
  EXPECT_EQ(SpGemmFlops(*a, *b), 5);
  auto row_flops = SpGemmRowFlops(*a, *b);
  ASSERT_EQ(row_flops.size(), 2u);
  EXPECT_EQ(row_flops[0], 3);
  EXPECT_EQ(row_flops[1], 2);
}

TEST(StatsTest, PairWorkMatchesColRowProducts) {
  CooMatrix ca(3, 2), cb(2, 3);
  ca.Add(0, 0, 1);
  ca.Add(1, 0, 1);
  ca.Add(2, 1, 1);
  cb.Add(0, 0, 1);
  cb.Add(0, 2, 1);
  cb.Add(1, 1, 1);
  auto a = CsrMatrix::FromCoo(ca);
  auto b = CsrMatrix::FromCoo(cb);
  ASSERT_TRUE(a.ok() && b.ok());
  auto work = OuterProductPairWork(*a, *b);
  ASSERT_EQ(work.size(), 2u);
  EXPECT_EQ(work[0], 2 * 2);  // col 0 of a has 2, row 0 of b has 2
  EXPECT_EQ(work[1], 1 * 1);
}

TEST(StatsTest, PairWorkSumsToFlops) {
  const CsrMatrix a = testing_util::SkewedMatrix(64, 40, 1);
  const CsrMatrix b = testing_util::SkewedMatrix(64, 40, 2);
  auto work = OuterProductPairWork(a, b);
  int64_t total = 0;
  for (int64_t w : work) total += w;
  EXPECT_EQ(total, SpGemmFlops(a, b));
}

TEST(StatsTest, HistogramBuckets) {
  // Rows with nnz 1, 2, 3, 8 and one empty row.
  CooMatrix coo(5, 16);
  coo.Add(0, 0, 1);
  for (int c = 0; c < 2; ++c) coo.Add(1, c, 1);
  for (int c = 0; c < 3; ++c) coo.Add(2, c, 1);
  for (int c = 0; c < 8; ++c) coo.Add(3, c, 1);
  auto m = CsrMatrix::FromCoo(coo);
  ASSERT_TRUE(m.ok());
  const DegreeHistogram h = ComputeRowHistogram(*m);
  EXPECT_EQ(h.empty_rows, 1);
  ASSERT_GE(h.buckets.size(), 4u);
  EXPECT_EQ(h.buckets[0], 1);  // nnz 1
  EXPECT_EQ(h.buckets[1], 2);  // nnz 2-3
  EXPECT_EQ(h.buckets[3], 1);  // nnz 8-15
}

TEST(ReferenceSpGemmTest, IdentityIsNeutral) {
  const CsrMatrix m = testing_util::RandomMatrix(20, 20, 0.2, 7);
  const CsrMatrix eye = Diagonal(20);
  auto left = ReferenceSpGemm(eye, m);
  auto right = ReferenceSpGemm(m, eye);
  ASSERT_TRUE(left.ok() && right.ok());
  EXPECT_TRUE(CsrApproxEqual(*left, m));
  EXPECT_TRUE(CsrApproxEqual(*right, m));
}

TEST(ReferenceSpGemmTest, KnownSmallProduct) {
  // a = [1 2; 3 0], b = [0 1; 2 0] -> c = [4 1; 0 3]
  CooMatrix ca(2, 2), cb(2, 2);
  ca.Add(0, 0, 1);
  ca.Add(0, 1, 2);
  ca.Add(1, 0, 3);
  cb.Add(0, 1, 1);
  cb.Add(1, 0, 2);
  auto a = CsrMatrix::FromCoo(ca);
  auto b = CsrMatrix::FromCoo(cb);
  ASSERT_TRUE(a.ok() && b.ok());
  auto c = ReferenceSpGemm(*a, *b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->nnz(), 3);
  EXPECT_DOUBLE_EQ(c->Row(0).values[0], 4.0);  // col 0
  EXPECT_DOUBLE_EQ(c->Row(0).values[1], 1.0);  // col 1
  EXPECT_DOUBLE_EQ(c->Row(1).values[0], 3.0);
}

TEST(ReferenceSpGemmTest, DimensionMismatchRejected) {
  const CsrMatrix a = testing_util::RandomMatrix(4, 5, 0.5, 1);
  const CsrMatrix b = testing_util::RandomMatrix(4, 5, 0.5, 2);
  EXPECT_FALSE(ReferenceSpGemm(a, b).ok());
}

TEST(ReferenceSpGemmTest, CancellationKeepsExplicitZero) {
  // (1)(1) + (1)(-1) = 0: Gustavson keeps a numerically-zero entry.
  CooMatrix ca(1, 2), cb(2, 1);
  ca.Add(0, 0, 1.0);
  ca.Add(0, 1, 1.0);
  cb.Add(0, 0, 1.0);
  cb.Add(1, 0, -1.0);
  auto a = CsrMatrix::FromCoo(ca);
  auto b = CsrMatrix::FromCoo(cb);
  ASSERT_TRUE(a.ok() && b.ok());
  auto c = ReferenceSpGemm(*a, *b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->nnz(), 1);
  EXPECT_DOUBLE_EQ(c->Row(0).values[0], 0.0);
}

TEST(ReferenceSpGemmTest, SymbolicNnzMatchesNumeric) {
  const CsrMatrix a = testing_util::SkewedMatrix(60, 30, 11);
  const CsrMatrix b = testing_util::SkewedMatrix(60, 30, 12);
  auto c = ReferenceSpGemm(a, b);
  auto nnz = SpGemmExactOutputNnz(a, b);
  ASSERT_TRUE(c.ok() && nnz.ok());
  EXPECT_EQ(c->nnz(), nnz.value());
}

TEST(ReferenceSpGemmTest, AssociativityOnSmallMatrices) {
  const CsrMatrix a = testing_util::RandomMatrix(12, 15, 0.3, 21);
  const CsrMatrix b = testing_util::RandomMatrix(15, 9, 0.3, 22);
  const CsrMatrix c = testing_util::RandomMatrix(9, 14, 0.3, 23);
  auto ab = ReferenceSpGemm(a, b);
  auto bc = ReferenceSpGemm(b, c);
  ASSERT_TRUE(ab.ok() && bc.ok());
  auto ab_c = ReferenceSpGemm(*ab, c);
  auto a_bc = ReferenceSpGemm(a, *bc);
  ASSERT_TRUE(ab_c.ok() && a_bc.ok());
  EXPECT_TRUE(CsrApproxEqual(*ab_c, *a_bc, 1e-8));
}

}  // namespace
}  // namespace sparse
}  // namespace spnet
