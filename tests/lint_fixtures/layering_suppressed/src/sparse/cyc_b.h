// Fixture: the other half of the suppressed cycle (marker here too, in
// case the anchor file ever changes).
#ifndef FIXTURE_SPARSE_CYC_B_H_
#define FIXTURE_SPARSE_CYC_B_H_

#include "sparse/cyc_a.h"  // spnet-lint: allow(include-cycle)

#endif  // FIXTURE_SPARSE_CYC_B_H_
