#include "spgemm/algorithm_registry.h"

namespace spnet {
namespace spgemm {

Status AlgorithmRegistry::Register(const std::string& name, Factory factory) {
  MutexLock lock(&mu_);
  if (factories_.count(name) != 0 || aliases_.count(name) != 0) {
    return Status::AlreadyExists("algorithm already registered: " + name);
  }
  factories_[name] = std::move(factory);
  return Status::Ok();
}

Status AlgorithmRegistry::RegisterAlias(const std::string& alias,
                                        const std::string& target) {
  MutexLock lock(&mu_);
  if (factories_.count(alias) != 0 || aliases_.count(alias) != 0) {
    return Status::AlreadyExists("algorithm already registered: " + alias);
  }
  if (factories_.count(target) == 0) {
    return Status::NotFound("alias target not registered: " + target);
  }
  aliases_[alias] = target;
  return Status::Ok();
}

bool AlgorithmRegistry::Contains(const std::string& name) const {
  MutexLock lock(&mu_);
  return factories_.count(name) != 0 || aliases_.count(name) != 0;
}

Result<std::unique_ptr<SpGemmAlgorithm>> AlgorithmRegistry::Create(
    const std::string& name) const {
  // The factory is copied out and invoked after the lock is dropped, so a
  // factory that itself consults the registry cannot deadlock.
  Factory factory;
  {
    MutexLock lock(&mu_);
    auto alias_it = aliases_.find(name);
    const std::string& canonical =
        alias_it == aliases_.end() ? name : alias_it->second;
    auto it = factories_.find(canonical);
    if (it == factories_.end()) {
      return Status::NotFound("unknown algorithm: " + name +
                              " (known: " + NamesLineLocked() + ")");
    }
    factory = it->second;
  }
  return factory();
}

std::vector<std::string> AlgorithmRegistry::NamesLocked() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;  // std::map iteration order: already sorted
}

std::vector<std::string> AlgorithmRegistry::Names() const {
  MutexLock lock(&mu_);
  return NamesLocked();
}

std::string AlgorithmRegistry::NamesLineLocked() const {
  std::string line;
  for (const std::string& name : NamesLocked()) {
    if (!line.empty()) line += ", ";
    line += name;
  }
  return line;
}

std::string AlgorithmRegistry::NamesLine() const {
  MutexLock lock(&mu_);
  return NamesLineLocked();
}

AlgorithmRegistry& AlgorithmRegistry::Global() {
  static AlgorithmRegistry* registry = [] {
    // Leaked on purpose: the registry must outlive static destructors.
    auto* r = new AlgorithmRegistry();  // spnet-lint: allow(raw-new-delete)
    auto add = [r](const std::string& name,
                   std::unique_ptr<SpGemmAlgorithm> (*make)()) {
      const Status s =
          r->Register(name, [make]() -> Result<std::unique_ptr<SpGemmAlgorithm>> {
            return make();
          });
      (void)s;  // seeding a fresh registry cannot collide
    };
    add("row-product", MakeRowProduct);
    add("outer-product", MakeOuterProduct);
    add("cusparse", MakeCusparseLike);
    add("cusp", MakeCuspLike);
    add("bhsparse", MakeBhsparseLike);
    add("mkl", MakeMklLike);
    add("acspgemm", MakeAcSpGemmLike);
    add("nsparse", MakeNsparseLike);
    (void)r->RegisterAlias("row", "row-product");
    (void)r->RegisterAlias("outer", "outer-product");
    return r;
  }();
  return *registry;
}

}  // namespace spgemm
}  // namespace spnet
