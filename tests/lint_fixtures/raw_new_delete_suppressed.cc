// Fixture: intentional leaks carry inline raw-new-delete markers.
namespace spnet {

Registry& Global() {
  static Registry* registry =
      new Registry();  // spnet-lint: allow(raw-new-delete)
  return *registry;
}

void Demo(int* p) {
  // spnet-lint: allow(raw-new-delete)
  delete p;
}

}  // namespace spnet
