#ifndef SPNET_LINT_RUNNER_H_
#define SPNET_LINT_RUNNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "lint/lint.h"

namespace spnet {
namespace lint {

/// Aggregate result of linting a set of paths.
struct RunSummary {
  int files_linted = 0;
  int errors = 0;
  int warnings = 0;
  /// Every finding, ordered by file path then line.
  std::vector<Diagnostic> diagnostics;
};

/// True for files the walker lints: C++ sources and headers by extension
/// (.h/.hpp/.cc/.cpp/.cxx and the CUDA spellings .cu/.cuh).
bool IsLintableFile(const std::string& path);

/// Lints each path: files directly, directories recursively. Skipped
/// during the walk: hidden directories, anything named `build*` or
/// `third_party`, and `lint_fixtures` (the test corpus violates rules on
/// purpose). NotFound if a path does not exist.
[[nodiscard]] Result<RunSummary> LintPaths(
    const std::vector<std::string>& paths, const LintOptions& options);

/// gcc-style one-liner: `path:line: error: message [rule]`.
std::string FormatDiagnostic(const Diagnostic& diagnostic);

}  // namespace lint
}  // namespace spnet

#endif  // SPNET_LINT_RUNNER_H_
