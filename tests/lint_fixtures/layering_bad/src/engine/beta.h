// Fixture: the upper-layer header layering_bad/src/common/alpha.h reaches
// into.
#ifndef FIXTURE_ENGINE_BETA_H_
#define FIXTURE_ENGINE_BETA_H_

inline int FixtureBeta() { return 2; }

#endif  // FIXTURE_ENGINE_BETA_H_
