#include "sparse/stats.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace spnet {
namespace sparse {

DegreeStats ComputeRowStats(const CsrMatrix& m) {
  DegreeStats s;
  const Index n = m.rows();
  if (n == 0) return s;

  std::vector<Offset> deg(static_cast<size_t>(n));
  for (Index r = 0; r < n; ++r) deg[static_cast<size_t>(r)] = m.RowNnz(r);

  s.min_nnz = *std::min_element(deg.begin(), deg.end());
  s.max_nnz = *std::max_element(deg.begin(), deg.end());

  double sum = 0.0;
  int64_t below_warp = 0;
  for (Offset d : deg) {
    sum += static_cast<double>(d);
    if (d < 32) ++below_warp;
  }
  s.mean_nnz = sum / n;
  s.frac_rows_below_warp = static_cast<double>(below_warp) / n;

  double var = 0.0;
  for (Offset d : deg) {
    const double diff = static_cast<double>(d) - s.mean_nnz;
    var += diff * diff;
  }
  var /= n;
  s.cv = s.mean_nnz > 0 ? std::sqrt(var) / s.mean_nnz : 0.0;

  // Gini via the sorted-rank formula:
  //   G = (2 * sum_i i*x_(i) / (n * sum x)) - (n + 1) / n,  i in [1, n].
  std::sort(deg.begin(), deg.end());
  double weighted = 0.0;
  for (size_t i = 0; i < deg.size(); ++i) {
    weighted += static_cast<double>(i + 1) * static_cast<double>(deg[i]);
  }
  if (sum > 0) {
    s.gini = 2.0 * weighted / (static_cast<double>(n) * sum) -
             (static_cast<double>(n) + 1.0) / n;
  }
  return s;
}

int64_t SpGemmFlops(const CsrMatrix& a, const CsrMatrix& b) {
  int64_t flops = 0;
  for (Index r = 0; r < a.rows(); ++r) {
    const SpanView row = a.Row(r);
    for (Offset k = 0; k < row.size; ++k) {
      flops += b.RowNnz(row.indices[k]);
    }
  }
  return flops;
}

std::vector<int64_t> SpGemmRowFlops(const CsrMatrix& a, const CsrMatrix& b) {
  std::vector<int64_t> flops(static_cast<size_t>(a.rows()), 0);
  // Each row's count is independent, so the rows parallelize trivially.
  SPNET_CHECK_OK(ParallelFor(0, a.rows(), GrainForItems(a.rows(), GlobalThreadCount()),
              [&](int64_t row_begin, int64_t row_end, int) {
                for (int64_t r = row_begin; r < row_end; ++r) {
                  const SpanView row = a.Row(static_cast<Index>(r));
                  int64_t f = 0;
                  for (Offset k = 0; k < row.size; ++k) {
                    f += b.RowNnz(row.indices[k]);
                  }
                  flops[static_cast<size_t>(r)] = f;
                }
                return Status::Ok();
              }));
  return flops;
}

std::vector<int64_t> OuterProductPairWork(const CsrMatrix& a,
                                          const CsrMatrix& b) {
  // nnz per column of A, counted without materializing the transpose.
  std::vector<int64_t> col_nnz(static_cast<size_t>(a.cols()), 0);
  for (Index c : a.indices()) col_nnz[static_cast<size_t>(c)]++;

  std::vector<int64_t> work(static_cast<size_t>(a.cols()), 0);
  for (Index i = 0; i < a.cols(); ++i) {
    const int64_t brow = (i < b.rows()) ? b.RowNnz(i) : 0;
    work[static_cast<size_t>(i)] = col_nnz[static_cast<size_t>(i)] * brow;
  }
  return work;
}

DegreeHistogram ComputeRowHistogram(const CsrMatrix& m) {
  DegreeHistogram h;
  for (Index r = 0; r < m.rows(); ++r) {
    const Offset d = m.RowNnz(r);
    if (d == 0) {
      h.empty_rows++;
      continue;
    }
    int bucket = 0;
    Offset v = d;
    while (v > 1) {
      v >>= 1;
      ++bucket;
    }
    if (static_cast<size_t>(bucket) >= h.buckets.size()) {
      h.buckets.resize(static_cast<size_t>(bucket) + 1, 0);
    }
    h.buckets[static_cast<size_t>(bucket)]++;
  }
  return h;
}

}  // namespace sparse
}  // namespace spnet
