// Fixture: global-mutable-state must fire on unguarded globals in every
// init spelling (=, brace, default).
#include <string>
#include <vector>

namespace spnet {
namespace {

int g_counter = 0;
std::string g_last_error;
std::vector<int> g_values{1, 2, 3};

}  // namespace
}  // namespace spnet
