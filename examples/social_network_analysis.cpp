// Social-network analysis with spGEMM: the motivating workload of the
// paper's introduction. C = A^2 of a friendship graph counts the length-2
// paths between every pair of users, which drives:
//   * friend-of-a-friend recommendation (highest C[u][v] for non-friends)
//   * two-hop reach (how much of the network each user can see)
//   * triangle counting (sum of A .* A^2 over edges / 6 for simple graphs)
//
// Build & run:
//   ./build/examples/social_network_analysis [--users N] [--skew S]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "core/block_reorganizer.h"
#include "datasets/generators.h"
#include "gpusim/device_spec.h"
#include "sparse/stats.h"
#include "spgemm/algorithm.h"

namespace {

using spnet::sparse::CsrMatrix;
using spnet::sparse::Index;
using spnet::sparse::Offset;
using spnet::sparse::SpanView;

// Symmetrize a directed power-law graph into a friendship matrix.
CsrMatrix MakeFriendGraph(Index users, double skew, uint64_t seed) {
  spnet::datasets::PowerLawParams p;
  p.rows = p.cols = users;
  p.nnz = 8 * static_cast<int64_t>(users);
  p.row_skew = p.col_skew = skew;
  p.seed = seed;
  auto directed = spnet::datasets::GeneratePowerLaw(p);
  SPNET_CHECK(directed.ok());
  // A := max(A, A^T) as a 0/1 pattern.
  spnet::sparse::CooMatrix coo(users, users);
  for (Index r = 0; r < directed->rows(); ++r) {
    const SpanView row = directed->Row(r);
    for (Offset k = 0; k < row.size; ++k) {
      if (row.indices[k] == r) continue;  // no self-friendship
      coo.Add(r, row.indices[k], 1.0);
      coo.Add(row.indices[k], r, 1.0);
    }
  }
  coo.SortAndCombine();
  // Clamp duplicate-summed weights back to 1.
  spnet::sparse::CooMatrix pattern(users, users);
  for (size_t i = 0; i < coo.row_indices().size(); ++i) {
    pattern.Add(coo.row_indices()[i], coo.col_indices()[i], 1.0);
  }
  auto a = CsrMatrix::FromCoo(pattern);
  SPNET_CHECK(a.ok());
  return std::move(a).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spnet;
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  const Index users = static_cast<Index>(flags.GetInt("users", 8000));
  const double skew = flags.GetDouble("skew", 0.9);

  const CsrMatrix a = MakeFriendGraph(users, skew, 7);
  const auto stats = sparse::ComputeRowStats(a);
  std::printf("friend graph: %d users, %lld friendships, max degree %lld, "
              "gini %.2f\n",
              a.rows(), static_cast<long long>(a.nnz() / 2),
              static_cast<long long>(stats.max_nnz), stats.gini);

  // C[u][v] = number of common friends of u and v (length-2 paths).
  core::BlockReorganizerSpGemm reorganizer;
  auto c = reorganizer.Compute(a, a);
  SPNET_CHECK(c.ok()) << c.status().ToString();

  // Friend-of-a-friend recommendation for the highest-degree user: the
  // non-friend with the most common friends.
  Index hub = 0;
  for (Index u = 0; u < a.rows(); ++u) {
    if (a.RowNnz(u) > a.RowNnz(hub)) hub = u;
  }
  std::vector<bool> is_friend(static_cast<size_t>(users), false);
  {
    const SpanView row = a.Row(hub);
    for (Offset k = 0; k < row.size; ++k) {
      is_friend[static_cast<size_t>(row.indices[k])] = true;
    }
  }
  Index best = -1;
  double best_common = 0.0;
  int64_t two_hop_reach = 0;
  {
    const SpanView row = c->Row(hub);
    for (Offset k = 0; k < row.size; ++k) {
      const Index v = row.indices[k];
      if (v == hub) continue;
      ++two_hop_reach;
      if (!is_friend[static_cast<size_t>(v)] && row.values[k] > best_common) {
        best_common = row.values[k];
        best = v;
      }
    }
  }
  std::printf("hub user %d: degree %lld, two-hop reach %lld users "
              "(%.1f%% of the network)\n",
              hub, static_cast<long long>(a.RowNnz(hub)),
              static_cast<long long>(two_hop_reach),
              100.0 * static_cast<double>(two_hop_reach) / users);
  std::printf("recommend user %d (%d common friends)\n", best,
              static_cast<int>(best_common));

  // Triangle count: sum over edges (u,v) of C[u][v], divided by 6.
  double triangles = 0.0;
  std::vector<double> c_row(static_cast<size_t>(users), 0.0);
  for (Index u = 0; u < a.rows(); ++u) {
    const SpanView crow = c->Row(u);
    for (Offset k = 0; k < crow.size; ++k) {
      c_row[static_cast<size_t>(crow.indices[k])] = crow.values[k];
    }
    const SpanView arow = a.Row(u);
    for (Offset k = 0; k < arow.size; ++k) {
      triangles += c_row[static_cast<size_t>(arow.indices[k])];
    }
    for (Offset k = 0; k < crow.size; ++k) {
      c_row[static_cast<size_t>(crow.indices[k])] = 0.0;
    }
  }
  std::printf("triangles in the network: %.0f\n", triangles / 6.0);

  // What would this cost on the simulated Titan Xp?
  auto m = spgemm::Measure(reorganizer, a, a,
                           gpusim::DeviceSpec::TitanXp());
  SPNET_CHECK(m.ok());
  std::printf("simulated Titan Xp time: %.3f ms (%.1f GFLOPS)\n",
              m->total_seconds * 1e3, m->Gflops());
  return 0;
}
