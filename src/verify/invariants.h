#ifndef SPNET_VERIFY_INVARIANTS_H_
#define SPNET_VERIFY_INVARIANTS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/b_gathering.h"
#include "core/b_splitting.h"
#include "core/reorganizer_config.h"
#include "core/workload_classifier.h"
#include "sparse/csr_matrix.h"
#include "spgemm/nnz_estimator.h"
#include "spgemm/plan.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace verify {

/// Structural validators for the Block Reorganizer's intermediate plans.
/// Each checker re-derives the property the pass is supposed to guarantee
/// from first principles (never by re-running the pass) and reports the
/// first violation as FailedPrecondition with enough context to debug it.

/// The classification partitions exactly the nonzero pairs: every pair
/// with pair_work > 0 lands in exactly one of dominators / low performers
/// / normals, bin membership matches the documented rules, both
/// thresholds are >= 1, and limited_rows is exactly the set of output
/// rows whose C-hat population exceeds the limiting threshold.
[[nodiscard]] Status CheckClassification(const spgemm::Workload& workload,
                           const core::Classification& classes);

/// The estimation tier's contract against ground truth. `exact` is the
/// exact workload for the same A*B, `estimated` the (post-fallback)
/// estimate, and `classes` the classification ClassifyEstimated produced
/// from it. Checks:
///  - soundness: every exact pair_work / row_chat value lies inside the
///    recorded band (the bands are guarantees, not probabilistic);
///  - coverage: every pair with exact work lands in exactly one bin, and
///    no phantom pair (possible-but-absent work) reaches the dominator
///    bin;
///  - class match: wherever a band does not straddle the classification
///    threshold, the estimated class equals the class the exact rule
///    assigns under the same thresholds — i.e. estimation may only
///    disagree where it explicitly said it could not decide (and the
///    fallback collapses those bands, so a patched classification has no
///    straddlers left);
///  - limited rows: same statement for the row-side threshold, plus the
///    deterministic increasing dispatch order.
[[nodiscard]] Status CheckEstimatedClassification(
    const spgemm::Workload& exact,
    const spgemm::EstimatedWorkload& estimated,
    const core::Classification& classes);

/// The split plan covers every dominator exactly once; each vector's
/// factor is a power of two, its offsets carve [0, col_nnz) into `factor`
/// non-empty contiguous fragments, and the fragments reproduce the
/// original pair's product count exactly (sum of fragment_len * row_nnz
/// == pair_work). The mapper array has total_fragments entries in
/// dispatch order.
[[nodiscard]] Status CheckSplitPlan(const spgemm::Workload& workload,
                      const std::vector<sparse::Index>& dominators,
                      const core::SplitPlan& split);

/// Gathered blocks plus ungathered pairs partition the low-performer set
/// exactly; every combined block holds pairs of one power-of-two lane
/// quota (micro_threads == NextPow2(effective threads) <= 32), respects
/// the block capacity, and launches a whole number of warps (the lane
/// count rounds to a multiple of 32).
[[nodiscard]] Status CheckGatherPlan(const spgemm::Workload& workload,
                       const std::vector<sparse::Index>& low_performers,
                       const core::GatherPlan& gather, int block_size);

/// The merge options reflect the classification: when limiting is active
/// and limited rows exist, the options carry the classifier's threshold
/// and the configured extra shared memory; otherwise limiting is off
/// (threshold <= 0).
[[nodiscard]] Status CheckLimitedMergeOptions(const core::Classification& classes,
                                const core::ReorganizerConfig& config,
                                const spgemm::MergeOptions& options);

/// Plan-level sanity: flops match the workload, and every thread block
/// launches whole warps with consistent per-block accounting
/// (effective <= launched threads, crit <= warp issue ops, non-negative
/// traffic).
[[nodiscard]] Status CheckPlanStructure(const spgemm::SpGemmPlan& plan,
                          int64_t expected_flops);

/// Runs the full invariant suite for one configuration on one A*B:
/// classification, split/gather/limiting plans (as enabled), the built
/// SpGemmPlan, and finally Compute whose CSR output must Validate() and
/// match the reference oracle. The plan-level checks tolerate a reorder
/// pre-pass transparently (flops and confidence are permutation
/// invariant); when config.reorder is set, Compute's output must
/// additionally be bit-identical (after row sorting) to the
/// unpermuted-config baseline — the reorder pass's core promise.
[[nodiscard]] Status VerifyReorganizerInvariants(const sparse::CsrMatrix& a,
                                   const sparse::CsrMatrix& b,
                                   const core::ReorganizerConfig& config);

}  // namespace verify
}  // namespace spnet

#endif  // SPNET_VERIFY_INVARIANTS_H_
