// Fixture: common must not reach up into engine.
#ifndef FIXTURE_COMMON_ALPHA_H_
#define FIXTURE_COMMON_ALPHA_H_

#include "engine/beta.h"

inline int Alpha() { return FixtureBeta() + 1; }

#endif  // FIXTURE_COMMON_ALPHA_H_
