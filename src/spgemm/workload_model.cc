#include "spgemm/workload_model.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/parallel.h"
#include "spgemm/exec_context.h"
#include "spgemm/plan.h"

namespace spnet {
namespace spgemm {

using gpusim::KernelDesc;
using gpusim::Phase;
using gpusim::ThreadBlockDesc;
using sparse::CsrMatrix;
using sparse::Index;
using sparse::Offset;
using sparse::SpanView;

namespace {

/// Chunk partial for the saturating reductions: the accumulated value plus
/// how many accumulations saturated inside the chunk.
struct SatPartial {
  int64_t value = 0;
  int64_t saturations = 0;
};

}  // namespace

Workload BuildWorkload(const CsrMatrix& a, const CsrMatrix& b,
                       ExecContext* ctx) {
  Workload w;
  ThreadPool& pool = GlobalThreadPool();
  const int threads = pool.threads();

  // Block-wise precalculation: nnz per column of A. A scatter over the
  // index array, parallelized as chunked histograms summed column-wise
  // (integer adds, so any combination order gives the serial counts).
  w.a_col_nnz.assign(static_cast<size_t>(a.cols()), 0);
  const int64_t nnz = static_cast<int64_t>(a.indices().size());
  if (threads == 1 || nnz == 0) {
    for (Index c : a.indices()) w.a_col_nnz[static_cast<size_t>(c)]++;
  } else {
    const int64_t hist_grain = GrainForChunkPerThread(nnz, threads);
    const int64_t num_chunks = CeilDiv(nnz, hist_grain);
    std::vector<std::vector<int64_t>> hist(static_cast<size_t>(num_chunks));
    SPNET_CHECK_OK(pool.ParallelFor(0, nnz, hist_grain,
                     [&](int64_t begin, int64_t end, int) {
                       std::vector<int64_t>& h =
                           hist[static_cast<size_t>(begin / hist_grain)];
                       h.assign(static_cast<size_t>(a.cols()), 0);
                       for (int64_t k = begin; k < end; ++k) {
                         h[static_cast<size_t>(
                             a.indices()[static_cast<size_t>(k)])]++;
                       }
                       return Status::Ok();
                     }));
    SPNET_CHECK_OK(pool.ParallelFor(0, a.cols(), GrainForItems(a.cols(), threads),
                     [&](int64_t begin, int64_t end, int) {
                       for (int64_t c = begin; c < end; ++c) {
                         int64_t sum = 0;
                         for (const auto& h : hist) {
                           sum += h[static_cast<size_t>(c)];
                         }
                         w.a_col_nnz[static_cast<size_t>(c)] = sum;
                       }
                       return Status::Ok();
                     }));
  }

  w.b_row_nnz.assign(static_cast<size_t>(b.rows()), 0);
  SPNET_CHECK_OK(pool.ParallelFor(0, b.rows(), GrainForItems(b.rows(), threads),
                   [&](int64_t begin, int64_t end, int) {
                     for (int64_t r = begin; r < end; ++r) {
                       w.b_row_nnz[static_cast<size_t>(r)] =
                           b.RowNnz(static_cast<Index>(r));
                     }
                     return Status::Ok();
                   }));

  // Products and totals saturate instead of wrapping: adversarial nnz
  // vectors (or a saturated upstream value) must degrade to a clamped
  // lower bound plus a counter, never to a negative workload.
  const auto combine_sat = [](SatPartial acc, SatPartial p) {
    bool sat = false;
    acc.value = SatAddI64(acc.value, p.value, &sat);
    acc.saturations += p.saturations + (sat ? 1 : 0);
    return acc;
  };

  w.pair_work.assign(static_cast<size_t>(a.cols()), 0);
  const SatPartial flops_total = pool.ParallelReduce(
      0, a.cols(), GrainForItems(a.cols(), threads), SatPartial{},
      [&](int64_t begin, int64_t end, int) {
        SatPartial p;
        bool sat = false;
        for (int64_t i = begin; i < end; ++i) {
          const int64_t brow =
              i < b.rows() ? w.b_row_nnz[static_cast<size_t>(i)] : 0;
          bool pair_sat = false;
          w.pair_work[static_cast<size_t>(i)] = SatMulI64(
              w.a_col_nnz[static_cast<size_t>(i)], brow, &pair_sat);
          if (pair_sat) ++p.saturations;
          p.value = SatAddI64(p.value, w.pair_work[static_cast<size_t>(i)],
                              &sat);
        }
        if (sat) ++p.saturations;
        return p;
      },
      combine_sat);
  w.flops = flops_total.value;
  w.saturated += flops_total.saturations;

  // Row-wise precalculation: nnz(C-hat) per output row.
  w.row_chat.assign(static_cast<size_t>(a.rows()), 0);
  const SatPartial chat_sat = pool.ParallelReduce(
      0, a.rows(), GrainForItems(a.rows(), threads), SatPartial{},
      [&](int64_t begin, int64_t end, int) {
        SatPartial p;
        for (int64_t r = begin; r < end; ++r) {
          const SpanView row = a.Row(static_cast<Index>(r));
          int64_t f = 0;
          bool sat = false;
          for (Offset k = 0; k < row.size; ++k) {
            const Index j = row.indices[k];
            if (j < b.rows()) {
              f = SatAddI64(f, w.b_row_nnz[static_cast<size_t>(j)], &sat);
            }
          }
          if (sat) ++p.saturations;
          w.row_chat[static_cast<size_t>(r)] = f;
        }
        return p;
      },
      combine_sat);
  w.saturated += chat_sat.saturations;

  // Hashing estimator of the merged row sizes. Each row's estimate is
  // independent; only the int64 total crosses rows. A 0-column B would
  // divide by zero inside the estimator (NaN rows), so it short-circuits
  // to an all-zero estimate; every row estimate is clamped to the hard
  // bounds [0, min(row_chat, cols)] — a merged row can never hold more
  // entries than its intermediate population or the output width.
  const double cols = static_cast<double>(b.cols());
  const int64_t cols_i64 = b.cols();
  w.row_c_est.assign(static_cast<size_t>(a.rows()), 0);
  if (cols_i64 > 0) {
    const SatPartial out_total = pool.ParallelReduce(
        0, a.rows(), GrainForItems(a.rows(), threads), SatPartial{},
        [&](int64_t begin, int64_t end, int) {
          SatPartial p;
          bool sat = false;
          for (int64_t r = begin; r < end; ++r) {
            const int64_t chat = w.row_chat[static_cast<size_t>(r)];
            if (chat <= 0) continue;
            const double f = static_cast<double>(chat);
            double unique = cols * (1.0 - std::exp(-f / cols));
            unique = std::min(unique, f);
            int64_t est = std::max<int64_t>(
                1, static_cast<int64_t>(std::llround(unique)));
            est = std::min(est, std::min(chat, cols_i64));
            est = std::max<int64_t>(est, 0);
            w.row_c_est[static_cast<size_t>(r)] = est;
            p.value = SatAddI64(p.value, est, &sat);
          }
          if (sat) ++p.saturations;
          return p;
        },
        combine_sat);
    w.output_nnz = out_total.value;
    w.saturated += out_total.saturations;
  }
  if (w.saturated > 0) AddCounter(ctx, "workload.saturated", w.saturated);
  return w;
}

namespace {

// Merge rows with at most this many intermediate elements share a block
// thread-per-row; up to the warp bound, warp-per-row.
constexpr int64_t kMergeThreadRowMax = 8;
constexpr int64_t kMergeWarpRowMax = 256;
// Output rows with at most this many distinct entries keep their dense
// accumulator in shared memory.
constexpr int64_t kSharedAccumulatorEntries = 1024;

}  // namespace

std::vector<KernelDesc> BuildMergeKernels(const Workload& workload,
                                          const MergeOptions& options) {
  KernelDesc normal;
  normal.label = "merge";
  normal.phase = Phase::kMerge;
  KernelDesc limited;
  limited.label = "merge-limited";
  limited.phase = Phase::kMerge;

  const bool limiting = options.limit_row_threshold > 0;

  // Partition rows by size class; real merge kernels batch small rows so
  // the block count tracks work, not matrix dimension.
  std::vector<size_t> tiny_rows;
  std::vector<size_t> small_rows;
  std::vector<size_t> big_rows;
  for (size_t r = 0; r < workload.row_chat.size(); ++r) {
    const int64_t chat = workload.row_chat[r];
    if (chat <= 0) continue;
    if (chat <= kMergeThreadRowMax) {
      tiny_rows.push_back(r);
    } else if (chat <= kMergeWarpRowMax) {
      small_rows.push_back(r);
    } else {
      big_rows.push_back(r);
    }
  }

  // Thread-per-row batches.
  const size_t rows_per_block = static_cast<size_t>(options.block_size);
  for (size_t begin = 0; begin < tiny_rows.size(); begin += rows_per_block) {
    const size_t end = std::min(tiny_rows.size(), begin + rows_per_block);
    ThreadBlockDesc tb;
    tb.threads = options.block_size;
    tb.effective_threads = static_cast<int>(end - begin);
    int64_t total = 0;
    int64_t out = 0;
    int64_t crit = 0;
    int64_t warp_issue = 0;
    for (size_t w0 = begin; w0 < end; w0 += 32) {
      const size_t w1 = std::min(end, w0 + 32);
      int64_t warp_max = 0;
      for (size_t k = w0; k < w1; ++k) {
        const int64_t chat = workload.row_chat[tiny_rows[k]];
        total += chat;
        out += workload.row_c_est[tiny_rows[k]];
        warp_max = std::max(warp_max, chat);
      }
      warp_issue += warp_max;
      crit = std::max(crit, warp_max);
    }
    tb.crit_ops = crit;
    tb.warp_issue_ops = warp_issue;
    tb.useful_lane_ops = total;
    tb.bytes_read = kElementBytes * total;
    tb.bytes_written = kElementBytes * out;
    tb.atomic_ops = total;
    tb.atomics_in_shared = true;  // tiny accumulators live in shared memory
    tb.shared_mem_bytes = options.base_shared_mem_bytes;
    normal.blocks.push_back(tb);
  }

  // Warp-per-row batches.
  const size_t warps_per_block =
      static_cast<size_t>(options.block_size) / 32;
  for (size_t begin = 0; begin < small_rows.size();
       begin += warps_per_block) {
    const size_t end = std::min(small_rows.size(), begin + warps_per_block);
    ThreadBlockDesc tb;
    tb.threads = static_cast<int>(32 * (end - begin));
    tb.effective_threads = tb.threads;
    int64_t total = 0;
    int64_t out = 0;
    int64_t crit = 0;
    int64_t warp_issue = 0;
    for (size_t k = begin; k < end; ++k) {
      const int64_t chat = workload.row_chat[small_rows[k]];
      const int64_t lane_ops = CeilDiv(chat, 32);
      total += chat;
      out += workload.row_c_est[small_rows[k]];
      warp_issue += lane_ops;
      crit = std::max(crit, lane_ops);
    }
    tb.crit_ops = crit;
    tb.warp_issue_ops = warp_issue;
    tb.useful_lane_ops = total;
    tb.bytes_read = kElementBytes * total;
    tb.bytes_written = kElementBytes * out;
    tb.atomic_ops = total;
    tb.atomics_in_shared = true;  // per-warp accumulators fit in shared
    tb.shared_mem_bytes = options.base_shared_mem_bytes;
    normal.blocks.push_back(tb);
  }

  // Block-per-row for the long rows — the B-Limiting targets.
  for (size_t r : big_rows) {
    const int64_t chat = workload.row_chat[r];
    const int64_t out = workload.row_c_est[r];
    ThreadBlockDesc tb;
    tb.threads = options.block_size;
    tb.effective_threads = options.block_size;
    const int64_t lane_ops = CeilDiv(chat, options.block_size);
    tb.crit_ops = lane_ops;
    tb.warp_issue_ops = lane_ops * (options.block_size / 32);
    tb.useful_lane_ops = chat;
    tb.bytes_read = kElementBytes * chat;
    tb.bytes_written = kElementBytes * out;
    tb.atomic_ops = chat;
    // A wide output row's accumulator no longer fits on chip: its RMWs go
    // through the L2/DRAM and suffer residency contention.
    tb.atomics_in_shared = out <= kSharedAccumulatorEntries;
    tb.shared_mem_bytes = options.base_shared_mem_bytes;

    const bool is_long = limiting && chat > options.limit_row_threshold;
    if (is_long) {
      tb.shared_mem_bytes += options.extra_shared_mem_bytes;
      limited.blocks.push_back(tb);
    } else {
      normal.blocks.push_back(tb);
    }
  }

  std::vector<KernelDesc> kernels;
  if (!normal.blocks.empty() || limited.blocks.empty()) {
    kernels.push_back(std::move(normal));
  }
  if (!limited.blocks.empty()) {
    kernels.push_back(std::move(limited));
  }
  return kernels;
}

ThreadBlockDesc MakePairBlock(const PairBlockParams& p) {
  ThreadBlockDesc tb;
  // Threads cover the row vector; each thread loops over the column
  // fragment. Rows wider than the block size are strip-mined.
  const int64_t rounded =
      std::min<int64_t>(p.block_size,
                        std::max<int64_t>(32, NextPow2(p.row_nnz)));
  tb.threads = static_cast<int>(rounded);
  tb.effective_threads =
      static_cast<int>(std::min<int64_t>(p.row_nnz, rounded));
  const int64_t strips = CeilDiv(p.row_nnz, rounded);
  const int64_t ops_per_thread = p.col_nnz * strips;
  tb.crit_ops = ops_per_thread;
  tb.warp_issue_ops = CeilDiv(tb.effective_threads, 32) * ops_per_thread;
  tb.useful_lane_ops = p.col_nnz * p.row_nnz;

  // Reads: the column fragment once (broadcast to the block), the row
  // elements once per strip; writes: one intermediate element per multiply
  // (coalesced along the row). The per-row relocation cursors are
  // warp-aggregated increments — negligible next to the element stores —
  // so no atomic term is charged.
  tb.bytes_read = kElementBytes * (p.col_nnz + p.row_nnz);
  tb.bytes_written = kElementBytes * p.col_nnz * p.row_nnz;
  tb.shared_read_bytes =
      std::min<int64_t>(p.shared_read_bytes, tb.bytes_read);
  tb.shared_mem_bytes = 1024;
  return tb;
}

void AppendBalancedStreamingBlocks(KernelDesc* kernel, int64_t total_elements,
                                   int64_t bytes_per_element,
                                   double ops_per_element) {
  constexpr int64_t kTileElements = 8192;
  if (total_elements <= 0) return;
  const int64_t tiles = CeilDiv(total_elements, kTileElements);
  for (int64_t t = 0; t < tiles; ++t) {
    const int64_t elems =
        std::min(kTileElements, total_elements - t * kTileElements);
    ThreadBlockDesc tb;
    tb.threads = 256;
    tb.effective_threads = 256;
    tb.crit_ops = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(CeilDiv(elems, 256)) *
                                ops_per_element));
    tb.warp_issue_ops = tb.crit_ops * 8;
    tb.useful_lane_ops = tb.crit_ops * 256;
    tb.bytes_read = elems * bytes_per_element;
    tb.bytes_written = elems * bytes_per_element;
    tb.shared_mem_bytes = 4096;
    kernel->blocks.push_back(tb);
  }
}

double HostPreprocessSeconds(int64_t scanned_pairs, int64_t copied_elements) {
  // The paper performs all preprocessing on the GPU except B-Splitting
  // (Section V), so the host side carries only the driver/alloc overhead
  // of the extra passes (~25 us), a light O(pairs) result read-back
  // (~0.02 ns/pair), and the B-Splitting vector copies (~2.5 ns/element).
  return 25e-6 + 0.02e-9 * static_cast<double>(scanned_pairs) +
         2.5e-9 * static_cast<double>(copied_elements);
}

}  // namespace spgemm
}  // namespace spnet
