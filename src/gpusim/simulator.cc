#include "gpusim/simulator.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <string>

#include "common/logging.h"
#include "common/math_util.h"

namespace spnet {
namespace gpusim {

namespace {

// Coalesced memory transaction size used to convert bytes to dependent
// access chains.
constexpr double kTransactionBytes = 128.0;

constexpr double kEpsilon = 1e-9;

int EligibleWarps(const ThreadBlockDesc& tb) {
  const int warp = 32;
  const int eff = std::max(tb.effective_threads, 1);
  return static_cast<int>(CeilDiv(eff, warp));
}

}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kExpansion:
      return "expansion";
    case Phase::kMerge:
      return "merge";
    case Phase::kPreprocess:
      return "preprocess";
  }
  return "unknown";
}

int OccupancyBlocksPerSm(const DeviceSpec& device, int threads_per_block,
                         int64_t shared_mem_per_block) {
  if (threads_per_block <= 0) return 0;
  int64_t by_blocks = device.max_blocks_per_sm;
  int64_t by_threads = device.max_threads_per_sm / threads_per_block;
  int64_t by_shmem = shared_mem_per_block > 0
                         ? device.shared_mem_per_sm / shared_mem_per_block
                         : by_blocks;
  int64_t blocks = std::min({by_blocks, by_threads, by_shmem});
  return static_cast<int>(std::max<int64_t>(blocks, 0));
}

Simulator::BlockCost Simulator::CostBlock(const ThreadBlockDesc& tb,
                                          int resident_tbs,
                                          int resident_eligible_warps,
                                          double lsu_backlog,
                                          double issue_backlog,
                                          double dram_backlog) const {
  BlockCost cost;
  const int eligible = EligibleWarps(tb);
  resident_tbs = std::max(resident_tbs, 1);
  resident_eligible_warps = std::max(resident_eligible_warps, eligible);

  // --- Instruction issue under lock-step SIMT execution. -------------------
  // The SM's warp schedulers form a shared server: the block's own issue
  // demand runs at its own warp-level parallelism, queued behind the SM's
  // outstanding issue backlog (so many co-resident blocks still serialize,
  // while a long-running block alone on the SM gets the full width).
  const double own_issue =
      static_cast<double>(tb.warp_issue_ops) * device_.cpi /
      std::max(1.0,
               std::min<double>(eligible, device_.schedulers_per_sm));
  cost.issue_service = static_cast<double>(tb.warp_issue_ops) * device_.cpi /
                       device_.schedulers_per_sm;
  const double issue_cycles = std::max(own_issue, issue_backlog +
                                                      cost.issue_service);

  // --- Memory service mix. --------------------------------------------------
  // Hot reads are cross-block shared data (kept in cache by construction);
  // the rest of the reads are streaming and only catch the short-term
  // locality hit rate; writes transit the L2 on their way to DRAM.
  const double total_bytes =
      static_cast<double>(tb.bytes_read + tb.bytes_written);
  const double hot_bytes = std::min(
      static_cast<double>(tb.shared_read_bytes), static_cast<double>(tb.bytes_read));
  const double cold_reads = static_cast<double>(tb.bytes_read) - hot_bytes;
  const double writes = static_cast<double>(tb.bytes_written);

  const double l2_cold = device_.streaming_hit_rate * cold_reads;
  const double dram_bytes = (cold_reads - l2_cold) + writes;

  cost.l2_read_bytes = static_cast<int64_t>(hot_bytes + l2_cold);
  cost.l2_write_bytes = static_cast<int64_t>(writes);
  cost.dram_bytes = static_cast<int64_t>(dram_bytes);

  // --- Bandwidth-limited streaming time. ------------------------------------
  // Two shared servers constrain streaming: the SM's load/store pipe
  // (per-SM queue) and the device DRAM (global queue). A block's memory
  // time is its own demand at full server width, queued behind whatever
  // is already outstanding. Hot data is mostly satisfied by the L1 and
  // never transits either.
  const double lsu_bytes = total_bytes - device_.hot_l1_fraction * hot_bytes;
  cost.lsu_service =
      lsu_bytes / std::max(device_.lsu_bw_bytes_per_sm, kEpsilon);
  cost.dram_service =
      dram_bytes / std::max(device_.dram_bw_bytes_per_cycle, kEpsilon);
  const double bw_cycles = std::max(lsu_backlog + cost.lsu_service,
                                    dram_backlog + cost.dram_service);

  // --- Exposed latency after warp-level hiding. ------------------------------
  // Only dependent *reads* stall warps; stores are fire-and-forget through
  // the write pipe. Hot reads come from the L1 at a fraction of the L2
  // latency.
  const double lsu_read_bytes =
      static_cast<double>(tb.bytes_read) - device_.hot_l1_fraction * hot_bytes;
  const double chains = std::max(0.0, lsu_read_bytes) / kTransactionBytes;
  const double read_bytes_total = hot_bytes + cold_reads;
  const double avg_latency =
      read_bytes_total > 0
          ? (0.3 * hot_bytes * device_.l2_latency_cycles +
             l2_cold * device_.l2_latency_cycles +
             (cold_reads - l2_cold) * device_.dram_latency_cycles) /
                read_bytes_total
          : 0.0;
  // Hiding comes from the block's *own* eligible warps: co-resident blocks
  // of the same kernel stall on the same access pattern at the same time,
  // so a block with a single effective warp has little to switch to
  // (the paper's Section III-A2 argument, and what B-Gathering fixes).
  // The affine form keeps the underloaded-block penalty in the 1.5-3x
  // range the paper's B-Gathering gains imply.
  const double hiding = std::clamp(
      device_.latency_hiding_base + device_.latency_hiding_per_warp * eligible,
      1.0, device_.max_latency_hiding);
  // Stores are fire-and-forget only while the store queue has room; a
  // block with few eligible warps stalls on store-queue backpressure the
  // same way it stalls on loads.
  const double store_chains =
      static_cast<double>(tb.bytes_written) / device_.store_transaction_bytes;
  const double latency_cycles =
      (chains * avg_latency + store_chains * device_.store_backpressure_cycles) /
      hiding;

  // --- Atomic serialization (merge accumulators). ----------------------------
  // Conflicting atomics serialize in the L2. Every resident merge block
  // keeps an in-flight footprint (accumulator tile + stream buffers) live
  // in the cache; once the union of resident footprints outgrows the L2,
  // RMWs start bouncing and the per-op cost climbs — the contention that
  // B-Limiting relieves by lowering residency. Atomics flow through the
  // same memory pipe, so they overlap with (rather than add to) the
  // streaming time.
  double atomic_cycles = 0.0;
  if (tb.atomics_in_shared) {
    // On-chip accumulator: fast, contention-free.
    atomic_cycles = static_cast<double>(tb.atomic_ops) *
                    device_.shared_atomic_cycles / eligible;
  } else {
    const double inflight_window = device_.block_inflight_bytes *
                                   static_cast<double>(resident_tbs) *
                                   device_.num_sms;
    // The superlinear exponent models thrash collapse: with linear growth,
    // extra residency would exactly cancel the extra contention and
    // B-Limiting could never pay off.
    const double atomic_contention = std::clamp(
        std::pow(inflight_window / static_cast<double>(device_.l2_size), 1.5),
        1.0, device_.max_atomic_contention);
    atomic_cycles = static_cast<double>(tb.atomic_ops) * device_.atomic_cycles /
                    eligible * atomic_contention;
  }

  cost.memory_cycles = bw_cycles + latency_cycles;
  cost.cycles = device_.block_startup_cycles +
                std::max({issue_cycles, bw_cycles, atomic_cycles}) +
                latency_cycles;
  return cost;
}

KernelStats Simulator::Schedule(const KernelDesc& kernel) const {
  KernelStats stats;
  stats.sm_busy_cycles.assign(static_cast<size_t>(device_.num_sms), 0.0);
  stats.num_blocks = static_cast<int64_t>(kernel.blocks.size());
  if (kernel.blocks.empty()) {
    stats.cycles = 0.0;
    stats.seconds = 0.0;
    return stats;
  }

  struct SmState {
    int resident_tbs = 0;
    int resident_threads = 0;
    int64_t resident_shmem = 0;
    int resident_eligible_warps = 0;
    double lsu_busy_until = 0.0;
    double issue_busy_until = 0.0;
  };
  std::vector<SmState> sms(static_cast<size_t>(device_.num_sms));

  struct Event {
    double time;
    int sm;
    int threads;
    int64_t shmem;
    int eligible;
    bool operator>(const Event& other) const { return time > other.time; }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;

  size_t next_block = 0;
  double now = 0.0;
  double resident_integral = 0.0;
  double last_time = 0.0;
  int total_resident = 0;
  double dram_busy_until = 0.0;
  double dispatch_busy_until = 0.0;

  auto can_host = [&](const SmState& sm, const ThreadBlockDesc& tb) {
    if (sm.resident_tbs + 1 > device_.max_blocks_per_sm) return false;
    if (sm.resident_threads + tb.threads > device_.max_threads_per_sm) {
      return false;
    }
    if (sm.resident_shmem + tb.shared_mem_bytes > device_.shared_mem_per_sm) {
      return false;
    }
    return true;
  };

  auto place = [&](int sm_id, const ThreadBlockDesc& tb) {
    SmState& sm = sms[static_cast<size_t>(sm_id)];
    const int eligible = EligibleWarps(tb);
    sm.resident_tbs++;
    sm.resident_threads += tb.threads;
    sm.resident_shmem += tb.shared_mem_bytes;
    sm.resident_eligible_warps += eligible;
    total_resident++;

    const double lsu_backlog = std::max(0.0, sm.lsu_busy_until - now);
    const double issue_backlog = std::max(0.0, sm.issue_busy_until - now);
    const double dram_backlog = std::max(0.0, dram_busy_until - now);
    // The block waits for its slot at the device-wide dispatcher before
    // any of its work starts.
    const double dispatch_wait = std::max(0.0, dispatch_busy_until - now);
    dispatch_busy_until =
        std::max(dispatch_busy_until, now) + device_.block_dispatch_cycles;
    BlockCost cost =
        CostBlock(tb, sm.resident_tbs, sm.resident_eligible_warps,
                  lsu_backlog, issue_backlog, dram_backlog);
    cost.cycles += dispatch_wait;
    sm.lsu_busy_until = std::max(sm.lsu_busy_until, now) + cost.lsu_service;
    sm.issue_busy_until =
        std::max(sm.issue_busy_until, now) + cost.issue_service;
    dram_busy_until = std::max(dram_busy_until, now) + cost.dram_service;

    stats.sm_busy_cycles[static_cast<size_t>(sm_id)] += cost.cycles;
    stats.num_warps += CeilDiv(std::max(tb.threads, 1), 32);
    stats.useful_lane_ops += tb.useful_lane_ops;
    stats.issued_lane_slots += tb.crit_ops * std::max(tb.threads, 1);
    stats.l2_read_bytes += cost.l2_read_bytes;
    stats.l2_write_bytes += cost.l2_write_bytes;
    stats.dram_bytes += cost.dram_bytes;

    events.push(Event{now + cost.cycles, sm_id, tb.threads,
                      tb.shared_mem_bytes, eligible});
  };

  auto backfill = [&](int sm_id) {
    while (next_block < kernel.blocks.size()) {
      const ThreadBlockDesc& tb = kernel.blocks[next_block];
      if (!can_host(sms[static_cast<size_t>(sm_id)], tb)) break;
      place(sm_id, tb);
      ++next_block;
    }
  };

  // Initial wave: fill SMs round-robin one block at a time so early blocks
  // spread across the device the way the hardware distributor does.
  bool progress = true;
  while (progress && next_block < kernel.blocks.size()) {
    progress = false;
    for (int s = 0; s < device_.num_sms && next_block < kernel.blocks.size();
         ++s) {
      const ThreadBlockDesc& tb = kernel.blocks[next_block];
      if (!can_host(sms[static_cast<size_t>(s)], tb)) continue;
      place(s, tb);
      ++next_block;
      progress = true;
    }
  }

  double finish_time = 0.0;
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    resident_integral += total_resident * (ev.time - last_time);
    last_time = ev.time;
    now = ev.time;
    finish_time = std::max(finish_time, ev.time);

    SmState& sm = sms[static_cast<size_t>(ev.sm)];
    sm.resident_tbs--;
    sm.resident_threads -= ev.threads;
    sm.resident_shmem -= ev.shmem;
    sm.resident_eligible_warps -= ev.eligible;
    total_resident--;

    backfill(ev.sm);
  }

  stats.cycles = finish_time + device_.kernel_launch_cycles;
  stats.seconds = device_.CyclesToSeconds(stats.cycles);
  if (finish_time > 0.0) {
    stats.avg_resident_blocks =
        resident_integral / finish_time / device_.num_sms;
  }
  return stats;
}

Result<KernelStats> Simulator::RunKernel(const KernelDesc& kernel) const {
  for (const ThreadBlockDesc& tb : kernel.blocks) {
    if (tb.threads <= 0) {
      return Status::InvalidArgument("thread block with non-positive size in " +
                                     kernel.label);
    }
    if (tb.threads > device_.max_threads_per_sm) {
      return Status::InvalidArgument("thread block larger than an SM in " +
                                     kernel.label);
    }
    if (tb.shared_mem_bytes > device_.shared_mem_per_sm) {
      return Status::InvalidArgument(
          "block shared memory exceeds SM capacity in " + kernel.label);
    }
  }

  return Schedule(kernel);
}

Result<KernelStats> Simulator::RunPipeline(
    const std::vector<KernelDesc>& kernels) const {
  KernelStats total;
  total.sm_busy_cycles.assign(static_cast<size_t>(device_.num_sms), 0.0);
  for (const KernelDesc& k : kernels) {
    SPNET_ASSIGN_OR_RETURN(KernelStats s, RunKernel(k));
    total.Accumulate(s);
  }
  total.seconds = device_.CyclesToSeconds(total.cycles);
  return total;
}

}  // namespace gpusim
}  // namespace spnet
