#ifndef SPNET_SPARSE_COO_MATRIX_H_
#define SPNET_SPARSE_COO_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sparse/types.h"

namespace spnet {
namespace sparse {

/// Coordinate-format sparse matrix: an unordered list of (row, col, value)
/// triplets. This is the interchange format used by generators and by
/// Matrix Market I/O; algorithms operate on the compressed formats.
class CooMatrix {
 public:
  CooMatrix() = default;
  CooMatrix(Index rows, Index cols) : rows_(rows), cols_(cols) {}

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Offset nnz() const { return static_cast<Offset>(row_.size()); }

  const std::vector<Index>& row_indices() const { return row_; }
  const std::vector<Index>& col_indices() const { return col_; }
  const std::vector<Value>& values() const { return val_; }

  /// Appends a triplet. Bounds are validated by Validate()/ToCsr(), not
  /// here, so generators can fill batches cheaply.
  void Add(Index row, Index col, Value value) {
    row_.push_back(row);
    col_.push_back(col);
    val_.push_back(value);
  }

  void Reserve(Offset n) {
    row_.reserve(static_cast<size_t>(n));
    col_.reserve(static_cast<size_t>(n));
    val_.reserve(static_cast<size_t>(n));
  }

  void Clear() {
    row_.clear();
    col_.clear();
    val_.clear();
  }

  /// Sorts triplets by (row, col) and sums duplicates in place.
  void SortAndCombine();

  /// Checks that all indices are within [0, rows) x [0, cols).
  Status Validate() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Index> row_;
  std::vector<Index> col_;
  std::vector<Value> val_;
};

}  // namespace sparse
}  // namespace spnet

#endif  // SPNET_SPARSE_COO_MATRIX_H_
