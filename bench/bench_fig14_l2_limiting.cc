// Reproduces Figure 14: L2 read/write throughput of the merge phase as
// the B-Limiting factor (extra shared memory per merging block, in units
// of 6144 bytes) sweeps 0..7, over the 10 Stanford datasets. The expected
// shape is an inverted U: residency-driven contention falls first, then
// occupancy loss dominates.
//
// Flags: --scale (default 0.25), --device, --seed, --csv.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/block_reorganizer.h"
#include "gpusim/simulator.h"
#include "metrics/report.h"

namespace spnet {
namespace {

constexpr int64_t kLimitUnit = 6144;

gpusim::KernelStats MergeStats(const sparse::CsrMatrix& a,
                               const gpusim::DeviceSpec& device,
                               int64_t extra_shmem) {
  core::ReorganizerConfig config;
  config.enable_splitting = false;
  config.enable_gathering = false;
  config.enable_limiting = extra_shmem > 0;
  config.limiting_extra_shmem = extra_shmem;
  core::BlockReorganizerSpGemm alg(config);
  auto plan = alg.Plan(a, a, device);
  SPNET_CHECK(plan.ok());
  gpusim::Simulator sim(device);
  gpusim::KernelStats total;
  total.sm_busy_cycles.assign(static_cast<size_t>(device.num_sms), 0.0);
  for (const auto& k : plan->kernels) {
    if (k.phase != gpusim::Phase::kMerge) continue;
    auto s = sim.RunKernel(k);
    SPNET_CHECK(s.ok());
    total.Accumulate(*s);
  }
  total.seconds = device.CyclesToSeconds(total.cycles);
  return total;
}

int Run(int argc, char** argv) {
  const bench::BenchOptions options =
      bench::BenchOptions::FromArgs(argc, argv);
  const gpusim::DeviceSpec device = options.Device();

  std::vector<std::string> header = {"dataset", "metric"};
  for (int f = 0; f <= 7; ++f) {
    header.push_back(std::to_string(f * kLimitUnit));
  }
  metrics::Table table(header);

  for (const std::string& name : datasets::StanfordDatasetNames()) {
    const sparse::CsrMatrix a = bench::LoadDataset(name, options);
    std::vector<std::string> thr_row = {name, "L2 GB/s"};
    std::vector<std::string> time_row = {name, "merge ms"};
    for (int f = 0; f <= 7; ++f) {
      const auto stats = MergeStats(a, device, f * kLimitUnit);
      thr_row.push_back(metrics::FormatDouble(
          stats.L2ReadThroughputGBs() + stats.L2WriteThroughputGBs(), 1));
      time_row.push_back(metrics::FormatDouble(stats.seconds * 1e3, 3));
    }
    table.AddRow(std::move(thr_row));
    table.AddRow(std::move(time_row));
  }

  std::printf("== Figure 14: merge-phase L2 throughput vs limiting factor "
              "(extra shared memory bytes; %s, scale %.2f) ==\n",
              device.name.c_str(), options.scale);
  std::fputs(options.csv ? table.ToCsv().c_str() : table.ToString().c_str(),
             stdout);
  std::printf("\nPaper reference: throughput rises with the limiting factor "
              "to a peak and then falls as warp occupancy suffers; the "
              "default factor is 4 x 6144 bytes (L2 read +1.49x, write "
              "+1.52x on average).\n");

  bench::BenchJson json("fig14_l2_limiting", "Figure 14", options);
  json.AddTable("l2_throughput_vs_limiting_factor", table);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
