#ifndef SPNET_SPARSE_CSR_MATRIX_H_
#define SPNET_SPARSE_CSR_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sparse/coo_matrix.h"
#include "sparse/types.h"

namespace spnet {
namespace sparse {

/// A contiguous view over one compressed row (or column, for CSC).
struct SpanView {
  const Index* indices = nullptr;
  const Value* values = nullptr;
  Offset size = 0;
};

/// Compressed Sparse Row matrix: `ptr` has rows()+1 entries; the nonzeros
/// of row r live at positions [ptr[r], ptr[r+1]) of `indices`/`values`.
///
/// Column indices within a row are kept sorted by the builders in this
/// library, but algorithms that produce unordered output (the Gustavson-
/// style merge, like the paper's) may return unsorted rows; use
/// SortRows() or the comparison helpers that tolerate unordered rows.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from COO; duplicate entries are summed. O(nnz log nnz).
  static Result<CsrMatrix> FromCoo(const CooMatrix& coo);

  /// Builds directly from parts. Validates the invariants.
  static Result<CsrMatrix> FromParts(Index rows, Index cols,
                                     std::vector<Offset> ptr,
                                     std::vector<Index> indices,
                                     std::vector<Value> values);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Offset nnz() const { return ptr_.empty() ? 0 : ptr_.back(); }

  const std::vector<Offset>& ptr() const { return ptr_; }
  const std::vector<Index>& indices() const { return indices_; }
  const std::vector<Value>& values() const { return values_; }

  /// Number of nonzeros in row r.
  Offset RowNnz(Index r) const { return ptr_[r + 1] - ptr_[r]; }

  /// View over row r.
  SpanView Row(Index r) const {
    return SpanView{indices_.data() + ptr_[r], values_.data() + ptr_[r],
                    RowNnz(r)};
  }

  /// Transposed copy (CSR of A^T). O(nnz).
  CsrMatrix Transpose() const;

  /// Sorts the column indices within every row (stable for values).
  void SortRows();

  /// True if every row's column indices are strictly increasing.
  bool RowsSorted() const;

  /// Structural + bounds invariants; returns the first violation found.
  Status Validate() const;

  /// Converts back to COO triplets.
  CooMatrix ToCoo() const;

  /// Total bytes of the three arrays (for memory-traffic accounting).
  int64_t ByteSize() const {
    return static_cast<int64_t>(ptr_.size() * sizeof(Offset) +
                                indices_.size() * sizeof(Index) +
                                values_.size() * sizeof(Value));
  }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Offset> ptr_;
  std::vector<Index> indices_;
  std::vector<Value> values_;
};

/// Compressed Sparse Column matrix. Stored as the CSR of the transpose:
/// Col(c) views column c of the logical matrix. This is the "A side" format
/// of the outer-product scheme (a column of A times a row of B).
class CscMatrix {
 public:
  CscMatrix() = default;

  /// Builds the CSC form of `a` (i.e. compresses a's columns). O(nnz).
  static CscMatrix FromCsr(const CsrMatrix& a);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Offset nnz() const { return t_.nnz(); }

  /// Number of nonzeros in column c.
  Offset ColNnz(Index c) const { return t_.RowNnz(c); }

  /// View over column c: indices are the row positions of the nonzeros.
  SpanView Col(Index c) const { return t_.Row(c); }

  const std::vector<Offset>& ptr() const { return t_.ptr(); }
  const std::vector<Index>& indices() const { return t_.indices(); }
  const std::vector<Value>& values() const { return t_.values(); }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  CsrMatrix t_;  // CSR of the transpose.
};

/// True when a and b have the same shape and the same numeric content,
/// tolerating unordered rows and |delta| <= tol per entry.
bool CsrApproxEqual(const CsrMatrix& a, const CsrMatrix& b,
                    double tol = 1e-9);

}  // namespace sparse
}  // namespace spnet

#endif  // SPNET_SPARSE_CSR_MATRIX_H_
