#include "metrics/json_writer.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace spnet {
namespace metrics {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_in_container_.empty()) {
    if (!first_in_container_.back()) out_ += ',';
    first_in_container_.back() = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  first_in_container_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  first_in_container_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  first_in_container_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  first_in_container_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  if (!first_in_container_.empty() && !first_in_container_.back()) out_ += ',';
  if (!first_in_container_.empty()) first_in_container_.back() = false;
  out_ += '"';
  out_ += EscapeJson(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += EscapeJson(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // %.17g never emits a decimal point for integral values; that is still
  // valid JSON (a number), so leave it as-is.
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status(StatusCode::kIoError, "cannot open for write: " + path);
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return Status(StatusCode::kIoError, "short write: " + path);
  }
  return Status::Ok();
}

}  // namespace metrics
}  // namespace spnet
