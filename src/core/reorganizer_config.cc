#include "core/reorganizer_config.h"

#include <string>

#include "common/math_util.h"

namespace spnet {
namespace core {

Status ReorganizerConfig::Validate() const {
  if (!(alpha > 0.0)) {
    return Status::InvalidArgument(
        "reorganizer alpha must be > 0, got " + std::to_string(alpha));
  }
  if (!(beta > 0.0)) {
    return Status::InvalidArgument("reorganizer beta must be > 0, got " +
                                   std::to_string(beta));
  }
  if (splitting_factor_override < 0 ||
      (splitting_factor_override > 0 &&
       !IsPow2(static_cast<int64_t>(splitting_factor_override)))) {
    return Status::InvalidArgument(
        "splitting_factor_override must be 0 (heuristic) or a power of two, "
        "got " +
        std::to_string(splitting_factor_override));
  }
  if (limiting_extra_shmem < 0) {
    return Status::InvalidArgument(
        "limiting_extra_shmem must be >= 0, got " +
        std::to_string(limiting_extra_shmem));
  }
  if (block_size <= 0 || block_size % 32 != 0) {
    return Status::InvalidArgument(
        "block_size must be a positive multiple of 32, got " +
        std::to_string(block_size));
  }
  return Status::Ok();
}

}  // namespace core
}  // namespace spnet
