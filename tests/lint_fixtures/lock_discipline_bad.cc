// Fixture: std lock primitives used directly, and an spnet::Mutex member
// that no GUARDED_BY in the class body accounts for.

#include <mutex>

#include "common/mutex.h"

namespace spnet {

class BadStdLock {
 public:
  void Add(long v) {
    std::lock_guard<std::mutex> lock(mu_);
    total_ += v;
  }

 private:
  std::mutex mu_;
  long total_ = 0;
};

class BadUnguarded {
 public:
  void Bump() {
    MutexLock lock(&mu_);
    ++count_;
  }

 private:
  Mutex mu_;
  long count_ = 0;
};

}  // namespace spnet
