#ifndef SPNET_COMMON_STATUS_H_
#define SPNET_COMMON_STATUS_H_

#include <cstdlib>
#include <cstdio>
#include <string>
#include <utility>

namespace spnet {

/// Error categories used across the library. Modeled after the
/// RocksDB/Abseil status idiom: the library is exception-free, and every
/// fallible operation reports through Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// A cheap value type describing the outcome of a fallible operation.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
///
/// The class is [[nodiscard]]: a call site that drops a returned Status on
/// the floor is a compile error under SPNET_WERROR (and an spnet_lint
/// `discarded-status` diagnostic). Intentional drops must say so with a
/// cast: `(void)DoThing();  // why it is safe to ignore`.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// A bounded resource (queue slot, tenant quota) is spent; retrying
  /// later may succeed. This is the admission-control rejection code: it
  /// deliberately differs from kFailedPrecondition (the caller can fix
  /// nothing) and kDeadlineExceeded (time, not capacity, ran out).
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> couples a Status with a value; the value is only meaningful
/// when ok(). Move-friendly, exception-free analogue of absl::StatusOr.
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit from a non-OK status: failure. Constructing from an OK
  /// status without a value is a programming error and aborts.
  Result(Status status) : status_(std::move(status)), value_() {  // NOLINT
    if (status_.ok()) {
      std::fprintf(stderr, "Result constructed from OK status without value\n");
      std::abort();
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accessors abort when !ok(); callers must test ok() first.
  const T& value() const& {
    CheckOk();
    return value_;
  }
  T& value() & {
    CheckOk();
    return value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "Result accessed with error status: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  T value_;
};

/// Propagates a non-OK status from an expression to the caller.
#define SPNET_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::spnet::Status _spnet_status = (expr);     \
    if (!_spnet_status.ok()) return _spnet_status; \
  } while (false)

/// Asserts that an operation which is infallible by construction really
/// succeeded; aborts with the status text otherwise. This is the loud
/// alternative to discarding a [[nodiscard]] Status: use it where the
/// enclosing function cannot propagate (returns a value, not Status) and
/// every failure path of `expr` is provably unreachable — e.g. a
/// ParallelFor whose chunk function always returns Ok. Never use it to
/// silence a genuinely fallible call.
#define SPNET_CHECK_OK(expr)                                          \
  do {                                                                \
    const ::spnet::Status _spnet_check_status = (expr);               \
    if (!_spnet_check_status.ok()) {                                  \
      std::fprintf(stderr, "SPNET_CHECK_OK failed at %s:%d: %s\n",    \
                   __FILE__, __LINE__,                                \
                   _spnet_check_status.ToString().c_str());           \
      std::abort();                                                   \
    }                                                                 \
  } while (false)

#define SPNET_INTERNAL_CONCAT_IMPL(a, b) a##b
#define SPNET_INTERNAL_CONCAT(a, b) SPNET_INTERNAL_CONCAT_IMPL(a, b)

#define SPNET_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

/// Evaluates a Result<T> expression; on error returns its status, otherwise
/// moves the value into `lhs` (which may be a declaration).
#define SPNET_ASSIGN_OR_RETURN(lhs, expr)                                     \
  SPNET_INTERNAL_ASSIGN_OR_RETURN(                                            \
      SPNET_INTERNAL_CONCAT(_spnet_result_, __LINE__), lhs, expr)

}  // namespace spnet

#endif  // SPNET_COMMON_STATUS_H_
