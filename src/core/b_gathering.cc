#include "core/b_gathering.h"

#include <algorithm>
#include <cstddef>

#include "common/math_util.h"
#include "spgemm/exec_context.h"

namespace spnet {
namespace core {

using sparse::Index;

GatherPlan BuildGatherPlan(const spgemm::Workload& workload,
                           const std::vector<Index>& low_performers,
                           const ReorganizerConfig& config,
                           spgemm::ExecContext* ctx) {
  metrics::ScopedSpan span(spgemm::TraceOf(ctx), "b-gathering");
  GatherPlan plan;

  // Bin n holds pairs whose effective thread count fits in 2^n lanes
  // (2^(n-1) < eff <= 2^n); low performers have eff < 32 so quotas go up
  // to 32. The paper packs into 32-thread blocks (gathering factor
  // 32/2^n); our combined blocks are block_size threads, which extends
  // gathering to the 17..31-lane bin as well (factor block_size/32).
  constexpr int kBins = 6;
  std::vector<Index> bins[kBins];
  for (Index pair : low_performers) {
    const int64_t eff = workload.b_row_nnz[static_cast<size_t>(pair)];
    if (eff <= 0) continue;
    const int64_t quota = NextPow2(eff);
    const int bin = Log2Floor(quota);
    if (bin >= kBins) {
      plan.ungathered.push_back(pair);
      continue;
    }
    bins[bin].push_back(pair);
  }

  for (int n = 0; n < kBins; ++n) {
    std::vector<Index>& bin = bins[n];
    if (bin.empty()) continue;
    const int micro_threads = 1 << n;
    const int capacity = std::max(1, config.block_size / micro_threads);
    if (capacity <= 1 || bin.size() < 2) {
      // Gathering factor 1 (or a single member) gains nothing; keep the
      // blocks as they are to avoid serialization (paper Fig. 6, bin 3).
      for (Index pair : bin) plan.ungathered.push_back(pair);
      continue;
    }
    // Sort by per-thread work (the A-column length) so the micro-blocks
    // sharing a warp run similar lock-step iteration counts.
    std::sort(bin.begin(), bin.end(), [&](Index x, Index y) {
      const int64_t wx = workload.a_col_nnz[static_cast<size_t>(x)];
      const int64_t wy = workload.a_col_nnz[static_cast<size_t>(y)];
      if (wx != wy) return wx > wy;
      return x < y;
    });
    for (size_t begin = 0; begin < bin.size();
         begin += static_cast<size_t>(capacity)) {
      const size_t end =
          std::min(bin.size(), begin + static_cast<size_t>(capacity));
      CombinedBlock block;
      block.micro_threads = micro_threads;
      block.pairs.assign(bin.begin() + static_cast<ptrdiff_t>(begin),
                         bin.begin() + static_cast<ptrdiff_t>(end));
      plan.gathered_pairs += static_cast<int64_t>(block.pairs.size());
      plan.blocks.push_back(std::move(block));
    }
  }
  spgemm::SetGauge(ctx, "gathering.combined_blocks",
                   static_cast<double>(plan.blocks.size()));
  spgemm::SetGauge(ctx, "gathering.gathered_pairs",
                   static_cast<double>(plan.gathered_pairs));
  spgemm::SetGauge(ctx, "gathering.ungathered_pairs",
                   static_cast<double>(plan.ungathered.size()));
  return plan;
}

}  // namespace core
}  // namespace spnet
