// Fixture: deleted functions, operator new declarations, smart pointers
// and mentions inside literals/comments never fire raw-new-delete.
#include <memory>

namespace spnet {

class Pool {
 public:
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;
  void* operator new(std::size_t size);
  void operator delete(void* p);
};

// Raw new and delete in prose do not count.
inline constexpr char kHint[] = "never write new or delete by hand";

void Demo() { auto owned = std::make_unique<int>(3); }

}  // namespace spnet
