#ifndef SPNET_COMMON_PARALLEL_H_
#define SPNET_COMMON_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/math_util.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace spnet {

/// A fixed-size host thread pool for the functional (CPU) side of the
/// pipeline. Work is distributed by chunk stealing: a ParallelFor call
/// splits its range into grain-sized chunks and every participating thread
/// (the N-1 workers plus the calling thread) claims chunks through one
/// atomic cursor until the range is drained. There are no per-thread
/// deques to steal from — the shared cursor is the whole scheduler — which
/// keeps the pool tiny and makes chunk execution order irrelevant to the
/// result as long as callers keep chunks independent.
///
/// The pool is exception-free like the rest of the library: chunk
/// functions report through Status, and ParallelFor returns the failure
/// with the lowest chunk index among those that ran (remaining chunks are
/// skipped once any failure is observed).
///
/// Nested ParallelFor calls from inside a chunk run inline on the calling
/// thread (serial), so composing parallel helpers cannot deadlock.
class ThreadPool {
 public:
  /// Creates the pool; `threads` <= 0 selects std::thread::hardware_concurrency.
  /// A pool of 1 runs everything inline on the caller with no workers.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total participating threads (workers + the calling thread).
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Monotonic execution counters, snapshotted for observability. The pool
  /// lives in `common` and cannot see the metrics layer, so it exposes a
  /// plain struct; spgemm::ExecContext diffs two snapshots into its
  /// Registry. "Stolen" counts chunks executed by a thread other than the
  /// submitter (the submitter participates as thread 0).
  struct Stats {
    int64_t parallel_jobs = 0;  ///< ParallelFor calls fanned out to workers
    int64_t inline_jobs = 0;    ///< calls run inline (1 thread/1 chunk/nested)
    int64_t chunks_run = 0;     ///< chunks executed on either path
    int64_t chunks_stolen = 0;  ///< chunks run by thread_index != 0
  };
  Stats stats() const;

  /// Chunk function: processes [chunk_begin, chunk_end). `thread_index` is
  /// in [0, threads()) and is stable for the duration of the chunk — use it
  /// to index per-thread scratch. The calling thread participates as
  /// index 0.
  using ChunkFn = std::function<Status(int64_t chunk_begin, int64_t chunk_end,
                                       int thread_index)>;

  /// Runs `fn` over [begin, end) in chunks of `grain` (clamped to >= 1).
  /// Empty ranges return Ok without invoking `fn`. Single-chunk ranges,
  /// 1-thread pools and nested calls run inline on the caller.
  [[nodiscard]] Status ParallelFor(int64_t begin, int64_t end,
                                   int64_t grain, const ChunkFn& fn);

  /// Map-reduce over [begin, end): `map(chunk_begin, chunk_end, thread)`
  /// produces one partial per chunk; partials are combined *in chunk
  /// order* on the calling thread, so the result is deterministic for any
  /// thread count even when `combine` is not commutative.
  template <typename T, typename MapFn, typename CombineFn>
  T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T init,
                   const MapFn& map, const CombineFn& combine) {
    if (end <= begin) return init;
    if (grain < 1) grain = 1;
    const int64_t num_chunks = CeilDiv(end - begin, grain);
    std::vector<T> partials(static_cast<size_t>(num_chunks), init);
    SPNET_CHECK_OK(ParallelFor(begin, end, grain,
                [&](int64_t b, int64_t e, int thread_index) {
                  partials[static_cast<size_t>((b - begin) / grain)] =
                      map(b, e, thread_index);
                  return Status::Ok();
                }));
    T acc = std::move(init);
    for (T& p : partials) acc = combine(std::move(acc), std::move(p));
    return acc;
  }

 private:
  struct Job;

  void WorkerLoop(int worker_index);
  /// Claims and runs chunks of `job` until the cursor is exhausted.
  static void RunChunks(Job* job, int thread_index);
  void NotifyJobDone();

  std::vector<std::thread> workers_;  ///< immutable after construction
  Mutex mu_;
  CondVar work_cv_;  ///< workers wait here for a job
  CondVar done_cv_;  ///< the submitter waits here
  std::shared_ptr<Job> job_ GUARDED_BY(mu_);
  uint64_t job_generation_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  /// Serializes concurrent top-level submitters; always taken before mu_.
  Mutex submit_mu_ ACQUIRED_BEFORE(mu_);

  std::atomic<int64_t> stat_parallel_jobs_{0};
  std::atomic<int64_t> stat_inline_jobs_{0};
  std::atomic<int64_t> stat_chunks_run_{0};
  std::atomic<int64_t> stat_chunks_stolen_{0};
};

/// The process-wide pool used by the functional spGEMM stack. Created
/// lazily with the count last requested via SetGlobalThreadCount (default:
/// hardware concurrency). Intended to be configured once at startup (the
/// `--threads` flag); reconfiguring while parallel work is in flight is a
/// caller error.
ThreadPool& GlobalThreadPool();

/// Sets the thread count of the global pool; <= 0 restores the hardware
/// default. Takes effect on the next GlobalThreadPool() call (the old pool
/// is torn down here).
void SetGlobalThreadCount(int threads);

/// Thread count the global pool has (or will be created with).
int GlobalThreadCount();

/// Convenience wrappers over GlobalThreadPool().
[[nodiscard]] inline Status ParallelFor(int64_t begin, int64_t end,
                                        int64_t grain,
                                        const ThreadPool::ChunkFn& fn) {
  return GlobalThreadPool().ParallelFor(begin, end, grain, fn);
}

template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T init,
                 const MapFn& map, const CombineFn& combine) {
  return GlobalThreadPool().ParallelReduce(begin, end, grain, std::move(init),
                                           map, combine);
}

/// Grain size splitting `n` items into a few chunks per thread, so chunk
/// stealing can still balance skewed per-item cost.
inline int64_t GrainForItems(int64_t n, int threads) {
  return std::max<int64_t>(1, CeilDiv(n, static_cast<int64_t>(threads) * 8));
}

/// Grain size producing exactly `threads` contiguous chunks — the shape
/// the count-scan-scatter passes need (one histogram per chunk).
inline int64_t GrainForChunkPerThread(int64_t n, int threads) {
  return std::max<int64_t>(1, CeilDiv(n, threads));
}

}  // namespace spnet

#endif  // SPNET_COMMON_PARALLEL_H_
