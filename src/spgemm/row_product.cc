#include "spgemm/row_product.h"

#include <algorithm>

#include "common/math_util.h"
#include "spgemm/functional.h"
#include "spgemm/plan.h"

namespace spnet {
namespace spgemm {

using gpusim::KernelDesc;
using gpusim::Phase;
using gpusim::ThreadBlockDesc;
using sparse::CsrMatrix;

namespace {

// Rows with more expansion work than this get a whole warp (coalesced,
// divergence-free); beyond the second bound, a whole block. Thread-per-row
// below — where the scheme's intra-warp imbalance lives.
constexpr int64_t kWarpRowThreshold = 65536;
constexpr int64_t kBlockRowThreshold = 65536;

}  // namespace

KernelDesc BuildRowProductExpansion(const Workload& workload,
                                    const RowExpansionOptions& options) {
  KernelDesc kernel;
  kernel.label = options.label;
  kernel.phase = Phase::kExpansion;
  kernel.flops = workload.flops;

  const int64_t rows = static_cast<int64_t>(workload.row_chat.size());
  const int block_size = options.block_size;

  // Cross-thread reuse of B rows: of the flops-proportional B reads, only
  // the distinct B data is cold; the rest hits L1/L2. (Global
  // approximation applied per block.)
  int64_t b_nnz = 0;
  for (int64_t v : workload.b_row_nnz) b_nnz += v;
  const double b_reuse_frac =
      workload.flops > 0
          ? std::max(0.0, 1.0 - static_cast<double>(b_nnz) /
                                    static_cast<double>(workload.flops))
          : 0.0;

  // Lanes of a thread-per-row warp gather from 32 different B rows, so a
  // cold element costs a whole 32-byte sector; warp-per-row lanes walk one
  // row together and stay coalesced at the element payload.
  constexpr int64_t kScatteredElementBytes = 32;
  auto fill_traffic = [&](ThreadBlockDesc* tb, int64_t block_work,
                          double scatter, bool scattered_reads) {
    const double work = static_cast<double>(block_work);
    const double hot = b_reuse_frac * kElementBytes * work;
    const double cold_per_element =
        scattered_reads ? kScatteredElementBytes : kElementBytes;
    const double cold = (1.0 - b_reuse_frac) * cold_per_element * work;
    const double a_read = kElementBytes * work / 4.0;  // approx
    tb->bytes_read = static_cast<int64_t>((hot + cold + a_read) *
                                          options.traffic_multiplier);
    tb->shared_read_bytes =
        static_cast<int64_t>(hot * options.traffic_multiplier);
    tb->bytes_written =
        static_cast<int64_t>(static_cast<double>(kElementBytes) * work *
                             scatter * options.traffic_multiplier);
    tb->shared_mem_bytes = 1024;
  };
  auto scale_ops = [&](int64_t ops) {
    return static_cast<int64_t>(static_cast<double>(ops) *
                                options.ops_multiplier);
  };

  // Partition rows by work class, preserving the requested order inside
  // each class.
  std::vector<int64_t> small_rows;
  std::vector<int64_t> warp_rows;
  std::vector<int64_t> block_rows;
  for (int64_t slot = 0; slot < rows; ++slot) {
    const int64_t r =
        options.row_order ? (*options.row_order)[static_cast<size_t>(slot)]
                          : slot;
    const int64_t chat = workload.row_chat[static_cast<size_t>(r)];
    if (chat == 0) continue;
    if (chat > kBlockRowThreshold) {
      block_rows.push_back(r);
    } else if (chat > kWarpRowThreshold) {
      warp_rows.push_back(r);
    } else {
      small_rows.push_back(r);
    }
  }

  // Thread-per-row blocks: lock-step warps stall on their longest row.
  const size_t rows_per_block = static_cast<size_t>(block_size);
  for (size_t begin = 0; begin < small_rows.size(); begin += rows_per_block) {
    const size_t end =
        std::min(small_rows.size(), begin + rows_per_block);
    ThreadBlockDesc tb;
    tb.threads = block_size;
    int64_t block_work = 0;
    int64_t crit = 0;
    int64_t warp_issue = 0;
    for (size_t w0 = begin; w0 < end; w0 += 32) {
      const size_t w1 = std::min(end, w0 + 32);
      int64_t warp_max = 0;
      for (size_t k = w0; k < w1; ++k) {
        const int64_t ops =
            workload.row_chat[static_cast<size_t>(small_rows[k])];
        block_work += ops;
        warp_max = std::max(warp_max, ops);
      }
      warp_issue += warp_max;
      crit = std::max(crit, warp_max);
    }
    if (block_work == 0) continue;
    tb.effective_threads = static_cast<int>(end - begin);
    tb.crit_ops = scale_ops(crit);
    tb.warp_issue_ops = scale_ops(warp_issue);
    tb.useful_lane_ops = scale_ops(block_work);
    fill_traffic(&tb, block_work, options.write_scatter_factor, true);
    kernel.blocks.push_back(tb);
  }

  // Warp-per-row blocks: lanes split the row, coalesced writes.
  const size_t warps_per_block = static_cast<size_t>(block_size) / 32;
  for (size_t begin = 0; begin < warp_rows.size();
       begin += warps_per_block) {
    const size_t end =
        std::min(warp_rows.size(), begin + warps_per_block);
    ThreadBlockDesc tb;
    tb.threads = static_cast<int>(32 * (end - begin));
    tb.effective_threads = tb.threads;
    int64_t block_work = 0;
    int64_t crit = 0;
    int64_t warp_issue = 0;
    for (size_t k = begin; k < end; ++k) {
      const int64_t chat =
          workload.row_chat[static_cast<size_t>(warp_rows[k])];
      const int64_t lane_ops = CeilDiv(chat, 32);
      block_work += chat;
      warp_issue += lane_ops;
      crit = std::max(crit, lane_ops);
    }
    tb.crit_ops = scale_ops(crit);
    tb.warp_issue_ops = scale_ops(warp_issue);
    tb.useful_lane_ops = scale_ops(block_work);
    fill_traffic(&tb, block_work, 1.0, false);
    kernel.blocks.push_back(tb);
  }

  // Block-per-row: the hub rows; the whole block streams one row.
  for (int64_t r : block_rows) {
    const int64_t chat = workload.row_chat[static_cast<size_t>(r)];
    ThreadBlockDesc tb;
    tb.threads = block_size;
    tb.effective_threads = block_size;
    const int64_t lane_ops = CeilDiv(chat, block_size);
    tb.crit_ops = scale_ops(lane_ops);
    tb.warp_issue_ops = scale_ops(lane_ops * (block_size / 32));
    tb.useful_lane_ops = scale_ops(chat);
    fill_traffic(&tb, chat, 1.0, false);
    kernel.blocks.push_back(tb);
  }
  return kernel;
}

Result<SpGemmPlan> RowProductSpGemm::PlanImpl(const CsrMatrix& a,
                                              const CsrMatrix& b,
                                              const gpusim::DeviceSpec&,
                                              ExecContext*) const {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("dimension mismatch in row-product plan");
  }
  const Workload workload = BuildWorkload(a, b);

  SpGemmPlan plan;
  plan.flops = workload.flops;
  plan.output_nnz = workload.output_nnz;
  RowExpansionOptions options;
  // Per product, the thread-per-row inner loop issues the whole gather /
  // multiply / cursor-store sequence from one lane, roughly three times
  // the outer-product scheme's per-product instruction stream (which
  // amortizes the column element across a full warp).
  options.ops_multiplier = 3.0;
  plan.kernels.push_back(BuildRowProductExpansion(workload, options));

  MergeOptions merge;
  for (gpusim::KernelDesc& k : BuildMergeKernels(workload, merge)) {
    plan.kernels.push_back(std::move(k));
  }
  // No preprocessing beyond the kernel launches themselves.
  plan.host_seconds = HostPreprocessSeconds(0, 0);
  return plan;
}

Result<CsrMatrix> RowProductSpGemm::ComputeImpl(const CsrMatrix& a,
                                                const CsrMatrix& b,
                                                ExecContext*) const {
  return RowProductExpandMerge(a, b);
}

std::unique_ptr<SpGemmAlgorithm> MakeRowProduct() {
  return std::make_unique<RowProductSpGemm>();
}

}  // namespace spgemm
}  // namespace spnet
