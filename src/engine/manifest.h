#ifndef SPNET_ENGINE_MANIFEST_H_
#define SPNET_ENGINE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/batch_runner.h"

namespace spnet {
namespace engine {

/// One manifest line: a matrix source, the algorithm to run, and how many
/// times to repeat the query (repeats share the loaded matrix, so they
/// exercise the plan cache the way repeated production traffic does).
struct ManifestEntry {
  /// Either a Table II dataset name ("youtube", "as-caida", ...) or a path
  /// to a .mtx / .spnb file (recognized by extension or a '/' in the
  /// token).
  std::string source;
  std::string algorithm = "reorganizer";
  int64_t repeat = 1;
};

/// Parses the batch manifest text format:
///
///   # comment (blank lines are skipped too)
///   <dataset-or-path> [algorithm] [repeat]
///
/// e.g.
///   as-caida reorganizer 8
///   emailEnron row-product
///   graphs/web.mtx outer-product 2
///
/// Unknown algorithm names are accepted here — the BatchRunner degrades
/// them to its fallback at execution time. Malformed repeats (non-numeric,
/// < 1, > 100000) are InvalidArgument.
[[nodiscard]] Result<std::vector<ManifestEntry>> ParseManifest(const std::string& content);

/// How BuildQueries materializes dataset sources.
struct ManifestLoadOptions {
  /// Scale for Table II dataset names (files load as-is).
  double scale = 0.05;
  uint64_t seed = 42;
  /// Optional on-disk .spnb cache for generated datasets (see
  /// datasets::MaterializeCached); empty = regenerate every run.
  std::string dataset_cache_dir;
  /// Per-query deadline applied to every generated query; <= 0 = none.
  double deadline_ms = 0.0;
};

/// Loads one manifest source: a path (recognized by a '/' or a .mtx/.spnb
/// extension) reads from disk; anything else resolves as a Table II
/// dataset name through the registry, scaled/seeded/cached per `options`.
/// Shared by manifest expansion and the serve MatrixStore so "what a
/// source means" has one definition.
[[nodiscard]] Result<sparse::CsrMatrix> LoadManifestSource(
    const std::string& source, const ManifestLoadOptions& options);

/// Expands manifest entries into engine::Request objects: each distinct
/// source is loaded or generated exactly once and shared across its
/// repeats. Request ids are "<source>:<algorithm>#<k>"; every request
/// carries `tenant` and `priority` (the manifest text format has no
/// per-line tenant column — a manifest is one tenant's batch). Fails if
/// any source cannot be loaded — a missing input is a manifest error, not
/// a per-request one.
[[nodiscard]] Result<std::vector<Request>> BuildRequests(
    const std::vector<ManifestEntry>& entries,
    const ManifestLoadOptions& options, const std::string& tenant = "batch",
    int priority = 0);

/// ParseManifest + BuildRequests over a manifest file on disk.
[[nodiscard]] Result<std::vector<Request>> LoadManifestRequests(
    const std::string& path, const ManifestLoadOptions& options,
    const std::string& tenant = "batch", int priority = 0);

/// Legacy adapters over BuildRequests/LoadManifestRequests, kept for
/// pre-Request callers.
SPNET_DEPRECATED("use BuildRequests")
[[nodiscard]] Result<std::vector<BatchQuery>> BuildQueries(
    const std::vector<ManifestEntry>& entries,
    const ManifestLoadOptions& options);

SPNET_DEPRECATED("use LoadManifestRequests")
[[nodiscard]] Result<std::vector<BatchQuery>> LoadManifest(
    const std::string& path, const ManifestLoadOptions& options);

}  // namespace engine
}  // namespace spnet

#endif  // SPNET_ENGINE_MANIFEST_H_
