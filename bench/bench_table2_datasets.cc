// Prints Table II: the 28 real-world datasets with the paper's published
// dimension / nnz(A) / nnz(C), next to the generated stand-ins' measured
// values (scaled back to paper size for comparison). This is the
// calibration record for the dataset substitution documented in DESIGN.md.
//
// Flags: --scale (default 0.1 — nnz(C) is measured with an exact symbolic
// pass, so the default keeps the run fast; ratios are scale-invariant to
// first order), --seed, --csv.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "metrics/report.h"
#include "sparse/reference_spgemm.h"
#include "sparse/stats.h"

namespace spnet {
namespace {

int Run(int argc, char** argv) {
  bench::BenchOptions options = bench::BenchOptions::FromArgs(argc, argv);
  {
    // Lighter default than the other benches: the symbolic pass is the
    // only expensive part of this binary.
    FlagParser flags;
    SPNET_CHECK(flags.Parse(argc, argv).ok());
    if (!flags.Has("scale")) options.scale = 0.1;
  }

  metrics::Table table({"dataset", "family", "dim", "nnz(A)",
                        "nnz(C) paper", "nnz(C) measured", "ratio paper",
                        "ratio measured", "gini"});
  for (const auto& spec : datasets::TableTwoDatasets()) {
    auto a = datasets::Materialize(spec, options.scale, options.seed);
    SPNET_CHECK(a.ok()) << a.status().ToString();
    auto nnz_c = sparse::SpGemmExactOutputNnz(*a, *a);
    SPNET_CHECK(nnz_c.ok());
    const auto stats = sparse::ComputeRowStats(*a);

    // Scale the measured nnz(C) back to paper size: for the quasi-regular
    // family C's nnz grows ~linearly with the matrix; for power-law data
    // the hub structure keeps the nnz(C)/nnz(A) ratio roughly
    // scale-invariant, so the ratio is the meaningful comparison.
    const double paper_ratio =
        static_cast<double>(spec.paper_nnz_c) / static_cast<double>(spec.nnz);
    const double measured_ratio =
        static_cast<double>(nnz_c.value()) / static_cast<double>(a->nnz());
    table.AddRow(
        {spec.name,
         spec.family == datasets::Family::kFloridaRegular ? "Florida"
                                                          : "Stanford",
         metrics::FormatCount(spec.dim), metrics::FormatCount(spec.nnz),
         metrics::FormatCount(spec.paper_nnz_c),
         metrics::FormatCount(static_cast<int64_t>(
             measured_ratio * static_cast<double>(spec.nnz))),
         metrics::FormatDouble(paper_ratio, 1),
         metrics::FormatDouble(measured_ratio, 1),
         metrics::FormatDouble(stats.gini)});
  }

  std::printf("== Table II: real-world datasets, paper vs generated "
              "stand-ins (measured at scale %.2f) ==\n",
              options.scale);
  std::fputs(options.csv ? table.ToCsv().c_str() : table.ToString().c_str(),
             stdout);
  std::printf("\n'nnz(C) measured' extrapolates the measured nnz(C)/nnz(A) "
              "ratio to the paper's nnz(A).\n");

  bench::BenchJson json("table2_datasets", "Table II", options);
  json.AddTable("datasets", table);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
