#include "sparse/matrix_market.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "verify/fault_injection.h"

namespace spnet {
namespace sparse {

namespace {

std::string ToLower(std::string s) {
  // std::tolower(int) is undefined for negative values other than EOF, and
  // plain char is signed on most ABIs — a non-ASCII byte in a header token
  // must go through unsigned char.
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

/// Removes a trailing '\r' so CRLF files parse like LF files. Only the
/// getline-based header/size lines need this; entry parsing uses stream
/// extraction, which already treats '\r' as whitespace.
void StripCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

}  // namespace

Result<CsrMatrix> ParseMatrixMarket(const std::string& content) {
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty Matrix Market input");
  }
  StripCr(&line);
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") {
    return Status::InvalidArgument("missing %%MatrixMarket banner");
  }
  object = ToLower(object);
  format = ToLower(format);
  field = ToLower(field);
  symmetry = ToLower(symmetry);
  if (object != "matrix" || format != "coordinate") {
    return Status::Unimplemented("only 'matrix coordinate' is supported, got " +
                                 object + " " + format);
  }
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer") {
    return Status::Unimplemented("unsupported field type: " + field);
  }
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general") {
    return Status::Unimplemented("unsupported symmetry: " + symmetry);
  }

  // Skip comments, then read the size line.
  bool have_size_line = false;
  while (std::getline(in, line)) {
    StripCr(&line);
    if (!line.empty() && line[0] != '%') {
      have_size_line = true;
      break;
    }
  }
  if (!have_size_line) {
    return Status::InvalidArgument("missing size line (comment-only input)");
  }
  long long rows = 0, cols = 0, entries = 0;
  {
    std::istringstream size_line(line);
    if (!(size_line >> rows >> cols >> entries)) {
      return Status::InvalidArgument("malformed size line: " + line);
    }
  }
  if (rows < 0 || cols < 0 || entries < 0) {
    return Status::InvalidArgument("negative sizes in header");
  }
  // Index is 32-bit; a larger header would silently wrap in the casts
  // below and corrupt every entry bound check after it.
  constexpr long long kMaxIndex = std::numeric_limits<Index>::max();
  if (rows > kMaxIndex || cols > kMaxIndex) {
    return Status::OutOfRange("header dimensions " + std::to_string(rows) +
                              " x " + std::to_string(cols) +
                              " exceed 32-bit index range");
  }

  CooMatrix coo(static_cast<Index>(rows), static_cast<Index>(cols));
  coo.Reserve(symmetric ? 2 * entries : entries);
  for (long long k = 0; k < entries; ++k) {
    long long r = 0, c = 0;
    double v = 1.0;
    if (!(in >> r >> c)) {
      return Status::IoError("unexpected end of entries at " +
                             std::to_string(k));
    }
    if (!pattern && !(in >> v)) {
      return Status::IoError("missing value at entry " + std::to_string(k));
    }
    if (r < 1 || r > rows || c < 1 || c > cols) {
      return Status::OutOfRange("entry (" + std::to_string(r) + ", " +
                                std::to_string(c) + ") out of bounds");
    }
    coo.Add(static_cast<Index>(r - 1), static_cast<Index>(c - 1), v);
    if (symmetric && r != c) {
      coo.Add(static_cast<Index>(c - 1), static_cast<Index>(r - 1), v);
    }
  }
  return CsrMatrix::FromCoo(coo);
}

Result<CsrMatrix> ReadMatrixMarket(const std::string& path) {
  SPNET_RETURN_IF_ERROR(verify::MaybeInjectFault(verify::kSiteLoaderRead));
  std::ifstream file(path);
  if (!file) {
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream content;
  content << file.rdbuf();
  return ParseMatrixMarket(content.str());
}

Status WriteMatrixMarket(const CsrMatrix& m, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows() << " " << m.cols() << " " << m.nnz() << "\n";
  for (Index r = 0; r < m.rows(); ++r) {
    const SpanView row = m.Row(r);
    for (Offset k = 0; k < row.size; ++k) {
      out << (r + 1) << " " << (row.indices[k] + 1) << " " << row.values[k]
          << "\n";
    }
  }
  if (!out) {
    return Status::IoError("write failed for " + path);
  }
  return Status::Ok();
}

}  // namespace sparse
}  // namespace spnet
