#include <gtest/gtest.h>

#include "core/suite.h"
#include "datasets/generators.h"
#include "sparse/reference_spgemm.h"
#include "spgemm/algorithm.h"
#include "tests/test_util.h"

namespace spnet {
namespace spgemm {
namespace {

using sparse::CsrMatrix;

class ExtensionAlgorithmTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<SpGemmAlgorithm> Make() const {
    return GetParam() == 0 ? MakeAcSpGemmLike() : MakeNsparseLike();
  }
};

TEST_P(ExtensionAlgorithmTest, MatchesReference) {
  const auto alg = Make();
  for (uint64_t seed : {1u, 2u}) {
    const CsrMatrix a = testing_util::SkewedMatrix(150, 90, seed);
    auto expected = sparse::ReferenceSpGemm(a, a);
    auto got = alg->Compute(a, a);
    ASSERT_TRUE(expected.ok() && got.ok()) << alg->name();
    EXPECT_TRUE(CsrApproxEqual(*expected, *got, 1e-9)) << alg->name();
  }
}

TEST_P(ExtensionAlgorithmTest, PlanAndMeasure) {
  const auto alg = Make();
  const CsrMatrix a = testing_util::SkewedMatrix(300, 200, 5);
  const auto device = gpusim::DeviceSpec::TitanXp();
  auto plan = alg->Plan(a, a, device);
  ASSERT_TRUE(plan.ok()) << alg->name();
  EXPECT_GT(plan->flops, 0);
  auto m = Measure(*alg, a, a, device);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->total_seconds, 0.0);
}

TEST_P(ExtensionAlgorithmTest, RejectsDimensionMismatch) {
  const auto alg = Make();
  const CsrMatrix a = testing_util::RandomMatrix(8, 9, 0.4, 1);
  const CsrMatrix b = testing_util::RandomMatrix(8, 9, 0.4, 2);
  EXPECT_FALSE(alg->Compute(a, b).ok());
  EXPECT_FALSE(alg->Plan(a, b, gpusim::DeviceSpec::TitanXp()).ok());
}

INSTANTIATE_TEST_SUITE_P(BothExtensions, ExtensionAlgorithmTest,
                         ::testing::Values(0, 1),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return param_info.param == 0
                                      ? std::string("acspgemm")
                                      : std::string("nsparse");
                         });

TEST(ExtendedSuiteTest, ContainsNineAlgorithms) {
  const auto suite = core::MakeExtendedSuite();
  ASSERT_EQ(suite.size(), 9u);
  EXPECT_EQ(suite[7]->name(), "AC-spGEMM");
  EXPECT_EQ(suite[8]->name(), "nsparse-hash");
}

TEST(ExtensionBehaviorTest, NsparseFusedMergeWinsOnRegularData) {
  // Its fused hash merge skips the intermediate round trip, so it should
  // beat the unfused row-product on a regular banded input.
  datasets::QuasiRegularParams p;
  p.n = 4000;
  p.nnz = 100000;
  p.seed = 9;
  auto a = datasets::GenerateQuasiRegular(p);
  ASSERT_TRUE(a.ok());
  const auto device = gpusim::DeviceSpec::TitanXp();
  auto row = Measure(*MakeRowProduct(), *a, *a, device);
  auto hash = Measure(*MakeNsparseLike(), *a, *a, device);
  ASSERT_TRUE(row.ok() && hash.ok());
  EXPECT_LT(hash->total_seconds, row->total_seconds);
}

}  // namespace
}  // namespace spgemm
}  // namespace spnet
