#include "spgemm/nnz_estimator.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/math_util.h"
#include "common/parallel.h"
#include "spgemm/exec_context.h"

namespace spnet {
namespace spgemm {

using sparse::CsrMatrix;
using sparse::Index;
using sparse::Offset;
using sparse::SpanView;

namespace {

/// Round-to-nearest by cast: std::llround is an errno-checking libm call,
/// and two of them per row are measurable against a scan this lean. The
/// inputs here are non-negative point estimates, where +0.5-and-truncate
/// is the same rounding.
int64_t RoundEstimate(double value) {
  constexpr double kMaxExact = 9223372036854774784.0;  // 2^63 rounded down
  if (value >= kMaxExact) return std::numeric_limits<int64_t>::max();
  return static_cast<int64_t>(value + 0.5);
}

int64_t ClampToBand(double value, int64_t lo, int64_t hi) {
  if (!(value > 0.0)) return lo;
  return std::min(hi, std::max(lo, RoundEstimate(value)));
}

/// Per-chunk partial of the fused row scan.
struct RowTotals {
  int64_t exact_mass = 0;
  int64_t nonzero_rows = 0;
  int64_t output_nnz = 0;
  int64_t sampled_rows = 0;
  int64_t saturations = 0;
};

}  // namespace

EstimatedWorkload BuildWorkloadEstimated(const CsrMatrix& a,
                                         const CsrMatrix& b,
                                         const EstimatorOptions& options,
                                         ExecContext* ctx) {
  metrics::ScopedSpan span(TraceOf(ctx), "build-workload-estimated");
  EstimatedWorkload est;
  Workload& w = est.workload;
  ThreadPool& pool = GlobalThreadPool();
  const int threads = pool.threads();
  const int64_t rows_a = a.rows();
  const int64_t cols_a = a.cols();
  const int64_t rows_b = b.rows();

  // B's row sizes are free (pointer diffs) — the estimator never spends
  // them, so the "B side" of every band is exact.
  w.b_row_nnz.assign(static_cast<size_t>(rows_b), 0);
  SPNET_CHECK_OK(pool.ParallelFor(0, rows_b, GrainForItems(rows_b, threads),
                   [&](int64_t begin, int64_t end, int) {
                     for (int64_t r = begin; r < end; ++r) {
                       w.b_row_nnz[static_cast<size_t>(r)] =
                           b.RowNnz(static_cast<Index>(r));
                     }
                     return Status::Ok();
                   }));

  // Hub decomposition of B's rows. `hubval[j]` holds B-row j's size when
  // the row is a hub and 0 otherwise, so the scan below sums the hub
  // contribution of every A-row branchlessly through one int32 table (a
  // quarter of b_row_nnz's footprint; a predicated hub test forfeits the
  // win to branch mispredictions at skew-typical hub-hit rates). The hub
  // threshold comes from a strided sample quantile — any threshold is
  // *correct* (v_rest below is the exact maximum over the unflagged rows),
  // the quantile only keeps the flagged count near options.hub_rows.
  const int64_t hubs =
      std::min(rows_b, std::max<int64_t>(0, options.hub_rows));
  std::vector<int32_t> hubval(static_cast<size_t>(cols_a), 0);
  const int64_t table_rows = std::min(rows_b, cols_a);
  int64_t v_rest = 0;
  int64_t min_rest = 0;
  double mean_rest = 0.0;
  if (rows_b > 0) {
    const int64_t max_brow =
        *std::max_element(w.b_row_nnz.begin(), w.b_row_nnz.end());
    int64_t thr = std::numeric_limits<int64_t>::max();
    if (hubs > 0 &&
        max_brow <= std::numeric_limits<int32_t>::max()) {
      // Strided sample of B-row sizes; thr approximates the hubs-th
      // largest. Deterministic (no RNG).
      const int64_t step = std::max<int64_t>(1, rows_b / 2048);
      std::vector<int64_t> sample;
      sample.reserve(static_cast<size_t>(rows_b / step + 1));
      for (int64_t r = 0; r < rows_b; r += step) {
        sample.push_back(w.b_row_nnz[static_cast<size_t>(r)]);
      }
      const int64_t want = std::min<int64_t>(
          static_cast<int64_t>(sample.size()) - 1,
          (static_cast<int64_t>(sample.size()) * hubs) / rows_b);
      std::nth_element(sample.begin(), sample.begin() + want, sample.end(),
                       std::greater<int64_t>());
      thr = std::max<int64_t>(0, sample[static_cast<size_t>(want)]);
    }
    // Flag pass: rows above the threshold become hubs; v_rest / min_rest
    // are the exact extrema of what is left, which is what makes the
    // bands guaranteed regardless of how good the sampled threshold was.
    int64_t rest_count = 0;
    int64_t rest_mass = 0;
    min_rest = std::numeric_limits<int64_t>::max();
    for (int64_t r = 0; r < rows_b; ++r) {
      const int64_t size = w.b_row_nnz[static_cast<size_t>(r)];
      if (size > thr) {
        if (r < table_rows) {
          hubval[static_cast<size_t>(r)] = static_cast<int32_t>(size);
        }
      } else {
        ++rest_count;
        rest_mass += size;
        v_rest = std::max(v_rest, size);
        min_rest = std::min(min_rest, size);
      }
    }
    if (rest_count == 0) {
      min_rest = 0;
    } else {
      mean_rest =
          static_cast<double>(rest_mass) / static_cast<double>(rest_count);
    }
    // An A wider than B's height has entries contributing exactly 0; they
    // are counted as light entries, so the light floor must be 0. The
    // same applies to hub rows beyond the table width (cols_a < rows_b):
    // unreachable by any A index, but they were flagged out of the rest.
    if (cols_a > rows_b) min_rest = 0;
  }

  // Deterministic strided sample of A's rows: no RNG, so the same inputs
  // estimate identically on every run and thread count.
  const int64_t target = std::min(
      rows_a,
      std::max<int64_t>(
          {int64_t{1}, options.min_sample_rows,
           static_cast<int64_t>(std::llround(
               static_cast<double>(rows_a) * options.sample_fraction))}));
  const int64_t stride = rows_a > 0 ? std::max<int64_t>(1, rows_a / target) : 1;
  const int64_t phase = static_cast<int64_t>(
      options.seed % static_cast<uint64_t>(stride));
  const auto is_sampled = [stride, phase](int64_t r) {
    return r % stride == phase;
  };

  // Merge estimators for row_c_est. Exact rows get the exact tier's
  // hashing estimator; estimated rows get its second-order rational
  // approximation — same small-chat behavior, same cap, no transcendental
  // in the per-row hot path.
  const double cols_b = static_cast<double>(b.cols());
  const int64_t cols_b_i64 = b.cols();
  const auto merge_exact = [cols_b, cols_b_i64](int64_t chat) {
    const double f = static_cast<double>(chat);
    double unique = cols_b * (1.0 - std::exp(-f / cols_b));
    unique = std::min(unique, f);
    int64_t e =
        std::max<int64_t>(1, static_cast<int64_t>(std::llround(unique)));
    return std::min(e, std::min(chat, cols_b_i64));
  };
  const auto merge_approx = [cols_b, cols_b_i64](int64_t chat) {
    const double f = static_cast<double>(chat);
    const double unique = 2.0 * cols_b * f / (2.0 * cols_b + f);
    const int64_t e = std::max<int64_t>(1, RoundEstimate(unique));
    return std::min(e, std::min(chat, cols_b_i64));
  };

  // Fused scan: one traversal of A producing the exact column histogram
  // (the pair side) and the row-side estimates together. Sampled rows
  // gather b_row_nnz exactly; every other row sums its hub hits exactly
  // and brackets its `light` remaining entries by
  // [light * min_rest, light * v_rest]. Rows with no light entries are
  // exact for free — on skewed inputs, where the hubs carry most of the
  // mass, that plus the hub share of estimated rows keeps the confidence
  // high and the bands narrow.
  w.a_col_nnz.assign(static_cast<size_t>(cols_a), 0);
  w.row_chat.assign(static_cast<size_t>(rows_a), 0);
  w.row_c_est.assign(static_cast<size_t>(rows_a), 0);
  est.row_exact.assign(static_cast<size_t>(rows_a), 0);
  est.row_chat_lo.assign(static_cast<size_t>(rows_a), 0);
  est.row_chat_hi.assign(static_cast<size_t>(rows_a), 0);
  const int64_t row_grain = GrainForChunkPerThread(rows_a, threads);
  const int64_t num_chunks = rows_a > 0 ? CeilDiv(rows_a, row_grain) : 0;
  // Chunk-local histograms keep the scatter race-free; integer adds, so
  // any chunking reproduces the serial counts. One chunk (the single-
  // thread case) scatters straight into the output.
  std::vector<std::vector<int64_t>> hist;
  if (num_chunks > 1) hist.resize(static_cast<size_t>(num_chunks));
  const RowTotals totals = pool.ParallelReduce(
      0, rows_a, row_grain, RowTotals{},
      [&](int64_t begin, int64_t end, int) {
        RowTotals t;
        std::vector<int64_t>* local = nullptr;
        if (num_chunks > 1) {
          local = &hist[static_cast<size_t>(begin / row_grain)];
          local->assign(static_cast<size_t>(cols_a), 0);
        }
        std::vector<int64_t>& acol = local != nullptr ? *local : w.a_col_nnz;
        bool sat = false;
        for (int64_t r = begin; r < end; ++r) {
          const size_t ri = static_cast<size_t>(r);
          const SpanView row = a.Row(static_cast<Index>(r));
          int64_t chat = 0;
          bool exact_row = false;
          if (is_sampled(r)) {
            for (Offset k = 0; k < row.size; ++k) {
              const Index j = row.indices[k];
              acol[static_cast<size_t>(j)]++;
              if (j < rows_b) {
                chat = SatAddI64(chat, w.b_row_nnz[static_cast<size_t>(j)],
                                 &sat);
              }
            }
            exact_row = true;
            ++t.sampled_rows;
          } else {
            int64_t hub_sum = 0;
            int64_t light = 0;
            for (Offset k = 0; k < row.size; ++k) {
              const size_t j = static_cast<size_t>(row.indices[k]);
              acol[j]++;
              const int64_t v = hubval[j];
              hub_sum += v;
              light += (v == 0);
            }
            if (light == 0) {
              chat = hub_sum;
              exact_row = true;
            } else {
              const int64_t lo =
                  SatAddI64(hub_sum, SatMulI64(light, min_rest, &sat), &sat);
              const int64_t hi =
                  SatAddI64(hub_sum, SatMulI64(light, v_rest, &sat), &sat);
              chat = ClampToBand(static_cast<double>(hub_sum) +
                                     static_cast<double>(light) * mean_rest,
                                 lo, hi);
              est.row_chat_lo[ri] = lo;
              est.row_chat_hi[ri] = hi;
              t.exact_mass = SatAddI64(t.exact_mass, hub_sum, &sat);
            }
          }
          if (exact_row) {
            est.row_exact[ri] = 1;
            est.row_chat_lo[ri] = chat;
            est.row_chat_hi[ri] = chat;
            t.exact_mass = SatAddI64(t.exact_mass, chat, &sat);
          }
          w.row_chat[ri] = chat;
          if (chat > 0) {
            ++t.nonzero_rows;
            if (cols_b_i64 > 0) {
              const int64_t e =
                  exact_row ? merge_exact(chat) : merge_approx(chat);
              w.row_c_est[ri] = e;
              t.output_nnz = SatAddI64(t.output_nnz, e, &sat);
            }
          }
        }
        if (sat) ++t.saturations;
        return t;
      },
      [](RowTotals acc, RowTotals p) {
        bool sat = false;
        acc.exact_mass = SatAddI64(acc.exact_mass, p.exact_mass, &sat);
        acc.nonzero_rows += p.nonzero_rows;
        acc.output_nnz = SatAddI64(acc.output_nnz, p.output_nnz, &sat);
        acc.sampled_rows += p.sampled_rows;
        acc.saturations += p.saturations + (sat ? 1 : 0);
        return acc;
      });
  if (num_chunks > 1) {
    SPNET_CHECK_OK(pool.ParallelFor(0, cols_a, GrainForItems(cols_a, threads),
                     [&](int64_t begin, int64_t end, int) {
                       for (int64_t c = begin; c < end; ++c) {
                         int64_t sum = 0;
                         for (const auto& h : hist) {
                           sum += h[static_cast<size_t>(c)];
                         }
                         w.a_col_nnz[static_cast<size_t>(c)] = sum;
                       }
                       return Status::Ok();
                     }));
  }
  w.output_nnz = totals.output_nnz;
  w.saturated += totals.saturations;
  est.sampled_rows = totals.sampled_rows;
  est.estimated_nonzero_rows = totals.nonzero_rows;

  // Pair side: exact. a_col_nnz came from the fused histogram (the same
  // pass a straddle fallback would pay to recount a single ambiguous
  // column), so every pair band collapses to a point: pair classification
  // is bit-identical to the exact tier, and flops (= sum of pair_work) is
  // exact, which anchors both classification thresholds.
  struct PairTotals {
    int64_t flops = 0;
    int64_t nonzero_pairs = 0;
    int64_t saturations = 0;
  };
  w.pair_work.assign(static_cast<size_t>(cols_a), 0);
  est.pair_work_lo.assign(static_cast<size_t>(cols_a), 0);
  est.pair_work_hi.assign(static_cast<size_t>(cols_a), 0);
  const PairTotals pairs = pool.ParallelReduce(
      0, cols_a, GrainForItems(cols_a, threads), PairTotals{},
      [&](int64_t begin, int64_t end, int) {
        PairTotals p;
        bool sat = false;
        for (int64_t i = begin; i < end; ++i) {
          const size_t ii = static_cast<size_t>(i);
          const int64_t brow = i < rows_b ? w.b_row_nnz[ii] : 0;
          bool pair_sat = false;
          const int64_t work = SatMulI64(w.a_col_nnz[ii], brow, &pair_sat);
          if (pair_sat) ++p.saturations;
          w.pair_work[ii] = work;
          est.pair_work_lo[ii] = work;
          est.pair_work_hi[ii] = work;
          p.flops = SatAddI64(p.flops, work, &sat);
          if (work > 0) ++p.nonzero_pairs;
        }
        if (sat) ++p.saturations;
        return p;
      },
      [](PairTotals acc, PairTotals p) {
        bool sat = false;
        acc.flops = SatAddI64(acc.flops, p.flops, &sat);
        acc.nonzero_pairs += p.nonzero_pairs;
        acc.saturations += p.saturations + (sat ? 1 : 0);
        return acc;
      });
  w.flops = pairs.flops;
  w.saturated += pairs.saturations;
  est.estimated_nonzero_pairs = pairs.nonzero_pairs;

  // Confidence: the share of the (exact) intermediate mass whose row
  // attribution is known exactly. exact_mass <= flops by construction, so
  // this is a true fraction.
  est.exact_mass = totals.exact_mass;
  est.confidence =
      w.flops > 0 ? std::min(1.0, static_cast<double>(est.exact_mass) /
                                      static_cast<double>(w.flops))
                  : 1.0;
  if (w.saturated > 0) AddCounter(ctx, "workload.saturated", w.saturated);
  SetGauge(ctx, "estimator.sampled_rows",
           static_cast<double>(est.sampled_rows));
  SetGauge(ctx, "estimator.hub_rows", static_cast<double>(hubs));
  SetGauge(ctx, "estimator.confidence", est.confidence);
  return est;
}

}  // namespace spgemm
}  // namespace spnet
