#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace spnet {
namespace {

TEST(ThreadPoolTest, ReportsRequestedThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.threads(), 3);
  ThreadPool single(1);
  EXPECT_EQ(single.threads(), 1);
}

TEST(ThreadPoolTest, DefaultUsesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.threads(), 1);
}

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const int64_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  const Status s = pool.ParallelFor(0, n, 7, [&](int64_t b, int64_t e, int) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok());
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, RangeSmallerThanGrainRunsAsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  int64_t seen_begin = -1, seen_end = -1;
  const Status s =
      pool.ParallelFor(10, 15, 1000, [&](int64_t b, int64_t e, int) {
        ++calls;
        seen_begin = b;
        seen_end = e;
        return Status::Ok();
      });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 10);
  EXPECT_EQ(seen_end, 15);
}

TEST(ThreadPoolTest, ZeroLengthRangeNeverInvokesChunkFn) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  EXPECT_TRUE(pool.ParallelFor(5, 5, 10, [&](int64_t, int64_t, int) {
                    ++calls;
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_TRUE(pool.ParallelFor(9, 3, 10, [&](int64_t, int64_t, int) {
                    ++calls;
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, NonPositiveGrainIsClampedToOne) {
  ThreadPool pool(2);
  std::atomic<int64_t> covered{0};
  const Status s = pool.ParallelFor(0, 64, 0, [&](int64_t b, int64_t e, int) {
    EXPECT_EQ(e, b + 1);  // grain 0 -> chunks of one element
    covered += e - b;
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(covered.load(), 64);
}

TEST(ThreadPoolTest, ThreadIndexStaysInBounds) {
  ThreadPool pool(3);
  std::atomic<bool> out_of_bounds{false};
  SPNET_CHECK_OK(
      pool.ParallelFor(0, 1000, 5, [&](int64_t, int64_t, int thread_index) {
        if (thread_index < 0 || thread_index >= 3) out_of_bounds = true;
        return Status::Ok();
      }));
  EXPECT_FALSE(out_of_bounds.load());
}

TEST(ThreadPoolTest, PropagatesChunkStatus) {
  ThreadPool pool(4);
  const Status s = pool.ParallelFor(0, 100, 10, [](int64_t b, int64_t, int) {
    if (b == 50) return Status::Internal("chunk 50 failed");
    return Status::Ok();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "chunk 50 failed");
}

TEST(ThreadPoolTest, PropagatesStatusFromSingleThreadPool) {
  ThreadPool pool(1);
  const Status s = pool.ParallelFor(0, 100, 10, [](int64_t b, int64_t, int) {
    if (b >= 30) return Status::OutOfRange("stop");
    return Status::Ok();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(ThreadPoolTest, ReportsLowestFailingChunkWhenAllFail) {
  ThreadPool pool(4);
  const Status s =
      pool.ParallelFor(0, 80, 10, [](int64_t b, int64_t, int) {
        return Status::Internal("chunk at " + std::to_string(b));
      });
  ASSERT_FALSE(s.ok());
  // The reported status is the lowest-index chunk that actually ran and
  // failed; which chunks run before the failure flag stops the rest is
  // scheduling-dependent, but the status always comes from a real chunk.
  EXPECT_EQ(s.message().rfind("chunk at ", 0), 0u) << s.message();
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  for (int iter = 0; iter < 50; ++iter) {
    std::atomic<int64_t> sum{0};
    const Status s =
        pool.ParallelFor(0, 1000, 13, [&](int64_t b, int64_t e, int) {
          int64_t local = 0;
          for (int64_t i = b; i < e; ++i) local += i;
          sum += local;
          return Status::Ok();
        });
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(sum.load(), 999 * 1000 / 2);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  const Status s = pool.ParallelFor(0, 8, 1, [&](int64_t, int64_t, int) {
    return pool.ParallelFor(0, 100, 10, [&](int64_t b, int64_t e, int) {
      total += e - b;
      return Status::Ok();
    });
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(total.load(), 800);
}

TEST(ThreadPoolTest, ParallelReduceSumsRange) {
  ThreadPool pool(4);
  const int64_t sum = pool.ParallelReduce(
      0, 10000, 17, int64_t{0},
      [](int64_t b, int64_t e, int) {
        int64_t local = 0;
        for (int64_t i = b; i < e; ++i) local += i;
        return local;
      },
      [](int64_t acc, int64_t partial) { return acc + partial; });
  EXPECT_EQ(sum, 9999 * 10000 / 2);
}

TEST(ThreadPoolTest, ParallelReduceCombinesInChunkOrder) {
  // A non-commutative combine (string concatenation) exposes any ordering
  // nondeterminism; chunk-order combination must match the serial scan.
  ThreadPool pool(4);
  const std::string joined = pool.ParallelReduce(
      0, 26, 5, std::string(),
      [](int64_t b, int64_t e, int) {
        std::string s;
        for (int64_t i = b; i < e; ++i) {
          s.push_back(static_cast<char>('a' + i));
        }
        return s;
      },
      [](std::string acc, std::string partial) { return acc + partial; });
  EXPECT_EQ(joined, "abcdefghijklmnopqrstuvwxyz");
}

TEST(ThreadPoolTest, ParallelReduceEmptyRangeReturnsInit) {
  ThreadPool pool(4);
  const int64_t v = pool.ParallelReduce(
      3, 3, 10, int64_t{42}, [](int64_t, int64_t, int) { return int64_t{7}; },
      [](int64_t acc, int64_t partial) { return acc + partial; });
  EXPECT_EQ(v, 42);
}

TEST(GlobalPoolTest, SetThreadCountTakesEffect) {
  SetGlobalThreadCount(2);
  EXPECT_EQ(GlobalThreadCount(), 2);
  EXPECT_EQ(GlobalThreadPool().threads(), 2);
  SetGlobalThreadCount(0);  // restore hardware default
  EXPECT_GE(GlobalThreadCount(), 1);
}

TEST(GlobalPoolTest, FreeFunctionsUseGlobalPool) {
  SetGlobalThreadCount(2);
  std::atomic<int64_t> covered{0};
  const Status s = ParallelFor(0, 100, 9, [&](int64_t b, int64_t e, int) {
    covered += e - b;
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(covered.load(), 100);
  SetGlobalThreadCount(0);
}

TEST(GrainTest, GrainHelpersStayPositive) {
  EXPECT_EQ(GrainForItems(0, 4), 1);
  EXPECT_EQ(GrainForItems(1, 4), 1);
  EXPECT_GE(GrainForItems(1 << 20, 4), 1);
  EXPECT_EQ(GrainForChunkPerThread(0, 4), 1);
  EXPECT_EQ(GrainForChunkPerThread(100, 4), 25);
}

}  // namespace
}  // namespace spnet
