#ifndef SPNET_SPARSE_ROW_SCRATCH_H_
#define SPNET_SPARSE_ROW_SCRATCH_H_

#include <cstdint>
#include <vector>

#include "sparse/types.h"

namespace spnet {
namespace sparse {

/// Dense-accumulator scratch for one merge worker: a value accumulator, a
/// byte-per-column touched bitmap (uint8_t, not std::vector<bool> — the
/// packed-bit specialization's read-modify-write is a measurable tax in
/// the merge inner loop), and the touched-column list used to reset both
/// in O(row nnz). One RowScratch is reused across every row a thread
/// merges, so the per-row cost is proportional to the row, never to the
/// matrix width.
struct RowScratch {
  std::vector<Value> acc;
  std::vector<uint8_t> touched;
  std::vector<Index> touched_cols;

  /// Grows the dense arrays to cover `cols` columns. Newly added slots are
  /// zero/cleared; existing contents are preserved (they are clean between
  /// rows by construction).
  void EnsureCols(Index cols) {
    if (acc.size() < static_cast<size_t>(cols)) {
      acc.resize(static_cast<size_t>(cols), 0.0);
      touched.resize(static_cast<size_t>(cols), 0);
    }
  }

  /// Resets the touched state after a row, in O(touched columns).
  void ResetTouched() {
    for (Index c : touched_cols) {
      acc[static_cast<size_t>(c)] = 0.0;
      touched[static_cast<size_t>(c)] = 0;
    }
    touched_cols.clear();
  }
};

/// A small arena of per-thread RowScratch instances, indexed by the
/// ParallelFor thread index. Allocating the whole arena up front (instead
/// of per row, or per chunk) is what kills the allocation churn the
/// serial code paid via fresh vectors.
class RowScratchArena {
 public:
  RowScratchArena(int threads, Index cols)
      : scratch_(static_cast<size_t>(threads)) {
    for (RowScratch& s : scratch_) s.EnsureCols(cols);
  }

  RowScratch& at(int thread_index) {
    return scratch_[static_cast<size_t>(thread_index)];
  }

 private:
  std::vector<RowScratch> scratch_;
};

}  // namespace sparse
}  // namespace spnet

#endif  // SPNET_SPARSE_ROW_SCRATCH_H_
