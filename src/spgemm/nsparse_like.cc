#include <cmath>
#include <memory>

#include "spgemm/algorithm.h"
#include "spgemm/functional.h"
#include "spgemm/plan.h"
#include "spgemm/row_product.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace spgemm {

namespace {

using gpusim::KernelDesc;
using gpusim::ThreadBlockDesc;
using sparse::CsrMatrix;

// Rows whose output fits a shared-memory hash table (entries).
constexpr int64_t kSharedHashEntries = 4096;

/// Surrogate for hash-based Gustavson spGEMM (nsparse; Nagasaka et al.) —
/// an extension comparison beyond the paper's six baselines. The merge is
/// *fused*: each row's products are accumulated straight into a hash
/// table (shared memory when the output row fits, global otherwise), so
/// no intermediate C-hat is ever written. Probing costs instructions and
/// random accesses, and rows too wide for shared memory fall back to a
/// slow global-hash path — which is exactly where power-law data hurts.
class NsparseLike : public SpGemmAlgorithm {
 public:
  std::string name() const override { return "nsparse-hash"; }

  Result<SpGemmPlan> PlanImpl(const CsrMatrix& a, const CsrMatrix& b,
                              const gpusim::DeviceSpec&,
                              ExecContext*) const override {
    if (a.cols() != b.rows()) {
      return Status::InvalidArgument("dimension mismatch in nsparse plan");
    }
    const Workload workload = BuildWorkload(a, b);
    SpGemmPlan plan;
    plan.flops = workload.flops;
    plan.output_nnz = workload.output_nnz;

    // Fused expansion+merge: build per-row blocks directly. Shared-hash
    // rows write only the final output; global-hash rows pay RMW traffic
    // per product.
    KernelDesc fused;
    fused.label = "nsparse-fused-hash";
    fused.phase = gpusim::Phase::kExpansion;
    fused.flops = workload.flops;
    const int block_size = 256;
    // Batch small rows warp-per-row; big rows block-per-row.
    for (size_t r = 0; r < workload.row_chat.size(); ++r) {
      const int64_t chat = workload.row_chat[r];
      if (chat <= 0) continue;
      const int64_t out = workload.row_c_est[r];
      ThreadBlockDesc tb;
      const bool shared_hash = out <= kSharedHashEntries;
      const int64_t threads =
          std::min<int64_t>(block_size, std::max<int64_t>(32, chat));
      tb.threads = static_cast<int>(threads);
      tb.effective_threads = tb.threads;
      const int64_t lane_ops = (chat + threads - 1) / threads;
      // ~2.2 probes per insert in shared memory at a healthy load factor;
      // the global-hash fallback probes through the L2/DRAM, re-reading
      // table lines, and needs roughly twice the traffic.
      const double probes = shared_hash ? 2.2 : 4.0;
      tb.crit_ops = static_cast<int64_t>(probes * static_cast<double>(lane_ops));
      tb.warp_issue_ops = tb.crit_ops * (tb.threads / 32);
      tb.useful_lane_ops =
          static_cast<int64_t>(probes * static_cast<double>(chat));
      tb.bytes_read = kElementBytes * chat * (shared_hash ? 1 : 2);
      tb.bytes_written = kElementBytes * out;
      tb.atomic_ops = shared_hash ? chat : 2 * chat;
      tb.atomics_in_shared = shared_hash;
      tb.shared_mem_bytes =
          shared_hash ? kSharedHashEntries * 12 : 4096;
      fused.blocks.push_back(tb);
    }
    plan.kernels.push_back(std::move(fused));

    // Symbolic sizing pass (hash spGEMM needs nnz(C) upfront).
    KernelDesc symbolic;
    symbolic.label = "nsparse-symbolic";
    symbolic.phase = gpusim::Phase::kPreprocess;
    AppendBalancedStreamingBlocks(&symbolic, workload.flops / 4 + 1,
                                  /*bytes_per_element=*/4,
                                  /*ops_per_element=*/1.0);
    plan.kernels.push_back(std::move(symbolic));

    plan.host_seconds = HostPreprocessSeconds(0, 0);
    return plan;
  }

  Result<CsrMatrix> ComputeImpl(const CsrMatrix& a, const CsrMatrix& b,
                                ExecContext*) const override {
    // A hash-accumulated product equals the plain product; the host path
    // shares the row-centric structure.
    return RowProductExpandMerge(a, b);
  }
};

}  // namespace

std::unique_ptr<SpGemmAlgorithm> MakeNsparseLike() {
  return std::make_unique<NsparseLike>();
}

}  // namespace spgemm
}  // namespace spnet
