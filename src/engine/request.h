#ifndef SPNET_ENGINE_REQUEST_H_
#define SPNET_ENGINE_REQUEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/status.h"
#include "sparse/csr_matrix.h"

namespace spnet {
namespace engine {

/// Version of the Request/Response schema this binary speaks. Bump when a
/// field changes meaning; additive fields keep the version. Producers stamp
/// it on every Request/Response and consumers reject versions they do not
/// know, so a mixed fleet fails loudly instead of misreading fields.
inline constexpr int kRequestSchemaVersion = 1;

/// One unit of work for the engine: measure C = A*B (B null means C = A^2,
/// the paper's workload) with the named algorithm. This is the single
/// request currency shared by `spnet_cli batch`, the `spnet_serve` daemon,
/// and `BatchRunner::Execute` — the legacy `BatchQuery` surface is a thin
/// adapter over it (see batch_runner.h).
///
/// Unlike BatchQuery, a Request carries the serving-layer identity fields:
/// the tenant it bills against, its scheduling priority, and a deadline
/// that survives queueing.
struct Request {
  int schema_version = kRequestSchemaVersion;
  std::string id;
  /// Tenant the request bills its quota against and whose per-tenant
  /// serve.* metrics it lands in. Offline batch paths use "batch".
  std::string tenant = "batch";
  /// Scheduling priority; higher drains first from the serve queue. Ties
  /// are FIFO. Ignored by direct Execute calls (the batch is one unit).
  int priority = 0;
  /// Sentinel for deadline_ms: inherit the executor's default deadline
  /// (BatchOptions::default_deadline_ms or ServeOptions::default_deadline_ms).
  static constexpr double kInheritDeadline = -1.0;
  /// Wall-clock budget in ms, measured from when execution starts. Negative
  /// (the default) inherits the executor default; 0 is an already-expired
  /// deadline; positive is the budget.
  double deadline_ms = kInheritDeadline;
  std::string algorithm = "reorganizer";
  std::shared_ptr<const sparse::CsrMatrix> a;
  /// Null selects A as the second operand (C = A^2).
  std::shared_ptr<const sparse::CsrMatrix> b;
};

/// Outcome of one Request. `status` is per-request: a failed or expired
/// request never fails its batch, and over the serve wire it becomes a
/// response line with "ok": false rather than a dropped connection.
struct Response {
  int schema_version = kRequestSchemaVersion;
  std::string id;
  std::string tenant;
  Status status;
  /// Algorithm that actually produced the measurement (the fallback's name
  /// when graceful degradation kicked in).
  std::string algorithm_used;
  bool plan_cache_hit = false;
  bool fallback_used = false;
  /// Host wall-clock spent executing (fingerprint + plan + simulate).
  double wall_ms = 0.0;
  /// Simulated end-to-end seconds on the device, as milliseconds.
  double sim_ms = 0.0;
  double gflops = 0.0;
  int64_t flops = 0;
  int64_t output_nnz = 0;
};

/// Fluent constructor for Request that centralizes validation: every
/// producer (CLI manifest expansion, serve wire decoding, tests) funnels
/// through Build(), so "has an A operand, sane deadline, known schema" is
/// checked in exactly one place.
///
///   SPNET_ASSIGN_OR_RETURN(
///       engine::Request req,
///       engine::RequestBuilder()
///           .Id("as-caida:reorganizer#0")
///           .Tenant("t0")
///           .Priority(1)
///           .DeadlineMs(250.0)
///           .OperandA(matrix)
///           .Build());
class RequestBuilder {
 public:
  RequestBuilder& Id(std::string id) {
    request_.id = std::move(id);
    return *this;
  }
  RequestBuilder& Tenant(std::string tenant) {
    request_.tenant = std::move(tenant);
    return *this;
  }
  RequestBuilder& Priority(int priority) {
    request_.priority = priority;
    return *this;
  }
  RequestBuilder& DeadlineMs(double deadline_ms) {
    request_.deadline_ms = deadline_ms;
    return *this;
  }
  RequestBuilder& Algorithm(std::string algorithm) {
    request_.algorithm = std::move(algorithm);
    return *this;
  }
  RequestBuilder& OperandA(std::shared_ptr<const sparse::CsrMatrix> a) {
    request_.a = std::move(a);
    return *this;
  }
  RequestBuilder& OperandB(std::shared_ptr<const sparse::CsrMatrix> b) {
    request_.b = std::move(b);
    return *this;
  }

  /// Validates and returns the request. InvalidArgument when the id is
  /// empty (responses could not be correlated), the A operand is missing,
  /// or the algorithm name is empty. Any negative deadline normalizes to
  /// the kInheritDeadline sentinel so downstream comparisons are exact.
  [[nodiscard]] Result<Request> Build() const;

 private:
  Request request_;
};

/// Rejects Requests this binary cannot interpret. Centralized so the batch
/// and serve ingest paths agree on what "unknown schema" means.
[[nodiscard]] Status ValidateSchemaVersion(int schema_version);

}  // namespace engine
}  // namespace spnet

#endif  // SPNET_ENGINE_REQUEST_H_
