#include "metrics/trace.h"

#include <cstdio>

#include "metrics/json_writer.h"

namespace spnet {
namespace metrics {

TraceRecorder::TraceRecorder() : origin_(std::chrono::steady_clock::now()) {
  spans_.reserve(64);
}

double TraceRecorder::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

int TraceRecorder::Begin(const std::string& name) {
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return -1;
  }
  TraceSpan span;
  span.name = name;
  span.depth = static_cast<int>(open_.size());
  span.parent = open_.empty() ? -1 : open_.back();
  span.start_ms = NowMs();
  const int id = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  open_.push_back(id);
  return id;
}

void TraceRecorder::End(int id) {
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  const double now = NowMs();
  // Close any deeper spans left open (e.g. early returns between Begin
  // and the guard's destructor order) along with the target itself.
  while (!open_.empty() && open_.back() >= id) {
    TraceSpan& span = spans_[open_.back()];
    if (span.duration_ms < 0.0) span.duration_ms = now - span.start_ms;
    open_.pop_back();
  }
}

void TraceRecorder::AppendJson(JsonWriter* w) const {
  w->BeginArray();
  for (const TraceSpan& span : spans_) {
    w->BeginObject();
    w->Key("name").String(span.name);
    w->Key("depth").Int(span.depth);
    w->Key("parent").Int(span.parent);
    w->Key("start_ms").Double(span.start_ms);
    if (span.duration_ms < 0.0) {
      w->Key("dur_ms").Null();
    } else {
      w->Key("dur_ms").Double(span.duration_ms);
    }
    w->EndObject();
  }
  w->EndArray();
}

std::string TraceRecorder::ToJson() const {
  JsonWriter w;
  AppendJson(&w);
  return w.str();
}

std::string TraceRecorder::ToPrettyString() const {
  std::string out;
  char buf[160];
  for (const TraceSpan& span : spans_) {
    std::string indent(static_cast<size_t>(span.depth) * 2, ' ');
    if (span.duration_ms < 0.0) {
      std::snprintf(buf, sizeof(buf), "%s%s  (open)\n", indent.c_str(),
                    span.name.c_str());
    } else {
      std::snprintf(buf, sizeof(buf), "%s%-24s %10.3f ms\n", indent.c_str(),
                    span.name.c_str(), span.duration_ms);
    }
    out += buf;
  }
  if (dropped_ > 0) {
    std::snprintf(buf, sizeof(buf), "(+%lld spans dropped past cap)\n",
                  static_cast<long long>(dropped_));
    out += buf;
  }
  return out;
}

}  // namespace metrics
}  // namespace spnet
