#ifndef SPNET_COMMON_THREAD_ANNOTATIONS_H_
#define SPNET_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros.
///
/// These expand to Clang's capability attributes when compiling with Clang
/// (the CI lint job builds with `-Wthread-safety -Werror=thread-safety`)
/// and to nothing elsewhere, so GCC builds are unaffected. The vocabulary
/// follows https://clang.llvm.org/docs/ThreadSafetyAnalysis.html:
///
///   - CAPABILITY declares a lock-like type (common/mutex.h's Mutex).
///   - GUARDED_BY(mu) on a member/global means "reads and writes require
///     holding mu"; PT_GUARDED_BY guards the pointee of a pointer.
///   - REQUIRES(mu) on a function means "callers must hold mu";
///     EXCLUDES(mu) means "callers must NOT hold mu" (anti-deadlock).
///   - ACQUIRE/RELEASE/TRY_ACQUIRE annotate the lock operations
///     themselves; SCOPED_CAPABILITY marks RAII lock holders.
///
/// The macros are deliberately unprefixed — the canonical spellings from
/// the Clang documentation — and guarded so a TU that already defines
/// them (there is none in this repo) keeps its own definitions.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SPNET_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef SPNET_THREAD_ANNOTATION_
#define SPNET_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) SPNET_THREAD_ANNOTATION_(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY SPNET_THREAD_ANNOTATION_(scoped_lockable)
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) SPNET_THREAD_ANNOTATION_(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) SPNET_THREAD_ANNOTATION_(pt_guarded_by(x))
#endif

#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) \
  SPNET_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#endif

#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) SPNET_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#endif

#ifndef REQUIRES
#define REQUIRES(...) \
  SPNET_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) SPNET_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) SPNET_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  SPNET_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) SPNET_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) SPNET_THREAD_ANNOTATION_(assert_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) SPNET_THREAD_ANNOTATION_(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  SPNET_THREAD_ANNOTATION_(no_thread_safety_analysis)
#endif

#endif  // SPNET_COMMON_THREAD_ANNOTATIONS_H_
