// Reorder-locality bench: does the reordering pre-pass change what the
// workload classifier sees? For each synthetic generator family and each
// reorder strategy this runs the Block Reorganizer pre-process
// (BlockReorganizerSpGemm::Analyze on A*A) with and without the pre-pass
// and reports the classifier bin census side by side, per planning tier:
//
//   exact tier      pair_work lives on the inner dimension, which the
//                   pre-pass never relabels (A's rows and B's columns
//                   move, the contraction axis does not), and per-row
//                   C-hat populations are merely relabeled. The bin
//                   census is therefore provably identical pre/post —
//                   the bench measures it anyway and reports the delta,
//                   so a regression in that invariant is loud.
//   estimated tier  the sampled estimator walks A's rows in storage
//                   order (strided sample + hub pass), so row order does
//                   change which entries are sampled exactly vs banded.
//                   Here reordering can genuinely move the census; the
//                   delta column shows by how much, per strategy.
//
// Columns: bin populations (pairs / dominators / low performers /
// normals / limited rows), fragments the split pass would create,
// |delta| vs the same tier's unreordered baseline summed over the four
// bins, and the wall-clock cost of the pre-pass itself (permutation
// build + row/column application for both operands, best of --repeat).
//
// Flags: --scale (default 0.25), --seed, --csv, --threads,
// --repeat (reorder timing repetitions, default 3),
// --json_out=BENCH_reorder_locality.json.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/block_reorganizer.h"
#include "core/reorganizer_config.h"
#include "datasets/generators.h"
#include "metrics/report.h"
#include "sparse/csr_matrix.h"
#include "sparse/reorder.h"
#include "spgemm/exec_context.h"

namespace spnet {
namespace {

/// One synthetic input per generator family, linearly scaled; the same
/// families (and sizes) as bench_planning_frontier so the two result
/// files line up row for row.
sparse::CsrMatrix MakeFamilyCase(const std::string& family,
                                 const bench::BenchOptions& options) {
  const double s = options.scale;
  auto dim = [&](double base) {
    return static_cast<sparse::Index>(std::max(64.0, base * s));
  };
  auto count = [&](double base) {
    return static_cast<int64_t>(std::max(256.0, base * s));
  };
  Result<sparse::CsrMatrix> m =
      Status::InvalidArgument("unknown family " + family);
  if (family == "powerlaw") {
    datasets::PowerLawParams p;
    p.rows = dim(24000);
    p.cols = p.rows;
    p.nnz = count(960000);
    p.row_skew = 0.9;
    p.col_skew = 0.9;
    p.seed = options.seed;
    m = datasets::GeneratePowerLaw(p);
  } else if (family == "rmat") {
    datasets::RmatParams p;
    p.scale = 1;
    while ((sparse::Index{1} << p.scale) < dim(16000)) ++p.scale;
    p.edge_count = count(320000);
    p.seed = options.seed;
    m = datasets::GenerateRmat(p);
  } else if (family == "banded") {
    datasets::QuasiRegularParams p;
    p.n = dim(20000);
    p.nnz = count(400000);
    p.seed = options.seed;
    m = datasets::GenerateQuasiRegular(p);
  } else if (family == "block-diagonal") {
    datasets::BlockDiagonalParams p;
    p.n = dim(20000);
    p.block_size = 48;
    p.fill = 0.2;
    p.seed = options.seed;
    m = datasets::GenerateBlockDiagonal(p);
  }
  SPNET_CHECK(m.ok()) << family << ": " << m.status().ToString();
  return std::move(m).value();
}

core::ReorganizerReport AnalyzeWith(const sparse::CsrMatrix& matrix,
                                    core::PlanningTier tier,
                                    sparse::ReorderStrategy strategy,
                                    const gpusim::DeviceSpec& device,
                                    spgemm::ExecContext* ctx) {
  core::ReorganizerConfig config;
  config.planning_tier = tier;
  config.reorder = strategy;
  const core::BlockReorganizerSpGemm algorithm(config);
  auto report = algorithm.Analyze(matrix, matrix, device, ctx);
  SPNET_CHECK(report.ok()) << report.status().ToString();
  return *report;
}

/// Wall-clock of the pre-pass alone for an A*A product: both permutation
/// builds plus the row and column applications. Best of `repeat`.
double ReorderCostMs(const sparse::CsrMatrix& matrix,
                     sparse::ReorderStrategy strategy, int64_t repeat) {
  double best = 0.0;
  for (int64_t r = 0; r < repeat; ++r) {
    Timer timer;
    auto rows = sparse::BuildRowPermutation(matrix, strategy);
    SPNET_CHECK(rows.ok()) << rows.status().ToString();
    auto cols = sparse::BuildColPermutation(matrix, strategy);
    SPNET_CHECK(cols.ok()) << cols.status().ToString();
    auto a = rows->ApplyToRows(matrix);
    SPNET_CHECK(a.ok()) << a.status().ToString();
    auto b = cols->ApplyToCols(matrix);
    SPNET_CHECK(b.ok()) << b.status().ToString();
    const double ms = timer.Seconds() * 1e3;
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

int64_t CensusDelta(const core::ReorganizerReport& report,
                    const core::ReorganizerReport& baseline) {
  auto diff = [](int64_t x, int64_t y) { return x > y ? x - y : y - x; };
  return diff(report.dominators, baseline.dominators) +
         diff(report.low_performers, baseline.low_performers) +
         diff(report.normals, baseline.normals) +
         diff(report.limited_rows, baseline.limited_rows);
}

int Run(int argc, char** argv) {
  bench::BenchOptions options = bench::BenchOptions::FromArgs(argc, argv);
  FlagParser flags;
  SPNET_CHECK(flags.Parse(argc, argv).ok());
  const int64_t repeat = std::max<int64_t>(1, flags.GetInt("repeat", 3));

  const std::vector<std::string> families = {"powerlaw", "rmat", "banded",
                                             "block-diagonal"};
  struct Tier {
    const char* name;
    core::PlanningTier tier;
  };
  const Tier tiers[] = {{"exact", core::PlanningTier::kExact},
                        {"estimated", core::PlanningTier::kEstimated}};

  spgemm::ExecContext ctx;
  const gpusim::DeviceSpec device = options.Device();
  metrics::Table table({"family", "tier", "reorder", "pairs", "dominators",
                        "low perf", "normals", "limited rows", "fragments",
                        "delta vs none", "reorder ms"});
  bool exact_census_invariant = true;
  for (const std::string& family : families) {
    const sparse::CsrMatrix matrix = MakeFamilyCase(family, options);
    for (const Tier& tier : tiers) {
      const core::ReorganizerReport baseline = AnalyzeWith(
          matrix, tier.tier, sparse::ReorderStrategy::kNone, device, &ctx);
      for (sparse::ReorderStrategy strategy :
           sparse::AllReorderStrategies()) {
        const bool is_none = strategy == sparse::ReorderStrategy::kNone;
        const core::ReorganizerReport report =
            is_none ? baseline
                    : AnalyzeWith(matrix, tier.tier, strategy, device, &ctx);
        const int64_t delta = CensusDelta(report, baseline);
        if (tier.tier == core::PlanningTier::kExact && delta != 0) {
          exact_census_invariant = false;
        }
        const double reorder_ms =
            is_none ? 0.0 : ReorderCostMs(matrix, strategy, repeat);
        table.AddRow({family, tier.name,
                      sparse::ReorderStrategyName(strategy),
                      std::to_string(report.nonzero_pairs),
                      std::to_string(report.dominators),
                      std::to_string(report.low_performers),
                      std::to_string(report.normals),
                      std::to_string(report.limited_rows),
                      std::to_string(report.fragments),
                      std::to_string(delta),
                      metrics::FormatDouble(reorder_ms, 3)});
      }
    }
  }

  std::printf("== reorder locality: classifier bin census pre/post ==\n");
  std::fputs(options.csv ? table.ToCsv().c_str() : table.ToString().c_str(),
             stdout);
  std::printf("exact-tier bin census invariant under reordering: %s\n",
              exact_census_invariant ? "yes (as the theory predicts)"
                                     : "NO — invariant violated");

  bench::BenchJson json("reorder_locality",
                        "reorder pre-pass vs classifier bins", options);
  json.AddTable("reorder_locality", table);
  json.AttachContext(&ctx);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
