#include "sparse/reorder.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <utility>

namespace spnet {
namespace sparse {

namespace {

/// SplitMix64 finalizer: deterministic, platform-independent column-id
/// hashing for the min-hash signatures.
uint64_t HashU64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::vector<Index> DegreeOrder(const CsrMatrix& m) {
  std::vector<Index> order(static_cast<size_t>(m.rows()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&m](Index x, Index y) {
    const Offset dx = m.RowNnz(x);
    const Offset dy = m.RowNnz(y);
    if (dx != dy) return dx > dy;  // hubs first
    return x < y;
  });
  return order;
}

/// Reverse Cuthill–McKee over the bipartite row/column graph: rows are
/// adjacent when they share a column. Each column is expanded exactly once
/// (its row list is consumed on first touch), so the traversal is O(nnz)
/// plus the per-level neighbor sorts. Components are rooted at the
/// lowest-degree unvisited row; empty rows are their own components.
std::vector<Index> RcmOrder(const CsrMatrix& m) {
  const Index rows = m.rows();
  const CscMatrix csc = CscMatrix::FromCsr(m);

  std::vector<Index> roots(static_cast<size_t>(rows));
  std::iota(roots.begin(), roots.end(), 0);
  std::sort(roots.begin(), roots.end(), [&m](Index x, Index y) {
    const Offset dx = m.RowNnz(x);
    const Offset dy = m.RowNnz(y);
    if (dx != dy) return dx < dy;  // peripheral (low-degree) roots first
    return x < y;
  });

  std::vector<bool> visited(static_cast<size_t>(rows), false);
  std::vector<bool> col_consumed(static_cast<size_t>(m.cols()), false);
  std::vector<Index> order;
  order.reserve(static_cast<size_t>(rows));
  std::vector<Index> neighbors;

  for (Index root : roots) {
    if (visited[static_cast<size_t>(root)]) continue;
    visited[static_cast<size_t>(root)] = true;
    const size_t component_begin = order.size();
    order.push_back(root);
    for (size_t head = component_begin; head < order.size(); ++head) {
      const Index r = order[head];
      neighbors.clear();
      const SpanView row = m.Row(r);
      for (Offset k = 0; k < row.size; ++k) {
        const Index c = row.indices[static_cast<size_t>(k)];
        if (col_consumed[static_cast<size_t>(c)]) continue;
        col_consumed[static_cast<size_t>(c)] = true;
        const SpanView col = csc.Col(c);
        for (Offset l = 0; l < col.size; ++l) {
          const Index r2 = col.indices[static_cast<size_t>(l)];
          if (visited[static_cast<size_t>(r2)]) continue;
          visited[static_cast<size_t>(r2)] = true;
          neighbors.push_back(r2);
        }
      }
      std::sort(neighbors.begin(), neighbors.end(), [&m](Index x, Index y) {
        const Offset dx = m.RowNnz(x);
        const Offset dy = m.RowNnz(y);
        if (dx != dy) return dx < dy;
        return x < y;
      });
      order.insert(order.end(), neighbors.begin(), neighbors.end());
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

/// Min-hash clustering: two independent signatures over each row's column
/// ids; sorting by the signature pair lands rows with overlapping patterns
/// near each other with high probability. Empty rows sort last.
std::vector<Index> ClusterOrder(const CsrMatrix& m) {
  const Index rows = m.rows();
  constexpr uint64_t kSaltA = 0xA24BAED4963EE407ULL;
  constexpr uint64_t kSaltB = 0x9FB21C651E98DF25ULL;
  std::vector<std::pair<uint64_t, uint64_t>> sig(static_cast<size_t>(rows));
  for (Index r = 0; r < rows; ++r) {
    uint64_t s1 = std::numeric_limits<uint64_t>::max();
    uint64_t s2 = std::numeric_limits<uint64_t>::max();
    const SpanView row = m.Row(r);
    for (Offset k = 0; k < row.size; ++k) {
      const uint64_t c =
          static_cast<uint64_t>(row.indices[static_cast<size_t>(k)]);
      s1 = std::min(s1, HashU64(c ^ kSaltA));
      s2 = std::min(s2, HashU64(c ^ kSaltB));
    }
    sig[static_cast<size_t>(r)] = {s1, s2};
  }
  std::vector<Index> order(static_cast<size_t>(rows));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](Index x, Index y) {
    const auto& sx = sig[static_cast<size_t>(x)];
    const auto& sy = sig[static_cast<size_t>(y)];
    if (sx != sy) return sx < sy;
    const Offset dx = m.RowNnz(x);
    const Offset dy = m.RowNnz(y);
    if (dx != dy) return dx > dy;
    return x < y;
  });
  return order;
}

}  // namespace

const char* ReorderStrategyName(ReorderStrategy strategy) {
  switch (strategy) {
    case ReorderStrategy::kNone:
      return "none";
    case ReorderStrategy::kDegree:
      return "degree";
    case ReorderStrategy::kRcm:
      return "rcm";
    case ReorderStrategy::kCluster:
      return "cluster";
  }
  return "none";
}

Result<ReorderStrategy> ParseReorderStrategy(const std::string& name) {
  if (name == "none") return ReorderStrategy::kNone;
  if (name == "degree") return ReorderStrategy::kDegree;
  if (name == "rcm") return ReorderStrategy::kRcm;
  if (name == "cluster") return ReorderStrategy::kCluster;
  return Status::InvalidArgument("unknown reorder strategy '" + name +
                                 "' (want none|degree|rcm|cluster)");
}

const std::vector<ReorderStrategy>& AllReorderStrategies() {
  static const std::vector<ReorderStrategy> kAll = {
      ReorderStrategy::kNone, ReorderStrategy::kDegree, ReorderStrategy::kRcm,
      ReorderStrategy::kCluster};
  return kAll;
}

Permutation Permutation::Identity(Index n) {
  Permutation p;
  p.new_to_old_.resize(static_cast<size_t>(n));
  std::iota(p.new_to_old_.begin(), p.new_to_old_.end(), 0);
  p.old_to_new_ = p.new_to_old_;
  return p;
}

Result<Permutation> Permutation::FromNewToOld(std::vector<Index> new_to_old) {
  const size_t n = new_to_old.size();
  std::vector<Index> old_to_new(n, -1);
  for (size_t i = 0; i < n; ++i) {
    const Index old_pos = new_to_old[i];
    if (old_pos < 0 || static_cast<size_t>(old_pos) >= n) {
      return Status::InvalidArgument(
          "permutation entry " + std::to_string(old_pos) + " out of [0, " +
          std::to_string(n) + ")");
    }
    if (old_to_new[static_cast<size_t>(old_pos)] != -1) {
      return Status::InvalidArgument("permutation maps position " +
                                     std::to_string(old_pos) + " twice");
    }
    old_to_new[static_cast<size_t>(old_pos)] = static_cast<Index>(i);
  }
  Permutation p;
  p.new_to_old_ = std::move(new_to_old);
  p.old_to_new_ = std::move(old_to_new);
  return p;
}

bool Permutation::IsIdentity() const {
  for (size_t i = 0; i < new_to_old_.size(); ++i) {
    if (new_to_old_[i] != static_cast<Index>(i)) return false;
  }
  return true;
}

Permutation Permutation::Inverse() const {
  Permutation p;
  p.new_to_old_ = old_to_new_;
  p.old_to_new_ = new_to_old_;
  return p;
}

Result<Permutation> Permutation::Compose(const Permutation& after,
                                         const Permutation& before) {
  if (after.size() != before.size()) {
    return Status::InvalidArgument(
        "cannot compose permutations of sizes " +
        std::to_string(after.size()) + " and " + std::to_string(before.size()));
  }
  std::vector<Index> combined(after.new_to_old_.size());
  for (size_t i = 0; i < combined.size(); ++i) {
    combined[i] = before.OldOf(after.new_to_old_[i]);
  }
  return FromNewToOld(std::move(combined));
}

Result<CsrMatrix> Permutation::ApplyToRows(const CsrMatrix& m) const {
  if (m.rows() != size()) {
    return Status::InvalidArgument(
        "row permutation size " + std::to_string(size()) +
        " does not match matrix rows " + std::to_string(m.rows()));
  }
  const Index rows = m.rows();
  std::vector<Offset> ptr(static_cast<size_t>(rows) + 1, 0);
  for (Index i = 0; i < rows; ++i) {
    ptr[static_cast<size_t>(i) + 1] =
        ptr[static_cast<size_t>(i)] + m.RowNnz(OldOf(i));
  }
  std::vector<Index> indices(static_cast<size_t>(m.nnz()));
  std::vector<Value> values(static_cast<size_t>(m.nnz()));
  for (Index i = 0; i < rows; ++i) {
    const SpanView row = m.Row(OldOf(i));
    Offset out = ptr[static_cast<size_t>(i)];
    for (Offset k = 0; k < row.size; ++k, ++out) {
      indices[static_cast<size_t>(out)] = row.indices[static_cast<size_t>(k)];
      values[static_cast<size_t>(out)] = row.values[static_cast<size_t>(k)];
    }
  }
  return CsrMatrix::FromParts(rows, m.cols(), std::move(ptr),
                              std::move(indices), std::move(values));
}

Result<CsrMatrix> Permutation::ApplyToCols(const CsrMatrix& m) const {
  if (m.cols() != size()) {
    return Status::InvalidArgument(
        "column permutation size " + std::to_string(size()) +
        " does not match matrix cols " + std::to_string(m.cols()));
  }
  std::vector<Offset> ptr = m.ptr();
  std::vector<Index> indices(static_cast<size_t>(m.nnz()));
  std::vector<Value> values(static_cast<size_t>(m.nnz()));
  std::vector<std::pair<Index, Value>> buf;
  for (Index r = 0; r < m.rows(); ++r) {
    const SpanView row = m.Row(r);
    buf.clear();
    for (Offset k = 0; k < row.size; ++k) {
      buf.emplace_back(NewOf(row.indices[static_cast<size_t>(k)]),
                       row.values[static_cast<size_t>(k)]);
    }
    // Values travel with their entries, never recombine; re-sorting by the
    // new ids keeps the sorted-rows builder invariant.
    std::sort(buf.begin(), buf.end(),
              [](const std::pair<Index, Value>& x,
                 const std::pair<Index, Value>& y) { return x.first < y.first; });
    Offset out = ptr[static_cast<size_t>(r)];
    for (const auto& e : buf) {
      indices[static_cast<size_t>(out)] = e.first;
      values[static_cast<size_t>(out)] = e.second;
      ++out;
    }
  }
  return CsrMatrix::FromParts(m.rows(), m.cols(), std::move(ptr),
                              std::move(indices), std::move(values));
}

Result<Permutation> BuildRowPermutation(const CsrMatrix& m,
                                        ReorderStrategy strategy) {
  switch (strategy) {
    case ReorderStrategy::kNone:
      return Permutation::Identity(m.rows());
    case ReorderStrategy::kDegree:
      return Permutation::FromNewToOld(DegreeOrder(m));
    case ReorderStrategy::kRcm:
      return Permutation::FromNewToOld(RcmOrder(m));
    case ReorderStrategy::kCluster:
      return Permutation::FromNewToOld(ClusterOrder(m));
  }
  return Status::InvalidArgument("unknown reorder strategy");
}

Result<Permutation> BuildColPermutation(const CsrMatrix& m,
                                        ReorderStrategy strategy) {
  if (strategy == ReorderStrategy::kNone) {
    return Permutation::Identity(m.cols());
  }
  return BuildRowPermutation(m.Transpose(), strategy);
}

}  // namespace sparse
}  // namespace spnet
