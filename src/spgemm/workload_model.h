#ifndef SPNET_SPGEMM_WORKLOAD_MODEL_H_
#define SPNET_SPGEMM_WORKLOAD_MODEL_H_

#include <cstdint>
#include <vector>

#include "gpusim/kernel_desc.h"
#include "sparse/csr_matrix.h"

namespace spnet {
namespace spgemm {

struct ExecContext;

/// Precomputed workload view of one A*B multiplication, shared by every
/// algorithm's plan builder. All vectors are indexed by the inner dimension
/// (columns of A == rows of B) or by output row as noted.
struct Workload {
  /// nnz of each column of A (length a.cols()).
  std::vector<int64_t> a_col_nnz;
  /// nnz of each row of B (length b.rows()).
  std::vector<int64_t> b_row_nnz;
  /// Outer-product pair work: a_col_nnz[i] * b_row_nnz[i].
  std::vector<int64_t> pair_work;
  /// Intermediate elements landing in each output row (length a.rows());
  /// equals the row-product expansion work of that row.
  std::vector<int64_t> row_chat;
  /// Estimated nnz of each output row after merging.
  std::vector<int64_t> row_c_est;
  int64_t flops = 0;       ///< total multiplies == nnz(C-hat)
  int64_t output_nnz = 0;  ///< sum of row_c_est
  /// Count of accumulations that saturated instead of wrapping (adversarial
  /// nnz products overflowing int64). Zero for every realistic matrix;
  /// non-zero values mean pair_work/row_chat/flops are lower bounds.
  int64_t saturated = 0;
};

/// Builds the workload view. O(nnz(A) + dims). The output-row nnz uses the
/// standard hashing estimator unique ~= cols * (1 - exp(-flops_r / cols)),
/// which is exact in expectation for independently placed products; the
/// estimate only shapes merge timing, never functional results. Products
/// and sums that would overflow int64 saturate and bump the workload's
/// `saturated` count plus the `workload.saturated` counter on `ctx`.
Workload BuildWorkload(const sparse::CsrMatrix& a, const sparse::CsrMatrix& b,
                       ExecContext* ctx = nullptr);

/// Options controlling merge-kernel construction; B-Limiting raises
/// `extra_shared_mem_bytes` for the long-row kernel.
struct MergeOptions {
  int block_size = 256;
  /// Base shared memory per merge block (accumulator staging tile).
  int64_t base_shared_mem_bytes = 4096;
  /// Rows whose C-hat population exceeds this get the "limited" kernel;
  /// <= 0 disables the split (single kernel, no limiting).
  int64_t limit_row_threshold = 0;
  /// Extra shared memory allocated to the limited kernel to reduce
  /// residency (the paper's limiting factor; default 4 * 6144).
  int64_t extra_shared_mem_bytes = 0;
};

/// Builds the merge-phase kernels from per-row intermediate populations.
/// Returns one kernel when limiting is disabled, otherwise a non-limited
/// kernel plus a limited kernel for long rows.
std::vector<gpusim::KernelDesc> BuildMergeKernels(const Workload& workload,
                                                  const MergeOptions& options);

/// Describes one outer-product expansion block (one column/row pair or a
/// fragment of one after B-Splitting).
struct PairBlockParams {
  int64_t col_nnz = 0;  ///< per-thread loop length (column of A side)
  int64_t row_nnz = 0;  ///< effective threads (row of B side)
  int block_size = 256;
  /// Bytes of this block's reads expected L2-hot because sibling blocks
  /// share them (split fragments re-reading the same row vector).
  int64_t shared_read_bytes = 0;
};

/// Builds the ThreadBlockDesc of one outer-product pair block.
gpusim::ThreadBlockDesc MakePairBlock(const PairBlockParams& params);

/// Estimated host-preprocessing seconds for a given amount of copied
/// elements and scanned pairs (calibrated constants documented in the .cc).
double HostPreprocessSeconds(int64_t scanned_pairs, int64_t copied_elements);

/// Appends perfectly balanced streaming blocks (256 threads, full warps)
/// that collectively read and write `total_elements * bytes_per_element`,
/// `ops_per_element` ops each — the shape of scan/sort/precalculation
/// passes.
void AppendBalancedStreamingBlocks(gpusim::KernelDesc* kernel,
                                   int64_t total_elements,
                                   int64_t bytes_per_element,
                                   double ops_per_element);

}  // namespace spgemm
}  // namespace spnet

#endif  // SPNET_SPGEMM_WORKLOAD_MODEL_H_
