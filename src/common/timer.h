#ifndef SPNET_COMMON_TIMER_H_
#define SPNET_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace spnet {

/// Wall-clock stopwatch for the functional (host) side of the pipeline.
/// Simulated GPU time is reported by gpusim in cycles, not by this class.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset, in seconds.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  int64_t Micros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace spnet

#endif  // SPNET_COMMON_TIMER_H_
