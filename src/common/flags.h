#ifndef SPNET_COMMON_FLAGS_H_
#define SPNET_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace spnet {

/// Minimal command-line flag parser for benches and examples.
///
/// Accepts `--name=value`, `--name value` and bare `--name` (boolean true).
/// Anything not starting with `--` is collected as a positional argument.
class FlagParser {
 public:
  /// Parses argv; returns InvalidArgument on malformed input.
  Status Parse(int argc, const char* const* argv);

  /// Like Parse, but names in `boolean_flags` never consume the following
  /// token as a value (`--werror src` keeps `src` positional). Tools whose
  /// boolean switches precede positional paths must use this overload;
  /// `--name=value` still works for every flag.
  Status Parse(int argc, const char* const* argv,
               const std::set<std::string>& boolean_flags);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace spnet

#endif  // SPNET_COMMON_FLAGS_H_
