#ifndef SPNET_SPGEMM_PLAN_H_
#define SPNET_SPGEMM_PLAN_H_

#include <cstdint>
#include <vector>

#include "gpusim/kernel_desc.h"
#include "gpusim/kernel_stats.h"

namespace spnet {
namespace spgemm {

/// Bytes of one intermediate/output element: a 4-byte column index plus an
/// 8-byte value, the unordered-CSR payload the paper's kernels stream.
inline constexpr int64_t kElementBytes = 12;

/// Bytes of one index entry (CSR ptr/idx bookkeeping reads).
inline constexpr int64_t kIndexBytes = 4;

/// Everything needed to simulate one spGEMM execution: the ordered kernel
/// launches plus the host-side work the paper includes in its timings
/// (precalculation, classification, B-Splitting preprocessing).
struct SpGemmPlan {
  std::vector<gpusim::KernelDesc> kernels;
  /// Multiply operations == intermediate (C-hat) elements.
  int64_t flops = 0;
  /// Output nnz (exact or estimated, see workload_model.h).
  int64_t output_nnz = 0;
  /// Modeled host-side preprocessing seconds (CPU, not device cycles).
  double host_seconds = 0.0;
  /// Fraction of the planning workload known exactly, in [0, 1]. Exact
  /// precalculation always reports 1.0; the estimated planning tier
  /// reports its post-fallback confidence, which cache admission gates on
  /// (engine::PlanCache refuses low-confidence plans).
  double confidence = 1.0;
};

/// The result of simulating a plan on a device.
struct SpGemmMeasurement {
  gpusim::KernelStats stats;        ///< accumulated over all kernels
  gpusim::KernelStats expansion;    ///< expansion-phase kernels only
  gpusim::KernelStats merge;        ///< merge-phase kernels only
  double host_seconds = 0.0;
  double total_seconds = 0.0;       ///< device + host
  int64_t flops = 0;
  int64_t output_nnz = 0;

  /// GFLOPS counting a multiply-add as two floating-point operations,
  /// matching the paper's Figure 9 convention.
  double Gflops() const {
    if (total_seconds <= 0.0) return 0.0;
    return 2.0 * static_cast<double>(flops) / total_seconds / 1e9;
  }
};

}  // namespace spgemm
}  // namespace spnet

#endif  // SPNET_SPGEMM_PLAN_H_
