#ifndef SPNET_METRICS_JSON_WRITER_H_
#define SPNET_METRICS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace spnet {
namespace metrics {

/// Minimal streaming JSON writer — the whole serialization surface of the
/// observability layer (registry dumps, trace spans, bench result files)
/// goes through this class, so the emitted schema stays in one place and
/// needs no third-party dependency.
///
/// Usage is push-style and the caller is responsible for well-formed
/// nesting; the writer handles commas, key/value ordering within a
/// container, string escaping, and non-finite doubles (emitted as null,
/// since JSON has no Inf/NaN).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be followed by exactly one value or
  /// container.
  JsonWriter& Key(const std::string& name);

  JsonWriter& String(const std::string& value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The document so far. Valid once every container has been closed.
  const std::string& str() const { return out_; }

 private:
  /// Inserts the separating comma when a value follows a sibling.
  void BeforeValue();

  std::string out_;
  /// One entry per open container: true until the first element lands.
  std::vector<bool> first_in_container_;
  bool after_key_ = false;
};

/// Escapes a string for embedding in a JSON document (quotes, backslashes,
/// control characters).
std::string EscapeJson(const std::string& s);

/// Writes `content` to `path` atomically enough for result files
/// (truncate + write + close); returns IoError on failure.
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace metrics
}  // namespace spnet

#endif  // SPNET_METRICS_JSON_WRITER_H_
