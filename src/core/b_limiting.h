#ifndef SPNET_CORE_B_LIMITING_H_
#define SPNET_CORE_B_LIMITING_H_

#include "core/reorganizer_config.h"
#include "core/workload_classifier.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace spgemm {
struct ExecContext;
}  // namespace spgemm

namespace core {

/// Derives the merge-kernel options implementing B-Limiting: rows above
/// the classification's limiting threshold are merged by a kernel whose
/// blocks request `config.limiting_extra_shmem` additional shared memory,
/// which lowers how many merge blocks an SM can host and with it the L2
/// pressure (paper Section IV-D, Figures 7 and 14).
/// With a context, records a "b-limiting" span and limiting.* gauges
/// (limited rows, extra shared memory granted).
spgemm::MergeOptions MakeLimitedMergeOptions(const Classification& classes,
                                             const ReorganizerConfig& config,
                                             spgemm::ExecContext* ctx = nullptr);

}  // namespace core
}  // namespace spnet

#endif  // SPNET_CORE_B_LIMITING_H_
