// Fixture: exec-context-threading must fire on PlanImpl/ComputeImpl
// overrides that drop the ExecContext parameter.
#include "spgemm/algorithm.h"

namespace spnet {

class BadAlgorithm : public spgemm::SpGemmAlgorithm {
 private:
  Result<spgemm::SpGemmPlan> PlanImpl(
      const sparse::CsrMatrix& a, const sparse::CsrMatrix& b,
      const gpusim::DeviceSpec& device) const override;

  Result<spgemm::SpGemmMeasurement> ComputeImpl(
      const spgemm::SpGemmPlan& plan) const override;
};

}  // namespace spnet
