// Tests for the observability stack: JSON writer output parses back,
// Registry instruments round-trip through their JSON dump, TraceRecorder
// keeps span nesting straight, and an ExecContext threaded through
// Compute/Measure collects deterministic metrics at any thread count.

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "core/block_reorganizer.h"
#include "core/reorganizer_config.h"
#include "gpusim/device_spec.h"
#include "metrics/json_writer.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "spgemm/algorithm.h"
#include "spgemm/exec_context.h"
#include "tests/test_util.h"

#include "gtest/gtest.h"

namespace spnet {
namespace {

// --- A minimal recursive-descent JSON reader, just enough to parse back
// --- what JsonWriter emits (objects, arrays, strings, numbers, bool,
// --- null). Lives in the test so the production tree stays parser-free.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            const int code =
                std::stoi(text_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            // The writer only \u-escapes control characters (< 0x20).
            c = static_cast<char>(code);
            break;
          }
          default: return false;
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->type = JsonValue::Type::kObject;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
      while (true) {
        SkipSpace();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_++] != ':') return false;
        JsonValue v;
        if (!ParseValue(&v)) return false;
        out->object[key] = std::move(v);
        SkipSpace();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') { ++pos_; continue; }
        if (text_[pos_] == '}') { ++pos_; return true; }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->type = JsonValue::Type::kArray;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
      while (true) {
        JsonValue v;
        if (!ParseValue(&v)) return false;
        out->array.push_back(std::move(v));
        SkipSpace();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') { ++pos_; continue; }
        if (text_[pos_] == ']') { ++pos_; return true; }
        return false;
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string);
    }
    if (Literal("true")) { out->type = JsonValue::Type::kBool; out->boolean = true; return true; }
    if (Literal("false")) { out->type = JsonValue::Type::kBool; out->boolean = false; return true; }
    if (Literal("null")) { out->type = JsonValue::Type::kNull; return true; }
    // Number.
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return false;
    out->type = JsonValue::Type::kNumber;
    out->number = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

JsonValue ParseOrDie(const std::string& text) {
  JsonValue v;
  JsonReader reader(text);
  EXPECT_TRUE(reader.Parse(&v)) << "unparseable JSON: " << text;
  return v;
}

TEST(JsonWriterTest, EscapesAndNesting) {
  metrics::JsonWriter w;
  w.BeginObject();
  w.Key("quote\"back\\slash").String("line\nbreak\ttab");
  w.Key("unit").Double(0.5);
  w.Key("neg").Int(-7);
  w.Key("flag").Bool(true);
  w.Key("none").Null();
  w.Key("inf").Double(INFINITY);
  w.Key("list").BeginArray().Int(1).Int(2).EndArray();
  w.EndObject();

  const JsonValue v = ParseOrDie(w.str());
  ASSERT_EQ(v.type, JsonValue::Type::kObject);
  ASSERT_NE(v.Find("quote\"back\\slash"), nullptr);
  EXPECT_EQ(v.Find("quote\"back\\slash")->string, "line\nbreak\ttab");
  EXPECT_DOUBLE_EQ(v.Find("unit")->number, 0.5);
  EXPECT_DOUBLE_EQ(v.Find("neg")->number, -7.0);
  EXPECT_TRUE(v.Find("flag")->boolean);
  EXPECT_EQ(v.Find("none")->type, JsonValue::Type::kNull);
  // JSON has no Inf: the writer degrades it to null.
  EXPECT_EQ(v.Find("inf")->type, JsonValue::Type::kNull);
  ASSERT_EQ(v.Find("list")->array.size(), 2u);
  EXPECT_DOUBLE_EQ(v.Find("list")->array[1].number, 2.0);
}

TEST(RegistryTest, JsonRoundTrip) {
  metrics::Registry registry;
  registry.AddCounter("rows.expanded", 41);
  registry.AddCounter("rows.expanded", 1);
  registry.SetGauge("threshold", 2.5);
  registry.SetGauge("threshold", 3.5);  // last write wins
  registry.ObserveHistogram("factor", 0);
  registry.ObserveHistogram("factor", 3);
  registry.ObserveHistogram("factor", 64);

  const JsonValue v = ParseOrDie(registry.ToJson());
  const JsonValue* counters = v.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("rows.expanded")->number, 42.0);

  const JsonValue* gauges = v.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("threshold")->number, 3.5);

  const JsonValue* histograms = v.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* factor = histograms->Find("factor");
  ASSERT_NE(factor, nullptr);
  EXPECT_DOUBLE_EQ(factor->Find("count")->number, 3.0);
  EXPECT_DOUBLE_EQ(factor->Find("sum")->number, 67.0);
  EXPECT_DOUBLE_EQ(factor->Find("min")->number, 0.0);
  EXPECT_DOUBLE_EQ(factor->Find("max")->number, 64.0);
  // Buckets are {le, count} pairs and their counts add up.
  double total = 0.0;
  for (const JsonValue& bucket : factor->Find("buckets")->array) {
    total += bucket.Find("count")->number;
  }
  EXPECT_DOUBLE_EQ(total, 3.0);
}

TEST(RegistryTest, HistogramBucketing) {
  metrics::Histogram h;
  h.Observe(0);   // bucket 0
  h.Observe(1);   // bucket 1
  h.Observe(5);   // bucket 3: [4, 7]
  h.Observe(7);   // bucket 3
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 13);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 7);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(3), 2);
  EXPECT_EQ(metrics::Histogram::BucketUpperBound(3), 7);
}

TEST(RegistryTest, EmptyHistogramReportsZeroExtremes) {
  // The raw min/max slots hold INT64_MAX/INT64_MIN sentinels before the
  // first observation; accessors must never leak them.
  const metrics::Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(RegistryTest, HistogramExtremeValues) {
  metrics::Histogram h;
  h.Observe(0);
  EXPECT_EQ(h.bucket(0), 1);  // bucket 0 holds exactly {0}
  h.Observe(std::numeric_limits<int64_t>::max());
  EXPECT_EQ(h.bucket(metrics::Histogram::kBuckets - 1), 1);
  EXPECT_EQ(h.max(), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(metrics::Histogram::BucketUpperBound(63),
            std::numeric_limits<int64_t>::max());
}

#ifdef NDEBUG
TEST(RegistryTest, NegativeObservationClampsToZeroInRelease) {
  // In debug builds the assert fires instead; the release clamp keeps a
  // buggy call site from driving sum/min negative.
  metrics::Histogram h;
  h.Observe(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.bucket(0), 1);
}
#else
TEST(RegistryTest, NegativeObservationAssertsInDebug) {
  metrics::Histogram h;
  EXPECT_DEATH(h.Observe(-5), "non-negative");
}
#endif

TEST(RegistryTest, NameCollisionAcrossKindsIsDisabled) {
  metrics::Registry registry;
  ASSERT_NE(registry.GetCounter("x"), nullptr);
  // Same name, different kind: lookup refuses rather than aliasing.
  EXPECT_EQ(registry.GetGauge("x"), nullptr);
  EXPECT_EQ(registry.GetHistogram("x"), nullptr);
  // The convenience wrappers treat the collision as "metric disabled".
  registry.SetGauge("x", 9.0);
  registry.ObserveHistogram("x", 9);
  const auto snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.at("x"), 0.0);
}

TEST(RegistryTest, FindHistogramIsAPureLookup) {
  metrics::Registry registry;
  // Absent name: null, and the probe must not materialize an empty
  // instrument (a stats read is not an instrumentation site).
  EXPECT_EQ(registry.FindHistogram("latency"), nullptr);
  EXPECT_EQ(registry.FindHistogram("latency"), nullptr);
  EXPECT_TRUE(registry.Snapshot().empty());

  registry.ObserveHistogram("latency", 42);
  const metrics::Histogram* h = registry.FindHistogram("latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1);
  EXPECT_DOUBLE_EQ(h->Percentile(0.5), 42.0);

  // A name registered as another kind is "not a histogram", same as the
  // GetHistogram collision contract.
  ASSERT_NE(registry.GetCounter("hits"), nullptr);
  EXPECT_EQ(registry.FindHistogram("hits"), nullptr);
}

TEST(TraceRecorderTest, NestedSpanOrdering) {
  metrics::TraceRecorder trace;
  const int outer = trace.Begin("measure");
  const int plan = trace.Begin("plan");
  trace.End(plan);
  const int simulate = trace.Begin("simulate");
  trace.End(simulate);
  trace.End(outer);

  const auto& spans = trace.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "measure");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "plan");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].parent, outer);
  EXPECT_EQ(spans[2].name, "simulate");
  EXPECT_EQ(spans[2].depth, 1);
  EXPECT_EQ(spans[2].parent, outer);
  for (const auto& span : spans) {
    EXPECT_GE(span.duration_ms, 0.0) << span.name;
    EXPECT_GE(span.start_ms, 0.0) << span.name;
  }
  // Children start no earlier than their parent.
  EXPECT_GE(spans[1].start_ms, spans[0].start_ms);

  const JsonValue v = ParseOrDie(trace.ToJson());
  ASSERT_EQ(v.array.size(), 3u);
  EXPECT_EQ(v.array[0].Find("name")->string, "measure");
  EXPECT_EQ(v.array[1].Find("depth")->number, 1.0);
}

TEST(TraceRecorderTest, EndClosesDeeperOpenSpans) {
  metrics::TraceRecorder trace;
  const int outer = trace.Begin("outer");
  trace.Begin("inner");       // never explicitly ended
  trace.Begin("innermost");   // never explicitly ended
  trace.End(outer);
  for (const auto& span : trace.spans()) {
    EXPECT_GE(span.duration_ms, 0.0) << span.name << " left open";
  }
  // A fresh Begin after everything closed is a root again.
  const int next = trace.Begin("next");
  trace.End(next);
  EXPECT_EQ(trace.spans().back().depth, 0);
}

TEST(TraceRecorderTest, CapsAndCountsDroppedSpans) {
  metrics::TraceRecorder trace;
  for (size_t i = 0; i < metrics::TraceRecorder::kMaxSpans + 10; ++i) {
    const int id = trace.Begin("s");
    trace.End(id);
  }
  EXPECT_EQ(trace.spans().size(), metrics::TraceRecorder::kMaxSpans);
  EXPECT_EQ(trace.dropped_spans(), 10);
}

TEST(TraceRecorderTest, ScopedSpanToleratesNullRecorder) {
  metrics::ScopedSpan span(nullptr, "noop");  // must not crash
  spgemm::ExecContext* null_ctx = nullptr;
  spgemm::AddCounter(null_ctx, "noop", 1);
  spgemm::SetGauge(null_ctx, "noop", 1.0);
  spgemm::ObserveHistogram(null_ctx, "noop", 1);
  EXPECT_EQ(spgemm::TraceOf(null_ctx), nullptr);
}

// Snapshot keys that describe the computation rather than the clock or
// the pool schedule; these must not depend on the host thread count.
std::map<std::string, double> DeterministicSubset(
    const std::map<std::string, double>& snapshot) {
  const char* prefixes[] = {"classifier.", "splitting.", "gathering.",
                            "limiting.",   "expand.",    "merge.",
                            "sim."};
  std::map<std::string, double> out;
  for (const auto& [key, value] : snapshot) {
    for (const char* prefix : prefixes) {
      if (key.rfind(prefix, 0) == 0) {
        out[key] = value;
        break;
      }
    }
  }
  return out;
}

std::map<std::string, double> RunWithThreads(int threads) {
  SetGlobalThreadCount(threads);
  const sparse::CsrMatrix a = testing_util::SkewedMatrix(300, 600, 7);
  auto reorganizer = core::MakeBlockReorganizer(core::ReorganizerConfig());
  SPNET_CHECK(reorganizer.ok());
  spgemm::ExecContext ctx;
  auto m = spgemm::Measure(**reorganizer, a, a,
                           gpusim::DeviceSpec::TitanXp(), &ctx);
  SPNET_CHECK(m.ok()) << m.status().ToString();
  auto c = (*reorganizer)->Compute(a, a, &ctx);
  SPNET_CHECK(c.ok()) << c.status().ToString();
  return ctx.registry.Snapshot();
}

TEST(ExecContextTest, MetricsDeterministicAcrossThreadCounts) {
  const auto serial = RunWithThreads(1);
  const auto parallel = RunWithThreads(4);
  SetGlobalThreadCount(0);
  const auto lhs = DeterministicSubset(serial);
  const auto rhs = DeterministicSubset(parallel);
  ASSERT_FALSE(lhs.empty());
  EXPECT_EQ(lhs, rhs);
  // The classifier actually saw the workload.
  EXPECT_GT(lhs.at("classifier.nonzero_pairs"), 0.0);
  EXPECT_GT(lhs.at("sim.kernels_run"), 0.0);
}

TEST(ExecContextTest, MeasureRecordsSpansAndPoolCounters) {
  SetGlobalThreadCount(2);
  const sparse::CsrMatrix a = testing_util::RandomMatrix(80, 80, 0.05, 3);
  spgemm::ExecContext ctx;
  const auto outer = spgemm::MakeOuterProduct();
  auto m = spgemm::Measure(*outer, a, a, gpusim::DeviceSpec::TitanXp(), &ctx);
  SetGlobalThreadCount(0);
  ASSERT_TRUE(m.ok()) << m.status().ToString();

  std::vector<std::string> names;
  for (const auto& span : ctx.trace.spans()) names.push_back(span.name);
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "measure:" + outer->name());
  EXPECT_NE(std::find(names.begin(), names.end(), "plan:" + outer->name()),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "simulate"), names.end());
  // The plan span nests inside the measure span.
  EXPECT_EQ(ctx.trace.spans()[1].parent, 0);

  const auto snapshot = ctx.registry.Snapshot();
  // Pool counters published once (outermost scope only), so chunks_run
  // reflects real work, not a double count.
  ASSERT_TRUE(snapshot.count("pool.chunks_run"));
  EXPECT_GT(snapshot.at("sim.kernels_run"), 0.0);
  EXPECT_GT(snapshot.at("measure.total_seconds"), 0.0);
}

TEST(ExecContextTest, ToJsonParsesBack) {
  spgemm::ExecContext ctx;
  spgemm::AddCounter(&ctx, "c", 5);
  spgemm::SetGauge(&ctx, "g", 1.25);
  {
    metrics::ScopedSpan span(spgemm::TraceOf(&ctx), "stage");
  }
  const JsonValue v = ParseOrDie(ctx.ToJson());
  EXPECT_DOUBLE_EQ(v.Find("schema_version")->number, 1.0);
  const JsonValue* m = v.Find("metrics");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->Find("counters")->Find("c")->number, 5.0);
  EXPECT_DOUBLE_EQ(m->Find("gauges")->Find("g")->number, 1.25);
  const JsonValue* trace = v.Find("trace");
  ASSERT_NE(trace, nullptr);
  ASSERT_EQ(trace->array.size(), 1u);
  EXPECT_EQ(trace->array[0].Find("name")->string, "stage");
  EXPECT_EQ(trace->array[0].Find("dur_ms")->type, JsonValue::Type::kNumber);
}

}  // namespace
}  // namespace spnet
