// Fixture: include-iostream must fire in headers.
#ifndef SPNET_TESTS_LINT_FIXTURES_INCLUDE_IOSTREAM_BAD_H_
#define SPNET_TESTS_LINT_FIXTURES_INCLUDE_IOSTREAM_BAD_H_

#include <iostream>

#endif  // SPNET_TESTS_LINT_FIXTURES_INCLUDE_IOSTREAM_BAD_H_
