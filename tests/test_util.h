#ifndef SPNET_TESTS_TEST_UTIL_H_
#define SPNET_TESTS_TEST_UTIL_H_

#include <cstdint>

#include "common/logging.h"
#include "common/rng.h"
#include "sparse/coo_matrix.h"
#include "sparse/csr_matrix.h"

namespace spnet {
namespace testing_util {

/// Uniform random sparse matrix with ~density fraction of nonzeros.
inline sparse::CsrMatrix RandomMatrix(sparse::Index rows, sparse::Index cols,
                                      double density, uint64_t seed) {
  Rng rng(seed);
  sparse::CooMatrix coo(rows, cols);
  for (sparse::Index r = 0; r < rows; ++r) {
    for (sparse::Index c = 0; c < cols; ++c) {
      if (rng.NextBool(density)) {
        coo.Add(r, c, rng.NextDouble() * 2.0 - 1.0);
      }
    }
  }
  auto result = sparse::CsrMatrix::FromCoo(coo);
  SPNET_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// A small power-law-ish matrix: row r has ~max(1, hub_nnz / (r+1))
/// nonzeros at deterministic positions — handy for exercising the skew
/// paths without the full generators.
inline sparse::CsrMatrix SkewedMatrix(sparse::Index n, sparse::Index hub_nnz,
                                      uint64_t seed) {
  Rng rng(seed);
  sparse::CooMatrix coo(n, n);
  for (sparse::Index r = 0; r < n; ++r) {
    const sparse::Index deg =
        std::max<sparse::Index>(1, hub_nnz / (r + 1));
    for (sparse::Index k = 0; k < deg; ++k) {
      const sparse::Index c =
          static_cast<sparse::Index>(rng.NextBounded(static_cast<uint64_t>(n)));
      coo.Add(r, c, 1.0 + rng.NextDouble());
    }
  }
  coo.SortAndCombine();
  auto result = sparse::CsrMatrix::FromCoo(coo);
  SPNET_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace testing_util
}  // namespace spnet

#endif  // SPNET_TESTS_TEST_UTIL_H_
