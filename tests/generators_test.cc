#include <gtest/gtest.h>

#include <algorithm>

#include "datasets/generators.h"
#include "sparse/stats.h"

namespace spnet {
namespace datasets {
namespace {

using sparse::CsrMatrix;

TEST(RmatTest, ProducesRequestedShape) {
  RmatParams p;
  p.scale = 10;
  p.edge_count = 4096;
  auto m = GenerateRmat(p);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->rows(), 1024);
  EXPECT_EQ(m->cols(), 1024);
  // redraw_duplicates keeps nnz close to the request.
  EXPECT_GE(m->nnz(), p.edge_count * 9 / 10);
  EXPECT_LE(m->nnz(), p.edge_count);
  EXPECT_TRUE(m->Validate().ok());
}

TEST(RmatTest, DeterministicForSeed) {
  RmatParams p;
  p.scale = 9;
  p.edge_count = 2000;
  p.seed = 7;
  auto a = GenerateRmat(p);
  auto b = GenerateRmat(p);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(CsrApproxEqual(*a, *b, 0.0));
  p.seed = 8;
  auto c = GenerateRmat(p);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(CsrApproxEqual(*a, *c, 0.0));
}

TEST(RmatTest, SkewedParamsProduceSkewedDegrees) {
  RmatParams uniform;
  uniform.scale = 12;
  uniform.edge_count = 40000;
  uniform.a = uniform.b = uniform.c = uniform.d = 0.25;
  RmatParams skewed = uniform;
  skewed.a = 0.57;
  skewed.b = skewed.c = 0.19;
  skewed.d = 0.05;
  auto mu = GenerateRmat(uniform);
  auto ms = GenerateRmat(skewed);
  ASSERT_TRUE(mu.ok() && ms.ok());
  const auto su = sparse::ComputeRowStats(*mu);
  const auto ss = sparse::ComputeRowStats(*ms);
  EXPECT_GT(ss.gini, su.gini);
  EXPECT_GT(ss.max_nnz, su.max_nnz);
}

TEST(RmatTest, RejectsBadParameters) {
  RmatParams p;
  p.scale = 0;
  EXPECT_FALSE(GenerateRmat(p).ok());
  p.scale = 10;
  p.edge_count = -1;
  EXPECT_FALSE(GenerateRmat(p).ok());
  p.edge_count = 100;
  p.a = 0.9;  // probabilities no longer sum to 1
  EXPECT_FALSE(GenerateRmat(p).ok());
}

TEST(PowerLawTest, ShapeAndDeterminism) {
  PowerLawParams p;
  p.rows = 2000;
  p.cols = 2000;
  p.nnz = 12000;
  p.row_skew = 0.9;
  p.col_skew = 0.9;
  auto a = GeneratePowerLaw(p);
  auto b = GeneratePowerLaw(p);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rows(), 2000);
  EXPECT_NEAR(static_cast<double>(a->nnz()), 12000.0, 1200.0);
  EXPECT_TRUE(CsrApproxEqual(*a, *b, 0.0));
  EXPECT_TRUE(a->Validate().ok());
}

TEST(PowerLawTest, SkewControlsGini) {
  PowerLawParams flat;
  flat.rows = flat.cols = 3000;
  flat.nnz = 20000;
  flat.row_skew = flat.col_skew = 0.1;
  PowerLawParams steep = flat;
  steep.row_skew = steep.col_skew = 1.0;
  auto mf = GeneratePowerLaw(flat);
  auto ms = GeneratePowerLaw(steep);
  ASSERT_TRUE(mf.ok() && ms.ok());
  EXPECT_GT(sparse::ComputeRowStats(*ms).gini,
            sparse::ComputeRowStats(*mf).gini + 0.2);
}

TEST(PowerLawTest, AlignedHubsInflateOuterProductWork) {
  PowerLawParams p;
  p.rows = p.cols = 4000;
  p.nnz = 30000;
  p.row_skew = p.col_skew = 1.0;
  p.align_hubs = true;
  auto aligned = GeneratePowerLaw(p);
  p.align_hubs = false;
  auto unaligned = GeneratePowerLaw(p);
  ASSERT_TRUE(aligned.ok() && unaligned.ok());
  // C = A^2 work explodes when row hubs are also column hubs.
  EXPECT_GT(sparse::SpGemmFlops(*aligned, *aligned),
            2 * sparse::SpGemmFlops(*unaligned, *unaligned));
}

TEST(PowerLawTest, RejectsBadParameters) {
  PowerLawParams p;
  p.rows = 0;
  p.cols = 10;
  p.nnz = 5;
  EXPECT_FALSE(GeneratePowerLaw(p).ok());
  p.rows = 10;
  p.nnz = 101;  // > rows*cols
  EXPECT_FALSE(GeneratePowerLaw(p).ok());
}

TEST(QuasiRegularTest, ShapeDiagonalAndRegularity) {
  QuasiRegularParams p;
  p.n = 5000;
  p.nnz = 60000;
  p.degree_jitter = 0.2;
  auto m = GenerateQuasiRegular(p);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->rows(), 5000);
  EXPECT_NEAR(static_cast<double>(m->nnz()), 60000.0, 6000.0);
  // Full diagonal.
  for (sparse::Index r = 0; r < 100; ++r) {
    const sparse::SpanView row = m->Row(r);
    bool has_diag = false;
    for (sparse::Offset k = 0; k < row.size; ++k) {
      if (row.indices[k] == r) has_diag = true;
    }
    EXPECT_TRUE(has_diag) << "row " << r;
  }
  // Low skew.
  EXPECT_LT(sparse::ComputeRowStats(*m).gini, 0.2);
}

TEST(QuasiRegularTest, BandRespected) {
  QuasiRegularParams p;
  p.n = 4000;
  p.nnz = 40000;
  p.band_frac = 0.01;  // band halfwidth 40
  auto m = GenerateQuasiRegular(p);
  ASSERT_TRUE(m.ok());
  const int64_t band = 40;
  for (sparse::Index r = 0; r < m->rows(); r += 97) {
    const sparse::SpanView row = m->Row(r);
    for (sparse::Offset k = 0; k < row.size; ++k) {
      EXPECT_LE(std::abs(static_cast<int64_t>(row.indices[k]) - r), band);
    }
  }
}

TEST(BlockDiagonalTest, EdgesStayInsideBlocksWithFullDiagonal) {
  BlockDiagonalParams p;
  p.n = 100;
  p.block_size = 24;
  p.fill = 0.3;
  auto m = GenerateBlockDiagonal(p);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->rows(), 100);
  EXPECT_EQ(m->cols(), 100);
  ASSERT_TRUE(m->Validate().ok());
  for (sparse::Index r = 0; r < m->rows(); ++r) {
    const sparse::Index block_begin = (r / p.block_size) * p.block_size;
    const sparse::Index block_end =
        std::min<sparse::Index>(p.n, block_begin + p.block_size);
    const sparse::SpanView row = m->Row(r);
    bool has_diag = false;
    for (sparse::Offset k = 0; k < row.size; ++k) {
      EXPECT_GE(row.indices[k], block_begin) << "row " << r;
      EXPECT_LT(row.indices[k], block_end) << "row " << r;
      if (row.indices[k] == r) has_diag = true;
    }
    EXPECT_TRUE(has_diag) << "row " << r;
  }
  // fill=0.3 over 24x24 blocks lands well above the bare diagonal.
  EXPECT_GT(m->nnz(), m->rows());
}

TEST(BlockDiagonalTest, Deterministic) {
  BlockDiagonalParams p;
  p.n = 96;
  p.block_size = 16;
  p.fill = 0.25;
  auto a = GenerateBlockDiagonal(p);
  auto b = GenerateBlockDiagonal(p);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(CsrApproxEqual(*a, *b, 0.0));
  p.seed = 43;
  auto c = GenerateBlockDiagonal(p);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(CsrApproxEqual(*a, *c, 0.0));
}

TEST(BlockDiagonalTest, RejectsBadParameters) {
  BlockDiagonalParams p;
  p.n = 0;
  EXPECT_FALSE(GenerateBlockDiagonal(p).ok());
  p.n = 10;
  p.block_size = 0;
  EXPECT_FALSE(GenerateBlockDiagonal(p).ok());
  p.block_size = 4;
  p.fill = 1.5;
  EXPECT_FALSE(GenerateBlockDiagonal(p).ok());
  p.fill = -0.1;
  EXPECT_FALSE(GenerateBlockDiagonal(p).ok());
}

TEST(BlockDiagonalTest, ZeroFillKeepsOnlyTheDiagonal) {
  BlockDiagonalParams p;
  p.n = 50;
  p.block_size = 10;
  p.fill = 0.0;
  p.weighted = false;
  auto m = GenerateBlockDiagonal(p);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 50);
  for (sparse::Index r = 0; r < m->rows(); ++r) {
    const sparse::SpanView row = m->Row(r);
    ASSERT_EQ(row.size, 1) << "row " << r;
    EXPECT_EQ(row.indices[0], r);
    EXPECT_EQ(row.values[0], 1.0);
  }
}

TEST(QuasiRegularTest, Deterministic) {
  QuasiRegularParams p;
  p.n = 1000;
  p.nnz = 8000;
  auto a = GenerateQuasiRegular(p);
  auto b = GenerateQuasiRegular(p);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(CsrApproxEqual(*a, *b, 0.0));
}

}  // namespace
}  // namespace datasets
}  // namespace spnet
