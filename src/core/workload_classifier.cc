#include "core/workload_classifier.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_util.h"
#include "common/parallel.h"
#include "spgemm/exec_context.h"

namespace spnet {
namespace core {

using sparse::Index;

namespace {

/// Per-chunk classification buckets; concatenated in chunk order so the
/// parallel classification emits pairs in exactly the serial order.
struct ChunkBuckets {
  std::vector<Index> dominators;
  std::vector<Index> low_performers;
  std::vector<Index> normals;
  std::vector<Index> limited_rows;
};

void AppendTo(std::vector<Index>* out, const std::vector<Index>& chunk) {
  out->insert(out->end(), chunk.begin(), chunk.end());
}

/// Converts `multiplier * mean` into an integer threshold, clamped to
/// [1, INT64_MAX] in the double domain. The clamp must happen before the
/// cast: double -> int64 conversion of an out-of-range value is undefined
/// behavior, and on x86 it produces INT64_MIN — which the old max(1, ...)
/// then "clamped" to 1, silently classifying nearly every pair as a
/// dominator whenever alpha (or beta) was cranked up for a sweep.
int64_t ThresholdFromMean(double multiplier, double mean) {
  const double t = multiplier * mean;
  if (!(t >= 1.0)) return 1;  // also catches NaN
  // 2^63 rounded to the nearest double below it; anything >= is saturated.
  constexpr double kMaxExact = 9223372036854774784.0;
  if (t >= kMaxExact) return std::numeric_limits<int64_t>::max();
  return static_cast<int64_t>(t);
}

}  // namespace

Classification Classify(const spgemm::Workload& workload,
                        const ReorganizerConfig& config,
                        spgemm::ExecContext* ctx) {
  metrics::ScopedSpan span(spgemm::TraceOf(ctx), "classify");
  Classification c;
  ThreadPool& pool = GlobalThreadPool();
  const int64_t pairs = static_cast<int64_t>(workload.pair_work.size());
  const int64_t rows = static_cast<int64_t>(workload.row_chat.size());
  const int64_t pair_grain = GrainForItems(pairs, pool.threads());
  const int64_t row_grain = GrainForItems(rows, pool.threads());

  const int64_t nonzero_pairs = pool.ParallelReduce(
      0, pairs, pair_grain, int64_t{0},
      [&](int64_t begin, int64_t end, int) {
        int64_t n = 0;
        for (int64_t i = begin; i < end; ++i) {
          if (workload.pair_work[static_cast<size_t>(i)] > 0) ++n;
        }
        return n;
      },
      [](int64_t acc, int64_t partial) { return acc + partial; });
  const double mean_pair_work =
      nonzero_pairs > 0
          ? static_cast<double>(workload.flops) /
                static_cast<double>(nonzero_pairs)
          : 0.0;
  c.dominator_threshold = ThresholdFromMean(config.alpha, mean_pair_work);

  const int64_t nonzero_rows = pool.ParallelReduce(
      0, rows, row_grain, int64_t{0},
      [&](int64_t begin, int64_t end, int) {
        int64_t n = 0;
        for (int64_t r = begin; r < end; ++r) {
          if (workload.row_chat[static_cast<size_t>(r)] > 0) ++n;
        }
        return n;
      },
      [](int64_t acc, int64_t partial) { return acc + partial; });
  const double mean_row_chat =
      nonzero_rows > 0 ? static_cast<double>(workload.flops) /
                             static_cast<double>(nonzero_rows)
                       : 0.0;
  c.limit_row_threshold = ThresholdFromMean(config.beta, mean_row_chat);

  // Bucket the pairs and rows chunk-locally, then concatenate the chunks
  // in range order — the same sequence the serial scan produced.
  ChunkBuckets buckets = pool.ParallelReduce(
      0, pairs, pair_grain, ChunkBuckets{},
      [&](int64_t begin, int64_t end, int) {
        ChunkBuckets local;
        for (int64_t i = begin; i < end; ++i) {
          const int64_t work = workload.pair_work[static_cast<size_t>(i)];
          if (work == 0) continue;
          const Index pair = static_cast<Index>(i);
          if (work > c.dominator_threshold) {
            local.dominators.push_back(pair);
          } else if (workload.b_row_nnz[static_cast<size_t>(i)] < 32) {
            local.low_performers.push_back(pair);
          } else {
            local.normals.push_back(pair);
          }
        }
        return local;
      },
      [](ChunkBuckets acc, ChunkBuckets partial) {
        AppendTo(&acc.dominators, partial.dominators);
        AppendTo(&acc.low_performers, partial.low_performers);
        AppendTo(&acc.normals, partial.normals);
        return acc;
      });
  c.dominators = std::move(buckets.dominators);
  c.low_performers = std::move(buckets.low_performers);
  c.normals = std::move(buckets.normals);

  c.limited_rows = pool.ParallelReduce(
      0, rows, row_grain, std::vector<Index>{},
      [&](int64_t begin, int64_t end, int) {
        std::vector<Index> local;
        for (int64_t r = begin; r < end; ++r) {
          if (workload.row_chat[static_cast<size_t>(r)] >
              c.limit_row_threshold) {
            local.push_back(static_cast<Index>(r));
          }
        }
        return local;
      },
      [](std::vector<Index> acc, std::vector<Index> partial) {
        AppendTo(&acc, partial);
        return acc;
      });

  spgemm::SetGauge(ctx, "classifier.nonzero_pairs",
                   static_cast<double>(nonzero_pairs));
  spgemm::SetGauge(ctx, "classifier.dominators",
                   static_cast<double>(c.dominators.size()));
  spgemm::SetGauge(ctx, "classifier.low_performers",
                   static_cast<double>(c.low_performers.size()));
  spgemm::SetGauge(ctx, "classifier.normals",
                   static_cast<double>(c.normals.size()));
  spgemm::SetGauge(ctx, "classifier.limited_rows",
                   static_cast<double>(c.limited_rows.size()));
  spgemm::SetGauge(ctx, "classifier.dominator_threshold",
                   static_cast<double>(c.dominator_threshold));
  spgemm::SetGauge(ctx, "classifier.limit_row_threshold",
                   static_cast<double>(c.limit_row_threshold));
  return c;
}

Classification ClassifyEstimated(spgemm::EstimatedWorkload* est,
                                 const sparse::CsrMatrix& a,
                                 const sparse::CsrMatrix& b,
                                 const ReorganizerConfig& config,
                                 spgemm::ExecContext* ctx) {
  metrics::ScopedSpan span(spgemm::TraceOf(ctx), "classify-estimated");
  Classification c;
  spgemm::Workload& w = est->workload;
  ThreadPool& pool = GlobalThreadPool();
  const int64_t pairs = static_cast<int64_t>(w.pair_work.size());
  const int64_t rows = static_cast<int64_t>(w.row_chat.size());
  const int64_t rows_b = b.rows();
  const int64_t pair_grain = GrainForItems(pairs, pool.threads());
  const int64_t row_grain = GrainForItems(rows, pool.threads());

  // Thresholds from the estimated totals — the same mean-multiplier rule
  // as the exact tier, fed the sampled flops and the scaled population
  // estimates.
  const double mean_pair_work =
      est->estimated_nonzero_pairs > 0
          ? static_cast<double>(w.flops) /
                static_cast<double>(est->estimated_nonzero_pairs)
          : 0.0;
  c.dominator_threshold = ThresholdFromMean(config.alpha, mean_pair_work);
  const double mean_row_chat =
      est->estimated_nonzero_rows > 0
          ? static_cast<double>(w.flops) /
                static_cast<double>(est->estimated_nonzero_rows)
          : 0.0;
  c.limit_row_threshold = ThresholdFromMean(config.beta, mean_row_chat);

  // --- Pair-side fallback: exact recount of straddling columns. -----------
  // A band straddles when lo <= threshold < hi; entirely-above or
  // entirely-below bands decide the class without exact work.
  const std::vector<Index> straddle_cols = pool.ParallelReduce(
      0, pairs, pair_grain, std::vector<Index>{},
      [&](int64_t begin, int64_t end, int) {
        std::vector<Index> local;
        for (int64_t i = begin; i < end; ++i) {
          const int64_t lo = est->pair_work_lo[static_cast<size_t>(i)];
          const int64_t hi = est->pair_work_hi[static_cast<size_t>(i)];
          if (lo < hi && lo <= c.dominator_threshold &&
              hi > c.dominator_threshold) {
            local.push_back(static_cast<Index>(i));
          }
        }
        return local;
      },
      [](std::vector<Index> acc, std::vector<Index> partial) {
        AppendTo(&acc, partial);
        return acc;
      });
  if (!straddle_cols.empty()) {
    // One flagged histogram pass over A's indices recounts every
    // straddling column exactly — the dominators' share of the exact
    // block-wise precalculation, nothing more.
    std::vector<uint8_t> flagged(w.pair_work.size(), 0);
    for (Index i : straddle_cols) flagged[static_cast<size_t>(i)] = 1;
    const int64_t nnz = static_cast<int64_t>(a.indices().size());
    std::vector<int64_t> exact_count(w.pair_work.size(), 0);
    if (nnz > 0) {
      const int64_t grain = GrainForChunkPerThread(nnz, pool.threads());
      const int64_t num_chunks = CeilDiv(nnz, grain);
      std::vector<std::vector<int64_t>> hist(static_cast<size_t>(num_chunks));
      SPNET_CHECK_OK(pool.ParallelFor(0, nnz, grain,
                       [&](int64_t begin, int64_t end, int) {
                         std::vector<int64_t>& h =
                             hist[static_cast<size_t>(begin / grain)];
                         h.assign(w.pair_work.size(), 0);
                         for (int64_t k = begin; k < end; ++k) {
                           const size_t col = static_cast<size_t>(
                               a.indices()[static_cast<size_t>(k)]);
                           if (flagged[col] != 0) h[col]++;
                         }
                         return Status::Ok();
                       }));
      SPNET_CHECK_OK(pool.ParallelFor(
          0, static_cast<int64_t>(straddle_cols.size()),
          GrainForItems(static_cast<int64_t>(straddle_cols.size()),
                        pool.threads()),
          [&](int64_t begin, int64_t end, int) {
            for (int64_t s = begin; s < end; ++s) {
              const size_t col =
                  static_cast<size_t>(straddle_cols[static_cast<size_t>(s)]);
              int64_t sum = 0;
              for (const auto& h : hist) sum += h[col];
              exact_count[col] = sum;
            }
            return Status::Ok();
          }));
    }
    for (Index i : straddle_cols) {
      const size_t col = static_cast<size_t>(i);
      const int64_t brow =
          i < rows_b ? w.b_row_nnz[col] : 0;
      bool sat = false;
      const int64_t work = SatMulI64(exact_count[col], brow, &sat);
      if (sat) ++w.saturated;
      w.a_col_nnz[col] = exact_count[col];
      w.pair_work[col] = work;
      est->pair_work_lo[col] = work;
      est->pair_work_hi[col] = work;
    }
  }

  // --- Bucket the pairs in chunk order (post-patch, no straddle left). ----
  ChunkBuckets buckets = pool.ParallelReduce(
      0, pairs, pair_grain, ChunkBuckets{},
      [&](int64_t begin, int64_t end, int) {
        ChunkBuckets local;
        for (int64_t i = begin; i < end; ++i) {
          const size_t ii = static_cast<size_t>(i);
          const int64_t lo = est->pair_work_lo[ii];
          const int64_t hi = est->pair_work_hi[ii];
          if (hi <= 0) continue;  // provably zero work
          if (lo == hi && w.pair_work[ii] == 0) continue;  // known-zero
          const Index pair = static_cast<Index>(i);
          if (lo > c.dominator_threshold) {
            local.dominators.push_back(pair);
          } else if (i < rows_b && w.b_row_nnz[ii] < 32) {
            local.low_performers.push_back(pair);
          } else {
            local.normals.push_back(pair);
          }
        }
        return local;
      },
      [](ChunkBuckets acc, ChunkBuckets partial) {
        AppendTo(&acc.dominators, partial.dominators);
        AppendTo(&acc.low_performers, partial.low_performers);
        AppendTo(&acc.normals, partial.normals);
        return acc;
      });
  c.dominators = std::move(buckets.dominators);
  c.low_performers = std::move(buckets.low_performers);
  c.normals = std::move(buckets.normals);

  // --- Row-side fallback: per-row exact rescans. --------------------------
  struct RowFallback {
    int64_t rows = 0;
    int64_t gained_mass = 0;
  };
  const double cols_b = static_cast<double>(b.cols());
  const int64_t cols_b_i64 = b.cols();
  const RowFallback fallback = pool.ParallelReduce(
      0, rows, row_grain, RowFallback{},
      [&](int64_t begin, int64_t end, int) {
        RowFallback f;
        for (int64_t r = begin; r < end; ++r) {
          const size_t ri = static_cast<size_t>(r);
          if (est->row_exact[ri] != 0) continue;
          if (est->row_chat_lo[ri] > c.limit_row_threshold ||
              est->row_chat_hi[ri] <= c.limit_row_threshold) {
            continue;  // band clears the threshold, estimate suffices
          }
          const sparse::SpanView row = a.Row(static_cast<Index>(r));
          int64_t chat = 0;
          bool sat = false;
          for (sparse::Offset k = 0; k < row.size; ++k) {
            const Index j = row.indices[k];
            if (j < rows_b) {
              chat = SatAddI64(chat, w.b_row_nnz[static_cast<size_t>(j)],
                               &sat);
            }
          }
          (void)sat;
          // The rescan converts this row's unknown mass into exact mass.
          // The row's prior exact share is not retrievable here, but it is
          // at most the old lower bound, so crediting chat - lo can only
          // understate the gain — the refreshed confidence stays a valid
          // (conservative) fraction.
          f.gained_mass = SatAddI64(
              f.gained_mass, std::max<int64_t>(0, chat - est->row_chat_lo[ri]),
              &sat);
          w.row_chat[ri] = chat;
          est->row_chat_lo[ri] = chat;
          est->row_chat_hi[ri] = chat;
          est->row_exact[ri] = 1;
          // Keep the merged-row estimate consistent with the exact chat.
          int64_t e = 0;
          if (chat > 0 && cols_b_i64 > 0) {
            const double f_chat = static_cast<double>(chat);
            double unique = cols_b * (1.0 - std::exp(-f_chat / cols_b));
            unique = std::min(unique, f_chat);
            e = std::max<int64_t>(1,
                                  static_cast<int64_t>(std::llround(unique)));
            e = std::min(e, std::min(chat, cols_b_i64));
          }
          w.row_c_est[ri] = e;
          ++f.rows;
        }
        return f;
      },
      [](RowFallback acc, RowFallback p) {
        bool sat = false;
        acc.rows += p.rows;
        acc.gained_mass = SatAddI64(acc.gained_mass, p.gained_mass, &sat);
        (void)sat;
        return acc;
      });
  const int64_t fallback_rows = fallback.rows;

  c.limited_rows = pool.ParallelReduce(
      0, rows, row_grain, std::vector<Index>{},
      [&](int64_t begin, int64_t end, int) {
        std::vector<Index> local;
        for (int64_t r = begin; r < end; ++r) {
          if (est->row_chat_lo[static_cast<size_t>(r)] >
              c.limit_row_threshold) {
            local.push_back(static_cast<Index>(r));
          }
        }
        return local;
      },
      [](std::vector<Index> acc, std::vector<Index> partial) {
        AppendTo(&acc, partial);
        return acc;
      });

  // Refresh the confidence: fallback rescans converted estimated mass into
  // exact mass, so a plan built from this classification is admitted (or
  // refused) by the cache on post-fallback numbers. The denominator
  // (flops) is exact and unchanged; the numerator grows by the mass the
  // rescans pinned down.
  est->exact_mass = SatAddI64(est->exact_mass, fallback.gained_mass);
  est->confidence =
      w.flops > 0 ? std::min(1.0, static_cast<double>(est->exact_mass) /
                                      static_cast<double>(w.flops))
                  : 1.0;

  spgemm::SetGauge(ctx, "classifier.nonzero_pairs",
                   static_cast<double>(est->estimated_nonzero_pairs));
  spgemm::SetGauge(ctx, "classifier.dominators",
                   static_cast<double>(c.dominators.size()));
  spgemm::SetGauge(ctx, "classifier.low_performers",
                   static_cast<double>(c.low_performers.size()));
  spgemm::SetGauge(ctx, "classifier.normals",
                   static_cast<double>(c.normals.size()));
  spgemm::SetGauge(ctx, "classifier.limited_rows",
                   static_cast<double>(c.limited_rows.size()));
  spgemm::SetGauge(ctx, "classifier.dominator_threshold",
                   static_cast<double>(c.dominator_threshold));
  spgemm::SetGauge(ctx, "classifier.limit_row_threshold",
                   static_cast<double>(c.limit_row_threshold));
  spgemm::SetGauge(ctx, "classifier.estimated_fallback_pairs",
                   static_cast<double>(straddle_cols.size()));
  spgemm::SetGauge(ctx, "classifier.estimated_fallback_rows",
                   static_cast<double>(fallback_rows));
  spgemm::SetGauge(ctx, "classifier.estimated_confidence", est->confidence);
  return c;
}

}  // namespace core
}  // namespace spnet
