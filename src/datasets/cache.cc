#include "datasets/cache.h"

#include <cstdio>

#include "sparse/serialization.h"

namespace spnet {
namespace datasets {

std::string CachePath(const RealWorldSpec& spec, double scale,
                      const std::string& cache_dir, uint64_t seed) {
  char suffix[96];
  std::snprintf(suffix, sizeof(suffix), "_s%.4f_seed%llu.spnb", scale,
                static_cast<unsigned long long>(seed));
  return cache_dir + "/" + spec.name + suffix;
}

namespace {

/// True when a cache entry could have been produced by Materialize(spec,
/// scale): exact target dimensions, and an actual nnz within a factor of
/// two of the requested one (the generators dedupe, so nnz is approximate
/// but never off by 2x). Anything else is a stale file left behind by an
/// older generator or an edited spec and must not be served.
bool MatchesSpec(const sparse::CsrMatrix& m, const MaterializeTarget& target) {
  if (m.rows() != target.dim || m.cols() != target.dim) return false;
  const int64_t nnz = m.nnz();
  return nnz > 0 && nnz <= 2 * target.nnz && 2 * nnz >= target.nnz;
}

}  // namespace

Result<sparse::CsrMatrix> MaterializeCached(const RealWorldSpec& spec,
                                            double scale,
                                            const std::string& cache_dir,
                                            uint64_t seed) {
  if (cache_dir.empty()) {
    return Materialize(spec, scale, seed);
  }
  SPNET_ASSIGN_OR_RETURN(const MaterializeTarget target,
                         MaterializeTargetFor(spec, scale));
  const std::string path = CachePath(spec, scale, cache_dir, seed);
  auto cached = sparse::ReadBinary(path);
  if (cached.ok() && MatchesSpec(*cached, target)) {
    return cached;
  }
  // Miss (corrupted, or a parseable-but-stale entry whose shape no longer
  // matches the spec at this scale): regenerate and refresh the cache.
  // A failed write is non-fatal — the generated matrix is still returned.
  SPNET_ASSIGN_OR_RETURN(sparse::CsrMatrix m,
                         Materialize(spec, scale, seed));
  const Status written = sparse::WriteBinary(m, path);
  if (!written.ok()) {
    std::remove(path.c_str());  // never leave partial entries behind
  }
  return m;
}

}  // namespace datasets
}  // namespace spnet
