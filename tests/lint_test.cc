// Tests for the spnet_lint analyzer: the lexer's literal/comment
// handling, each rule firing on a violating fixture, staying quiet on a
// clean one and honoring inline suppressions — plus the self-check that
// keeps the repo's own sources lint-clean.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/graph.h"
#include "lint/lexer.h"
#include "lint/lint.h"
#include "lint/runner.h"

#include "gtest/gtest.h"

namespace spnet {
namespace lint {
namespace {

std::vector<Diagnostic> LintFixture(const std::string& name) {
  const std::string path = std::string(SPNET_LINT_FIXTURE_DIR) + "/" + name;
  auto summary = LintPaths({path}, LintOptions());
  EXPECT_TRUE(summary.ok()) << summary.status().ToString();
  if (!summary.ok()) return {};
  EXPECT_EQ(summary->files_linted, 1) << path;
  return summary->diagnostics;
}

int CountRule(const std::vector<Diagnostic>& diagnostics,
              const std::string& rule) {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&rule](const Diagnostic& d) { return d.rule == rule; }));
}

std::string Render(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += FormatDiagnostic(d) + "\n";
  }
  return out;
}

// --- lexer -----------------------------------------------------------------

std::vector<Token> CodeTokens(const std::string& source) {
  std::vector<Token> tokens = Tokenize(source);
  tokens.erase(std::remove_if(tokens.begin(), tokens.end(),
                              [](const Token& t) {
                                return t.kind == TokenKind::kComment;
                              }),
               tokens.end());
  return tokens;
}

TEST(LintLexerTest, TracksLinesAcrossTokenKinds) {
  const std::vector<Token> tokens =
      Tokenize("int a = 1;\n// note\nfloat b;\n");
  ASSERT_EQ(tokens.size(), 9u);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[5].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[5].line, 2);
  EXPECT_EQ(tokens[6].text, "float");
  EXPECT_EQ(tokens[6].line, 3);
}

TEST(LintLexerTest, StringsAndCharsSwallowTriggers) {
  const std::vector<Token> tokens =
      CodeTokens("const char* s = \"new delete\"; char q = '\\'';");
  for (const Token& t : tokens) {
    EXPECT_NE(t.text, "new");
    EXPECT_NE(t.text, "delete");
  }
  ASSERT_GE(tokens.size(), 6u);
  EXPECT_EQ(tokens[5].kind, TokenKind::kString);
  EXPECT_EQ(tokens[5].text, "\"new delete\"");
}

TEST(LintLexerTest, RawStringsSpanLinesWithEndLine) {
  const std::vector<Token> tokens =
      CodeTokens("auto s = R\"tag(\nnew int;\n)tag\";\nint after = 2;");
  const auto raw =
      std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
        return t.kind == TokenKind::kString;
      });
  ASSERT_NE(raw, tokens.end());
  EXPECT_EQ(raw->line, 1);
  EXPECT_EQ(raw->end_line, 3);
  const auto after =
      std::find_if(tokens.begin(), tokens.end(),
                   [](const Token& t) { return t.text == "after"; });
  ASSERT_NE(after, tokens.end());
  EXPECT_EQ(after->line, 4);
}

TEST(LintLexerTest, BlockCommentsAndPreprocAreSingleTokens) {
  const std::vector<Token> tokens = Tokenize(
      "#include <map> // why\n/* a\nb */ int x;\n#define F(a) \\\n  (a)\n");
  ASSERT_GE(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kPreproc);
  EXPECT_EQ(tokens[0].text, "#include <map> ");
  EXPECT_EQ(tokens[1].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[2].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[2].line, 2);
  EXPECT_EQ(tokens[2].end_line, 3);
  const auto define =
      std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
        return t.kind == TokenKind::kPreproc && t.text.rfind("#define", 0) == 0;
      });
  ASSERT_NE(define, tokens.end());
  EXPECT_EQ(define->text, "#define F(a)    (a)");
  EXPECT_EQ(define->end_line, 5);
}

TEST(LintLexerTest, MultiCharPunctuatorsStayWhole) {
  const std::vector<Token> tokens = CodeTokens("a::b->c <<= 1;");
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[1].text, "::");
  EXPECT_EQ(tokens[3].text, "->");
  EXPECT_EQ(tokens[5].text, "<<=");
}

TEST(LintLexerTest, RawStringDelimiterRoundTripsInTokenText) {
  // Regression: a non-empty delimiter used to be swallowed, leaving the
  // token text as `R"new int;)xyz"`.
  const std::vector<Token> tokens =
      CodeTokens("auto s = R\"xyz(new int;)xyz\";");
  const auto raw =
      std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
        return t.kind == TokenKind::kString;
      });
  ASSERT_NE(raw, tokens.end());
  EXPECT_EQ(raw->text, "R\"xyz(new int;)xyz\"");
  // The body must not leak `new` as an identifier token.
  for (const Token& t : tokens) EXPECT_NE(t.text, "new");
}

TEST(LintLexerTest, DigitSeparatorsStayOneNumberToken) {
  const std::vector<Token> tokens =
      CodeTokens("long n = 1'000'000; int m = 0xFF'00 + 2;");
  std::vector<std::string> numbers;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kNumber) numbers.push_back(t.text);
  }
  ASSERT_EQ(numbers.size(), 3u);
  EXPECT_EQ(numbers[0], "1'000'000");
  EXPECT_EQ(numbers[1], "0xFF'00");
  EXPECT_EQ(numbers[2], "2");
}

TEST(LintLexerTest, NumberDoesNotSwallowFollowingCharLiteral) {
  // `1,'x'` — the quote after the comma opens a character literal; the
  // pp-number scan must not treat a trailing `'` as a digit separator.
  const std::vector<Token> tokens = CodeTokens("f(1,'x');");
  const auto number =
      std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
        return t.kind == TokenKind::kNumber;
      });
  ASSERT_NE(number, tokens.end());
  EXPECT_EQ(number->text, "1");
  const auto chr =
      std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
        return t.kind == TokenKind::kCharacter;
      });
  ASSERT_NE(chr, tokens.end());
  EXPECT_EQ(chr->text, "'x'");
}

// --- per-rule fixtures -----------------------------------------------------

TEST(LintRuleTest, DiscardedStatusFiresOnBadFixture) {
  const auto diagnostics = LintFixture("discarded_status_bad.cc");
  EXPECT_EQ(CountRule(diagnostics, "discarded-status"), 2)
      << Render(diagnostics);
}

TEST(LintRuleTest, DiscardedStatusQuietOnCleanFixture) {
  const auto diagnostics = LintFixture("discarded_status_clean.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, DiscardedStatusHonorsSuppression) {
  const auto diagnostics = LintFixture("discarded_status_suppressed.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, RawNewDeleteFiresOnBadFixture) {
  const auto diagnostics = LintFixture("raw_new_delete_bad.cc");
  EXPECT_EQ(CountRule(diagnostics, "raw-new-delete"), 2)
      << Render(diagnostics);
}

TEST(LintRuleTest, RawNewDeleteQuietOnCleanFixture) {
  const auto diagnostics = LintFixture("raw_new_delete_clean.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, RawNewDeleteHonorsSuppression) {
  const auto diagnostics = LintFixture("raw_new_delete_suppressed.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, RawNewDeleteHonorsFileAllowlist) {
  LintOptions options;
  options.raw_new_delete_allowlist.push_back("lint_fixtures/raw_new_delete");
  const std::string path =
      std::string(SPNET_LINT_FIXTURE_DIR) + "/raw_new_delete_bad.cc";
  auto summary = LintPaths({path}, options);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_TRUE(summary->diagnostics.empty()) << Render(summary->diagnostics);
}

TEST(LintRuleTest, CharCtypeFiresOnBadFixture) {
  const auto diagnostics = LintFixture("char_ctype_bad.cc");
  EXPECT_EQ(CountRule(diagnostics, "char-ctype"), 2) << Render(diagnostics);
}

TEST(LintRuleTest, CharCtypeQuietOnCleanFixture) {
  const auto diagnostics = LintFixture("char_ctype_clean.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, CharCtypeHonorsSuppression) {
  const auto diagnostics = LintFixture("char_ctype_suppressed.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, GlobalMutableStateFiresOnBadFixture) {
  const auto diagnostics = LintFixture("global_state_bad.cc");
  EXPECT_EQ(CountRule(diagnostics, "global-mutable-state"), 3)
      << Render(diagnostics);
}

TEST(LintRuleTest, GlobalMutableStateQuietOnCleanFixture) {
  const auto diagnostics = LintFixture("global_state_clean.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, GlobalMutableStateHonorsSuppression) {
  const auto diagnostics = LintFixture("global_state_suppressed.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, RelaxedAtomicWarnsOnBadFixture) {
  const auto diagnostics = LintFixture("relaxed_atomic_bad.cc");
  ASSERT_EQ(CountRule(diagnostics, "relaxed-atomic"), 1)
      << Render(diagnostics);
  EXPECT_EQ(diagnostics.front().severity, Severity::kWarning);
}

TEST(LintRuleTest, RelaxedAtomicQuietOnCleanFixture) {
  const auto diagnostics = LintFixture("relaxed_atomic_clean.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, RelaxedAtomicHonorsSuppression) {
  const auto diagnostics = LintFixture("relaxed_atomic_suppressed.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, RelaxedAtomicHonorsDefaultAllowlist) {
  // The same source that warns as a fixture is fine under an allow-listed
  // path: the default allowlist names the audited fast-path files.
  const std::vector<Diagnostic> diagnostics = LintSource(
      "src/metrics/registry.cc",
      "void Touch() { g.fetch_add(1, std::memory_order_relaxed); }\n",
      LintOptions());
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, ExecContextFiresOnBadFixture) {
  const auto diagnostics = LintFixture("exec_context_bad.cc");
  EXPECT_EQ(CountRule(diagnostics, "exec-context-threading"), 2)
      << Render(diagnostics);
}

TEST(LintRuleTest, ExecContextQuietOnCleanFixture) {
  const auto diagnostics = LintFixture("exec_context_clean.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, ExecContextHonorsSuppression) {
  const auto diagnostics = LintFixture("exec_context_suppressed.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, IncludeIostreamFiresOnBadHeader) {
  const auto diagnostics = LintFixture("include_iostream_bad.h");
  EXPECT_EQ(CountRule(diagnostics, "include-iostream"), 1)
      << Render(diagnostics);
}

TEST(LintRuleTest, IncludeIostreamQuietOnCleanHeader) {
  const auto diagnostics = LintFixture("include_iostream_clean.h");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, IncludeIostreamHonorsSuppression) {
  const auto diagnostics = LintFixture("include_iostream_suppressed.h");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, IncludeIostreamIgnoresSourceFiles) {
  const std::vector<Diagnostic> diagnostics =
      LintSource("tool.cc", "#include <iostream>\n", LintOptions());
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, LegacyBatchQueryFiresOnBadFixture) {
  const auto diagnostics = LintFixture("legacy_batch_query_bad.cc");
  EXPECT_EQ(CountRule(diagnostics, "legacy-batch-query"), 2)
      << Render(diagnostics);
}

TEST(LintRuleTest, LegacyBatchQueryQuietOnCleanFixture) {
  const auto diagnostics = LintFixture("legacy_batch_query_clean.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, LegacyBatchQueryHonorsSuppression) {
  const auto diagnostics = LintFixture("legacy_batch_query_suppressed.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, LegacyBatchQueryAllowedInsideEngine) {
  // The engine still defines and adapts the legacy type; the rule only
  // polices the rest of the tree.
  const std::vector<Diagnostic> diagnostics = LintSource(
      "src/engine/batch_runner.cc", "void F() { BatchQuery query; }\n",
      LintOptions());
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, LexerTrickyFixtureIsInert) {
  const auto diagnostics = LintFixture("lexer_tricky.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, PlannerArithmeticFiresOnBadFixture) {
  // The fixture lives under lint_fixtures/src/spgemm/ because the rule is
  // path-scoped to the planner modules.
  const auto diagnostics = LintFixture("src/spgemm/planner_arith_bad.cc");
  EXPECT_EQ(CountRule(diagnostics, "unsafe-planner-arithmetic"), 3)
      << Render(diagnostics);
}

TEST(LintRuleTest, PlannerArithmeticQuietOnCleanFixture) {
  const auto diagnostics = LintFixture("src/spgemm/planner_arith_clean.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, PlannerArithmeticHonorsSuppression) {
  const auto diagnostics =
      LintFixture("src/spgemm/planner_arith_suppressed.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, PlannerArithmeticIgnoresOtherModules) {
  // Identical raw arithmetic outside src/spgemm and src/core is not this
  // rule's business (serve-side code totals flops for reporting only).
  const std::vector<Diagnostic> diagnostics = LintSource(
      "src/serve/report.cc", "long F(long flops) { return flops + 1; }\n",
      LintOptions());
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, LockDisciplineFiresOnBadFixture) {
  const auto diagnostics = LintFixture("lock_discipline_bad.cc");
  // Three std-primitive uses (lock_guard + its mutex argument, and the
  // std::mutex member) plus one unannotated Mutex member.
  EXPECT_EQ(CountRule(diagnostics, "lock-discipline"), 4)
      << Render(diagnostics);
}

TEST(LintRuleTest, LockDisciplineQuietOnCleanFixture) {
  const auto diagnostics = LintFixture("lock_discipline_clean.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, LockDisciplineHonorsSuppression) {
  const auto diagnostics = LintFixture("lock_discipline_suppressed.cc");
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

TEST(LintRuleTest, LockDisciplineExemptsMutexHeader) {
  // The wrapper itself is the one sanctioned home of std::mutex.
  const std::vector<Diagnostic> diagnostics = LintSource(
      "src/common/mutex.h", "class M { std::mutex mu_; };\n", LintOptions());
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
}

// --- project-graph rules ---------------------------------------------------

RunSummary LintFixtureTree(const std::string& name) {
  const std::string path = std::string(SPNET_LINT_FIXTURE_DIR) + "/" + name;
  auto summary = LintPaths({path}, LintOptions());
  EXPECT_TRUE(summary.ok()) << summary.status().ToString();
  return summary.ok() ? *std::move(summary) : RunSummary{};
}

TEST(LintGraphRuleTest, LayeringBadTreeFires) {
  const RunSummary summary = LintFixtureTree("layering_bad");
  EXPECT_EQ(CountRule(summary.diagnostics, "layering-violation"), 1)
      << Render(summary.diagnostics);
  EXPECT_EQ(CountRule(summary.diagnostics, "include-cycle"), 1)
      << Render(summary.diagnostics);
  // The violation is attributed to the offending include line in common/.
  for (const Diagnostic& d : summary.diagnostics) {
    if (d.rule == "layering-violation") {
      EXPECT_NE(d.file.find("common/alpha.h"), std::string::npos) << d.file;
      EXPECT_EQ(d.line, 5);
    }
  }
}

TEST(LintGraphRuleTest, LayeringCleanTreeIsQuiet) {
  const RunSummary summary = LintFixtureTree("layering_clean");
  EXPECT_TRUE(summary.diagnostics.empty()) << Render(summary.diagnostics);
}

TEST(LintGraphRuleTest, LayeringSuppressedTreeIsQuiet) {
  const RunSummary summary = LintFixtureTree("layering_suppressed");
  EXPECT_TRUE(summary.diagnostics.empty()) << Render(summary.diagnostics);
}

TEST(LintGraphTest, ModuleMapping) {
  EXPECT_EQ(ModuleForId("src/spgemm/functional.cc"), "spgemm");
  EXPECT_EQ(ModuleForId("src/common/mutex.h"), "common");
  EXPECT_EQ(ModuleForId("tests/lint_test.cc"), "tests");
  EXPECT_EQ(ModuleForId("bench/bench_util.h"), "bench");
  // The faultinject library is carved out of src/verify/.
  EXPECT_EQ(ModuleForId("src/verify/fault_injection.h"), "faultinject");
  EXPECT_EQ(ModuleForId("src/verify/fault_injection.cc"), "faultinject");
  EXPECT_EQ(ModuleForId("src/verify/differential.h"), "verify");
  EXPECT_EQ(ModuleForId("README.md"), "");
}

TEST(LintGraphTest, RepoRelativeIdTakesLastRootComponent) {
  EXPECT_EQ(RepoRelativeId("/home/u/repo/src/core/suite.h"),
            "src/core/suite.h");
  EXPECT_EQ(RepoRelativeId("tests/test_util.h"), "tests/test_util.h");
  // Fixture mini-repos nest src/ under tests/: the innermost root wins,
  // so fixture files get real-looking module identities.
  EXPECT_EQ(
      RepoRelativeId("repo/tests/lint_fixtures/layering_bad/src/common/a.h"),
      "src/common/a.h");
  EXPECT_EQ(RepoRelativeId("no/known/root.cc"), "");
}

TEST(LintGraphTest, DetectsSyntheticCycle) {
  const std::vector<SourceFile> sources = {
      {"src/common/a.h", "#include \"common/b.h\"\n"},
      {"src/common/b.h", "#include \"common/c.h\"\n"},
      {"src/common/c.h", "#include \"common/a.h\"\n"},
      {"src/common/leaf.h", "#include \"common/a.h\"\n"},
  };
  const ProjectGraph graph = ProjectGraph::Build(sources);
  const auto cycles = graph.IncludeCycles();
  ASSERT_EQ(cycles.size(), 1u);
  const std::vector<std::string> expected = {
      "src/common/a.h", "src/common/b.h", "src/common/c.h"};
  EXPECT_EQ(cycles[0], expected);
}

TEST(LintGraphTest, SelfIncludeIsACycle) {
  const std::vector<SourceFile> sources = {
      {"src/common/self.h", "#include \"common/self.h\"\n"},
  };
  const auto cycles = ProjectGraph::Build(sources).IncludeCycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0],
            std::vector<std::string>{std::string("src/common/self.h")});
}

TEST(LintGraphTest, AcyclicGraphHasNoCycles) {
  const std::vector<SourceFile> sources = {
      {"src/common/a.h", ""},
      {"src/sparse/b.h", "#include \"common/a.h\"\n"},
      {"src/spgemm/c.h", "#include \"sparse/b.h\"\n#include <vector>\n"},
  };
  const ProjectGraph graph = ProjectGraph::Build(sources);
  EXPECT_TRUE(graph.IncludeCycles().empty());
  const auto edges = graph.ModuleEdges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ((edges.at({"sparse", "common"})), 1);
  EXPECT_EQ((edges.at({"spgemm", "sparse"})), 1);
}

TEST(LintGraphTest, UnresolvedIncludesAreExternal) {
  const std::vector<SourceFile> sources = {
      {"src/common/a.h",
       "#include <vector>\n#include \"third_party/x.h\"\n"},
  };
  const ProjectGraph graph = ProjectGraph::Build(sources);
  ASSERT_EQ(graph.files().size(), 1u);
  // Both includes are recorded, neither resolves to a graph node.
  ASSERT_EQ(graph.files()[0].includes.size(), 1u);  // quoted include only
  EXPECT_TRUE(graph.files()[0].includes[0].resolved.empty());
  EXPECT_TRUE(graph.ModuleEdges().empty());
}

TEST(LintGraphTest, GraphJsonHasSchemaAndInvariants) {
  const std::vector<SourceFile> sources = {
      {"src/common/a.h", ""},
      {"src/sparse/b.h", "#include \"common/a.h\"\n"},
  };
  const ProjectGraph graph = ProjectGraph::Build(sources);
  const std::string json = graph.ToJson(DefaultLayeringManifest());
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tool\":\"spnet_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"layering_violations\":0"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"include_cycles\":[]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"from\":\"sparse\""), std::string::npos) << json;
}

// --- layering manifest -----------------------------------------------------

TEST(LayeringManifestTest, ParsesModulesAndWildcard) {
  auto manifest = ParseLayeringManifest(
      "# comment\ncommon:\nsparse: common\ntools: *\n");
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_TRUE(manifest->Allows("sparse", "common"));
  EXPECT_FALSE(manifest->Allows("common", "sparse"));
  EXPECT_TRUE(manifest->Allows("sparse", "sparse"));  // self always allowed
  EXPECT_TRUE(manifest->Allows("tools", "sparse"));
  EXPECT_TRUE(manifest->IsUnrestricted("tools"));
  EXPECT_TRUE(manifest->Knows("common"));
  EXPECT_FALSE(manifest->Knows("engine"));
}

TEST(LayeringManifestTest, RejectsMalformedLine) {
  auto manifest = ParseLayeringManifest("common\n");
  ASSERT_FALSE(manifest.ok());
  EXPECT_EQ(manifest.status().code(), StatusCode::kInvalidArgument);
}

TEST(LayeringManifestTest, RejectsDuplicateModule) {
  auto manifest = ParseLayeringManifest("a:\na:\n");
  ASSERT_FALSE(manifest.ok());
  EXPECT_NE(manifest.status().message().find("duplicate"),
            std::string::npos);
}

TEST(LayeringManifestTest, RejectsUnknownDependency) {
  auto manifest = ParseLayeringManifest("a: ghost\n");
  ASSERT_FALSE(manifest.ok());
  EXPECT_NE(manifest.status().message().find("undeclared"),
            std::string::npos);
}

TEST(LayeringManifestTest, RejectsSelfDependency) {
  auto manifest = ParseLayeringManifest("a: a\n");
  ASSERT_FALSE(manifest.ok());
}

TEST(LayeringManifestTest, RejectsCyclicPolicy) {
  auto manifest = ParseLayeringManifest("a: b\nb: a\n");
  ASSERT_FALSE(manifest.ok());
  EXPECT_NE(manifest.status().message().find("cycle"), std::string::npos);
}

TEST(LayeringManifestTest, RejectsWildcardMixedWithNames) {
  auto manifest = ParseLayeringManifest("b:\na: * b\n");
  ASSERT_FALSE(manifest.ok());
}

TEST(LayeringManifestTest, BuiltInManifestParses) {
  auto manifest = ParseLayeringManifest(DefaultLayeringManifestText());
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_TRUE(manifest->Allows("serve", "engine"));
  EXPECT_FALSE(manifest->Allows("sparse", "spgemm"));
}

TEST(LayeringManifestTest, LayeringMdMatchesBuiltIn) {
  // LAYERING.md is the reviewable policy; the built-in table is the
  // enforced one. This pin keeps them from drifting apart.
  std::ifstream in(std::string(SPNET_SOURCE_DIR) + "/LAYERING.md");
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  const std::string fence = "```\n";
  const size_t open = doc.find(fence);
  ASSERT_NE(open, std::string::npos);
  const size_t begin = open + fence.size();
  const size_t close = doc.find("```", begin);
  ASSERT_NE(close, std::string::npos);
  EXPECT_EQ(doc.substr(begin, close - begin), DefaultLayeringManifestText());
}

TEST(LintRunnerTest, CustomManifestOverridesBuiltIn) {
  // Under a manifest that forbids engine -> common, the clean fixture
  // tree becomes a violation — proving the override is honored.
  LintOptions options;
  options.layering_manifest = "common:\nengine:\n";
  const std::string path =
      std::string(SPNET_LINT_FIXTURE_DIR) + "/layering_clean";
  auto summary = LintPaths({path}, options);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(CountRule(summary->diagnostics, "layering-violation"), 1)
      << Render(summary->diagnostics);
}

TEST(LintRunnerTest, BadCustomManifestIsInvalidArgument) {
  LintOptions options;
  options.layering_manifest = "not a manifest line\n";
  const std::string path =
      std::string(SPNET_LINT_FIXTURE_DIR) + "/layering_clean";
  auto summary = LintPaths({path}, options);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kInvalidArgument);
}

// --- diagnostics & catalog -------------------------------------------------

TEST(LintRunnerTest, FormatIsGccStyle) {
  const Diagnostic diagnostic{"src/a.cc", 12, "raw-new-delete",
                              Severity::kError, "boom"};
  EXPECT_EQ(FormatDiagnostic(diagnostic),
            "src/a.cc:12: error: boom [raw-new-delete]");
}

TEST(LintRunnerTest, CatalogCoversEveryEmittedRule) {
  const std::vector<const char*> expected = {
      "discarded-status",     "raw-new-delete",
      "char-ctype",           "global-mutable-state",
      "relaxed-atomic",       "exec-context-threading",
      "include-iostream",     "legacy-batch-query",
      "unsafe-planner-arithmetic", "lock-discipline",
      "layering-violation",   "include-cycle"};
  ASSERT_EQ(Rules().size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_STREQ(Rules()[i].name, expected[i]);
  }
}

TEST(LintRunnerTest, FindingsJsonCarriesSchemaAndDiagnostics) {
  RunSummary summary;
  summary.files_linted = 2;
  summary.errors = 1;
  summary.diagnostics.push_back({"src/a.cc", 7, "lock-discipline",
                                 Severity::kError, "a \"quoted\" message"});
  const std::string json = FindingsJson(summary);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tool\":\"spnet_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"files_linted\":2"), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"file\":\"src/a.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":7"), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("a \\\"quoted\\\" message"), std::string::npos) << json;
}

TEST(LintRunnerTest, LintableExtensions) {
  EXPECT_TRUE(IsLintableFile("a.h"));
  EXPECT_TRUE(IsLintableFile("a.cc"));
  EXPECT_TRUE(IsLintableFile("kernels/a.cuh"));
  EXPECT_FALSE(IsLintableFile("a.md"));
  EXPECT_FALSE(IsLintableFile("CMakeLists.txt"));
}

TEST(LintRunnerTest, MissingPathIsNotFound) {
  auto summary = LintPaths({"definitely/not/a/path"}, LintOptions());
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kNotFound);
}

// --- self-check ------------------------------------------------------------

// The acceptance gate: the repo's own sources are lint-clean — including
// the project-graph tier, which runs inside LintPaths. The walk skips
// lint_fixtures/ (this corpus violates rules on purpose).
TEST(LintSelfCheckTest, RepositoryIsLintClean) {
  const std::string root = SPNET_SOURCE_DIR;
  auto summary = LintPaths(
      {root + "/src", root + "/tools", root + "/tests", root + "/bench"},
      LintOptions());
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_GT(summary->files_linted, 100);
  EXPECT_EQ(summary->errors, 0) << Render(summary->diagnostics);
  EXPECT_EQ(summary->warnings, 0) << Render(summary->diagnostics);
  EXPECT_NE(summary->graph_json.find("\"layering_violations\":0"),
            std::string::npos);
}

// The live include graph is acyclic and every cross-module edge is
// sanctioned by LAYERING.md — asserted directly on the graph so a failure
// names the offending cycle/edge rather than just a diagnostic count.
TEST(LintSelfCheckTest, RepositoryIncludeGraphIsLayeredAndAcyclic) {
  const std::string root = SPNET_SOURCE_DIR;
  auto graph = BuildProjectGraph(
      {root + "/src", root + "/tools", root + "/tests", root + "/bench"});
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  const auto cycles = graph->IncludeCycles();
  std::string rendered;
  for (const auto& cycle : cycles) {
    for (const std::string& id : cycle) rendered += id + " -> ";
    rendered += "\n";
  }
  EXPECT_TRUE(cycles.empty()) << rendered;
  const LayeringManifest& manifest = DefaultLayeringManifest();
  for (const auto& [edge, count] : graph->ModuleEdges()) {
    EXPECT_TRUE(manifest.Knows(edge.first))
        << "module missing from manifest: " << edge.first;
    EXPECT_TRUE(manifest.Allows(edge.first, edge.second))
        << "unsanctioned module edge: " << edge.first << " -> "
        << edge.second << " (" << count << " includes)";
  }
  // Every file the walker linted landed in a known module.
  for (const FileNode& node : graph->files()) {
    EXPECT_FALSE(node.module.empty()) << node.display_path;
  }
}

}  // namespace
}  // namespace lint
}  // namespace spnet
