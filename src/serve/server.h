#ifndef SPNET_SERVE_SERVER_H_
#define SPNET_SERVE_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bounded_queue.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "common/token_bucket.h"
#include "engine/batch_runner.h"
#include "engine/request.h"
#include "metrics/registry.h"
#include "serve/matrix_store.h"
#include "serve/wire.h"

namespace spnet {
namespace serve {

/// Per-tenant admission rate: a token bucket of `capacity` burst refilled
/// at `refill_per_sec`. capacity <= 0 means unlimited (no quota).
struct TenantQuota {
  double capacity = 0.0;
  double refill_per_sec = 0.0;
};

struct ServeOptions {
  /// Worker threads executing requests. Each worker owns a private
  /// BatchRunner (a runner's algorithm memo is not thread-safe); all
  /// runners share one plan cache.
  int workers = 2;
  /// Admission-control bound: requests beyond this many queued are
  /// rejected with kResourceExhausted instead of queued.
  size_t queue_capacity = 64;
  /// Quota for tenants without an explicit entry. Default: unlimited.
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Engine knobs (fallback algorithm, device, default deadline, plan
  /// cache capacity). plan_cache_shards below overrides the engine's
  /// shard knob; shared_plan_cache must be unset (the server wires its
  /// own).
  engine::BatchOptions engine;
  /// Lock shards of the shared plan cache. Serving traffic hits the cache
  /// from every worker at once, so the default trades exact global LRU
  /// for 8-way reduced contention.
  size_t plan_cache_shards = 8;
  /// Matrix resolution (dataset scale/seed/cache + resident LRU bound).
  MatrixStore::Options store;
  /// Sources preloaded and pinned at Start(); a load failure fails
  /// Start() rather than the first unlucky request.
  std::vector<std::string> pinned_sources;
};

/// Multi-tenant serving front end over engine::BatchRunner.
///
/// Life cycle: construct → Start() → Submit()/SubmitWire() from any
/// thread → BeginDrain() (stop admitting) → Drain() (finish queued and
/// in-flight work, stop workers). The destructor drains if the caller did
/// not.
///
/// Admission control, in order, for every Submit:
///   1. draining             → kFailedPrecondition  (serve.rejected.draining)
///   2. malformed request    → kInvalidArgument     (serve.rejected.invalid)
///   3. serve.admit fault    → injected code        (serve.rejected.injected)
///   4. tenant token bucket  → kResourceExhausted   (serve.rejected.quota)
///   5. bounded queue full   → kResourceExhausted   (serve.rejected.queue_full)
/// A rejected Submit returns the error and never invokes the callback —
/// transports turn the status into an error response line themselves.
///
/// Admitted requests are queued with their Request::priority (higher
/// drains first, FIFO within a class) and executed by a worker, which then
/// invokes the callback on the worker thread. Callbacks must be
/// thread-safe and cheap; the daemon's writes one response line under an
/// output mutex.
///
/// Observability: serve.* counters (admitted/completed/failed plus the
/// per-reason rejections above, and per-tenant mirrors under
/// serve.tenant.<tenant>.*), serve.queue_depth gauge, and log2 histograms
/// serve.queue_us / serve.exec_us / serve.latency_us (admission to
/// callback). StatsJson() snapshots everything plus
/// p50/p99/p999 latency percentiles and plan-cache / matrix-store state.
class Server {
 public:
  using Callback = std::function<void(const engine::Response&)>;

  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Pins hot sources and starts the worker threads. Call exactly once.
  [[nodiscard]] Status Start();

  /// Admission control + enqueue (see class comment). The request must
  /// have been built by RequestBuilder (Submit re-validates the
  /// invariants it can check cheaply).
  [[nodiscard]] Status Submit(engine::Request request, Callback done);

  /// Resolves `wire.source` through the MatrixStore, builds the Request,
  /// and Submits it.
  [[nodiscard]] Status SubmitWire(const WireRequest& wire, Callback done);

  /// Stops admitting (Submit fails with kFailedPrecondition) and closes
  /// the queue. Queued and in-flight requests still complete. Idempotent.
  void BeginDrain();

  /// BeginDrain() + wait for every queued and in-flight request to finish
  /// and the workers to exit. Idempotent; safe from any non-worker
  /// thread.
  void Drain();

  bool draining() const { return draining_.load(); }

  /// Requests currently queued (excludes in-flight).
  size_t queue_depth() const { return queue_.size(); }
  /// Requests admitted but not yet completed (queued + executing).
  int64_t in_flight() const { return in_flight_.load(); }

  MatrixStore& matrix_store() { return store_; }
  engine::PlanCache& plan_cache() { return *plan_cache_; }
  metrics::Registry& registry() { return registry_; }
  const ServeOptions& options() const { return options_; }

  /// One JSON document with the registry dump, latency percentiles
  /// (p50/p99/p999 of serve.latency_us and serve.exec_us), and
  /// plan-cache / matrix-store summaries. This is what the daemon flushes
  /// on drain.
  std::string StatsJson();

 private:
  struct Job {
    engine::Request request;
    Callback done;
    double admit_seconds = 0.0;
  };

  void WorkerLoop();
  TokenBucket& BucketFor(const std::string& tenant);
  void CountRejection(const std::string& reason, const std::string& tenant);

  ServeOptions options_;
  std::shared_ptr<engine::PlanCache> plan_cache_;
  MatrixStore store_;
  metrics::Registry registry_;
  /// Process-lifetime monotonic clock: token-bucket refill timestamps and
  /// latency measurements share one origin.
  Timer clock_;
  BoundedQueue<Job> queue_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int64_t> in_flight_{0};

  Mutex workers_mu_;
  std::vector<std::thread> workers_ GUARDED_BY(workers_mu_);

  Mutex buckets_mu_;
  std::map<std::string, std::unique_ptr<TokenBucket>> buckets_
      GUARDED_BY(buckets_mu_);
};

}  // namespace serve
}  // namespace spnet

#endif  // SPNET_SERVE_SERVER_H_
