// Command-line front end for the library: multiply Matrix Market or SPNB
// files with any of the seven algorithms, profile them on a simulated
// device, classify workloads, and convert between formats.
//
// Usage:
//   spnet_cli multiply --a A.mtx [--b B.mtx] [--algorithm reorganizer]
//             [--out C.mtx] [--device titanxp] [--auto_tune]
//   spnet_cli profile  --a A.mtx [--b B.mtx] [--device titanxp]
//   spnet_cli classify --a A.mtx [--b B.mtx]
//   spnet_cli convert  --in X.mtx --out X.spnb     (and back)
//   spnet_cli generate --kind rmat|powerlaw|regular --out X.spnb
//             [--scale 14] [--edges N] [--dim N] [--nnz N] [--skew S]
//   spnet_cli batch    --manifest queries.txt [--plan_cache 64]
//             [--deadline_ms D] [--fallback outer-product] [--repeats N]
//             [--scale 0.05] [--cache dir] [--device titanxp]
//             [--planning_tier exact|estimated|auto]
//             [--reorder none|degree|rcm|cluster]
//   spnet_cli verify   [--sweep small|medium] [--seed 42]
//             [--planning_tier exact|estimated|auto]
//             [--reorder none|degree|rcm|cluster]
//
// verify runs the correctness harness: a differential sweep of every
// registered algorithm against the reference spGEMM over seeded input
// families, the Block Reorganizer plan-invariant validators on every
// ablation variant, and one deterministic fault-injection run showing the
// batch engine degrading to its fallback with a per-query error. Exits
// nonzero on any failure, printing the first divergence as
// (row, col, expected, got) with the offending seed.
//
// Omitting --b computes C = A^2. Files ending in .spnb use the binary
// container; anything else is treated as Matrix Market. Every command
// accepts --threads=<n> to size the host thread pool (default: hardware
// concurrency). Algorithm names come from spgemm::AlgorithmRegistry; pass
// a bogus --algorithm to have the error list them.
//
// batch executes a manifest of queries (one "<dataset-or-path> [algorithm]
// [repeat]" per line, '#' comments) concurrently through the
// engine::BatchRunner: plans are reused across queries with the same
// matrix structure via an LRU plan cache (--plan_cache entries, 0
// disables), per-query deadlines expire individually, and a query whose
// algorithm cannot plan degrades to the --fallback baseline instead of
// failing the batch. --repeats re-runs the whole batch; warm passes are
// where the plan cache pays off.
//
// Observability (multiply / profile / classify / batch):
//   --metrics_out=<path>  write the execution's metrics registry + trace
//                         spans as JSON
//   --trace               print the span tree (load -> classify -> split
//                         -> gather -> expand -> merge -> simulate) after
//                         the command

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "common/flags.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/auto_tune.h"
#include "core/block_reorganizer.h"
#include "core/suite.h"
#include "datasets/generators.h"
#include "engine/batch_runner.h"
#include "engine/manifest.h"
#include "gpusim/device_spec.h"
#include "gpusim/profiler.h"
#include "metrics/report.h"
#include "sparse/matrix_market.h"
#include "sparse/reorder.h"
#include "sparse/serialization.h"
#include "sparse/stats.h"
#include "spgemm/algorithm.h"
#include "spgemm/algorithm_registry.h"
#include "spgemm/exec_context.h"
#include "verify/differential.h"
#include "verify/fault_injection.h"
#include "verify/invariants.h"

namespace spnet {
namespace {

using sparse::CsrMatrix;

bool IsBinaryPath(const std::string& path) {
  return path.size() > 5 && path.substr(path.size() - 5) == ".spnb";
}

Result<CsrMatrix> Load(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("missing input path");
  }
  return IsBinaryPath(path) ? sparse::ReadBinary(path)
                            : sparse::ReadMatrixMarket(path);
}

Status Store(const CsrMatrix& m, const std::string& path) {
  return IsBinaryPath(path) ? sparse::WriteBinary(m, path)
                            : sparse::WriteMatrixMarket(m, path);
}

gpusim::DeviceSpec DeviceFromFlags(const FlagParser& flags) {
  const std::string name = flags.GetString("device", "titanxp");
  if (name == "v100") return gpusim::DeviceSpec::TeslaV100();
  if (name == "2080ti") return gpusim::DeviceSpec::Rtx2080Ti();
  return gpusim::DeviceSpec::TitanXp();
}

Result<std::unique_ptr<spgemm::SpGemmAlgorithm>> AlgorithmFromFlags(
    const FlagParser& flags, const CsrMatrix& a, const CsrMatrix& b,
    const gpusim::DeviceSpec& device) {
  core::RegisterCoreAlgorithms();
  const std::string name = flags.GetString("algorithm", "reorganizer");
  // The reorganizer's knobs are flag-configurable; any other name (and
  // the default knobs) resolves through the registry. An invalid config
  // surfaces as MakeBlockReorganizer's Status instead of silently running
  // with nonsense thresholds.
  if (name == "reorganizer" &&
      (flags.GetBool("auto_tune", false) || flags.Has("alpha") ||
       flags.Has("beta"))) {
    core::ReorganizerConfig config;
    if (flags.GetBool("auto_tune", false)) {
      SPNET_ASSIGN_OR_RETURN(config, core::AutoTune(a, b, device));
      std::printf("auto-tuned: alpha=%.1f beta=%.1f\n", config.alpha,
                  config.beta);
    }
    config.alpha = flags.GetDouble("alpha", config.alpha);
    config.beta = flags.GetDouble("beta", config.beta);
    return core::MakeBlockReorganizer(config);
  }
  return spgemm::AlgorithmRegistry::Global().Create(name);
}

/// Shared tail of the observability-aware commands: honors --metrics_out
/// (JSON dump of the context) and --trace (pretty span tree on stdout).
/// Returns non-OK only when the JSON file cannot be written.
Status EmitObservability(const FlagParser& flags,
                         const spgemm::ExecContext& ctx) {
  if (flags.GetBool("trace", false)) {
    std::printf("trace:\n%s", ctx.trace.ToPrettyString().c_str());
  }
  const std::string metrics_out = flags.GetString("metrics_out", "");
  if (!metrics_out.empty()) {
    SPNET_RETURN_IF_ERROR(ctx.WriteJsonFile(metrics_out));
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  return Status::Ok();
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdMultiply(const FlagParser& flags) {
  spgemm::ExecContext ctx;
  const int load_span = ctx.trace.Begin("load");
  auto a = Load(flags.GetString("a", ""));
  if (!a.ok()) return Fail(a.status());
  Result<CsrMatrix> b = flags.Has("b") ? Load(flags.GetString("b", ""))
                                       : Result<CsrMatrix>(*a);
  if (!b.ok()) return Fail(b.status());
  ctx.trace.End(load_span);
  const gpusim::DeviceSpec device = DeviceFromFlags(flags);
  auto algorithm = AlgorithmFromFlags(flags, *a, *b, device);
  if (!algorithm.ok()) return Fail(algorithm.status());

  Timer timer;
  auto c = (*algorithm)->Compute(*a, *b, &ctx);
  if (!c.ok()) return Fail(c.status());
  std::printf("C: %d x %d, %lld nonzeros (host compute %.3f s)\n", c->rows(),
              c->cols(), static_cast<long long>(c->nnz()), timer.Seconds());

  auto m = spgemm::Measure(**algorithm, *a, *b, device, &ctx);
  if (!m.ok()) return Fail(m.status());
  std::printf("simulated %s: %.3f ms (%.1f GFLOPS)\n", device.name.c_str(),
              m->total_seconds * 1e3, m->Gflops());

  const std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    const Status s = Store(*c, out);
    if (!s.ok()) return Fail(s);
    std::printf("wrote %s\n", out.c_str());
  }
  const Status obs = EmitObservability(flags, ctx);
  if (!obs.ok()) return Fail(obs);
  return 0;
}

int CmdProfile(const FlagParser& flags) {
  spgemm::ExecContext ctx;
  const int load_span = ctx.trace.Begin("load");
  auto a = Load(flags.GetString("a", ""));
  if (!a.ok()) return Fail(a.status());
  Result<CsrMatrix> b = flags.Has("b") ? Load(flags.GetString("b", ""))
                                       : Result<CsrMatrix>(*a);
  if (!b.ok()) return Fail(b.status());
  ctx.trace.End(load_span);
  const gpusim::DeviceSpec device = DeviceFromFlags(flags);

  metrics::Table table({"algorithm", "total ms", "expansion ms", "merge ms",
                        "GFLOPS", "stall %", "LBI"});
  for (const auto& alg : core::MakeAllAlgorithms()) {
    auto m = spgemm::Measure(*alg, *a, *b, device, &ctx);
    if (!m.ok()) return Fail(m.status());
    table.AddRow({alg->name(), metrics::FormatDouble(m->total_seconds * 1e3, 3),
                  metrics::FormatDouble(m->expansion.seconds * 1e3, 3),
                  metrics::FormatDouble(m->merge.seconds * 1e3, 3),
                  metrics::FormatDouble(m->Gflops(), 1),
                  metrics::FormatDouble(100.0 * m->stats.SyncStallFraction(), 1),
                  metrics::FormatDouble(m->expansion.Lbi())});
  }
  std::printf("profile on simulated %s:\n%s", device.name.c_str(),
              table.ToString().c_str());

  if (flags.GetBool("detail", false)) {
    // nvprof-style per-kernel report + SM histogram for the reorganizer.
    core::BlockReorganizerSpGemm reorganizer;
    auto plan = reorganizer.Plan(*a, *b, device, &ctx);
    if (!plan.ok()) return Fail(plan.status());
    gpusim::Profiler profiler(device);
    const Status s = profiler.Profile(plan->kernels);
    if (!s.ok()) return Fail(s);
    profiler.ExportMetrics(&ctx.registry);
    std::printf("\nBlock Reorganizer kernel breakdown:\n%s",
                profiler.ReportTable().c_str());
    for (size_t i = 0; i < profiler.profiles().size(); ++i) {
      if (profiler.profiles()[i].label == "expansion-dominators") {
        std::printf("\nper-SM load of %s (busiest first):\n%s",
                    profiler.profiles()[i].label.c_str(),
                    profiler.SmHistogram(i).c_str());
      }
    }
  }
  const Status obs = EmitObservability(flags, ctx);
  if (!obs.ok()) return Fail(obs);
  return 0;
}

int CmdClassify(const FlagParser& flags) {
  auto a = Load(flags.GetString("a", ""));
  if (!a.ok()) return Fail(a.status());
  Result<CsrMatrix> b = flags.Has("b") ? Load(flags.GetString("b", ""))
                                       : Result<CsrMatrix>(*a);
  if (!b.ok()) return Fail(b.status());

  const auto stats = sparse::ComputeRowStats(*a);
  std::printf("A: %d x %d, %lld nnz, mean degree %.1f, max %lld, gini %.2f\n",
              a->rows(), a->cols(), static_cast<long long>(a->nnz()),
              stats.mean_nnz, static_cast<long long>(stats.max_nnz),
              stats.gini);

  spgemm::ExecContext ctx;
  core::BlockReorganizerSpGemm reorganizer;
  auto report = reorganizer.Analyze(*a, *b, DeviceFromFlags(flags), &ctx);
  if (!report.ok()) return Fail(report.status());
  std::printf("pairs: %lld total | %lld dominators | %lld low performers | "
              "%lld normal\n",
              static_cast<long long>(report->nonzero_pairs),
              static_cast<long long>(report->dominators),
              static_cast<long long>(report->low_performers),
              static_cast<long long>(report->normals));
  std::printf("B-Splitting fragments: %lld, B-Gathering combined blocks: "
              "%lld, B-Limiting rows: %lld\n",
              static_cast<long long>(report->fragments),
              static_cast<long long>(report->combined_blocks),
              static_cast<long long>(report->limited_rows));
  const Status obs = EmitObservability(flags, ctx);
  if (!obs.ok()) return Fail(obs);
  return 0;
}

int CmdBatch(const FlagParser& flags) {
  const std::string manifest = flags.GetString("manifest", "");
  if (manifest.empty()) {
    return Fail(Status::InvalidArgument("missing --manifest"));
  }
  spgemm::ExecContext ctx;

  engine::ManifestLoadOptions load;
  load.scale = flags.GetDouble("scale", load.scale);
  load.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  load.dataset_cache_dir = flags.GetString("cache", "");
  load.deadline_ms = flags.GetDouble("deadline_ms", 0.0);
  const int load_span = ctx.trace.Begin("load");
  auto requests = engine::LoadManifestRequests(manifest, load);
  ctx.trace.End(load_span);
  if (!requests.ok()) return Fail(requests.status());
  if (requests->empty()) {
    return Fail(Status::InvalidArgument(manifest + " contains no queries"));
  }

  engine::BatchOptions options;
  options.plan_cache_capacity = static_cast<size_t>(
      std::max<int64_t>(0, flags.GetInt("plan_cache", 64)));
  options.fallback_algorithm =
      flags.GetString("fallback", options.fallback_algorithm);
  options.device = DeviceFromFlags(flags);
  options.reorganizer_config.alpha =
      flags.GetDouble("alpha", options.reorganizer_config.alpha);
  options.reorganizer_config.beta =
      flags.GetDouble("beta", options.reorganizer_config.beta);
  if (flags.Has("planning_tier")) {
    auto tier =
        core::ParsePlanningTier(flags.GetString("planning_tier", "exact"));
    if (!tier.ok()) return Fail(tier.status());
    options.reorganizer_config.planning_tier = *tier;
  }
  if (flags.Has("reorder")) {
    auto strategy =
        sparse::ParseReorderStrategy(flags.GetString("reorder", "none"));
    if (!strategy.ok()) return Fail(strategy.status());
    options.reorganizer_config.reorder = *strategy;
  }
  engine::BatchRunner runner(std::move(options));

  const int64_t repeats = std::max<int64_t>(1, flags.GetInt("repeats", 1));
  engine::ExecutionReport report;
  for (int64_t pass = 0; pass < repeats; ++pass) {
    auto r = runner.Execute(*requests, &ctx);
    if (!r.ok()) return Fail(r.status());
    report = std::move(r).value();
    std::printf(
        "pass %lld/%lld: %zu queries in %.1f ms | ok %lld, failed %lld, "
        "expired %lld, fallbacks %lld | plan cache: %lld hit, %lld miss, "
        "%lld evicted\n",
        static_cast<long long>(pass + 1), static_cast<long long>(repeats),
        requests->size(), report.wall_ms,
        static_cast<long long>(report.succeeded),
        static_cast<long long>(report.failed),
        static_cast<long long>(report.deadline_expired),
        static_cast<long long>(report.fallbacks),
        static_cast<long long>(report.plan_cache_hits),
        static_cast<long long>(report.plan_cache_misses),
        static_cast<long long>(report.plan_cache_evictions));
  }

  metrics::Table table(
      {"query", "algorithm", "status", "plan", "sim ms", "GFLOPS", "wall ms"});
  for (const engine::Response& r : report.responses) {
    table.AddRow({r.id,
                  r.algorithm_used.empty() ? "-" : r.algorithm_used,
                  r.status.ok() ? "ok" : StatusCodeName(r.status.code()),
                  r.plan_cache_hit ? "cached" : "planned",
                  metrics::FormatDouble(r.sim_ms, 3),
                  metrics::FormatDouble(r.gflops, 1),
                  metrics::FormatDouble(r.wall_ms, 3)});
  }
  std::printf("last pass results:\n%s", table.ToString().c_str());
  for (const engine::Response& r : report.responses) {
    if (!r.status.ok()) {
      std::printf("  %s: %s\n", r.id.c_str(), r.status.ToString().c_str());
    }
  }
  const Status obs = EmitObservability(flags, ctx);
  if (!obs.ok()) return Fail(obs);
  return 0;
}

int CmdVerify(const FlagParser& flags) {
  const std::string sweep = flags.GetString("sweep", "small");
  verify::DifferentialOptions options;
  if (sweep == "small") {
    options.cases_per_family = 2;
  } else if (sweep == "medium") {
    options.cases_per_family = 4;
  } else {
    return Fail(Status::InvalidArgument(
        "--sweep must be small or medium, got " + sweep));
  }
  options.base_seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  bool failed = false;

  // 1. Differential sweep: every registered algorithm vs the reference.
  auto report = verify::RunDifferentialSweep(options);
  if (!report.ok()) return Fail(report.status());
  std::printf("%s\n", report->Summary().c_str());
  failed = failed || !report->ok();

  // 2. Plan invariants on every ablation variant of the reorganizer, plus
  // the estimated planning tiers (whose sweep additionally checks the
  // estimation contract via CheckEstimatedClassification). A forced
  // --planning_tier overrides every variant's tier — the CI estimation
  // smoke runs the whole suite with the estimator on.
  core::PlanningTier forced_tier = core::PlanningTier::kExact;
  const bool force_tier = flags.Has("planning_tier");
  if (force_tier) {
    auto tier =
        core::ParsePlanningTier(flags.GetString("planning_tier", "exact"));
    if (!tier.ok()) return Fail(tier.status());
    forced_tier = *tier;
  }
  // A forced --reorder similarly overrides every variant's reordering
  // pre-pass — the CI reorder smoke runs the whole suite under each
  // strategy, including the bit-identity check against the unpermuted
  // baseline inside VerifyReorganizerInvariants.
  sparse::ReorderStrategy forced_reorder = sparse::ReorderStrategy::kNone;
  const bool force_reorder = flags.Has("reorder");
  if (force_reorder) {
    auto strategy =
        sparse::ParseReorderStrategy(flags.GetString("reorder", "none"));
    if (!strategy.ok()) return Fail(strategy.status());
    forced_reorder = *strategy;
  }
  struct Variant {
    const char* name;
    bool split;
    bool gather;
    bool limit;
    core::PlanningTier tier;
    sparse::ReorderStrategy reorder;
  };
  const Variant variants[] = {
      {"reorganizer", true, true, true, core::PlanningTier::kExact,
       sparse::ReorderStrategy::kNone},
      {"reorganizer-splitting", true, false, false,
       core::PlanningTier::kExact, sparse::ReorderStrategy::kNone},
      {"reorganizer-gathering", false, true, false,
       core::PlanningTier::kExact, sparse::ReorderStrategy::kNone},
      {"reorganizer-limiting", false, false, true,
       core::PlanningTier::kExact, sparse::ReorderStrategy::kNone},
      {"reorganizer-none", false, false, false, core::PlanningTier::kExact,
       sparse::ReorderStrategy::kNone},
      {"reorganizer-estimated", true, true, true,
       core::PlanningTier::kEstimated, sparse::ReorderStrategy::kNone},
      {"reorganizer-auto", true, true, true, core::PlanningTier::kAuto,
       sparse::ReorderStrategy::kNone},
      {"reorganizer-reorder-degree", true, true, true,
       core::PlanningTier::kExact, sparse::ReorderStrategy::kDegree},
      {"reorganizer-reorder-rcm", true, true, true,
       core::PlanningTier::kExact, sparse::ReorderStrategy::kRcm},
      {"reorganizer-reorder-cluster", true, true, true,
       core::PlanningTier::kExact, sparse::ReorderStrategy::kCluster},
  };
  for (const Variant& v : variants) {
    core::ReorganizerConfig config;
    config.enable_splitting = v.split;
    config.enable_gathering = v.gather;
    config.enable_limiting = v.limit;
    config.planning_tier = force_tier ? forced_tier : v.tier;
    config.reorder = force_reorder ? forced_reorder : v.reorder;
    Status worst = Status::Ok();
    for (const std::string& family : verify::SweepFamilyNames()) {
      for (int k = 0; k < options.cases_per_family; ++k) {
        const uint64_t seed = options.base_seed + static_cast<uint64_t>(k);
        auto c = verify::MakeSweepCase(family, seed);
        if (!c.ok()) return Fail(c.status());
        const Status s = verify::VerifyReorganizerInvariants(c->a, c->b,
                                                             config);
        if (!s.ok()) {
          worst = Status(s.code(), family + " (seed " + std::to_string(seed) +
                                       "): " + s.message());
          break;
        }
      }
      if (!worst.ok()) break;
    }
    std::printf("invariants %-24s %s\n", v.name,
                worst.ok() ? "ok" : worst.ToString().c_str());
    failed = failed || !worst.ok();
  }

  // 3. Deterministic fault injection: every Plan call fails, so the batch
  // engine must degrade the query to its fallback and surface the injected
  // error per query while the batch itself stays OK.
  {
    verify::FaultInjector& injector = verify::FaultInjector::Global();
    injector.Reset();
    injector.Arm(verify::kSitePlan, /*first=*/1, /*count=*/0);
    auto c = verify::MakeSweepCase("banded", options.base_seed);
    if (!c.ok()) {
      injector.Reset();
      return Fail(c.status());
    }
    engine::BatchRunner runner(engine::BatchOptions{});
    auto request = engine::RequestBuilder()
                       .Id("fault-demo")
                       .Algorithm("reorganizer")
                       .OperandA(std::make_shared<const CsrMatrix>(
                           std::move(c->a)))
                       .Build();
    if (!request.ok()) {
      injector.Reset();
      return Fail(request.status());
    }
    auto run = runner.Execute({*request});
    injector.Reset();
    if (!run.ok()) return Fail(run.status());
    const engine::Response& r = run->responses[0];
    const bool demo_ok = !r.status.ok() && r.fallback_used;
    std::printf("fault injection (%s armed): fallback_used=%s, status=%s\n",
                verify::kSitePlan, r.fallback_used ? "true" : "false",
                r.status.ToString().c_str());
    if (!demo_ok) {
      std::printf("fault-injection demo FAILED: expected a degraded query "
                  "with a non-OK status\n");
      failed = true;
    }
  }

  std::printf("verify: %s\n", failed ? "FAILED" : "all checks passed");
  return failed ? 1 : 0;
}

int CmdConvert(const FlagParser& flags) {
  auto m = Load(flags.GetString("in", ""));
  if (!m.ok()) return Fail(m.status());
  const std::string out = flags.GetString("out", "");
  if (out.empty()) return Fail(Status::InvalidArgument("missing --out"));
  const Status s = Store(*m, out);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s (%d x %d, %lld nnz)\n", out.c_str(), m->rows(),
              m->cols(), static_cast<long long>(m->nnz()));
  return 0;
}

int CmdGenerate(const FlagParser& flags) {
  const std::string kind = flags.GetString("kind", "rmat");
  Result<CsrMatrix> m = Status::InvalidArgument("unknown kind: " + kind);
  if (kind == "rmat") {
    datasets::RmatParams p;
    p.scale = static_cast<int>(flags.GetInt("scale", 14));
    p.edge_count = flags.GetInt("edges", 16 << 14);
    p.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    m = datasets::GenerateRmat(p);
  } else if (kind == "powerlaw") {
    datasets::PowerLawParams p;
    p.rows = p.cols = static_cast<sparse::Index>(flags.GetInt("dim", 100000));
    p.nnz = flags.GetInt("nnz", 8 * flags.GetInt("dim", 100000));
    p.row_skew = p.col_skew = flags.GetDouble("skew", 0.8);
    p.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    m = datasets::GeneratePowerLaw(p);
  } else if (kind == "regular") {
    datasets::QuasiRegularParams p;
    p.n = static_cast<sparse::Index>(flags.GetInt("dim", 100000));
    p.nnz = flags.GetInt("nnz", 25 * flags.GetInt("dim", 100000));
    p.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    m = datasets::GenerateQuasiRegular(p);
  }
  if (!m.ok()) return Fail(m.status());
  const std::string out = flags.GetString("out", "");
  if (out.empty()) return Fail(Status::InvalidArgument("missing --out"));
  const Status s = Store(*m, out);
  if (!s.ok()) return Fail(s);
  std::printf("generated %s: %d x %d, %lld nnz\n", out.c_str(), m->rows(),
              m->cols(), static_cast<long long>(m->nnz()));
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: spnet_cli "
               "<multiply|profile|classify|batch|verify|convert|generate>"
               " [flags]\n(see the header comment of tools/spnet_cli.cc)\n");
  return 2;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return Usage();
  if (flags.positional().empty()) return Usage();
  // Host threads for the functional stack (0 = hardware concurrency);
  // every command funnels through the same expansion/merge engines.
  SetGlobalThreadCount(static_cast<int>(flags.GetInt("threads", 0)));
  const std::string& command = flags.positional()[0];
  if (command == "multiply") return CmdMultiply(flags);
  if (command == "profile") return CmdProfile(flags);
  if (command == "classify") return CmdClassify(flags);
  if (command == "batch") return CmdBatch(flags);
  if (command == "verify") return CmdVerify(flags);
  if (command == "convert") return CmdConvert(flags);
  if (command == "generate") return CmdGenerate(flags);
  return Usage();
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
