#include <gtest/gtest.h>

#include <limits>

#include "core/workload_classifier.h"
#include "spgemm/workload_model.h"
#include "tests/test_util.h"

namespace spnet {
namespace core {
namespace {

using sparse::CsrMatrix;

TEST(ClassifierTest, EveryNonzeroPairInExactlyOneBin) {
  const CsrMatrix a = testing_util::SkewedMatrix(500, 400, 31);
  const spgemm::Workload w = spgemm::BuildWorkload(a, a);
  const Classification c = Classify(w, ReorganizerConfig{});

  int64_t nonzero_pairs = 0;
  for (int64_t work : w.pair_work) {
    if (work > 0) ++nonzero_pairs;
  }
  EXPECT_EQ(static_cast<int64_t>(c.dominators.size() + c.low_performers.size() +
                                 c.normals.size()),
            nonzero_pairs);

  std::vector<bool> seen(w.pair_work.size(), false);
  auto mark = [&](const std::vector<sparse::Index>& bin) {
    for (sparse::Index p : bin) {
      EXPECT_FALSE(seen[static_cast<size_t>(p)]) << "pair " << p << " twice";
      seen[static_cast<size_t>(p)] = true;
      EXPECT_GT(w.pair_work[static_cast<size_t>(p)], 0);
    }
  };
  mark(c.dominators);
  mark(c.low_performers);
  mark(c.normals);
}

TEST(ClassifierTest, DominatorsExceedThreshold) {
  const CsrMatrix a = testing_util::SkewedMatrix(500, 400, 33);
  const spgemm::Workload w = spgemm::BuildWorkload(a, a);
  const Classification c = Classify(w, ReorganizerConfig{});
  for (sparse::Index p : c.dominators) {
    EXPECT_GT(w.pair_work[static_cast<size_t>(p)], c.dominator_threshold);
  }
  for (sparse::Index p : c.normals) {
    EXPECT_LE(w.pair_work[static_cast<size_t>(p)], c.dominator_threshold);
  }
}

TEST(ClassifierTest, LowPerformersHaveFewEffectiveThreads) {
  const CsrMatrix a = testing_util::SkewedMatrix(500, 400, 35);
  const spgemm::Workload w = spgemm::BuildWorkload(a, a);
  const Classification c = Classify(w, ReorganizerConfig{});
  for (sparse::Index p : c.low_performers) {
    EXPECT_LT(w.b_row_nnz[static_cast<size_t>(p)], 32);
  }
  for (sparse::Index p : c.normals) {
    EXPECT_GE(w.b_row_nnz[static_cast<size_t>(p)], 32);
  }
}

TEST(ClassifierTest, HigherAlphaSelectsFewerDominators) {
  const CsrMatrix a = testing_util::SkewedMatrix(600, 500, 37);
  const spgemm::Workload w = spgemm::BuildWorkload(a, a);
  ReorganizerConfig lo;
  lo.alpha = 4.0;
  ReorganizerConfig hi;
  hi.alpha = 128.0;
  const Classification cl = Classify(w, lo);
  const Classification ch = Classify(w, hi);
  EXPECT_GE(cl.dominators.size(), ch.dominators.size());
  EXPECT_GT(ch.dominator_threshold, cl.dominator_threshold);
}

TEST(ClassifierTest, HigherBetaLimitsFewerRows) {
  const CsrMatrix a = testing_util::SkewedMatrix(600, 500, 39);
  const spgemm::Workload w = spgemm::BuildWorkload(a, a);
  ReorganizerConfig lo;
  lo.beta = 2.0;
  ReorganizerConfig hi;
  hi.beta = 50.0;
  EXPECT_GE(Classify(w, lo).limited_rows.size(),
            Classify(w, hi).limited_rows.size());
}

TEST(ClassifierTest, LimitedRowsExceedThreshold) {
  const CsrMatrix a = testing_util::SkewedMatrix(500, 400, 41);
  const spgemm::Workload w = spgemm::BuildWorkload(a, a);
  const Classification c = Classify(w, ReorganizerConfig{});
  for (sparse::Index r : c.limited_rows) {
    EXPECT_GT(w.row_chat[static_cast<size_t>(r)], c.limit_row_threshold);
  }
}

TEST(ClassifierTest, RegularMatrixHasNoDominators) {
  // Uniform 20-nnz rows: every pair does the same work, none dominates.
  const CsrMatrix a = testing_util::RandomMatrix(400, 400, 0.05, 43);
  const spgemm::Workload w = spgemm::BuildWorkload(a, a);
  const Classification c = Classify(w, ReorganizerConfig{});
  EXPECT_TRUE(c.dominators.empty());
  EXPECT_TRUE(c.limited_rows.empty());
}

TEST(ClassifierTest, HugeAlphaSaturatesThresholdInsteadOfOverflowing) {
  // alpha * mean overflows int64; the cast used to be UB (INT64_MIN on
  // x86, clamped back to 1), turning everything into a dominator. The
  // threshold must saturate at INT64_MAX so nothing dominates.
  const CsrMatrix a = testing_util::SkewedMatrix(500, 400, 31);
  const spgemm::Workload w = spgemm::BuildWorkload(a, a);
  ReorganizerConfig config;
  config.alpha = 1e30;
  config.beta = 1e30;
  const Classification c = Classify(w, config);
  EXPECT_EQ(c.dominator_threshold, std::numeric_limits<int64_t>::max());
  EXPECT_EQ(c.limit_row_threshold, std::numeric_limits<int64_t>::max());
  EXPECT_TRUE(c.dominators.empty());
  EXPECT_TRUE(c.limited_rows.empty());
  EXPECT_FALSE(c.low_performers.empty() && c.normals.empty());
}

TEST(ClassifierTest, TinyAlphaClampsThresholdToOne) {
  const CsrMatrix a = testing_util::SkewedMatrix(200, 100, 17);
  const spgemm::Workload w = spgemm::BuildWorkload(a, a);
  ReorganizerConfig config;
  config.alpha = 1e-30;
  config.beta = 1e-30;
  const Classification c = Classify(w, config);
  EXPECT_EQ(c.dominator_threshold, 1);
  EXPECT_EQ(c.limit_row_threshold, 1);
}

TEST(ClassifierTest, EmptyMatrix) {
  sparse::CooMatrix coo(10, 10);
  auto a = CsrMatrix::FromCoo(coo);
  ASSERT_TRUE(a.ok());
  const spgemm::Workload w = spgemm::BuildWorkload(*a, *a);
  const Classification c = Classify(w, ReorganizerConfig{});
  EXPECT_TRUE(c.dominators.empty());
  EXPECT_TRUE(c.low_performers.empty());
  EXPECT_TRUE(c.normals.empty());
  EXPECT_TRUE(c.limited_rows.empty());
}

}  // namespace
}  // namespace core
}  // namespace spnet
