#include "verify/fault_injection.h"

#include <cstdlib>

namespace spnet {
namespace verify {

namespace {

/// Splits `s` on `sep`, keeping empty pieces (they are spec errors the
/// caller reports with context).
std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (true) {
    const size_t end = s.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(s.substr(begin));
      return parts;
    }
    parts.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
}

Result<int64_t> ParseOrdinal(const std::string& token) {
  char* end = nullptr;
  const int64_t v = std::strtoll(token.c_str(), &end, 10);
  if (token.empty() || end != token.c_str() + token.size() || v < 0) {
    return Status::InvalidArgument("fault spec: bad ordinal '" + token + "'");
  }
  return v;
}

Result<StatusCode> ParseCode(const std::string& token) {
  if (token == "internal") return StatusCode::kInternal;
  if (token == "io") return StatusCode::kIoError;
  if (token == "invalid") return StatusCode::kInvalidArgument;
  if (token == "unavailable" || token == "precondition") {
    return StatusCode::kFailedPrecondition;
  }
  if (token == "oom" || token == "out-of-range") {
    return StatusCode::kOutOfRange;
  }
  if (token == "exhausted" || token == "resource-exhausted") {
    return StatusCode::kResourceExhausted;
  }
  return Status::InvalidArgument("fault spec: unknown status code '" + token +
                                 "' (want internal|io|invalid|unavailable|"
                                 "oom|exhausted)");
}

}  // namespace

FaultInjector::FaultInjector() {
  const char* env = std::getenv("SPNET_FAULT_INJECT");
  if (env != nullptr && env[0] != '\0') {
    const Status s = ArmFromSpec(env);
    if (!s.ok()) {
      // A malformed env spec must not silently run the process without the
      // faults the user asked for; fail loudly.
      std::fprintf(stderr, "SPNET_FAULT_INJECT: %s\n", s.ToString().c_str());
      std::abort();
    }
  }
}

FaultInjector& FaultInjector::Global() {
  // Leaked on purpose: check points may run during static destruction.
  static FaultInjector* injector =
      new FaultInjector();  // spnet-lint: allow(raw-new-delete)
  return *injector;
}

void FaultInjector::Arm(const std::string& site, int64_t first, int64_t count,
                        StatusCode code) {
  MutexLock lock(&mu_);
  Site& s = sites_[site];
  s.calls = 0;
  s.first = first;
  s.count = count;
  s.code = code;
  armed_.store(true, std::memory_order_relaxed);
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  for (const std::string& entry : Split(spec, ',')) {
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("fault spec: want site=first[:count" +
                                     std::string("[:code]], got '") + entry +
                                     "'");
    }
    const std::string site = entry.substr(0, eq);
    const std::vector<std::string> fields = Split(entry.substr(eq + 1), ':');
    if (fields.empty() || fields.size() > 3) {
      return Status::InvalidArgument("fault spec: bad window in '" + entry +
                                     "'");
    }
    SPNET_ASSIGN_OR_RETURN(const int64_t first, ParseOrdinal(fields[0]));
    if (first < 1) {
      return Status::InvalidArgument(
          "fault spec: call ordinals are 1-based, got '" + entry + "'");
    }
    int64_t count = 1;
    if (fields.size() >= 2) {
      SPNET_ASSIGN_OR_RETURN(count, ParseOrdinal(fields[1]));
    }
    StatusCode code = StatusCode::kInternal;
    if (fields.size() == 3) {
      SPNET_ASSIGN_OR_RETURN(code, ParseCode(fields[2]));
    }
    Arm(site, first, count, code);
  }
  return Status::Ok();
}

void FaultInjector::Reset() {
  MutexLock lock(&mu_);
  sites_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

int64_t FaultInjector::CallCount(const std::string& site) const {
  MutexLock lock(&mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.calls;
}

Status FaultInjector::Check(const char* site) {
  MutexLock lock(&mu_);
  // armed_ may have been cleared between the caller's fast-path load and
  // the lock; sites_ is authoritative.
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    // Track calls at unarmed sites too while any site is armed, so tests
    // can assert how often a path executed.
    if (!armed_.load(std::memory_order_relaxed)) return Status::Ok();
    it = sites_.emplace(site, Site{}).first;
  }
  Site& s = it->second;
  const int64_t call = ++s.calls;
  if (s.first > 0 && call >= s.first &&
      (s.count == 0 || call < s.first + s.count)) {
    return Status(s.code, std::string("injected fault at ") + site +
                              " (call " + std::to_string(call) + ")");
  }
  return Status::Ok();
}

}  // namespace verify
}  // namespace spnet
