#ifndef SPNET_COMMON_TOKEN_BUCKET_H_
#define SPNET_COMMON_TOKEN_BUCKET_H_

#include <algorithm>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace spnet {

/// Classic token-bucket rate limiter: `capacity` tokens of burst, refilled
/// continuously at `refill_per_sec`. Each admitted request spends one
/// token (or a caller-chosen cost), so a tenant can burst up to its bucket
/// and then sustains exactly its refill rate.
///
/// Time is injected by the caller (`now_seconds`, any monotonic origin,
/// e.g. Timer::Seconds of a process-lifetime timer) instead of read from a
/// clock inside the class. That keeps the limiter deterministic under
/// test — quota-exhaustion behavior is asserted by advancing a synthetic
/// clock, not by sleeping — and keeps this header dependency-free.
///
/// Thread-safe; one Mutex per bucket, which is per-tenant state in the
/// serving layer, so contention is bounded by a single tenant's arrival
/// rate.
class TokenBucket {
 public:
  /// A non-positive capacity means "unlimited": TryAcquire always admits.
  TokenBucket(double capacity, double refill_per_sec)
      : capacity_(capacity),
        refill_per_sec_(refill_per_sec < 0.0 ? 0.0 : refill_per_sec),
        tokens_(capacity) {}

  TokenBucket(const TokenBucket&) = delete;
  TokenBucket& operator=(const TokenBucket&) = delete;

  /// Spends `cost` tokens if the bucket (refilled up to `now_seconds`)
  /// holds them; false otherwise without partial spend. `now_seconds`
  /// must be non-decreasing across calls; a stale timestamp is clamped so
  /// reordered readers cannot mint tokens.
  bool TryAcquire(double now_seconds, double cost = 1.0) {
    if (capacity_ <= 0.0) return true;
    MutexLock lock(&mu_);
    if (now_seconds > last_refill_s_) {
      tokens_ = std::min(
          capacity_, tokens_ + (now_seconds - last_refill_s_) * refill_per_sec_);
      last_refill_s_ = now_seconds;
    }
    if (tokens_ < cost) return false;
    tokens_ -= cost;
    return true;
  }

  /// Tokens available at `now_seconds` (refills as a side effect).
  double Available(double now_seconds) {
    if (capacity_ <= 0.0) return capacity_;
    MutexLock lock(&mu_);
    if (now_seconds > last_refill_s_) {
      tokens_ = std::min(
          capacity_, tokens_ + (now_seconds - last_refill_s_) * refill_per_sec_);
      last_refill_s_ = now_seconds;
    }
    return tokens_;
  }

  double capacity() const { return capacity_; }
  double refill_per_sec() const { return refill_per_sec_; }

 private:
  const double capacity_;
  const double refill_per_sec_;
  Mutex mu_;
  double tokens_ GUARDED_BY(mu_);
  double last_refill_s_ GUARDED_BY(mu_) = 0.0;
};

}  // namespace spnet

#endif  // SPNET_COMMON_TOKEN_BUCKET_H_
