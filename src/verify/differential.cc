#include "verify/differential.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "common/rng.h"
#include "core/block_reorganizer.h"
#include "datasets/generators.h"
#include "sparse/coo_matrix.h"
#include "sparse/reference_spgemm.h"
#include "spgemm/algorithm_registry.h"

namespace spnet {
namespace verify {

using sparse::CooMatrix;
using sparse::CsrMatrix;
using sparse::Index;
using sparse::Offset;
using sparse::SpanView;

std::string DivergenceToString(const Divergence& d) {
  if (d.kind == "shape") {
    return "shape mismatch";
  }
  return d.kind + " divergence at (" + std::to_string(d.row) + ", " +
         std::to_string(d.col) + "): expected " + std::to_string(d.expected) +
         ", got " + std::to_string(d.got);
}

bool FindFirstDivergence(const CsrMatrix& expected, const CsrMatrix& got,
                         double tol, Divergence* out) {
  if (expected.rows() != got.rows() || expected.cols() != got.cols()) {
    out->kind = "shape";
    out->row = -1;
    out->col = -1;
    return true;
  }
  // Algorithms may legitimately emit unordered rows; compare sorted copies
  // so the merge-walk below sees both sides in column order.
  CsrMatrix e = expected;
  CsrMatrix g = got;
  e.SortRows();
  g.SortRows();
  for (Index r = 0; r < e.rows(); ++r) {
    const SpanView er = e.Row(r);
    const SpanView gr = g.Row(r);
    Offset i = 0;
    Offset j = 0;
    while (i < er.size || j < gr.size) {
      const Index ec = i < er.size ? er.indices[i]
                                   : std::numeric_limits<Index>::max();
      const Index gc = j < gr.size ? gr.indices[j]
                                   : std::numeric_limits<Index>::max();
      if (ec == gc) {
        if (std::abs(er.values[i] - gr.values[j]) > tol) {
          *out = {r, ec, er.values[i], gr.values[j], "value"};
          return true;
        }
        ++i;
        ++j;
      } else if (ec < gc) {
        // An expected entry the algorithm never produced. Tolerate it only
        // if the value is within tol of zero (an explicit zero one side
        // chose to compact away).
        if (std::abs(er.values[i]) > tol) {
          *out = {r, ec, er.values[i], 0.0, "structure"};
          return true;
        }
        ++i;
      } else {
        if (std::abs(gr.values[j]) > tol) {
          *out = {r, gc, 0.0, gr.values[j], "structure"};
          return true;
        }
        ++j;
      }
    }
  }
  return false;
}

namespace {

/// Degenerate-structure family: a fixed stripe pattern of fully empty rows
/// and columns around seeded entries; every third seed yields a completely
/// empty A so the sweep always exercises the nnz == 0 path.
Result<CsrMatrix> MakeEmptyRowsColsMatrix(Index n, uint64_t seed, bool empty) {
  CooMatrix coo(n, n);
  if (!empty) {
    Rng rng(seed);
    for (Index r = 0; r < n; ++r) {
      if (r % 3 == 0) continue;  // fully empty rows
      const int64_t degree = 1 + static_cast<int64_t>(rng.NextBounded(4));
      for (int64_t k = 0; k < degree; ++k) {
        Index c = static_cast<Index>(rng.NextBounded(
            static_cast<uint64_t>(n)));
        if (c % 5 == 2) c = (c + 1) % static_cast<Index>(n);  // empty columns
        if (c % 5 == 2) continue;
        coo.Add(r, c, rng.NextDouble() + 1e-6);
      }
    }
  }
  return CsrMatrix::FromCoo(coo);
}

/// Duplicate-heavy family: every logical entry arrives as several COO
/// triplets whose values sum to the intended number, plus a sprinkling of
/// exactly-canceling pairs that assemble into explicit zeros.
Result<CsrMatrix> MakeDuplicateCooMatrix(Index n, uint64_t seed) {
  Rng rng(seed);
  CooMatrix coo(n, n);
  const int64_t logical = 6 * static_cast<int64_t>(n);
  for (int64_t k = 0; k < logical; ++k) {
    const Index r = static_cast<Index>(rng.NextBounded(
        static_cast<uint64_t>(n)));
    const Index c = static_cast<Index>(rng.NextBounded(
        static_cast<uint64_t>(n)));
    const double v = rng.NextDouble() + 1e-6;
    const int64_t copies = 2 + static_cast<int64_t>(rng.NextBounded(3));
    for (int64_t d = 0; d + 1 < copies; ++d) {
      coo.Add(r, c, v / static_cast<double>(copies));
    }
    coo.Add(r, c, v - v / static_cast<double>(copies) *
                          static_cast<double>(copies - 1));
    if (k % 7 == 0) {
      // Canceling pair: assembles into a structural entry of value 0.
      const Index zr = static_cast<Index>(rng.NextBounded(
          static_cast<uint64_t>(n)));
      const Index zc = static_cast<Index>(rng.NextBounded(
          static_cast<uint64_t>(n)));
      const double zv = rng.NextDouble() + 1e-6;
      coo.Add(zr, zc, zv);
      coo.Add(zr, zc, -zv);
    }
  }
  return CsrMatrix::FromCoo(coo);
}

}  // namespace

const std::vector<std::string>& SweepFamilyNames() {
  static const std::vector<std::string> kFamilies = {
      "powerlaw", "banded", "block-diagonal", "empty-rows-cols",
      "duplicate-coo"};
  return kFamilies;
}

Result<SweepCase> MakeSweepCase(const std::string& family, uint64_t seed) {
  SweepCase c;
  if (family == "powerlaw") {
    datasets::PowerLawParams pa;
    pa.rows = 72;
    pa.cols = 48;
    pa.nnz = 900;
    pa.seed = seed;
    datasets::PowerLawParams pb;
    pb.rows = 48;
    pb.cols = 64;
    pb.nnz = 700;
    pb.seed = seed + 1;
    SPNET_ASSIGN_OR_RETURN(c.a, datasets::GeneratePowerLaw(pa));
    SPNET_ASSIGN_OR_RETURN(c.b, datasets::GeneratePowerLaw(pb));
    return c;
  }
  if (family == "banded") {
    datasets::QuasiRegularParams pa;
    pa.n = 96;
    pa.nnz = 1400;
    pa.seed = seed;
    datasets::QuasiRegularParams pb = pa;
    pb.seed = seed + 1;
    SPNET_ASSIGN_OR_RETURN(c.a, datasets::GenerateQuasiRegular(pa));
    SPNET_ASSIGN_OR_RETURN(c.b, datasets::GenerateQuasiRegular(pb));
    return c;
  }
  if (family == "block-diagonal") {
    datasets::BlockDiagonalParams pa;
    pa.n = 96;
    pa.block_size = 24;
    pa.fill = 0.3;
    pa.seed = seed;
    datasets::BlockDiagonalParams pb;
    pb.n = 96;
    pb.block_size = 16;
    pb.fill = 0.25;
    pb.seed = seed + 1;
    SPNET_ASSIGN_OR_RETURN(c.a, datasets::GenerateBlockDiagonal(pa));
    SPNET_ASSIGN_OR_RETURN(c.b, datasets::GenerateBlockDiagonal(pb));
    return c;
  }
  if (family == "empty-rows-cols") {
    const Index n = 48;
    SPNET_ASSIGN_OR_RETURN(
        c.a, MakeEmptyRowsColsMatrix(n, seed, /*empty=*/seed % 3 == 0));
    SPNET_ASSIGN_OR_RETURN(
        c.b, MakeEmptyRowsColsMatrix(n, seed + 1, /*empty=*/false));
    return c;
  }
  if (family == "duplicate-coo") {
    const Index n = 40;
    SPNET_ASSIGN_OR_RETURN(c.a, MakeDuplicateCooMatrix(n, seed));
    SPNET_ASSIGN_OR_RETURN(c.b, MakeDuplicateCooMatrix(n, seed + 1));
    return c;
  }
  return Status::NotFound("unknown sweep family: " + family);
}

std::string DifferentialFailure::ToString() const {
  std::string line = algorithm + " on " + family +
                     " (seed " + std::to_string(seed) + "): ";
  if (!status.ok()) {
    line += status.ToString();
  } else if (diverged) {
    line += DivergenceToString(divergence);
  } else {
    line += "unknown failure";
  }
  return line;
}

std::string DifferentialReport::Summary() const {
  std::string s = "differential sweep: " +
                  std::to_string(algorithms_tested) + " algorithms, " +
                  std::to_string(cases_run) + " runs, " +
                  std::to_string(failures.size()) + " failures";
  for (const DifferentialFailure& f : failures) {
    s += "\n  " + f.ToString();
  }
  return s;
}

Result<DifferentialReport> RunDifferentialSweep(
    const DifferentialOptions& options) {
  core::RegisterCoreAlgorithms();
  spgemm::AlgorithmRegistry& registry = spgemm::AlgorithmRegistry::Global();

  const std::vector<std::string> names =
      options.algorithms.empty() ? registry.Names() : options.algorithms;
  std::vector<std::pair<std::string, std::unique_ptr<spgemm::SpGemmAlgorithm>>>
      algorithms;
  algorithms.reserve(names.size());
  for (const std::string& name : names) {
    SPNET_ASSIGN_OR_RETURN(std::unique_ptr<spgemm::SpGemmAlgorithm> algorithm,
                           registry.Create(name));
    algorithms.emplace_back(name, std::move(algorithm));
  }

  const std::vector<std::string>& families =
      options.families.empty() ? SweepFamilyNames() : options.families;
  if (options.cases_per_family < 1) {
    return Status::InvalidArgument("cases_per_family must be >= 1");
  }

  DifferentialReport report;
  report.algorithms_tested = static_cast<int64_t>(algorithms.size());
  for (const std::string& family : families) {
    for (int k = 0; k < options.cases_per_family; ++k) {
      const uint64_t seed = options.base_seed + static_cast<uint64_t>(k);
      SPNET_ASSIGN_OR_RETURN(SweepCase c, MakeSweepCase(family, seed));
      SPNET_ASSIGN_OR_RETURN(CsrMatrix expected,
                             sparse::ReferenceSpGemm(c.a, c.b));
      for (const auto& [name, algorithm] : algorithms) {
        ++report.cases_run;
        DifferentialFailure failure;
        failure.algorithm = name;
        failure.family = family;
        failure.seed = seed;
        Result<CsrMatrix> got = algorithm->Compute(c.a, c.b);
        if (!got.ok()) {
          failure.status = got.status();
          report.failures.push_back(std::move(failure));
          continue;
        }
        const Status valid = got->Validate();
        if (!valid.ok()) {
          failure.status = valid;
          report.failures.push_back(std::move(failure));
          continue;
        }
        Divergence d;
        if (FindFirstDivergence(expected, *got, options.tol, &d)) {
          failure.diverged = true;
          failure.divergence = d;
          report.failures.push_back(std::move(failure));
        }
      }
    }
  }
  return report;
}

}  // namespace verify
}  // namespace spnet
