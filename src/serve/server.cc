#include "serve/server.h"

#include <utility>

#include "metrics/json_writer.h"
#include "verify/fault_injection.h"

namespace spnet {
namespace serve {

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      plan_cache_(options_.engine.shared_plan_cache != nullptr
                      ? options_.engine.shared_plan_cache
                      : std::make_shared<engine::PlanCache>(
                            options_.engine.plan_cache_capacity,
                            options_.plan_cache_shards,
                            options_.engine.plan_min_confidence)),
      store_(options_.store),
      queue_(options_.queue_capacity) {
  // Every worker's runner joins the server-wide cache, so one worker's
  // planning warms all of them.
  options_.engine.shared_plan_cache = plan_cache_;
}

Server::~Server() { Drain(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("Server::Start called twice");
  }
  for (const std::string& source : options_.pinned_sources) {
    SPNET_RETURN_IF_ERROR(store_.Pin(source));
  }
  const int count = options_.workers < 1 ? 1 : options_.workers;
  registry_.SetGauge("serve.workers", static_cast<double>(count));
  MutexLock lock(&workers_mu_);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

TokenBucket& Server::BucketFor(const std::string& tenant) {
  MutexLock lock(&buckets_mu_);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    const auto quota_it = options_.tenant_quotas.find(tenant);
    const TenantQuota& quota = quota_it != options_.tenant_quotas.end()
                                   ? quota_it->second
                                   : options_.default_quota;
    it = buckets_
             .emplace(tenant, std::make_unique<TokenBucket>(
                                  quota.capacity, quota.refill_per_sec))
             .first;
  }
  return *it->second;
}

void Server::CountRejection(const std::string& reason,
                            const std::string& tenant) {
  registry_.AddCounter("serve.rejected", 1);
  registry_.AddCounter("serve.rejected." + reason, 1);
  registry_.AddCounter(
      "serve.tenant." + (tenant.empty() ? "unknown" : tenant) + ".rejected",
      1);
}

Status Server::Submit(engine::Request request, Callback done) {
  if (!started_.load()) {
    return Status::FailedPrecondition("server not started");
  }
  const std::string tenant = request.tenant;
  if (draining_.load()) {
    CountRejection("draining", tenant);
    return Status::FailedPrecondition("server is draining; not admitting");
  }
  Status valid = engine::ValidateSchemaVersion(request.schema_version);
  if (valid.ok() &&
      (request.id.empty() || tenant.empty() || request.a == nullptr)) {
    valid = Status::InvalidArgument(
        "request '" + request.id +
        "' failed admission validation (missing id, tenant or A operand)");
  }
  if (!valid.ok()) {
    CountRejection("invalid", tenant);
    return valid;
  }
  Status injected = verify::MaybeInjectFault(verify::kSiteServeAdmit);
  if (!injected.ok()) {
    CountRejection("injected", tenant);
    return injected;
  }
  if (!BucketFor(tenant).TryAcquire(clock_.Seconds())) {
    CountRejection("quota", tenant);
    return Status::ResourceExhausted("tenant '" + tenant +
                                     "' quota exhausted");
  }
  Job job;
  job.request = std::move(request);
  job.done = std::move(done);
  job.admit_seconds = clock_.Seconds();
  const int priority = job.request.priority;
  in_flight_.fetch_add(1);
  if (!queue_.TryPush(std::move(job), priority)) {
    in_flight_.fetch_sub(1);
    // The push can lose a race with BeginDrain closing the queue; report
    // that as draining, not as backpressure.
    if (queue_.closed()) {
      CountRejection("draining", tenant);
      return Status::FailedPrecondition("server is draining; not admitting");
    }
    CountRejection("queue_full", tenant);
    return Status::ResourceExhausted(
        "queue full (capacity " + std::to_string(queue_.capacity()) + ")");
  }
  registry_.AddCounter("serve.admitted", 1);
  registry_.AddCounter("serve.tenant." + tenant + ".admitted", 1);
  registry_.SetGauge("serve.queue_depth",
                     static_cast<double>(queue_.size()));
  return Status::Ok();
}

Status Server::SubmitWire(const WireRequest& wire, Callback done) {
  if (draining_.load()) {
    CountRejection("draining", wire.tenant);
    return Status::FailedPrecondition("server is draining; not admitting");
  }
  auto matrix = store_.Get(wire.source);
  if (!matrix.ok()) {
    CountRejection("source", wire.tenant);
    return matrix.status();
  }
  auto built = engine::RequestBuilder()
                   .Id(wire.id)
                   .Tenant(wire.tenant)
                   .Priority(wire.priority)
                   .DeadlineMs(wire.deadline_ms)
                   .Algorithm(wire.algorithm)
                   .OperandA(std::move(matrix).value())
                   .Build();
  if (!built.ok()) {
    CountRejection("invalid", wire.tenant);
    return built.status();
  }
  return Submit(std::move(built).value(), std::move(done));
}

void Server::WorkerLoop() {
  // One runner per worker: the runner's algorithm memo is mutated by
  // Execute's serial prepass and is not thread-safe; the plan cache the
  // runners share is.
  engine::BatchRunner runner(options_.engine);
  Job job;
  while (queue_.Pop(&job)) {
    registry_.SetGauge("serve.queue_depth",
                       static_cast<double>(queue_.size()));
    const double popped_s = clock_.Seconds();
    registry_.ObserveHistogram(
        "serve.queue_us",
        static_cast<int64_t>((popped_s - job.admit_seconds) * 1e6));

    // Workers pass a null ExecContext: its TraceRecorder is
    // single-threaded, and the serve metrics live in registry_.
    std::vector<engine::Request> batch;
    batch.push_back(job.request);
    auto executed = runner.Execute(batch, nullptr);

    engine::Response response;
    if (executed.ok() && !executed->responses.empty()) {
      response = std::move(executed->responses.front());
    } else {
      response.id = job.request.id;
      response.tenant = job.request.tenant;
      response.status = executed.ok()
                            ? Status::Internal("empty execution report")
                            : executed.status();
    }

    const double done_s = clock_.Seconds();
    registry_.ObserveHistogram(
        "serve.exec_us", static_cast<int64_t>((done_s - popped_s) * 1e6));
    registry_.ObserveHistogram(
        "serve.latency_us",
        static_cast<int64_t>((done_s - job.admit_seconds) * 1e6));
    const bool ok = response.status.ok();
    registry_.AddCounter(ok ? "serve.completed" : "serve.failed", 1);
    registry_.AddCounter("serve.tenant." + job.request.tenant +
                             (ok ? ".completed" : ".failed"),
                         1);
    if (response.status.code() == StatusCode::kDeadlineExceeded) {
      registry_.AddCounter("serve.deadline_expired", 1);
    }
    if (response.plan_cache_hit) {
      registry_.AddCounter("serve.plan_cache_hit", 1);
    }

    if (job.done) job.done(response);
    in_flight_.fetch_sub(1);
    job = Job();  // release the callback/matrix before blocking in Pop
  }
}

void Server::BeginDrain() {
  draining_.store(true);
  queue_.Close();
}

void Server::Drain() {
  BeginDrain();
  MutexLock lock(&workers_mu_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

std::string Server::StatsJson() {
  metrics::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(1);
  w.Key("draining").Bool(draining_.load());
  w.Key("in_flight").Int(in_flight_.load());
  w.Key("metrics");
  registry_.AppendJson(&w);
  w.Key("latency_percentiles").BeginObject();
  for (const char* name : {"serve.queue_us", "serve.exec_us",
                           "serve.latency_us"}) {
    // FindHistogram, not GetHistogram: a stats read must not materialize
    // empty instruments. A histogram that exists but has no observations
    // yet reports null percentiles — a 0.0 here would read as "everything
    // completed instantly" to a dashboard.
    const metrics::Histogram* h = registry_.FindHistogram(name);
    if (h == nullptr) continue;
    const int64_t count = h->count();
    w.Key(name).BeginObject();
    w.Key("count").Int(count);
    if (count == 0) {
      w.Key("p50").Null();
      w.Key("p99").Null();
      w.Key("p999").Null();
    } else {
      w.Key("p50").Double(h->Percentile(0.50));
      w.Key("p99").Double(h->Percentile(0.99));
      w.Key("p999").Double(h->Percentile(0.999));
    }
    w.EndObject();
  }
  w.EndObject();
  w.Key("plan_cache").BeginObject();
  w.Key("capacity").Int(static_cast<int64_t>(plan_cache_->capacity()));
  w.Key("shards").Int(static_cast<int64_t>(plan_cache_->shards()));
  w.Key("size").Int(static_cast<int64_t>(plan_cache_->size()));
  w.Key("hits").Int(plan_cache_->hits());
  w.Key("misses").Int(plan_cache_->misses());
  w.Key("evictions").Int(plan_cache_->evictions());
  w.Key("reject_low_confidence").Int(plan_cache_->rejected_low_confidence());
  w.Key("min_confidence").Double(plan_cache_->min_confidence());
  w.EndObject();
  w.Key("matrix_store").BeginObject();
  w.Key("resident").Int(static_cast<int64_t>(store_.size()));
  w.Key("pinned").Int(static_cast<int64_t>(store_.pinned()));
  w.Key("evictions").Int(store_.evictions());
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace serve
}  // namespace spnet
