#ifndef SPNET_SPARSE_MATRIX_MARKET_H_
#define SPNET_SPARSE_MATRIX_MARKET_H_

#include <string>

#include "common/status.h"
#include "sparse/csr_matrix.h"

namespace spnet {
namespace sparse {

/// Reads a Matrix Market (coordinate) file into CSR form.
///
/// Supports `matrix coordinate {real,integer,pattern} {general,symmetric}`.
/// Pattern entries get value 1.0; symmetric files are expanded to both
/// triangles. Indices in the file are 1-based per the MM specification.
[[nodiscard]] Result<CsrMatrix> ReadMatrixMarket(const std::string& path);

/// Parses Matrix Market content from a string (same rules as the file
/// reader); used by tests and by in-memory dataset pipelines.
[[nodiscard]] Result<CsrMatrix> ParseMatrixMarket(const std::string& content);

/// Writes `m` as `matrix coordinate real general` with 1-based indices.
[[nodiscard]] Status WriteMatrixMarket(const CsrMatrix& m, const std::string& path);

}  // namespace sparse
}  // namespace spnet

#endif  // SPNET_SPARSE_MATRIX_MARKET_H_
