// spnet_lint: the project's source linter.
//
// Tokenizes the C++ sources under the given paths with a real lexer
// (comments, string/char literals, raw strings and preprocessor lines are
// understood, so rules never fire inside them) and enforces the project
// rules described in DESIGN.md §lint. Exit status: 0 when clean, 1 when
// any error-severity finding survives suppression (or any warning under
// --werror), 2 on usage/IO problems.
//
// Usage:
//   spnet_lint [--werror] [--list-rules] [--json_out <path>]
//              [--graph_out <path>] <path>...
//
// Suppress a finding inline with `// spnet-lint: allow(<rule>)` on the
// same line or the line above.

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/status.h"
#include "lint/lint.h"
#include "lint/runner.h"
#include "metrics/json_writer.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: spnet_lint [--werror] [--list-rules] [--json_out <path>]\n"
      "                  [--graph_out <path>] <path>...\n"
      "  --werror            treat warnings as errors\n"
      "  --list-rules        print the rule catalog and exit\n"
      "  --json_out <path>   write machine-readable findings JSON\n"
      "  --graph_out <path>  write the include-graph/layering JSON\n");
}

void PrintRules() {
  for (const spnet::lint::RuleInfo& rule : spnet::lint::Rules()) {
    std::printf("%-24s %-8s %s\n", rule.name,
                rule.severity == spnet::lint::Severity::kError ? "error"
                                                               : "warning",
                rule.summary);
  }
}

}  // namespace

int main(int argc, char** argv) {
  spnet::FlagParser flags;
  const spnet::Status parsed =
      flags.Parse(argc, argv, {"werror", "list-rules", "list_rules"});
  if (!parsed.ok()) {
    std::fprintf(stderr, "spnet_lint: %s\n", parsed.ToString().c_str());
    PrintUsage();
    return 2;
  }
  if (flags.GetBool("list-rules", false) ||
      flags.GetBool("list_rules", false)) {
    PrintRules();
    return 0;
  }
  if (flags.positional().empty()) {
    PrintUsage();
    return 2;
  }

  const spnet::lint::LintOptions options;
  auto summary = spnet::lint::LintPaths(flags.positional(), options);
  if (!summary.ok()) {
    std::fprintf(stderr, "spnet_lint: %s\n",
                 summary.status().ToString().c_str());
    return 2;
  }
  for (const spnet::lint::Diagnostic& diagnostic : summary->diagnostics) {
    std::fprintf(stderr, "%s\n",
                 spnet::lint::FormatDiagnostic(diagnostic).c_str());
  }
  const std::string json_out = flags.GetString("json_out", "");
  if (!json_out.empty()) {
    const spnet::Status written = spnet::metrics::WriteTextFile(
        json_out, spnet::lint::FindingsJson(*summary) + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "spnet_lint: %s\n", written.ToString().c_str());
      return 2;
    }
  }
  const std::string graph_out = flags.GetString("graph_out", "");
  if (!graph_out.empty()) {
    const spnet::Status written = spnet::metrics::WriteTextFile(
        graph_out, summary->graph_json + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "spnet_lint: %s\n", written.ToString().c_str());
      return 2;
    }
  }
  const bool werror = flags.GetBool("werror", false);
  const int effective_errors =
      summary->errors + (werror ? summary->warnings : 0);
  std::fprintf(stderr, "spnet_lint: %d file%s, %d error%s, %d warning%s\n",
               summary->files_linted, summary->files_linted == 1 ? "" : "s",
               summary->errors, summary->errors == 1 ? "" : "s",
               summary->warnings, summary->warnings == 1 ? "" : "s");
  return effective_errors > 0 ? 1 : 0;
}
