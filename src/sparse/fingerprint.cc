#include "sparse/fingerprint.h"

#include <cstddef>

namespace spnet {
namespace sparse {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over an integer's bytes, least significant first. Writing the
/// bytes out explicitly (instead of hashing raw memory) keeps the result
/// independent of host endianness and of the padding rules of the array
/// element types.
template <typename T>
uint64_t HashValue(uint64_t h, T value) {
  auto bits = static_cast<uint64_t>(value);
  for (size_t i = 0; i < sizeof(T); ++i) {
    h ^= (bits >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

template <typename T>
uint64_t HashArray(uint64_t h, const std::vector<T>& values) {
  // The length separator keeps {[1,2],[3]} and {[1],[2,3]} distinct when
  // arrays are hashed back to back.
  h = HashValue(h, static_cast<uint64_t>(values.size()));
  for (const T& v : values) h = HashValue(h, v);
  return h;
}

}  // namespace

uint64_t StructuralFingerprint(const CsrMatrix& m) {
  uint64_t h = kFnvOffset;
  h = HashValue(h, m.rows());
  h = HashValue(h, m.cols());
  // A default-constructed matrix stores an empty ptr array while the
  // builders emit rows()+1 zeros for the same logical structure; hash the
  // canonical form so the two spellings of an empty matrix share a key.
  if (m.ptr().empty()) {
    h = HashValue(h, static_cast<uint64_t>(m.rows()) + 1);
    for (Index r = 0; r <= m.rows(); ++r) h = HashValue(h, Offset{0});
  } else {
    h = HashArray(h, m.ptr());
  }
  h = HashArray(h, m.indices());
  return h;
}

uint64_t CombineFingerprints(uint64_t a, uint64_t b) {
  uint64_t h = kFnvOffset;
  h = HashValue(h, a);
  h = HashValue(h, b);
  return h;
}

}  // namespace sparse
}  // namespace spnet
