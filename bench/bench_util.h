#ifndef SPNET_BENCH_BENCH_UTIL_H_
#define SPNET_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "datasets/cache.h"
#include "datasets/registry.h"
#include "gpusim/device_spec.h"
#include "metrics/json_writer.h"
#include "metrics/report.h"
#include "sparse/csr_matrix.h"
#include "spgemm/exec_context.h"

namespace spnet {
namespace bench {

/// Flags shared by every experiment binary.
///
///   --scale=<f>    linear dataset scale, 1.0 = paper dimensions
///                  (default 0.25 keeps the full suite minutes-fast on one
///                  core; EXPERIMENTS.md records both scales)
///   --device=<s>   titanxp | v100 | 2080ti
///   --seed=<n>     generator seed
///   --csv          emit CSV instead of aligned tables
///   --threads=<n>  host threads for the functional expansion/merge stack
///                  (default: hardware concurrency; 1 = historical serial
///                  path; affects host wall-clock only, never simulated
///                  cycles or results)
///   --json_out=<p> also write the run's tables (plus any ExecContext
///                  metrics/trace) as a machine-readable BENCH_*.json
struct BenchOptions {
  double scale = 0.25;
  uint64_t seed = 42;
  std::string device_name = "titanxp";
  bool csv = false;
  /// Host thread count for the functional stack; 0 = hardware concurrency.
  int threads = 0;
  /// When set (--cache=<dir>), generated datasets are cached on disk as
  /// binary .spnb files and reloaded on later runs.
  std::string cache_dir;
  /// When set (--json_out=<path>), BenchJson::WriteIfRequested writes the
  /// machine-readable result file there.
  std::string json_out;

  static BenchOptions FromArgs(int argc, const char* const* argv) {
    FlagParser flags;
    const Status s = flags.Parse(argc, argv);
    SPNET_CHECK(s.ok()) << s.ToString();
    BenchOptions o;
    o.scale = flags.GetDouble("scale", o.scale);
    o.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    o.device_name = flags.GetString("device", o.device_name);
    o.csv = flags.GetBool("csv", false);
    o.threads = static_cast<int>(flags.GetInt("threads", 0));
    o.cache_dir = flags.GetString("cache", "");
    o.json_out = flags.GetString("json_out", "");
    SetGlobalThreadCount(o.threads);
    return o;
  }

  gpusim::DeviceSpec Device() const {
    if (device_name == "v100") return gpusim::DeviceSpec::TeslaV100();
    if (device_name == "2080ti") return gpusim::DeviceSpec::Rtx2080Ti();
    return gpusim::DeviceSpec::TitanXp();
  }
};

/// Materializes one Table II dataset or dies (benches treat generator
/// failure as fatal).
inline sparse::CsrMatrix LoadDataset(const std::string& name,
                                     const BenchOptions& options) {
  auto spec = datasets::FindDataset(name);
  SPNET_CHECK(spec.ok()) << spec.status().ToString();
  auto m = datasets::MaterializeCached(*spec, options.scale,
                                       options.cache_dir, options.seed);
  SPNET_CHECK(m.ok()) << m.status().ToString();
  return std::move(m).value();
}

/// All 28 Table II names in paper order.
inline std::vector<std::string> AllDatasetNames() {
  std::vector<std::string> names;
  for (const auto& spec : datasets::TableTwoDatasets()) {
    names.push_back(spec.name);
  }
  return names;
}

/// Parses a cell like "1.43" or "1431" into a double. Cells such as
/// "2.7M", "n/a" or dataset names stay strings in the JSON output.
inline bool ParseNumericCell(const std::string& cell, double* value) {
  if (cell.empty()) return false;
  char* end = nullptr;
  const double parsed = std::strtod(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size()) return false;
  if (!(parsed == parsed) || parsed > 1e300 || parsed < -1e300) return false;
  *value = parsed;
  return true;
}

/// Machine-readable bench output (the --json_out flag). A bench registers
/// the same metrics::Table objects it prints, optionally attaches the
/// ExecContext used for measurement, and calls WriteIfRequested() last.
///
/// Schema (stable; see EXPERIMENTS.md):
///   { "schema_version": 1, "bench": ..., "figure": ..., "device": ...,
///     "scale": ..., "seed": ..., "threads": ...,
///     "tables": [{"name", "columns", "rows"}...],
///     "metrics": {...} | null, "trace": [...] | null }
/// Numeric-looking cells are emitted as JSON numbers, everything else as
/// strings.
class BenchJson {
 public:
  /// `bench` is the binary's short name (e.g. "fig10_techniques"),
  /// `figure` the paper artifact it reproduces (e.g. "Figure 10").
  BenchJson(std::string bench, std::string figure, const BenchOptions& options)
      : bench_(std::move(bench)),
        figure_(std::move(figure)),
        options_(options) {}

  void AddTable(const std::string& name, const metrics::Table& table) {
    tables_.emplace_back(name, table);
  }

  /// Serializes the context's registry + trace into the result file.
  /// The pointer must outlive WriteIfRequested(); pass the measurement
  /// context after the runs finish.
  void AttachContext(const spgemm::ExecContext* ctx) { ctx_ = ctx; }

  std::string ToJson() const {
    metrics::JsonWriter w;
    w.BeginObject();
    w.Key("schema_version").Int(1);
    w.Key("bench").String(bench_);
    w.Key("figure").String(figure_);
    w.Key("device").String(options_.device_name);
    w.Key("scale").Double(options_.scale);
    w.Key("seed").Int(static_cast<int64_t>(options_.seed));
    w.Key("threads").Int(options_.threads);
    w.Key("tables").BeginArray();
    for (const auto& [name, table] : tables_) {
      w.BeginObject();
      w.Key("name").String(name);
      w.Key("columns").BeginArray();
      for (const std::string& column : table.header()) w.String(column);
      w.EndArray();
      w.Key("rows").BeginArray();
      for (const auto& row : table.rows()) {
        w.BeginArray();
        for (const std::string& cell : row) {
          double value = 0.0;
          if (ParseNumericCell(cell, &value)) {
            w.Double(value);
          } else {
            w.String(cell);
          }
        }
        w.EndArray();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.Key("metrics");
    if (ctx_ != nullptr) {
      ctx_->registry.AppendJson(&w);
    } else {
      w.Null();
    }
    w.Key("trace");
    if (ctx_ != nullptr) {
      ctx_->trace.AppendJson(&w);
    } else {
      w.Null();
    }
    w.EndObject();
    return w.str();
  }

  /// No-op without --json_out; otherwise writes the result file and logs
  /// the destination. Write failures are fatal: a bench asked for a result
  /// file that cannot exist has failed.
  void WriteIfRequested() const {
    if (options_.json_out.empty()) return;
    const Status s = metrics::WriteTextFile(options_.json_out, ToJson());
    SPNET_CHECK(s.ok()) << s.ToString();
    std::fprintf(stderr, "wrote %s\n", options_.json_out.c_str());
  }

 private:
  std::string bench_;
  std::string figure_;
  BenchOptions options_;
  std::vector<std::pair<std::string, metrics::Table>> tables_;
  const spgemm::ExecContext* ctx_ = nullptr;
};

}  // namespace bench
}  // namespace spnet

#endif  // SPNET_BENCH_BENCH_UTIL_H_
