// Determinism suite: the parallel execution engine must produce outputs
// bit-identical to --threads=1 for every thread count, on every input
// family — skewed, banded, and degenerate. These tests drive the exact
// code paths the bench sweeps and the fuzz-agreement suite rely on.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/parallel.h"
#include "datasets/generators.h"
#include "sparse/csr_matrix.h"
#include "sparse/reference_spgemm.h"
#include "spgemm/functional.h"
#include "spgemm/workload_model.h"
#include "tests/test_util.h"

namespace spnet {
namespace {

using sparse::CscMatrix;
using sparse::CsrMatrix;
using sparse::Index;
using sparse::Offset;
using sparse::Value;

/// Thread counts the suite sweeps: serial, even, odd/prime (chunks don't
/// divide evenly), and whatever this host actually has.
std::vector<int> ThreadCounts() {
  std::vector<int> counts = {1, 2, 7};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 1 && hw != 2 && hw != 7) counts.push_back(hw);
  return counts;
}

/// Restores the global pool to the hardware default after each test so
/// the suite never leaks a thread-count override.
class DeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { SetGlobalThreadCount(0); }
};

void ExpectBitIdentical(const CsrMatrix& expected, const CsrMatrix& actual,
                        const std::string& label) {
  EXPECT_EQ(expected.rows(), actual.rows()) << label;
  EXPECT_EQ(expected.cols(), actual.cols()) << label;
  EXPECT_EQ(expected.ptr(), actual.ptr()) << label << ": row pointers";
  EXPECT_EQ(expected.indices(), actual.indices()) << label << ": indices";
  // operator== on double vectors is exact comparison — bit-identical
  // values (no tolerance), which is the contract under test.
  EXPECT_EQ(expected.values(), actual.values()) << label << ": values";
}

using EngineFn = Result<CsrMatrix> (*)(const CsrMatrix&, const CsrMatrix&);

struct Engine {
  const char* name;
  EngineFn fn;
};

const Engine kEngines[] = {
    {"ReferenceSpGemm", &sparse::ReferenceSpGemm},
    {"RowProductExpandMerge", &spgemm::RowProductExpandMerge},
    {"OuterProductExpandMerge", &spgemm::OuterProductExpandMerge},
};

void CheckAllEnginesDeterministic(const CsrMatrix& a, const CsrMatrix& b,
                                  const std::string& input_label) {
  for (const Engine& engine : kEngines) {
    SetGlobalThreadCount(1);
    auto serial = engine.fn(a, b);
    ASSERT_TRUE(serial.ok())
        << engine.name << " on " << input_label << ": "
        << serial.status().ToString();
    for (int threads : ThreadCounts()) {
      SetGlobalThreadCount(threads);
      auto parallel = engine.fn(a, b);
      ASSERT_TRUE(parallel.ok())
          << engine.name << " on " << input_label << " with " << threads
          << " threads: " << parallel.status().ToString();
      ExpectBitIdentical(*serial, *parallel,
                         std::string(engine.name) + " on " + input_label +
                             " with " + std::to_string(threads) + " threads");
    }
    SetGlobalThreadCount(0);
  }
}

CsrMatrix BandedMatrix(Index n, int64_t nnz, uint64_t seed) {
  datasets::QuasiRegularParams params;
  params.n = n;
  params.nnz = nnz;
  params.seed = seed;
  auto m = datasets::GenerateQuasiRegular(params);
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  return std::move(m).value();
}

CsrMatrix ZipfMatrix(Index n, int64_t nnz, uint64_t seed) {
  datasets::PowerLawParams params;
  params.rows = params.cols = n;
  params.nnz = nnz;
  params.seed = seed;
  auto m = datasets::GeneratePowerLaw(params);
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  return std::move(m).value();
}

TEST_F(DeterminismTest, BandedSquare) {
  const CsrMatrix a = BandedMatrix(600, 7200, 11);
  CheckAllEnginesDeterministic(a, a, "banded 600x600");
}

TEST_F(DeterminismTest, ZipfSkewedSquare) {
  const CsrMatrix a = ZipfMatrix(800, 9000, 13);
  CheckAllEnginesDeterministic(a, a, "zipf 800x800");
}

TEST_F(DeterminismTest, ZipfTimesBanded) {
  const CsrMatrix a = ZipfMatrix(500, 6000, 17);
  const CsrMatrix b = BandedMatrix(500, 5000, 19);
  CheckAllEnginesDeterministic(a, b, "zipf x banded");
}

TEST_F(DeterminismTest, RectangularChain) {
  const CsrMatrix a = testing_util::RandomMatrix(120, 90, 0.06, 23);
  const CsrMatrix b = testing_util::RandomMatrix(90, 150, 0.05, 29);
  CheckAllEnginesDeterministic(a, b, "rectangular 120x90 * 90x150");
}

TEST_F(DeterminismTest, ZeroRowMatrix) {
  auto a = CsrMatrix::FromParts(0, 5, {0}, {}, {});
  ASSERT_TRUE(a.ok());
  auto b = CsrMatrix::FromParts(5, 4, {0, 0, 0, 0, 0, 0}, {}, {});
  ASSERT_TRUE(b.ok());
  CheckAllEnginesDeterministic(*a, *b, "0x5 * 5x4");
}

TEST_F(DeterminismTest, ZeroNnzMatrix) {
  auto a =
      CsrMatrix::FromParts(10, 8, std::vector<Offset>(11, 0), {}, {});
  ASSERT_TRUE(a.ok());
  auto b = CsrMatrix::FromParts(8, 6, std::vector<Offset>(9, 0), {}, {});
  ASSERT_TRUE(b.ok());
  CheckAllEnginesDeterministic(*a, *b, "empty 10x8 * 8x6");
}

TEST_F(DeterminismTest, OneByOneMatrix) {
  auto a = CsrMatrix::FromParts(1, 1, {0, 1}, {0}, {2.5});
  ASSERT_TRUE(a.ok());
  CheckAllEnginesDeterministic(*a, *a, "1x1");
}

TEST_F(DeterminismTest, EmptyRowsAndColumnsMix) {
  // Rows 0 and 3 empty; column 2 never touched — exercises the
  // zero-work rows inside parallel chunks.
  auto a = CsrMatrix::FromParts(4, 4, {0, 0, 2, 3, 3}, {0, 3, 1},
                                {1.0, 2.0, 3.0});
  ASSERT_TRUE(a.ok());
  CheckAllEnginesDeterministic(*a, *a, "sparse rows 4x4");
}

TEST_F(DeterminismTest, TransposeBitIdenticalAcrossThreadCounts) {
  const CsrMatrix a = ZipfMatrix(700, 8000, 31);
  SetGlobalThreadCount(1);
  const CsrMatrix serial = a.Transpose();
  for (int threads : ThreadCounts()) {
    SetGlobalThreadCount(threads);
    const CsrMatrix parallel = a.Transpose();
    ExpectBitIdentical(serial, parallel,
                       "Transpose with " + std::to_string(threads));
  }
}

TEST_F(DeterminismTest, CscFromCsrBitIdenticalAcrossThreadCounts) {
  const CsrMatrix a = BandedMatrix(500, 6000, 37);
  SetGlobalThreadCount(1);
  const CscMatrix serial = CscMatrix::FromCsr(a);
  for (int threads : ThreadCounts()) {
    SetGlobalThreadCount(threads);
    const CscMatrix parallel = CscMatrix::FromCsr(a);
    EXPECT_EQ(serial.ptr(), parallel.ptr());
    EXPECT_EQ(serial.indices(), parallel.indices());
    EXPECT_EQ(serial.values(), parallel.values());
  }
}

TEST_F(DeterminismTest, ExactOutputNnzAcrossThreadCounts) {
  const CsrMatrix a = ZipfMatrix(600, 7000, 41);
  SetGlobalThreadCount(1);
  auto serial = sparse::SpGemmExactOutputNnz(a, a);
  ASSERT_TRUE(serial.ok());
  for (int threads : ThreadCounts()) {
    SetGlobalThreadCount(threads);
    auto parallel = sparse::SpGemmExactOutputNnz(a, a);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(*serial, *parallel) << threads << " threads";
  }
}

TEST_F(DeterminismTest, BuildWorkloadAcrossThreadCounts) {
  const CsrMatrix a = ZipfMatrix(600, 7000, 43);
  const CsrMatrix b = BandedMatrix(600, 6000, 47);
  SetGlobalThreadCount(1);
  const spgemm::Workload serial = spgemm::BuildWorkload(a, b);
  for (int threads : ThreadCounts()) {
    SetGlobalThreadCount(threads);
    const spgemm::Workload parallel = spgemm::BuildWorkload(a, b);
    EXPECT_EQ(serial.a_col_nnz, parallel.a_col_nnz) << threads;
    EXPECT_EQ(serial.b_row_nnz, parallel.b_row_nnz) << threads;
    EXPECT_EQ(serial.pair_work, parallel.pair_work) << threads;
    EXPECT_EQ(serial.row_chat, parallel.row_chat) << threads;
    EXPECT_EQ(serial.row_c_est, parallel.row_c_est) << threads;
    EXPECT_EQ(serial.flops, parallel.flops) << threads;
    EXPECT_EQ(serial.output_nnz, parallel.output_nnz) << threads;
  }
}

TEST_F(DeterminismTest, ParallelOutputStillMatchesReferenceNumerically) {
  // Guard against a parallel scheme that is self-consistent but wrong:
  // the row-product and outer-product results must still agree with the
  // reference oracle (tolerant comparison, unordered rows allowed).
  const CsrMatrix a = ZipfMatrix(400, 5000, 53);
  SetGlobalThreadCount(7);
  auto reference = sparse::ReferenceSpGemm(a, a);
  ASSERT_TRUE(reference.ok());
  auto row = spgemm::RowProductExpandMerge(a, a);
  ASSERT_TRUE(row.ok());
  auto outer = spgemm::OuterProductExpandMerge(a, a);
  ASSERT_TRUE(outer.ok());
  EXPECT_TRUE(sparse::CsrApproxEqual(*reference, *row));
  EXPECT_TRUE(sparse::CsrApproxEqual(*reference, *outer));
}

}  // namespace
}  // namespace spnet
