// Planning-frontier bench: planning time vs plan quality for the exact
// and estimated planning tiers, across the synthetic generator families.
//
// The estimation tier replaces the exact precalculation (a full C-hat
// row gather, O(flops)) with a deterministic row sample plus guaranteed
// upper/lower bands, falling back to exact recounts only where a band
// straddles a classification threshold. This bench measures what that
// buys and what it costs, per generator family:
//
//   precalc ms     wall-clock of the tier-specific planning phase alone
//                  (workload precalculation + classification). This is
//                  where the tiers actually differ — kernel enumeration is
//                  shared — so it is the headline frontier metric, and the
//                  estimated tier must beat exact here, most visibly on
//                  the power-law family where the exact gather is most
//                  expensive
//   plan cold ms   wall-clock of one full Plan() call on a fresh
//                  algorithm (precalc + kernel enumeration)
//   batch warm ms  wall-clock of a warm repeated-structure batch through
//                  the engine. The exact tier amortizes via the plan
//                  cache; estimated-tier plans carry low confidence and
//                  are refused admission (engine.plan_cache.
//                  reject_low_confidence), so the estimated tier re-plans
//                  every query — cheaply
//   sim ms         simulated device time of the built plan (plan
//                  quality: how much scheduling fidelity the estimates
//                  give up)
//   confidence     SpGemmPlan::confidence (fraction of the modeled work
//                  known exactly; 1.0 for the exact tier)
//
// Flags: --scale (default 0.25), --seed, --device, --csv, --threads,
// --repeat (plan timing repetitions, default 3),
// --json_out=BENCH_planning_frontier.json.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/block_reorganizer.h"
#include "core/reorganizer_config.h"
#include "datasets/generators.h"
#include "engine/batch_runner.h"
#include "engine/request.h"
#include "metrics/report.h"
#include "core/workload_classifier.h"
#include "sparse/csr_matrix.h"
#include "spgemm/algorithm.h"
#include "spgemm/exec_context.h"
#include "spgemm/nnz_estimator.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace {

/// One synthetic input per generator family, linearly scaled. The sizes
/// are chosen so the exact tier's precalculation is the dominant planning
/// cost at scale 1.0 while the whole sweep stays seconds-fast at the
/// default 0.25.
sparse::CsrMatrix MakeFamilyCase(const std::string& family,
                                 const bench::BenchOptions& options) {
  const double s = options.scale;
  auto dim = [&](double base) {
    return static_cast<sparse::Index>(std::max(64.0, base * s));
  };
  auto count = [&](double base) {
    return static_cast<int64_t>(std::max(256.0, base * s));
  };
  Result<sparse::CsrMatrix> m =
      Status::InvalidArgument("unknown family " + family);
  if (family == "powerlaw") {
    datasets::PowerLawParams p;
    p.rows = dim(24000);
    p.cols = p.rows;
    p.nnz = count(960000);
    p.row_skew = 0.9;
    p.col_skew = 0.9;
    p.seed = options.seed;
    m = datasets::GeneratePowerLaw(p);
  } else if (family == "rmat") {
    datasets::RmatParams p;
    p.scale = 1;
    while ((sparse::Index{1} << p.scale) < dim(16000)) ++p.scale;
    p.edge_count = count(320000);
    p.seed = options.seed;
    m = datasets::GenerateRmat(p);
  } else if (family == "banded") {
    datasets::QuasiRegularParams p;
    p.n = dim(20000);
    p.nnz = count(400000);
    p.seed = options.seed;
    m = datasets::GenerateQuasiRegular(p);
  } else if (family == "block-diagonal") {
    datasets::BlockDiagonalParams p;
    p.n = dim(20000);
    p.block_size = 48;
    p.fill = 0.2;
    p.seed = options.seed;
    m = datasets::GenerateBlockDiagonal(p);
  }
  SPNET_CHECK(m.ok()) << family << ": " << m.status().ToString();
  return std::move(m).value();
}

struct TierResult {
  double precalc_ms = 0.0;
  double plan_cold_ms = 0.0;
  double batch_warm_ms = 0.0;
  double sim_ms = 0.0;
  double confidence = 1.0;
  int64_t flops = 0;
  int64_t rejected = 0;
};

TierResult RunTier(const sparse::CsrMatrix& matrix,
                   core::PlanningTier tier,
                   const bench::BenchOptions& options, int64_t repeat,
                   spgemm::ExecContext* ctx) {
  core::ReorganizerConfig config;
  config.planning_tier = tier;
  TierResult result;

  // Tier-specific phase in isolation: precalculation + classification,
  // best of `repeat`. Kernel enumeration (shared by both tiers) is
  // excluded, so this is the planning-frontier signal itself.
  for (int64_t r = 0; r < repeat; ++r) {
    Timer timer;
    if (tier == core::PlanningTier::kExact) {
      const spgemm::Workload w = spgemm::BuildWorkload(matrix, matrix);
      const core::Classification c = core::Classify(w, config);
      SPNET_CHECK(c.dominator_threshold >= 1);
    } else {
      spgemm::EstimatorOptions estimator;
      estimator.sample_fraction = config.estimator_sample_fraction;
      spgemm::EstimatedWorkload est =
          spgemm::BuildWorkloadEstimated(matrix, matrix, estimator);
      const core::Classification c =
          core::ClassifyEstimated(&est, matrix, matrix, config);
      SPNET_CHECK(c.dominator_threshold >= 1);
    }
    const double ms = timer.Seconds() * 1e3;
    if (r == 0 || ms < result.precalc_ms) result.precalc_ms = ms;
  }

  // Cold planning: a fresh Plan() call, best of `repeat` (the minimum is
  // the least noise-contaminated estimate of the true cost).
  auto algorithm = core::MakeBlockReorganizer(config);
  SPNET_CHECK(algorithm.ok()) << algorithm.status().ToString();
  const gpusim::DeviceSpec device = options.Device();
  for (int64_t r = 0; r < repeat; ++r) {
    Timer timer;
    auto plan = (*algorithm)->Plan(matrix, matrix, device, ctx);
    SPNET_CHECK(plan.ok()) << plan.status().ToString();
    const double ms = timer.Seconds() * 1e3;
    if (r == 0 || ms < result.plan_cold_ms) result.plan_cold_ms = ms;
    if (r == 0) {
      result.confidence = plan->confidence;
      result.flops = plan->flops;
      auto measured = spgemm::SimulatePlan(*plan, device, nullptr);
      SPNET_CHECK(measured.ok()) << measured.status().ToString();
      result.sim_ms = measured->total_seconds * 1e3;
    }
  }

  // Warm batch: repeated-structure traffic through the engine. The first
  // Execute populates (or, for low-confidence estimated plans, fails to
  // populate) the plan cache; the second is the steady state.
  engine::BatchOptions batch;
  batch.device = device;
  batch.reorganizer_config = config;
  engine::BatchRunner runner(batch);
  auto shared = std::make_shared<const sparse::CsrMatrix>(matrix);
  std::vector<engine::Request> requests;
  for (int i = 0; i < 8; ++i) {
    auto request = engine::RequestBuilder()
                       .Id("q" + std::to_string(i))
                       .Algorithm("reorganizer")
                       .OperandA(shared)
                       .Build();
    SPNET_CHECK(request.ok()) << request.status().ToString();
    requests.push_back(std::move(request).value());
  }
  auto cold = runner.Execute(requests, nullptr);
  SPNET_CHECK(cold.ok()) << cold.status().ToString();
  auto warm = runner.Execute(requests, nullptr);
  SPNET_CHECK(warm.ok()) << warm.status().ToString();
  SPNET_CHECK(warm->failed == 0) << "warm pass had failing queries";
  result.batch_warm_ms = warm->wall_ms;
  result.rejected = cold->plan_cache_rejected_low_confidence +
                    warm->plan_cache_rejected_low_confidence;
  return result;
}

int Run(int argc, char** argv) {
  bench::BenchOptions options = bench::BenchOptions::FromArgs(argc, argv);
  FlagParser flags;
  SPNET_CHECK(flags.Parse(argc, argv).ok());
  const int64_t repeat = std::max<int64_t>(1, flags.GetInt("repeat", 3));

  const std::vector<std::string> families = {"powerlaw", "rmat", "banded",
                                             "block-diagonal"};
  struct Tier {
    const char* name;
    core::PlanningTier tier;
  };
  const Tier tiers[] = {{"exact", core::PlanningTier::kExact},
                        {"estimated", core::PlanningTier::kEstimated}};

  spgemm::ExecContext ctx;
  metrics::Table table({"family", "tier", "precalc ms", "plan cold ms",
                        "batch warm ms", "sim ms", "confidence", "flops",
                        "cache rejects"});
  for (const std::string& family : families) {
    const sparse::CsrMatrix matrix = MakeFamilyCase(family, options);
    double exact_precalc = 0.0;
    double exact_cold = 0.0;
    for (const Tier& tier : tiers) {
      const TierResult r =
          RunTier(matrix, tier.tier, options, repeat, &ctx);
      if (tier.tier == core::PlanningTier::kExact) {
        exact_precalc = r.precalc_ms;
        exact_cold = r.plan_cold_ms;
      }
      table.AddRow({family, tier.name,
                    metrics::FormatDouble(r.precalc_ms, 3),
                    metrics::FormatDouble(r.plan_cold_ms, 3),
                    metrics::FormatDouble(r.batch_warm_ms, 3),
                    metrics::FormatDouble(r.sim_ms, 3),
                    metrics::FormatDouble(r.confidence, 4),
                    std::to_string(r.flops), std::to_string(r.rejected)});
      if (tier.tier == core::PlanningTier::kEstimated) {
        std::printf(
            "%-14s estimated/exact precalc: %.2fx  cold planning: %.2fx\n",
            family.c_str(),
            exact_precalc > 0.0 ? r.precalc_ms / exact_precalc : 0.0,
            exact_cold > 0.0 ? r.plan_cold_ms / exact_cold : 0.0);
      }
    }
  }

  std::printf("== planning frontier: exact vs estimated tier ==\n");
  std::fputs(options.csv ? table.ToCsv().c_str() : table.ToString().c_str(),
             stdout);

  bench::BenchJson json("planning_frontier",
                        "estimation tier planning frontier", options);
  json.AddTable("planning_frontier", table);
  json.AttachContext(&ctx);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
