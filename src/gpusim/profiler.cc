#include "gpusim/profiler.h"

#include <algorithm>
#include <cstdio>

#include "metrics/registry.h"

namespace spnet {
namespace gpusim {

namespace {

void ExportStats(metrics::Registry* registry, const std::string& prefix,
                 const KernelStats& stats) {
  registry->SetGauge(prefix + ".cycles", stats.cycles);
  registry->SetGauge(prefix + ".ms", stats.seconds * 1e3);
  registry->SetGauge(prefix + ".blocks",
                     static_cast<double>(stats.num_blocks));
  registry->SetGauge(prefix + ".warps", static_cast<double>(stats.num_warps));
  registry->SetGauge(prefix + ".occupancy", stats.avg_resident_blocks);
  registry->SetGauge(prefix + ".sync_stall_fraction",
                     stats.SyncStallFraction());
  registry->SetGauge(prefix + ".l2_gbs", stats.L2ReadThroughputGBs() +
                                             stats.L2WriteThroughputGBs());
  registry->SetGauge(prefix + ".lbi", stats.Lbi());
  registry->SetGauge(prefix + ".sm_utilization", stats.SmUtilization());
}

}  // namespace

Status Profiler::Profile(const std::vector<KernelDesc>& kernels) {
  profiles_.clear();
  profiles_.reserve(kernels.size());
  for (const KernelDesc& k : kernels) {
    SPNET_ASSIGN_OR_RETURN(KernelStats stats, simulator_.RunKernel(k));
    KernelProfile p;
    p.label = k.label;
    p.phase = k.phase;
    p.stats = std::move(stats);
    profiles_.push_back(std::move(p));
  }
  return Status::Ok();
}

KernelStats Profiler::Total() const {
  KernelStats total;
  total.sm_busy_cycles.assign(
      static_cast<size_t>(simulator_.device().num_sms), 0.0);
  for (const KernelProfile& p : profiles_) total.Accumulate(p.stats);
  total.seconds = simulator_.device().CyclesToSeconds(total.cycles);
  return total;
}

std::string Profiler::ReportTable() const {
  const double total_cycles = std::max(Total().cycles, 1.0);
  std::string out =
      "kernel                        phase       time%    ms       blocks"
      "    stall%   L2 GB/s   LBI\n";
  char line[160];
  for (const KernelProfile& p : profiles_) {
    std::snprintf(
        line, sizeof(line),
        "%-28s  %-10s  %5.1f  %8.3f  %8lld  %6.1f  %8.1f  %5.2f\n",
        p.label.c_str(), PhaseName(p.phase),
        100.0 * p.stats.cycles / total_cycles, p.stats.seconds * 1e3,
        static_cast<long long>(p.stats.num_blocks),
        100.0 * p.stats.SyncStallFraction(),
        p.stats.L2ReadThroughputGBs() + p.stats.L2WriteThroughputGBs(),
        p.stats.Lbi());
    out += line;
  }
  return out;
}

std::string Profiler::SmHistogram(size_t kernel_index, int width) const {
  if (kernel_index >= profiles_.size()) return "";
  const KernelStats& stats = profiles_[kernel_index].stats;
  std::vector<double> busy = stats.sm_busy_cycles;
  std::sort(busy.begin(), busy.end(), std::greater<double>());
  const double max_busy = busy.empty() ? 0.0 : busy.front();
  std::string out;
  char line[160];
  for (size_t i = 0; i < busy.size(); ++i) {
    const int bar =
        max_busy > 0
            ? static_cast<int>(busy[i] / max_busy * width + 0.5)
            : 0;
    std::snprintf(line, sizeof(line), "SM %2zu |%-*s| %5.1f%%\n", i, width,
                  std::string(static_cast<size_t>(bar), '#').c_str(),
                  max_busy > 0 ? 100.0 * busy[i] / max_busy : 0.0);
    out += line;
  }
  return out;
}

void Profiler::ExportMetrics(metrics::Registry* registry,
                             const std::string& prefix) const {
  if (registry == nullptr) return;
  // Duplicate labels within one pipeline (e.g. several merge kernels)
  // get a positional suffix so each keeps its own gauges.
  std::vector<std::string> seen;
  for (const KernelProfile& p : profiles_) {
    std::string label = p.label;
    const size_t duplicates =
        static_cast<size_t>(std::count(seen.begin(), seen.end(), p.label));
    seen.push_back(p.label);
    if (duplicates > 0) label += "#" + std::to_string(duplicates);
    ExportStats(registry, prefix + "." + label, p.stats);
  }
  ExportStats(registry, prefix + ".total", Total());
  registry->SetGauge(prefix + ".kernels",
                     static_cast<double>(profiles_.size()));
}

}  // namespace gpusim
}  // namespace spnet
