// Tests for the sparse::Reorder pre-pass: strategy parsing, permutation
// algebra (round-trips, inversion, composition), builder properties, the
// end-to-end bit-identity promise of every registry reorder variant
// against the unpermuted reference, fingerprint sensitivity, and the
// permutation invariance of the exact-tier classifier bins.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/block_reorganizer.h"
#include "core/reorganizer_config.h"
#include "gpusim/device_spec.h"
#include "sparse/csr_matrix.h"
#include "sparse/fingerprint.h"
#include "sparse/reorder.h"
#include "spgemm/algorithm.h"
#include "spgemm/algorithm_registry.h"
#include "tests/test_util.h"

#include "gtest/gtest.h"

namespace spnet {
namespace {

using sparse::CsrMatrix;
using sparse::Permutation;
using sparse::ReorderStrategy;

/// Exact structural + numeric equality; callers sort rows first when the
/// within-row order is not already canonical.
void ExpectBitIdentical(const CsrMatrix& a, const CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(a.ptr(), b.ptr());
  EXPECT_EQ(a.indices(), b.indices());
  EXPECT_EQ(a.values(), b.values());
}

std::vector<ReorderStrategy> NonTrivialStrategies() {
  std::vector<ReorderStrategy> out;
  for (ReorderStrategy s : sparse::AllReorderStrategies()) {
    if (s != ReorderStrategy::kNone) out.push_back(s);
  }
  return out;
}

TEST(ReorderStrategyTest, NamesRoundTrip) {
  for (ReorderStrategy s : sparse::AllReorderStrategies()) {
    auto parsed = sparse::ParseReorderStrategy(sparse::ReorderStrategyName(s));
    ASSERT_TRUE(parsed.ok()) << sparse::ReorderStrategyName(s);
    EXPECT_EQ(*parsed, s);
  }
  auto bad = sparse::ParseReorderStrategy("sorted-by-vibes");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(PermutationTest, FromNewToOldRejectsNonBijections) {
  EXPECT_FALSE(Permutation::FromNewToOld({0, 2}).ok());   // out of range
  EXPECT_FALSE(Permutation::FromNewToOld({0, 0}).ok());   // duplicate
  EXPECT_FALSE(Permutation::FromNewToOld({1, -1}).ok());  // negative
  auto ok = Permutation::FromNewToOld({1, 0});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 2);
  EXPECT_FALSE(ok->IsIdentity());
}

TEST(PermutationTest, IdentityIsIdentity) {
  const Permutation id = Permutation::Identity(5);
  EXPECT_TRUE(id.IsIdentity());
  EXPECT_TRUE(id.Inverse().IsIdentity());
  for (sparse::Index i = 0; i < 5; ++i) {
    EXPECT_EQ(id.OldOf(i), i);
    EXPECT_EQ(id.NewOf(i), i);
  }
}

TEST(PermutationTest, InverseSwapsDirections) {
  auto p = Permutation::FromNewToOld({2, 0, 3, 1});
  ASSERT_TRUE(p.ok());
  const Permutation inv = p->Inverse();
  for (sparse::Index i = 0; i < p->size(); ++i) {
    EXPECT_EQ(inv.OldOf(i), p->NewOf(i));
    EXPECT_EQ(inv.NewOf(i), p->OldOf(i));
  }
  auto round = Permutation::Compose(inv, *p);
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round->IsIdentity());
}

TEST(PermutationTest, RowApplicationRoundTrips) {
  const CsrMatrix m = testing_util::RandomMatrix(40, 32, 0.12, 17);
  for (ReorderStrategy s : NonTrivialStrategies()) {
    auto p = sparse::BuildRowPermutation(m, s);
    ASSERT_TRUE(p.ok()) << sparse::ReorderStrategyName(s);
    auto permuted = p->ApplyToRows(m);
    ASSERT_TRUE(permuted.ok());
    // Each new row is exactly the original row it points at.
    for (sparse::Index r = 0; r < m.rows(); ++r) {
      const sparse::Index old_row = p->OldOf(r);
      EXPECT_EQ(permuted->ptr()[static_cast<size_t>(r) + 1] -
                    permuted->ptr()[static_cast<size_t>(r)],
                m.ptr()[static_cast<size_t>(old_row) + 1] -
                    m.ptr()[static_cast<size_t>(old_row)]);
    }
    auto restored = p->Inverse().ApplyToRows(*permuted);
    ASSERT_TRUE(restored.ok());
    ExpectBitIdentical(*restored, m);
  }
}

TEST(PermutationTest, ColumnApplicationRoundTrips) {
  const CsrMatrix m = testing_util::RandomMatrix(32, 40, 0.12, 18);
  for (ReorderStrategy s : NonTrivialStrategies()) {
    auto p = sparse::BuildColPermutation(m, s);
    ASSERT_TRUE(p.ok()) << sparse::ReorderStrategyName(s);
    auto permuted = p->ApplyToCols(m);
    ASSERT_TRUE(permuted.ok());
    auto restored = p->Inverse().ApplyToCols(*permuted);
    ASSERT_TRUE(restored.ok());
    // FromCoo produced sorted rows and ApplyToCols re-sorts, so the
    // round trip is exact, values included.
    ExpectBitIdentical(*restored, m);
  }
}

TEST(PermutationTest, ComposeMatchesSequentialApplication) {
  const CsrMatrix m = testing_util::SkewedMatrix(48, 30, 5);
  auto p = sparse::BuildRowPermutation(m, ReorderStrategy::kDegree);
  ASSERT_TRUE(p.ok());
  auto once = p->ApplyToRows(m);
  ASSERT_TRUE(once.ok());
  auto q = sparse::BuildRowPermutation(*once, ReorderStrategy::kRcm);
  ASSERT_TRUE(q.ok());
  auto twice = q->ApplyToRows(*once);
  ASSERT_TRUE(twice.ok());

  auto combined = Permutation::Compose(*q, *p);
  ASSERT_TRUE(combined.ok());
  auto direct = combined->ApplyToRows(m);
  ASSERT_TRUE(direct.ok());
  ExpectBitIdentical(*direct, *twice);

  auto mismatched = Permutation::Compose(*q, Permutation::Identity(3));
  EXPECT_FALSE(mismatched.ok());
}

TEST(PermutationTest, DenseVectorApplication) {
  auto p = Permutation::FromNewToOld({2, 0, 1});
  ASSERT_TRUE(p.ok());
  auto out = p->Apply(std::vector<double>{10.0, 11.0, 12.0});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, (std::vector<double>{12.0, 10.0, 11.0}));
  // Applying p then its inverse is the identity on the vector.
  auto back = p->Inverse().Apply(*out);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, (std::vector<double>{10.0, 11.0, 12.0}));
  EXPECT_FALSE(p->Apply(std::vector<double>{1.0}).ok());
}

TEST(ReorderBuilderTest, DegreeOrderIsDescendingWithStableTies) {
  const CsrMatrix m = testing_util::RandomMatrix(50, 50, 0.08, 23);
  auto p = sparse::BuildRowPermutation(m, ReorderStrategy::kDegree);
  ASSERT_TRUE(p.ok());
  auto nnz_of = [&](sparse::Index row) {
    return m.ptr()[static_cast<size_t>(row) + 1] -
           m.ptr()[static_cast<size_t>(row)];
  };
  for (sparse::Index i = 0; i + 1 < p->size(); ++i) {
    const sparse::Index a = p->OldOf(i);
    const sparse::Index b = p->OldOf(i + 1);
    ASSERT_GE(nnz_of(a), nnz_of(b)) << "position " << i;
    if (nnz_of(a) == nnz_of(b)) EXPECT_LT(a, b) << "tie at position " << i;
  }
}

TEST(ReorderBuilderTest, NoneIsIdentityAndBuildersAreDeterministic) {
  const CsrMatrix m = testing_util::SkewedMatrix(40, 25, 9);
  auto none = sparse::BuildRowPermutation(m, ReorderStrategy::kNone);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->IsIdentity());
  for (ReorderStrategy s : NonTrivialStrategies()) {
    auto first = sparse::BuildRowPermutation(m, s);
    auto second = sparse::BuildRowPermutation(m, s);
    ASSERT_TRUE(first.ok() && second.ok());
    EXPECT_EQ(first->new_to_old(), second->new_to_old())
        << sparse::ReorderStrategyName(s);
  }
}

TEST(ReorderFingerprintTest, PermutedMatrixFingerprintsDiffer) {
  const CsrMatrix m = testing_util::RandomMatrix(60, 60, 0.05, 11);
  const uint64_t original = sparse::StructuralFingerprint(m);
  for (ReorderStrategy s : NonTrivialStrategies()) {
    auto p = sparse::BuildRowPermutation(m, s);
    ASSERT_TRUE(p.ok()) << sparse::ReorderStrategyName(s);
    ASSERT_FALSE(p->IsIdentity()) << sparse::ReorderStrategyName(s);
    auto permuted = p->ApplyToRows(m);
    ASSERT_TRUE(permuted.ok());
    EXPECT_NE(sparse::StructuralFingerprint(*permuted), original)
        << sparse::ReorderStrategyName(s);
  }
}

TEST(ReorderFingerprintTest, ConfigFingerprintsSeparateStrategies) {
  std::vector<uint64_t> fingerprints;
  for (ReorderStrategy s : sparse::AllReorderStrategies()) {
    core::ReorganizerConfig config;
    config.reorder = s;
    fingerprints.push_back(config.Fingerprint());
  }
  std::sort(fingerprints.begin(), fingerprints.end());
  EXPECT_EQ(std::unique(fingerprints.begin(), fingerprints.end()),
            fingerprints.end());
}

/// Every registered reorder ablation variant must produce bit-identical
/// output to the unpermuted "reorganizer" reference — the pass's core
/// promise, here checked through the public registry path the sweep and
/// the CLI use.
TEST(ReorderEndToEndTest, RegistryVariantsAreBitIdentical) {
  core::RegisterCoreAlgorithms();
  auto& registry = spgemm::AlgorithmRegistry::Global();

  CsrMatrix a = testing_util::SkewedMatrix(64, 40, 7);
  CsrMatrix b = testing_util::RandomMatrix(64, 64, 0.08, 9);
  auto reference_algorithm = registry.Create("reorganizer");
  ASSERT_TRUE(reference_algorithm.ok());
  auto reference = (*reference_algorithm)->Compute(a, b, nullptr);
  ASSERT_TRUE(reference.ok());
  reference->SortRows();

  for (const char* name : {"reorganizer-reorder-degree",
                           "reorganizer-reorder-rcm",
                           "reorganizer-reorder-cluster"}) {
    auto algorithm = registry.Create(name);
    ASSERT_TRUE(algorithm.ok()) << name;
    auto result = (*algorithm)->Compute(a, b, nullptr);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    result->SortRows();
    ExpectBitIdentical(*result, *reference);
  }
}

/// The exact-tier classifier is permutation invariant: pair_work depends
/// only on the inner dimension (untouched by the pre-pass) and row C-hat
/// populations are merely relabeled, so every bin census Analyze reports
/// is identical with and without reordering. This is the theory the
/// locality bench (bench_reorder_locality) verifies at scale; shifts can
/// only appear in the estimated tier, whose row sampling is order
/// sensitive.
TEST(ReorderEndToEndTest, ExactTierBinCensusIsPermutationInvariant) {
  const CsrMatrix a = testing_util::SkewedMatrix(80, 50, 13);
  const gpusim::DeviceSpec device = gpusim::DeviceSpec::TitanXp();

  core::ReorganizerConfig baseline_config;
  const core::BlockReorganizerSpGemm baseline(baseline_config);
  auto expected = baseline.Analyze(a, a, device);
  ASSERT_TRUE(expected.ok());

  for (ReorderStrategy s : NonTrivialStrategies()) {
    core::ReorganizerConfig config;
    config.reorder = s;
    const core::BlockReorganizerSpGemm reordered(config);
    auto report = reordered.Analyze(a, a, device);
    ASSERT_TRUE(report.ok()) << sparse::ReorderStrategyName(s);
    EXPECT_EQ(report->nonzero_pairs, expected->nonzero_pairs);
    EXPECT_EQ(report->dominators, expected->dominators);
    EXPECT_EQ(report->low_performers, expected->low_performers);
    EXPECT_EQ(report->normals, expected->normals);
    EXPECT_EQ(report->limited_rows, expected->limited_rows);
    EXPECT_EQ(report->fragments, expected->fragments);
    EXPECT_EQ(report->dominator_threshold, expected->dominator_threshold);
    EXPECT_EQ(report->limit_row_threshold, expected->limit_row_threshold);
  }
}

}  // namespace
}  // namespace spnet
