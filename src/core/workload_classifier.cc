#include "core/workload_classifier.h"

#include <algorithm>
#include <limits>

#include "common/parallel.h"
#include "spgemm/exec_context.h"

namespace spnet {
namespace core {

using sparse::Index;

namespace {

/// Per-chunk classification buckets; concatenated in chunk order so the
/// parallel classification emits pairs in exactly the serial order.
struct ChunkBuckets {
  std::vector<Index> dominators;
  std::vector<Index> low_performers;
  std::vector<Index> normals;
  std::vector<Index> limited_rows;
};

void AppendTo(std::vector<Index>* out, const std::vector<Index>& chunk) {
  out->insert(out->end(), chunk.begin(), chunk.end());
}

/// Converts `multiplier * mean` into an integer threshold, clamped to
/// [1, INT64_MAX] in the double domain. The clamp must happen before the
/// cast: double -> int64 conversion of an out-of-range value is undefined
/// behavior, and on x86 it produces INT64_MIN — which the old max(1, ...)
/// then "clamped" to 1, silently classifying nearly every pair as a
/// dominator whenever alpha (or beta) was cranked up for a sweep.
int64_t ThresholdFromMean(double multiplier, double mean) {
  const double t = multiplier * mean;
  if (!(t >= 1.0)) return 1;  // also catches NaN
  // 2^63 rounded to the nearest double below it; anything >= is saturated.
  constexpr double kMaxExact = 9223372036854774784.0;
  if (t >= kMaxExact) return std::numeric_limits<int64_t>::max();
  return static_cast<int64_t>(t);
}

}  // namespace

Classification Classify(const spgemm::Workload& workload,
                        const ReorganizerConfig& config,
                        spgemm::ExecContext* ctx) {
  metrics::ScopedSpan span(spgemm::TraceOf(ctx), "classify");
  Classification c;
  ThreadPool& pool = GlobalThreadPool();
  const int64_t pairs = static_cast<int64_t>(workload.pair_work.size());
  const int64_t rows = static_cast<int64_t>(workload.row_chat.size());
  const int64_t pair_grain = GrainForItems(pairs, pool.threads());
  const int64_t row_grain = GrainForItems(rows, pool.threads());

  const int64_t nonzero_pairs = pool.ParallelReduce(
      0, pairs, pair_grain, int64_t{0},
      [&](int64_t begin, int64_t end, int) {
        int64_t n = 0;
        for (int64_t i = begin; i < end; ++i) {
          if (workload.pair_work[static_cast<size_t>(i)] > 0) ++n;
        }
        return n;
      },
      [](int64_t acc, int64_t partial) { return acc + partial; });
  const double mean_pair_work =
      nonzero_pairs > 0
          ? static_cast<double>(workload.flops) /
                static_cast<double>(nonzero_pairs)
          : 0.0;
  c.dominator_threshold = ThresholdFromMean(config.alpha, mean_pair_work);

  const int64_t nonzero_rows = pool.ParallelReduce(
      0, rows, row_grain, int64_t{0},
      [&](int64_t begin, int64_t end, int) {
        int64_t n = 0;
        for (int64_t r = begin; r < end; ++r) {
          if (workload.row_chat[static_cast<size_t>(r)] > 0) ++n;
        }
        return n;
      },
      [](int64_t acc, int64_t partial) { return acc + partial; });
  const double mean_row_chat =
      nonzero_rows > 0 ? static_cast<double>(workload.flops) /
                             static_cast<double>(nonzero_rows)
                       : 0.0;
  c.limit_row_threshold = ThresholdFromMean(config.beta, mean_row_chat);

  // Bucket the pairs and rows chunk-locally, then concatenate the chunks
  // in range order — the same sequence the serial scan produced.
  ChunkBuckets buckets = pool.ParallelReduce(
      0, pairs, pair_grain, ChunkBuckets{},
      [&](int64_t begin, int64_t end, int) {
        ChunkBuckets local;
        for (int64_t i = begin; i < end; ++i) {
          const int64_t work = workload.pair_work[static_cast<size_t>(i)];
          if (work == 0) continue;
          const Index pair = static_cast<Index>(i);
          if (work > c.dominator_threshold) {
            local.dominators.push_back(pair);
          } else if (workload.b_row_nnz[static_cast<size_t>(i)] < 32) {
            local.low_performers.push_back(pair);
          } else {
            local.normals.push_back(pair);
          }
        }
        return local;
      },
      [](ChunkBuckets acc, ChunkBuckets partial) {
        AppendTo(&acc.dominators, partial.dominators);
        AppendTo(&acc.low_performers, partial.low_performers);
        AppendTo(&acc.normals, partial.normals);
        return acc;
      });
  c.dominators = std::move(buckets.dominators);
  c.low_performers = std::move(buckets.low_performers);
  c.normals = std::move(buckets.normals);

  c.limited_rows = pool.ParallelReduce(
      0, rows, row_grain, std::vector<Index>{},
      [&](int64_t begin, int64_t end, int) {
        std::vector<Index> local;
        for (int64_t r = begin; r < end; ++r) {
          if (workload.row_chat[static_cast<size_t>(r)] >
              c.limit_row_threshold) {
            local.push_back(static_cast<Index>(r));
          }
        }
        return local;
      },
      [](std::vector<Index> acc, std::vector<Index> partial) {
        AppendTo(&acc, partial);
        return acc;
      });

  spgemm::SetGauge(ctx, "classifier.nonzero_pairs",
                   static_cast<double>(nonzero_pairs));
  spgemm::SetGauge(ctx, "classifier.dominators",
                   static_cast<double>(c.dominators.size()));
  spgemm::SetGauge(ctx, "classifier.low_performers",
                   static_cast<double>(c.low_performers.size()));
  spgemm::SetGauge(ctx, "classifier.normals",
                   static_cast<double>(c.normals.size()));
  spgemm::SetGauge(ctx, "classifier.limited_rows",
                   static_cast<double>(c.limited_rows.size()));
  spgemm::SetGauge(ctx, "classifier.dominator_threshold",
                   static_cast<double>(c.dominator_threshold));
  spgemm::SetGauge(ctx, "classifier.limit_row_threshold",
                   static_cast<double>(c.limit_row_threshold));
  return c;
}

}  // namespace core
}  // namespace spnet
