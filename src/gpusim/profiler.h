#ifndef SPNET_GPUSIM_PROFILER_H_
#define SPNET_GPUSIM_PROFILER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "gpusim/kernel_desc.h"
#include "gpusim/kernel_stats.h"
#include "gpusim/simulator.h"

namespace spnet {
namespace metrics {
class Registry;
}  // namespace metrics

namespace gpusim {

/// One kernel's line in a profile report.
struct KernelProfile {
  std::string label;
  Phase phase = Phase::kExpansion;
  KernelStats stats;
};

/// The simulator's answer to an nvprof session: per-kernel profiles for a
/// pipeline, plus report formatting.
class Profiler {
 public:
  explicit Profiler(DeviceSpec device) : simulator_(std::move(device)) {}

  /// Runs every kernel and records its profile.
  Status Profile(const std::vector<KernelDesc>& kernels);

  const std::vector<KernelProfile>& profiles() const { return profiles_; }

  /// Aggregate over all profiled kernels.
  KernelStats Total() const;

  /// nvprof-style text table: one row per kernel with time share, block
  /// count, stalls, memory throughput and LBI.
  std::string ReportTable() const;

  /// ASCII per-SM busy histogram of the given kernel (index into
  /// profiles()), the Figure 3(a)-style view. `width` is the bar length of
  /// the busiest SM.
  std::string SmHistogram(size_t kernel_index, int width = 40) const;

  /// Publishes the recorded profiles into a metrics registry under
  /// `<prefix>.<kernel-label>.*` gauges (cycles, milliseconds, blocks,
  /// occupancy, sync-stall fraction, L2 throughput, LBI) plus
  /// `<prefix>.total.*` aggregates. Takes a Registry rather than an
  /// ExecContext because gpusim sits below the spgemm layer; callers pass
  /// `&ctx->registry`. No-op when `registry` is null.
  void ExportMetrics(metrics::Registry* registry,
                     const std::string& prefix = "profiler") const;

 private:
  Simulator simulator_;
  std::vector<KernelProfile> profiles_;
};

}  // namespace gpusim
}  // namespace spnet

#endif  // SPNET_GPUSIM_PROFILER_H_
