#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/batch_runner.h"
#include "engine/manifest.h"
#include "engine/plan_cache.h"
#include "sparse/fingerprint.h"
#include "spgemm/exec_context.h"
#include "tests/test_util.h"

namespace spnet {
namespace engine {
namespace {

using sparse::CsrMatrix;
using sparse::StructuralFingerprint;

std::shared_ptr<const CsrMatrix> SharedSkewed(sparse::Index n,
                                              sparse::Index hub_nnz,
                                              uint64_t seed) {
  return std::make_shared<const CsrMatrix>(
      testing_util::SkewedMatrix(n, hub_nnz, seed));
}

spgemm::SpGemmPlan DummyPlan(int64_t flops) {
  spgemm::SpGemmPlan plan;
  plan.flops = flops;
  plan.output_nnz = flops;
  return plan;
}

// ---------------------------------------------------------------- fingerprint

TEST(FingerprintTest, StableAcrossIdenticalBuilds) {
  const CsrMatrix a = testing_util::SkewedMatrix(64, 32, 7);
  const CsrMatrix b = testing_util::SkewedMatrix(64, 32, 7);
  EXPECT_EQ(StructuralFingerprint(a), StructuralFingerprint(b));
}

TEST(FingerprintTest, IgnoresValues) {
  const CsrMatrix a = testing_util::SkewedMatrix(64, 32, 7);
  // Same structure, different numerics.
  std::vector<sparse::Value> doubled(a.values());
  for (sparse::Value& v : doubled) v *= 2.0;
  auto b = CsrMatrix::FromParts(a.rows(), a.cols(), a.ptr(), a.indices(),
                                std::move(doubled));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(StructuralFingerprint(a), StructuralFingerprint(*b));
}

TEST(FingerprintTest, EmptyMatrixSpellingsShareAKey) {
  // A default-constructed matrix stores an empty ptr array; builder-built
  // empties carry rows()+1 zeros. Same logical structure, same key.
  const CsrMatrix default_built;
  sparse::CooMatrix coo(0, 0);
  auto builder_built = CsrMatrix::FromCoo(coo);
  ASSERT_TRUE(builder_built.ok());
  EXPECT_EQ(StructuralFingerprint(default_built),
            StructuralFingerprint(*builder_built));
}

TEST(FingerprintTest, EmptyMatricesOfDifferentShapesDiffer) {
  sparse::CooMatrix coo3(3, 3);
  sparse::CooMatrix coo4(4, 4);
  sparse::CooMatrix coo34(3, 4);
  auto m3 = CsrMatrix::FromCoo(coo3);
  auto m4 = CsrMatrix::FromCoo(coo4);
  auto m34 = CsrMatrix::FromCoo(coo34);
  ASSERT_TRUE(m3.ok() && m4.ok() && m34.ok());
  EXPECT_NE(StructuralFingerprint(*m3), StructuralFingerprint(*m4));
  EXPECT_NE(StructuralFingerprint(*m3), StructuralFingerprint(*m34));
}

TEST(FingerprintTest, EmptyAndNearEmptyDiffer) {
  sparse::CooMatrix empty(3, 3);
  sparse::CooMatrix one(3, 3);
  one.Add(1, 1, 5.0);
  auto a = CsrMatrix::FromCoo(empty);
  auto b = CsrMatrix::FromCoo(one);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(StructuralFingerprint(*a), StructuralFingerprint(*b));
}

TEST(FingerprintTest, DistinguishesStructures) {
  const CsrMatrix a = testing_util::SkewedMatrix(64, 32, 7);
  const CsrMatrix b = testing_util::SkewedMatrix(64, 32, 8);
  const CsrMatrix c = testing_util::SkewedMatrix(65, 32, 7);
  EXPECT_NE(StructuralFingerprint(a), StructuralFingerprint(b));
  EXPECT_NE(StructuralFingerprint(a), StructuralFingerprint(c));
}

TEST(FingerprintTest, DistinguishesDimsOfEmptyMatrices) {
  // Same (empty) arrays, different dimensions: dims must be hashed too.
  auto a = CsrMatrix::FromParts(0, 5, {0}, {}, {});
  auto b = CsrMatrix::FromParts(0, 6, {0}, {}, {});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(StructuralFingerprint(*a), StructuralFingerprint(*b));
}

TEST(FingerprintTest, CombineIsOrderSensitive) {
  EXPECT_NE(sparse::CombineFingerprints(1, 2),
            sparse::CombineFingerprints(2, 1));
}

// ----------------------------------------------------------------- plan cache

TEST(PlanCacheTest, LruEvictionOrder) {
  PlanCache cache(2);
  const PlanKey k1{1, 1, "x", 0};
  const PlanKey k2{2, 2, "x", 0};
  const PlanKey k3{3, 3, "x", 0};
  cache.Insert(k1, DummyPlan(1));
  cache.Insert(k2, DummyPlan(2));
  // Touch k1 so k2 becomes the least recently used entry.
  ASSERT_NE(cache.Lookup(k1), nullptr);
  cache.Insert(k3, DummyPlan(3));

  EXPECT_EQ(cache.Lookup(k2), nullptr);  // evicted
  auto p1 = cache.Lookup(k1);
  auto p3 = cache.Lookup(k3);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p3, nullptr);
  EXPECT_EQ(p1->flops, 1);
  EXPECT_EQ(p3->flops, 3);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, CapacityZeroDisablesCaching) {
  PlanCache cache(0);
  const PlanKey k{1, 1, "x", 0};
  auto inserted = cache.Insert(k, DummyPlan(1));
  ASSERT_NE(inserted, nullptr);  // caller still gets the shared plan
  EXPECT_EQ(cache.Lookup(k), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCacheTest, KeysDifferingOnlyInConfigAreDistinct) {
  PlanCache cache(4);
  const PlanKey k1{1, 1, "reorganizer", 10};
  const PlanKey k2{1, 1, "reorganizer", 11};
  cache.Insert(k1, DummyPlan(1));
  EXPECT_EQ(cache.Lookup(k2), nullptr);
  EXPECT_NE(cache.Lookup(k1), nullptr);
}

TEST(PlanCacheTest, RecordsCountersOnContext) {
  spgemm::ExecContext ctx;
  PlanCache cache(1);
  const PlanKey k1{1, 1, "x", 0};
  const PlanKey k2{2, 2, "x", 0};
  EXPECT_EQ(cache.Lookup(k1, &ctx), nullptr);  // miss
  cache.Insert(k1, DummyPlan(1), &ctx);
  EXPECT_NE(cache.Lookup(k1, &ctx), nullptr);  // hit
  cache.Insert(k2, DummyPlan(2), &ctx);        // evicts k1

  const auto snapshot = ctx.registry.Snapshot();
  EXPECT_EQ(snapshot.at("engine.plan_cache.miss"), 1);
  EXPECT_EQ(snapshot.at("engine.plan_cache.hit"), 1);
  EXPECT_EQ(snapshot.at("engine.plan_cache.evict"), 1);
}

TEST(PlanCacheTest, RefusesLowConfidencePlansButStillServesThem) {
  spgemm::ExecContext ctx;
  PlanCache cache(4, /*shards=*/1, /*min_confidence=*/0.5);
  const PlanKey k{1, 1, "x", 0};
  spgemm::SpGemmPlan low = DummyPlan(7);
  low.confidence = 0.2;
  auto served = cache.Insert(k, std::move(low), &ctx);
  // The caller still gets its plan in shared form — rejection only means
  // a lucky low-confidence estimate cannot become every future query's
  // plan.
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->flops, 7);
  EXPECT_EQ(cache.Lookup(k), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.rejected_low_confidence(), 1);
  const auto snapshot = ctx.registry.Snapshot();
  EXPECT_EQ(snapshot.at("engine.plan_cache.reject_low_confidence"), 1);

  // At the floor is admitted; the floor is exclusive below only.
  spgemm::SpGemmPlan confident = DummyPlan(9);
  confident.confidence = 0.5;
  cache.Insert(k, std::move(confident), &ctx);
  auto hit = cache.Lookup(k);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->flops, 9);
  EXPECT_EQ(cache.rejected_low_confidence(), 1);
}

TEST(PlanCacheTest, ShardedCacheAggregatesCountersGlobally) {
  // 4 shards, capacity 8: per-shard LRU, but hits/misses/evictions must
  // aggregate across shards so BENCH_engine_batch.json consumers see the
  // same totals a single-shard cache reports.
  PlanCache cache(8, /*shards=*/4);
  EXPECT_EQ(cache.shards(), 4u);
  for (uint64_t i = 0; i < 8; ++i) {
    const PlanKey k{i + 1, i + 1, "x", 0};
    EXPECT_EQ(cache.Lookup(k), nullptr);  // miss
    cache.Insert(k, DummyPlan(static_cast<int64_t>(i)));
    EXPECT_NE(cache.Lookup(k), nullptr);  // hit
  }
  EXPECT_EQ(cache.misses(), 8);
  EXPECT_EQ(cache.hits(), 8);
  // Keys hash unevenly across shards, so a hot shard may already have
  // evicted; the books must still balance globally.
  EXPECT_EQ(cache.size(),
            8u - static_cast<size_t>(cache.evictions()));
  // Push enough new keys to overflow every shard's share of the capacity.
  for (uint64_t i = 100; i < 132; ++i) {
    cache.Insert(PlanKey{i, i, "x", 0}, DummyPlan(1));
  }
  EXPECT_GT(cache.evictions(), 0);
  // Shards never grow past the distributed capacity, and every insert is
  // either resident or evicted.
  EXPECT_LE(cache.size(), 8u);
  EXPECT_EQ(cache.size(), 40u - static_cast<size_t>(cache.evictions()));
}

TEST(PlanCacheTest, SingleShardKeepsExactGlobalLru) {
  // The default shard count must preserve the exact global LRU order the
  // legacy tests (LruEvictionOrder above) rely on.
  PlanCache cache(2);
  EXPECT_EQ(cache.shards(), 1u);
}

// -------------------------------------------------------------- request API

TEST(RequestBuilderTest, BuildsValidatedRequests) {
  const auto m = SharedSkewed(64, 16, 3);
  auto request = RequestBuilder()
                     .Id("r1")
                     .Tenant("team-a")
                     .Priority(2)
                     .DeadlineMs(125.0)
                     .Algorithm("reorganizer")
                     .OperandA(m)
                     .Build();
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->schema_version, kRequestSchemaVersion);
  EXPECT_EQ(request->id, "r1");
  EXPECT_EQ(request->tenant, "team-a");
  EXPECT_EQ(request->priority, 2);
  EXPECT_DOUBLE_EQ(request->deadline_ms, 125.0);
  EXPECT_EQ(request->a.get(), m.get());
}

TEST(RequestBuilderTest, RejectsIncompleteRequests) {
  const auto m = SharedSkewed(64, 16, 3);
  EXPECT_EQ(RequestBuilder().OperandA(m).Build().status().code(),
            StatusCode::kInvalidArgument);  // no id
  EXPECT_EQ(RequestBuilder().Id("r").Build().status().code(),
            StatusCode::kInvalidArgument);  // no A matrix
  EXPECT_EQ(RequestBuilder().Id("r").OperandA(m).Algorithm("").Build()
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // empty algorithm
}

TEST(RequestBuilderTest, NegativeDeadlineNormalizesToInherit) {
  const auto m = SharedSkewed(64, 16, 3);
  auto request =
      RequestBuilder().Id("r").OperandA(m).DeadlineMs(-5.0).Build();
  ASSERT_TRUE(request.ok());
  EXPECT_DOUBLE_EQ(request->deadline_ms, Request::kInheritDeadline);
}

TEST(RequestApiTest, ExecuteRejectsWrongSchemaVersion) {
  const auto m = SharedSkewed(64, 16, 3);
  auto request = RequestBuilder().Id("r").OperandA(m).Build();
  ASSERT_TRUE(request.ok());
  request->schema_version = 99;
  BatchRunner runner(BatchOptions{});
  auto report = runner.Execute({*request});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------- batch runner

std::vector<BatchQuery> RepeatedQueries(
    const std::shared_ptr<const CsrMatrix>& m, int n,
    const std::string& algorithm) {
  std::vector<BatchQuery> queries;
  for (int i = 0; i < n; ++i) {
    // spnet-lint: allow(legacy-batch-query) -- legacy-adapter coverage
    BatchQuery q;
    q.id = "q" + std::to_string(i);
    q.a = m;
    q.algorithm = algorithm;
    queries.push_back(std::move(q));
  }
  return queries;
}

TEST(RequestApiTest, LegacyRunAdapterMatchesExecute) {
  // The deprecated BatchQuery surface must be a pure adapter: same
  // engine, same measurements, translated report shape.
  const auto m = SharedSkewed(150, 48, 5);
  BatchRunner modern(BatchOptions{});
  BatchRunner legacy(BatchOptions{});

  auto request =
      RequestBuilder().Id("q0").Algorithm("reorganizer").OperandA(m).Build();
  ASSERT_TRUE(request.ok());
  auto execution = modern.Execute({*request});
  auto report = legacy.Run(RepeatedQueries(m, 1, "reorganizer"));
  ASSERT_TRUE(execution.ok() && report.ok());
  ASSERT_EQ(execution->responses.size(), 1u);
  ASSERT_EQ(report->results.size(), 1u);
  const Response& r = execution->responses[0];
  const QueryResult& q = report->results[0];
  EXPECT_EQ(q.id, r.id);
  EXPECT_DOUBLE_EQ(q.sim_ms, r.sim_ms);
  EXPECT_EQ(q.flops, r.flops);
  EXPECT_EQ(q.output_nnz, r.output_nnz);
  EXPECT_EQ(report->succeeded, execution->succeeded);
}

TEST(BatchRunnerTest, CacheHitShortCircuitsPlanning) {
  const auto m = SharedSkewed(200, 64, 3);
  BatchOptions options;
  options.plan_cache_capacity = 8;
  BatchRunner runner(options);
  spgemm::ExecContext ctx;

  auto report = runner.Run(RepeatedQueries(m, 4, "reorganizer"), &ctx);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->succeeded, 4);
  EXPECT_EQ(report->failed, 0);
  // Concurrent identical queries may race the first insert, so the exact
  // hit/miss split is not deterministic — but every query either hit or
  // missed, and at least one miss planned the structure.
  EXPECT_EQ(report->plan_cache_hits + report->plan_cache_misses, 4);
  EXPECT_GE(report->plan_cache_misses, 1);
  for (const QueryResult& r : report->results) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.algorithm_used, "reorganizer");
    EXPECT_FALSE(r.fallback_used);
    // Planning is deterministic, so hit or miss the simulation agrees.
    EXPECT_DOUBLE_EQ(r.sim_ms, report->results[0].sim_ms);
  }

  // A second (warm) batch short-circuits planning on every query.
  auto warm = runner.Run(RepeatedQueries(m, 4, "reorganizer"), &ctx);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->plan_cache_misses, 0);
  EXPECT_EQ(warm->plan_cache_hits, 4);
  for (const QueryResult& r : warm->results) {
    EXPECT_TRUE(r.plan_cache_hit);
    EXPECT_DOUBLE_EQ(r.sim_ms, report->results[0].sim_ms);
  }

  // The counters surfaced through the ExecContext registry too.
  const auto snapshot = ctx.registry.Snapshot();
  EXPECT_GE(snapshot.at("engine.plan_cache.hit"), 4);
  EXPECT_GE(snapshot.at("engine.plan_cache.miss"), 1);
}

TEST(BatchRunnerTest, CachedResultsAgreeWithUncached) {
  const auto m = SharedSkewed(150, 48, 5);
  BatchOptions cached_options;
  cached_options.plan_cache_capacity = 8;
  BatchRunner cached(cached_options);
  BatchOptions uncached_options;
  uncached_options.plan_cache_capacity = 0;
  BatchRunner uncached(uncached_options);

  auto a = cached.Run(RepeatedQueries(m, 3, "reorganizer"));
  auto b = uncached.Run(RepeatedQueries(m, 3, "reorganizer"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(b->plan_cache_hits, 0);
  for (size_t i = 0; i < a->results.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->results[i].sim_ms, b->results[i].sim_ms);
    EXPECT_EQ(a->results[i].flops, b->results[i].flops);
    EXPECT_EQ(a->results[i].output_nnz, b->results[i].output_nnz);
  }
}

TEST(BatchRunnerTest, ConfidenceFloorAboveOneDisablesCachingEntirely) {
  // plan_min_confidence above every achievable confidence (exact plans
  // report 1.0) turns the cache into a pure reject path: every insert is
  // refused, the warm batch re-plans, and the report surfaces the count.
  const auto m = SharedSkewed(150, 48, 7);
  BatchOptions options;
  options.plan_cache_capacity = 8;
  options.plan_min_confidence = 1.5;
  BatchRunner runner(options);
  std::vector<Request> requests;
  for (int i = 0; i < 3; ++i) {
    auto request = RequestBuilder()
                       .Id("q" + std::to_string(i))
                       .Algorithm("reorganizer")
                       .OperandA(m)
                       .Build();
    ASSERT_TRUE(request.ok()) << request.status().ToString();
    requests.push_back(std::move(request).value());
  }
  auto cold = runner.Execute(requests);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->failed, 0);
  EXPECT_EQ(cold->plan_cache_rejected_low_confidence, 3);
  auto warm = runner.Execute(requests);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->plan_cache_hits, 0);
  EXPECT_EQ(warm->plan_cache_rejected_low_confidence, 3);
}

TEST(BatchRunnerTest, EstimatedTierAgreesWithExactTier) {
  // The estimated planning tier must be an implementation detail of
  // planning cost: simulated results and plan math match the exact tier.
  const auto m = SharedSkewed(200, 64, 3);
  BatchOptions exact_options;
  BatchRunner exact(exact_options);
  BatchOptions estimated_options;
  estimated_options.reorganizer_config.planning_tier =
      core::PlanningTier::kEstimated;
  BatchRunner estimated(estimated_options);

  auto a = exact.Run(RepeatedQueries(m, 2, "reorganizer"));
  auto b = estimated.Run(RepeatedQueries(m, 2, "reorganizer"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->failed, 0);
  EXPECT_EQ(b->failed, 0);
  ASSERT_EQ(a->results.size(), b->results.size());
  for (size_t i = 0; i < a->results.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->results[i].sim_ms, b->results[i].sim_ms);
    EXPECT_EQ(a->results[i].flops, b->results[i].flops);
    EXPECT_EQ(a->results[i].output_nnz, b->results[i].output_nnz);
  }
}

TEST(BatchRunnerTest, DeadlineExpiryIsPerQuery) {
  const auto m = SharedSkewed(200, 64, 3);
  BatchRunner runner(BatchOptions{});

  std::vector<BatchQuery> queries = RepeatedQueries(m, 2, "reorganizer");
  // Sub-microsecond budget: expires at the first deadline check. The other
  // query keeps its default (no deadline) and must be unaffected.
  queries[0].deadline_ms = 1e-6;

  auto report = runner.Run(queries);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->deadline_expired, 1);
  EXPECT_EQ(report->succeeded, 1);
  EXPECT_EQ(report->failed, 0);
  EXPECT_EQ(report->results[0].status.code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(report->results[1].status.ok());
  EXPECT_GT(report->results[1].sim_ms, 0.0);
}

TEST(BatchRunnerTest, ZeroDeadlineIsBornExpired) {
  const auto m = SharedSkewed(200, 64, 3);
  BatchRunner runner(BatchOptions{});

  std::vector<BatchQuery> queries = RepeatedQueries(m, 2, "reorganizer");
  // 0 is an explicit already-expired budget, not "no deadline".
  queries[0].deadline_ms = 0.0;

  auto report = runner.Run(queries);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->deadline_expired, 1);
  EXPECT_EQ(report->results[0].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(report->results[0].sim_ms, 0.0);  // expired before any work
  EXPECT_TRUE(report->results[1].status.ok());
}

TEST(BatchRunnerTest, DefaultDeadlineIsInheritedNotOverridden) {
  const auto m = SharedSkewed(200, 64, 3);
  BatchOptions options;
  options.default_deadline_ms = 1e-6;  // expires at the first check
  BatchRunner runner(options);

  std::vector<BatchQuery> queries = RepeatedQueries(m, 2, "reorganizer");
  EXPECT_EQ(queries[0].deadline_ms, BatchQuery::kInheritDeadline);
  // An explicit per-query budget beats the batch default.
  queries[1].deadline_ms = 1e9;

  auto report = runner.Run(queries);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->results[0].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(report->results[1].status.ok());
}

TEST(BatchRunnerTest, InvalidReorganizerConfigFallsBackToBaseline) {
  const auto m = SharedSkewed(150, 48, 5);
  BatchOptions options;
  options.reorganizer_config.alpha = -1.0;  // MakeBlockReorganizer refuses
  options.fallback_algorithm = "outer-product";
  BatchRunner runner(options);
  spgemm::ExecContext ctx;

  auto report = runner.Run(RepeatedQueries(m, 2, "reorganizer"), &ctx);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->succeeded, 2);
  EXPECT_EQ(report->fallbacks, 2);
  for (const QueryResult& r : report->results) {
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.fallback_used);
    EXPECT_EQ(r.algorithm_used, "outer-product");
    EXPECT_GT(r.sim_ms, 0.0);
  }
  EXPECT_EQ(ctx.registry.Snapshot().at("engine.batch.fallback"), 2);
}

TEST(BatchRunnerTest, UnknownAlgorithmFallsBackToBaseline) {
  const auto m = SharedSkewed(100, 32, 9);
  BatchRunner runner(BatchOptions{});
  auto report = runner.Run(RepeatedQueries(m, 1, "no-such-algorithm"));
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->results.size(), 1u);
  EXPECT_TRUE(report->results[0].status.ok());
  EXPECT_TRUE(report->results[0].fallback_used);
  EXPECT_EQ(report->results[0].algorithm_used, "outer-product");
}

TEST(BatchRunnerTest, UnbuildableFallbackFailsTheRun) {
  const auto m = SharedSkewed(100, 32, 9);
  BatchOptions options;
  options.fallback_algorithm = "no-such-algorithm";
  BatchRunner runner(options);
  auto report = runner.Run(RepeatedQueries(m, 1, "reorganizer"));
  EXPECT_FALSE(report.ok());
}

TEST(BatchRunnerTest, EmptyBatchIsOk) {
  BatchRunner runner(BatchOptions{});
  auto report = runner.Run({});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->results.empty());
  EXPECT_EQ(report->succeeded, 0);
}

TEST(BatchRunnerTest, MissingMatrixIsInvalidArgument) {
  BatchRunner runner(BatchOptions{});
  // spnet-lint: allow(legacy-batch-query) -- legacy-adapter coverage
  BatchQuery q;
  q.id = "no-matrix";
  auto report = runner.Run({q});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------------- manifest

TEST(ManifestTest, ParsesEntriesCommentsAndRepeats) {
  auto entries = ParseManifest(
      "# production-ish mix\n"
      "as-caida reorganizer 3\n"
      "\n"
      "emailEnron row-product   # inline comment\n"
      "graphs/web.mtx\n");
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0].source, "as-caida");
  EXPECT_EQ((*entries)[0].algorithm, "reorganizer");
  EXPECT_EQ((*entries)[0].repeat, 3);
  EXPECT_EQ((*entries)[1].algorithm, "row-product");
  EXPECT_EQ((*entries)[1].repeat, 1);
  EXPECT_EQ((*entries)[2].source, "graphs/web.mtx");
  EXPECT_EQ((*entries)[2].algorithm, "reorganizer");
}

TEST(ManifestTest, StripsTrailingCarriageReturns) {
  // Windows-edited manifests carry \r\n line endings; the \r must not
  // stick to the last token of each line.
  auto entries = ParseManifest(
      "as-caida reorganizer 3\r\n"
      "emailEnron row-product\r\n"
      "graphs/web.mtx\r\n");
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0].repeat, 3);
  EXPECT_EQ((*entries)[1].algorithm, "row-product");
  EXPECT_EQ((*entries)[2].source, "graphs/web.mtx");
}

TEST(ManifestTest, RejectsMalformedRepeat) {
  EXPECT_FALSE(ParseManifest("as-caida reorganizer zero\n").ok());
  EXPECT_FALSE(ParseManifest("as-caida reorganizer 0\n").ok());
  EXPECT_FALSE(ParseManifest("as-caida reorganizer -2\n").ok());
  EXPECT_FALSE(ParseManifest("as-caida reorganizer 2 extra\n").ok());
}

TEST(ManifestTest, BuildQueriesSharesRepeatedSources) {
  std::vector<ManifestEntry> entries;
  entries.push_back({"as-caida", "reorganizer", 2});
  entries.push_back({"as-caida", "row-product", 1});
  ManifestLoadOptions options;
  options.scale = 0.05;
  auto queries = BuildQueries(entries, options);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  ASSERT_EQ(queries->size(), 3u);
  // One load, shared by all three queries.
  EXPECT_EQ((*queries)[0].a.get(), (*queries)[1].a.get());
  EXPECT_EQ((*queries)[0].a.get(), (*queries)[2].a.get());
  EXPECT_EQ((*queries)[0].id, "as-caida:reorganizer#0");
  EXPECT_EQ((*queries)[2].algorithm, "row-product");
}

TEST(ManifestTest, MissingSourceFailsBuild) {
  std::vector<ManifestEntry> entries;
  entries.push_back({"no-such-dataset", "reorganizer", 1});
  auto queries = BuildQueries(entries, ManifestLoadOptions{});
  EXPECT_FALSE(queries.ok());
}

}  // namespace
}  // namespace engine
}  // namespace spnet
