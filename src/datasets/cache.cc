#include "datasets/cache.h"

#include <cstdio>

#include "sparse/serialization.h"

namespace spnet {
namespace datasets {

std::string CachePath(const RealWorldSpec& spec, double scale,
                      const std::string& cache_dir, uint64_t seed) {
  char suffix[96];
  std::snprintf(suffix, sizeof(suffix), "_s%.4f_seed%llu.spnb", scale,
                static_cast<unsigned long long>(seed));
  return cache_dir + "/" + spec.name + suffix;
}

Result<sparse::CsrMatrix> MaterializeCached(const RealWorldSpec& spec,
                                            double scale,
                                            const std::string& cache_dir,
                                            uint64_t seed) {
  if (cache_dir.empty()) {
    return Materialize(spec, scale, seed);
  }
  const std::string path = CachePath(spec, scale, cache_dir, seed);
  auto cached = sparse::ReadBinary(path);
  if (cached.ok()) {
    return cached;
  }
  // Miss (or a corrupted entry): regenerate and try to refresh the cache.
  // A failed write is non-fatal — the generated matrix is still returned.
  SPNET_ASSIGN_OR_RETURN(sparse::CsrMatrix m,
                         Materialize(spec, scale, seed));
  const Status written = sparse::WriteBinary(m, path);
  if (!written.ok()) {
    std::remove(path.c_str());  // never leave partial entries behind
  }
  return m;
}

}  // namespace datasets
}  // namespace spnet
