// spnet_serve: persistent multi-tenant query daemon over the spGEMM
// engine.
//
// Transport: newline-delimited JSON over stdin/stdout. Each input line is
// one request object (see serve/wire.h for the schema):
//
//   {"id":"q1","tenant":"t0","source":"as-caida",
//    "algorithm":"reorganizer","priority":1,"deadline_ms":250}
//
// and each output line is one response object — either the measurement or
// an error ("ok":false with the status code/message). Responses stream in
// completion order, not submission order; correlate by "id". Admission
// rejections (full queue, exhausted tenant quota, draining) are reported
// the same way, with code "ResourceExhausted" / "FailedPrecondition", so a
// load generator can distinguish shed load from failed work.
//
// Usage:
//   spnet_serve [--workers N] [--queue 64] [--plan_cache 64] [--shards 8]
//               [--quota_capacity C --quota_refill R]   (default tenant quota)
//               [--pin src1,src2,...]  (preload + never evict)
//               [--store_capacity 8]   (unpinned resident matrices)
//               [--scale 0.05] [--seed 42] [--cache dir]
//               [--deadline_ms D] [--fallback outer-product]
//               [--planning_tier exact|estimated|auto]
//               [--reorder none|degree|rcm|cluster]
//               [--device titanxp|v100|2080ti] [--threads N]
//               [--metrics_out stats.json]
//
// Shutdown: EOF on stdin or SIGTERM/SIGINT begins a graceful drain — no
// new requests are admitted, queued and in-flight requests finish and
// their responses are written, then the daemon flushes --metrics_out (the
// Server::StatsJson document: serve.* counters, p50/p99/p999 latency
// percentiles, plan-cache and matrix-store state) and exits 0.

#include <csignal>
#include <cstdio>
#include <string>
#include <utility>

#include "common/flags.h"
#include "common/mutex.h"
#include "core/reorganizer_config.h"
#include "common/parallel.h"
#include "common/status.h"
#include "engine/request.h"
#include "gpusim/device_spec.h"
#include "metrics/json_writer.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "sparse/reorder.h"

namespace spnet {
namespace {

// Signal disposition, written by the handler and polled by the read loop.
// sig_atomic_t (not bool) because that is the only type the C standard
// guarantees async-signal-safe to write — a mutex or std::atomic is not an
// option inside a signal handler.
// spnet-lint: allow(global-mutable-state)
volatile std::sig_atomic_t g_signal = 0;

void HandleSignal(int signum) { g_signal = signum; }

/// Installs `HandleSignal` without SA_RESTART, so a signal interrupts the
/// blocking stdin read (fgets returns with EINTR) instead of being
/// deferred until the next request line arrives.
void InstallSignalHandlers() {
  struct sigaction action = {};
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

/// Serializes response lines from concurrent worker callbacks. stdout is
/// the protocol channel; interleaved partial lines would corrupt it.
class ResponseWriter {
 public:
  void Write(const engine::Response& response) {
    const std::string line = serve::SerializeResponse(response);
    MutexLock lock(&mu_);
    std::fwrite(line.data(), 1, line.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }

 private:
  // mu_ serializes whole-line writes to the process-global stdout stream,
  // so there is no member to GUARDED_BY.
  // spnet-lint: allow(lock-discipline)
  Mutex mu_;
};

gpusim::DeviceSpec DeviceFromFlags(const FlagParser& flags) {
  const std::string name = flags.GetString("device", "titanxp");
  if (name == "v100") return gpusim::DeviceSpec::TeslaV100();
  if (name == "2080ti") return gpusim::DeviceSpec::Rtx2080Ti();
  return gpusim::DeviceSpec::TitanXp();
}

Result<serve::ServeOptions> OptionsFromFlags(const FlagParser& flags) {
  serve::ServeOptions options;
  options.workers = static_cast<int>(flags.GetInt("workers", 2));
  options.queue_capacity =
      static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("queue", 64)));
  options.default_quota.capacity = flags.GetDouble("quota_capacity", 0.0);
  options.default_quota.refill_per_sec = flags.GetDouble("quota_refill", 0.0);
  options.engine.plan_cache_capacity = static_cast<size_t>(
      std::max<int64_t>(0, flags.GetInt("plan_cache", 64)));
  options.plan_cache_shards =
      static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("shards", 8)));
  options.engine.fallback_algorithm =
      flags.GetString("fallback", options.engine.fallback_algorithm);
  options.engine.default_deadline_ms = flags.GetDouble("deadline_ms", 0.0);
  if (flags.Has("planning_tier")) {
    SPNET_ASSIGN_OR_RETURN(
        options.engine.reorganizer_config.planning_tier,
        core::ParsePlanningTier(flags.GetString("planning_tier", "exact")));
  }
  if (flags.Has("reorder")) {
    SPNET_ASSIGN_OR_RETURN(
        options.engine.reorganizer_config.reorder,
        sparse::ParseReorderStrategy(flags.GetString("reorder", "none")));
  }
  options.engine.device = DeviceFromFlags(flags);
  options.store.capacity = static_cast<size_t>(
      std::max<int64_t>(0, flags.GetInt("store_capacity", 8)));
  options.store.load.scale = flags.GetDouble("scale", options.store.load.scale);
  options.store.load.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.store.load.dataset_cache_dir = flags.GetString("cache", "");

  std::string pin = flags.GetString("pin", "");
  while (!pin.empty()) {
    const size_t comma = pin.find(',');
    const std::string source = pin.substr(0, comma);
    if (!source.empty()) options.pinned_sources.push_back(source);
    if (comma == std::string::npos) break;
    pin.erase(0, comma + 1);
  }
  return options;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) {
    std::fprintf(stderr, "usage: spnet_serve [flags] "
                         "(see the header comment of tools/spnet_serve.cc)\n");
    return 2;
  }
  SetGlobalThreadCount(static_cast<int>(flags.GetInt("threads", 0)));
  InstallSignalHandlers();

  auto options = OptionsFromFlags(flags);
  if (!options.ok()) {
    std::fprintf(stderr, "error: %s\n", options.status().ToString().c_str());
    return 2;
  }
  serve::Server server(std::move(options).value());
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "spnet_serve: ready (workers=%d queue=%zu)\n",
               server.options().workers, server.options().queue_capacity);

  ResponseWriter writer;
  std::string line;
  char buffer[1 << 16];
  while (g_signal == 0) {
    if (std::fgets(buffer, sizeof(buffer), stdin) == nullptr) {
      if (g_signal != 0 || std::feof(stdin)) break;
      // EINTR from a signal that was not ours, or transient read error:
      // clear and retry unless the stream is done.
      if (std::ferror(stdin)) {
        std::clearerr(stdin);
        continue;
      }
      break;
    }
    line.assign(buffer);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;

    auto wire = serve::ParseRequestLine(line);
    if (!wire.ok()) {
      engine::Response error;
      error.id = "";
      error.status = wire.status();
      writer.Write(error);
      continue;
    }
    const Status submitted = server.SubmitWire(
        *wire, [&writer](const engine::Response& response) {
          writer.Write(response);
        });
    if (!submitted.ok()) {
      // Admission rejections surface as error responses on the same
      // stream, so clients see exactly one line per request line.
      engine::Response rejected;
      rejected.id = wire->id;
      rejected.tenant = wire->tenant;
      rejected.status = submitted;
      writer.Write(rejected);
    }
  }

  std::fprintf(stderr, "spnet_serve: draining (%lld in flight)\n",
               static_cast<long long>(server.in_flight()));
  server.Drain();

  const std::string metrics_out = flags.GetString("metrics_out", "");
  if (!metrics_out.empty()) {
    const Status written =
        metrics::WriteTextFile(metrics_out, server.StatsJson() + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "spnet_serve: wrote %s\n", metrics_out.c_str());
  }
  std::fprintf(stderr, "spnet_serve: drained, exiting\n");
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
