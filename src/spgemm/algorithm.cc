#include "spgemm/algorithm.h"

#include "gpusim/kernel_desc.h"

namespace spnet {
namespace spgemm {

Result<SpGemmMeasurement> Measure(const SpGemmAlgorithm& algorithm,
                                  const sparse::CsrMatrix& a,
                                  const sparse::CsrMatrix& b,
                                  const gpusim::DeviceSpec& device) {
  SPNET_ASSIGN_OR_RETURN(SpGemmPlan plan, algorithm.Plan(a, b, device));
  gpusim::Simulator sim(device);

  SpGemmMeasurement m;
  m.stats.sm_busy_cycles.assign(static_cast<size_t>(device.num_sms), 0.0);
  m.expansion.sm_busy_cycles.assign(static_cast<size_t>(device.num_sms), 0.0);
  m.merge.sm_busy_cycles.assign(static_cast<size_t>(device.num_sms), 0.0);
  for (const gpusim::KernelDesc& k : plan.kernels) {
    SPNET_ASSIGN_OR_RETURN(gpusim::KernelStats s, sim.RunKernel(k));
    m.stats.Accumulate(s);
    if (k.phase == gpusim::Phase::kExpansion) {
      m.expansion.Accumulate(s);
    } else if (k.phase == gpusim::Phase::kMerge) {
      m.merge.Accumulate(s);
    }
  }
  m.stats.seconds = device.CyclesToSeconds(m.stats.cycles);
  m.expansion.seconds = device.CyclesToSeconds(m.expansion.cycles);
  m.merge.seconds = device.CyclesToSeconds(m.merge.cycles);
  m.host_seconds = plan.host_seconds;
  m.total_seconds = m.stats.seconds + plan.host_seconds;
  m.flops = plan.flops;
  m.output_nnz = plan.output_nnz;
  return m;
}

}  // namespace spgemm
}  // namespace spnet
