// Item-to-item co-occurrence recommendation with a rectangular spGEMM:
// S = R^T * R over a user x item interaction matrix R gives item-item
// co-occurrence counts — the classic "people who liked this also liked"
// signal (paper intro refs [4], [5]).
//
// Build & run:
//   ./build/examples/recommendation [--user_count N] [--item_count M]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "core/block_reorganizer.h"
#include "datasets/generators.h"
#include "gpusim/device_spec.h"
#include "sparse/csr_matrix.h"
#include "spgemm/algorithm.h"

int main(int argc, char** argv) {
  using namespace spnet;
  using sparse::CsrMatrix;
  using sparse::Index;
  using sparse::Offset;
  using sparse::SpanView;

  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  const Index user_count =
      static_cast<Index>(flags.GetInt("user_count", 40000));
  const Index item_count =
      static_cast<Index>(flags.GetInt("item_count", 8000));

  // Interactions follow a power law on both sides: a few heavy users, a
  // few blockbuster items.
  datasets::PowerLawParams p;
  p.rows = user_count;
  p.cols = item_count;
  p.nnz = 12 * static_cast<int64_t>(user_count);
  p.row_skew = 0.7;   // user activity
  p.col_skew = 1.0;   // item popularity
  p.align_hubs = false;
  p.seed = 11;
  p.weighted = false;  // implicit feedback: 0/1 interactions
  auto r = datasets::GeneratePowerLaw(p);
  SPNET_CHECK(r.ok()) << r.status().ToString();
  std::printf("interactions: %d users x %d items, %lld events\n",
              r->rows(), r->cols(), static_cast<long long>(r->nnz()));

  // S = R^T R: item-item co-occurrence. The transpose is a library
  // primitive; the multiply runs through the Block Reorganizer.
  const CsrMatrix rt = r->Transpose();
  core::BlockReorganizerSpGemm reorganizer;
  auto s = reorganizer.Compute(rt, *r);
  SPNET_CHECK(s.ok()) << s.status().ToString();
  std::printf("co-occurrence matrix: %d x %d, %lld nonzeros\n", s->rows(),
              s->cols(), static_cast<long long>(s->nnz()));

  // Top-5 "also liked" for the most popular item.
  Index top_item = 0;
  for (Index i = 0; i < rt.rows(); ++i) {
    if (rt.RowNnz(i) > rt.RowNnz(top_item)) top_item = i;
  }
  const SpanView row = s->Row(top_item);
  std::vector<std::pair<double, Index>> ranked;
  for (Offset k = 0; k < row.size; ++k) {
    if (row.indices[k] == top_item) continue;
    ranked.emplace_back(row.values[k], row.indices[k]);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::printf("item %d (%lld interactions) - top co-occurrences:\n",
              top_item, static_cast<long long>(rt.RowNnz(top_item)));
  for (size_t k = 0; k < std::min<size_t>(5, ranked.size()); ++k) {
    std::printf("  item %-6d shared by %.0f users\n", ranked[k].second,
                ranked[k].first);
  }

  // Simulated device cost of the R^T R product.
  auto m = spgemm::Measure(reorganizer, rt, *r,
                           gpusim::DeviceSpec::TitanXp());
  SPNET_CHECK(m.ok());
  std::printf("simulated Titan Xp time: %.3f ms (expansion %.3f, merge "
              "%.3f)\n",
              m->total_seconds * 1e3, m->expansion.seconds * 1e3,
              m->merge.seconds * 1e3);
  return 0;
}
