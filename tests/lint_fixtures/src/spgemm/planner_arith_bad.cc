// Fixture: raw arithmetic on audited planner quantities. The directory
// places this under src/spgemm/ so the path-scoped rule applies.

#include <cstdint>
#include <vector>

namespace spnet {
namespace spgemm {

int64_t TotalWork(const std::vector<int64_t>& row_chat, int64_t pair_work,
                  int64_t output_nnz) {
  int64_t flops = 0;
  for (size_t r = 0; r < row_chat.size(); ++r) {
    flops += row_chat[r];
  }
  const int64_t bytes = 8 * output_nnz;
  return pair_work + bytes;
}

}  // namespace spgemm
}  // namespace spnet
