// Fixture: the saturating spellings of planner arithmetic, plus shapes
// the rule must not flag (double math through casts, method chains).

#include <cstdint>
#include <vector>

#include "common/math_util.h"

namespace spnet {
namespace spgemm {

int64_t TotalWork(const std::vector<int64_t>& row_chat, int64_t pair_work,
                  int64_t output_nnz) {
  int64_t flops = 0;
  for (size_t r = 0; r < row_chat.size(); ++r) {
    flops = SatAddI64(flops, row_chat[r]);
  }
  const int64_t bytes = SatMulI64(8, output_nnz);
  const double ratio = static_cast<double>(pair_work) + 0.5;
  const size_t census = row_chat.size() + 1;
  (void)ratio;
  (void)census;
  return SatAddI64(pair_work, bytes);
}

}  // namespace spgemm
}  // namespace spnet
