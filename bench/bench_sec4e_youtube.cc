// Reproduces the Section IV-E walkthrough: the Block Reorganizer pipeline
// on YouTube, reporting the bin populations (paper: 713 dominators,
// 362,736 low performers, 12,657 limited rows at full scale) and the
// per-technique gains over the outer-product baseline (paper: +10.4%
// B-Splitting, +6.7% B-Gathering, +16.8% B-Limiting, +41.5% combined).
//
// Flags: --scale (default 0.25), --device, --seed, --csv.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/block_reorganizer.h"
#include "core/suite.h"
#include "metrics/report.h"
#include "spgemm/algorithm.h"

namespace spnet {
namespace {

int Run(int argc, char** argv) {
  const bench::BenchOptions options =
      bench::BenchOptions::FromArgs(argc, argv);
  const gpusim::DeviceSpec device = options.Device();
  const sparse::CsrMatrix a = bench::LoadDataset("youtube", options);

  core::BlockReorganizerSpGemm reorganizer;
  auto report = reorganizer.Analyze(a, a, device);
  SPNET_CHECK(report.ok());

  metrics::Table bins({"quantity", "paper (scale 1.0)",
                       "measured (this scale)"});
  bins.AddRow({"dominator pairs", "713",
               metrics::FormatCount(report->dominators)});
  bins.AddRow({"low performer pairs", "362.7k",
               metrics::FormatCount(report->low_performers)});
  bins.AddRow({"rows using B-Limiting", "12.7k",
               metrics::FormatCount(report->limited_rows)});
  bins.AddRow({"split fragments", "-",
               metrics::FormatCount(report->fragments)});
  bins.AddRow({"combined blocks", "-",
               metrics::FormatCount(report->combined_blocks)});
  std::printf("== Section IV-E: YouTube workload classification "
              "(scale %.2f) ==\n",
              options.scale);
  std::fputs(bins.ToString().c_str(), stdout);

  // Per-technique gains over the outer-product baseline.
  const auto outer = spgemm::MakeOuterProduct();
  auto base = spgemm::Measure(*outer, a, a, device);
  SPNET_CHECK(base.ok());

  metrics::Table gains({"technique", "paper gain", "measured gain"});
  const char* paper[] = {"+16.8%", "+10.4%", "+6.7%", "+41.5%"};
  int i = 0;
  for (const auto& alg : core::MakeAblationSuite()) {
    auto m = spgemm::Measure(*alg, a, a, device);
    SPNET_CHECK(m.ok());
    const double gain =
        100.0 * (base->total_seconds / m->total_seconds - 1.0);
    gains.AddRow({alg->name(), paper[i++],
                  (gain >= 0 ? "+" : "") + metrics::FormatDouble(gain, 1) +
                      "%"});
  }
  std::printf("\n== Section IV-E: technique gains over the outer-product "
              "baseline ==\n");
  std::fputs(gains.ToString().c_str(), stdout);

  bench::BenchJson json("sec4e_youtube", "Section IV-E", options);
  json.AddTable("workload_bins", bins);
  json.AddTable("technique_gains", gains);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
