#include "sparse/coo_matrix.h"

#include <algorithm>
#include <numeric>
#include <string>

namespace spnet {
namespace sparse {

void CooMatrix::SortAndCombine() {
  const size_t n = row_.size();
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  std::sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    if (row_[a] != row_[b]) return row_[a] < row_[b];
    return col_[a] < col_[b];
  });

  std::vector<Index> new_row;
  std::vector<Index> new_col;
  std::vector<Value> new_val;
  new_row.reserve(n);
  new_col.reserve(n);
  new_val.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    const size_t i = perm[k];
    if (!new_row.empty() && new_row.back() == row_[i] &&
        new_col.back() == col_[i]) {
      new_val.back() += val_[i];
    } else {
      new_row.push_back(row_[i]);
      new_col.push_back(col_[i]);
      new_val.push_back(val_[i]);
    }
  }
  row_ = std::move(new_row);
  col_ = std::move(new_col);
  val_ = std::move(new_val);
}

Status CooMatrix::Validate() const {
  for (size_t i = 0; i < row_.size(); ++i) {
    if (row_[i] < 0 || row_[i] >= rows_ || col_[i] < 0 || col_[i] >= cols_) {
      return Status::OutOfRange("triplet " + std::to_string(i) +
                                " out of bounds: (" + std::to_string(row_[i]) +
                                ", " + std::to_string(col_[i]) + ") in " +
                                std::to_string(rows_) + "x" +
                                std::to_string(cols_));
    }
  }
  return Status::Ok();
}

}  // namespace sparse
}  // namespace spnet
