#include <gtest/gtest.h>

#include "core/block_reorganizer.h"
#include "gpusim/profiler.h"
#include "tests/test_util.h"

namespace spnet {
namespace gpusim {
namespace {

std::vector<KernelDesc> MakePipeline() {
  const sparse::CsrMatrix a = testing_util::SkewedMatrix(300, 200, 61);
  core::BlockReorganizerSpGemm alg;
  auto plan = alg.Plan(a, a, DeviceSpec::TitanXp());
  SPNET_CHECK(plan.ok());
  return std::move(plan->kernels);
}

TEST(ProfilerTest, ProfilesEveryKernel) {
  const auto kernels = MakePipeline();
  Profiler profiler(DeviceSpec::TitanXp());
  ASSERT_TRUE(profiler.Profile(kernels).ok());
  EXPECT_EQ(profiler.profiles().size(), kernels.size());
  for (const auto& p : profiler.profiles()) {
    EXPECT_FALSE(p.label.empty());
    EXPECT_GT(p.stats.cycles, 0.0);
  }
}

TEST(ProfilerTest, TotalEqualsSumOfKernels) {
  const auto kernels = MakePipeline();
  Profiler profiler(DeviceSpec::TitanXp());
  ASSERT_TRUE(profiler.Profile(kernels).ok());
  double sum = 0.0;
  for (const auto& p : profiler.profiles()) sum += p.stats.cycles;
  EXPECT_NEAR(profiler.Total().cycles, sum, 1e-6);
}

TEST(ProfilerTest, ReportContainsEveryLabel) {
  const auto kernels = MakePipeline();
  Profiler profiler(DeviceSpec::TitanXp());
  ASSERT_TRUE(profiler.Profile(kernels).ok());
  const std::string report = profiler.ReportTable();
  for (const auto& k : kernels) {
    EXPECT_NE(report.find(k.label), std::string::npos) << k.label;
  }
}

TEST(ProfilerTest, HistogramHasOneLinePerSm) {
  const auto kernels = MakePipeline();
  const DeviceSpec device = DeviceSpec::TitanXp();
  Profiler profiler(device);
  ASSERT_TRUE(profiler.Profile(kernels).ok());
  const std::string histogram = profiler.SmHistogram(0);
  EXPECT_EQ(std::count(histogram.begin(), histogram.end(), '\n'),
            device.num_sms);
  // Out-of-range index yields an empty string rather than a crash.
  EXPECT_TRUE(profiler.SmHistogram(kernels.size() + 5).empty());
}

TEST(ProfilerTest, EmptyPipeline) {
  Profiler profiler(DeviceSpec::TitanXp());
  ASSERT_TRUE(profiler.Profile({}).ok());
  EXPECT_TRUE(profiler.profiles().empty());
  EXPECT_DOUBLE_EQ(profiler.Total().cycles, 0.0);
}

}  // namespace
}  // namespace gpusim
}  // namespace spnet
