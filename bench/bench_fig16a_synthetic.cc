// Reproduces Figure 16(a) (and prints the C = A^2 half of Table III):
// speedups of all methods, normalized to the row-product baseline, on the
// synthetic R-MAT suites — S (scalability), P (skewness), SP (sparsity).
//
// Flags: --scale (default 0.25), --device, --seed, --csv.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/suite.h"
#include "metrics/report.h"
#include "spgemm/algorithm.h"

namespace spnet {
namespace {

int Run(int argc, char** argv) {
  bench::BenchOptions options = bench::BenchOptions::FromArgs(argc, argv);
  {
    // These sweeps never materialize C functionally, so the paper-scale
    // datasets are cheap; default to full size.
    FlagParser flags;
    SPNET_CHECK(flags.Parse(argc, argv).ok());
    if (!flags.Has("scale")) options.scale = 1.0;
  }
  const gpusim::DeviceSpec device = options.Device();
  const auto algorithms = core::MakeAllAlgorithms();

  metrics::Table spec_table({"data", "dimension", "elements", "params"});
  for (const auto& spec : datasets::TableThreeDatasets()) {
    char params[64];
    std::snprintf(params, sizeof(params), "(%.2f,%.2f,%.2f,%.2f)", spec.a,
                  spec.b, spec.c, spec.d);
    spec_table.AddRow({spec.name, metrics::FormatCount(spec.dimension),
                       metrics::FormatCount(spec.elements), params});
  }
  std::printf("== Table III (C = A^2 suites) ==\n");
  std::fputs(spec_table.ToString().c_str(), stdout);

  std::vector<std::string> header = {"dataset"};
  for (const auto& alg : algorithms) header.push_back(alg->name());
  metrics::Table table(header);

  for (const auto& spec : datasets::TableThreeDatasets()) {
    auto a = datasets::MaterializeSynthetic(spec, options.scale,
                                            options.seed);
    SPNET_CHECK(a.ok()) << a.status().ToString();
    double row_seconds = 0.0;
    std::vector<std::string> row = {spec.name};
    for (const auto& alg : algorithms) {
      auto m = spgemm::Measure(*alg, *a, *a, device);
      SPNET_CHECK(m.ok()) << alg->name();
      if (alg->name() == "row-product") row_seconds = m->total_seconds;
      row.push_back(metrics::FormatDouble(row_seconds / m->total_seconds));
    }
    table.AddRow(std::move(row));
  }

  std::printf("\n== Figure 16(a): speedups on synthetic datasets, C = A^2 "
              "(%s, scale %.2f) ==\n",
              device.name.c_str(), options.scale);
  std::fputs(options.csv ? table.ToCsv().c_str() : table.ToString().c_str(),
             stdout);
  std::printf("\nPaper reference: cuSPARSE wins on the smallest matrix (s1) "
              "but fades as size grows; skew (p1->p4) hurts cuSPARSE and "
              "bhSPARSE while Block Reorganizer gains throughout; on the "
              "sparsest inputs (sp4) Block Reorganizer leads via "
              "B-Gathering.\n");

  bench::BenchJson json("fig16a_synthetic", "Figure 16(a)", options);
  json.AddTable("synthetic_specs", spec_table);
  json.AddTable("speedup_over_row_product", table);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
