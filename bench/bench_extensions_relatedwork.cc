// Extension experiment beyond the paper's Figure 8: adds the related-work
// algorithms the paper discusses but does not measure — AC-spGEMM
// (thread-level chunk balancing, PPoPP'19) and hash-based fused Gustavson
// (nsparse) — to the seven-method comparison on a representative subset.
//
// Flags: --scale (default 0.25), --device, --seed, --csv.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "core/suite.h"
#include "metrics/report.h"
#include "spgemm/algorithm.h"

namespace spnet {
namespace {

const char* kDatasets[] = {"filter3D", "harbor",      "hood",
                           "scircuit", "patents_main", "youtube",
                           "loc-gowalla", "slashDot", "epinions",
                           "as-caida"};

int Run(int argc, char** argv) {
  const bench::BenchOptions options =
      bench::BenchOptions::FromArgs(argc, argv);
  const gpusim::DeviceSpec device = options.Device();
  const auto algorithms = core::MakeExtendedSuite();

  std::vector<std::string> header = {"dataset"};
  for (const auto& alg : algorithms) header.push_back(alg->name());
  metrics::Table table(header);
  std::map<std::string, std::vector<double>> speedups;

  for (const char* name : kDatasets) {
    const sparse::CsrMatrix a = bench::LoadDataset(name, options);
    double row_seconds = 0.0;
    std::vector<std::string> row = {name};
    for (const auto& alg : algorithms) {
      auto m = spgemm::Measure(*alg, a, a, device);
      SPNET_CHECK(m.ok()) << alg->name();
      if (alg->name() == "row-product") row_seconds = m->total_seconds;
      const double speedup = row_seconds / m->total_seconds;
      speedups[alg->name()].push_back(speedup);
      row.push_back(metrics::FormatDouble(speedup));
    }
    table.AddRow(std::move(row));
  }
  std::vector<std::string> mean = {"GEOMEAN"};
  for (const auto& alg : algorithms) {
    mean.push_back(
        metrics::FormatDouble(metrics::GeometricMean(speedups[alg->name()])));
  }
  table.AddRow(std::move(mean));

  std::printf("== Extension: related-work algorithms vs the paper's suite "
              "(%s, scale %.2f) ==\n",
              device.name.c_str(), options.scale);
  std::fputs(options.csv ? table.ToCsv().c_str() : table.ToString().c_str(),
             stdout);
  std::printf("\nExpected shape: AC-spGEMM lands between bhSPARSE and the "
              "outer-product baseline (balanced but bookkeeping-heavy);"
              " nsparse benefits from its fused merge on regular data but "
              "its global-hash fallback suffers on wide power-law rows.\n");

  bench::BenchJson json("extensions_relatedwork", "extension", options);
  json.AddTable("speedup_over_row_product", table);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
