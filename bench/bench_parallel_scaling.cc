// Host-side parallel-scaling micro-bench for the functional
// expansion/merge stack: wall-clock time and speedup vs --threads=1 for
// the reference Gustavson spGEMM, the row-product and outer-product
// engines, the CSR->CSC conversion, and the workload precalculation, on a
// Zipf-skewed (power-law) and a banded (quasi-regular) generator at
// default scale.
//
// Only host wall-clock changes with --threads; simulated GPU cycles and
// all functional results are thread-count-invariant (the determinism
// suite asserts bit-identical outputs). On a single-core host the >1
// thread configurations time-slice one core, so expect ~1x or below;
// the target of >= 2x at 4 threads applies to hosts with >= 4 cores.
//
// Flags: --scale (default 1.0 here; the matrices are synthetic and small),
// --seed, --csv, --threads (ignored: this bench sweeps thread counts),
// --repeats (default 3, best-of), --json_out=<path> (machine-readable
// BENCH_parallel_scaling.json).

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "metrics/report.h"
#include "sparse/csr_matrix.h"
#include "sparse/reference_spgemm.h"
#include "spgemm/functional.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace {

using sparse::CscMatrix;
using sparse::CsrMatrix;

struct Workpiece {
  std::string name;
  CsrMatrix a;
};

std::vector<int> ThreadSweep() {
  std::vector<int> sweep = {1, 2, 4};
  const int hw = GlobalThreadCount();  // before any override: hardware
  if (hw > 4) sweep.push_back(hw);
  return sweep;
}

double BestOf(int repeats, const std::function<void()>& fn) {
  double best = -1.0;
  for (int i = 0; i < repeats; ++i) {
    Timer timer;
    fn();
    const double s = timer.Seconds();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

int Run(int argc, char** argv) {
  bench::BenchOptions options = bench::BenchOptions::FromArgs(argc, argv);
  FlagParser flags;
  SPNET_CHECK(flags.Parse(argc, argv).ok());
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  // This bench owns the thread count; undo the BenchOptions override so
  // the sweep starts from the hardware default.
  SetGlobalThreadCount(0);
  const std::vector<int> sweep = ThreadSweep();

  // At the repo-wide default --scale=0.25 the workpieces are 3000x3000
  // with ~60k nonzeros — seconds-fast even serially; --scale=1.0 is the
  // 12000x12000, 240k-nnz configuration.
  const double scale = options.scale <= 0 ? 1.0 : options.scale;

  datasets::PowerLawParams zipf;
  zipf.rows = zipf.cols = static_cast<sparse::Index>(12000 * scale);
  zipf.nnz = static_cast<int64_t>(240000 * scale);
  zipf.seed = options.seed;
  auto zipf_m = datasets::GeneratePowerLaw(zipf);
  SPNET_CHECK(zipf_m.ok()) << zipf_m.status().ToString();

  datasets::QuasiRegularParams banded;
  banded.n = static_cast<sparse::Index>(12000 * scale);
  banded.nnz = static_cast<int64_t>(240000 * scale);
  banded.seed = options.seed;
  auto banded_m = datasets::GenerateQuasiRegular(banded);
  SPNET_CHECK(banded_m.ok()) << banded_m.status().ToString();

  std::vector<Workpiece> pieces;
  pieces.push_back({"zipf", std::move(zipf_m).value()});
  pieces.push_back({"banded", std::move(banded_m).value()});

  struct Stage {
    const char* name;
    std::function<void(const CsrMatrix&)> fn;
  };
  const Stage stages[] = {
      {"reference_spgemm",
       [](const CsrMatrix& a) {
         auto c = sparse::ReferenceSpGemm(a, a);
         SPNET_CHECK(c.ok()) << c.status().ToString();
       }},
      {"row_product",
       [](const CsrMatrix& a) {
         auto c = spgemm::RowProductExpandMerge(a, a);
         SPNET_CHECK(c.ok()) << c.status().ToString();
       }},
      {"outer_product",
       [](const CsrMatrix& a) {
         auto c = spgemm::OuterProductExpandMerge(a, a);
         SPNET_CHECK(c.ok()) << c.status().ToString();
       }},
      {"csc_from_csr",
       [](const CsrMatrix& a) { CscMatrix::FromCsr(a); }},
      {"build_workload",
       [](const CsrMatrix& a) { spgemm::BuildWorkload(a, a); }},
  };

  std::printf("== parallel scaling: host wall-clock vs --threads "
              "(best of %d, %d hardware threads) ==\n",
              repeats, GlobalThreadCount());
  std::vector<std::string> header = {"dataset", "stage"};
  for (int t : sweep) {
    header.push_back("t=" + std::to_string(t) + " ms");
    if (t != 1) header.push_back("x vs t=1");
  }
  metrics::Table table(header);

  for (const Workpiece& piece : pieces) {
    for (const Stage& stage : stages) {
      std::vector<std::string> row = {piece.name, stage.name};
      double serial_s = 0.0;
      for (int t : sweep) {
        SetGlobalThreadCount(t);
        stage.fn(piece.a);  // warm-up: page in inputs, size the pool
        const double s =
            BestOf(repeats, [&] { stage.fn(piece.a); });
        if (t == 1) serial_s = s;
        row.push_back(metrics::FormatDouble(s * 1e3, 2));
        if (t != 1) {
          row.push_back(metrics::FormatDouble(
              s > 0.0 ? serial_s / s : 0.0, 2));
        }
      }
      table.AddRow(std::move(row));
    }
  }
  SetGlobalThreadCount(0);

  std::fputs(options.csv ? table.ToCsv().c_str() : table.ToString().c_str(),
             stdout);

  bench::BenchJson json("parallel_scaling", "host scaling", options);
  json.AddTable("wall_clock_vs_threads", table);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
