#include "graph/analytics.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "sparse/operations.h"

namespace spnet {
namespace graph {

using sparse::CsrMatrix;
using sparse::Index;
using sparse::Offset;
using sparse::SpanView;
using sparse::Value;

namespace {

Status CheckSquare(const CsrMatrix& a, const char* what) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument(std::string(what) +
                                   " needs a square adjacency matrix");
  }
  return Status::Ok();
}

/// L2-normalizes each row of a.
CsrMatrix L2RowNormalize(const CsrMatrix& a) {
  std::vector<Value> val(a.values());
  size_t cursor = 0;
  for (Index r = 0; r < a.rows(); ++r) {
    const SpanView row = a.Row(r);
    double norm = 0.0;
    for (Offset k = 0; k < row.size; ++k) {
      norm += static_cast<double>(row.values[k]) * row.values[k];
    }
    norm = std::sqrt(norm);
    for (Offset k = 0; k < row.size; ++k, ++cursor) {
      if (norm > 0.0) val[cursor] /= norm;
    }
  }
  auto result = CsrMatrix::FromParts(a.rows(), a.cols(), a.ptr(), a.indices(),
                                     std::move(val));
  return std::move(result).value();
}

/// Replaces all stored values with 1.0.
CsrMatrix Binarize(const CsrMatrix& a) {
  std::vector<Value> val(a.values().size(), 1.0);
  auto result = CsrMatrix::FromParts(a.rows(), a.cols(), a.ptr(), a.indices(),
                                     std::move(val));
  return std::move(result).value();
}

/// Removes the diagonal entries of a square matrix.
CsrMatrix DropDiagonal(const CsrMatrix& a) {
  std::vector<Offset> ptr(static_cast<size_t>(a.rows()) + 1, 0);
  std::vector<Index> idx;
  std::vector<Value> val;
  for (Index r = 0; r < a.rows(); ++r) {
    const SpanView row = a.Row(r);
    for (Offset k = 0; k < row.size; ++k) {
      if (row.indices[k] == r) continue;
      idx.push_back(row.indices[k]);
      val.push_back(row.values[k]);
    }
    ptr[static_cast<size_t>(r) + 1] = static_cast<Offset>(idx.size());
  }
  auto result = CsrMatrix::FromParts(a.rows(), a.cols(), std::move(ptr),
                                     std::move(idx), std::move(val));
  return std::move(result).value();
}

/// Undirected view of a possibly directed adjacency: the binarized
/// pattern of A ∨ Aᵀ. On an already symmetric pattern this is a no-op
/// (beyond binarization), so undirected callers see unchanged results.
CsrMatrix SymmetrizePattern(const CsrMatrix& a) {
  const CsrMatrix bin = Binarize(a);
  auto sum = sparse::Add(bin, bin.Transpose());
  return Binarize(std::move(sum).value());  // same square shape, cannot fail
}

/// P·A·Pᵀ — the same permutation on rows and columns, keeping the graph
/// isomorphic while relabeling node ids to the reorder strategy's order.
Result<CsrMatrix> PermuteSymmetric(const CsrMatrix& a,
                                   const sparse::Permutation& p) {
  SPNET_ASSIGN_OR_RETURN(const CsrMatrix rows_permuted, p.ApplyToRows(a));
  return p.ApplyToCols(rows_permuted);
}

}  // namespace

Result<PageRankResult> PageRank(const CsrMatrix& adjacency,
                                const PageRankOptions& options) {
  SPNET_RETURN_IF_ERROR(CheckSquare(adjacency, "PageRank"));
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in [0, 1)");
  }
  const Index n = adjacency.rows();
  if (n == 0) {
    return PageRankResult{};
  }
  if (options.reorder != sparse::ReorderStrategy::kNone) {
    // One symmetric permutation up front, amortized over every iteration;
    // scores are mapped back to the original node ids.
    SPNET_ASSIGN_OR_RETURN(
        const sparse::Permutation perm,
        sparse::BuildRowPermutation(adjacency, options.reorder));
    SPNET_ASSIGN_OR_RETURN(const CsrMatrix permuted,
                           PermuteSymmetric(adjacency, perm));
    PageRankOptions inner = options;
    inner.reorder = sparse::ReorderStrategy::kNone;
    SPNET_ASSIGN_OR_RETURN(PageRankResult result, PageRank(permuted, inner));
    SPNET_ASSIGN_OR_RETURN(result.scores, perm.Inverse().Apply(result.scores));
    return result;
  }

  // Random-walk transition matrix: rows normalized to 1.
  const CsrMatrix p = sparse::RowNormalize(adjacency);
  std::vector<bool> dangling(static_cast<size_t>(n), false);
  for (Index r = 0; r < n; ++r) {
    if (p.RowNnz(r) == 0) dangling[static_cast<size_t>(r)] = true;
  }

  PageRankResult result;
  result.scores.assign(static_cast<size_t>(n), 1.0 / n);
  std::vector<Value> next;
  for (int it = 0; it < options.max_iterations; ++it) {
    // next = d * P^T * scores (+ dangling mass) + (1 - d)/n.
    SPNET_ASSIGN_OR_RETURN(next, sparse::SpMvTranspose(p, result.scores));
    double dangling_mass = 0.0;
    for (Index r = 0; r < n; ++r) {
      if (dangling[static_cast<size_t>(r)]) {
        dangling_mass += result.scores[static_cast<size_t>(r)];
      }
    }
    const double base =
        (1.0 - options.damping) / n + options.damping * dangling_mass / n;
    double residual = 0.0;
    for (Index i = 0; i < n; ++i) {
      const double updated =
          base + options.damping * next[static_cast<size_t>(i)];
      residual += std::fabs(updated - result.scores[static_cast<size_t>(i)]);
      next[static_cast<size_t>(i)] = updated;
    }
    result.scores.swap(next);
    result.iterations = it + 1;
    result.residual = residual;
    if (residual < options.tolerance) break;
  }
  return result;
}

Result<CsrMatrix> CosineSimilarity(const CsrMatrix& a,
                                   const spgemm::SpGemmAlgorithm& algorithm,
                                   Index top_k) {
  if (top_k <= 0) {
    return Status::InvalidArgument("top_k must be positive");
  }
  const CsrMatrix normalized = L2RowNormalize(a);
  const CsrMatrix nt = normalized.Transpose();
  SPNET_ASSIGN_OR_RETURN(CsrMatrix similarity,
                         algorithm.Compute(normalized, nt));
  similarity.SortRows();
  return sparse::TopKPerRow(DropDiagonal(similarity), top_k);
}

Result<CsrMatrix> KHopReachability(const CsrMatrix& adjacency,
                                   const spgemm::SpGemmAlgorithm& algorithm,
                                   int hops,
                                   sparse::ReorderStrategy reorder) {
  SPNET_RETURN_IF_ERROR(CheckSquare(adjacency, "KHopReachability"));
  if (hops < 1) {
    return Status::InvalidArgument("hops must be >= 1");
  }
  if (reorder != sparse::ReorderStrategy::kNone) {
    // The permutation from the input adjacency stays valid for every
    // power in the squaring chain (a permuted pattern's powers are the
    // permuted powers), so one reorder serves the whole chain. Patterns
    // are exact: mapping back reproduces the unpermuted result.
    SPNET_ASSIGN_OR_RETURN(const sparse::Permutation perm,
                           sparse::BuildRowPermutation(adjacency, reorder));
    SPNET_ASSIGN_OR_RETURN(const CsrMatrix permuted,
                           PermuteSymmetric(adjacency, perm));
    SPNET_ASSIGN_OR_RETURN(
        CsrMatrix reach,
        KHopReachability(permuted, algorithm, hops,
                         sparse::ReorderStrategy::kNone));
    const sparse::Permutation inverse = perm.Inverse();
    SPNET_ASSIGN_OR_RETURN(reach, inverse.ApplyToRows(reach));
    return inverse.ApplyToCols(reach);
  }
  // reach = pattern of (A + I)^hops via repeated squaring; binarizing
  // after every multiply keeps values from exploding and the pattern
  // exact.
  SPNET_ASSIGN_OR_RETURN(
      CsrMatrix reach,
      sparse::Add(Binarize(adjacency), sparse::Identity(adjacency.rows())));
  reach = Binarize(reach);
  CsrMatrix base = reach;
  int covered = 1;
  while (covered < hops) {
    if (2 * covered <= hops) {
      SPNET_ASSIGN_OR_RETURN(reach, algorithm.Compute(reach, reach));
      covered *= 2;
    } else {
      SPNET_ASSIGN_OR_RETURN(reach, algorithm.Compute(reach, base));
      covered += 1;
    }
    reach.SortRows();
    reach = Binarize(reach);
  }
  return reach;
}

Result<int64_t> CountTriangles(const CsrMatrix& adjacency,
                               const spgemm::SpGemmAlgorithm& algorithm,
                               sparse::ReorderStrategy reorder) {
  SPNET_RETURN_IF_ERROR(CheckSquare(adjacency, "CountTriangles"));
  if (reorder != sparse::ReorderStrategy::kNone) {
    // Triangle counts are invariant under node relabeling, so no inverse
    // mapping is needed — the permutation only improves locality.
    SPNET_ASSIGN_OR_RETURN(const sparse::Permutation perm,
                           sparse::BuildRowPermutation(adjacency, reorder));
    SPNET_ASSIGN_OR_RETURN(const CsrMatrix permuted,
                           PermuteSymmetric(adjacency, perm));
    return CountTriangles(permuted, algorithm,
                          sparse::ReorderStrategy::kNone);
  }
  const CsrMatrix a = DropDiagonal(SymmetrizePattern(adjacency));
  SPNET_ASSIGN_OR_RETURN(CsrMatrix a2, algorithm.Compute(a, a));
  a2.SortRows();
  SPNET_ASSIGN_OR_RETURN(CsrMatrix masked, sparse::Hadamard(a2, a));
  const double total = static_cast<double>(sparse::EntrySum(masked));
  return static_cast<int64_t>(std::llround(total / 6.0));
}

Result<CsrMatrix> CommonNeighborScores(
    const CsrMatrix& adjacency, const spgemm::SpGemmAlgorithm& algorithm,
    Index top_k) {
  SPNET_RETURN_IF_ERROR(CheckSquare(adjacency, "CommonNeighborScores"));
  if (top_k <= 0) {
    return Status::InvalidArgument("top_k must be positive");
  }
  const CsrMatrix a = DropDiagonal(SymmetrizePattern(adjacency));
  SPNET_ASSIGN_OR_RETURN(CsrMatrix a2, algorithm.Compute(a, a));
  a2.SortRows();
  // Mask out existing edges: candidates = A^2 - (A^2 .* A), then drop the
  // diagonal (a node trivially shares all its neighbors with itself).
  SPNET_ASSIGN_OR_RETURN(CsrMatrix overlap, sparse::Hadamard(a2, a));
  SPNET_ASSIGN_OR_RETURN(CsrMatrix candidates,
                         sparse::Add(a2, overlap, 1.0, -1.0));
  candidates = sparse::DropEntries(DropDiagonal(candidates));
  return sparse::TopKPerRow(candidates, top_k);
}

namespace {

/// The matrices whose rows a traversal expands for the given direction:
/// the adjacency itself (out-edges), its transpose (in-edges), or both.
/// `reverse` is only materialized when needed.
std::vector<const CsrMatrix*> TraversalEdges(const CsrMatrix& adjacency,
                                             CsrMatrix* reverse,
                                             EdgeDirection direction) {
  switch (direction) {
    case EdgeDirection::kOut:
      return {&adjacency};
    case EdgeDirection::kIn:
      *reverse = adjacency.Transpose();
      return {reverse};
    case EdgeDirection::kBoth:
      *reverse = adjacency.Transpose();
      return {&adjacency, reverse};
  }
  return {&adjacency};
}

}  // namespace

Result<std::vector<int>> BfsLevels(const CsrMatrix& adjacency, Index source,
                                   EdgeDirection direction) {
  SPNET_RETURN_IF_ERROR(CheckSquare(adjacency, "BfsLevels"));
  if (source < 0 || source >= adjacency.rows()) {
    return Status::OutOfRange("BFS source out of range");
  }
  CsrMatrix reverse;
  const std::vector<const CsrMatrix*> edges =
      TraversalEdges(adjacency, &reverse, direction);
  std::vector<int> level(static_cast<size_t>(adjacency.rows()), -1);
  std::vector<Index> frontier = {source};
  level[static_cast<size_t>(source)] = 0;
  int depth = 0;
  std::vector<Index> next;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (Index u : frontier) {
      for (const CsrMatrix* m : edges) {
        const SpanView row = m->Row(u);
        for (Offset k = 0; k < row.size; ++k) {
          const Index v = row.indices[k];
          if (level[static_cast<size_t>(v)] == -1) {
            level[static_cast<size_t>(v)] = depth;
            next.push_back(v);
          }
        }
      }
    }
    frontier.swap(next);
  }
  return level;
}

Result<std::vector<Index>> ConnectedComponents(const CsrMatrix& adjacency,
                                               EdgeDirection direction) {
  SPNET_RETURN_IF_ERROR(CheckSquare(adjacency, "ConnectedComponents"));
  const Index n = adjacency.rows();
  CsrMatrix reverse;
  const std::vector<const CsrMatrix*> edges =
      TraversalEdges(adjacency, &reverse, direction);
  std::vector<Index> label(static_cast<size_t>(n), -1);
  std::vector<Index> stack;
  for (Index root = 0; root < n; ++root) {
    if (label[static_cast<size_t>(root)] != -1) continue;
    // Depth-first flood along the requested edge direction. With kBoth
    // this partitions into weakly-connected components; with kOut/kIn on
    // a directed graph it is a deterministic reachability flood from
    // ascending roots (not an equivalence relation — see the header).
    label[static_cast<size_t>(root)] = root;
    stack.assign(1, root);
    while (!stack.empty()) {
      const Index u = stack.back();
      stack.pop_back();
      for (const CsrMatrix* m : edges) {
        const SpanView row = m->Row(u);
        for (Offset k = 0; k < row.size; ++k) {
          const Index v = row.indices[k];
          if (label[static_cast<size_t>(v)] == -1) {
            label[static_cast<size_t>(v)] = root;
            stack.push_back(v);
          }
        }
      }
    }
  }
  return label;
}

Result<CsrMatrix> JaccardSimilarity(const CsrMatrix& adjacency,
                                    const spgemm::SpGemmAlgorithm& algorithm) {
  SPNET_RETURN_IF_ERROR(CheckSquare(adjacency, "JaccardSimilarity"));
  const CsrMatrix a = DropDiagonal(SymmetrizePattern(adjacency));
  SPNET_ASSIGN_OR_RETURN(CsrMatrix a2, algorithm.Compute(a, a));
  a2.SortRows();
  // Intersections for adjacent pairs only.
  SPNET_ASSIGN_OR_RETURN(CsrMatrix overlap, sparse::Hadamard(a2, a));
  // J = |∩| / (deg(u) + deg(v) - |∩|), rewritten per stored entry.
  std::vector<Value> values(overlap.values());
  size_t cursor = 0;
  for (Index u = 0; u < overlap.rows(); ++u) {
    const SpanView row = overlap.Row(u);
    const double du = static_cast<double>(a.RowNnz(u));
    for (Offset k = 0; k < row.size; ++k, ++cursor) {
      const double dv = static_cast<double>(a.RowNnz(row.indices[k]));
      const double inter = row.values[k];
      const double uni = du + dv - inter;
      values[cursor] = uni > 0.0 ? inter / uni : 0.0;
    }
  }
  return CsrMatrix::FromParts(overlap.rows(), overlap.cols(), overlap.ptr(),
                              overlap.indices(), std::move(values));
}

}  // namespace graph
}  // namespace spnet
