#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "core/block_reorganizer.h"
#include "core/workload_classifier.h"
#include "datasets/generators.h"
#include "engine/batch_runner.h"
#include "gpusim/device_spec.h"
#include "sparse/coo_matrix.h"
#include "sparse/csr_matrix.h"
#include "sparse/matrix_market.h"
#include "sparse/reference_spgemm.h"
#include "spgemm/algorithm_registry.h"
#include "verify/differential.h"
#include "verify/fault_injection.h"
#include "verify/invariants.h"

namespace spnet {
namespace {

using sparse::CsrMatrix;
using sparse::Index;
using verify::FaultInjector;

/// Guarantees the process-wide injector is disarmed when a test exits,
/// even on assertion failure.
class InjectorGuard {
 public:
  InjectorGuard() { FaultInjector::Global().Reset(); }
  ~InjectorGuard() { FaultInjector::Global().Reset(); }
};

CsrMatrix SmallMatrix(uint64_t seed = 7) {
  datasets::QuasiRegularParams p;
  p.n = 64;
  p.nnz = 600;
  p.seed = seed;
  auto m = datasets::GenerateQuasiRegular(p);
  EXPECT_TRUE(m.ok());
  return std::move(m).value();
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, DisarmedIsTransparent) {
  InjectorGuard guard;
  EXPECT_FALSE(FaultInjector::Global().armed());
  EXPECT_TRUE(verify::MaybeInjectFault(verify::kSitePlan).ok());
  // Disarmed check points do not even count calls.
  EXPECT_EQ(FaultInjector::Global().CallCount(verify::kSitePlan), 0);
}

TEST(FaultInjectorTest, FailsExactlyInsideTheWindow) {
  InjectorGuard guard;
  FaultInjector::Global().Arm("test.site", /*first=*/2, /*count=*/2);
  EXPECT_TRUE(verify::MaybeInjectFault("test.site").ok());   // call 1
  const Status second = verify::MaybeInjectFault("test.site");
  EXPECT_EQ(second.code(), StatusCode::kInternal);
  EXPECT_NE(second.message().find("injected fault at test.site"),
            std::string::npos);
  EXPECT_FALSE(verify::MaybeInjectFault("test.site").ok());  // call 3
  EXPECT_TRUE(verify::MaybeInjectFault("test.site").ok());   // call 4
  EXPECT_EQ(FaultInjector::Global().CallCount("test.site"), 4);
}

TEST(FaultInjectorTest, CountZeroFailsForever) {
  InjectorGuard guard;
  FaultInjector::Global().Arm("test.site", /*first=*/1, /*count=*/0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(verify::MaybeInjectFault("test.site").ok());
  }
}

TEST(FaultInjectorTest, OtherSitesAreUnaffected) {
  InjectorGuard guard;
  FaultInjector::Global().Arm("test.site", 1, 0);
  EXPECT_TRUE(verify::MaybeInjectFault("other.site").ok());
}

TEST(FaultInjectorTest, SpecGrammarArmsSitesAndCodes) {
  InjectorGuard guard;
  ASSERT_TRUE(FaultInjector::Global()
                  .ArmFromSpec("a.site=1:0:io,b.site=2")
                  .ok());
  EXPECT_EQ(verify::MaybeInjectFault("a.site").code(), StatusCode::kIoError);
  EXPECT_TRUE(verify::MaybeInjectFault("b.site").ok());
  EXPECT_FALSE(verify::MaybeInjectFault("b.site").ok());
}

TEST(FaultInjectorTest, MalformedSpecIsRejected) {
  InjectorGuard guard;
  EXPECT_EQ(FaultInjector::Global().ArmFromSpec("nonsense").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::Global().ArmFromSpec("x=abc").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::Global().ArmFromSpec("x=1:1:bogus").code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultInjectorTest, ResetDisarms) {
  InjectorGuard guard;
  FaultInjector::Global().Arm("test.site", 1, 0);
  FaultInjector::Global().Reset();
  EXPECT_FALSE(FaultInjector::Global().armed());
  EXPECT_TRUE(verify::MaybeInjectFault("test.site").ok());
}

TEST(FaultInjectorTest, LoaderReadSiteFailsTheLoad) {
  InjectorGuard guard;
  FaultInjector::Global().Arm(verify::kSiteLoaderRead, 1);
  // The check point sits before the open, so no file is needed.
  const auto r = sparse::ReadMatrixMarket("/nonexistent.mtx");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("injected fault"), std::string::npos);
}

TEST(FaultInjectorTest, PlanAndComputeSitesCoverEveryAlgorithm) {
  InjectorGuard guard;
  const CsrMatrix a = SmallMatrix();
  auto algorithm =
      spgemm::AlgorithmRegistry::Global().Create("outer-product");
  ASSERT_TRUE(algorithm.ok());

  FaultInjector::Global().Arm(verify::kSitePlan, 1);
  const auto plan =
      (*algorithm)->Plan(a, a, gpusim::DeviceSpec::TitanXp());
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("injected fault"),
            std::string::npos);

  FaultInjector::Global().Reset();
  FaultInjector::Global().Arm(verify::kSiteCompute, 1);
  EXPECT_FALSE((*algorithm)->Compute(a, a).ok());
}

TEST(FaultInjectorTest, ChatAllocSiteFailsReorganizerCompute) {
  InjectorGuard guard;
  const CsrMatrix a = SmallMatrix();
  core::BlockReorganizerSpGemm reorganizer;
  FaultInjector::Global().Arm(verify::kSiteChatAlloc, 1, 1,
                              StatusCode::kOutOfRange);
  const auto c = reorganizer.Compute(a, a);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// BatchRunner degradation under injected faults
// ---------------------------------------------------------------------------

TEST(FaultInjectionBatchTest, AllPlansFailingDegradesToFallbackWithError) {
  InjectorGuard guard;
  // Every Plan call fails: the primary fails, the fallback retry fails
  // too, and the injected error must surface in the per-query status
  // while the batch itself succeeds.
  FaultInjector::Global().Arm(verify::kSitePlan, 1, 0);

  engine::BatchRunner runner(engine::BatchOptions{});
  auto request =
      engine::RequestBuilder()
          .Id("q0")
          .Algorithm("reorganizer")
          .OperandA(std::make_shared<const CsrMatrix>(SmallMatrix()))
          .Build();
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  const auto report = runner.Execute({*request});
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->responses.size(), 1u);
  const engine::Response& r = report->responses[0];
  EXPECT_FALSE(r.status.ok());
  EXPECT_TRUE(r.fallback_used);
  EXPECT_NE(r.status.message().find("injected fault"), std::string::npos);
  EXPECT_EQ(report->failed, 1);
  EXPECT_EQ(report->fallbacks, 1);
}

TEST(FaultInjectionBatchTest, SinglePlanFaultRecoversOnFallback) {
  InjectorGuard guard;
  // Only the first Plan call fails, so the fallback retry succeeds and
  // the query completes on the fallback algorithm.
  FaultInjector::Global().Arm(verify::kSitePlan, 1, 1);

  engine::BatchRunner runner(engine::BatchOptions{});
  auto request =
      engine::RequestBuilder()
          .Id("q0")
          .Algorithm("reorganizer")
          .OperandA(std::make_shared<const CsrMatrix>(SmallMatrix()))
          .Build();
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  const auto report = runner.Execute({*request});
  ASSERT_TRUE(report.ok());
  const engine::Response& r = report->responses[0];
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.fallback_used);
  EXPECT_EQ(r.algorithm_used, "outer-product");
}

// ---------------------------------------------------------------------------
// Plan invariant validators
// ---------------------------------------------------------------------------

TEST(InvariantsTest, HoldOnEveryAblationVariant) {
  const struct {
    bool split, gather, limit;
  } variants[] = {{true, true, true},
                  {true, false, false},
                  {false, true, false},
                  {false, false, true},
                  {false, false, false}};
  for (const auto& v : variants) {
    core::ReorganizerConfig config;
    config.enable_splitting = v.split;
    config.enable_gathering = v.gather;
    config.enable_limiting = v.limit;
    for (const std::string& family : verify::SweepFamilyNames()) {
      auto c = verify::MakeSweepCase(family, 42);
      ASSERT_TRUE(c.ok()) << family;
      const Status s = verify::VerifyReorganizerInvariants(c->a, c->b, config);
      EXPECT_TRUE(s.ok()) << family << " split=" << v.split
                          << " gather=" << v.gather << " limit=" << v.limit
                          << ": " << s.ToString();
    }
  }
}

TEST(InvariantsTest, DetectsMisclassifiedPair) {
  const CsrMatrix a = SmallMatrix();
  const spgemm::Workload workload = spgemm::BuildWorkload(a, a);
  core::ReorganizerConfig config;
  core::Classification classes = core::Classify(workload, config);
  ASSERT_TRUE(verify::CheckClassification(workload, classes).ok());

  // Move one pair into the wrong bin.
  ASSERT_FALSE(classes.low_performers.empty());
  classes.normals.push_back(classes.low_performers.back());
  classes.low_performers.pop_back();
  EXPECT_FALSE(verify::CheckClassification(workload, classes).ok());
}

TEST(InvariantsTest, DetectsBadThreshold) {
  const CsrMatrix a = SmallMatrix();
  const spgemm::Workload workload = spgemm::BuildWorkload(a, a);
  core::ReorganizerConfig config;
  core::Classification classes = core::Classify(workload, config);
  classes.dominator_threshold = 0;
  EXPECT_FALSE(verify::CheckClassification(workload, classes).ok());
}

TEST(InvariantsTest, DetectsCorruptedSplitOffsets) {
  // Force dominators with a tiny alpha so the split plan is non-trivial.
  const CsrMatrix a = SmallMatrix();
  const spgemm::Workload workload = spgemm::BuildWorkload(a, a);
  core::ReorganizerConfig config;
  config.alpha = 0.1;
  const core::Classification classes = core::Classify(workload, config);
  ASSERT_FALSE(classes.dominators.empty());
  core::SplitPlan split = core::BuildSplitPlan(
      workload, classes.dominators, config, gpusim::DeviceSpec::TitanXp());
  ASSERT_TRUE(
      verify::CheckSplitPlan(workload, classes.dominators, split).ok());

  // Shift one interior offset: fragment products no longer sum correctly
  // against a neighbor, or a fragment goes empty.
  ASSERT_FALSE(split.vectors.empty());
  core::SplitVector& v = split.vectors.front();
  if (v.factor > 1) {
    v.offsets[1] = v.offsets[0];  // empty first fragment
  } else {
    v.offsets.back() -= 1;  // fragment range no longer covers the column
  }
  EXPECT_FALSE(
      verify::CheckSplitPlan(workload, classes.dominators, split).ok());
}

TEST(InvariantsTest, DetectsCorruptedGatherPlan) {
  const CsrMatrix a = SmallMatrix();
  const spgemm::Workload workload = spgemm::BuildWorkload(a, a);
  core::ReorganizerConfig config;
  const core::Classification classes = core::Classify(workload, config);
  ASSERT_FALSE(classes.low_performers.empty());
  core::GatherPlan gather =
      core::BuildGatherPlan(workload, classes.low_performers, config);
  ASSERT_TRUE(verify::CheckGatherPlan(workload, classes.low_performers,
                                      gather, config.block_size)
                  .ok());

  if (!gather.blocks.empty()) {
    // A dropped pair breaks the partition property.
    core::CombinedBlock& block = gather.blocks.front();
    ASSERT_FALSE(block.pairs.empty());
    block.pairs.pop_back();
    gather.gathered_pairs -= 1;
  } else {
    gather.ungathered.pop_back();
  }
  EXPECT_FALSE(verify::CheckGatherPlan(workload, classes.low_performers,
                                       gather, config.block_size)
                   .ok());
}

// ---------------------------------------------------------------------------
// Differential checker
// ---------------------------------------------------------------------------

TEST(DifferentialTest, AgreementReportsNoDivergence) {
  const CsrMatrix a = SmallMatrix();
  verify::Divergence d;
  EXPECT_FALSE(verify::FindFirstDivergence(a, a, 1e-9, &d));
}

TEST(DifferentialTest, ReportsFirstValueDivergence) {
  const CsrMatrix a = SmallMatrix();
  std::vector<double> values = a.values();
  ASSERT_GT(values.size(), 10u);
  values[10] += 0.5;
  auto tampered = CsrMatrix::FromParts(a.rows(), a.cols(), a.ptr(),
                                       a.indices(), std::move(values));
  ASSERT_TRUE(tampered.ok());
  verify::Divergence d;
  ASSERT_TRUE(verify::FindFirstDivergence(a, *tampered, 1e-9, &d));
  EXPECT_EQ(d.kind, "value");
  EXPECT_GE(d.row, 0);
  EXPECT_NEAR(d.got - d.expected, 0.5, 1e-9);
}

TEST(DifferentialTest, ReportsStructureDivergence) {
  sparse::CooMatrix coo(3, 3);
  coo.Add(0, 0, 1.0);
  coo.Add(1, 2, 2.0);
  auto full = CsrMatrix::FromCoo(coo);
  ASSERT_TRUE(full.ok());
  sparse::CooMatrix coo2(3, 3);
  coo2.Add(0, 0, 1.0);
  auto missing = CsrMatrix::FromCoo(coo2);
  ASSERT_TRUE(missing.ok());

  verify::Divergence d;
  ASSERT_TRUE(verify::FindFirstDivergence(*full, *missing, 1e-9, &d));
  EXPECT_EQ(d.kind, "structure");
  EXPECT_EQ(d.row, 1);
  EXPECT_EQ(d.col, 2);
  EXPECT_DOUBLE_EQ(d.expected, 2.0);
  EXPECT_DOUBLE_EQ(d.got, 0.0);
}

TEST(DifferentialTest, ReportsShapeDivergence) {
  sparse::CooMatrix coo(3, 3);
  auto m3 = CsrMatrix::FromCoo(coo);
  sparse::CooMatrix coo4(4, 4);
  auto m4 = CsrMatrix::FromCoo(coo4);
  verify::Divergence d;
  ASSERT_TRUE(verify::FindFirstDivergence(*m3, *m4, 1e-9, &d));
  EXPECT_EQ(d.kind, "shape");
}

TEST(DifferentialTest, SweepFamiliesProduceValidCompatibleCases) {
  for (const std::string& family : verify::SweepFamilyNames()) {
    for (uint64_t seed = 42; seed < 45; ++seed) {
      auto c = verify::MakeSweepCase(family, seed);
      ASSERT_TRUE(c.ok()) << family;
      EXPECT_TRUE(c->a.Validate().ok()) << family;
      EXPECT_TRUE(c->b.Validate().ok()) << family;
      EXPECT_EQ(c->a.cols(), c->b.rows()) << family;
    }
  }
}

TEST(DifferentialTest, SweepIsDeterministicPerSeed) {
  auto c1 = verify::MakeSweepCase("powerlaw", 42);
  auto c2 = verify::MakeSweepCase("powerlaw", 42);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c1->a.indices(), c2->a.indices());
  EXPECT_EQ(c1->a.values(), c2->a.values());
}

TEST(DifferentialTest, EmptyFamilyIncludesFullyEmptyMatrix) {
  // Seeds divisible by 3 produce a completely empty A.
  auto c = verify::MakeSweepCase("empty-rows-cols", 42);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->a.nnz(), 0);
  EXPECT_GT(c->b.nnz(), 0);
}

TEST(DifferentialTest, FullRegistrySweepHasZeroDivergences) {
  verify::DifferentialOptions options;
  options.cases_per_family = 1;
  const auto report = verify::RunDifferentialSweep(options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  // Every registered algorithm ran against every family.
  EXPECT_GT(report->algorithms_tested, 8);
  EXPECT_EQ(report->cases_run,
            report->algorithms_tested *
                static_cast<int64_t>(verify::SweepFamilyNames().size()));
}

TEST(DifferentialTest, UnknownAlgorithmIsAnInfrastructureError) {
  verify::DifferentialOptions options;
  options.algorithms = {"no-such-algorithm"};
  EXPECT_FALSE(verify::RunDifferentialSweep(options).ok());
}

TEST(DifferentialTest, InjectedComputeFaultSurfacesInReport) {
  InjectorGuard guard;
  FaultInjector::Global().Arm(verify::kSiteCompute, 1, 0);
  verify::DifferentialOptions options;
  options.algorithms = {"row-product"};
  options.families = {"banded"};
  options.cases_per_family = 1;
  const auto report = verify::RunDifferentialSweep(options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->failures.size(), 1u);
  EXPECT_FALSE(report->failures[0].status.ok());
  EXPECT_NE(report->failures[0].ToString().find("injected fault"),
            std::string::npos);
}

}  // namespace
}  // namespace spnet
