// Reproduces Figure 13: the sync-stall percentage of the expansion phase
// before and after B-Gathering, across the 28 real-world datasets. Idle
// lanes in lock-step warps (non-effective threads waiting at the block
// barrier) are the stalls B-Gathering eliminates.
//
// Flags: --scale (default 0.25), --device, --seed, --csv.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/block_reorganizer.h"
#include "gpusim/simulator.h"
#include "metrics/report.h"

namespace spnet {
namespace {

gpusim::KernelStats ExpansionStats(const sparse::CsrMatrix& a,
                                   const gpusim::DeviceSpec& device,
                                   bool gathering) {
  core::ReorganizerConfig config;
  config.enable_splitting = false;
  config.enable_limiting = false;
  config.enable_gathering = gathering;
  core::BlockReorganizerSpGemm alg(config);
  auto plan = alg.Plan(a, a, device);
  SPNET_CHECK(plan.ok());
  gpusim::Simulator sim(device);
  gpusim::KernelStats total;
  total.sm_busy_cycles.assign(static_cast<size_t>(device.num_sms), 0.0);
  for (const auto& k : plan->kernels) {
    if (k.phase != gpusim::Phase::kExpansion) continue;
    auto s = sim.RunKernel(k);
    SPNET_CHECK(s.ok());
    total.Accumulate(*s);
  }
  return total;
}

int Run(int argc, char** argv) {
  const bench::BenchOptions options =
      bench::BenchOptions::FromArgs(argc, argv);
  const gpusim::DeviceSpec device = options.Device();

  metrics::Table table(
      {"dataset", "stall % before", "stall % after", "reduction"});
  std::vector<double> before_all;
  std::vector<double> after_all;
  for (const std::string& name : bench::AllDatasetNames()) {
    const sparse::CsrMatrix a = bench::LoadDataset(name, options);
    const auto before = ExpansionStats(a, device, false);
    const auto after = ExpansionStats(a, device, true);
    const double b = 100.0 * before.SyncStallFraction();
    const double f = 100.0 * after.SyncStallFraction();
    before_all.push_back(b);
    after_all.push_back(f);
    table.AddRow({name, metrics::FormatDouble(b, 1),
                  metrics::FormatDouble(f, 1),
                  metrics::FormatDouble(b - f, 1)});
  }
  table.AddRow({"MEAN", metrics::FormatDouble(
                            metrics::ArithmeticMean(before_all), 1),
                metrics::FormatDouble(metrics::ArithmeticMean(after_all), 1),
                metrics::FormatDouble(metrics::ArithmeticMean(before_all) -
                                          metrics::ArithmeticMean(after_all),
                                      1)});

  std::printf("== Figure 13: expansion sync stalls before/after B-Gathering "
              "(%s, scale %.2f) ==\n",
              device.name.c_str(), options.scale);
  std::fputs(options.csv ? table.ToCsv().c_str() : table.ToString().c_str(),
             stdout);
  std::printf("\nPaper reference: the sync-stall percentage drops sharply "
              "once underloaded blocks are gathered, leaving mostly memory "
              "stalls.\n");

  bench::BenchJson json("fig13_sync_stalls", "Figure 13", options);
  json.AddTable("sync_stalls_before_after_gathering", table);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
