// Fixture: default (sequentially consistent) atomics never fire
// relaxed-atomic.
#include <atomic>
#include <cstdint>

namespace spnet {
namespace {

std::atomic<int64_t> g_hits{0};

}  // namespace

void Touch() { g_hits.fetch_add(1); }

int64_t Read() { return g_hits.load(std::memory_order_acquire); }

}  // namespace spnet
